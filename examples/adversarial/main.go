// Adversarial: reproduces the paper's §1 separation. A fixed-probability
// protocol (Decay) is defeated by an oblivious link scheduler that knows
// its schedule, while LBAlg's seed-permuted schedules shrug it off.
//
// The workload is StarWithDecoys: a receiver with one reliable sender and
// many unreliable-link decoy senders the adversary can flip in and out of
// the topology.
package main

import (
	"fmt"
	"log"

	"lbcast/internal/baseline"
	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/seedagree"
	"lbcast/internal/sim"
)

const (
	decoys    = 256
	trials    = 5
	maxRounds = 30000
)

func main() {
	d, err := dualgraph.StarWithDecoys(decoys)
	if err != nil {
		log.Fatal(err)
	}
	cycle := seedagree.Log2Ceil(d.DeltaPrime())
	anti := sched.TunedAntiDecay(decoys+1, cycle)

	fmt.Printf("workload: receiver + 1 reliable sender + %d unreliable decoy senders (all saturated)\n", decoys)
	fmt.Printf("measuring: rounds until the receiver first hears any message (%d trials)\n\n", trials)
	fmt.Printf("%-8s %-12s %12s\n", "algo", "scheduler", "mean rounds")

	for _, c := range []struct {
		algo string
		sch  sim.LinkScheduler
	}{
		{"decay", sched.Never{}},
		{"decay", anti},
		{"lbalg", sched.Never{}},
		{"lbalg", anti},
	} {
		total := 0
		for trial := uint64(0); trial < trials; trial++ {
			lat, err := firstHear(d, c.algo, c.sch, trial)
			if err != nil {
				log.Fatal(err)
			}
			total += lat
		}
		name := "benign"
		if _, ok := c.sch.(sched.AntiDecay); ok {
			name = "anti-decay"
		}
		fmt.Printf("%-8s %-12s %12.0f\n", c.algo, name, float64(total)/trials)
	}
	fmt.Println("\nexpected shape: the adversary blows decay up by an order of magnitude (growing ~linearly")
	fmt.Println("with the decoy count) while lbalg is unaffected — its probability schedule is permuted with")
	fmt.Println("randomness generated after the link schedule was fixed, so the adversary cannot align with it")
}

// firstHear runs one configuration until the receiver (node 0) hears a data
// message and returns the round.
func firstHear(d *dualgraph.Dual, algo string, s sim.LinkScheduler, seed uint64) (int, error) {
	svcs := make([]core.Service, d.N())
	procs := make([]sim.Process, d.N())
	switch algo {
	case "decay":
		for u := range svcs {
			svcs[u] = baseline.NewDecay(baseline.DecayParams{Delta: d.DeltaPrime(), AckRounds: maxRounds + 1})
			procs[u] = svcs[u]
		}
	default:
		p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), 1, 0.2)
		if err != nil {
			return 0, err
		}
		for u := range svcs {
			svcs[u] = core.NewLBAlg(p)
			procs[u] = svcs[u]
		}
	}
	senders := make([]int, d.N()-1)
	for i := range senders {
		senders[i] = i + 1
	}
	env := core.NewSaturatingEnv(svcs, senders)
	e, err := sim.New(sim.Config{Dual: d, Procs: procs, Sched: s, Env: env, Seed: seed*2654435761 + 7})
	if err != nil {
		return 0, err
	}
	seen := 0
	for r := 0; r < maxRounds; r++ {
		e.Step()
		tr := e.Trace()
		for ; seen < tr.Len(); seen++ {
			if ev := tr.At(seen); ev.Kind == sim.EvHear && ev.Node == 0 {
				return ev.Round, nil
			}
		}
	}
	return maxRounds, nil
}
