// Quickstart: broadcast one message over a single-hop cluster through the
// public lbcast API and watch the recv/ack outputs.
package main

import (
	"fmt"
	"log"

	"lbcast"
)

func main() {
	// Eight radios within mutual range: a reliable clique. ε = 0.1 asks for
	// ≥ 90% reliability and progress per the paper's Theorem 4.1 bounds.
	nw, err := lbcast.NewCluster(8, lbcast.WithEpsilon(0.1), lbcast.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	s := nw.Schedule()
	fmt.Printf("network: %d nodes, Δ=%d, Δ'=%d\n", nw.Size(), s.Delta, s.DeltaPrime)
	fmt.Printf("derived bounds: t_prog=%d rounds, t_ack=%d rounds (ε=%v)\n\n", s.TProg, s.TAck, s.Epsilon)

	nw.OnReceive(func(node int, d lbcast.Delivery) {
		fmt.Printf("round %5d: node %d received %q from node %d\n", d.Round, node, d.Payload, d.From)
	})
	nw.OnAck(func(node int, id lbcast.MessageID) {
		fmt.Printf("round %5d: node %d acknowledged %v\n", nw.Round(), node, id)
	})

	id, err := nw.Broadcast(0, "hello, unreliable world")
	if err != nil {
		log.Fatal(err)
	}
	if !nw.RunUntilAck(id) {
		log.Fatal("broadcast missed its deterministic acknowledgement deadline")
	}

	tx, del, col := nw.Stats()
	fmt.Printf("\nchannel stats: %d transmissions, %d deliveries, %d collisions over %d rounds\n",
		tx, del, col, nw.Round())
}
