// Consensus: agreement composed over the abstract MAC layer.
//
// The paper argues that implementing the abstract MAC layer in the dual
// graph model ports the corpus of layer-based algorithms (its refs [10, 20,
// 6, 13, 12, 5]) into this harsher setting for free. This example runs a
// min-id consensus (in the spirit of Newport, PODC 2014) over LBAlg on a
// single-hop cluster whose grey-zone links are adversarially scheduled:
// every node proposes a value, everyone decides the same one.
package main

import (
	"fmt"
	"log"

	"lbcast/internal/amac"
	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

func main() {
	const n = 8
	d, err := dualgraph.SingleHopCluster(n, 1, xrand.New(5))
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), 1, 0.2)
	if err != nil {
		log.Fatal(err)
	}

	layers := make([]amac.Layer, n)
	procs := make([]sim.Process, n)
	for u := 0; u < n; u++ {
		alg := core.NewLBAlg(p)
		alg.RecordHears = false
		layers[u] = amac.NewAdapter(alg, amac.FromLBParams(p))
		procs[u] = alg
	}

	initial := make([]any, n)
	for u := range initial {
		initial[u] = fmt.Sprintf("proposal-from-%d", u)
	}
	cons, err := amac.NewConsensus(layers, initial, 2)
	if err != nil {
		log.Fatal(err)
	}

	e, err := sim.New(sim.Config{Dual: d, Procs: procs,
		Sched: sched.NewRandom(0.5, 9), Env: cons, Seed: 10})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d nodes, each proposing its own value; 2 broadcast cycles per node\n", n)
	fmt.Printf("layer guarantees: f_prog=%d, f_ack=%d, ε=%v\n\n", p.TProgBound(), p.TAckBound(), p.Eps1)

	budget := 2 * 2 * (p.TAckBound() + p.PhaseLen())
	for r := 0; r < budget; r++ {
		e.Step()
		if _, done := cons.Done(); done {
			break
		}
	}
	round, done := cons.Done()
	if !done {
		log.Fatal("consensus did not terminate within its deterministic budget")
	}
	value, agree := cons.Agreement()
	fmt.Printf("terminated at round %d\n", round)
	fmt.Printf("agreement: %v, decided value: %v\n", agree, value)
	for u := 0; u < n; u++ {
		v, _ := cons.Decision(u)
		fmt.Printf("  node %d decided %v\n", u, v)
	}
}
