// Amacflood: global broadcast composed over the abstract MAC layer.
//
// The paper's headline application: once LBAlg implements the abstract MAC
// layer in the dual graph model, algorithms written against that layer port
// over unchanged. Here the classic flood (each node re-broadcasts each new
// message once) pushes a message across a multi-hop grid whose diagonal
// links are all unreliable.
package main

import (
	"fmt"
	"log"

	"lbcast/internal/amac"
	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

func main() {
	const side = 4
	d, err := dualgraph.GridLattice(side, 1, 1.5, xrand.New(7))
	if err != nil {
		log.Fatal(err)
	}
	diam, _ := d.G.Diameter()
	p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), 1.5, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	g := amac.Guarantees{FAck: p.TAckBound(), FProg: p.TProgBound(), Eps: p.Eps1}
	fmt.Printf("grid %dx%d: Δ=%d Δ'=%d diameter=%d\n", side, side, d.Delta(), d.DeltaPrime(), diam)
	fmt.Printf("abstract MAC guarantees: f_prog=%d f_ack=%d ε=%v\n\n", g.FProg, g.FAck, g.Eps)

	layers := make([]amac.Layer, d.N())
	procs := make([]sim.Process, d.N())
	for u := 0; u < d.N(); u++ {
		alg := core.NewLBAlg(p)
		alg.RecordHears = false
		layers[u] = amac.NewAdapter(alg, g)
		procs[u] = alg
	}
	flood := amac.NewFlood(layers)
	e, err := sim.New(sim.Config{Dual: d, Procs: procs,
		Sched: sched.NewRandom(0.6, 3), Env: flood, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	key, err := flood.Start(0, "multi-hop payload")
	if err != nil {
		log.Fatal(err)
	}
	budget := (diam + 2) * 8 * p.PhaseLen()
	lastCoverage := 0
	for r := 0; r < budget; r++ {
		e.Step()
		if c := flood.Coverage(key); c != lastCoverage {
			fmt.Printf("round %6d: %2d/%d nodes reached\n", e.Round(), c, d.N())
			lastCoverage = c
		}
		if _, done := flood.Complete(key); done {
			break
		}
	}
	if lat, ok := flood.Latency(key); ok {
		fmt.Printf("\nflood complete in %d rounds ≈ %.1f × (diameter × phase length)\n",
			lat, float64(lat)/float64(diam*p.PhaseLen()))
	} else {
		fmt.Printf("\nflood incomplete within %d rounds (%d/%d reached)\n", budget, flood.Coverage(key), d.N())
	}
}
