// Iotlocal: the "true locality" pitch of the paper's introduction.
//
// An Internet-of-Things deployment keeps growing, but each device only
// cares about its own neighborhood. With node density held fixed, the
// derived bounds t_prog/t_ack and the per-node behaviour stay flat as n
// explodes — no formula in the stack ever sees n.
package main

import (
	"fmt"
	"log"
	"math"

	"lbcast"
)

func main() {
	fmt.Printf("%-8s %-8s %-10s %-10s %-14s\n", "n", "Δ", "t_prog", "t_ack", "deliveries/n")
	for _, n := range []int{100, 400, 1600} {
		// Fixed density ⇒ area grows with n; Δ stays roughly constant.
		side := math.Sqrt(float64(n) * math.Pi / 12)
		nw, err := lbcast.NewRandomGeometric(n, side, side, 1.5,
			lbcast.WithEpsilon(0.25), lbcast.WithSeed(uint64(n)))
		if err != nil {
			log.Fatal(err)
		}
		// A scattered 10% of devices report sensor readings.
		for u := 0; u < n; u += 10 {
			if _, err := nw.Broadcast(u, fmt.Sprintf("reading-%d", u)); err != nil {
				log.Fatal(err)
			}
		}
		s := nw.Schedule()
		nw.Run(2 * s.PhaseRounds)
		_, del, _ := nw.Stats()
		fmt.Printf("%-8d %-8d %-10d %-10d %-14.2f\n",
			n, s.Delta, s.TProg, s.TAck, float64(del)/float64(n))
	}
	fmt.Println("\nt_prog and t_ack depend only on Δ, Δ', r, ε — the n column is irrelevant to them.")
}
