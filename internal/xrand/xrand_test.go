package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: sources with equal seeds diverged: %d != %d", i, got, want)
		}
	}
}

func TestNewDistinctSeeds(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical draws out of 64", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("seed 0 produced a degenerate stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	c1again := parent.Split(1)

	var s1, s2, s1b [16]uint64
	for i := range s1 {
		s1[i] = c1.Uint64()
		s2[i] = c2.Uint64()
		s1b[i] = c1again.Uint64()
	}
	if s1 != s1b {
		t.Error("Split is not deterministic for equal ids")
	}
	if s1 == s2 {
		t.Error("Split streams for distinct ids are identical")
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a, b := New(9), New(9)
	_ = a.Split(3)
	_ = a.Split(4)
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent stream")
		}
	}
}

func TestNodeSourceStability(t *testing.T) {
	// Pin a few values so accidental changes to the derivation are caught:
	// experiment reproducibility depends on this stream staying fixed.
	r := NodeSource(1, 0)
	first := r.Uint64()
	r2 := NodeSource(1, 0)
	if first != r2.Uint64() {
		t.Fatal("NodeSource is not deterministic")
	}
	if NodeSource(1, 0).Uint64() == NodeSource(1, 1).Uint64() {
		t.Fatal("NodeSource streams for distinct nodes coincide")
	}
	if NodeSource(1, 0).Uint64() == NodeSource(2, 0).Uint64() {
		t.Fatal("NodeSource streams for distinct seeds coincide")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(6)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Intn(%d): value %d appeared %d times, want ≈%v", n, v, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestCoin(t *testing.T) {
	r := New(8)
	if r.Coin(0) {
		t.Error("Coin(0) returned true")
	}
	if !r.Coin(1) {
		t.Error("Coin(1) returned false")
	}
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Coin(0.25) {
			hits++
		}
	}
	p := float64(hits) / draws
	if math.Abs(p-0.25) > 0.01 {
		t.Errorf("Coin(0.25) empirical rate %v", p)
	}
}

func TestBits(t *testing.T) {
	r := New(10)
	if got := r.Bits(0); got != 0 {
		t.Errorf("Bits(0) = %d, want 0", got)
	}
	for _, k := range []int{1, 7, 32, 63, 64} {
		for i := 0; i < 200; i++ {
			v := r.Bits(k)
			if k < 64 && v>>uint(k) != 0 {
				t.Fatalf("Bits(%d) = %#x has bits above position %d", k, v, k)
			}
		}
	}
}

func TestBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bits(65) did not panic")
		}
	}()
	New(1).Bits(65)
}

func TestPerm(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make(map[int]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(12)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Perm first element %d appeared %d times, want ≈%v", v, c, want)
		}
	}
}

func TestUint64BitBalance(t *testing.T) {
	// Every bit position should be ~50% ones over a long run.
	r := New(13)
	const draws = 20000
	var ones [64]int
	for i := 0; i < draws; i++ {
		v := r.Uint64()
		for b := 0; b < 64; b++ {
			ones[b] += int(v >> uint(b) & 1)
		}
	}
	for b, c := range ones {
		if math.Abs(float64(c)-draws/2) > 5*math.Sqrt(draws/4) {
			t.Errorf("bit %d: %d ones out of %d", b, c, draws)
		}
	}
}

func TestSplitStreamsUncorrelated(t *testing.T) {
	// Property: for arbitrary ids, split streams should not collide on
	// their first few outputs.
	parent := New(99)
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		ra, rb := parent.Split(a), parent.Split(b)
		return ra.Uint64() != rb.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}
