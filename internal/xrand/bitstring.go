package xrand

import (
	"encoding/hex"
	"fmt"
)

// BitString is a fixed-length string of bits with a consumption cursor.
//
// The seed agreement service (Section 3 of the paper) hands every node a
// seed drawn from the domain S = {0,1}^κ. The local broadcast algorithm then
// consumes bits from the committed seed in lockstep across all nodes that
// committed to the same owner: as long as two nodes consume the same number
// of bits per round — which LBAlg guarantees within an owner group — they
// observe identical values and therefore make identical shared random
// choices. BitString implements exactly that: immutable bit content plus a
// mutable cursor.
type BitString struct {
	words []uint64
	n     int // length in bits
	cur   int // next unconsumed bit index
}

// NewBitString draws a uniformly random bit string of length n from src.
func NewBitString(src *Source, n int) *BitString {
	if n < 0 {
		panic("xrand: NewBitString called with negative length")
	}
	words := make([]uint64, (n+63)/64)
	for i := range words {
		words[i] = src.Uint64()
	}
	// Zero the unused high bits of the last word so that equality and
	// serialisation are canonical.
	if rem := n % 64; rem != 0 && len(words) > 0 {
		words[len(words)-1] &= (1 << uint(rem)) - 1
	}
	return &BitString{words: words, n: n}
}

// BitStringFromWords builds a bit string of length n over the given words.
// The slice is copied; unused high bits are cleared. It panics if the words
// cannot hold n bits.
func BitStringFromWords(words []uint64, n int) *BitString {
	if n < 0 || (n+63)/64 > len(words) {
		panic("xrand: BitStringFromWords length mismatch")
	}
	w := make([]uint64, (n+63)/64)
	copy(w, words)
	if rem := n % 64; rem != 0 && len(w) > 0 {
		w[len(w)-1] &= (1 << uint(rem)) - 1
	}
	return &BitString{words: w, n: n}
}

// Len returns the total length in bits.
func (b *BitString) Len() int { return b.n }

// Remaining returns the number of unconsumed bits.
func (b *BitString) Remaining() int { return b.n - b.cur }

// Reset rewinds the consumption cursor to the beginning.
func (b *BitString) Reset() { b.cur = 0 }

// Bit returns bit i (0-indexed from the front of the string).
func (b *BitString) Bit(i int) int {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("xrand: Bit index %d out of range [0,%d)", i, b.n))
	}
	return int(b.words[i/64] >> (uint(i) % 64) & 1)
}

// Consume removes the next k bits from the front of the unconsumed region
// and returns them packed little-endian (the first consumed bit is the least
// significant). It reports ok=false, consuming nothing, if fewer than k bits
// remain or k is outside [0, 64].
//
// LBAlg sizes κ so that a phase can never exhaust its seed; the ok result is
// a defensive contract, not an expected path.
func (b *BitString) Consume(k int) (v uint64, ok bool) {
	if k < 0 || k > 64 || b.Remaining() < k {
		return 0, false
	}
	if k == 0 {
		return 0, true
	}
	// Little-endian extraction straight from the word array: the k bits
	// span at most two words.
	i, off := b.cur/64, uint(b.cur)%64
	v = b.words[i] >> off
	if rem := 64 - int(off); rem < k {
		v |= b.words[i+1] << uint(rem)
	}
	if k < 64 {
		v &= 1<<uint(k) - 1
	}
	b.cur += k
	return v, true
}

// ConsumeMany consumes len(dst) successive k-bit fields from the front of
// the unconsumed region, filling dst little-endian exactly as len(dst)
// repeated Consume(k) calls would. It is all-or-nothing: if fewer than
// len(dst)·k bits remain or k is outside [0, 64], it reports ok=false and
// consumes nothing. The bulk loop keeps the cursor in a register and pays
// the range check once instead of per field — the batched path behind the
// protocol layer's once-per-phase coin decode.
func (b *BitString) ConsumeMany(k int, dst []uint64) (ok bool) {
	if k < 0 || k > 64 || b.Remaining() < k*len(dst) {
		return false
	}
	if k == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return true
	}
	cur := b.cur
	mask := ^uint64(0)
	if k < 64 {
		mask = 1<<uint(k) - 1
	}
	for i := range dst {
		j, off := cur/64, uint(cur)%64
		v := b.words[j] >> off
		if rem := 64 - int(off); rem < k {
			v |= b.words[j+1] << uint(rem)
		}
		dst[i] = v & mask
		cur += k
	}
	b.cur = cur
	return true
}

// Words exposes the backing word array: bit i of the string is
// words[i/64] >> (i%64) & 1, and unused high bits of the final word are
// zero. The slice aliases b's storage and must be treated as read-only; it
// exists — in the spirit of math/big.Int.Bits — so batch decoders (the
// protocol layer's once-per-phase coin pass) can run a word-level loop
// with the cursor in locals instead of a cursor-checked Consume call per
// field. Pair with Offset to find the next unconsumed bit and Skip to
// commit how far the batch read.
func (b *BitString) Words() []uint64 { return b.words }

// Offset returns the consumption cursor: the index of the next unconsumed
// bit (Len()−Remaining()).
func (b *BitString) Offset() int { return b.cur }

// Skip advances the cursor k bits without extracting them — the commit
// step of a Words/Offset batch decode. Like Consume it is all-or-nothing:
// it reports false, moving nothing, if k is negative or fewer than k bits
// remain.
func (b *BitString) Skip(k int) bool {
	if k < 0 || b.Remaining() < k {
		return false
	}
	b.cur += k
	return true
}

// Clone returns a copy sharing no state with b, including the cursor
// position. Nodes that commit to the same owner's seed each hold their own
// clone so cursors advance independently.
func (b *BitString) Clone() *BitString {
	words := make([]uint64, len(b.words))
	copy(words, b.words)
	return &BitString{words: words, n: b.n, cur: b.cur}
}

// Refill redraws b's contents in place from src and rewinds the cursor. It
// draws exactly the words NewBitString(src, b.Len()) would, so a Refill is
// interchangeable with a fresh allocation on the same randomness stream —
// the allocation-free path for callers that redraw a seed every phase.
// Any other holder of b observes the mutation; callers must own b
// exclusively or know every alias is dead (LBAlg clones committed seeds
// before the owner's next refill).
func (b *BitString) Refill(src *Source) {
	for i := range b.words {
		b.words[i] = src.Uint64()
	}
	if rem := b.n % 64; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(rem)) - 1
	}
	b.cur = 0
}

// CopyFrom overwrites b with o's contents, length and cursor — an
// allocation-free Clone into an existing bit string. The word buffer is
// reused when capacities allow.
func (b *BitString) CopyFrom(o *BitString) {
	if cap(b.words) < len(o.words) {
		b.words = make([]uint64, len(o.words))
	}
	b.words = b.words[:len(o.words)]
	copy(b.words, o.words)
	b.n = o.n
	b.cur = o.cur
}

// Equal reports whether two bit strings have identical content (cursor
// positions are ignored).
func (b *BitString) Equal(o *BitString) bool {
	if o == nil || b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Ones returns the number of set bits.
func (b *BitString) Ones() int {
	total := 0
	for i := 0; i < b.n; i++ {
		total += b.Bit(i)
	}
	return total
}

// String renders the content as hex for debugging. Long strings are
// truncated with an ellipsis.
func (b *BitString) String() string {
	buf := make([]byte, 0, len(b.words)*8)
	for _, w := range b.words {
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(w>>uint(s)))
		}
	}
	if len(buf)*8 > b.n {
		buf = buf[:(b.n+7)/8]
	}
	s := hex.EncodeToString(buf)
	const maxLen = 32
	if len(s) > maxLen {
		s = s[:maxLen] + "…"
	}
	return fmt.Sprintf("bits[%d]%s", b.n, s)
}
