package xrand

import "math/bits"

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used for seeding and for deriving independent child streams.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a deterministic random number generator. It is not safe for
// concurrent use; each goroutine (each simulated process) owns its own
// Source.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given seed. Distinct seeds yield
// independent-looking streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = splitMix64(&sm)
	}
	// xoshiro256** must not be seeded with the all-zero state.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// Split derives a new Source from this one, keyed by id. Streams derived
// with distinct ids are independent of each other and of the parent, and the
// derivation does not advance the parent stream. This is how per-node
// streams are produced from a single experiment seed.
func (r *Source) Split(id uint64) *Source {
	// Mix the parent state with the id through SplitMix64 so that
	// (parent, id) pairs map to well-separated seeds.
	sm := r.s[0] ^ bits.RotateLeft64(r.s[2], 17) ^ (id * 0xd1342543de82ef95)
	var src Source
	for i := range src.s {
		src.s[i] = splitMix64(&sm)
	}
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *Source) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, matching
// math/rand semantics; callers control n and a non-positive value is a
// programming error, not an input error.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded rejection sampling.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := bits.Mul64(v, un)
	if lo < un {
		threshold := -un % un
		for lo < threshold {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, un)
		}
	}
	return int(hi)
}

// Coin returns true with probability p. Values p <= 0 always return false
// and p >= 1 always return true.
func (r *Source) Coin(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Bits returns k uniform random bits as the low bits of a uint64.
// It panics if k is outside [0, 64].
func (r *Source) Bits(k int) uint64 {
	if k < 0 || k > 64 {
		panic("xrand: Bits called with k outside [0, 64]")
	}
	if k == 0 {
		return 0
	}
	return r.Uint64() >> (64 - uint(k))
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// NodeSource returns the canonical per-node stream for the given experiment
// seed and node index. All simulator components use this single derivation
// so that a configuration plus a seed fully determines an execution.
func NodeSource(seed uint64, node int) *Source {
	return New(seed).Split(0x4e4f4445 ^ uint64(node)*0x9e3779b97f4a7c15 + uint64(node))
}
