package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBitStringLen(t *testing.T) {
	r := New(1)
	for _, n := range []int{0, 1, 63, 64, 65, 128, 1000} {
		b := NewBitString(r, n)
		if b.Len() != n {
			t.Errorf("NewBitString(%d).Len() = %d", n, b.Len())
		}
		if b.Remaining() != n {
			t.Errorf("NewBitString(%d).Remaining() = %d", n, b.Remaining())
		}
	}
}

func TestBitStringConsume(t *testing.T) {
	r := New(2)
	b := NewBitString(r, 128)
	total := 0
	for _, k := range []int{0, 1, 5, 64, 50} {
		v, ok := b.Consume(k)
		if !ok {
			t.Fatalf("Consume(%d) failed with %d remaining", k, b.Remaining())
		}
		if k < 64 && v>>uint(k) != 0 {
			t.Fatalf("Consume(%d) = %#x exceeds k bits", k, v)
		}
		total += k
		if b.Remaining() != 128-total {
			t.Fatalf("Remaining() = %d after consuming %d", b.Remaining(), total)
		}
	}
	// 8 bits remain; ask for more.
	if _, ok := b.Consume(9); ok {
		t.Error("Consume beyond remaining succeeded")
	}
	if b.Remaining() != 8 {
		t.Error("failed Consume changed the cursor")
	}
	if _, ok := b.Consume(8); !ok {
		t.Error("Consume of exactly remaining bits failed")
	}
}

func TestBitStringConsumeMatchesBits(t *testing.T) {
	r := New(3)
	b := NewBitString(r, 200)
	// Consuming one bit at a time must agree with Bit(i).
	for i := 0; i < 200; i++ {
		want := uint64(b.Bit(i))
		got, ok := b.Consume(1)
		if !ok || got != want {
			t.Fatalf("bit %d: Consume=%d ok=%v, Bit=%d", i, got, ok, want)
		}
	}
}

func TestBitStringConsumeInvalidK(t *testing.T) {
	b := NewBitString(New(4), 100)
	if _, ok := b.Consume(-1); ok {
		t.Error("Consume(-1) succeeded")
	}
	if _, ok := b.Consume(65); ok {
		t.Error("Consume(65) succeeded")
	}
}

func TestBitStringReset(t *testing.T) {
	b := NewBitString(New(5), 64)
	v1, _ := b.Consume(32)
	b.Reset()
	if b.Remaining() != 64 {
		t.Fatal("Reset did not rewind cursor")
	}
	v2, _ := b.Consume(32)
	if v1 != v2 {
		t.Fatal("Reset changed content")
	}
}

func TestBitStringClone(t *testing.T) {
	b := NewBitString(New(6), 96)
	b.Consume(10)
	c := b.Clone()
	if c.Remaining() != b.Remaining() {
		t.Fatal("Clone did not preserve cursor")
	}
	// Consuming from the clone must not affect the original.
	c.Consume(20)
	if b.Remaining() != 86 {
		t.Fatal("Clone shares cursor state with original")
	}
	if !b.Equal(c) {
		t.Fatal("Clone content differs")
	}
}

func TestBitStringEqual(t *testing.T) {
	r := New(7)
	a := NewBitString(r, 100)
	b := NewBitString(r, 100)
	if a.Equal(b) {
		t.Fatal("two random 100-bit strings compare equal (astronomically unlikely)")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("clone not equal to original")
	}
	if a.Equal(nil) {
		t.Fatal("Equal(nil) returned true")
	}
	short := NewBitString(r, 50)
	if a.Equal(short) {
		t.Fatal("strings of different length compare equal")
	}
}

func TestBitStringFromWords(t *testing.T) {
	words := []uint64{0xffffffffffffffff, 0xffffffffffffffff}
	b := BitStringFromWords(words, 70)
	if b.Len() != 70 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.Ones() != 70 {
		t.Fatalf("Ones = %d, want 70 (high bits must be masked)", b.Ones())
	}
	// The source slice must have been copied.
	words[0] = 0
	if b.Ones() != 70 {
		t.Fatal("BitStringFromWords aliases the caller's slice")
	}
}

func TestBitStringFromWordsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for undersized words")
		}
	}()
	BitStringFromWords([]uint64{0}, 65)
}

func TestBitStringUniform(t *testing.T) {
	// Random bit strings should be roughly balanced.
	r := New(8)
	const n = 4096
	b := NewBitString(r, n)
	ones := b.Ones()
	if math.Abs(float64(ones)-n/2) > 5*math.Sqrt(n/4) {
		t.Fatalf("Ones = %d out of %d", ones, n)
	}
}

func TestBitStringConsumeProperty(t *testing.T) {
	// Property: however we partition the string into chunks, re-assembling
	// consumed chunks reproduces Bit(i) for all i.
	r := New(9)
	f := func(chunks []uint8) bool {
		total := 0
		sizes := make([]int, 0, len(chunks))
		for _, c := range chunks {
			k := int(c % 65)
			if total+k > 512 {
				break
			}
			sizes = append(sizes, k)
			total += k
		}
		b := NewBitString(r, 512)
		pos := 0
		for _, k := range sizes {
			v, ok := b.Consume(k)
			if !ok {
				return false
			}
			for i := 0; i < k; i++ {
				if int(v>>uint(i)&1) != b.Bit(pos+i) {
					return false
				}
			}
			pos += k
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBitStringString(t *testing.T) {
	b := NewBitString(New(10), 2048)
	s := b.String()
	if len(s) == 0 {
		t.Fatal("empty String()")
	}
	// Long strings are truncated to keep debug output small.
	if len(s) > 64 {
		t.Fatalf("String() too long: %d bytes", len(s))
	}
}

func BenchmarkBitStringConsume(b *testing.B) {
	bs := NewBitString(New(1), 1<<20)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		v, ok := bs.Consume(7)
		if !ok {
			bs.Reset()
			continue
		}
		sink += v
	}
	_ = sink
}

// TestBitStringConsumeManyMatchesConsume is the bit-identity contract of
// the bulk path: ConsumeMany(k, dst) must fill dst with exactly the values
// len(dst) repeated Consume(k) calls produce, leave the cursor in the same
// place, and fail (consuming nothing) exactly when the repeated calls could
// not all succeed. Randomized widths and counts cross word boundaries in
// every alignment.
func TestBitStringConsumeManyMatchesConsume(t *testing.T) {
	f := func(seed uint64, rawN uint16, rawSkip, rawK, rawCount uint8) bool {
		n := int(rawN % 700)
		src := New(seed)
		a := NewBitString(src, n)
		b := a.Clone()
		// Random pre-skip so the bulk read starts at any bit alignment.
		if skip := int(rawSkip); n > 0 {
			pre := skip % (n + 1)
			for pre > 0 {
				step := pre
				if step > 64 {
					step = 64
				}
				va, _ := a.Consume(step)
				vb, _ := b.Consume(step)
				if va != vb {
					return false
				}
				pre -= step
			}
		}
		k := int(rawK % 66) // includes the invalid k = 65
		count := int(rawCount % 40)
		dst := make([]uint64, count)
		okMany := a.ConsumeMany(k, dst)

		want := make([]uint64, count)
		okAll := k >= 0 && k <= 64
		if okAll {
			probe := b.Clone()
			for i := range want {
				v, ok := probe.Consume(k)
				if !ok {
					okAll = false
					break
				}
				want[i] = v
			}
		}
		if okMany != okAll {
			return false
		}
		if !okMany {
			// All-or-nothing: the cursor must not have moved.
			return a.Remaining() == b.Remaining()
		}
		for i := range want {
			v, ok := b.Consume(k)
			if !ok || v != want[i] || dst[i] != v {
				return false
			}
		}
		return a.Remaining() == b.Remaining()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestWordsOffsetSkipMatchesConsume: a word-level batch decode over
// Words()/Offset(), committed with Skip, observes exactly the bits that
// repeated Consume calls would return, and Skip moves the cursor exactly
// as Consume does (including the all-or-nothing failure).
func TestWordsOffsetSkipMatchesConsume(t *testing.T) {
	f := func(seed uint64, rawN uint16, chunks []uint8) bool {
		n := int(rawN % 700)
		a := NewBitString(New(seed), n)
		b := a.Clone()
		words := a.Words()
		for _, c := range chunks {
			k := int(c % 65)
			vb, okb := b.Consume(k)
			// Manual extraction at the current offset, the way the
			// protocol layer's phase decode reads fields.
			cur := a.Offset()
			oka := a.Len()-cur >= k
			var va uint64
			if oka && k > 0 {
				i, off := cur>>6, uint(cur)&63
				va = words[i] >> off
				if i+1 < len(words) {
					va |= words[i+1] << 1 << (63 - off)
				}
				va &= uint64(1)<<uint(k) - 1
			}
			if oka != okb {
				return false
			}
			if !okb {
				if a.Skip(k) {
					return false // Skip must fail exactly when Consume does
				}
				continue
			}
			if va != vb || !a.Skip(k) {
				return false
			}
			if a.Offset() != a.Len()-b.Remaining() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSkipRejectsNegative(t *testing.T) {
	b := NewBitString(New(5), 32)
	if b.Skip(-1) {
		t.Error("Skip(-1) succeeded")
	}
	if b.Skip(33) {
		t.Error("Skip past the end succeeded")
	}
	if b.Offset() != 0 {
		t.Errorf("failed Skip moved the cursor to %d", b.Offset())
	}
	if !b.Skip(32) || b.Offset() != 32 {
		t.Error("Skip of exactly remaining bits failed")
	}
}

func TestBitStringConsumeManyZeroWidth(t *testing.T) {
	b := NewBitString(New(3), 64)
	dst := []uint64{7, 7, 7}
	if !b.ConsumeMany(0, dst) {
		t.Fatal("ConsumeMany(0) failed")
	}
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("dst[%d] = %d after zero-width bulk consume", i, v)
		}
	}
	if b.Remaining() != 64 {
		t.Fatalf("zero-width bulk consume moved the cursor: %d remaining", b.Remaining())
	}
	if !b.ConsumeMany(5, nil) {
		t.Fatal("empty bulk consume failed")
	}
}

// BenchmarkBitStringConsumeMany measures the bulk path against
// BenchmarkBitStringConsume's repeated scalar calls at the same width.
func BenchmarkBitStringConsumeMany(b *testing.B) {
	bs := NewBitString(New(1), 1<<20)
	dst := make([]uint64, 512)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i += len(dst) {
		if !bs.ConsumeMany(7, dst) {
			bs.Reset()
			continue
		}
		sink += dst[0]
	}
	_ = sink
}

// BenchmarkBitStringConsumeProtocol replays the protocol layer's per-round
// coin pattern (a K1-bit participation field, then a K2-bit selection field
// on the ~2^-K1 participant rounds) through scalar Consume calls — the
// pre-plan per-node-per-round hot path that the phase-plan decode batches.
func BenchmarkBitStringConsumeProtocol(b *testing.B) {
	const k1, k2 = 4, 3
	bs := NewBitString(New(1), 1<<20)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		v, ok := bs.Consume(k1)
		if !ok {
			bs.Reset()
			continue
		}
		if v == 0 {
			bv, _ := bs.Consume(k2)
			sink += bv
		}
	}
	_ = sink
}
