// Package xrand provides a deterministic, splittable pseudo-random number
// generator used throughout the simulator.
//
// Determinism is a hard requirement: the paper's model resolves all
// non-determinism (link scheduler, environment) before an execution begins,
// so the only randomness left is the processes' coin flips. Giving every
// process its own independent stream — derived from (experiment seed, node
// index) — makes executions reproducible and makes the sequential and
// concurrent engine drivers produce bit-identical traces regardless of
// goroutine scheduling.
//
// The generator is xoshiro256** seeded via SplitMix64, both public-domain
// algorithms by Blackman and Vigna. They are implemented here directly so the
// module stays stdlib-only and the streams are stable across Go releases
// (math/rand makes no cross-version stream guarantees).
package xrand
