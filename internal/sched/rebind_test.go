package sched

import (
	"testing"

	"lbcast/internal/dualgraph"
)

// TestAdaptiveRebindAfterPatch is the regression test for stale adversary
// caches across topology patches: unreliable edge indices are renumbered by
// PatchNode, so an unrebound Adaptive aims its manufactured collision at an
// edge that no longer exists (or worse, at a different edge that inherited
// the index). Rebind must bring the adversary back in line with a freshly
// constructed one.
func TestAdaptiveRebindAfterPatch(t *testing.T) {
	// Target 0 with reliable neighbor 1 and unreliable edges {0,2} (index 0)
	// and {0,3} (index 1).
	d, err := dualgraph.Abstract(4,
		[]dualgraph.Edge{{U: 0, V: 1}},
		[]dualgraph.Edge{{U: 0, V: 2}, {U: 0, V: 3}},
	)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAdaptive(d, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Sanity: with node 1 (reliable) and node 3 transmitting, the adversary
	// includes edge {0,3} — index 1 before the patch.
	tx := []bool{false, true, false, true}
	a.ObserveTransmitters(1, tx)
	if !a.Included(1, 1) || a.Included(1, 0) {
		t.Fatalf("pre-patch adversary should include edge 1 only")
	}

	// Node 2 leaves: edge {0,2} disappears and {0,3} is renumbered to 0.
	if err := d.PatchNode(2, nil, nil, dualgraph.GreyUnreliable); err != nil {
		t.Fatal(err)
	}
	if got := len(d.UnreliableEdges()); got != 1 {
		t.Fatalf("patched dual has %d unreliable edges, want 1", got)
	}

	// The stale cache still aims at the old index.
	a.ObserveTransmitters(2, tx)
	if a.Included(2, 0) {
		t.Fatalf("stale adversary accidentally correct — test topology no longer exercises the bug")
	}

	if err := a.Rebind(d); err != nil {
		t.Fatal(err)
	}
	a.ObserveTransmitters(3, tx)
	if !a.Included(3, 0) {
		t.Fatalf("rebound adversary must include the renumbered edge 0")
	}
	if a.Included(3, 1) {
		t.Fatalf("rebound adversary still references the removed edge index 1")
	}

	// The rebound adversary must agree edge-for-edge with a freshly built one.
	fresh, err := NewAdaptive(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	for round := 4; round < 8; round++ {
		a.ObserveTransmitters(round, tx)
		fresh.ObserveTransmitters(round, tx)
		for e := 0; e < len(d.UnreliableEdges()); e++ {
			if a.Included(round, e) != fresh.Included(round, e) {
				t.Fatalf("round %d edge %d: rebound %v, fresh %v",
					round, e, a.Included(round, e), fresh.Included(round, e))
			}
		}
	}
}
