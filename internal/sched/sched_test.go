package sched

import (
	"math"
	"testing"
	"testing/quick"

	"lbcast/internal/dualgraph"
)

func TestNeverAlways(t *testing.T) {
	for tt := 1; tt < 100; tt++ {
		for e := 0; e < 5; e++ {
			if (Never{}).Included(tt, e) {
				t.Fatal("Never included an edge")
			}
			if !(Always{}).Included(tt, e) {
				t.Fatal("Always excluded an edge")
			}
		}
	}
}

func TestRandomOblivious(t *testing.T) {
	// Obliviousness: answers are a pure function of (t, edge).
	s := Random{P: 0.5, Seed: 42}
	f := func(tt uint16, e uint16) bool {
		a := s.Included(int(tt), int(e))
		b := s.Included(int(tt), int(e))
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomRate(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.9} {
		s := Random{P: p, Seed: 7}
		const trials = 50000
		hits := 0
		for i := 0; i < trials; i++ {
			if s.Included(i, i*31) {
				hits++
			}
		}
		got := float64(hits) / trials
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Random{P=%v} empirical rate %v", p, got)
		}
	}
}

func TestRandomExtremes(t *testing.T) {
	if (Random{P: 0, Seed: 1}).Included(3, 4) {
		t.Error("P=0 included an edge")
	}
	if !(Random{P: 1, Seed: 1}).Included(3, 4) {
		t.Error("P=1 excluded an edge")
	}
}

func TestRandomSeedsDiffer(t *testing.T) {
	a := Random{P: 0.5, Seed: 1}
	b := Random{P: 0.5, Seed: 2}
	same := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		if a.Included(i, 0) == b.Included(i, 0) {
			same++
		}
	}
	if same > trials*3/4 || same < trials/4 {
		t.Errorf("seeds produce suspiciously correlated schedules: %d/%d equal", same, trials)
	}
}

func TestPeriodic(t *testing.T) {
	s := Periodic{Period: 4, OnRounds: 2}
	want := map[int]bool{1: true, 2: true, 3: false, 4: false, 5: true, 6: true, 7: false}
	for tt, w := range want {
		if got := s.Included(tt, 0); got != w {
			t.Errorf("Periodic.Included(%d) = %v, want %v", tt, got, w)
		}
	}
	if (Periodic{Period: 0, OnRounds: 1}).Included(1, 0) {
		t.Error("Period=0 included an edge")
	}
}

func TestAntiDecayHalves(t *testing.T) {
	s := AntiDecay{CycleLen: 4}
	// Rounds 1,2 are the high-probability half (included); 3,4 excluded.
	for _, tc := range []struct {
		t    int
		want bool
	}{{1, true}, {2, true}, {3, false}, {4, false}, {5, true}, {8, false}} {
		if got := s.Included(tc.t, 0); got != tc.want {
			t.Errorf("AntiDecay.Included(%d) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestAntiDecayOffset(t *testing.T) {
	base := AntiDecay{CycleLen: 6}
	shift := AntiDecay{CycleLen: 6, Offset: 3}
	for tt := 1; tt <= 24; tt++ {
		if base.Included(tt+3, 0) != shift.Included(tt, 0) {
			t.Fatalf("offset misaligned at t=%d", tt)
		}
	}
}

func TestTunedAntiDecay(t *testing.T) {
	// With many senders the leak-minimising split keeps more than the naive
	// half included: contention stays lethal deep into the cycle. For 1025
	// senders over an 11-cycle, "include while k·p > ln k" gives split 7.
	s := TunedAntiDecay(1025, 11)
	if s.OnPositions != 7 {
		t.Errorf("OnPositions = %d, want 7 (> naive half %d)", s.OnPositions, (11+1)/2)
	}
	if s.CycleLen != 11 {
		t.Errorf("CycleLen = %d", s.CycleLen)
	}
	// The tuned schedule is still a pure function of t.
	for tt := 1; tt <= 30; tt++ {
		if s.Included(tt, 0) != s.Included(tt, 1) || s.Included(tt, 0) != s.Included(tt, 0) {
			t.Fatal("tuned schedule inconsistent")
		}
	}
	// With a single sender, including anything only helps the victim;
	// the optimum is to include nothing... except the lone-sender leak is
	// identical either way, so just require a valid split.
	if got := TunedAntiDecay(1, 4).OnPositions; got < 0 || got > 4 {
		t.Errorf("degenerate split %d", got)
	}
}

func TestAntiDecayOnPositionsOverride(t *testing.T) {
	s := AntiDecay{CycleLen: 6, OnPositions: 5}
	for tt := 1; tt <= 6; tt++ {
		want := tt <= 5
		if got := s.Included(tt, 0); got != want {
			t.Errorf("Included(%d) = %v, want %v", tt, got, want)
		}
	}
}

func TestAntiDecayOblivious(t *testing.T) {
	s := AntiDecay{CycleLen: 8, Offset: 2}
	f := func(tt int16, e uint8) bool {
		return s.Included(int(tt), int(e)) == s.Included(int(tt), int(e))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// adaptiveFixture builds the star-with-decoys dual graph for adversary tests.
func adaptiveFixture(t *testing.T, decoys int) *dualgraph.Dual {
	t.Helper()
	d, err := dualgraph.StarWithDecoys(decoys)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAdaptiveCollidesSoleReliableTransmitter(t *testing.T) {
	d := adaptiveFixture(t, 3)
	a, err := NewAdaptive(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 (reliable neighbor) transmits; decoy 2 transmits as well.
	tx := make([]bool, d.N())
	tx[1] = true
	tx[2] = true
	a.ObserveTransmitters(1, tx)
	included := 0
	var chosenPeer int32 = -1
	for i := range d.UnreliableEdges() {
		if a.Included(1, i) {
			included++
			e := d.UnreliableEdges()[i]
			chosenPeer = e.U + e.V // one endpoint is 0
		}
	}
	if included != 1 {
		t.Fatalf("adversary included %d edges, want exactly 1", included)
	}
	if chosenPeer != 2 {
		t.Fatalf("adversary chose peer %d, want transmitting decoy 2", chosenPeer)
	}
}

func TestAdaptiveSilentWhenNoDeliveryThreat(t *testing.T) {
	d := adaptiveFixture(t, 3)
	a, err := NewAdaptive(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		tx   func([]bool)
	}{
		{"nobody transmits", func([]bool) {}},
		{"only decoys transmit", func(tx []bool) { tx[2], tx[3] = true, true }},
		{"two reliable transmitters collide already", func(tx []bool) { tx[1] = true }},
	}
	// The third case needs a second reliable neighbor; StarWithDecoys has
	// only one, so emulate with reliableTx≠1 by zero transmitters instead.
	for _, tc := range cases[:2] {
		t.Run(tc.name, func(t *testing.T) {
			tx := make([]bool, d.N())
			tc.tx(tx)
			a.ObserveTransmitters(2, tx)
			for i := range d.UnreliableEdges() {
				if a.Included(2, i) {
					t.Fatalf("adversary included edge %d with no delivery to block", i)
				}
			}
		})
	}
}

func TestAdaptiveNoTransmittingDecoy(t *testing.T) {
	d := adaptiveFixture(t, 2)
	a, err := NewAdaptive(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Reliable neighbor transmits alone: the adversary cannot manufacture a
	// collision because no unreliable peer transmits.
	tx := make([]bool, d.N())
	tx[1] = true
	a.ObserveTransmitters(5, tx)
	for i := range d.UnreliableEdges() {
		if a.Included(5, i) {
			t.Fatal("adversary included an edge with a silent peer")
		}
	}
}

func TestAdaptiveStaleRound(t *testing.T) {
	d := adaptiveFixture(t, 2)
	a, err := NewAdaptive(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	tx := make([]bool, d.N())
	tx[1], tx[2] = true, true
	a.ObserveTransmitters(3, tx)
	// Queries for other rounds must not leak the stale decision.
	for i := range d.UnreliableEdges() {
		if a.Included(4, i) {
			t.Fatal("adversary answered for a round it did not observe")
		}
	}
}

func TestNewAdaptiveRejectsBadTarget(t *testing.T) {
	d := adaptiveFixture(t, 1)
	if _, err := NewAdaptive(d, -1); err == nil {
		t.Error("want error for negative target")
	}
	if _, err := NewAdaptive(d, d.N()); err == nil {
		t.Error("want error for out-of-range target")
	}
}

// TestIncludedBatchMatchesIncluded checks the BatchLinkScheduler contract
// for every scheduler: the batch fill must be bit-identical to per-edge
// queries, including overwriting stale mask contents.
func TestIncludedBatchMatchesIncluded(t *testing.T) {
	d := adaptiveFixture(t, 3)
	adaptive, err := NewAdaptive(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	tx := make([]bool, d.N())
	tx[1], tx[2] = true, true

	type batcher interface {
		Included(t, edge int) bool
		IncludedBatch(t int, mask []bool)
	}
	cases := []struct {
		name string
		s    batcher
		prep func(round int)
	}{
		{"never", Never{}, nil},
		{"always", Always{}, nil},
		{"random", Random{P: 0.37, Seed: 123}, nil},
		{"random-p0", Random{P: 0, Seed: 1}, nil},
		{"random-p1", Random{P: 1, Seed: 1}, nil},
		{"periodic", Periodic{Period: 5, OnRounds: 2}, nil},
		{"antidecay", AntiDecay{CycleLen: 6, Offset: 2}, nil},
		{"adaptive", adaptive, func(round int) { adaptive.ObserveTransmitters(round, tx) }},
	}
	nEdges := len(d.UnreliableEdges())
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mask := make([]bool, nEdges)
			for round := 1; round <= 40; round++ {
				if tc.prep != nil {
					tc.prep(round)
				}
				// Poison the mask: batch fills must overwrite every entry.
				for i := range mask {
					mask[i] = round%2 == 0
				}
				tc.s.IncludedBatch(round, mask)
				for e := 0; e < nEdges; e++ {
					if want := tc.s.Included(round, e); mask[e] != want {
						t.Fatalf("round %d edge %d: batch %v, Included %v", round, e, mask[e], want)
					}
				}
			}
		})
	}
}

// TestAdaptiveDeterministicChoice pins the determinism fix: with several
// transmitting decoys the adversary must always choose the lowest-index
// eligible edge, identically across repeated constructions (the old map
// iteration made this choice nondeterministic across runs).
func TestAdaptiveDeterministicChoice(t *testing.T) {
	d := adaptiveFixture(t, 4)
	lowest := -1
	for _, arc := range d.UnreliableIncidence(0) {
		if lowest == -1 || int(arc.EdgeIndex()) < lowest {
			lowest = int(arc.EdgeIndex())
		}
	}
	for trial := 0; trial < 20; trial++ {
		a, err := NewAdaptive(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		tx := make([]bool, d.N())
		tx[1] = true // the sole reliable transmitter: a delivery threat
		for u := 2; u < d.N(); u++ {
			tx[u] = true // every decoy transmits: all edges eligible
		}
		a.ObserveTransmitters(1, tx)
		chosen := -1
		for i := range d.UnreliableEdges() {
			if a.Included(1, i) {
				if chosen != -1 {
					t.Fatal("more than one edge included")
				}
				chosen = i
			}
		}
		if chosen != lowest {
			t.Fatalf("trial %d: chose edge %d, want lowest-index eligible %d", trial, chosen, lowest)
		}
	}
}

// TestRandomPathsBitIdentical pins the contract that Included, IncludedBatch
// and IncludedFor — and the cached NewRandom construction vs a plain literal
// — produce bit-identical schedules across edge-case probabilities: 0,
// subnormal-small, ½, the largest float below 1, and 1.
func TestRandomPathsBitIdentical(t *testing.T) {
	ps := []float64{0, 1e-18, 0.5, math.Nextafter(1, 0), 1}
	const edges = 257
	edgeIDs := make([]int32, edges)
	for i := range edgeIDs {
		edgeIDs[i] = int32(i)
	}
	mask := make([]bool, edges)
	sub := make([]bool, edges)
	for _, p := range ps {
		cached := NewRandom(p, 12345)
		literal := Random{P: p, Seed: 12345}
		for _, round := range []int{1, 2, 100, 1 << 20} {
			cached.IncludedBatch(round, mask)
			cached.IncludedFor(round, edgeIDs, sub)
			for e := 0; e < edges; e++ {
				want := literal.Included(round, e)
				if got := cached.Included(round, e); got != want {
					t.Fatalf("P=%v round=%d edge=%d: cached Included=%v, literal=%v", p, round, e, got, want)
				}
				if mask[e] != want {
					t.Fatalf("P=%v round=%d edge=%d: IncludedBatch=%v, Included=%v", p, round, e, mask[e], want)
				}
				if sub[e] != want {
					t.Fatalf("P=%v round=%d edge=%d: IncludedFor=%v, Included=%v", p, round, e, sub[e], want)
				}
			}
		}
		if v, ok := cached.Uniform(1); ok {
			for e := 0; e < edges; e++ {
				if cached.Included(1, e) != v {
					t.Fatalf("P=%v: Uniform=(%v,true) but Included(1,%d)=%v", p, v, e, cached.Included(1, e))
				}
			}
		} else if p <= 0 || p >= 1 {
			t.Fatalf("P=%v: degenerate probability must report a uniform round", p)
		}
	}
}

// TestSparseAgreesWithBatch cross-checks every scheduler's sparse interface
// (Uniform + IncludedFor) against its batch mask over many rounds.
func TestSparseAgreesWithBatch(t *testing.T) {
	const edges = 64
	edgeIDs := make([]int32, edges)
	for i := range edgeIDs {
		edgeIDs[i] = int32(i)
	}
	cases := []struct {
		name string
		s    interface {
			Included(int, int) bool
			IncludedBatch(int, []bool)
			Uniform(int) (bool, bool)
			IncludedFor(int, []int32, []bool)
		}
	}{
		{"never", Never{}},
		{"always", Always{}},
		{"random", NewRandom(0.3, 99)},
		{"periodic", Periodic{Period: 5, OnRounds: 2}},
		{"antidecay", AntiDecay{CycleLen: 4}},
	}
	mask := make([]bool, edges)
	sub := make([]bool, edges)
	for _, c := range cases {
		for round := 1; round <= 40; round++ {
			c.s.IncludedBatch(round, mask)
			c.s.IncludedFor(round, edgeIDs, sub)
			uv, uok := c.s.Uniform(round)
			for e := 0; e < edges; e++ {
				if sub[e] != mask[e] {
					t.Fatalf("%s round %d edge %d: IncludedFor=%v, IncludedBatch=%v", c.name, round, e, sub[e], mask[e])
				}
				if uok && mask[e] != uv {
					t.Fatalf("%s round %d edge %d: Uniform=(%v,true) but mask=%v", c.name, round, e, uv, mask[e])
				}
			}
		}
	}
}
