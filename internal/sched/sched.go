package sched

import (
	"fmt"
	"math"
	"sort"

	"lbcast/internal/dualgraph"
)

// fill overwrites every entry of mask with v.
func fill(mask []bool, v bool) {
	for i := range mask {
		mask[i] = v
	}
}

// Never excludes every unreliable edge in every round: communication happens
// on G alone. The least adversarial oblivious schedule.
type Never struct{}

// Included implements sim.LinkScheduler.
func (Never) Included(int, int) bool { return false }

// IncludedBatch implements sim.BatchLinkScheduler.
func (Never) IncludedBatch(_ int, mask []bool) { fill(mask, false) }

// Uniform implements sim.SparseLinkScheduler: every round is all-excluded.
func (Never) Uniform(int) (bool, bool) { return false, true }

// IncludedFor implements sim.SparseLinkScheduler.
func (Never) IncludedFor(_ int, edges []int32, out []bool) { fill(out[:len(edges)], false) }

// Always includes every unreliable edge in every round: communication
// happens on G′ in full. Maximum steady contention.
type Always struct{}

// Included implements sim.LinkScheduler.
func (Always) Included(int, int) bool { return true }

// IncludedBatch implements sim.BatchLinkScheduler.
func (Always) IncludedBatch(_ int, mask []bool) { fill(mask, true) }

// Uniform implements sim.SparseLinkScheduler: every round is all-included.
func (Always) Uniform(int) (bool, bool) { return true, true }

// IncludedFor implements sim.SparseLinkScheduler.
func (Always) IncludedFor(_ int, edges []int32, out []bool) { fill(out[:len(edges)], true) }

// Random includes each unreliable edge independently with probability P in
// each round. The schedule is a deterministic hash of (Seed, t, edge), so it
// is oblivious: re-querying never changes an answer and the execution's coin
// flips cannot influence it.
//
// Construct with NewRandom to precompute the integer comparison threshold;
// zero-value and literal construction remain valid (the threshold is then
// derived on demand, one float op per batch call).
type Random struct {
	P    float64
	Seed uint64

	// thresh caches randThresh(P). Zero means "not cached": recompute.
	// (For any P > 0, randThresh ≥ 1, so zero is unambiguous.)
	thresh uint64
}

// NewRandom builds a Random scheduler with the inclusion threshold
// precomputed, so steady-state rounds never touch the float path.
func NewRandom(p float64, seed uint64) Random {
	return Random{P: p, Seed: seed, thresh: randThresh(p)}
}

// randThresh compiles an inclusion probability to an integer threshold on
// the top 53 bits of the edge hash: (h>>11)/2^53 < P exactly when
// h>>11 < ⌈P·2^53⌉, the scaling by a power of two being lossless.
func randThresh(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1 << 53
	}
	return uint64(math.Ceil(p * (1 << 53)))
}

// threshold returns the cached comparison threshold, deriving it when the
// value was constructed as a literal.
func (s Random) threshold() uint64 {
	if s.thresh != 0 {
		return s.thresh
	}
	return randThresh(s.P)
}

// Included implements sim.LinkScheduler. Bit-identical to the batch and
// sparse fills: all three compare the same 53-bit hash against the same
// integer threshold.
func (s Random) Included(t, edge int) bool {
	if s.P <= 0 {
		return false
	}
	if s.P >= 1 {
		return true
	}
	return mix3(s.Seed, uint64(t), uint64(edge))>>11 < s.threshold()
}

// IncludedBatch implements sim.BatchLinkScheduler: one pass over the mask
// with the hash inlined and the probability compiled to an integer
// threshold, no per-edge dispatch or float conversion.
func (s Random) IncludedBatch(t int, mask []bool) {
	if s.P <= 0 {
		fill(mask, false)
		return
	}
	if s.P >= 1 {
		fill(mask, true)
		return
	}
	thresh := s.threshold()
	for i := range mask {
		mask[i] = mix3(s.Seed, uint64(t), uint64(i))>>11 < thresh
	}
}

// Uniform implements sim.SparseLinkScheduler: only the degenerate
// probabilities produce an edge-independent round.
func (s Random) Uniform(int) (bool, bool) {
	if s.P <= 0 {
		return false, true
	}
	if s.P >= 1 {
		return true, true
	}
	return false, false
}

// IncludedFor implements sim.SparseLinkScheduler: hash only the requested
// edges — the engine passes the edges incident to this round's transmitters,
// making sparse rounds independent of |E′\E|.
func (s Random) IncludedFor(t int, edges []int32, out []bool) {
	thresh := s.threshold()
	for i, e := range edges {
		out[i] = mix3(s.Seed, uint64(t), uint64(e))>>11 < thresh
	}
}

// Periodic includes all unreliable edges during the first OnRounds rounds of
// every Period-round cycle and none otherwise. Captures bursty interference
// (e.g. a periodic co-located transmitter).
type Periodic struct {
	Period   int
	OnRounds int
}

// Included implements sim.LinkScheduler.
func (s Periodic) Included(t, _ int) bool {
	if s.Period <= 0 {
		return false
	}
	return ((t-1)%s.Period+s.Period)%s.Period < s.OnRounds
}

// IncludedBatch implements sim.BatchLinkScheduler. The decision is uniform
// across edges, so the batch fill computes it once.
func (s Periodic) IncludedBatch(t int, mask []bool) { fill(mask, s.Included(t, 0)) }

// Uniform implements sim.SparseLinkScheduler: the cycle position decides the
// whole round at once.
func (s Periodic) Uniform(t int) (bool, bool) { return s.Included(t, 0), true }

// IncludedFor implements sim.SparseLinkScheduler.
func (s Periodic) IncludedFor(t int, edges []int32, out []bool) {
	fill(out[:len(edges)], s.Included(t, 0))
}

// AntiDecay is the oblivious adversary sketched in the paper's introduction:
// it knows that a fixed-schedule protocol (Decay, [2]) cycles through
// geometrically decreasing broadcast probabilities with cycle length
// CycleLen, and it inflates contention exactly when the protocol's broadcast
// probability is high — including every unreliable edge during the first
// half of each cycle — and deflates it (excluding all of them) when the
// probability is low. Because the protocol's schedule is fixed and known,
// this adversary is legally oblivious, yet it defeats the fixed schedule;
// LBAlg's seed-permuted schedules are immune by design.
type AntiDecay struct {
	// CycleLen is the length of the target protocol's probability cycle,
	// typically log₂ Δ.
	CycleLen int
	// Offset shifts the adversary's cycle relative to round 1, so tests can
	// align or misalign it with the victim protocol.
	Offset int
	// OnPositions is how many leading cycle positions (the high-probability
	// ones) get every unreliable edge included. Zero selects the naive half
	// split; TunedAntiDecay computes the leak-minimising split instead.
	OnPositions int
}

// Included implements sim.LinkScheduler.
func (s AntiDecay) Included(t, _ int) bool {
	if s.CycleLen <= 0 {
		return false
	}
	on := s.OnPositions
	if on <= 0 {
		on = (s.CycleLen + 1) / 2
	}
	pos := ((t-1+s.Offset)%s.CycleLen + s.CycleLen) % s.CycleLen
	return pos < on
}

// IncludedBatch implements sim.BatchLinkScheduler. The decision is uniform
// across edges, so the batch fill computes it once.
func (s AntiDecay) IncludedBatch(t int, mask []bool) { fill(mask, s.Included(t, 0)) }

// Uniform implements sim.SparseLinkScheduler: the cycle position decides the
// whole round at once.
func (s AntiDecay) Uniform(t int) (bool, bool) { return s.Included(t, 0), true }

// IncludedFor implements sim.SparseLinkScheduler.
func (s AntiDecay) IncludedFor(t int, edges []int32, out []bool) {
	fill(out[:len(edges)], s.Included(t, 0))
}

// TunedAntiDecay builds the adversary with the split that minimises the
// victim's per-cycle delivery probability, given the number of saturated
// senders around the target. At cycle position pos every sender transmits
// with probability p = 2^{−(1+pos)}:
//
//   - included positions leak via "exactly one of the k connected senders
//     transmits": k·p·(1−p)^{k−1};
//   - excluded positions leave only the one reliable sender connected and
//     leak exactly p.
//
// The optimal split keeps links included while contention is high enough
// that the exactly-one event is rarer than the lone-sender event, which is
// what drives the victim's first-reception time to Θ(k/log k) cycles — the
// Θ̃(Δ) collapse the paper's introduction describes — while seed-permuted
// schedules are unaffected.
func TunedAntiDecay(senders, cycleLen int) AntiDecay {
	best, bestLeak := (cycleLen+1)/2, math.Inf(1)
	for split := 0; split <= cycleLen; split++ {
		leak := 0.0
		for pos := 0; pos < cycleLen; pos++ {
			p := math.Pow(2, -float64(1+pos))
			if pos < split {
				leak += float64(senders) * p * math.Pow(1-p, float64(senders-1))
			} else {
				leak += p
			}
		}
		if leak < bestLeak {
			best, bestLeak = split, leak
		}
	}
	return AntiDecay{CycleLen: cycleLen, OnPositions: best}
}

// Adaptive is the non-oblivious adversary of the E-ADAPT ablation. It
// watches the transmit decisions of the current round — power the dual
// graph model explicitly denies its link scheduler — and suppresses
// deliveries at a single target node: whenever exactly one reliable
// neighbor of the target transmits (a round that would otherwise deliver),
// it includes one unreliable edge to a transmitting decoy, manufacturing a
// collision. When no delivery is threatened it includes nothing, starving
// the target entirely.
type Adaptive struct {
	target       int
	reliableNbrs []int32
	// incident lists the unreliable edges touching the target, sorted by
	// edge index. A slice (not a map) keeps the adversary deterministic:
	// identical seeds must produce identical executions, so the collision
	// edge is always the lowest-index eligible one.
	incident []incidentArc

	curRound   int
	chosenEdge int
}

// incidentArc is one unreliable edge at the adversary's target.
type incidentArc struct {
	edge int
	peer int32
}

// NewAdaptive builds an adaptive adversary against the given target node.
func NewAdaptive(d *dualgraph.Dual, target int) (*Adaptive, error) {
	if target < 0 || target >= d.N() {
		return nil, fmt.Errorf("sched: target %d out of range [0,%d)", target, d.N())
	}
	a := &Adaptive{target: target, chosenEdge: -1}
	a.rebind(d)
	return a, nil
}

// Rebind re-derives the adversary's cached view of the dual graph — the
// target's reliable neighborhood and unreliable incidence — after the graph
// was patched (dualgraph.Dual.PatchNode). The caches hold unreliable edge
// indices, which a patch renumbers, and the neighbor slice aliases adjacency
// storage a patch splices in place, so an unrebound Adaptive would replay
// stale adversary state against the new topology. Any in-flight round
// observation is discarded; the engine re-observes before the next query.
func (a *Adaptive) Rebind(d *dualgraph.Dual) error {
	if a.target >= d.N() {
		return fmt.Errorf("sched: rebind target %d out of range [0,%d)", a.target, d.N())
	}
	a.rebind(d)
	return nil
}

func (a *Adaptive) rebind(d *dualgraph.Dual) {
	// Copy, do not alias: PatchNode edits adjacency lists in place, and a
	// cache that silently tracked some splices but not the edge renumbering
	// would be worse than a stale snapshot.
	a.reliableNbrs = append(a.reliableNbrs[:0], d.G.Neighbors(a.target)...)
	a.incident = a.incident[:0]
	for _, arc := range d.UnreliableIncidence(a.target) {
		a.incident = append(a.incident, incidentArc{edge: int(arc.EdgeIndex()), peer: arc.Peer()})
	}
	sort.Slice(a.incident, func(i, j int) bool { return a.incident[i].edge < a.incident[j].edge })
	a.curRound, a.chosenEdge = 0, -1
}

// ObserveTransmitters implements sim.TransmitterAware: the engine reveals
// the round's transmit decisions before querying Included.
func (a *Adaptive) ObserveTransmitters(t int, transmitting []bool) {
	a.curRound = t
	a.chosenEdge = -1
	reliableTx := 0
	for _, v := range a.reliableNbrs {
		if transmitting[v] {
			reliableTx++
		}
	}
	if reliableTx != 1 {
		// Zero transmitters: silence; two or more: already a collision.
		return
	}
	for _, arc := range a.incident {
		if transmitting[arc.peer] {
			a.chosenEdge = arc.edge
			return
		}
	}
}

// Included implements sim.LinkScheduler.
func (a *Adaptive) Included(t, edge int) bool {
	return t == a.curRound && edge == a.chosenEdge
}

// IncludedBatch implements sim.BatchLinkScheduler: all edges excluded except
// the round's chosen collision edge, if any.
func (a *Adaptive) IncludedBatch(t int, mask []bool) {
	fill(mask, false)
	if t == a.curRound && a.chosenEdge >= 0 && a.chosenEdge < len(mask) {
		mask[a.chosenEdge] = true
	}
}

// Uniform implements sim.SparseLinkScheduler: rounds without a manufactured
// collision are all-excluded; a round with a chosen edge is non-uniform.
func (a *Adaptive) Uniform(t int) (bool, bool) {
	if t == a.curRound && a.chosenEdge >= 0 {
		return false, false
	}
	return false, true
}

// IncludedFor implements sim.SparseLinkScheduler.
func (a *Adaptive) IncludedFor(t int, edges []int32, out []bool) {
	for i, e := range edges {
		out[i] = t == a.curRound && int(e) == a.chosenEdge
	}
}

// mix3 hashes three words with SplitMix64-style finalisation.
func mix3(a, b, c uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 ^ b*0xbf58476d1ce4e5b9 ^ c*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
