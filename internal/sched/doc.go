// Package sched provides link schedulers for the dual graph model: the
// adversarial entity that decides, for every round t, which unreliable edges
// (E′ \ E) join the communication topology G_t.
//
// The paper's guarantees assume an oblivious scheduler — the whole schedule
// G = G₁, G₂, … is fixed before the execution starts. Every scheduler here
// except Adaptive is oblivious: Included(t, edge) is a pure function of its
// arguments. Adaptive implements the stronger adversary of [11] (Ghaffari,
// Lynch, Newport, PODC 2013) used by the E-ADAPT ablation to reproduce the
// result that efficient progress is impossible against adaptivity.
package sched
