package sinr

import (
	"fmt"
	"runtime"
	"testing"

	"lbcast/internal/dualgraph"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// coinTxProc transmits by private coin and records every reception into the
// trace, making trace equality a per-listener, per-round reception check.
type coinTxProc struct {
	env *sim.NodeEnv
	p   float64
}

func (c *coinTxProc) Init(env *sim.NodeEnv) { c.env = env }

func (c *coinTxProc) Transmit(t int) (any, bool) {
	return c.env.ID, c.env.Rng.Coin(c.p)
}

func (c *coinTxProc) Receive(t, from int, payload any, ok bool) {
	if ok {
		c.env.Rec.Record(sim.Event{Round: t, Node: c.env.ID, Kind: sim.EvHear, From: from})
	}
}

// TestParallelResolveBitIdentity pins the sharded SINR resolver against the
// sequential driver at full trace granularity: worker counts {1, 2, 7,
// GOMAXPROCS} must reproduce the sequential execution byte for byte. The
// placement is large enough to clear the engine's listener-count gate and
// the transmit rate high enough that most rounds clear BucketedMinTx, so
// both the bucketed and exact per-listener paths run sharded. Run under
// -race to also certify the shards' synchronisation.
func TestParallelResolveBitIdentity(t *testing.T) {
	d, err := dualgraph.RandomGeometric(400, 10, 10, 1.5, dualgraph.GreyUnreliable, xrand.New(17))
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.Tolerance = 0.05

	run := func(driver sim.Driver, workers int) *sim.Trace {
		m, err := NewModel(d.Emb, UniformPower(1), params)
		if err != nil {
			t.Fatal(err)
		}
		procs := make([]sim.Process, d.N())
		for u := range procs {
			procs[u] = &coinTxProc{p: 0.25}
		}
		e, err := sim.New(sim.Config{
			Dual: d, Procs: procs, Reception: m, Seed: 23,
			Driver: driver, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		e.Run(40)
		return e.Trace()
	}

	ref := run(sim.DriverSequential, 0)
	if ref.Deliveries == 0 {
		t.Fatalf("degenerate reference run: no deliveries")
	}
	for _, workers := range []int{1, 2, 7, runtime.GOMAXPROCS(0)} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got := run(sim.DriverWorkerPool, workers)
			if got.Len() != ref.Len() || got.Transmissions != ref.Transmissions ||
				got.Deliveries != ref.Deliveries || got.Collisions != ref.Collisions {
				t.Fatalf("aggregates diverged: %d/%d/%d/%d vs %d/%d/%d/%d",
					got.Len(), got.Transmissions, got.Deliveries, got.Collisions,
					ref.Len(), ref.Transmissions, ref.Deliveries, ref.Collisions)
			}
			for i := 0; i < ref.Len(); i++ {
				if got.At(i) != ref.At(i) {
					t.Fatalf("event %d diverged: %+v vs %+v", i, got.At(i), ref.At(i))
				}
			}
		})
	}
}

// TestResolveRangePartitionInvariance checks the ShardedReceptionModel
// contract directly, without an engine: any partition of the listener range
// must reproduce Resolve's output exactly, on both the bucketed (≥
// BucketedMinTx transmitters) and exact (below it) paths.
func TestResolveRangePartitionInvariance(t *testing.T) {
	rng := xrand.New(31)
	const n = 300
	m, _ := bucketedFixture(t, n, 0.05, UniformPower(1), 7)

	for _, txCount := range []int{BucketedMinTx - 5, BucketedMinTx + 40} {
		txs := make([]int32, 0, txCount)
		seen := make(map[int32]bool)
		for len(txs) < txCount {
			v := int32(rng.Intn(n))
			if !seen[v] {
				seen[v] = true
				txs = append(txs, v)
			}
		}
		// Resolve expects ascending transmitter ids.
		for i := 1; i < len(txs); i++ {
			for j := i; j > 0 && txs[j] < txs[j-1]; j-- {
				txs[j], txs[j-1] = txs[j-1], txs[j]
			}
		}

		want := make([]int32, n)
		m.Resolve(1, txs, want)

		for _, pieces := range []int{1, 3, 7} {
			got := make([]int32, n)
			if !m.PrepareRound(1, txs) {
				t.Fatalf("PrepareRound must opt in")
			}
			chunk := (n + pieces - 1) / pieces
			for lo := 0; lo < n; lo += chunk {
				m.ResolveRange(1, txs, got, lo, min(lo+chunk, n))
			}
			for u := range want {
				if got[u] != want[u] {
					t.Fatalf("txs=%d pieces=%d: listener %d got %d, want %d",
						txCount, pieces, u, got[u], want[u])
				}
			}
		}
	}
}
