// This file implements the region-bucketed SINR resolver: the near-linear
// replacement for the exact O(n·|txs|) resolution that kept the SINR layer
// off the n = 10⁵ sweep. Transmitters are bucketed per grid region
// (geo.GridIndex, the spatial index shared with dual graph construction and
// validation) and every listener accumulates interference ring by ring
// outward from its own region. Four stopping rules bound the work:
//
//  1. Silence, exactly: once every unseen transmitter is provably below the
//     decode floor β·N and the strongest seen one is too, the listener hears
//     silence — no approximation involved.
//  2. Blocked, exactly: once the accumulated interference alone already
//     defeats the best possible strongest transmitter (seen or unseen), the
//     outcome is Blocked regardless of everything not yet scanned.
//  3. Decode, exactly: once no unseen transmitter can outvie the strongest
//     seen one and even the maximum possible remaining interference cannot
//     break its decode inequality, the outcome is that transmitter.
//  4. Truncation, within tolerance: when no exact rule fires, scanning stops
//     as soon as the maximum possible remaining contribution falls to
//     Tolerance/(1+β).
//
// For rule 4 the truncation error ε on the interference sum satisfies
// |ε| ≤ Tolerance/(1+β). The decisions compare bestPw against β·N (error
// ≤ ε) and (1+β)·bestPw against β·(N+sum) (error ≤ (1+β)·|ε| ≤ Tolerance),
// so any listener whose exact decision margin exceeds Tolerance resolves
// identically to the exact resolver; bucketed_test.go pins both the
// tolerance-zero equivalence and this margin bound.
//
// Listeners that exhaust the ring rules (rare: they sit near the decode
// boundary) switch to one pass over the occupied transmitter regions
// (resolveFar): each far region is either accumulated exactly or replaced by
// the midpoint of its contribution interval, choosing the midpoint only when
// the cell's half-interval fits its proportional share of the scaled
// tolerance budget — so the total far-field error provably stays within the
// budget — and only when the cell provably cannot contain a decodable
// transmitter. That keeps the worst case at O(occupied tx regions + nearby
// transmitters) per listener instead of O(|txs|).

package sinr

import (
	"math"

	"lbcast/internal/geo"
	"lbcast/internal/sim"
)

// BucketedMinTx is the transmitter count below which bucketing cannot beat
// the exact scan (the per-round bucket build alone costs O(|txs|)).
const BucketedMinTx = 32

// farPassMinRing and farPassMaxRing frame the switch from ring expansion to
// the occupied-region pass for a still-undecided listener: never before the
// isolation neighborhood is fully exact (min), always once the ring-distance
// tail bound has tightened enough for rule 3 to have caught the
// strong-signal listeners (max), and in between as soon as the square ring
// area outgrows the occupied-region list (sparse rounds switch early).
const (
	farPassMinRing = 8
	farPassMaxRing = 32
)

// invPowSq returns d^{−α} from a squared distance, with the near-field
// clamp applied. The common integer exponents use their closed forms — the
// generic math.Pow dominated the resolver's profile — so the bucketed path's
// powers are algebraically equal to the exact resolver's Gain but not
// guaranteed bit-identical; the equivalence contract is outcome-level.
func (m *Model) invPowSq(d2 float64) float64 {
	if d2 < m.minDist2 {
		d2 = m.minDist2
	}
	switch m.powMode {
	case 2:
		return 1 / d2
	case 3:
		return 1 / (d2 * math.Sqrt(d2))
	case 4:
		return 1 / (d2 * d2)
	default:
		return math.Pow(math.Sqrt(d2), -m.p.Alpha)
	}
}

// bucketScratch is the reusable per-round state of the bucketed resolver.
// After prepareBuckets it is read-only for the rest of the round, which is
// what lets per-listener resolution shard across engine workers (see
// PrepareRound/ResolveRange in parallel.go).
type bucketScratch struct {
	cellPow  []float64 // per region: total power of this round's transmitters
	cellTx   [][]int32 // per region: this round's transmitters, ascending
	occupied []int32   // regions holding transmitters this round, in bucketing order
	totalPow float64   // total power of this round's transmitters
}

func newBucketScratch(gi *geo.GridIndex) *bucketScratch {
	return &bucketScratch{
		cellPow: make([]float64, gi.Len()),
		cellTx:  make([][]int32, gi.Len()),
	}
}

// prepareBuckets fills the region buckets for one round's transmitter set.
// It assumes m.grid is non-nil; callers gate on that.
func (m *Model) prepareBuckets(txs []int32) {
	s := m.bucket
	for _, ri := range s.occupied {
		s.cellPow[ri] = 0
		s.cellTx[ri] = s.cellTx[ri][:0]
	}
	s.occupied = s.occupied[:0]
	s.totalPow = 0
	for _, w := range txs {
		ri := m.grid.OfVertex(int(w))
		if len(s.cellTx[ri]) == 0 {
			s.occupied = append(s.occupied, int32(ri))
		}
		s.cellTx[ri] = append(s.cellTx[ri], w)
		s.cellPow[ri] += m.power[w]
		s.totalPow += m.power[w]
	}
}

// resolveBucketed resolves one round through the region buckets.
func (m *Model) resolveBucketed(txs []int32, out []int32) {
	m.prepareBuckets(txs)
	for u := range out {
		out[u] = m.resolveOneBucketed(u, len(txs), m.bucket.totalPow)
	}
}

// resolveOneBucketed computes listener u's outcome from the region buckets.
func (m *Model) resolveOneBucketed(u, txCount int, totalPow float64) int32 {
	s := m.bucket
	ru := m.grid.RegionOfVertex(u)
	_, _, nI, nJ := m.grid.Bounds()
	maxRing := int(max(nI, nJ)) // every cell is within this Chebyshev radius
	beta, noise := m.p.Beta, m.p.Noise
	betaN := beta * noise
	tolScaled := m.p.Tolerance / (1 + beta)
	pu := m.pos[u]

	sum, bestPw, visitedPow := 0.0, 0.0, 0.0
	best := int32(-1)
	visited := 0
	visitCell := func(ri int32) {
		for _, w := range s.cellTx[ri] {
			visited++
			visitedPow += m.power[w]
			if int(w) == u {
				continue
			}
			pw := m.pos[w]
			dx, dy := pu.X-pw.X, pu.Y-pw.Y
			rcv := m.power[w] * m.invPowSq(dx*dx+dy*dy)
			sum += rcv
			// Order-independent lowest-id tie-break: the bucketed visit
			// order is by ring, not by id, so ties compare ids explicitly.
			if rcv > bestPw || (rcv == bestPw && best >= 0 && w < best) {
				best, bestPw = w, rcv
			}
		}
	}
	decide := func() int32 {
		if best < 0 || bestPw < betaN {
			return sim.NoTransmitter
		}
		if bestPw >= beta*(noise+sum-bestPw) {
			return best
		}
		return sim.Blocked
	}

	for k := 0; ; k++ {
		m.visitRing(ru, k, visitCell)
		if visited == txCount {
			return decide()
		}
		// Every unseen transmitter sits in a ring beyond k, so its distance
		// is at least k·side (clamped to the near-field floor like every
		// gain is), bounding both its own strength and the remaining total.
		dMin := float64(k) * geo.RegionSide
		invA := m.invPowSq(dMin * dMin)
		remain := totalPow - visitedPow
		if remain < 0 {
			remain = 0
		}
		tail := remain * invA
		maxUnseen := m.maxPower * invA
		bU := bestPw
		if maxUnseen > bU {
			bU = maxUnseen
		}
		// Exact exits. Silence: nothing seen or unseen reaches the decode
		// floor. Blocked: the interference already accumulated defeats the
		// best possible strongest transmitter. Decode: nothing unseen can
		// outvie the strongest seen one, and even the whole remaining tail
		// cannot break its decode inequality.
		if bU < betaN {
			return sim.NoTransmitter
		}
		if bestPw >= betaN && (1+beta)*bU < beta*(noise+sum) {
			return sim.Blocked
		}
		if bestPw >= betaN && maxUnseen < bestPw &&
			bestPw >= beta*(noise+sum+tail-bestPw) {
			return best
		}
		// Tolerance truncation on the crude all-remaining bound.
		if tolScaled > 0 && tail <= tolScaled {
			return decide()
		}
		if k >= maxRing ||
			(k >= farPassMinRing && (k >= farPassMaxRing || (2*k+1)*(2*k+1) >= len(s.occupied))) {
			m.resolveFar(ru, k, remain, tolScaled, betaN, visitCell, func(v float64) { sum += v })
			return decide()
		}
	}
}

// visitRing applies visit to every occupied region on the Chebyshev ring of
// the given radius around center (the center cell itself for radius 0). The
// traversal order is fixed — top and bottom rows left to right, then the two
// side columns — so resolution stays a deterministic function of the round.
func (m *Model) visitRing(center geo.RegionID, k int, visit func(ri int32)) {
	at := func(i, j int32) {
		if ri, ok := m.grid.IndexOf(geo.RegionID{I: i, J: j}); ok && len(m.bucket.cellTx[ri]) > 0 {
			visit(int32(ri))
		}
	}
	if k == 0 {
		at(center.I, center.J)
		return
	}
	k32 := int32(k)
	for di := -k32; di <= k32; di++ {
		at(center.I+di, center.J-k32)
		at(center.I+di, center.J+k32)
	}
	for dj := -k32 + 1; dj <= k32-1; dj++ {
		at(center.I-k32, center.J+dj)
		at(center.I+k32, center.J+dj)
	}
}

// resolveFar finishes an undecided listener without expanding further rings:
// one pass over the occupied transmitter regions beyond the scanned radius.
// Each region's contribution lies in the interval fixed by its nearest and
// farthest point from the listener's cell (near-field clamp applied, so the
// interval genuinely brackets every member transmitter). A region is folded
// in as the interval midpoint — error at most the half-width — only when
//
//   - the half-width fits the region's proportional share of the scaled
//     tolerance budget (half·farPow ≤ tolScaled·cellPow, so the total error
//     over all midpointed regions is at most tolScaled), and
//   - even the interval's upper end stays below the decode floor β·N, so the
//     region provably cannot contain the transmitter any listener decodes
//     and skipping its members cannot change which transmitter is strongest
//     when that matters.
//
// Every other region — too close, too strong, or over budget — is
// accumulated exactly. farPow upper-bounds the total far power, keeping the
// budget shares conservative.
func (m *Model) resolveFar(ru geo.RegionID, scanned int, farPow, tolScaled, betaN float64,
	visitCell func(ri int32), addFar func(v float64)) {

	s := m.bucket
	for _, ri := range s.occupied {
		rc := m.grid.RegionAt(int(ri))
		if chebDist(ru, rc) <= scanned {
			continue // already accumulated exactly by the ring scan
		}
		dNear2, dFar2 := cellDistRangeSq(ru, rc)
		hi := m.invPowSq(dNear2)
		lo := m.invPowSq(dFar2)
		cellPow := s.cellPow[ri]
		half := cellPow * (hi - lo) / 2
		if cellPow*hi >= betaN || half*farPow > tolScaled*cellPow {
			visitCell(ri)
			continue
		}
		// Fold the midpoint into the listener's running interference sum;
		// the final decision only ever reads the aggregate.
		addFar(cellPow * (hi + lo) / 2)
	}
}

// chebDist returns the Chebyshev distance between two region keys: the ring
// index of b around a.
func chebDist(a, b geo.RegionID) int {
	di, dj := a.I-b.I, a.J-b.J
	if di < 0 {
		di = -di
	}
	if dj < 0 {
		dj = -dj
	}
	return int(max(di, dj))
}

// cellDistRangeSq returns the squared minimum and maximum Euclidean distance
// between (the closures of) two grid regions: the bracket every pair of
// member points falls inside.
func cellDistRangeSq(a, b geo.RegionID) (dNear2, dFar2 float64) {
	di, dj := a.I-b.I, a.J-b.J
	if di < 0 {
		di = -di
	}
	if dj < 0 {
		dj = -dj
	}
	nearI, nearJ := float64(di-1), float64(dj-1)
	if nearI < 0 {
		nearI = 0
	}
	if nearJ < 0 {
		nearJ = 0
	}
	farI, farJ := float64(di+1), float64(dj+1)
	const s2 = geo.RegionSide * geo.RegionSide
	return s2 * (nearI*nearI + nearJ*nearJ), s2 * (farI*farI + farJ*farJ)
}
