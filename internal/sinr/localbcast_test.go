package sinr

import (
	"testing"

	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

func TestLayerAckRounds(t *testing.T) {
	if a, b := LayerAckRounds(8, 0.2), LayerAckRounds(16, 0.2); a >= b {
		t.Errorf("ack budget not increasing in Δ: %d vs %d", a, b)
	}
	if a, b := LayerAckRounds(8, 0.2), LayerAckRounds(8, 0.01); a >= b {
		t.Errorf("ack budget not increasing in 1/ε: %d vs %d", a, b)
	}
	if LayerAckRounds(0, 0) < 1 {
		t.Error("degenerate parameters must still give a positive budget")
	}
}

// buildLayerNetwork wires LocalBcast processes over a SINR model derived
// from a dual graph's embedding.
func buildLayerNetwork(t *testing.T, seed uint64) (*sim.Engine, []*LocalBcast, *dualgraph.Dual) {
	t.Helper()
	d, err := dualgraph.RandomGeometric(24, 3, 3, 1.5, dualgraph.GreyUnreliable, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(d.Emb, UniformPower(1), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]*LocalBcast, d.N())
	simProcs := make([]sim.Process, d.N())
	svcs := make([]core.Service, d.N())
	for u := range procs {
		procs[u] = NewLocalBcast(LayerParams{Delta: d.DeltaPrime(), Eps: 0.2})
		simProcs[u] = procs[u]
		svcs[u] = procs[u]
	}
	env := core.NewSaturatingEnv(svcs, []int{0, 1})
	e, err := sim.New(sim.Config{Dual: d, Procs: simProcs, Reception: m, Env: env, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return e, procs, d
}

// TestLocalBcastAcksAndDelivers runs the layer over the SINR model end to
// end: saturated senders must complete broadcasts and neighbors must
// produce recv outputs.
func TestLocalBcastAcksAndDelivers(t *testing.T) {
	e, procs, _ := buildLayerNetwork(t, 5)
	window := procs[0].p.AckRounds
	e.Run(3*window + 5)
	tr := e.Trace()
	if got := tr.KindCount(sim.EvAck); got < 4 {
		t.Errorf("expected ≥ 4 acks over 3 windows of 2 saturated senders, got %d", got)
	}
	if tr.KindCount(sim.EvRecv) == 0 {
		t.Error("no recv outputs recorded")
	}
	if tr.Deliveries == 0 {
		t.Error("no channel deliveries recorded")
	}
}

// TestLocalBcastDeterministicForSeed pins the satellite requirement:
// reception under the SINR model must be deterministic for a fixed seed —
// two runs of the identical configuration produce byte-identical traces.
func TestLocalBcastDeterministicForSeed(t *testing.T) {
	run := func() *sim.Trace {
		e, procs, _ := buildLayerNetwork(t, 42)
		e.Run(2*procs[0].p.AckRounds + 7)
		return e.Trace()
	}
	a, b := run(), run()
	if a.Len() != b.Len() || a.Transmissions != b.Transmissions ||
		a.Deliveries != b.Deliveries || a.Collisions != b.Collisions {
		t.Fatalf("aggregate divergence: %d/%d/%d/%d vs %d/%d/%d/%d",
			a.Len(), a.Transmissions, a.Deliveries, a.Collisions,
			b.Len(), b.Transmissions, b.Deliveries, b.Collisions)
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.At(i), b.At(i))
		}
	}
}

// TestLocalBcastRejectsDoubleBcast enforces environment well-formedness.
func TestLocalBcastRejectsDoubleBcast(t *testing.T) {
	l := NewLocalBcast(LayerParams{Delta: 4, Eps: 0.2})
	l.Init(&sim.NodeEnv{ID: 0, Rng: xrand.NodeSource(1, 0), Rec: discardRec{}})
	if _, err := l.Bcast("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Bcast("b"); err == nil {
		t.Error("second Bcast while active must fail")
	}
}

type discardRec struct{}

func (discardRec) Record(sim.Event) {}
