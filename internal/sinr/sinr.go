package sinr

import (
	"fmt"
	"math"

	"lbcast/internal/geo"
	"lbcast/internal/sim"
)

// Params are the physical constants of the SINR reception inequality.
type Params struct {
	// Alpha is the path-loss exponent α: received power decays as d^{−α}.
	// Free space is ≈ 2; terrestrial deployments are typically 2.5–4.
	Alpha float64
	// Beta is the decoding threshold β ≥ 1: reception succeeds iff
	// SINR ≥ Beta. The comparison uses β > 1, so at most one transmitter
	// can be decoded per round — matching the single-reception interface
	// of the dual graph engine.
	Beta float64
	// Noise is the ambient noise power N > 0. Together with Beta it fixes
	// the isolation reception range: a lone transmitter at power P is
	// decodable up to distance (P/(β·N))^{1/α} (see Params.Range).
	Noise float64
	// MinDist is the near-field clamp d₀ > 0: distances below it are
	// treated as d₀, keeping the far-field law d^{−α} finite for
	// zero-distance (co-located) pairs.
	MinDist float64
	// Tolerance, when positive, enables the region-bucketed resolver:
	// interference is accumulated over the grid index ring by ring outward
	// from each listener and truncated once the maximum possible remaining
	// contribution drops low enough, with every decode/Blocked/silence
	// decision guaranteed to match the exact resolver whenever the
	// listener's SINR decision margin exceeds Tolerance (see
	// Model.resolveOneBucketed for the margin algebra). 0 keeps the exact
	// O(n·|txs|) resolver. Must stay below Beta·Noise — the decode floor —
	// so a truncated transmitter can never have been the decodable one.
	Tolerance float64
}

// DefaultParams returns the calibration used by the comparison experiments:
// α = 3, β = 2, noise fixing an isolation range ≈ 1.77 at unit power (a bit
// beyond the dual graph's reliable range 1 and grey-zone reach r = 1.5, so
// the two physical layers see comparable neighborhoods), d₀ = 0.01.
func DefaultParams() Params {
	return Params{Alpha: 3, Beta: 2, Noise: 0.09, MinDist: 0.01}
}

// Validate checks the physical constants.
func (p Params) Validate() error {
	switch {
	case !(p.Alpha > 0):
		return fmt.Errorf("sinr: path-loss exponent α = %v must be > 0", p.Alpha)
	case !(p.Beta > 0):
		return fmt.Errorf("sinr: threshold β = %v must be > 0", p.Beta)
	case !(p.Noise > 0):
		return fmt.Errorf("sinr: noise N = %v must be > 0", p.Noise)
	case !(p.MinDist > 0):
		return fmt.Errorf("sinr: near-field clamp d₀ = %v must be > 0", p.MinDist)
	case math.IsNaN(p.Tolerance) || p.Tolerance < 0:
		return fmt.Errorf("sinr: tolerance %v must be ≥ 0", p.Tolerance)
	case p.Tolerance > 0 && p.Tolerance >= p.Beta*p.Noise:
		return fmt.Errorf("sinr: tolerance %v must stay below the decode floor β·N = %v",
			p.Tolerance, p.Beta*p.Noise)
	}
	return nil
}

// Range returns the isolation reception range for a transmitter at the given
// power: the largest distance at which a lone transmission still meets the
// threshold, (power/(β·N))^{1/α}.
func (p Params) Range(power float64) float64 {
	return math.Pow(power/(p.Beta*p.Noise), 1/p.Alpha)
}

// PowerAssignment maps each node to its transmission power. The SINR local
// broadcast literature studies uniform, linear (P ∝ d^α to a target) and
// mean power schemes; the model only requires positivity.
type PowerAssignment interface {
	// Power returns node u's transmission power, > 0.
	Power(u int) float64
}

// UniformPower assigns every node the same power — the standard assumption
// of the local broadcast comparisons.
type UniformPower float64

// Power implements PowerAssignment.
func (p UniformPower) Power(int) float64 { return float64(p) }

// PerNodePower assigns node u the power at index u.
type PerNodePower []float64

// Power implements PowerAssignment.
func (p PerNodePower) Power(u int) float64 { return p[u] }

// Model is an SINR reception resolver over a fixed node placement. It
// implements sim.ReceptionModel: the engine hands it each round's
// transmitter set and it decides, per listener, which transmission (if any)
// decodes.
//
// With Params.Tolerance > 0 the model indexes the placement with the shared
// geo.GridIndex and resolves large rounds through the region-bucketed
// resolver (see bucketed.go); the exact resolver remains available as
// ResolveExact and is the oracle the bucketed path is tested against.
// Resolve reuses per-round scratch, so a Model must not be shared by
// concurrent engines.
type Model struct {
	p        Params
	pos      []geo.Point
	power    []float64 // resolved per-node powers
	maxPower float64

	grid   *geo.GridIndex // non-nil iff Tolerance > 0 and the index is dense
	bucket *bucketScratch
	// powMode/minDist2 drive the bucketed path's closed-form d^{−α} from
	// squared distances (see Model.invPowSq).
	powMode  int
	minDist2 float64
	// roundBucketed records which path PrepareRound chose for the current
	// round (see parallel.go).
	roundBucketed bool
}

// NewModel validates the parameters and resolves the power assignment over
// the placement. pos is typically a dual graph's embedding (Dual.Emb), so
// dual-graph and SINR runs share node positions.
func NewModel(pos []geo.Point, pa PowerAssignment, p Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(pos) == 0 {
		return nil, fmt.Errorf("sinr: empty placement")
	}
	if pa == nil {
		pa = UniformPower(1)
	}
	m := &Model{p: p, pos: append([]geo.Point(nil), pos...), power: make([]float64, len(pos))}
	for u := range pos {
		pw := pa.Power(u)
		if !(pw > 0) || math.IsInf(pw, 0) || math.IsNaN(pw) {
			return nil, fmt.Errorf("sinr: node %d has non-positive power %v", u, pw)
		}
		m.power[u] = pw
		if pw > m.maxPower {
			m.maxPower = pw
		}
	}
	m.minDist2 = p.MinDist * p.MinDist
	switch p.Alpha {
	case 2, 3, 4:
		m.powMode = int(p.Alpha)
	}
	if p.Tolerance > 0 {
		if gi := geo.BuildGridIndex(m.pos); gi.Dense() {
			m.grid = gi
			m.bucket = newBucketScratch(gi)
		}
		// A sparse index (pathologically spread placement) keeps the exact
		// resolver: ring scans over a mostly-empty bounding box would cost
		// more than they save.
	}
	return m, nil
}

// N returns the number of nodes in the placement.
func (m *Model) N() int { return len(m.pos) }

// Params returns the physical constants.
func (m *Model) Params() Params { return m.p }

// Gain returns the path gain between u and v: d(u,v)^{−α} with the
// near-field clamp applied, so co-located pairs get the finite gain
// d₀^{−α}. Gain is symmetric.
func (m *Model) Gain(u, v int) float64 {
	d := geo.Dist(m.pos[u], m.pos[v])
	if d < m.p.MinDist {
		d = m.p.MinDist
	}
	return math.Pow(d, -m.p.Alpha)
}

// ReceivedPower returns the power of v's transmission as heard at u.
func (m *Model) ReceivedPower(u, v int) float64 {
	return m.power[v] * m.Gain(u, v)
}

// SINR returns the signal-to-interference-plus-noise ratio of transmitter v
// at listener u when exactly the nodes in txs transmit (v must be in txs; u
// is excluded from the interference sum, a transmitter cannot jam itself —
// though a transmitting u never decodes anyone, see Resolve).
func (m *Model) SINR(u int, v int32, txs []int32) float64 {
	signal := 0.0
	interference := m.p.Noise
	for _, w := range txs {
		if int(w) == u {
			continue
		}
		pw := m.ReceivedPower(u, int(w))
		if w == v {
			signal = pw
		} else {
			interference += pw
		}
	}
	return signal / interference
}

// Resolve implements sim.ReceptionModel: for every listener the strongest
// transmission (ties broken toward the lowest node id, keeping executions
// deterministic) is tested against the threshold.
//
// The tri-state outcome mirrors the dual-graph statistics: a listener whose
// strongest transmitter would decode in isolation but fails under the
// round's aggregate interference is Blocked (a collision in the trace); one
// whose strongest transmitter is beyond the isolation range hears silence,
// just as a dual-graph listener with no transmitting topology neighbor does.
//
// When the model was built with a positive Tolerance and the transmitter set
// is large enough to pay for the bucketing, resolution goes through the
// region-bucketed resolver; small rounds and tolerance-zero models use the
// exact resolver.
func (m *Model) Resolve(t int, txs []int32, out []int32) {
	if m.grid != nil && len(txs) >= BucketedMinTx {
		m.resolveBucketed(txs, out)
		return
	}
	m.ResolveExact(t, txs, out)
}

// ResolveExact is the O(n·|txs|) reference resolver: every listener scans
// the full transmitter set. It is the test oracle of the bucketed resolver
// and the default when no tolerance was configured.
func (m *Model) ResolveExact(t int, txs []int32, out []int32) {
	for u := range out {
		out[u] = m.resolveOne(u, txs)
	}
}

// resolveOne computes listener u's outcome for the transmitter set txs.
func (m *Model) resolveOne(u int, txs []int32) int32 {
	best, bestPw, sum := int32(-1), 0.0, 0.0
	for _, w := range txs {
		if int(w) == u {
			continue
		}
		pw := m.ReceivedPower(u, int(w))
		sum += pw
		// Strict > keeps the lowest id on exact power ties (txs ascending).
		if pw > bestPw {
			best, bestPw = w, pw
		}
	}
	if best < 0 || bestPw < m.p.Beta*m.p.Noise {
		// No transmitter, or even a clean channel would not decode the
		// strongest one: silence, not a collision.
		return sim.NoTransmitter
	}
	if bestPw >= m.p.Beta*(m.p.Noise+sum-bestPw) {
		return best
	}
	return sim.Blocked
}

var _ sim.ReceptionModel = (*Model)(nil)
