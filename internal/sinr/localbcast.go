package sinr

import (
	"math"

	"lbcast/internal/core"
)

// LayerParams configures the SINR local broadcast layer process.
type LayerParams struct {
	// Delta bounds the number of nodes that can compete within one
	// reception range — the contention the transmit probability must beat.
	Delta int
	// Eps is the per-broadcast failure budget ε used to size the default
	// acknowledgement window.
	Eps float64
	// TxProb overrides the per-round transmit probability; 0 picks the
	// standard 1/(2·Delta) of the uniform-power local broadcast algorithms.
	TxProb float64
	// AckRounds overrides the acknowledgement window; 0 picks
	// LayerAckRounds(Delta, Eps).
	AckRounds int
}

// LayerAckRounds returns the acknowledgement budget of the uniform-power
// local broadcast layer: c·Δ·(ln Δ + ln(1/ε)) rounds. With transmit
// probability Θ(1/Δ) each neighbor decodes a given sender with probability
// Ω(1/Δ) per round (Halldórsson–Mitra Lemma-style), so a coupon argument
// over the ≤ Δ neighbors gives failure probability ≤ ε after that many
// rounds.
func LayerAckRounds(delta int, eps float64) int {
	if delta < 2 {
		delta = 2
	}
	if eps <= 0 || eps >= 1 {
		eps = 0.1
	}
	d := float64(delta)
	return int(math.Ceil(4 * d * (math.Log(d) + math.Log(1/eps))))
}

// LocalBcast is the SINR-layer broadcast process: while a message is
// pending it transmits with a fixed Θ(1/Δ) probability every round, and
// acknowledges after the LayerAckRounds window. The bcast/ack/recv
// bookkeeping is the shared core.AckWindow, so environments, trace
// analysis and the comparison harness treat it exactly like LBAlg and the
// dual-graph baselines — only the physical layer underneath (a Model
// passed as sim.Config.Reception) differs.
type LocalBcast struct {
	core.AckWindow
	p    LayerParams
	prob float64
}

var _ core.Service = (*LocalBcast)(nil)

// NewLocalBcast builds the layer process, deriving the transmit probability
// and acknowledgement window from Delta and Eps where not overridden.
func NewLocalBcast(p LayerParams) *LocalBcast {
	if p.Delta < 2 {
		p.Delta = 2
	}
	if p.TxProb <= 0 || p.TxProb > 1 {
		p.TxProb = 1 / (2 * float64(p.Delta))
	}
	if p.AckRounds < 1 {
		p.AckRounds = LayerAckRounds(p.Delta, p.Eps)
	}
	l := &LocalBcast{p: p, prob: p.TxProb}
	l.AckRounds = p.AckRounds
	l.RecordHears = true
	return l
}

// Transmit implements sim.Process.
func (l *LocalBcast) Transmit(t int) (any, bool) {
	frame, active := l.ActiveFrame()
	if !active {
		return nil, false
	}
	if l.Env().Rng.Coin(l.prob) {
		return frame, true
	}
	return nil, false
}
