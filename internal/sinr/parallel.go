// This file makes Model a sim.ShardedReceptionModel, closing the ROADMAP
// carry-over from the bucketed resolver: per-round bucket construction is a
// single O(|txs|) pass, but per-listener resolution — the dominant cost —
// touches only round-immutable state (the buckets, the placement, the
// powers), so the engine's worker pool can partition the listener range
// freely. Outcomes are computed listener by listener with no cross-listener
// state, so any partition produces bit-identical results to the sequential
// pass; parallel_test.go pins full-trace identity against the sequential
// driver at worker counts {1, 2, 7, GOMAXPROCS} under -race.

package sinr

import "lbcast/internal/sim"

// PrepareRound implements sim.ShardedReceptionModel: it builds the round's
// region buckets when the bucketed path applies (mirroring Resolve's gate)
// and always opts in to sharding — the exact path is per-listener pure too.
func (m *Model) PrepareRound(t int, txs []int32) bool {
	if m.grid != nil && len(txs) >= BucketedMinTx {
		m.prepareBuckets(txs)
		m.roundBucketed = true
	} else {
		m.roundBucketed = false
	}
	return true
}

// ResolveRange implements sim.ShardedReceptionModel: listeners [lo, hi) are
// resolved against the state PrepareRound froze for this round. Concurrent
// calls on disjoint ranges are safe; each touches only out[lo:hi].
func (m *Model) ResolveRange(t int, txs []int32, out []int32, lo, hi int) {
	if m.roundBucketed {
		n, total := len(txs), m.bucket.totalPow
		for u := lo; u < hi; u++ {
			out[u] = m.resolveOneBucketed(u, n, total)
		}
		return
	}
	for u := lo; u < hi; u++ {
		out[u] = m.resolveOne(u, txs)
	}
}

var _ sim.ShardedReceptionModel = (*Model)(nil)
