package sinr

import (
	"math"
	"testing"

	"lbcast/internal/geo"
	"lbcast/internal/xrand"
)

// bucketedFixture builds a model with the bucketed resolver active and a
// random constant-density placement — the sweep-geometric family the
// resolver exists for.
func bucketedFixture(t *testing.T, n int, tol float64, pa PowerAssignment, seed uint64) (*Model, []geo.Point) {
	t.Helper()
	rng := xrand.New(seed)
	side := math.Max(4, math.Sqrt(float64(n)/4))
	pos := make([]geo.Point, n)
	for i := range pos {
		pos[i] = geo.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	p := DefaultParams()
	p.Tolerance = tol
	m, err := NewModel(pos, pa, p)
	if err != nil {
		t.Fatal(err)
	}
	if tol > 0 && m.grid == nil {
		t.Fatal("bucketed fixture did not activate the grid index")
	}
	return m, pos
}

// randomTxs draws a transmitter set with the given per-node probability,
// ascending as the engine supplies it.
func randomTxs(n int, prob float64, rng *xrand.Source) []int32 {
	var txs []int32
	for u := 0; u < n; u++ {
		if rng.Coin(prob) {
			txs = append(txs, int32(u))
		}
	}
	return txs
}

// TestBucketedMatchesExactAtToleranceZero is the satellite equivalence
// contract: with tolerance 0 the bucketed resolver must reproduce the exact
// resolver outcome for outcome, per listener, across seeds, densities and
// power assignments. The bucketed path is invoked directly so small rounds
// cannot fall back to the exact resolver.
func TestBucketedMatchesExactAtToleranceZero(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		n := 300 + int(seed)*40
		// Tolerance must be > 0 for NewModel to build the grid; force the
		// truncation threshold itself to zero afterwards.
		m, _ := bucketedFixture(t, n, 1e-9, nil, seed)
		m.p.Tolerance = 0
		rng := xrand.New(seed * 77)
		for _, prob := range []float64{0.02, 0.1, 0.4} {
			txs := randomTxs(n, prob, rng)
			if len(txs) == 0 {
				continue
			}
			exact := make([]int32, n)
			bucketed := make([]int32, n)
			m.ResolveExact(1, txs, exact)
			m.resolveBucketed(txs, bucketed)
			for u := range exact {
				if exact[u] != bucketed[u] {
					t.Fatalf("seed %d prob %v: listener %d resolves to %d bucketed vs %d exact",
						seed, prob, u, bucketed[u], exact[u])
				}
			}
		}
	}
}

// TestBucketedMatchesExactPerNodePower repeats the equivalence check under
// an asymmetric power assignment, which exercises the max-power and
// per-cell-power bounds of the stopping rules.
func TestBucketedMatchesExactPerNodePower(t *testing.T) {
	const n = 400
	rng := xrand.New(3)
	powers := make(PerNodePower, n)
	for u := range powers {
		powers[u] = 0.25 + 4*rng.Float64()
	}
	m, _ := bucketedFixture(t, n, 1e-9, powers, 9)
	m.p.Tolerance = 0
	for _, prob := range []float64{0.05, 0.3} {
		txs := randomTxs(n, prob, rng)
		exact := make([]int32, n)
		bucketed := make([]int32, n)
		m.ResolveExact(1, txs, exact)
		m.resolveBucketed(txs, bucketed)
		for u := range exact {
			if exact[u] != bucketed[u] {
				t.Fatalf("prob %v: listener %d resolves to %d bucketed vs %d exact",
					prob, u, bucketed[u], exact[u])
			}
		}
	}
}

// exactMargins recomputes listener u's exact decision quantities and returns
// its two margins in Tolerance units: distance of the strongest received
// power from the decode floor β·N, and distance of (1+β)·bestPw from
// β·(N+sum) — the decode inequality rearranged to one side. The bucketed
// resolver guarantees identical outcomes whenever both exceed Tolerance.
func exactMargins(m *Model, u int, txs []int32) (silence, decode float64) {
	bestPw, sum := 0.0, 0.0
	for _, w := range txs {
		if int(w) == u {
			continue
		}
		pw := m.ReceivedPower(u, int(w))
		sum += pw
		if pw > bestPw {
			bestPw = pw
		}
	}
	betaN := m.p.Beta * m.p.Noise
	return math.Abs(bestPw - betaN), math.Abs((1+m.p.Beta)*bestPw - m.p.Beta*(m.p.Noise+sum))
}

// TestBucketedToleranceBound is the satellite bound contract: at nonzero
// tolerance the bucketed resolver may only flip listeners whose exact SINR
// decision margin is at most the tolerance (a hair of float slack aside).
// Every flip found across seeds and transmit densities must sit inside the
// margin window, and listeners outside it must agree exactly.
func TestBucketedToleranceBound(t *testing.T) {
	for _, tol := range []float64{0.001, 0.02, 0.1} {
		flips := 0
		for seed := uint64(1); seed <= 4; seed++ {
			const n = 500
			m, _ := bucketedFixture(t, n, tol, nil, seed+20)
			rng := xrand.New(seed * 131)
			for _, prob := range []float64{0.03, 0.15, 0.5} {
				txs := randomTxs(n, prob, rng)
				if len(txs) == 0 {
					continue
				}
				exact := make([]int32, n)
				bucketed := make([]int32, n)
				m.ResolveExact(1, txs, exact)
				m.resolveBucketed(txs, bucketed)
				for u := range exact {
					if exact[u] == bucketed[u] {
						continue
					}
					flips++
					silence, decode := exactMargins(m, u, txs)
					margin := math.Min(silence, decode)
					if margin > tol*(1+1e-9) {
						t.Fatalf("tol %v seed %d prob %v: listener %d flipped (%d vs exact %d) with margin %v > tolerance",
							tol, seed, prob, u, bucketed[u], exact[u], margin)
					}
				}
			}
		}
		t.Logf("tol %v: %d in-margin flips across all rounds", tol, flips)
	}
}

// TestBucketedDeterministic: the bucketed resolver is a pure function of the
// transmitter set — repeated rounds give identical outcomes.
func TestBucketedDeterministic(t *testing.T) {
	const n = 300
	m, _ := bucketedFixture(t, n, 0.01, nil, 5)
	txs := randomTxs(n, 0.2, xrand.New(17))
	a, b := make([]int32, n), make([]int32, n)
	m.resolveBucketed(txs, a)
	m.resolveBucketed(txs, b)
	for u := range a {
		if a[u] != b[u] {
			t.Fatalf("listener %d: outcome differs across identical rounds: %d vs %d", u, a[u], b[u])
		}
	}
}

// TestResolveDispatch pins the Resolve entry point: small rounds use the
// exact path even on a tolerance-configured model, large rounds bucket, and
// a tolerance-zero model never buckets.
func TestResolveDispatch(t *testing.T) {
	const n = 200
	m, _ := bucketedFixture(t, n, 0.01, nil, 2)
	small := []int32{0, 3, 9} // below BucketedMinTx: exact path
	outA, outB := make([]int32, n), make([]int32, n)
	m.Resolve(1, small, outA)
	m.ResolveExact(1, small, outB)
	for u := range outA {
		if outA[u] != outB[u] {
			t.Fatalf("small-round dispatch diverged at listener %d", u)
		}
	}
	big := randomTxs(n, 0.5, xrand.New(4))
	if len(big) < BucketedMinTx {
		t.Fatalf("fixture too sparse: %d txs", len(big))
	}
	m.Resolve(2, big, outA)
	m.resolveBucketed(big, outB)
	for u := range outA {
		if outA[u] != outB[u] {
			t.Fatalf("large-round dispatch did not bucket: diverged at listener %d", u)
		}
	}

	exactOnly, _ := bucketedFixture(t, n, 0, nil, 2)
	if exactOnly.grid != nil {
		t.Fatal("tolerance-zero model built a grid")
	}
}

func TestParamsValidateTolerance(t *testing.T) {
	p := DefaultParams()
	p.Tolerance = 0.01
	if err := p.Validate(); err != nil {
		t.Fatalf("valid tolerance rejected: %v", err)
	}
	for _, tol := range []float64{-0.1, math.NaN(), p.Beta * p.Noise, p.Beta*p.Noise + 1} {
		p.Tolerance = tol
		if err := p.Validate(); err == nil {
			t.Errorf("tolerance %v accepted", tol)
		}
	}
}
