// Package sinr implements the physical (SINR) reception model and a local
// broadcast layer for it, the comparison counterpart named in ROADMAP:
// Halldórsson, Holzer and Lynch, "A Local Broadcast Layer for the SINR
// Network Model" (and Halldórsson–Mitra, "Towards Tight Bounds for Local
// Broadcasting").
//
// Where the dual graph model of the source paper resolves a round through a
// topology plus the single-transmitter collision rule, the SINR model is
// geometric and additive: node u decodes transmitter v iff the
// signal-to-interference-plus-noise ratio
//
//	SINR(u, v) = P_v·d(u,v)^{−α} / (N + Σ_{w≠v} P_w·d(u,w)^{−α})
//
// is at least the threshold β, where the sum ranges over all other
// concurrent transmitters, P_w is w's transmission power (pluggable through
// PowerAssignment), α is the path-loss exponent and N the ambient noise
// power. Model implements sim.ReceptionModel, so the same engine, drivers
// and trace machinery that run the dual-graph experiments run the SINR
// ones; LocalBcast is the layer protocol (a core.Service) that competes for
// the channel under these semantics.
//
// The node placements come from internal/geo — the comparison experiments
// reuse the random-geometric embeddings of the PR 2 scaling sweep, so
// head-to-head runs see the same node positions under both physical layers.
package sinr
