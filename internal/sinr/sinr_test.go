package sinr

import (
	"math"
	"testing"

	"lbcast/internal/geo"
	"lbcast/internal/sim"
)

func mustModel(t *testing.T, pos []geo.Point, pa PowerAssignment, p Params) *Model {
	t.Helper()
	m, err := NewModel(pos, pa, p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParamsValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
	bad := []Params{
		{Alpha: 0, Beta: 2, Noise: 0.1, MinDist: 0.01},
		{Alpha: 3, Beta: 0, Noise: 0.1, MinDist: 0.01},
		{Alpha: 3, Beta: 2, Noise: 0, MinDist: 0.01},
		{Alpha: 3, Beta: 2, Noise: 0.1, MinDist: 0},
		{Alpha: math.NaN(), Beta: 2, Noise: 0.1, MinDist: 0.01},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d validated: %+v", i, p)
		}
	}
}

func TestNewModelRejectsBadPower(t *testing.T) {
	pos := []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	for _, pw := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewModel(pos, UniformPower(pw), DefaultParams()); err == nil {
			t.Errorf("power %v accepted", pw)
		}
	}
	if _, err := NewModel(nil, UniformPower(1), DefaultParams()); err == nil {
		t.Error("empty placement accepted")
	}
}

// TestZeroDistancePair pins the near-field clamp: two co-located nodes must
// get the finite gain d₀^{−α}, and a transmission between them must decode
// (their received power dwarfs noise) rather than divide by zero.
func TestZeroDistancePair(t *testing.T) {
	p := DefaultParams()
	pos := []geo.Point{{X: 2, Y: 2}, {X: 2, Y: 2}, {X: 7, Y: 7}}
	m := mustModel(t, pos, UniformPower(1), p)

	wantGain := math.Pow(p.MinDist, -p.Alpha)
	if g := m.Gain(0, 1); g != wantGain {
		t.Errorf("co-located gain = %v, want clamped %v", g, wantGain)
	}
	if g := m.Gain(0, 0); g != wantGain {
		t.Errorf("self gain = %v, want clamped %v (distance 0)", g, wantGain)
	}

	out := make([]int32, 3)
	m.Resolve(1, []int32{0}, out)
	if out[1] != 0 {
		t.Errorf("co-located listener got %d, want transmitter 0", out[1])
	}
}

// TestExactThresholdDistance pins the boundary semantics with exactly
// representable floats: α=2, β=2, N=0.125 put the isolation range at
// distance 2, where the received power 2^{−2} = 0.25 equals β·N exactly —
// SINR == β and the ≥ comparison must decode. A listener strictly beyond
// must hear silence (not a collision).
func TestExactThresholdDistance(t *testing.T) {
	p := Params{Alpha: 2, Beta: 2, Noise: 0.125, MinDist: 0.01}
	if r := p.Range(1); r != 2 {
		t.Fatalf("isolation range = %v, want exactly 2", r)
	}
	pos := []geo.Point{
		{X: 0, Y: 0},        // transmitter
		{X: 2, Y: 0},        // exactly at threshold: SINR == β
		{X: 2.000001, Y: 0}, // just beyond
		{X: 1, Y: 0},        // comfortably inside
		{X: 5000, Y: 5000},  // far away
	}
	m := mustModel(t, pos, UniformPower(1), p)

	if got := m.SINR(1, 0, []int32{0}); got != p.Beta {
		t.Fatalf("SINR at isolation range = %v, want exactly β = %v", got, p.Beta)
	}

	out := make([]int32, len(pos))
	m.Resolve(1, []int32{0}, out)
	if out[1] != 0 {
		t.Errorf("listener exactly at threshold got %d, want decode of 0", out[1])
	}
	if out[2] != sim.NoTransmitter {
		t.Errorf("listener just beyond threshold got %d, want silence", out[2])
	}
	if out[3] != 0 {
		t.Errorf("inside listener got %d, want 0", out[3])
	}
	if out[4] != sim.NoTransmitter {
		t.Errorf("distant listener got %d, want silence", out[4])
	}
}

// TestThresholdNeighborhoodDefaults checks the same boundary with the
// comparison calibration, at a float-safe margin around the isolation
// range.
func TestThresholdNeighborhoodDefaults(t *testing.T) {
	p := DefaultParams()
	r := p.Range(1)
	pos := []geo.Point{
		{X: 0, Y: 0},
		{X: r * (1 - 1e-9), Y: 0}, // just inside
		{X: r * (1 + 1e-9), Y: 0}, // just outside
	}
	m := mustModel(t, pos, UniformPower(1), p)
	if got := m.SINR(1, 0, []int32{0}); math.Abs(got-p.Beta) > 1e-6 {
		t.Fatalf("SINR near isolation range = %v, want ≈ β = %v", got, p.Beta)
	}
	out := make([]int32, len(pos))
	m.Resolve(1, []int32{0}, out)
	if out[1] != 0 {
		t.Errorf("listener just inside got %d, want decode", out[1])
	}
	if out[2] != sim.NoTransmitter {
		t.Errorf("listener just outside got %d, want silence", out[2])
	}
}

// TestInterferenceBlocks checks the tri-state outcome: a listener between
// two symmetric transmitters is Blocked (collision), not silent.
func TestInterferenceBlocks(t *testing.T) {
	p := DefaultParams()
	pos := []geo.Point{
		{X: -0.5, Y: 0}, // transmitter A
		{X: 0.5, Y: 0},  // transmitter B
		{X: 0, Y: 0},    // listener equidistant from both
	}
	m := mustModel(t, pos, UniformPower(1), p)
	out := make([]int32, 3)
	m.Resolve(1, []int32{0, 1}, out)
	if out[2] != sim.Blocked {
		t.Errorf("listener between equal transmitters got %d, want Blocked", out[2])
	}
	// Alone, either transmitter decodes.
	m.Resolve(2, []int32{1}, out)
	if out[2] != 1 {
		t.Errorf("lone transmitter: listener got %d, want 1", out[2])
	}
}

// TestPowerSymmetryAndDeterminism: under a uniform power assignment the gain
// matrix is symmetric, ties resolve to the lowest id, and Resolve is a pure
// function of (txs) — repeated calls give identical outcomes.
func TestPowerSymmetryAndDeterminism(t *testing.T) {
	p := DefaultParams()
	pos := []geo.Point{
		{X: 0, Y: 0}, {X: 1.2, Y: 0.3}, {X: 0.4, Y: 1.1}, {X: 2.2, Y: 1.9}, {X: 1.1, Y: 1.1},
	}
	m := mustModel(t, pos, UniformPower(1), p)
	for u := range pos {
		for v := range pos {
			if gu, gv := m.Gain(u, v), m.Gain(v, u); gu != gv {
				t.Errorf("gain asymmetry (%d,%d): %v vs %v", u, v, gu, gv)
			}
			if ru, rv := m.ReceivedPower(u, v), m.ReceivedPower(v, u); ru != rv {
				t.Errorf("uniform-power reception asymmetry (%d,%d): %v vs %v", u, v, ru, rv)
			}
		}
	}

	txs := []int32{0, 1, 3}
	a, b := make([]int32, len(pos)), make([]int32, len(pos))
	m.Resolve(1, txs, a)
	m.Resolve(2, txs, b) // round number must not matter
	for u := range a {
		if a[u] != b[u] {
			t.Errorf("node %d: outcome differs across identical rounds: %d vs %d", u, a[u], b[u])
		}
	}
}

// TestTieBreakLowestID: a listener exactly equidistant from two equal-power
// transmitters must deterministically attribute the (blocked or decoded)
// strongest signal to the lowest id. With β < 1 both would decode in
// isolation; the tie must pick id 0.
func TestTieBreakLowestID(t *testing.T) {
	p := DefaultParams()
	p.Beta = 0.4 // permissive threshold: SINR of each ≈ signal/(noise+signal) < 1
	pos := []geo.Point{
		{X: -0.2, Y: 0}, {X: 0.2, Y: 0}, {X: 0, Y: 0},
	}
	m := mustModel(t, pos, UniformPower(1), p)
	out := make([]int32, 3)
	m.Resolve(1, []int32{0, 1}, out)
	if out[2] != 0 {
		t.Errorf("equidistant tie resolved to %d, want lowest id 0", out[2])
	}
}

// TestPerNodePower: asymmetric powers must shift reception asymmetrically.
func TestPerNodePower(t *testing.T) {
	p := DefaultParams()
	pos := []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2.5, Y: 0}}
	m := mustModel(t, pos, PerNodePower{8, 1, 1}, p)
	// Node 0 at power 8 reaches 2 (distance 2.5 > Range(1) but < Range(8)).
	if r1, r8 := p.Range(1), p.Range(8); !(r1 < 2.5 && 2.5 < r8) {
		t.Fatalf("test geometry broken: Range(1)=%v Range(8)=%v", r1, r8)
	}
	out := make([]int32, 3)
	m.Resolve(1, []int32{0}, out)
	if out[2] != 0 {
		t.Errorf("high-power transmission not heard at 2.5: got %d", out[2])
	}
	// The reverse direction at power 1 is out of range.
	m.Resolve(2, []int32{2}, out)
	if out[0] != sim.NoTransmitter {
		t.Errorf("low-power transmission heard beyond its range: got %d", out[0])
	}
}
