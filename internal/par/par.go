// Package par is the minimal fork-join helper shared by the construction
// packages (internal/geo, internal/dualgraph), which cannot reach the round
// engine's persistent worker pool without importing internal/sim (a cycle:
// sim depends on dualgraph for its topology views). Construction runs once
// per configuration, so the helper spawns plain goroutines per call instead
// of parking a pool; the engine's steady-state rounds keep the pool.
package par

import "sync"

// Do runs fn(w) for w in [0, workers) concurrently and returns when all
// calls have finished. Worker 0 runs on the calling goroutine. workers ≤ 1
// degenerates to a plain call, so sequential paths pay nothing.
func Do(workers int, fn func(w int)) {
	if workers <= 1 {
		if workers == 1 {
			fn(0)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			fn(w)
		}()
	}
	fn(0)
	wg.Wait()
}

// Ranges partitions n items into at most `workers` contiguous chunks and
// runs fn(w, lo, hi) for each non-empty chunk concurrently. Chunk w covers
// [w·⌈n/workers⌉, min((w+1)·⌈n/workers⌉, n)) — the same split every sharded
// path in this repo uses, so merging per-worker results in worker order
// reproduces a left-to-right sequential pass over the items.
func Ranges(n, workers int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	active := (n + chunk - 1) / chunk
	Do(active, func(w int) {
		lo := w * chunk
		hi := min(lo+chunk, n)
		fn(w, lo, hi)
	})
}
