package par

import (
	"sync/atomic"
	"testing"
)

func TestDoRunsEveryWorker(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8} {
		var hit [8]atomic.Int32
		Do(workers, func(w int) { hit[w].Add(1) })
		for w := 0; w < workers; w++ {
			if got := hit[w].Load(); got != 1 {
				t.Fatalf("workers=%d: worker %d ran %d times", workers, w, got)
			}
		}
		for w := workers; w < len(hit); w++ {
			if workers >= 0 && hit[w].Load() != 0 {
				t.Fatalf("workers=%d: worker %d ran but was not requested", workers, w)
			}
		}
	}
}

func TestRangesCoversEveryItemOnce(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 1000} {
		for _, workers := range []int{1, 2, 3, 7, 16} {
			seen := make([]atomic.Int32, max(n, 1))
			Ranges(n, workers, func(w, lo, hi int) {
				if lo >= hi {
					t.Errorf("n=%d workers=%d: empty chunk [%d,%d)", n, workers, lo, hi)
				}
				for i := lo; i < hi; i++ {
					seen[i].Add(1)
				}
			})
			for i := 0; i < n; i++ {
				if got := seen[i].Load(); got != 1 {
					t.Fatalf("n=%d workers=%d: item %d covered %d times", n, workers, i, got)
				}
			}
		}
	}
}

func TestRangesMatchesEngineSplit(t *testing.T) {
	// The chunking must match the engine's parallelNodes split so per-worker
	// results merged in worker order reproduce sequential item order.
	n, workers := 10, 4
	var got [][2]int
	Ranges(n, workers, func(w, lo, hi int) {})
	// Deterministic re-derivation (single worker to keep order):
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		got = append(got, [2]int{lo, min(lo+chunk, n)})
	}
	want := [][2]int{{0, 3}, {3, 6}, {6, 9}, {9, 10}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chunk %d = %v, want %v", i, got[i], want[i])
		}
	}
}
