// Package baseline implements the algorithms the paper positions LBAlg
// against:
//
//   - Decay (Bar-Yehuda, Goldreich, Itai [2]): the classical fixed schedule
//     of geometrically decreasing broadcast probabilities. Its fixed,
//     globally known schedule is exactly what the paper's introduction shows
//     an oblivious link scheduler can exploit (see sched.AntiDecay).
//   - Round-robin TDMA (Clementi, Monti, Silvestri [4]): collision-free
//     id-indexed slots. Optimal for fault-tolerant broadcast but inherently
//     global — its latency scales with the slot count, not local degree —
//     making it the locality counterpoint in the E-LOWER experiments.
//   - Chatter: a non-protocol noise source used as adversary decoys.
//
// Decay and RoundRobin implement core.Service, so environments, the lbspec
// checker, and the experiment harness treat them exactly like LBAlg.
package baseline
