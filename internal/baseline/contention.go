// This file implements the contention-management baseline from Ghaffari,
// Haeupler, Lynch and Newport, "Bounds on Contention Management in Radio
// Networks" (GHLN): the comparison workload named in ROADMAP alongside the
// SINR layer. GHLN study the acknowledgement and progress problems in the
// same dual graph model as the source paper and show that, against a
// scheduler controlling all of E′ \ E, the relevant contention bound is Δ′:
// acknowledgement needs Ω(Δ′·log n) rounds, and their matching strategies
// keep the transmit probability keyed to Δ′ rather than Δ.
//
// Contention renders the two upper-bound strategy shapes as one process:
//
//   - StrategyUniform — the acknowledgement-bound strategy: transmit with
//     the fixed probability 1/Δ′ every round. Immune to schedule timing (no
//     phase structure for the adversary to anti-align with) and optimal for
//     delivering to every neighbor, at the cost of a Θ(Δ′·log(Δ′/ε)) ack
//     window.
//   - StrategyCycling — the progress-bound strategy: cycle the probabilities
//     ½, ¼, …, 1/Δ′ (Decay's schedule stretched to the unreliable degree).
//     Some round of each cycle matches the live contention whatever subset
//     of unreliable links the scheduler includes, giving progress in
//     O(log Δ′) rounds per cycle, but its fixed schedule is exploitable by
//     anti-aligned schedulers (see sched.AntiDecay).
//
// Both implement core.Service, so the comparison harness runs them
// interchangeably with LBAlg and the SINR layer.

package baseline

import (
	"fmt"
	"math"

	"lbcast/internal/core"
	"lbcast/internal/seedagree"
)

// Strategy selects which GHLN upper-bound shape a Contention process runs.
type Strategy int

const (
	// StrategyUniform transmits with fixed probability 1/Δ′ (the
	// acknowledgement-bound strategy).
	StrategyUniform Strategy = iota + 1
	// StrategyCycling cycles ½, ¼, …, 1/Δ′ (the progress-bound strategy).
	StrategyCycling
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyUniform:
		return "uniform"
	case StrategyCycling:
		return "cycling"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ContentionParams configures the GHLN baseline.
type ContentionParams struct {
	// DeltaPrime is Δ′, the unreliable degree bound that keys both
	// strategies' probabilities.
	DeltaPrime int
	// Strategy picks the upper-bound shape; the zero value means
	// StrategyUniform.
	Strategy Strategy
	// Eps sizes the default acknowledgement window.
	Eps float64
	// AckRounds overrides the acknowledgement window; 0 picks
	// ContentionAckRounds(DeltaPrime, Eps).
	AckRounds int
}

// ContentionAckRounds returns the acknowledgement budget of the GHLN
// uniform strategy: c·Δ′·(ln Δ′ + ln(1/ε)). At probability 1/Δ′ a given
// neighbor decodes the sender with probability ≥ (1/Δ′)(1−1/Δ′)^{Δ′−1} ≥
// 1/(e·Δ′) per round even when all Δ′ potential interferers are live, so a
// union bound over the neighbors brings the failure probability under ε
// within that window — the Θ(Δ′·log n) shape of GHLN's acknowledgement
// bound.
func ContentionAckRounds(deltaPrime int, eps float64) int {
	if deltaPrime < 2 {
		deltaPrime = 2
	}
	if eps <= 0 || eps >= 1 {
		eps = 0.1
	}
	d := float64(deltaPrime)
	return int(math.Ceil(3 * d * (math.Log(d) + math.Log(1/eps))))
}

// Contention is the GHLN contention-management baseline process: the
// shared core.AckWindow bookkeeping under a Δ′-keyed transmit probability.
type Contention struct {
	core.AckWindow
	p ContentionParams
	// cycle is the precomputed per-round probability schedule: the Δ′-keyed
	// Decay cycle for StrategyCycling, a single 1/Δ′ entry for
	// StrategyUniform (so Prob is one table lookup either way).
	cycle probCycle
}

var _ core.Service = (*Contention)(nil)

// NewContention builds the baseline with the given parameters.
func NewContention(p ContentionParams) *Contention {
	if p.DeltaPrime < 2 {
		p.DeltaPrime = 2
	}
	if p.Strategy == 0 {
		p.Strategy = StrategyUniform
	}
	if p.AckRounds < 1 {
		p.AckRounds = ContentionAckRounds(p.DeltaPrime, p.Eps)
	}
	c := &Contention{p: p}
	if p.Strategy == StrategyCycling {
		c.cycle = newDecayCycle(seedagree.Log2Ceil(p.DeltaPrime))
	} else {
		c.cycle = probCycle{1 / float64(p.DeltaPrime)}
	}
	c.AckRounds = p.AckRounds
	c.RecordHears = true
	return c
}

// Prob returns the transmit probability at global round t: 1/Δ′ for the
// uniform strategy, 2^{−(1 + (t−1) mod ⌈log Δ′⌉)} for the cycling one.
func (c *Contention) Prob(t int) float64 { return c.cycle.at(t) }

// Transmit implements sim.Process.
func (c *Contention) Transmit(t int) (any, bool) {
	frame, active := c.ActiveFrame()
	if !active {
		return nil, false
	}
	if c.Env().Rng.Coin(c.Prob(t)) {
		return frame, true
	}
	return nil, false
}
