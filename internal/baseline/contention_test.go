package baseline

import (
	"math"
	"testing"

	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/seedagree"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

func TestContentionAckRounds(t *testing.T) {
	if a, b := ContentionAckRounds(8, 0.2), ContentionAckRounds(16, 0.2); a >= b {
		t.Errorf("ack budget not increasing in Δ′: %d vs %d", a, b)
	}
	if a, b := ContentionAckRounds(8, 0.2), ContentionAckRounds(8, 0.02); a >= b {
		t.Errorf("ack budget not increasing in 1/ε: %d vs %d", a, b)
	}
	if ContentionAckRounds(0, -1) < 1 {
		t.Error("degenerate parameters must still give a positive budget")
	}
}

func TestContentionProb(t *testing.T) {
	uni := NewContention(ContentionParams{DeltaPrime: 16, Strategy: StrategyUniform, Eps: 0.2})
	for _, round := range []int{1, 2, 17, 100} {
		if got := uni.Prob(round); got != 1.0/16 {
			t.Errorf("uniform prob at t=%d: %v, want 1/16", round, got)
		}
	}
	cyc := NewContention(ContentionParams{DeltaPrime: 16, Strategy: StrategyCycling, Eps: 0.2})
	// ⌈log₂ 16⌉ = 4: probabilities ½, ¼, ⅛, 1/16, then the cycle repeats.
	want := []float64{0.5, 0.25, 0.125, 0.0625, 0.5}
	for i, w := range want {
		if got := cyc.Prob(i + 1); math.Abs(got-w) > 1e-12 {
			t.Errorf("cycling prob at t=%d: %v, want %v", i+1, got, w)
		}
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyUniform.String() != "uniform" || StrategyCycling.String() != "cycling" {
		t.Error("strategy names changed")
	}
	if Strategy(9).String() != "Strategy(9)" {
		t.Error("unknown strategy formatting changed")
	}
}

// TestContentionBroadcastCycle runs the baseline over a dual graph and
// checks the full bcast→recv→ack cycle plus well-formedness.
func TestContentionBroadcastCycle(t *testing.T) {
	for _, strat := range []Strategy{StrategyUniform, StrategyCycling} {
		d, err := dualgraph.SingleHopCluster(8, 1, xrand.New(3))
		if err != nil {
			t.Fatal(err)
		}
		procs := make([]*Contention, d.N())
		simProcs := make([]sim.Process, d.N())
		svcs := make([]core.Service, d.N())
		for u := range procs {
			procs[u] = NewContention(ContentionParams{
				DeltaPrime: d.DeltaPrime(), Strategy: strat, Eps: 0.2})
			simProcs[u] = procs[u]
			svcs[u] = procs[u]
		}
		env := core.NewSaturatingEnv(svcs, []int{0})
		e, err := sim.New(sim.Config{Dual: d, Procs: simProcs, Env: env, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		window := procs[0].p.AckRounds
		e.Run(2*window + 2)
		tr := e.Trace()
		if tr.KindCount(sim.EvAck) < 2 {
			t.Errorf("%v: expected ≥ 2 acks, got %d", strat, tr.KindCount(sim.EvAck))
		}
		if tr.KindCount(sim.EvRecv) == 0 {
			t.Errorf("%v: no recv outputs", strat)
		}
		// Ack latency is deterministic: the bcast round itself counts, so
		// every ack lands exactly AckRounds−1 rounds after its bcast.
		bc := map[sim.MsgID]int{}
		for ev := range tr.Events() {
			switch ev.Kind {
			case sim.EvBcast:
				bc[ev.MsgID] = ev.Round
			case sim.EvAck:
				if got := ev.Round - bc[ev.MsgID]; got != window-1 {
					t.Errorf("%v: ack latency %d, want %d", strat, got, window-1)
				}
			}
		}
	}
}

func TestContentionRejectsDoubleBcast(t *testing.T) {
	c := NewContention(ContentionParams{DeltaPrime: 8, Eps: 0.2})
	c.Init(&sim.NodeEnv{ID: 0, Rng: xrand.NodeSource(1, 0), Rec: discardRec{}})
	if _, err := c.Bcast("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Bcast("b"); err == nil {
		t.Error("second Bcast while active must fail")
	}
}

type discardRec struct{}

func (discardRec) Record(sim.Event) {}

// TestContentionProbTableMatchesFormula pins both strategies' precomputed
// probability cycles to the formulas they cache.
func TestContentionProbTableMatchesFormula(t *testing.T) {
	for _, dp := range []int{2, 3, 16, 70} {
		uni := NewContention(ContentionParams{DeltaPrime: dp, Strategy: StrategyUniform})
		cyc := NewContention(ContentionParams{DeltaPrime: dp, Strategy: StrategyCycling})
		cycle := seedagree.Log2Ceil(dp)
		for tr := 1; tr <= 3*cycle+1; tr++ {
			if got, want := uni.Prob(tr), 1/float64(dp); got != want {
				t.Fatalf("Δ′=%d round %d: uniform Prob = %v, want %v", dp, tr, got, want)
			}
			if got, want := cyc.Prob(tr), math.Pow(2, -float64(1+(tr-1)%cycle)); got != want {
				t.Fatalf("Δ′=%d round %d: cycling Prob = %v, want %v", dp, tr, got, want)
			}
		}
	}
}
