package baseline

import (
	"math"

	"lbcast/internal/core"
	"lbcast/internal/seedagree"
	"lbcast/internal/sim"
)

// DecayParams configures the Decay baseline.
type DecayParams struct {
	// Delta is the degree bound; the probability cycle has length
	// ⌈log₂ Δ⌉ with per-round probabilities ½, ¼, …, 1/Δ.
	Delta int
	// AckRounds is how many rounds a broadcast stays active before its ack.
	// The classical bound for delivery to all neighbors with probability
	// 1−ε (absent unreliable links) is O(log Δ·(log Δ + log(1/ε))); use
	// DecayAckRounds for that default.
	AckRounds int
}

// DecayAckRounds returns the classical acknowledgement budget for Decay:
// c·logΔ·(logΔ + log(1/ε)) rounds with a small calibrated constant.
func DecayAckRounds(delta int, eps float64) int {
	l := float64(seedagree.Log2Ceil(delta))
	return int(math.Ceil(4 * l * (l + math.Log2(1/eps))))
}

// Decay is the fixed-schedule baseline process. The probability schedule is
// keyed to the global round number (synchronised Decay), which is the
// strongest variant against random losses — and precisely the property the
// anti-Decay scheduler exploits: the schedule is fixed before the execution,
// so the adversary knows it.
//
// The bcast/ack/recv bookkeeping is the shared core.AckWindow; Decay adds
// only its probability schedule.
type Decay struct {
	core.AckWindow
	p     DecayParams
	cycle probCycle
}

var _ core.Service = (*Decay)(nil)

// NewDecay builds the baseline with the given parameters.
func NewDecay(p DecayParams) *Decay {
	if p.AckRounds < 1 {
		p.AckRounds = 1
	}
	d := &Decay{p: p, cycle: newDecayCycle(seedagree.Log2Ceil(p.Delta))}
	d.AckRounds = p.AckRounds
	d.RecordHears = true
	return d
}

// Prob returns the Decay broadcast probability at global round t:
// 2^{−(1 + (t−1) mod log Δ)}.
func (d *Decay) Prob(t int) float64 { return d.cycle.at(t) }

// probCycle is a fixed probability schedule keyed to the global round
// number — the precomputed form of the Decay-style 2^{−(1+pos)} cycles, so
// the per-round Transmit pays one table lookup instead of a Pow. Shared by
// Decay and the GHLN cycling strategy (whose cycle length is keyed to Δ′).
type probCycle []float64

// newDecayCycle builds the ½, ¼, …, 2^{−n} schedule of length n.
func newDecayCycle(n int) probCycle {
	c := make(probCycle, n)
	for pos := range c {
		c[pos] = math.Pow(2, -float64(1+pos))
	}
	return c
}

// at returns the cycle probability at global round t (1-based).
func (c probCycle) at(t int) float64 { return c[(t-1)%len(c)] }

// Transmit implements sim.Process.
func (d *Decay) Transmit(t int) (any, bool) {
	frame, active := d.ActiveFrame()
	if !active {
		return nil, false
	}
	if d.Env().Rng.Coin(d.Prob(t)) {
		return frame, true
	}
	return nil, false
}

// RoundRobinParams configures the TDMA baseline.
type RoundRobinParams struct {
	// Slots is the TDMA frame length. Delivery is collision-free when node
	// ids are distinct modulo Slots; the Clementi et al. setting uses
	// Slots = n, which is what makes the algorithm inherently global.
	Slots int
}

// RoundRobin is the id-slotted TDMA baseline: node u transmits exactly in
// rounds t with (t−1) ≡ u (mod Slots) while active, and acks after one full
// frame (core.AckWindow with AckRounds = Slots).
type RoundRobin struct {
	core.AckWindow
	p RoundRobinParams
}

var _ core.Service = (*RoundRobin)(nil)

// NewRoundRobin builds the baseline. Slots must be positive.
func NewRoundRobin(p RoundRobinParams) *RoundRobin {
	if p.Slots < 1 {
		p.Slots = 1
	}
	r := &RoundRobin{p: p}
	r.AckRounds = p.Slots
	r.RecordHears = true
	return r
}

// Transmit implements sim.Process.
func (r *RoundRobin) Transmit(t int) (any, bool) {
	frame, active := r.ActiveFrame()
	if !active {
		return nil, false
	}
	if (t-1)%r.p.Slots == r.Env().ID%r.p.Slots {
		return frame, true
	}
	return nil, false
}

// Chatter is a noise process that transmits an opaque payload with a fixed
// probability every round. It is not a broadcast service — it exists to
// populate the adversary's decoy pool in the E-ADAPT and E-ADV experiments.
type Chatter struct {
	// P is the per-round transmit probability.
	P   float64
	env *sim.NodeEnv
}

var _ sim.Process = (*Chatter)(nil)

// Init implements sim.Process.
func (c *Chatter) Init(env *sim.NodeEnv) { c.env = env }

// Transmit implements sim.Process.
func (c *Chatter) Transmit(int) (any, bool) {
	if c.env.Rng.Coin(c.P) {
		return c.env.ID, true
	}
	return nil, false
}

// Receive implements sim.Process.
func (c *Chatter) Receive(int, int, any, bool) {}
