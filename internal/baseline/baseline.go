// Package baseline implements the algorithms the paper positions LBAlg
// against:
//
//   - Decay (Bar-Yehuda, Goldreich, Itai [2]): the classical fixed schedule
//     of geometrically decreasing broadcast probabilities. Its fixed,
//     globally known schedule is exactly what the paper's introduction shows
//     an oblivious link scheduler can exploit (see sched.AntiDecay).
//   - Round-robin TDMA (Clementi, Monti, Silvestri [4]): collision-free
//     id-indexed slots. Optimal for fault-tolerant broadcast but inherently
//     global — its latency scales with the slot count, not local degree —
//     making it the locality counterpoint in the E-LOWER experiments.
//   - Chatter: a non-protocol noise source used as adversary decoys.
//
// Decay and RoundRobin implement core.Service, so environments, the lbspec
// checker, and the experiment harness treat them exactly like LBAlg.
package baseline

import (
	"fmt"
	"math"

	"lbcast/internal/core"
	"lbcast/internal/seedagree"
	"lbcast/internal/sim"
)

// DecayParams configures the Decay baseline.
type DecayParams struct {
	// Delta is the degree bound; the probability cycle has length
	// ⌈log₂ Δ⌉ with per-round probabilities ½, ¼, …, 1/Δ.
	Delta int
	// AckRounds is how many rounds a broadcast stays active before its ack.
	// The classical bound for delivery to all neighbors with probability
	// 1−ε (absent unreliable links) is O(log Δ·(log Δ + log(1/ε))); use
	// DecayAckRounds for that default.
	AckRounds int
}

// DecayAckRounds returns the classical acknowledgement budget for Decay:
// c·logΔ·(logΔ + log(1/ε)) rounds with a small calibrated constant.
func DecayAckRounds(delta int, eps float64) int {
	l := float64(seedagree.Log2Ceil(delta))
	return int(math.Ceil(4 * l * (l + math.Log2(1/eps))))
}

// Decay is the fixed-schedule baseline process. The probability schedule is
// keyed to the global round number (synchronised Decay), which is the
// strongest variant against random losses — and precisely the property the
// anti-Decay scheduler exploits: the schedule is fixed before the execution,
// so the adversary knows it.
type Decay struct {
	p   DecayParams
	env *sim.NodeEnv

	pending    *core.Message
	activeFor  int
	seen       map[sim.MsgID]struct{}
	seq        int
	onAck      func(core.Message)
	onRecv     func(core.Message, int)
	cycleLen   int
	recordHear bool
}

var _ core.Service = (*Decay)(nil)

// NewDecay builds the baseline with the given parameters.
func NewDecay(p DecayParams) *Decay {
	if p.AckRounds < 1 {
		p.AckRounds = 1
	}
	return &Decay{p: p, seen: make(map[sim.MsgID]struct{}), cycleLen: seedagree.Log2Ceil(p.Delta), recordHear: true}
}

// Init implements sim.Process.
func (d *Decay) Init(env *sim.NodeEnv) { d.env = env }

// Bcast implements core.Service.
func (d *Decay) Bcast(payload any) (sim.MsgID, error) {
	if d.pending != nil {
		return 0, fmt.Errorf("baseline: decay node %d already broadcasting", d.env.ID)
	}
	d.seq++
	m := core.Message{ID: sim.NewMsgID(d.env.ID, d.seq), Payload: payload}
	d.pending = &m
	d.activeFor = 0
	d.env.Rec.Record(sim.Event{Node: d.env.ID, Kind: sim.EvBcast, MsgID: m.ID, Payload: payload})
	return m.ID, nil
}

// Active implements core.Service.
func (d *Decay) Active() bool { return d.pending != nil }

// SetOnAck implements core.Service.
func (d *Decay) SetOnAck(fn func(core.Message)) { d.onAck = fn }

// SetOnRecv implements core.Service.
func (d *Decay) SetOnRecv(fn func(core.Message, int)) { d.onRecv = fn }

// Prob returns the Decay broadcast probability at global round t:
// 2^{−(1 + (t−1) mod log Δ)}.
func (d *Decay) Prob(t int) float64 {
	pos := (t - 1) % d.cycleLen
	return math.Pow(2, -float64(1+pos))
}

// Transmit implements sim.Process.
func (d *Decay) Transmit(t int) (any, bool) {
	if d.pending == nil {
		return nil, false
	}
	if d.env.Rng.Coin(d.Prob(t)) {
		return core.DataMsg{Msg: *d.pending}, true
	}
	return nil, false
}

// Receive implements sim.Process.
func (d *Decay) Receive(t, from int, payload any, ok bool) {
	if ok {
		if dm, isData := payload.(core.DataMsg); isData {
			d.deliver(t, from, dm.Msg)
		}
	}
	if d.pending != nil {
		d.activeFor++
		if d.activeFor >= d.p.AckRounds {
			m := *d.pending
			d.pending = nil
			d.env.Rec.Record(sim.Event{Round: t, Node: d.env.ID, Kind: sim.EvAck, MsgID: m.ID})
			if d.onAck != nil {
				d.onAck(m)
			}
		}
	}
}

func (d *Decay) deliver(t, from int, m core.Message) {
	if d.recordHear {
		d.env.Rec.Record(sim.Event{Round: t, Node: d.env.ID, Kind: sim.EvHear, From: from, MsgID: m.ID})
	}
	if _, dup := d.seen[m.ID]; dup {
		return
	}
	d.seen[m.ID] = struct{}{}
	d.env.Rec.Record(sim.Event{Round: t, Node: d.env.ID, Kind: sim.EvRecv, From: from, MsgID: m.ID})
	if d.onRecv != nil {
		d.onRecv(m, from)
	}
}

// RoundRobinParams configures the TDMA baseline.
type RoundRobinParams struct {
	// Slots is the TDMA frame length. Delivery is collision-free when node
	// ids are distinct modulo Slots; the Clementi et al. setting uses
	// Slots = n, which is what makes the algorithm inherently global.
	Slots int
}

// RoundRobin is the id-slotted TDMA baseline: node u transmits exactly in
// rounds t with (t−1) ≡ u (mod Slots) while active, and acks after one full
// frame.
type RoundRobin struct {
	p   RoundRobinParams
	env *sim.NodeEnv

	pending   *core.Message
	activeFor int
	seen      map[sim.MsgID]struct{}
	seq       int
	onAck     func(core.Message)
	onRecv    func(core.Message, int)
}

var _ core.Service = (*RoundRobin)(nil)

// NewRoundRobin builds the baseline. Slots must be positive.
func NewRoundRobin(p RoundRobinParams) *RoundRobin {
	if p.Slots < 1 {
		p.Slots = 1
	}
	return &RoundRobin{p: p, seen: make(map[sim.MsgID]struct{})}
}

// Init implements sim.Process.
func (r *RoundRobin) Init(env *sim.NodeEnv) { r.env = env }

// Bcast implements core.Service.
func (r *RoundRobin) Bcast(payload any) (sim.MsgID, error) {
	if r.pending != nil {
		return 0, fmt.Errorf("baseline: round-robin node %d already broadcasting", r.env.ID)
	}
	r.seq++
	m := core.Message{ID: sim.NewMsgID(r.env.ID, r.seq), Payload: payload}
	r.pending = &m
	r.activeFor = 0
	r.env.Rec.Record(sim.Event{Node: r.env.ID, Kind: sim.EvBcast, MsgID: m.ID, Payload: payload})
	return m.ID, nil
}

// Active implements core.Service.
func (r *RoundRobin) Active() bool { return r.pending != nil }

// SetOnAck implements core.Service.
func (r *RoundRobin) SetOnAck(fn func(core.Message)) { r.onAck = fn }

// SetOnRecv implements core.Service.
func (r *RoundRobin) SetOnRecv(fn func(core.Message, int)) { r.onRecv = fn }

// Transmit implements sim.Process.
func (r *RoundRobin) Transmit(t int) (any, bool) {
	if r.pending == nil {
		return nil, false
	}
	if (t-1)%r.p.Slots == r.env.ID%r.p.Slots {
		return core.DataMsg{Msg: *r.pending}, true
	}
	return nil, false
}

// Receive implements sim.Process.
func (r *RoundRobin) Receive(t, from int, payload any, ok bool) {
	if ok {
		if dm, isData := payload.(core.DataMsg); isData {
			r.deliver(t, from, dm.Msg)
		}
	}
	if r.pending != nil {
		r.activeFor++
		if r.activeFor >= r.p.Slots {
			m := *r.pending
			r.pending = nil
			r.env.Rec.Record(sim.Event{Round: t, Node: r.env.ID, Kind: sim.EvAck, MsgID: m.ID})
			if r.onAck != nil {
				r.onAck(m)
			}
		}
	}
}

func (r *RoundRobin) deliver(t, from int, m core.Message) {
	r.env.Rec.Record(sim.Event{Round: t, Node: r.env.ID, Kind: sim.EvHear, From: from, MsgID: m.ID})
	if _, dup := r.seen[m.ID]; dup {
		return
	}
	r.seen[m.ID] = struct{}{}
	r.env.Rec.Record(sim.Event{Round: t, Node: r.env.ID, Kind: sim.EvRecv, From: from, MsgID: m.ID})
	if r.onRecv != nil {
		r.onRecv(m, from)
	}
}

// Chatter is a noise process that transmits an opaque payload with a fixed
// probability every round. It is not a broadcast service — it exists to
// populate the adversary's decoy pool in the E-ADAPT and E-ADV experiments.
type Chatter struct {
	// P is the per-round transmit probability.
	P   float64
	env *sim.NodeEnv
}

var _ sim.Process = (*Chatter)(nil)

// Init implements sim.Process.
func (c *Chatter) Init(env *sim.NodeEnv) { c.env = env }

// Transmit implements sim.Process.
func (c *Chatter) Transmit(int) (any, bool) {
	if c.env.Rng.Coin(c.P) {
		return c.env.ID, true
	}
	return nil, false
}

// Receive implements sim.Process.
func (c *Chatter) Receive(int, int, any, bool) {}
