package baseline

import (
	"math"
	"testing"

	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/seedagree"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

func TestDecayProbSchedule(t *testing.T) {
	d := NewDecay(DecayParams{Delta: 16, AckRounds: 10})
	// Cycle length log₂16 = 4: probabilities ½, ¼, ⅛, 1/16, then repeat.
	want := []float64{0.5, 0.25, 0.125, 0.0625, 0.5, 0.25}
	for i, w := range want {
		if got := d.Prob(i + 1); math.Abs(got-w) > 1e-12 {
			t.Errorf("Prob(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestDecayLifecycle(t *testing.T) {
	g, err := dualgraph.Abstract(2, []dualgraph.Edge{{U: 0, V: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	procs := []core.Service{
		NewDecay(DecayParams{Delta: 2, AckRounds: 40}),
		NewDecay(DecayParams{Delta: 2, AckRounds: 40}),
	}
	simProcs := []sim.Process{procs[0], procs[1]}
	env := core.NewSingleShotEnv(procs, []core.Send{{Node: 0, Round: 1, Payload: "d"}})
	e, err := sim.New(sim.Config{Dual: g, Procs: simProcs, Env: env, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(60)
	tr := e.Trace()
	if len(tr.ByKind(sim.EvBcast)) != 1 || len(tr.ByKind(sim.EvAck)) != 1 {
		t.Fatalf("lifecycle events wrong: %d bcast, %d ack",
			len(tr.ByKind(sim.EvBcast)), len(tr.ByKind(sim.EvAck)))
	}
	// With 40 active rounds at probability ≥ 1/2 every other round, the
	// neighbor hears the message essentially surely.
	got := false
	for _, rv := range tr.ByKind(sim.EvRecv) {
		if rv.Node == 1 {
			got = true
		}
	}
	if !got {
		t.Error("neighbor never received from Decay sender")
	}
	// Ack exactly after AckRounds rounds of activity.
	ack := tr.ByKind(sim.EvAck)[0]
	bc := tr.ByKind(sim.EvBcast)[0]
	if ack.Round-bc.Round+1 != 40 {
		t.Errorf("ack after %d rounds, want 40", ack.Round-bc.Round+1)
	}
}

func TestDecayRejectsSecondBcast(t *testing.T) {
	g, err := dualgraph.Abstract(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := NewDecay(DecayParams{Delta: 2, AckRounds: 5})
	e, err := sim.New(sim.Config{Dual: g, Procs: []sim.Process{p}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(1)
	if _, err := p.Bcast("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Bcast("b"); err == nil {
		t.Fatal("second bcast accepted")
	}
	if !p.Active() {
		t.Error("not active after bcast")
	}
}

func TestDecayAckRoundsFormula(t *testing.T) {
	// Monotone in Δ and 1/ε, and ≥ logΔ.
	if DecayAckRounds(16, 0.1) <= DecayAckRounds(4, 0.1) {
		t.Error("AckRounds not monotone in Δ")
	}
	if DecayAckRounds(16, 0.01) <= DecayAckRounds(16, 0.1) {
		t.Error("AckRounds not monotone in 1/ε")
	}
}

func TestRoundRobinCollisionFree(t *testing.T) {
	// A clique of 4 nodes all broadcasting: TDMA must deliver every message
	// to every other node within one frame, with zero collisions.
	var rel []dualgraph.Edge
	for i := int32(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			rel = append(rel, dualgraph.Edge{U: i, V: j})
		}
	}
	g, err := dualgraph.Abstract(4, rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]core.Service, 4)
	simProcs := make([]sim.Process, 4)
	for u := range procs {
		procs[u] = NewRoundRobin(RoundRobinParams{Slots: 4})
		simProcs[u] = procs[u]
	}
	sends := make([]core.Send, 4)
	for u := range sends {
		sends[u] = core.Send{Node: u, Round: 1, Payload: u}
	}
	env := core.NewSingleShotEnv(procs, sends)
	e, err := sim.New(sim.Config{Dual: g, Procs: simProcs, Env: env, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(4)
	tr := e.Trace()
	if tr.Collisions != 0 {
		t.Errorf("TDMA produced %d collisions", tr.Collisions)
	}
	recvs := tr.ByKind(sim.EvRecv)
	// Each of 4 messages reaches the 3 other nodes.
	if len(recvs) != 12 {
		t.Errorf("%d recv events, want 12", len(recvs))
	}
	if len(tr.ByKind(sim.EvAck)) != 4 {
		t.Errorf("%d acks, want 4", len(tr.ByKind(sim.EvAck)))
	}
}

func TestRoundRobinSlotDiscipline(t *testing.T) {
	g, err := dualgraph.Abstract(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := NewRoundRobin(RoundRobinParams{Slots: 3})
	e, err := sim.New(sim.Config{Dual: g, Procs: []sim.Process{p}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = e
	if _, err := p.Bcast("x"); err != nil {
		t.Fatal(err)
	}
	// Node 0 with 3 slots transmits exactly at rounds 1, 4, 7, …
	for round := 1; round <= 9; round++ {
		_, tx := p.Transmit(round)
		want := (round-1)%3 == 0
		if tx != want {
			t.Errorf("round %d: transmit = %v, want %v", round, tx, want)
		}
	}
}

func TestRoundRobinLatencyScalesWithSlots(t *testing.T) {
	// The globality critique: TDMA ack latency equals the frame length
	// regardless of actual contention.
	for _, slots := range []int{8, 64} {
		g, err := dualgraph.Abstract(2, []dualgraph.Edge{{U: 0, V: 1}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		procs := []core.Service{
			NewRoundRobin(RoundRobinParams{Slots: slots}),
			NewRoundRobin(RoundRobinParams{Slots: slots}),
		}
		env := core.NewSingleShotEnv(procs, []core.Send{{Node: 0, Round: 1, Payload: "x"}})
		e, err := sim.New(sim.Config{Dual: g, Procs: []sim.Process{procs[0], procs[1]}, Env: env, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		e.Run(slots + 2)
		acks := e.Trace().ByKind(sim.EvAck)
		if len(acks) != 1 {
			t.Fatalf("slots=%d: %d acks", slots, len(acks))
		}
		if lat := acks[0].Round; lat != slots {
			t.Errorf("slots=%d: ack at round %d, want %d", slots, lat, slots)
		}
	}
}

func TestChatterRate(t *testing.T) {
	c := &Chatter{P: 0.3}
	c.Init(&sim.NodeEnv{ID: 1, Rng: xrand.New(1), Rec: nopRec{}})
	const rounds = 20000
	tx := 0
	for i := 1; i <= rounds; i++ {
		if _, sent := c.Transmit(i); sent {
			tx++
		}
	}
	got := float64(tx) / rounds
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("chatter rate = %v, want 0.3", got)
	}
}

type nopRec struct{}

func (nopRec) Record(sim.Event) {}

func TestDecayUnderAntiDecayScheduler(t *testing.T) {
	// The §1 separation: with the anti-Decay oblivious scheduler aligned to
	// Decay's cycle, a receiver surrounded by unreliable-link decoy senders
	// makes much slower progress than under a benign scheduler.
	d, err := dualgraph.StarWithDecoys(16)
	if err != nil {
		t.Fatal(err)
	}
	run := func(s sim.LinkScheduler, seed uint64) int {
		// Node 1 (reliable neighbor of 0) and all decoys broadcast.
		procs := make([]core.Service, d.N())
		simProcs := make([]sim.Process, d.N())
		for u := range procs {
			procs[u] = NewDecay(DecayParams{Delta: d.DeltaPrime(), AckRounds: 1 << 20})
			simProcs[u] = procs[u]
		}
		senders := make([]int, 0, d.N()-1)
		for u := 1; u < d.N(); u++ {
			senders = append(senders, u)
		}
		env := core.NewSaturatingEnv(procs, senders)
		e, err := sim.New(sim.Config{Dual: d, Procs: simProcs, Sched: s, Env: env, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		const maxRounds = 4000
		for r := 0; r < maxRounds; r++ {
			e.Step()
			for _, ev := range e.Trace().ByKind(sim.EvHear) {
				if ev.Node == 0 {
					return ev.Round
				}
			}
		}
		return maxRounds
	}
	cycle := 5 // log₂(Δ′=17→32) = 5
	benign, hostile := 0, 0
	const trials = 5
	for i := uint64(0); i < trials; i++ {
		benign += run(sched.Never{}, i)
		hostile += run(sched.AntiDecay{CycleLen: cycle}, 100+i)
	}
	if hostile <= benign {
		t.Errorf("anti-Decay did not hurt Decay: benign %d vs hostile %d total rounds", benign, hostile)
	}
}

// TestDecayProbTableMatchesFormula pins the precomputed probability cycle
// to the 2^{−(1+(t−1) mod log Δ)} schedule it caches.
func TestDecayProbTableMatchesFormula(t *testing.T) {
	for _, delta := range []int{1, 2, 5, 32, 100} {
		d := NewDecay(DecayParams{Delta: delta, AckRounds: 4})
		cycle := seedagree.Log2Ceil(delta)
		for tr := 1; tr <= 3*cycle+1; tr++ {
			want := math.Pow(2, -float64(1+(tr-1)%cycle))
			if got := d.Prob(tr); got != want {
				t.Fatalf("Δ=%d round %d: Prob = %v, want %v", delta, tr, got, want)
			}
		}
	}
}
