package dualgraph

import (
	"fmt"
	"math"

	"lbcast/internal/geo"
	"lbcast/internal/par"
	"lbcast/internal/xrand"
)

// GreyPolicy decides, for each pair of vertices in the grey zone — distance
// in (1, r] — whether the pair becomes a reliable edge, an unreliable edge,
// or no edge. The model allows any of the three; different policies give
// different stress profiles.
type GreyPolicy int

const (
	// GreyUnreliable puts every grey-zone pair in E′ \ E (the adversary
	// controls all of them). This is the hardest profile and the default.
	GreyUnreliable GreyPolicy = iota + 1
	// GreyNone leaves grey-zone pairs unconnected, yielding G = G′ (no
	// unreliable links at all) — the classical reliable radio model.
	GreyNone
	// GreyReliable puts grey-zone pairs in E, also yielding G = G′ but
	// with longer reliable reach.
	GreyReliable
	// GreyMixed assigns each grey-zone pair independently: unreliable with
	// probability ⅔, reliable with probability ⅙, absent otherwise.
	GreyMixed
)

// buildFromEmbedding derives (G, G′) from an embedding: pairs within
// distance 1 are reliable (condition 1), grey-zone pairs follow the policy,
// pairs beyond r are unconnected (condition 2).
//
// Edges are collected into flat lists and bulk-built via NewGraphFromEdges
// (sort once, dedupe). The pair scan runs over the dense geo.GridIndex with
// the precomputed distance-r neighbor stencil: O(1) array lookups where the
// map-based region index paid a hash per region, which was ~70% of the
// n = 10⁵ construction time. The stencil visits regions in the same
// (di, dj) order as the square window it replaces and only drops regions
// beyond distance r — which cannot contain an edge or a grey-zone pair — so
// each pair is still visited at most once and in the same order as before,
// GreyMixed draws the same coin for the same pair, and the resulting dual is
// identical (the golden execution fingerprints pin this).
//
// Because every produced edge satisfies the r-geographic conditions by
// construction, the result is assembled through the trusted path; tests
// certify it against Dual.Validate.
func buildFromEmbedding(emb []geo.Point, r float64, policy GreyPolicy, rng *xrand.Source) (*Dual, error) {
	return buildFromEmbeddingWorkers(emb, r, policy, rng, 1)
}

// parallelScanMinVertices is the embedding size below which sharding the
// pair scan is not worth the fork-join overhead.
const parallelScanMinVertices = 1 << 14

// buildFromEmbeddingWorkers is buildFromEmbedding with the pair scan and the
// CSR assembly sharded over contiguous vertex ranges on the given number of
// workers. Each worker scans its own u-range into private edge buffers;
// concatenating those buffers in worker order reproduces the sequential
// append order exactly (the scan emits edges in ascending-u order and
// par.Ranges hands worker w the w-th contiguous range), so the built dual is
// structurally identical for every worker count — the golden execution
// fingerprints pin this. GreyMixed is the one policy that cannot shard: it
// draws one rng coin per grey pair, and the draw order is part of the
// topology's identity, so it always scans sequentially (the graph assembly
// still parallelises).
func buildFromEmbeddingWorkers(emb []geo.Point, r float64, policy GreyPolicy, rng *xrand.Source, workers int) (*Dual, error) {
	if r < 1 {
		return nil, fmt.Errorf("dualgraph: r = %v < 1", r)
	}
	switch policy {
	case GreyUnreliable, GreyNone, GreyReliable, GreyMixed:
	default:
		return nil, fmt.Errorf("dualgraph: unknown grey policy %d", policy)
	}
	n := len(emb)
	gi := geo.BuildGridIndexWorkers(emb, workers)
	stencil := geo.NeighborStencil(r)
	var gEdges, gpOnly []Edge
	if policy == GreyMixed || workers <= 1 || n < parallelScanMinVertices {
		gEdges, gpOnly = scanPairs(gi, stencil, emb, r, policy, rng, 0, n)
	} else {
		type shard struct{ g, gp []Edge }
		shards := make([]shard, workers)
		par.Ranges(n, workers, func(w, lo, hi int) {
			g, gp := scanPairs(gi, stencil, emb, r, policy, nil, lo, hi)
			shards[w] = shard{g, gp}
		})
		for _, s := range shards {
			gEdges = append(gEdges, s.g...)
			gpOnly = append(gpOnly, s.gp...)
		}
	}
	g := NewGraphFromEdgesWorkers(n, gEdges, workers)
	gp := NewGraphFromEdgesWorkers(n, append(gEdges, gpOnly...), workers)
	return newDualTrusted(g, gp, emb, r), nil
}

// scanPairs runs the policy pair scan for u in [lo, hi), returning the
// reliable and unreliable-only edges in the scan's visit order. rng is
// consulted only for GreyMixed, which never runs sharded; the policy was
// validated by the caller.
func scanPairs(gi *geo.GridIndex, stencil []geo.CellOffset, emb []geo.Point, r float64, policy GreyPolicy, rng *xrand.Source, lo, hi int) (gEdges, gpOnly []Edge) {
	for u := lo; u < hi; u++ {
		ru := gi.RegionOfVertex(u)
		for _, o := range stencil {
			ri, ok := gi.IndexOf(geo.RegionID{I: ru.I + o.DI, J: ru.J + o.DJ})
			if !ok {
				continue
			}
			for _, v32 := range gi.MembersAt(ri) {
				v := int(v32)
				if v <= u {
					continue
				}
				e := Edge{U: int32(u), V: int32(v)}
				dist := geo.Dist(emb[u], emb[v])
				switch {
				case dist <= 1:
					gEdges = append(gEdges, e)
				case dist <= r:
					switch policy {
					case GreyUnreliable:
						gpOnly = append(gpOnly, e)
					case GreyReliable:
						gEdges = append(gEdges, e)
					case GreyMixed:
						switch f := rng.Float64(); {
						case f < 2.0/3:
							gpOnly = append(gpOnly, e)
						case f < 2.0/3+1.0/6:
							gEdges = append(gEdges, e)
						}
					}
				}
			}
		}
	}
	return gEdges, gpOnly
}

// RandomGeometric places n vertices uniformly at random in a w × h rectangle
// and derives the dual graph from the embedding with the given grey policy.
func RandomGeometric(n int, w, h, r float64, policy GreyPolicy, rng *xrand.Source) (*Dual, error) {
	return RandomGeometricWorkers(n, w, h, r, policy, rng, 1)
}

// RandomGeometricWorkers is RandomGeometric with the geometric construction
// (grid index, pair scan, CSR assembly) sharded over the given number of
// workers. The placement itself stays sequential — it consumes rng draws in
// point order — and the result is structurally identical to RandomGeometric
// for every worker count.
func RandomGeometricWorkers(n int, w, h, r float64, policy GreyPolicy, rng *xrand.Source, workers int) (*Dual, error) {
	if n < 0 || w <= 0 || h <= 0 {
		return nil, fmt.Errorf("dualgraph: invalid geometry n=%d w=%v h=%v", n, w, h)
	}
	emb := make([]geo.Point, n)
	for i := range emb {
		emb[i] = geo.Point{X: rng.Float64() * w, Y: rng.Float64() * h}
	}
	return buildFromEmbeddingWorkers(emb, r, policy, rng, workers)
}

// SingleHopCluster places n vertices uniformly in a disc of diameter 1, so G
// is a clique: the single-hop setting used for the progress and
// acknowledgement experiments (a receiver surrounded by broadcasters).
func SingleHopCluster(n int, r float64, rng *xrand.Source) (*Dual, error) {
	emb := make([]geo.Point, n)
	for i := range emb {
		// Rejection-sample the unit-diameter disc centred at the origin.
		for {
			x, y := rng.Float64()-0.5, rng.Float64()-0.5
			if x*x+y*y <= 0.25 {
				emb[i] = geo.Point{X: x, Y: y}
				break
			}
		}
	}
	return buildFromEmbedding(emb, r, GreyUnreliable, rng)
}

// TwoTierClusters builds k clusters of m vertices each. Every cluster has
// diameter ≤ 1 (so it is a reliable clique) and consecutive clusters are
// separated by a grey-zone gap in (1, r], so all inter-cluster links are
// unreliable. This is the canonical dual graph stress topology: reliable
// islands whose only interconnection the adversary controls.
func TwoTierClusters(k, m int, r float64, rng *xrand.Source) (*Dual, error) {
	if k <= 0 || m <= 0 {
		return nil, fmt.Errorf("dualgraph: invalid cluster shape k=%d m=%d", k, m)
	}
	if r <= 1 {
		return nil, fmt.Errorf("dualgraph: TwoTierClusters needs r > 1 to host a grey gap, got r=%v", r)
	}
	// Cluster centres on a line, spaced so inter-cluster node distances fall
	// in (1, r]: cluster radius ρ, spacing s with s-2ρ > 1 and s+2ρ ≤ r.
	rho := math.Min(0.25, (r-1)/8)
	spacing := 1 + 3*rho
	emb := make([]geo.Point, 0, k*m)
	for c := 0; c < k; c++ {
		cx := float64(c) * spacing
		for i := 0; i < m; i++ {
			for {
				x, y := (rng.Float64()-0.5)*2*rho, (rng.Float64()-0.5)*2*rho
				if x*x+y*y <= rho*rho {
					emb = append(emb, geo.Point{X: cx + x, Y: y})
					break
				}
			}
		}
	}
	return buildFromEmbedding(emb, r, GreyUnreliable, rng)
}

// Line places n vertices on a line with the given spacing. Spacing ≤ 1 gives
// a connected multi-hop path in G (each vertex reliably reaches
// ⌊1/spacing⌋ neighbors to each side); grey-zone pairs become unreliable.
func Line(n int, spacing, r float64, rng *xrand.Source) (*Dual, error) {
	if n < 0 || spacing <= 0 {
		return nil, fmt.Errorf("dualgraph: invalid line n=%d spacing=%v", n, spacing)
	}
	emb := make([]geo.Point, n)
	for i := range emb {
		emb[i] = geo.Point{X: float64(i) * spacing, Y: 0}
	}
	return buildFromEmbedding(emb, r, GreyUnreliable, rng)
}

// GridLattice places vertices on a √n × √n lattice with the given spacing,
// the standard multi-hop mesh used by the abstract MAC layer experiments.
func GridLattice(side int, spacing, r float64, rng *xrand.Source) (*Dual, error) {
	if side <= 0 || spacing <= 0 {
		return nil, fmt.Errorf("dualgraph: invalid lattice side=%d spacing=%v", side, spacing)
	}
	emb := make([]geo.Point, 0, side*side)
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			emb = append(emb, geo.Point{X: float64(i) * spacing, Y: float64(j) * spacing})
		}
	}
	return buildFromEmbedding(emb, r, GreyUnreliable, rng)
}

// Abstract builds a non-geographic dual graph directly from edge lists, for
// unit tests and adversarial shapes that need exact control of E and E′.
// reliable ∪ unreliable must form a simple graph; unreliable edges listed in
// reliable are rejected. The r-geographic check is skipped (Emb is nil).
func Abstract(n int, reliable, unreliable []Edge) (*Dual, error) {
	g, gp := NewGraph(n), NewGraph(n)
	for _, e := range reliable {
		g.AddEdge(int(e.U), int(e.V))
		gp.AddEdge(int(e.U), int(e.V))
	}
	for _, e := range unreliable {
		if g.HasEdge(int(e.U), int(e.V)) {
			return nil, fmt.Errorf("dualgraph: edge {%d,%d} listed as both reliable and unreliable", e.U, e.V)
		}
		gp.AddEdge(int(e.U), int(e.V))
	}
	// Abstract graphs have no embedding; r is set to 1 (its minimum).
	return NewDual(g, gp, nil, 1)
}

// StarWithDecoys builds the adversarial-progress shape from the paper's
// introduction: a receiver (vertex 0) with one reliable neighbor (vertex 1,
// the real sender) and nDecoys unreliable neighbors (vertices 2..) whose
// links the adversary schedules. The decoys are mutually connected by
// reliable edges so they form a legal single-hop cluster among themselves.
func StarWithDecoys(nDecoys int) (*Dual, error) {
	if nDecoys < 0 {
		return nil, fmt.Errorf("dualgraph: negative decoy count %d", nDecoys)
	}
	n := 2 + nDecoys
	var rel, unrel []Edge
	rel = append(rel, Edge{U: 0, V: 1})
	for i := 2; i < n; i++ {
		unrel = append(unrel, Edge{U: 0, V: int32(i)})
		rel = append(rel, Edge{U: 1, V: int32(i)})
		for j := i + 1; j < n; j++ {
			rel = append(rel, Edge{U: int32(i), V: int32(j)})
		}
	}
	return Abstract(n, rel, unrel)
}
