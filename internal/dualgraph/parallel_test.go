package dualgraph

import (
	"reflect"
	"testing"

	"lbcast/internal/xrand"
)

// TestNewGraphFromEdgesWorkersIdentical: the arena-backed parallel build must
// produce the same adjacency structure as the sequential one for any worker
// count, including duplicate edges, both orientations of the same pair, and
// self-loops. The edge count clears parallelSortMinArcs so the sharded
// sort/compact pass actually runs.
func TestNewGraphFromEdgesWorkersIdentical(t *testing.T) {
	const n, m = 3000, 40000
	rng := xrand.New(17)
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if i%251 == 0 {
			v = u // self-loop, must be ignored
		}
		edges = append(edges, Edge{U: u, V: v})
	}
	want := NewGraphFromEdges(n, edges)
	for _, workers := range []int{2, 3, 8} {
		got := NewGraphFromEdgesWorkers(n, edges, workers)
		for u := 0; u < n; u++ {
			if !reflect.DeepEqual(nonNil(got.Neighbors(u)), nonNil(want.Neighbors(u))) {
				t.Fatalf("workers=%d: adjacency of %d differs: %v vs %v",
					workers, u, got.Neighbors(u), want.Neighbors(u))
			}
		}
	}
}

// TestRandomGeometricWorkersIdentical pins the determinism contract of the
// sharded geometric construction: for every grey policy and worker count the
// dual is structurally identical to the sequential build from the same seed.
// n clears parallelScanMinVertices so the sharded pair scan actually runs
// (GreyMixed scans sequentially by design — its rng draw order is part of
// the topology — but still exercises the parallel CSR assembly).
func TestRandomGeometricWorkersIdentical(t *testing.T) {
	const (
		n    = parallelScanMinVertices + 500
		side = 60.0
		r    = 1.8
	)
	for _, policy := range []GreyPolicy{GreyUnreliable, GreyNone, GreyReliable, GreyMixed} {
		want, err := RandomGeometric(n, side, side, r, policy, xrand.New(23))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 7} {
			got, err := RandomGeometricWorkers(n, side, side, r, policy, xrand.New(23), workers)
			if err != nil {
				t.Fatal(err)
			}
			for u := 0; u < n; u++ {
				if !reflect.DeepEqual(nonNil(got.G.Neighbors(u)), nonNil(want.G.Neighbors(u))) {
					t.Fatalf("policy=%d workers=%d: G adjacency of %d differs", policy, workers, u)
				}
				if !reflect.DeepEqual(nonNil(got.Gp.Neighbors(u)), nonNil(want.Gp.Neighbors(u))) {
					t.Fatalf("policy=%d workers=%d: G' adjacency of %d differs", policy, workers, u)
				}
			}
		}
	}
}
