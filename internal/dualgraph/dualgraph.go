package dualgraph

import (
	"fmt"
	"slices"
	"sort"

	"lbcast/internal/geo"
	"lbcast/internal/par"
)

// Graph is a simple undirected graph over vertices 0..N-1 stored as sorted
// adjacency lists.
type Graph struct {
	n   int
	adj [][]int32
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic("dualgraph: negative vertex count")
	}
	return &Graph{n: n, adj: make([][]int32, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicates are
// ignored; callers construct graphs once and then treat them as immutable.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		panic(fmt.Sprintf("dualgraph: edge {%d,%d} out of range [0,%d)", u, v, g.n))
	}
	if g.HasEdge(u, v) {
		return
	}
	g.adj[u] = insertSorted(g.adj[u], int32(v))
	g.adj[v] = insertSorted(g.adj[v], int32(u))
}

func insertSorted(s []int32, v int32) []int32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// NewGraphFromEdges bulk-builds a graph: all edges are collected into the
// adjacency lists first, then every list is sorted once and deduplicated in
// place. For a graph with m edges this costs O(m log Δ) total instead of
// the O(m·Δ) of repeated sorted inserts, which is what made graph
// construction dominate the n = 10⁵ sweep point. Self-loops are ignored and
// duplicates collapse, so the result is identical to AddEdge-ing every pair
// into an empty graph (the dualgraph tests pin that equivalence against the
// sorted-insert oracle).
func NewGraphFromEdges(n int, edges []Edge) *Graph {
	return NewGraphFromEdgesWorkers(n, edges, 1)
}

// parallelSortMinArcs is the arc count (2m) below which sharding the
// per-node sort/dedupe pass is not worth the fork-join.
const parallelSortMinArcs = 1 << 15

// NewGraphFromEdgesWorkers is NewGraphFromEdges with the per-node
// sort-and-compact pass — the O(m log Δ) bulk of the build — sharded over
// contiguous vertex ranges on the given number of workers. Nodes are
// independent there, so the result is identical for every worker count.
// The counting and scatter passes stay sequential (two O(m) sweeps), but
// the adjacency lists now carve one shared arena instead of one allocation
// per node: backing[off(u):off(u+1)] with the capacity clamped three-index
// style, so a later sorted insert into a compacted list can never grow into
// its neighbor's segment.
func NewGraphFromEdgesWorkers(n int, edges []Edge, workers int) *Graph {
	g := NewGraph(n)
	off := make([]int32, n+1)
	for _, e := range edges {
		u, v := int(e.U), int(e.V)
		if u == v {
			continue
		}
		if u < 0 || v < 0 || u >= n || v >= n {
			panic(fmt.Sprintf("dualgraph: edge {%d,%d} out of range [0,%d)", u, v, n))
		}
		off[u+1]++
		off[v+1]++
	}
	for u := 0; u < n; u++ {
		off[u+1] += off[u]
	}
	backing := make([]int32, off[n])
	cur := make([]int32, n)
	copy(cur, off[:n])
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		backing[cur[e.U]] = e.V
		cur[e.U]++
		backing[cur[e.V]] = e.U
		cur[e.V]++
	}
	if int(off[n]) < parallelSortMinArcs {
		workers = 1
	}
	par.Ranges(n, workers, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			s := backing[off[u]:off[u+1]:off[u+1]]
			if len(s) == 0 {
				continue
			}
			if len(s) >= 2 {
				slices.Sort(s)
				s = slices.Compact(s)
			}
			g.adj[u] = s
		}
	})
	return g
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.n || v >= g.n || u == v {
		return false
	}
	s := g.adj[u]
	i := sort.Search(len(s), func(i int) bool { return s[i] >= int32(v) })
	return i < len(s) && s[i] == int32(v)
}

// Neighbors returns u's adjacency list, sorted ascending. The returned slice
// must not be modified.
func (g *Graph) Neighbors(u int) []int32 { return g.adj[u] }

// Degree returns |N(u)| (u itself not included).
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// MaxDegreePlusOne returns max over u of |N(u) ∪ {u}|, the quantity the
// paper's Δ and Δ′ bound. For the empty graph it returns 1 if there is at
// least one vertex, else 0.
func (g *Graph) MaxDegreePlusOne() int {
	if g.n == 0 {
		return 0
	}
	maxDeg := 0
	for u := 0; u < g.n; u++ {
		if d := len(g.adj[u]); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg + 1
}

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// Edge is an undirected edge with U < V.
type Edge struct {
	U, V int32
}

// Edges returns all edges, each once, ordered by (U, V).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.EdgeCount())
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if int32(u) < v {
				out = append(out, Edge{U: int32(u), V: v})
			}
		}
	}
	return out
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.n)
	for u := range g.adj {
		c.adj[u] = append([]int32(nil), g.adj[u]...)
	}
	return c
}

// BFSDist returns hop distances from src, with -1 for unreachable vertices.
func (g *Graph) BFSDist(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, int(v))
			}
		}
	}
	return dist
}

// Diameter returns the largest finite BFS distance over all pairs, and
// whether the graph is connected. O(n·m); intended for test-scale graphs.
func (g *Graph) Diameter() (int, bool) {
	diam := 0
	for u := 0; u < g.n; u++ {
		for _, d := range g.BFSDist(u) {
			if d == -1 {
				return 0, false
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam, true
}

// Dual is a dual graph network (G, G′) with an optional plane embedding.
// Invariant: E(G) ⊆ E(G′) and both graphs share the vertex set.
type Dual struct {
	G, Gp *Graph
	// Emb is the plane embedding witnessing the r-geographic property;
	// nil for abstract (non-geographic) dual graphs used in unit tests.
	Emb []geo.Point
	// R is the r parameter of the r-geographic property, ≥ 1.
	R float64

	unreliable []Edge // E′ \ E, ordered
	uAdj       [][]unreliableArc

	gCSR CSR
	uCSR UnreliableCSR

	// present[v] is false for vertices detached by PatchNode (crashed-and-
	// left or not-yet-joined nodes). nil means every vertex is present — the
	// construction-time state, so churn-free duals pay nothing.
	present []bool
	// patchStencil caches the radius-R neighbor stencil PatchNode scans when
	// attaching a node; it depends only on R.
	patchStencil []geo.CellOffset
	// uArc backs the uAdj incidence slices; uCur and uNew are patch-path
	// scratch (incidence fill cursors, per-attach new unreliable edges).
	uArc []unreliableArc
	uCur []int32
	uNew []Edge
}

// CSR is a flattened adjacency in compressed-sparse-row form: the neighbors
// of node u are Targets[Off[u]:Off[u+1]], sorted ascending. The round
// engine's transmitter-scatter kernel walks it as contiguous memory instead
// of chasing per-node slice headers.
type CSR struct {
	Off     []int32
	Targets []int32
}

// Degree returns the number of entries for node u.
func (c CSR) Degree(u int) int { return int(c.Off[u+1] - c.Off[u]) }

// UnreliableCSR is the flattened unreliable incidence: for node u, the
// incident unreliable edges have peers Peers[Off[u]:Off[u+1]] and edge
// indices (into Dual.UnreliableEdges) Edges[Off[u]:Off[u+1]], in increasing
// edge-index order.
type UnreliableCSR struct {
	Off   []int32
	Peers []int32
	Edges []int32
}

// unreliableArc is one endpoint's view of an unreliable edge.
type unreliableArc struct {
	peer int32
	edge int32 // index into unreliable
}

// NewDual assembles and validates a dual graph. g and gp must have the same
// vertex count and every edge of g must appear in gp. emb may be nil; if
// given, it must have one point per vertex and witness the r-geographic
// property for the supplied r.
//
// NewDual is the untrusted entry point: input of unknown provenance
// (abstract edge lists, deserialised topologies, tests) goes through the
// full Validate pass. The geometric builders, which enforce the
// r-geographic conditions by construction, use newDualTrusted and skip the
// re-validation — it was the dominant cost of large constructions.
func NewDual(g, gp *Graph, emb []geo.Point, r float64) (*Dual, error) {
	d := &Dual{G: g, Gp: gp, Emb: emb, R: r}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	d.index()
	return d, nil
}

// newDualTrusted assembles a dual graph without validating the invariants:
// the caller vouches that E ⊆ E′ and, when emb is non-nil, that the
// r-geographic conditions hold. Reserved for builders that enforce those
// conditions structurally; everything else must go through NewDual.
// trusted_test.go pins that both paths produce structurally identical duals
// and that Validate still rejects inputs the trusted path would accept.
func newDualTrusted(g, gp *Graph, emb []geo.Point, r float64) *Dual {
	d := &Dual{G: g, Gp: gp, Emb: emb, R: r}
	d.index()
	return d
}

// Validate checks the dual graph invariants — shared vertex set, E ⊆ E′,
// r ≥ 1, and (when an embedding is present) both r-geographic conditions.
// NewDual runs it on every untrusted input; tests run it to certify the
// trusted construction path.
func (d *Dual) Validate() error {
	if d.G == nil || d.Gp == nil {
		return fmt.Errorf("dualgraph: nil graph")
	}
	if d.G.N() != d.Gp.N() {
		return fmt.Errorf("dualgraph: vertex count mismatch: G has %d, G' has %d", d.G.N(), d.Gp.N())
	}
	if d.R < 1 {
		return fmt.Errorf("dualgraph: r = %v < 1", d.R)
	}
	for u := 0; u < d.G.N(); u++ {
		for _, v := range d.G.Neighbors(u) {
			if !d.Gp.HasEdge(u, int(v)) {
				return fmt.Errorf("dualgraph: reliable edge {%d,%d} missing from G'", u, v)
			}
		}
	}
	if d.Emb != nil {
		if len(d.Emb) != d.G.N() {
			return fmt.Errorf("dualgraph: embedding has %d points for %d vertices", len(d.Emb), d.G.N())
		}
		if err := d.checkGeographic(); err != nil {
			return err
		}
	}
	return nil
}

// checkGeographic verifies both r-geographic conditions:
// d(u,v) ≤ 1 ⇒ {u,v} ∈ E, and d(u,v) > r ⇒ {u,v} ∉ E′.
func (d *Dual) checkGeographic() error {
	n := d.G.N()
	// Condition 2 only needs existing E′ edges.
	for u := 0; u < n; u++ {
		for _, v := range d.Gp.Neighbors(u) {
			if int32(u) < v && geo.Dist(d.Emb[u], d.Emb[v]) > d.R {
				return fmt.Errorf("dualgraph: unreliable edge {%d,%d} spans %v > r=%v",
					u, v, geo.Dist(d.Emb[u], d.Emb[v]), d.R)
			}
		}
	}
	// Condition 1 needs all close pairs; the grid index bounds the scan to
	// the unit-distance stencil around each vertex instead of O(n²). Absent
	// vertices keep a (stale) embedding entry but participate in no edges, so
	// pairs touching them are exempt from the close-pair condition.
	gi := geo.BuildGridIndex(d.Emb)
	stencil := geo.NeighborStencil(1)
	var bad error
	for u := 0; u < n && bad == nil; u++ {
		if !d.Present(u) {
			continue
		}
		gi.VisitNear(u, stencil, func(v32 int32) {
			v := int(v32)
			if bad != nil || v <= u || !d.Present(v) {
				return
			}
			if geo.Dist(d.Emb[u], d.Emb[v]) <= 1 && !d.G.HasEdge(u, v) {
				bad = fmt.Errorf("dualgraph: vertices %d,%d at distance %v ≤ 1 lack a reliable edge",
					u, v, geo.Dist(d.Emb[u], d.Emb[v]))
			}
		})
	}
	return bad
}

// index precomputes the unreliable edge list, per-node incidence and the
// flattened CSR forms, the structures the round engine consults when
// applying a link schedule and scattering transmissions. PatchNode maintains
// the edge list incrementally and re-runs rebuildFlat after every splice, so
// the steady-state churn path reuses the same backing arrays. Callers that
// copy the CSR slice headers (the round engine does, at construction) must
// re-read them after any patch — rebuildFlat rewrites the shared backing
// arrays in place whenever capacity allows.
func (d *Dual) index() {
	d.scanUnreliable()
	d.rebuildFlat()
}

// scanUnreliable derives the canonical unreliable edge list E′ ∖ E from the
// adjacency lists: u ascending over sorted G′ adjacency with u < v, i.e.
// (U, V)-lexicographic order. Both adjacency lists are sorted, so a forward
// merge walk over G.adj[u] replaces a per-arc binary search. This full scan
// runs at construction only; PatchNode maintains d.unreliable incrementally
// in the same canonical order.
func (d *Dual) scanUnreliable() {
	n := d.G.N()
	d.unreliable = d.unreliable[:0]
	for u := 0; u < n; u++ {
		gAdj := d.G.adj[u]
		gi := 0
		for _, v := range d.Gp.adj[u] {
			if v <= int32(u) {
				continue
			}
			for gi < len(gAdj) && gAdj[gi] < v {
				gi++
			}
			if gi < len(gAdj) && gAdj[gi] == v {
				continue
			}
			d.unreliable = append(d.unreliable, Edge{U: int32(u), V: v})
		}
	}
}

// rebuildFlat re-derives the flattened forms — per-node unreliable
// incidence, the unreliable CSR and the reliable CSR — from d.unreliable
// and the adjacency lists, reusing buffer capacity. Edge indices are
// positions in d.unreliable; because the list is canonically ordered, the
// counting pass plus scatter pass below lays every uAdj[u] out sorted by
// peer, matching what a per-node sort would produce. uAdj slices alias the
// shared uArc buffer and, like the CSR headers, stay valid only until the
// next patch.
func (d *Dual) rebuildFlat() {
	n := d.G.N()
	gTotal := 0
	for u := 0; u < n; u++ {
		gTotal += len(d.G.adj[u])
	}
	if len(d.gCSR.Off) != n+1 {
		d.gCSR.Off = make([]int32, n+1)
	}
	if cap(d.gCSR.Targets) < gTotal {
		d.gCSR.Targets = make([]int32, 0, gTotal)
	} else {
		d.gCSR.Targets = d.gCSR.Targets[:0]
	}
	for u := 0; u < n; u++ {
		d.gCSR.Off[u] = int32(len(d.gCSR.Targets))
		d.gCSR.Targets = append(d.gCSR.Targets, d.G.adj[u]...)
	}
	d.gCSR.Off[n] = int32(gTotal)

	uTotal := 2 * len(d.unreliable)
	if len(d.uCSR.Off) != n+1 {
		d.uCSR.Off = make([]int32, n+1)
	}
	off := d.uCSR.Off
	for i := range off {
		off[i] = 0
	}
	for _, e := range d.unreliable {
		off[e.U+1]++
		off[e.V+1]++
	}
	for u := 0; u < n; u++ {
		off[u+1] += off[u]
	}
	if cap(d.uArc) < uTotal {
		d.uArc = make([]unreliableArc, uTotal)
	}
	buf := d.uArc[:uTotal]
	if cap(d.uCur) < n {
		d.uCur = make([]int32, n)
	}
	cur := d.uCur[:n]
	copy(cur, off[:n])
	for i, e := range d.unreliable {
		buf[cur[e.U]] = unreliableArc{peer: e.V, edge: int32(i)}
		cur[e.U]++
		buf[cur[e.V]] = unreliableArc{peer: e.U, edge: int32(i)}
		cur[e.V]++
	}
	if len(d.uAdj) != n {
		d.uAdj = make([][]unreliableArc, n)
	}
	for u := 0; u < n; u++ {
		d.uAdj[u] = buf[off[u]:off[u+1]:off[u+1]]
	}
	if cap(d.uCSR.Peers) < uTotal {
		d.uCSR.Peers = make([]int32, uTotal)
		d.uCSR.Edges = make([]int32, uTotal)
	}
	d.uCSR.Peers = d.uCSR.Peers[:uTotal]
	d.uCSR.Edges = d.uCSR.Edges[:uTotal]
	for i, a := range buf {
		d.uCSR.Peers[i] = a.peer
		d.uCSR.Edges[i] = a.edge
	}
}

// N returns the number of vertices.
func (d *Dual) N() int { return d.G.N() }

// Delta returns Δ: the maximum over u of |N_G(u) ∪ {u}|.
func (d *Dual) Delta() int { return d.G.MaxDegreePlusOne() }

// DeltaPrime returns Δ′: the maximum over u of |N_G′(u) ∪ {u}|.
func (d *Dual) DeltaPrime() int { return d.Gp.MaxDegreePlusOne() }

// UnreliableEdges returns E′ \ E in a fixed order. The round engine and the
// link schedulers use indices into this slice as the edge identifiers of the
// link schedule. The returned slice must not be modified.
func (d *Dual) UnreliableEdges() []Edge { return d.unreliable }

// UnreliableIncidence returns, for node u, the (peer, edge index) pairs of
// the unreliable edges incident to u. The returned slice must not be modified.
func (d *Dual) UnreliableIncidence(u int) []unreliableArc { return d.uAdj[u] }

// ReliableCSR returns the flattened G adjacency. The returned slices must
// not be modified.
func (d *Dual) ReliableCSR() CSR { return d.gCSR }

// UnreliableCSR returns the flattened unreliable incidence. The returned
// slices must not be modified.
func (d *Dual) UnreliableCSR() UnreliableCSR { return d.uCSR }

// Peer returns the far endpoint of the unreliable edge as seen from the
// node whose incidence list produced this arc.
func (a unreliableArc) Peer() int32 { return a.peer }

// EdgeIndex returns the arc's index into Dual.UnreliableEdges.
func (a unreliableArc) EdgeIndex() int32 { return a.edge }
