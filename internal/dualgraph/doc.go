// Package dualgraph implements the dual graph network model of Section 2 of
// the paper: a pair (G, G′) over a common vertex set with E ⊆ E′, where E
// holds the reliable links and E′ \ E the unreliable links, together with
// the r-geographic embedding constraint and the degree bounds Δ and Δ′ that
// processes are assumed to know.
package dualgraph
