// This file adds node-level patching to Dual: PatchNode splices one vertex's
// reliable and unreliable adjacency out of (detach) or into (attach) a built
// dual without reconstructing it, the graph-side half of the incremental
// topology maintenance that makes mid-execution churn affordable. The
// embedding keeps one slot per vertex forever — a detached node's position
// goes stale but its id stays valid, matching the simulator's fixed process
// table — and presence is tracked explicitly so Validate can keep certifying
// patched duals: both r-geographic conditions are required of present
// vertices only.
//
// Cost model: the adjacency-list splices are O(deg) sorted-slice edits, and
// the canonical unreliable edge list is maintained incrementally — one
// order-preserving compaction pass on detach, one backward in-place merge of
// the O(deg) new edges on attach — rather than rescanned from the adjacency
// lists. The flattened forms (incidence, both CSRs) are then re-derived by
// rebuildFlat, a straight O(n + m) counting-fill pass into reused buffers.
// That pass dominates a patch but is pure sequential int32 traffic — no
// geometry, no per-edge search, no allocation in the steady state — which is
// what separates it by well over an order of magnitude from a full rebuild
// (geometric pair scan + graph construction + indexing); BenchmarkIndexPatch
// pins the ratio and TestIndexPatchSpeedup enforces the 10× floor. Unreliable
// edge indices stay in the same canonical (U, V)-lexicographic order, so
// after a patch they remain valid scheduler identifiers — but indices of
// surviving edges may shift, so stateful consumers (engine inclusion masks,
// adaptive schedulers, fade masks) must re-sync; sim.Engine.RefreshTopology
// and sched.Adaptive.Rebind are those hooks.

package dualgraph

import (
	"fmt"
	"sort"

	"lbcast/internal/geo"
)

// Present reports whether vertex v is currently attached. Duals never
// touched by PatchNode have every vertex present.
func (d *Dual) Present(v int) bool { return d.present == nil || d.present[v] }

// NumPresent returns the number of attached vertices.
func (d *Dual) NumPresent() int {
	if d.present == nil {
		return d.G.N()
	}
	n := 0
	for _, p := range d.present {
		if p {
			n++
		}
	}
	return n
}

// PatchNode detaches (p == nil) or attaches (p != nil) vertex v in place.
//
// Detach removes every edge incident to v from both G and G′ and marks v
// absent; v's embedding slot is retained. Attach places v at *p, discovers
// its neighborhood among the present vertices — distance ≤ 1 pairs become
// reliable edges, grey-zone pairs (1, r] follow policy — and marks v present.
// GreyMixed is rejected for patches: its per-pair coin belongs to the
// construction RNG stream, which a mid-run patch cannot replay.
//
// idx, when non-nil, is the caller's incremental spatial index over the
// present vertices (the churn injector's); PatchNode keeps it in sync
// (Delete on detach, Insert on attach) and uses it to bound attach-time
// neighbor discovery to the radius-r stencil. With idx == nil attach falls
// back to a linear scan over all present vertices.
//
// Consumers holding flattened views must re-sync afterwards: reflatten
// rewrites the CSR backing arrays in place.
func (d *Dual) PatchNode(v int, p *geo.Point, idx *geo.GridIndex, policy GreyPolicy) error {
	if v < 0 || v >= d.G.N() {
		return fmt.Errorf("dualgraph: PatchNode vertex %d out of range [0,%d)", v, d.G.N())
	}
	if p == nil {
		if !d.Present(v) {
			return fmt.Errorf("dualgraph: PatchNode detach of absent vertex %d", v)
		}
		d.detachNode(v)
		if idx != nil {
			idx.Delete(v)
		}
		return nil
	}

	if d.Emb == nil {
		return fmt.Errorf("dualgraph: PatchNode attach needs an embedded dual")
	}
	if d.Present(v) {
		return fmt.Errorf("dualgraph: PatchNode attach of present vertex %d (detach first)", v)
	}
	if policy == GreyMixed {
		return fmt.Errorf("dualgraph: GreyMixed grey-zone policy is not replayable for patches")
	}
	d.Emb[v] = *p
	if idx != nil {
		idx.Insert(v, *p)
	}

	d.uNew = d.uNew[:0]
	link := func(w int) {
		if w == v || !d.Present(w) {
			return
		}
		dist := geo.Dist(d.Emb[v], d.Emb[w])
		switch {
		case dist <= 1:
			d.G.AddEdge(v, w)
			d.Gp.AddEdge(v, w)
		case dist <= d.R:
			switch policy {
			case GreyUnreliable:
				d.Gp.AddEdge(v, w)
				if v < w {
					d.uNew = append(d.uNew, Edge{U: int32(v), V: int32(w)})
				} else {
					d.uNew = append(d.uNew, Edge{U: int32(w), V: int32(v)})
				}
			case GreyReliable:
				d.G.AddEdge(v, w)
				d.Gp.AddEdge(v, w)
			case GreyNone:
			}
		}
	}
	if idx != nil {
		if d.patchStencil == nil {
			d.patchStencil = geo.NeighborStencil(d.R)
		}
		idx.VisitNear(v, d.patchStencil, func(w int32) { link(int(w)) })
	} else {
		for w := 0; w < d.G.N(); w++ {
			link(w)
		}
	}
	d.present[v] = true
	d.mergeUnreliable()
	d.rebuildFlat()
	return nil
}

// mergeUnreliable splices the just-attached vertex's new unreliable edges
// into the canonical list with one backward in-place merge, preserving the
// (U, V)-lexicographic order a full rescan would produce. Duplicates are
// impossible: the vertex was absent, so no surviving edge touches it.
func (d *Dual) mergeUnreliable() {
	k := len(d.uNew)
	if k == 0 {
		return
	}
	sort.Slice(d.uNew, func(i, j int) bool {
		a, b := d.uNew[i], d.uNew[j]
		return a.U < b.U || (a.U == b.U && a.V < b.V)
	})
	old := d.unreliable
	d.unreliable = append(d.unreliable, d.uNew...)
	i, j := len(old)-1, k-1
	for w := len(d.unreliable) - 1; j >= 0; w-- {
		if i >= 0 && (old[i].U > d.uNew[j].U ||
			(old[i].U == d.uNew[j].U && old[i].V > d.uNew[j].V)) {
			d.unreliable[w] = old[i]
			i--
		} else {
			d.unreliable[w] = d.uNew[j]
			j--
		}
	}
}

// detachNode splices v's adjacency out of both graphs, drops v's unreliable
// edges with one order-preserving compaction pass, and re-derives the
// flattened forms.
func (d *Dual) detachNode(v int) {
	if d.present == nil {
		d.present = make([]bool, d.G.N())
		for i := range d.present {
			d.present[i] = true
		}
	}
	d.present[v] = false
	for _, g := range [2]*Graph{d.G, d.Gp} {
		for _, w := range g.adj[v] {
			g.adj[w] = removeSorted(g.adj[w], int32(v))
		}
		g.adj[v] = g.adj[v][:0]
	}
	vv := int32(v)
	keep := d.unreliable[:0]
	for _, e := range d.unreliable {
		if e.U != vv && e.V != vv {
			keep = append(keep, e)
		}
	}
	d.unreliable = keep
	d.rebuildFlat()
}

// removeSorted deletes v from a sorted slice if present, preserving order.
func removeSorted(s []int32, v int32) []int32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		copy(s[i:], s[i+1:])
		s = s[:len(s)-1]
	}
	return s
}
