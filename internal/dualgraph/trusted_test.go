package dualgraph

import (
	"reflect"
	"testing"

	"lbcast/internal/geo"
	"lbcast/internal/xrand"
)

// dualsStructurallyIdentical compares every derived structure of two duals:
// the graphs, the embedding, the unreliable edge order, the per-node
// incidence and both CSR forms. This is the full surface the engine and the
// schedulers consume, so equality here means the two construction paths are
// observationally indistinguishable.
func dualsStructurallyIdentical(t *testing.T, got, want *Dual) {
	t.Helper()
	if got.N() != want.N() || got.R != want.R {
		t.Fatalf("shape diverges: n=%d r=%v vs n=%d r=%v", got.N(), got.R, want.N(), want.R)
	}
	if !reflect.DeepEqual(got.G.adj, want.G.adj) {
		t.Fatal("G adjacency diverges")
	}
	if !reflect.DeepEqual(got.Gp.adj, want.Gp.adj) {
		t.Fatal("G' adjacency diverges")
	}
	if !reflect.DeepEqual(got.Emb, want.Emb) {
		t.Fatal("embedding diverges")
	}
	if !reflect.DeepEqual(got.unreliable, want.unreliable) {
		t.Fatal("unreliable edge order diverges")
	}
	if !reflect.DeepEqual(got.uAdj, want.uAdj) {
		t.Fatal("unreliable incidence diverges")
	}
	if !reflect.DeepEqual(got.gCSR, want.gCSR) {
		t.Fatal("reliable CSR diverges")
	}
	if !reflect.DeepEqual(got.uCSR, want.uCSR) {
		t.Fatal("unreliable CSR diverges")
	}
}

// TestTrustedMatchesValidatedConstruction is the trusted-path contract: for
// every geometric builder and multiple seeds, the dual the trusted
// constructor produced must (a) pass the full Validate, and (b) be
// structurally identical to re-assembling the same graphs through the
// validated NewDual entry point.
func TestTrustedMatchesValidatedConstruction(t *testing.T) {
	builders := []struct {
		name  string
		build func(seed uint64) (*Dual, error)
	}{
		{"random-geometric-unreliable", func(s uint64) (*Dual, error) {
			return RandomGeometric(120, 6, 5, 1.6, GreyUnreliable, xrand.New(s))
		}},
		{"random-geometric-none", func(s uint64) (*Dual, error) {
			return RandomGeometric(90, 5, 5, 1.5, GreyNone, xrand.New(s))
		}},
		{"random-geometric-reliable", func(s uint64) (*Dual, error) {
			return RandomGeometric(90, 5, 5, 1.5, GreyReliable, xrand.New(s))
		}},
		{"random-geometric-mixed", func(s uint64) (*Dual, error) {
			return RandomGeometric(110, 5, 5, 2.0, GreyMixed, xrand.New(s))
		}},
		{"single-hop-cluster", func(s uint64) (*Dual, error) {
			return SingleHopCluster(40, 1.5, xrand.New(s))
		}},
		{"two-tier-clusters", func(s uint64) (*Dual, error) {
			return TwoTierClusters(4, 12, 1.8, xrand.New(s))
		}},
		{"line", func(s uint64) (*Dual, error) {
			return Line(60, 0.4, 1.5, xrand.New(s))
		}},
		{"grid-lattice", func(s uint64) (*Dual, error) {
			return GridLattice(8, 0.7, 1.5, xrand.New(s))
		}},
		{"ring", func(s uint64) (*Dual, error) {
			return Ring(50, 0.8, 1.9, xrand.New(s))
		}},
		{"random-cluster-tree", func(s uint64) (*Dual, error) {
			return RandomClusterTree(5, 8, 1.8, xrand.New(s))
		}},
	}
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				trusted, err := b.build(seed)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := trusted.Validate(); err != nil {
					t.Fatalf("seed %d: trusted construction fails Validate: %v", seed, err)
				}
				validated, err := NewDual(trusted.G, trusted.Gp, trusted.Emb, trusted.R)
				if err != nil {
					t.Fatalf("seed %d: NewDual on trusted graphs: %v", seed, err)
				}
				dualsStructurallyIdentical(t, trusted, validated)
			}
		})
	}
}

// TestValidateRejectsWhatTrustedAccepts corrupts inputs in each way the
// r-geographic model forbids and shows the split holds: newDualTrusted
// assembles the dual without complaint (it checks nothing), while Validate —
// and therefore NewDual — still rejects it.
func TestValidateRejectsWhatTrustedAccepts(t *testing.T) {
	corruptions := []struct {
		name  string
		build func() (*Graph, *Graph, []geo.Point, float64)
	}{
		{"reliable edge missing from G'", func() (*Graph, *Graph, []geo.Point, float64) {
			g, gp := NewGraph(3), NewGraph(3)
			g.AddEdge(0, 1) // E ⊄ E′
			return g, gp, nil, 1
		}},
		{"vertex count mismatch", func() (*Graph, *Graph, []geo.Point, float64) {
			return NewGraph(3), NewGraph(4), nil, 1
		}},
		{"r below 1", func() (*Graph, *Graph, []geo.Point, float64) {
			return NewGraph(2), NewGraph(2), nil, 0.5
		}},
		{"embedding length mismatch", func() (*Graph, *Graph, []geo.Point, float64) {
			return NewGraph(3), NewGraph(3), []geo.Point{{X: 0, Y: 0}}, 1
		}},
		{"close pair without reliable edge", func() (*Graph, *Graph, []geo.Point, float64) {
			// Condition 1 violation: distance 0.5 ≤ 1 but no edge in G.
			g, gp := NewGraph(2), NewGraph(2)
			return g, gp, []geo.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}}, 1.5
		}},
		{"unreliable edge beyond r", func() (*Graph, *Graph, []geo.Point, float64) {
			// Condition 2 violation: an E′ edge spanning distance 5 > r.
			g, gp := NewGraph(2), NewGraph(2)
			gp.AddEdge(0, 1)
			return g, gp, []geo.Point{{X: 0, Y: 0}, {X: 5, Y: 0}}, 1.5
		}},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			g, gp, emb, r := c.build()
			if _, err := NewDual(g, gp, emb, r); err == nil {
				t.Fatal("NewDual accepted a corrupt input")
			}
			d := newDualTrusted(g, gp, emb, r)
			if d == nil {
				t.Fatal("trusted path refused to assemble (it must not check)")
			}
			if err := d.Validate(); err == nil {
				t.Fatal("Validate passed a corrupt dual the trusted path assembled")
			}
		})
	}
}

// TestBuildFromEmbeddingRejectsSmallR pins that the trusted builders did not
// lose the r ≥ 1 model check NewDual used to supply.
func TestBuildFromEmbeddingRejectsSmallR(t *testing.T) {
	if _, err := RandomGeometric(10, 3, 3, 0.9, GreyUnreliable, xrand.New(1)); err == nil {
		t.Fatal("RandomGeometric accepted r < 1")
	}
}
