//go:build !race

package dualgraph

// raceEnabled reports whether the race detector instruments this test
// binary. See race_on_test.go.
const raceEnabled = false
