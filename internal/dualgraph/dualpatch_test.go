package dualgraph

import (
	"fmt"
	"slices"
	"testing"

	"lbcast/internal/geo"
	"lbcast/internal/xrand"
)

// oracleDual rebuilds the dual a churn script should have produced from
// scratch: brute-force edge discovery over the present pairs under the
// GreyUnreliable policy. It is deliberately independent of both the stencil
// builder and the patch path.
func oracleDual(emb []geo.Point, present []bool, r float64) *Dual {
	n := len(emb)
	g, gp := NewGraph(n), NewGraph(n)
	for u := 0; u < n; u++ {
		if !present[u] {
			continue
		}
		for v := u + 1; v < n; v++ {
			if !present[v] {
				continue
			}
			dist := geo.Dist(emb[u], emb[v])
			switch {
			case dist <= 1:
				g.AddEdge(u, v)
				gp.AddEdge(u, v)
			case dist <= r:
				gp.AddEdge(u, v)
			}
		}
	}
	return newDualTrusted(g, gp, emb, r)
}

// checkDualEquiv compares a patched dual structurally against the oracle
// rebuild: adjacency lists, the canonical unreliable edge list, and both
// flattened CSR forms must be identical, and Validate must accept the
// patched dual.
func checkDualEquiv(t *testing.T, d *Dual, present []bool) {
	t.Helper()
	want := oracleDual(d.Emb, present, d.R)
	for u := 0; u < d.G.N(); u++ {
		if !slices.Equal(d.G.Neighbors(u), want.G.Neighbors(u)) {
			t.Fatalf("G adjacency of %d = %v, want %v", u, d.G.Neighbors(u), want.G.Neighbors(u))
		}
		if !slices.Equal(d.Gp.Neighbors(u), want.Gp.Neighbors(u)) {
			t.Fatalf("G' adjacency of %d = %v, want %v", u, d.Gp.Neighbors(u), want.Gp.Neighbors(u))
		}
		if !present[u] && (d.G.Degree(u) != 0 || d.Gp.Degree(u) != 0) {
			t.Fatalf("absent vertex %d still has edges", u)
		}
		if d.Present(u) != present[u] {
			t.Fatalf("Present(%d) = %v, want %v", u, d.Present(u), present[u])
		}
	}
	if !slices.Equal(d.UnreliableEdges(), want.UnreliableEdges()) {
		t.Fatalf("unreliable edges diverge:\n got %v\nwant %v", d.UnreliableEdges(), want.UnreliableEdges())
	}
	gc, wgc := d.ReliableCSR(), want.ReliableCSR()
	if !slices.Equal(gc.Off, wgc.Off) || !slices.Equal(gc.Targets, wgc.Targets) {
		t.Fatalf("reliable CSR diverges from rebuild")
	}
	uc, wuc := d.UnreliableCSR(), want.UnreliableCSR()
	if !slices.Equal(uc.Off, wuc.Off) || !slices.Equal(uc.Peers, wuc.Peers) || !slices.Equal(uc.Edges, wuc.Edges) {
		t.Fatalf("unreliable CSR diverges from rebuild")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate rejects patched dual: %v", err)
	}
}

// TestPatchNodeRandomChurn runs randomized detach/attach scripts against a
// geometric dual, checking structural equality with a from-scratch rebuild
// and Validate acceptance after every patch — both with the incremental
// spatial index driving neighbor discovery and without it.
func TestPatchNodeRandomChurn(t *testing.T) {
	for _, seed := range []uint64{3, 19, 77} {
		for _, useIdx := range []bool{true, false} {
			t.Run(fmt.Sprintf("seed=%d/idx=%v", seed, useIdx), func(t *testing.T) {
				rng := xrand.New(seed)
				const n = 120
				d, err := RandomGeometric(n, 4, 4, 1.5, GreyUnreliable, rng)
				if err != nil {
					t.Fatal(err)
				}
				var idx *geo.GridIndex
				if useIdx {
					idx = geo.BuildGridIndex(d.Emb)
				}
				present := make([]bool, n)
				for v := range present {
					present[v] = true
				}
				for op := 0; op < 150; op++ {
					if rng.Coin(0.5) {
						// Detach a random present vertex (keep a quorum up).
						if c := countTrue(present); c > n/3 {
							v := rng.Intn(n)
							for !present[v] {
								v = rng.Intn(n)
							}
							if err := d.PatchNode(v, nil, idx, GreyUnreliable); err != nil {
								t.Fatal(err)
							}
							present[v] = false
						}
					} else {
						// Attach a random absent vertex, usually at a fresh
						// position, sometimes back where it was.
						v := -1
						for u := range present {
							if !present[u] {
								v = u
								break
							}
						}
						if v < 0 {
							continue
						}
						p := d.Emb[v]
						if rng.Intn(4) > 0 {
							p = geo.Point{X: rng.Float64() * 4, Y: rng.Float64() * 4}
						}
						if err := d.PatchNode(v, &p, idx, GreyUnreliable); err != nil {
							t.Fatal(err)
						}
						present[v] = true
					}
					checkDualEquiv(t, d, present)
					if idx != nil {
						for u := range present {
							if idx.Contains(u) != present[u] {
								t.Fatalf("spatial index presence of %d diverged", u)
							}
						}
					}
				}
			})
		}
	}
}

// TestPatchNodeRoundTrip pins that detaching a vertex and re-attaching it at
// its original position restores the exact original structure, including the
// flattened CSR contents and unreliable edge numbering.
func TestPatchNodeRoundTrip(t *testing.T) {
	rng := xrand.New(5)
	d, err := RandomGeometric(80, 3, 3, 1.5, GreyUnreliable, rng)
	if err != nil {
		t.Fatal(err)
	}
	idx := geo.BuildGridIndex(d.Emb)
	wantG := d.ReliableCSR()
	wantGOff := append([]int32(nil), wantG.Off...)
	wantGTargets := append([]int32(nil), wantG.Targets...)
	wantU := append([]Edge(nil), d.UnreliableEdges()...)

	for v := 0; v < 80; v += 7 {
		p := d.Emb[v]
		if err := d.PatchNode(v, nil, idx, GreyUnreliable); err != nil {
			t.Fatal(err)
		}
		if err := d.PatchNode(v, &p, idx, GreyUnreliable); err != nil {
			t.Fatal(err)
		}
	}
	gc := d.ReliableCSR()
	if !slices.Equal(gc.Off, wantGOff) || !slices.Equal(gc.Targets, wantGTargets) {
		t.Fatalf("round-trip patching changed the reliable CSR")
	}
	if !slices.Equal(d.UnreliableEdges(), wantU) {
		t.Fatalf("round-trip patching changed the unreliable edge list")
	}
}

// TestPatchNodeErrors pins the misuse contract.
func TestPatchNodeErrors(t *testing.T) {
	rng := xrand.New(1)
	d, err := RandomGeometric(20, 2, 2, 1.5, GreyUnreliable, rng)
	if err != nil {
		t.Fatal(err)
	}
	p := geo.Point{X: 1, Y: 1}
	if err := d.PatchNode(3, &p, nil, GreyUnreliable); err == nil {
		t.Fatalf("attach of a present vertex must fail")
	}
	if err := d.PatchNode(-1, nil, nil, GreyUnreliable); err == nil {
		t.Fatalf("out-of-range vertex must fail")
	}
	if err := d.PatchNode(3, nil, nil, GreyUnreliable); err != nil {
		t.Fatal(err)
	}
	if err := d.PatchNode(3, nil, nil, GreyUnreliable); err == nil {
		t.Fatalf("double detach must fail")
	}
	if err := d.PatchNode(3, &p, nil, GreyMixed); err == nil {
		t.Fatalf("GreyMixed patches must be rejected")
	}
	if err := d.PatchNode(3, &p, nil, GreyUnreliable); err != nil {
		t.Fatal(err)
	}
}

// TestIndexPatchSpeedup is the incremental-maintenance acceptance check: at
// the 10⁴-node sweep point, a single index-assisted PatchNode must beat a
// full RandomGeometric rebuild by at least 10×. The real margin is orders of
// magnitude — a patch touches one grid neighborhood while a rebuild scans
// every cell — so the 10× floor leaves plenty of room for timer noise.
func TestIndexPatchSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁴-node timing comparison")
	}
	const n = 10_000
	d, err := RandomGeometric(n, 50, 50, 1.5, GreyUnreliable, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	idx := geo.BuildGridIndex(d.Emb)

	rebuild := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := RandomGeometric(n, 50, 50, 1.5, GreyUnreliable, xrand.New(7)); err != nil {
				b.Fatal(err)
			}
		}
	})
	patch := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v := (i * 37) % n
			p := d.Emb[v]
			if err := d.PatchNode(v, nil, idx, GreyUnreliable); err != nil {
				b.Fatal(err)
			}
			if err := d.PatchNode(v, &p, idx, GreyUnreliable); err != nil {
				b.Fatal(err)
			}
		}
	})
	rebuildNs := float64(rebuild.NsPerOp())
	patchNs := float64(patch.NsPerOp()) / 2 // round trip = two patches
	// The race detector taxes the patch path's arena-slice copies far more
	// than the rebuild's bulk construction, compressing the measured ratio
	// to ~10–12× on a loaded single-core box, so the floor loosens there.
	floor := 10.0
	if raceEnabled {
		floor = 4.0
	}
	t.Logf("n=%d: rebuild %.0f ns, patch %.0f ns, speedup %.0fx (floor %.0fx)",
		n, rebuildNs, patchNs, rebuildNs/patchNs, floor)
	if rebuildNs < floor*patchNs {
		t.Fatalf("patch not ≥%.0f× faster than rebuild: rebuild %.0f ns vs patch %.0f ns",
			floor, rebuildNs, patchNs)
	}
}

// BenchmarkIndexPatch measures one index-assisted detach+attach round trip
// at the 10⁴-node sweep point — the per-event topology cost the churn layer
// pays for a Leave or Join. The CI regression gate tracks it.
func BenchmarkIndexPatch(b *testing.B) {
	const n = 10_000
	d, err := RandomGeometric(n, 50, 50, 1.5, GreyUnreliable, xrand.New(7))
	if err != nil {
		b.Fatal(err)
	}
	idx := geo.BuildGridIndex(d.Emb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := (i * 37) % n
		p := d.Emb[v]
		if err := d.PatchNode(v, nil, idx, GreyUnreliable); err != nil {
			b.Fatal(err)
		}
		if err := d.PatchNode(v, &p, idx, GreyUnreliable); err != nil {
			b.Fatal(err)
		}
	}
}

func countTrue(s []bool) int {
	n := 0
	for _, b := range s {
		if b {
			n++
		}
	}
	return n
}
