//go:build race

package dualgraph

// raceEnabled reports whether the race detector instruments this test
// binary. Timing-ratio assertions loosen their floors under it: the
// detector taxes the patch path's arena-slice copies far more than the
// rebuild's bulk construction, so the measured ratio says little about
// the uninstrumented code.
const raceEnabled = true
