package dualgraph

import (
	"testing"
	"testing/quick"

	"lbcast/internal/geo"
	"lbcast/internal/xrand"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 1) // duplicate ignored
	g.AddEdge(3, 3) // self-loop ignored

	if g.N() != 5 {
		t.Errorf("N = %d", g.N())
	}
	if g.EdgeCount() != 2 {
		t.Errorf("EdgeCount = %d, want 2", g.EdgeCount())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge(0,1) false")
	}
	if g.HasEdge(0, 2) {
		t.Error("HasEdge(0,2) true")
	}
	if g.HasEdge(3, 3) {
		t.Error("self-loop present")
	}
	if g.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d", g.Degree(1))
	}
	if g.MaxDegreePlusOne() != 3 {
		t.Errorf("MaxDegreePlusOne = %d", g.MaxDegreePlusOne())
	}
}

func TestGraphNeighborsSorted(t *testing.T) {
	g := NewGraph(10)
	for _, v := range []int{7, 3, 9, 1, 5} {
		g.AddEdge(0, v)
	}
	nbrs := g.Neighbors(0)
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i-1] >= nbrs[i] {
			t.Fatalf("neighbors not sorted: %v", nbrs)
		}
	}
}

func TestGraphEdgesRoundTrip(t *testing.T) {
	rng := xrand.New(1)
	g := NewGraph(30)
	for i := 0; i < 100; i++ {
		g.AddEdge(rng.Intn(30), rng.Intn(30))
	}
	edges := g.Edges()
	if len(edges) != g.EdgeCount() {
		t.Fatalf("Edges() returned %d, EdgeCount = %d", len(edges), g.EdgeCount())
	}
	for _, e := range edges {
		if e.U >= e.V {
			t.Fatalf("edge %v not normalised", e)
		}
		if !g.HasEdge(int(e.U), int(e.V)) {
			t.Fatalf("edge %v not in graph", e)
		}
	}
}

func TestGraphClone(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(2, 3)
	if g.HasEdge(2, 3) {
		t.Fatal("Clone shares adjacency storage")
	}
	if !c.HasEdge(0, 1) {
		t.Fatal("Clone dropped an edge")
	}
}

func TestGraphBFSAndDiameter(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	dist := g.BFSDist(0)
	want := []int{0, 1, 2, 3, -1}
	for i, d := range want {
		if dist[i] != d {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], d)
		}
	}
	if _, conn := g.Diameter(); conn {
		t.Error("disconnected graph reported connected")
	}
	g.AddEdge(3, 4)
	diam, conn := g.Diameter()
	if !conn || diam != 4 {
		t.Errorf("Diameter = %d,%v want 4,true", diam, conn)
	}
}

func TestGraphAddEdgePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGraph(2).AddEdge(0, 5)
}

func TestNewDualValidation(t *testing.T) {
	t.Run("reliable edge missing from G'", func(t *testing.T) {
		g, gp := NewGraph(2), NewGraph(2)
		g.AddEdge(0, 1)
		if _, err := NewDual(g, gp, nil, 1); err == nil {
			t.Fatal("want error for E ⊄ E'")
		}
	})
	t.Run("vertex count mismatch", func(t *testing.T) {
		if _, err := NewDual(NewGraph(2), NewGraph(3), nil, 1); err == nil {
			t.Fatal("want error for mismatched vertex counts")
		}
	})
	t.Run("r below 1", func(t *testing.T) {
		if _, err := NewDual(NewGraph(1), NewGraph(1), nil, 0.5); err == nil {
			t.Fatal("want error for r < 1")
		}
	})
	t.Run("geographic condition 1 violated", func(t *testing.T) {
		// Two vertices at distance 0.5 with no reliable edge.
		emb := []geo.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}}
		if _, err := NewDual(NewGraph(2), NewGraph(2), emb, 1); err == nil {
			t.Fatal("want error for close pair without reliable edge")
		}
	})
	t.Run("geographic condition 2 violated", func(t *testing.T) {
		// Unreliable edge spanning distance 5 > r = 2.
		g, gp := NewGraph(2), NewGraph(2)
		gp.AddEdge(0, 1)
		emb := []geo.Point{{X: 0, Y: 0}, {X: 5, Y: 0}}
		if _, err := NewDual(g, gp, emb, 2); err == nil {
			t.Fatal("want error for over-long unreliable edge")
		}
	})
	t.Run("valid dual", func(t *testing.T) {
		g, gp := NewGraph(3), NewGraph(3)
		g.AddEdge(0, 1)
		gp.AddEdge(0, 1)
		gp.AddEdge(1, 2)
		emb := []geo.Point{{X: 0, Y: 0}, {X: 0.8, Y: 0}, {X: 2, Y: 0}}
		d, err := NewDual(g, gp, emb, 1.5)
		if err != nil {
			t.Fatalf("NewDual: %v", err)
		}
		if d.Delta() != 2 || d.DeltaPrime() != 3 {
			t.Errorf("Δ=%d Δ'=%d, want 2, 3", d.Delta(), d.DeltaPrime())
		}
	})
}

func TestUnreliableIndex(t *testing.T) {
	g, gp := NewGraph(4), NewGraph(4)
	g.AddEdge(0, 1)
	gp.AddEdge(0, 1)
	gp.AddEdge(0, 2)
	gp.AddEdge(2, 3)
	d, err := NewDual(g, gp, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	ue := d.UnreliableEdges()
	if len(ue) != 2 {
		t.Fatalf("UnreliableEdges = %v, want 2 edges", ue)
	}
	for _, e := range ue {
		if d.G.HasEdge(int(e.U), int(e.V)) {
			t.Errorf("edge %v is reliable but indexed unreliable", e)
		}
		if !d.Gp.HasEdge(int(e.U), int(e.V)) {
			t.Errorf("edge %v not in G'", e)
		}
	}
	// Incidence must cover each edge from both endpoints.
	counted := 0
	for u := 0; u < d.N(); u++ {
		for _, arc := range d.UnreliableIncidence(u) {
			counted++
			e := ue[arc.EdgeIndex()]
			if int(e.U) != u && int(e.V) != u {
				t.Errorf("incidence of %d points at edge %v", u, e)
			}
			if int(arc.Peer()) == u {
				t.Errorf("incidence of %d lists itself as peer", u)
			}
		}
	}
	if counted != 2*len(ue) {
		t.Errorf("incidence lists %d arcs, want %d", counted, 2*len(ue))
	}
}

func TestRandomGeometricInvariants(t *testing.T) {
	rng := xrand.New(7)
	for _, policy := range []GreyPolicy{GreyUnreliable, GreyNone, GreyReliable, GreyMixed} {
		d, err := RandomGeometric(300, 8, 8, 1.8, policy, rng)
		if err != nil {
			t.Fatalf("policy %d: %v", policy, err)
		}
		if d.N() != 300 {
			t.Fatalf("policy %d: N = %d", policy, d.N())
		}
		if policy == GreyNone || policy == GreyReliable {
			if len(d.UnreliableEdges()) != 0 {
				t.Errorf("policy %d: expected no unreliable edges, got %d", policy, len(d.UnreliableEdges()))
			}
		}
		// Δ ≤ Δ′ always.
		if d.Delta() > d.DeltaPrime() {
			t.Errorf("policy %d: Δ=%d > Δ'=%d", policy, d.Delta(), d.DeltaPrime())
		}
	}
}

func TestLemmaA3DeltaPrimeBound(t *testing.T) {
	// Lemma A.3: Δ′ ≤ c_r·Δ with c_r = c₁r². Use the geo bound with h=1 as
	// the constant witness: any G′ neighborhood fits in the regions within
	// one hop of u's region, each of which is a reliable clique.
	rng := xrand.New(8)
	for _, r := range []float64{1, 1.5, 2} {
		d, err := RandomGeometric(400, 10, 10, r, GreyUnreliable, rng)
		if err != nil {
			t.Fatal(err)
		}
		bound := geo.FBound(r, 1) * float64(d.Delta())
		if float64(d.DeltaPrime()) > bound {
			t.Errorf("r=%v: Δ'=%d exceeds c_r·Δ=%v", r, d.DeltaPrime(), bound)
		}
	}
}

func TestSingleHopCluster(t *testing.T) {
	rng := xrand.New(9)
	d, err := SingleHopCluster(20, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Diameter ≤ 1 disc ⇒ G is a clique ⇒ Δ = n.
	if d.Delta() != 20 {
		t.Errorf("Δ = %d, want 20 (clique)", d.Delta())
	}
	if len(d.UnreliableEdges()) != 0 {
		t.Errorf("single-hop cluster with r=1 has %d unreliable edges", len(d.UnreliableEdges()))
	}
}

func TestTwoTierClusters(t *testing.T) {
	rng := xrand.New(10)
	d, err := TwoTierClusters(4, 6, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 24 {
		t.Fatalf("N = %d", d.N())
	}
	// Every cluster is a reliable clique: Δ ≥ m.
	if d.Delta() < 6 {
		t.Errorf("Δ = %d, want ≥ 6", d.Delta())
	}
	// There must be unreliable inter-cluster edges and no reliable ones.
	if len(d.UnreliableEdges()) == 0 {
		t.Error("no unreliable inter-cluster edges")
	}
	for _, e := range d.G.Edges() {
		if int(e.U)/6 != int(e.V)/6 {
			t.Errorf("reliable edge %v crosses clusters", e)
		}
	}
	for _, e := range d.UnreliableEdges() {
		if int(e.U)/6 == int(e.V)/6 {
			t.Errorf("unreliable edge %v inside a cluster", e)
		}
	}
}

func TestTwoTierClustersRejectsSmallR(t *testing.T) {
	if _, err := TwoTierClusters(2, 2, 1, xrand.New(1)); err == nil {
		t.Fatal("want error for r ≤ 1")
	}
}

func TestLine(t *testing.T) {
	rng := xrand.New(11)
	d, err := Line(10, 1, 1.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Spacing 1: consecutive vertices are reliable neighbors.
	for i := 0; i+1 < 10; i++ {
		if !d.G.HasEdge(i, i+1) {
			t.Errorf("line edge {%d,%d} missing", i, i+1)
		}
	}
	// Distance-2 pairs (gap 2 > r) are unconnected.
	if d.Gp.HasEdge(0, 2) {
		t.Error("line has G' edge at distance 2 > r")
	}
	diam, conn := d.G.Diameter()
	if !conn || diam != 9 {
		t.Errorf("line diameter = %d,%v", diam, conn)
	}
}

func TestGridLattice(t *testing.T) {
	rng := xrand.New(12)
	d, err := GridLattice(5, 1, 1.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 25 {
		t.Fatalf("N = %d", d.N())
	}
	if _, conn := d.G.Diameter(); !conn {
		t.Error("lattice G disconnected at spacing 1")
	}
	// Diagonal pairs at distance √2 ∈ (1, 1.5] must be unreliable.
	if len(d.UnreliableEdges()) == 0 {
		t.Error("lattice has no unreliable diagonals")
	}
}

func TestAbstract(t *testing.T) {
	d, err := Abstract(3, []Edge{{0, 1}}, []Edge{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !d.G.HasEdge(0, 1) || d.G.HasEdge(1, 2) || !d.Gp.HasEdge(1, 2) {
		t.Error("Abstract edge classification wrong")
	}
	if _, err := Abstract(2, []Edge{{0, 1}}, []Edge{{0, 1}}); err == nil {
		t.Fatal("want error for edge in both lists")
	}
}

func TestStarWithDecoys(t *testing.T) {
	d, err := StarWithDecoys(5)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 7 {
		t.Fatalf("N = %d", d.N())
	}
	if !d.G.HasEdge(0, 1) {
		t.Error("receiver–sender reliable edge missing")
	}
	if got := len(d.UnreliableEdges()); got != 5 {
		t.Errorf("unreliable edges = %d, want 5", got)
	}
	for i := 2; i < 7; i++ {
		if !d.Gp.HasEdge(0, i) || d.G.HasEdge(0, i) {
			t.Errorf("decoy %d link to receiver misclassified", i)
		}
	}
}

func TestGeographicPropertyRandom(t *testing.T) {
	// Property: every generated geometric dual graph passes its own
	// r-geographic validation (NewDual re-checks on construction, so a
	// successful build is itself the assertion; here we also re-verify the
	// two conditions directly on a sample).
	rng := xrand.New(13)
	d, err := RandomGeometric(200, 6, 6, 1.5, GreyMixed, rng)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < d.N(); u++ {
		for v := u + 1; v < d.N(); v++ {
			dist := geo.Dist(d.Emb[u], d.Emb[v])
			if dist <= 1 && !d.G.HasEdge(u, v) {
				t.Fatalf("condition 1 violated for %d,%d", u, v)
			}
			if dist > 1.5 && d.Gp.HasEdge(u, v) {
				t.Fatalf("condition 2 violated for %d,%d", u, v)
			}
		}
	}
}

func TestHasEdgeQuick(t *testing.T) {
	// Property: AddEdge(u,v) ⇒ HasEdge(u,v) ∧ HasEdge(v,u); absent edges
	// are reported absent.
	f := func(pairs [][2]uint8) bool {
		g := NewGraph(64)
		added := map[[2]int]bool{}
		for _, p := range pairs {
			u, v := int(p[0]%64), int(p[1]%64)
			g.AddEdge(u, v)
			if u != v {
				if u > v {
					u, v = v, u
				}
				added[[2]int{u, v}] = true
			}
		}
		for u := 0; u < 64; u++ {
			for v := u + 1; v < 64; v++ {
				if g.HasEdge(u, v) != added[[2]int{u, v}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRandomGeometric(b *testing.B) {
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RandomGeometric(1000, 15, 15, 2, GreyUnreliable, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCSRConsistency checks that the flattened CSR forms agree exactly with
// the slice-of-slices adjacency and incidence they mirror.
func TestCSRConsistency(t *testing.T) {
	rng := xrand.New(9)
	d, err := RandomGeometric(300, 8, 8, 1.8, GreyUnreliable, rng)
	if err != nil {
		t.Fatal(err)
	}
	g := d.ReliableCSR()
	if len(g.Off) != d.N()+1 {
		t.Fatalf("reliable CSR has %d offsets for %d vertices", len(g.Off), d.N())
	}
	for u := 0; u < d.N(); u++ {
		nbrs := d.G.Neighbors(u)
		flat := g.Targets[g.Off[u]:g.Off[u+1]]
		if len(flat) != len(nbrs) || g.Degree(u) != len(nbrs) {
			t.Fatalf("node %d: CSR degree %d, adjacency %d", u, len(flat), len(nbrs))
		}
		for i, v := range nbrs {
			if flat[i] != v {
				t.Fatalf("node %d: CSR target %d = %d, want %d", u, i, flat[i], v)
			}
		}
	}
	uc := d.UnreliableCSR()
	if len(uc.Off) != d.N()+1 || len(uc.Peers) != len(uc.Edges) {
		t.Fatalf("unreliable CSR shape: %d offsets, %d peers, %d edges",
			len(uc.Off), len(uc.Peers), len(uc.Edges))
	}
	if len(uc.Peers) != 2*len(d.UnreliableEdges()) {
		t.Fatalf("unreliable CSR has %d arcs for %d edges", len(uc.Peers), len(d.UnreliableEdges()))
	}
	for u := 0; u < d.N(); u++ {
		arcs := d.UnreliableIncidence(u)
		lo, hi := uc.Off[u], uc.Off[u+1]
		if int(hi-lo) != len(arcs) {
			t.Fatalf("node %d: CSR incidence %d, slice incidence %d", u, hi-lo, len(arcs))
		}
		for i, arc := range arcs {
			if uc.Peers[lo+int32(i)] != arc.Peer() || uc.Edges[lo+int32(i)] != arc.EdgeIndex() {
				t.Fatalf("node %d arc %d: CSR (%d,%d), want (%d,%d)", u, i,
					uc.Peers[lo+int32(i)], uc.Edges[lo+int32(i)], arc.Peer(), arc.EdgeIndex())
			}
			e := d.UnreliableEdges()[arc.EdgeIndex()]
			if int32(u) != e.U && int32(u) != e.V {
				t.Fatalf("node %d: arc edge %v does not touch it", u, e)
			}
		}
	}
}

// TestCSREmptyAndSingleton pins the degenerate shapes.
func TestCSREmptyAndSingleton(t *testing.T) {
	for _, n := range []int{0, 1} {
		d, err := Abstract(n, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		g, uc := d.ReliableCSR(), d.UnreliableCSR()
		if len(g.Off) != n+1 || len(uc.Off) != n+1 {
			t.Errorf("n=%d: offsets %d/%d", n, len(g.Off), len(uc.Off))
		}
		if len(g.Targets) != 0 || len(uc.Peers) != 0 {
			t.Errorf("n=%d: nonempty targets", n)
		}
	}
}
