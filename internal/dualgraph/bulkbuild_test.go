package dualgraph

import (
	"reflect"
	"testing"

	"lbcast/internal/geo"
	"lbcast/internal/xrand"
)

// TestNewGraphFromEdgesOracle pins the bulk-build path against the
// sorted-insert path (AddEdge), which stays in the codebase exactly as this
// validation oracle: for random edge multisets — including duplicates and
// self-loops — both constructions must produce identical adjacency.
func TestNewGraphFromEdgesOracle(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 50; trial++ {
		n := 2 + int(rng.Uint64()%40)
		m := int(rng.Uint64() % 200)
		edges := make([]Edge, 0, m)
		for i := 0; i < m; i++ {
			u := int32(rng.Uint64() % uint64(n))
			v := int32(rng.Uint64() % uint64(n))
			edges = append(edges, Edge{U: u, V: v})
			if rng.Coin(0.2) {
				// Exact duplicate, sometimes flipped.
				if rng.Coin(0.5) {
					edges = append(edges, Edge{U: v, V: u})
				} else {
					edges = append(edges, Edge{U: u, V: v})
				}
			}
		}

		oracle := NewGraph(n)
		for _, e := range edges {
			oracle.AddEdge(int(e.U), int(e.V))
		}
		bulk := NewGraphFromEdges(n, edges)

		if oracle.EdgeCount() != bulk.EdgeCount() {
			t.Fatalf("trial %d: edge count %d vs %d", trial, oracle.EdgeCount(), bulk.EdgeCount())
		}
		for u := 0; u < n; u++ {
			a, b := oracle.Neighbors(u), bulk.Neighbors(u)
			if len(a) == 0 && len(b) == 0 {
				continue
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("trial %d node %d: adjacency %v vs %v", trial, u, a, b)
			}
		}
	}
}

func TestNewGraphFromEdgesPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range edge did not panic")
		}
	}()
	NewGraphFromEdges(3, []Edge{{U: 0, V: 3}})
}

func TestNewGraphFromEdgesEmpty(t *testing.T) {
	g := NewGraphFromEdges(4, nil)
	if g.N() != 4 || g.EdgeCount() != 0 {
		t.Errorf("empty bulk build: n=%d edges=%d", g.N(), g.EdgeCount())
	}
	// Self-loops alone must leave the graph empty.
	g = NewGraphFromEdges(4, []Edge{{U: 1, V: 1}, {U: 2, V: 2}})
	if g.EdgeCount() != 0 {
		t.Errorf("self-loops produced %d edges", g.EdgeCount())
	}
}

// TestBuildersUnchangedByBulkPath pins that switching buildFromEmbedding to
// the bulk path left every builder's output graph identical: the geometric
// families must match a direct all-pairs reconstruction from the embedding.
func TestBuildersUnchangedByBulkPath(t *testing.T) {
	d, err := RandomGeometric(120, 5, 5, 1.5, GreyUnreliable, xrand.New(99))
	if err != nil {
		t.Fatal(err)
	}
	n := d.N()
	g, gp := NewGraph(n), NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dist := distOf(d, u, v)
			switch {
			case dist <= 1:
				g.AddEdge(u, v)
				gp.AddEdge(u, v)
			case dist <= d.R:
				gp.AddEdge(u, v)
			}
		}
	}
	for u := 0; u < n; u++ {
		if !reflect.DeepEqual(nonNil(d.G.Neighbors(u)), nonNil(g.Neighbors(u))) {
			t.Fatalf("G adjacency of %d diverged: %v vs %v", u, d.G.Neighbors(u), g.Neighbors(u))
		}
		if !reflect.DeepEqual(nonNil(d.Gp.Neighbors(u)), nonNil(gp.Neighbors(u))) {
			t.Fatalf("G' adjacency of %d diverged: %v vs %v", u, d.Gp.Neighbors(u), gp.Neighbors(u))
		}
	}
}

func distOf(d *Dual, u, v int) float64 {
	return geo.Dist(d.Emb[u], d.Emb[v])
}

func nonNil(s []int32) []int32 {
	if s == nil {
		return []int32{}
	}
	return s
}
