package dualgraph

import (
	"fmt"
	"math"

	"lbcast/internal/geo"
	"lbcast/internal/xrand"
)

// Ring places n vertices evenly on a circle whose circumference gives the
// requested spacing between neighbors. Spacing ≤ 1 yields a reliable cycle;
// second-neighbor chords fall in the grey zone for suitable r.
func Ring(n int, spacing, r float64, rng *xrand.Source) (*Dual, error) {
	if n < 3 || spacing <= 0 {
		return nil, fmt.Errorf("dualgraph: invalid ring n=%d spacing=%v", n, spacing)
	}
	// Shrink by epsilon so that chords at exactly the threshold distance do
	// not land infinitesimally above it under floating-point trigonometry.
	radius := spacing / (2 * math.Sin(math.Pi/float64(n))) * (1 - 1e-9)
	emb := make([]geo.Point, n)
	for i := range emb {
		theta := 2 * math.Pi * float64(i) / float64(n)
		emb[i] = geo.Point{X: radius * math.Cos(theta), Y: radius * math.Sin(theta)}
	}
	return buildFromEmbedding(emb, r, GreyUnreliable, rng)
}

// RandomClusterTree builds a tree of single-hop clusters: cluster 0 is the
// root; every other cluster attaches to a uniformly random earlier cluster
// with a grey-zone gap, so the inter-cluster topology is a random tree whose
// edges are all unreliable. This is the hierarchical stress shape for
// multi-hop experiments: reliable islands, adversarial trunks.
func RandomClusterTree(clusters, perCluster int, r float64, rng *xrand.Source) (*Dual, error) {
	if clusters <= 0 || perCluster <= 0 {
		return nil, fmt.Errorf("dualgraph: invalid tree shape %dx%d", clusters, perCluster)
	}
	if r <= 1 {
		return nil, fmt.Errorf("dualgraph: RandomClusterTree needs r > 1, got %v", r)
	}
	rho := math.Min(0.25, (r-1)/8)
	gap := 1 + 3*rho // centre spacing: gaps in (1, r]

	centres := make([]geo.Point, clusters)
	for c := 1; c < clusters; c++ {
		parent := rng.Intn(c)
		// Place around the parent at angle θ; retry until the new centre
		// keeps distance ≥ gap from every existing centre so no unintended
		// reliable contact forms.
		placed := false
		for attempt := 0; attempt < 200 && !placed; attempt++ {
			theta := rng.Float64() * 2 * math.Pi
			cand := geo.Point{
				X: centres[parent].X + gap*math.Cos(theta),
				Y: centres[parent].Y + gap*math.Sin(theta),
			}
			ok := true
			for prev := 0; prev < c; prev++ {
				d := geo.Dist(cand, centres[prev])
				if prev == parent {
					continue
				}
				// Other clusters must stay out of the grey zone entirely so
				// the inter-cluster graph stays a tree.
				if d <= r+2*rho {
					ok = false
					break
				}
			}
			if ok {
				centres[c] = cand
				placed = true
			}
		}
		if !placed {
			return nil, fmt.Errorf("dualgraph: could not place cluster %d without contact", c)
		}
	}

	emb := make([]geo.Point, 0, clusters*perCluster)
	for c := 0; c < clusters; c++ {
		for i := 0; i < perCluster; i++ {
			for {
				x, y := (rng.Float64()-0.5)*2*rho, (rng.Float64()-0.5)*2*rho
				if x*x+y*y <= rho*rho {
					emb = append(emb, geo.Point{X: centres[c].X + x, Y: centres[c].Y + y})
					break
				}
			}
		}
	}
	return buildFromEmbedding(emb, r, GreyUnreliable, rng)
}

// ConnectedComponents returns the vertex sets of g's connected components,
// ordered by smallest contained vertex.
func (g *Graph) ConnectedComponents() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for start := 0; start < g.n; start++ {
		if seen[start] {
			continue
		}
		var comp []int
		queue := []int{start}
		seen[start] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, int(v))
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// DegreeHistogram returns counts of vertices per degree.
func (g *Graph) DegreeHistogram() map[int]int {
	out := make(map[int]int)
	for u := 0; u < g.n; u++ {
		out[len(g.adj[u])]++
	}
	return out
}
