package dualgraph

import (
	"testing"

	"lbcast/internal/xrand"
)

func TestRing(t *testing.T) {
	rng := xrand.New(1)
	d, err := Ring(12, 1, 1.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 12 {
		t.Fatalf("N = %d", d.N())
	}
	// Adjacent ring vertices (spacing 1) must be reliable neighbors.
	for i := 0; i < 12; i++ {
		if !d.G.HasEdge(i, (i+1)%12) {
			t.Errorf("ring edge {%d,%d} missing", i, (i+1)%12)
		}
	}
	// The reliable graph must be connected with diameter ≈ n/2 hops or less.
	if _, conn := d.G.Diameter(); !conn {
		t.Error("ring disconnected")
	}
}

func TestRingRejectsDegenerate(t *testing.T) {
	rng := xrand.New(2)
	if _, err := Ring(2, 1, 1, rng); err == nil {
		t.Error("n=2 accepted")
	}
	if _, err := Ring(5, 0, 1, rng); err == nil {
		t.Error("spacing=0 accepted")
	}
}

func TestRandomClusterTree(t *testing.T) {
	rng := xrand.New(3)
	d, err := RandomClusterTree(5, 4, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 20 {
		t.Fatalf("N = %d", d.N())
	}
	// Reliable edges stay within clusters.
	for _, e := range d.G.Edges() {
		if int(e.U)/4 != int(e.V)/4 {
			t.Errorf("reliable edge %v crosses clusters", e)
		}
	}
	// The inter-cluster (unreliable) topology must form a connected tree
	// over clusters: exactly clusters-1 distinct cluster pairs.
	pairs := map[[2]int]bool{}
	for _, e := range d.UnreliableEdges() {
		cu, cv := int(e.U)/4, int(e.V)/4
		if cu == cv {
			t.Errorf("unreliable edge %v inside a cluster", e)
		}
		if cu > cv {
			cu, cv = cv, cu
		}
		pairs[[2]int{cu, cv}] = true
	}
	if len(pairs) != 4 {
		t.Errorf("inter-cluster pairs = %d, want 4 (a tree over 5 clusters)", len(pairs))
	}
	// G′ must be connected; G must have exactly 5 components (the clusters).
	if comps := d.Gp.ConnectedComponents(); len(comps) != 1 {
		t.Errorf("G' has %d components", len(comps))
	}
	if comps := d.G.ConnectedComponents(); len(comps) != 5 {
		t.Errorf("G has %d components, want 5", len(comps))
	}
}

func TestRandomClusterTreeRejects(t *testing.T) {
	rng := xrand.New(4)
	if _, err := RandomClusterTree(0, 2, 2, rng); err == nil {
		t.Error("0 clusters accepted")
	}
	if _, err := RandomClusterTree(2, 2, 1, rng); err == nil {
		t.Error("r=1 accepted")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := NewGraph(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Errorf("first component = %v", comps[0])
	}
	if len(comps[1]) != 1 || comps[1][0] != 3 {
		t.Errorf("second component = %v", comps[1])
	}
	if len(comps[2]) != 2 {
		t.Errorf("third component = %v", comps[2])
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	hist := g.DegreeHistogram()
	if hist[2] != 1 || hist[1] != 2 || hist[0] != 1 {
		t.Errorf("histogram = %v", hist)
	}
}
