package geo

import (
	"math"
	"slices"
	"testing"

	"lbcast/internal/xrand"
)

// randomEmbedding scatters n points over a side×side square.
func randomEmbedding(n int, side float64, rng *xrand.Source) []Point {
	emb := make([]Point, n)
	for i := range emb {
		emb[i] = Point{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	return emb
}

// checkGridMatchesRegionIndex asserts the GridIndex agrees with the map-based
// oracle on every region and vertex.
func checkGridMatchesRegionIndex(t *testing.T, emb []Point) {
	t.Helper()
	gi := BuildGridIndex(emb)
	oracle := BuildRegionIndex(emb)
	if gi.NumVertices() != len(emb) {
		t.Fatalf("NumVertices = %d, want %d", gi.NumVertices(), len(emb))
	}
	if gi.Len() != len(oracle.Members) {
		t.Fatalf("region count = %d, want %d", gi.Len(), len(oracle.Members))
	}
	oracleIDs := oracle.Regions() // sorted (I, J)
	if !slices.Equal(gi.Regions(), oracleIDs) {
		t.Fatalf("region keys diverge:\n got %v\nwant %v", gi.Regions(), oracleIDs)
	}
	for ri, id := range gi.Regions() {
		if got, ok := gi.IndexOf(id); !ok || got != ri {
			t.Fatalf("IndexOf(%v) = (%d, %v), want (%d, true)", id, got, ok, ri)
		}
		if got, want := gi.MembersAt(ri), oracle.Members[id]; !equalInt32Int(got, want) {
			t.Fatalf("region %v members = %v, want %v", id, got, want)
		}
		if got := gi.Members(id); !slices.Equal(got, gi.MembersAt(ri)) {
			t.Fatalf("Members(%v) = %v, want %v", id, got, gi.MembersAt(ri))
		}
	}
	for v := range emb {
		if got, want := gi.RegionOfVertex(v), oracle.Of[v]; got != want {
			t.Fatalf("vertex %d in region %v, want %v", v, got, want)
		}
		if gi.RegionAt(gi.OfVertex(v)) != oracle.Of[v] {
			t.Fatalf("OfVertex(%d) points at %v, want %v", v, gi.RegionAt(gi.OfVertex(v)), oracle.Of[v])
		}
	}
	// Unoccupied lookups miss in both modes.
	_, minJ, _, _ := gi.Bounds()
	if _, ok := gi.IndexOf(RegionID{I: math.MaxInt32 / 2, J: minJ}); ok {
		t.Fatal("IndexOf reported a far-away region as occupied")
	}
	if m := gi.Members(RegionID{I: math.MaxInt32 / 2, J: minJ}); m != nil {
		t.Fatalf("Members of unoccupied region = %v, want nil", m)
	}
}

func equalInt32Int(a []int32, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if int(a[i]) != b[i] {
			return false
		}
	}
	return true
}

func TestGridIndexMatchesRegionIndex(t *testing.T) {
	rng := xrand.New(7)
	for seed := 0; seed < 8; seed++ {
		checkGridMatchesRegionIndex(t, randomEmbedding(200+seed*50, 9, rng))
	}
	// Negative coordinates and co-located points.
	emb := []Point{{-3.2, 4.1}, {-3.2, 4.1}, {0, 0}, {0.49, 0.49}, {-0.01, -0.01}, {7, -7}}
	checkGridMatchesRegionIndex(t, emb)
}

func TestGridIndexSparseFallback(t *testing.T) {
	// A few points spread over a huge area force the sparse (binary-search)
	// layout; behaviour must match the oracle exactly.
	rng := xrand.New(8)
	emb := randomEmbedding(40, 1e5, rng)
	gi := BuildGridIndex(emb)
	if gi.Dense() {
		t.Fatal("expected sparse mode for a 2·10⁵-cell-per-side bounding box over 40 points")
	}
	checkGridMatchesRegionIndex(t, emb)

	dense := BuildGridIndex(randomEmbedding(400, 8, rng))
	if !dense.Dense() {
		t.Fatal("expected dense mode for a compact embedding")
	}
}

func TestGridIndexEmpty(t *testing.T) {
	gi := BuildGridIndex(nil)
	if gi.Len() != 0 || gi.NumVertices() != 0 {
		t.Fatalf("empty index: regions=%d vertices=%d", gi.Len(), gi.NumVertices())
	}
	if _, ok := gi.IndexOf(RegionID{}); ok {
		t.Fatal("empty index reports region (0,0) occupied")
	}
	if got := gi.Regions(); len(got) != 0 {
		t.Fatalf("empty index has regions %v", got)
	}
}

// TestRegionIterationOrderDeterministic pins the satellite fix: both the
// dense index and the (previously map-ordered) RegionIndex iterate regions
// in sorted (I, J) order, identically across rebuilds.
func TestRegionIterationOrderDeterministic(t *testing.T) {
	rng := xrand.New(9)
	emb := randomEmbedding(500, 11, rng)
	wantSorted := func(ids []RegionID) {
		t.Helper()
		if !slices.IsSortedFunc(ids, compareRegionIDs) {
			t.Fatalf("regions not in sorted (I, J) order: %v", ids)
		}
	}
	gi := BuildGridIndex(emb)
	wantSorted(gi.Regions())
	first := BuildRegionIndex(emb).Regions()
	wantSorted(first)
	for trial := 0; trial < 5; trial++ {
		if got := BuildRegionIndex(emb).Regions(); !slices.Equal(got, first) {
			t.Fatalf("RegionIndex.Regions order changed across rebuilds:\n got %v\nwant %v", got, first)
		}
	}
	if !slices.Equal(gi.Regions(), first) {
		t.Fatal("GridIndex and RegionIndex disagree on region order")
	}
}

// TestNeighborStencil pins the stencil against its definition: exactly the
// offsets whose regions lie within distance r, in (DI, DJ) lexicographic
// order — the order the old square-window scans visited cells in.
func TestNeighborStencil(t *testing.T) {
	for _, r := range []float64{0, 1, 1.5, 2, 3.3} {
		got := NeighborStencil(r)
		w := int32(math.Ceil(r/RegionSide)) + 2 // strictly wider than any candidate
		var want []CellOffset
		for di := -w; di <= w; di++ {
			for dj := -w; dj <= w; dj++ {
				if RegionDist(RegionID{}, RegionID{I: di, J: dj}) <= r {
					want = append(want, CellOffset{DI: di, DJ: dj})
				}
			}
		}
		if !slices.Equal(got, want) {
			t.Fatalf("r=%v: stencil = %v, want %v", r, got, want)
		}
	}
	if got := NeighborStencil(-1); got != nil {
		t.Fatalf("negative radius stencil = %v, want nil", got)
	}
	// The stencil must be a strict subset of the square window for r where
	// corners fall out (r=1.5: window 4 → 81 cells, stencil drops corners).
	if st, window := len(NeighborStencil(1.5)), 9*9; st >= window {
		t.Fatalf("stencil has %d cells, want fewer than the %d-cell square window", st, window)
	}
}

// TestGridIndexPairCoverage: scanning stencil neighborhoods from every vertex
// must visit every pair within distance r at least once (both directions are
// scanned, callers dedupe with v > u).
func TestGridIndexPairCoverage(t *testing.T) {
	rng := xrand.New(10)
	emb := randomEmbedding(150, 5, rng)
	const r = 1.5
	gi := BuildGridIndex(emb)
	st := NeighborStencil(r)
	seen := make(map[[2]int]bool)
	for u := range emb {
		ru := gi.RegionOfVertex(u)
		for _, o := range st {
			ri, ok := gi.IndexOf(RegionID{I: ru.I + o.DI, J: ru.J + o.DJ})
			if !ok {
				continue
			}
			for _, v := range gi.MembersAt(ri) {
				if int(v) > u {
					seen[[2]int{u, int(v)}] = true
				}
			}
		}
	}
	for u := range emb {
		for v := u + 1; v < len(emb); v++ {
			if Dist(emb[u], emb[v]) <= r && !seen[[2]int{u, v}] {
				t.Fatalf("pair (%d,%d) at distance %v ≤ %v not visited",
					u, v, Dist(emb[u], emb[v]), r)
			}
		}
	}
}

// TestVisitNearMatchesManualScan pins the shared iterator against the raw
// stencil loop its hot-path callers inline: same vertices, same order.
func TestVisitNearMatchesManualScan(t *testing.T) {
	emb := randomEmbedding(200, 6, xrand.New(11))
	gi := BuildGridIndex(emb)
	st := NeighborStencil(1.5)
	for u := range emb {
		var manual, shared []int32
		ru := gi.RegionOfVertex(u)
		for _, o := range st {
			if ri, ok := gi.IndexOf(RegionID{I: ru.I + o.DI, J: ru.J + o.DJ}); ok {
				manual = append(manual, gi.MembersAt(ri)...)
			}
		}
		gi.VisitNear(u, st, func(v int32) { shared = append(shared, v) })
		if !slices.Equal(manual, shared) {
			t.Fatalf("vertex %d: VisitNear order %v, manual scan %v", u, shared, manual)
		}
	}
}

func BenchmarkBuildGridIndex(b *testing.B) {
	emb := randomEmbedding(100000, 158, xrand.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildGridIndex(emb)
	}
}
