package geo

import (
	"fmt"
	"math"
)

// Point is a position in the Euclidean plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func Dist(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// RegionSide is the side length of the grid squares used by the fixed
// partition R. The paper (proof of Lemma A.1) uses squares of side ½ so
// that every region has diameter at most 1 — any two points in the same
// region are reliable neighbors.
const RegionSide = 0.5

// RegionID identifies one square of the grid partition by its integer grid
// coordinates: region (i, j) covers [i·side, (i+1)·side) × [j·side, (j+1)·side).
type RegionID struct {
	I, J int32
}

// String implements fmt.Stringer.
func (r RegionID) String() string { return fmt.Sprintf("R(%d,%d)", r.I, r.J) }

// RegionOf returns the ID of the grid region containing p.
//
// The paper makes each square half-open so the squares form a true
// partition; floor-based indexing gives exactly that.
func RegionOf(p Point) RegionID {
	return RegionID{
		I: int32(math.Floor(p.X / RegionSide)),
		J: int32(math.Floor(p.Y / RegionSide)),
	}
}

// regionRect returns the closed bounding box of a region. For distance
// computations the closure is the right object: the infimum distance
// between two half-open squares equals the distance between their closures.
func regionRect(id RegionID) (x0, y0, x1, y1 float64) {
	x0 = float64(id.I) * RegionSide
	y0 = float64(id.J) * RegionSide
	return x0, y0, x0 + RegionSide, y0 + RegionSide
}

// RegionDist returns the minimum Euclidean distance between (the closures
// of) two grid regions. It is 0 for identical or touching regions.
func RegionDist(a, b RegionID) float64 {
	ax0, ay0, ax1, ay1 := regionRect(a)
	bx0, by0, bx1, by1 := regionRect(b)
	dx := intervalGap(ax0, ax1, bx0, bx1)
	dy := intervalGap(ay0, ay1, by0, by1)
	return math.Sqrt(dx*dx + dy*dy)
}

// intervalGap returns the gap between intervals [a0,a1] and [b0,b1], or 0
// if they overlap.
func intervalGap(a0, a1, b0, b1 float64) float64 {
	switch {
	case a1 < b0:
		return b0 - a1
	case b1 < a0:
		return a0 - b1
	default:
		return 0
	}
}

// RegionDiameterOK reports whether every pair of points inside one region is
// within distance 1, i.e. the first f-boundedness condition. For a square of
// side ½ the diameter is √2/2 ≈ 0.707, so this always holds; the function
// exists so tests can assert the invariant rather than assume it.
func RegionDiameterOK() bool {
	diag := RegionSide * math.Sqrt2
	return diag <= 1
}
