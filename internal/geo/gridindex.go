package geo

import (
	"math"
	"slices"

	"lbcast/internal/par"
)

// GridIndex is the dense spatial index over an embedding's grid regions: the
// CSR replacement for the map-based RegionIndex. Occupied regions are kept as
// sorted keys — (I, J) lexicographic — with a region→members layout in
// compressed-sparse-row form, so every consumer (dual graph construction,
// r-geographic validation, SINR interference resolution) shares one O(1)
// vertex→region lookup and one deterministic region iteration order.
//
// When the embedding's bounding box is small relative to n — every geometric
// topology family in this repo — a dense cell table maps grid coordinates to
// region indices in O(1). Pathologically spread embeddings (e.g. large rings,
// adversarial placements) fall back to binary search over the sorted keys;
// Dense reports which mode is active so hot paths can pick their strategy.
type GridIndex struct {
	minI, minJ int32
	nI, nJ     int32

	ids     []RegionID // occupied regions, sorted by (I, J)
	off     []int32    // CSR offsets into members, len(ids)+1
	members []int32    // vertex indices grouped by region, ascending within each
	of      []int32    // vertex → index into ids
	cells   []int32    // dense cell → region index (-1 empty); nil in sparse mode
}

// denseCellFactor bounds the dense table at a small multiple of the vertex
// count: a bounding box with more cells than that is mostly empty space and
// binary search over the occupied keys is the better trade.
const denseCellFactor = 8

// BuildGridIndex assigns each embedded vertex to its grid region and builds
// the CSR layout. Members of each region are listed in ascending vertex
// order, matching the insertion order of the map-based index so pair-scan
// orders (and with them RNG coin sequences in the builders) are preserved.
func BuildGridIndex(emb []Point) *GridIndex { return BuildGridIndexWorkers(emb, 1) }

// parallelKeysMinVertices is the vertex count below which sharding the
// region-key pass cannot recoup the fork-join overhead.
const parallelKeysMinVertices = 1 << 14

// BuildGridIndexWorkers is BuildGridIndex with the region-key derivation
// pass — per-vertex RegionOf plus the bounding-box reduction, the only
// superlinear-constant part of the build — sharded over the given number of
// workers. Each worker covers a contiguous vertex range and reduces private
// bounds; the merge is a min/max fold in worker order, so the index is
// structurally identical to the sequential build for any worker count
// (gridindex_test.go pins this). The counting-sort layout passes stay
// sequential: they are O(n) with two cache-friendly sweeps, and a
// deterministic parallel scatter would need per-worker cell tables dwarfing
// the work saved.
func BuildGridIndexWorkers(emb []Point, workers int) *GridIndex {
	n := len(emb)
	gi := &GridIndex{of: make([]int32, n)}
	if n == 0 {
		gi.off = []int32{0}
		return gi
	}
	keys := make([]RegionID, n)
	minI, minJ := int32(math.MaxInt32), int32(math.MaxInt32)
	maxI, maxJ := int32(math.MinInt32), int32(math.MinInt32)
	if workers > 1 && n >= parallelKeysMinVertices {
		type bounds struct{ minI, minJ, maxI, maxJ int32 }
		shard := make([]bounds, workers)
		par.Ranges(n, workers, func(w, lo, hi int) {
			b := bounds{math.MaxInt32, math.MaxInt32, math.MinInt32, math.MinInt32}
			for v := lo; v < hi; v++ {
				id := RegionOf(emb[v])
				keys[v] = id
				b.minI, b.maxI = min(b.minI, id.I), max(b.maxI, id.I)
				b.minJ, b.maxJ = min(b.minJ, id.J), max(b.maxJ, id.J)
			}
			shard[w] = b
		})
		for _, b := range shard {
			if b.minI == math.MaxInt32 {
				continue // worker had no range
			}
			minI, maxI = min(minI, b.minI), max(maxI, b.maxI)
			minJ, maxJ = min(minJ, b.minJ), max(maxJ, b.maxJ)
		}
	} else {
		for v, p := range emb {
			id := RegionOf(p)
			keys[v] = id
			minI, maxI = min(minI, id.I), max(maxI, id.I)
			minJ, maxJ = min(minJ, id.J), max(maxJ, id.J)
		}
	}
	gi.minI, gi.minJ = minI, minJ
	gi.nI, gi.nJ = maxI-minI+1, maxJ-minJ+1
	area := int64(gi.nI) * int64(gi.nJ)
	if area <= max(1024, denseCellFactor*int64(n)) {
		gi.buildDense(keys, int(area))
	} else {
		gi.buildSparse(keys)
	}
	return gi
}

// buildDense lays the index out via a counting sort over the dense cell
// table: O(n + area) with one pass per step, members ascending by
// construction, region keys sorted because cells are scanned I-major.
func (gi *GridIndex) buildDense(keys []RegionID, area int) {
	counts := make([]int32, area)
	cell := make([]int32, len(keys))
	for v, id := range keys {
		c := (id.I-gi.minI)*gi.nJ + (id.J - gi.minJ)
		cell[v] = c
		counts[c]++
	}
	occupied := 0
	for _, c := range counts {
		if c > 0 {
			occupied++
		}
	}
	gi.ids = make([]RegionID, 0, occupied)
	gi.off = make([]int32, 1, occupied+1)
	gi.cells = make([]int32, area)
	// Walk cells in index order (I-major, J-minor — exactly (I, J)
	// lexicographic): assign region indices and CSR offsets; counts[c]
	// becomes the running fill cursor for cell c's member range.
	total := int32(0)
	for c := range counts {
		if counts[c] == 0 {
			gi.cells[c] = -1
			continue
		}
		gi.cells[c] = int32(len(gi.ids))
		gi.ids = append(gi.ids, RegionID{
			I: gi.minI + int32(c)/gi.nJ,
			J: gi.minJ + int32(c)%gi.nJ,
		})
		start := total
		total += counts[c]
		gi.off = append(gi.off, total)
		counts[c] = start
	}
	gi.members = make([]int32, total)
	for v := range keys {
		c := cell[v]
		gi.of[v] = gi.cells[c]
		gi.members[counts[c]] = int32(v)
		counts[c]++
	}
}

// buildSparse sorts (key, vertex) pairs instead of allocating the cell
// table: O(n log n), used when the bounding box dwarfs the vertex count.
func (gi *GridIndex) buildSparse(keys []RegionID) {
	order := make([]int32, len(keys))
	for v := range order {
		order[v] = int32(v)
	}
	slices.SortFunc(order, func(a, b int32) int {
		if c := compareRegionIDs(keys[a], keys[b]); c != 0 {
			return c
		}
		return int(a - b) // stable within a region: members stay ascending
	})
	gi.members = order
	gi.off = append(gi.off, 0)
	for i, v := range order {
		k := keys[v]
		if len(gi.ids) == 0 || gi.ids[len(gi.ids)-1] != k {
			if len(gi.ids) > 0 {
				gi.off = append(gi.off, int32(i))
			}
			gi.ids = append(gi.ids, k)
		}
		gi.of[v] = int32(len(gi.ids) - 1)
	}
	gi.off = append(gi.off, int32(len(order)))
}

// compareRegionIDs orders region keys (I, J) lexicographic — the iteration
// order every GridIndex consumer observes.
func compareRegionIDs(a, b RegionID) int {
	if a.I != b.I {
		if a.I < b.I {
			return -1
		}
		return 1
	}
	switch {
	case a.J < b.J:
		return -1
	case a.J > b.J:
		return 1
	default:
		return 0
	}
}

// Len returns the number of occupied regions.
func (gi *GridIndex) Len() int { return len(gi.ids) }

// NumVertices returns the number of indexed vertices.
func (gi *GridIndex) NumVertices() int { return len(gi.of) }

// Dense reports whether the O(1) cell table is active (false: lookups binary
// search the sorted keys).
func (gi *GridIndex) Dense() bool { return gi.cells != nil }

// Bounds returns the bounding box of the occupied regions in grid
// coordinates: the minimum region coordinates and the number of cells per
// axis (zero for an empty index).
func (gi *GridIndex) Bounds() (minI, minJ, nI, nJ int32) {
	return gi.minI, gi.minJ, gi.nI, gi.nJ
}

// Regions returns the occupied region IDs in sorted (I, J) order. The
// returned slice must not be modified.
func (gi *GridIndex) Regions() []RegionID { return gi.ids }

// RegionAt returns the region key at the given region index.
func (gi *GridIndex) RegionAt(ri int) RegionID { return gi.ids[ri] }

// IndexOf returns the region index of the given key and whether the region
// is occupied. O(1) in dense mode, O(log regions) in sparse mode.
func (gi *GridIndex) IndexOf(id RegionID) (int, bool) {
	if gi.cells != nil {
		i, j := id.I-gi.minI, id.J-gi.minJ
		if i < 0 || i >= gi.nI || j < 0 || j >= gi.nJ {
			return -1, false
		}
		ri := gi.cells[i*gi.nJ+j]
		return int(ri), ri >= 0
	}
	ri, ok := slices.BinarySearchFunc(gi.ids, id, compareRegionIDs)
	if !ok {
		return -1, false
	}
	return ri, true
}

// MembersAt returns the vertices of the region at the given region index, in
// ascending vertex order. The returned slice must not be modified.
func (gi *GridIndex) MembersAt(ri int) []int32 {
	return gi.members[gi.off[ri]:gi.off[ri+1]]
}

// Members returns the vertices of the region with the given key (nil when
// unoccupied), in ascending vertex order.
func (gi *GridIndex) Members(id RegionID) []int32 {
	ri, ok := gi.IndexOf(id)
	if !ok {
		return nil
	}
	return gi.MembersAt(ri)
}

// OfVertex returns the region index of vertex v.
func (gi *GridIndex) OfVertex(v int) int { return int(gi.of[v]) }

// VisitNear applies fn to every vertex in the stencil neighborhood of
// vertex u (u itself included), in stencil-then-ascending-member order —
// the canonical pair-scan order consumers rely on for deterministic RNG
// coin sequences. Hot paths that cannot afford the indirect call (the dual
// graph builder's innermost loop) inline the same traversal; this is the
// shared form for everything else.
func (gi *GridIndex) VisitNear(u int, stencil []CellOffset, fn func(v int32)) {
	center := gi.RegionOfVertex(u)
	for _, o := range stencil {
		ri, ok := gi.IndexOf(RegionID{I: center.I + o.DI, J: center.J + o.DJ})
		if !ok {
			continue
		}
		for _, v := range gi.members[gi.off[ri]:gi.off[ri+1]] {
			fn(v)
		}
	}
}

// RegionOfVertex returns the region key of vertex v.
func (gi *GridIndex) RegionOfVertex(v int) RegionID { return gi.ids[gi.of[v]] }

// CellOffset is one entry of a neighbor-region stencil: the grid-coordinate
// displacement from a center region.
type CellOffset struct {
	DI, DJ int32
}

// NeighborStencil precomputes the region displacements within distance r:
// exactly the offsets o with RegionDist(c, c+o) ≤ r for any region c,
// including the zero offset. Any pair of points within Euclidean distance r
// lies in regions related by a stencil offset (RegionDist lower-bounds point
// distance), so scanning the stencil visits every candidate pair while
// skipping the corner cells a square window would waste lookups on.
//
// Offsets are sorted (DI, DJ) lexicographic — the same order as the square
// di/dj window scans the stencil replaces, so pair visit orders (and the
// builders' RNG coin sequences) are unchanged.
func NeighborStencil(r float64) []CellOffset {
	if r < 0 {
		return nil
	}
	// RegionDist between cells offset by (di, dj) is
	// side·hypot(max(|di|−1,0), max(|dj|−1,0)), so |di| ≤ r/side + 1.
	w := int32(math.Floor(r/RegionSide)) + 1
	out := make([]CellOffset, 0, (2*w+1)*(2*w+1))
	for di := -w; di <= w; di++ {
		for dj := -w; dj <= w; dj++ {
			if RegionDist(RegionID{}, RegionID{I: di, J: dj}) <= r {
				out = append(out, CellOffset{DI: di, DJ: dj})
			}
		}
	}
	return out
}

// sortRegionIDs orders region keys in the canonical (I, J) order shared by
// GridIndex.Regions and RegionIndex.Regions.
func sortRegionIDs(ids []RegionID) {
	slices.SortFunc(ids, compareRegionIDs)
}
