// Package geo provides the Euclidean-plane machinery from Appendix A of the
// paper: vertex embeddings, the fixed grid partition of the plane into
// convex regions of diameter at most 1, and the region graph G_{R,r} whose
// f-boundedness (Lemma A.1/A.2) underpins the seed agreement analysis.
package geo
