// Package geo provides the Euclidean-plane machinery from Appendix A of the
// paper: vertex embeddings, the fixed grid partition of the plane into
// convex regions of diameter at most 1, and the region graph G_{R,r} whose
// f-boundedness (Lemma A.1/A.2) underpins the seed agreement analysis.
//
// GridIndex is the dense/CSR spatial index over the grid partition shared
// by dual graph construction, r-geographic validation and the SINR
// resolver: sorted region keys, a region→members CSR layout, O(1)
// vertex→region lookup and the precomputed NeighborStencil of regions
// within a given distance.
package geo
