package geo

import (
	"fmt"
	"slices"
	"testing"

	"lbcast/internal/xrand"
)

// checkPatched verifies a patched index against two oracles: the internal CSR
// invariants, and a from-scratch reconstruction of the region→members
// structure over the surviving point set. pos/present describe the ground
// truth; pos[v] is only meaningful where present[v].
func checkPatched(t *testing.T, gi *GridIndex, pos []Point, present []bool) {
	t.Helper()

	// Ground truth: region → ascending surviving members.
	want := map[RegionID][]int32{}
	n := 0
	for v := range pos {
		if present[v] {
			k := RegionOf(pos[v])
			want[k] = append(want[k], int32(v))
			n++
		}
	}
	keys := make([]RegionID, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, compareRegionIDs)

	if gi.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d occupied regions", gi.Len(), len(keys))
	}
	if !slices.Equal(gi.Regions(), keys) {
		t.Fatalf("Regions() = %v, want %v", gi.Regions(), keys)
	}
	total := 0
	for ri, k := range keys {
		got := gi.MembersAt(ri)
		if !slices.Equal(got, want[k]) {
			t.Fatalf("MembersAt(%d) [%v] = %v, want %v", ri, k, got, want[k])
		}
		if got2 := gi.Members(k); !slices.Equal(got2, want[k]) {
			t.Fatalf("Members(%v) = %v, want %v (IndexOf inconsistent)", k, got2, want[k])
		}
		total += len(got)
	}
	if total != n || len(gi.members) != n {
		t.Fatalf("member count %d (slice %d), want %d", total, len(gi.members), n)
	}

	// Vertex→region table.
	for v := range pos {
		if !present[v] {
			if gi.Contains(v) {
				t.Fatalf("Contains(%d) = true for deleted vertex", v)
			}
			continue
		}
		if !gi.Contains(v) {
			t.Fatalf("Contains(%d) = false for present vertex", v)
		}
		if got := gi.RegionOfVertex(v); got != RegionOf(pos[v]) {
			t.Fatalf("RegionOfVertex(%d) = %v, want %v", v, got, RegionOf(pos[v]))
		}
	}

	// CSR invariants: off monotone and consistent with Len.
	if len(gi.off) != gi.Len()+1 || gi.off[0] != 0 || int(gi.off[gi.Len()]) != n {
		t.Fatalf("off table inconsistent: len %d, first %d, last %d (n=%d)",
			len(gi.off), gi.off[0], gi.off[gi.Len()], n)
	}
	// Dense cell table, when active, must agree with IndexOf ground truth.
	if gi.Dense() {
		minI, minJ, nI, nJ := gi.Bounds()
		for ri, k := range keys {
			if k.I < minI || k.I >= minI+nI || k.J < minJ || k.J >= minJ+nJ {
				t.Fatalf("occupied region %v outside dense bounds", k)
			}
			if c := gi.cells[(k.I-minI)*nJ+(k.J-minJ)]; c != int32(ri) {
				t.Fatalf("cells[%v] = %d, want %d", k, c, ri)
			}
		}
		occ := 0
		for _, c := range gi.cells {
			if c >= 0 {
				occ++
			}
		}
		if occ != len(keys) {
			t.Fatalf("dense table holds %d occupied cells, want %d", occ, len(keys))
		}
	}

	// Cross-check against a genuine BuildGridIndex rebuild of the survivors
	// (compacted ids): region keys and per-region member counts must match
	// after translating through the compaction map.
	comp := make([]Point, 0, n)
	for v := range pos {
		if present[v] {
			comp = append(comp, pos[v])
		}
	}
	rb := BuildGridIndex(comp)
	if !slices.Equal(rb.Regions(), gi.Regions()) {
		t.Fatalf("rebuild regions %v != patched regions %v", rb.Regions(), gi.Regions())
	}
	for ri := range keys {
		if len(rb.MembersAt(ri)) != len(gi.MembersAt(ri)) {
			t.Fatalf("rebuild region %d has %d members, patched has %d",
				ri, len(rb.MembersAt(ri)), len(gi.MembersAt(ri)))
		}
	}
}

// TestGridPatchRandomChurn drives randomized insert/delete/move scripts and
// checks full structural equivalence with a rebuild after every operation.
func TestGridPatchRandomChurn(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := xrand.New(seed)
			const n0 = 120
			pos := make([]Point, n0)
			present := make([]bool, n0)
			for v := range pos {
				pos[v] = Point{X: rng.Float64() * 5, Y: rng.Float64() * 5}
				present[v] = true
			}
			gi := BuildGridIndex(pos)
			checkPatched(t, gi, pos, present)

			for op := 0; op < 400; op++ {
				switch rng.Intn(4) {
				case 0: // delete a random present vertex
					v := rng.Intn(len(pos))
					for !present[v] {
						v = rng.Intn(len(pos))
					}
					gi.Delete(v)
					present[v] = false
				case 1: // re-insert an absent vertex, or append a fresh one
					v := -1
					for u := range present {
						if !present[u] && rng.Intn(3) == 0 {
							v = u
							break
						}
					}
					p := Point{X: rng.Float64() * 5, Y: rng.Float64() * 5}
					if v < 0 {
						v = len(pos)
						pos = append(pos, p)
						present = append(present, false)
					} else {
						pos[v] = p
					}
					gi.Insert(v, p)
					present[v] = true
				case 2: // small move (often same region)
					v := rng.Intn(len(pos))
					for !present[v] {
						v = rng.Intn(len(pos))
					}
					p := Point{X: pos[v].X + rng.Float64()*0.3 - 0.15, Y: pos[v].Y + rng.Float64()*0.3 - 0.15}
					gi.Move(v, p)
					pos[v] = p
				default: // long-range move, occasionally outside the original box
					v := rng.Intn(len(pos))
					for !present[v] {
						v = rng.Intn(len(pos))
					}
					p := Point{X: rng.Float64()*8 - 1, Y: rng.Float64()*8 - 1}
					gi.Move(v, p)
					pos[v] = p
				}
				checkPatched(t, gi, pos, present)
			}
		})
	}
}

// TestGridPatchFromEmpty grows an index from an empty build, exercising the
// fresh-vertex append path and first-region creation.
func TestGridPatchFromEmpty(t *testing.T) {
	gi := BuildGridIndex(nil)
	var pos []Point
	var present []bool
	rng := xrand.New(9)
	for v := 0; v < 60; v++ {
		p := Point{X: rng.Float64() * 3, Y: rng.Float64() * 3}
		gi.Insert(v, p)
		pos = append(pos, p)
		present = append(present, true)
		checkPatched(t, gi, pos, present)
	}
	for v := 0; v < 60; v += 2 {
		gi.Delete(v)
		present[v] = false
		checkPatched(t, gi, pos, present)
	}
}

// TestGridPatchBoundsGrowth pins the dense-table behavior when patches land
// outside the built bounding box: nearby growth rebuilds the dense table,
// a pathologically far insert drops to sparse mode, and lookups stay correct
// throughout.
func TestGridPatchBoundsGrowth(t *testing.T) {
	rng := xrand.New(11)
	pos := make([]Point, 80)
	present := make([]bool, 80)
	for v := range pos {
		pos[v] = Point{X: rng.Float64() * 4, Y: rng.Float64() * 4}
		present[v] = true
	}
	gi := BuildGridIndex(pos)
	if !gi.Dense() {
		t.Fatalf("expected a dense build for a compact placement")
	}

	// Modest growth: one region outside the box. Dense should survive.
	p := Point{X: 5.2, Y: 5.2}
	pos = append(pos, p)
	present = append(present, true)
	gi.Insert(len(pos)-1, p)
	checkPatched(t, gi, pos, present)
	if !gi.Dense() {
		t.Fatalf("modest bounds growth should keep the dense table")
	}

	// Pathological growth: a point hundreds of regions away. The dense table
	// must be dropped, not allocated over the huge empty box.
	far := Point{X: 500, Y: 500}
	pos = append(pos, far)
	present = append(present, true)
	gi.Insert(len(pos)-1, far)
	checkPatched(t, gi, pos, present)
	if gi.Dense() {
		t.Fatalf("pathological bounds growth must fall back to sparse lookups")
	}

	// And the index keeps working (and stays correct) in sparse mode.
	gi.Delete(len(pos) - 1)
	present[len(pos)-1] = false
	checkPatched(t, gi, pos, present)
}
