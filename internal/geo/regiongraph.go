package geo

import "math"

// RegionIndex groups an embedding's vertices by grid region. It is the
// concrete form of the partition R restricted to occupied regions (empty
// regions play no role in any argument about nodes).
//
// Production paths use the dense GridIndex; RegionIndex is retained as the
// straightforward map-based reference the GridIndex tests check equivalence
// against. Keep the two behaviorally aligned (same member order, same
// sorted Regions order).
type RegionIndex struct {
	// Members maps each occupied region to the vertex indices embedded in it.
	Members map[RegionID][]int
	// Of maps each vertex index to its region.
	Of []RegionID
}

// BuildRegionIndex assigns each embedded vertex to its grid region.
func BuildRegionIndex(emb []Point) *RegionIndex {
	idx := &RegionIndex{
		Members: make(map[RegionID][]int),
		Of:      make([]RegionID, len(emb)),
	}
	for v, p := range emb {
		id := RegionOf(p)
		idx.Of[v] = id
		idx.Members[id] = append(idx.Members[id], v)
	}
	return idx
}

// Regions returns the occupied region IDs in sorted (I, J) order — the same
// deterministic order GridIndex.Regions iterates, so downstream structures
// (region graphs, visualisations) are reproducible across runs.
func (idx *RegionIndex) Regions() []RegionID {
	out := make([]RegionID, 0, len(idx.Members))
	for id := range idx.Members {
		out = append(out, id)
	}
	sortRegionIDs(out)
	return out
}

// RegionGraph is the graph G_{R,r} over occupied regions: two distinct
// regions are adjacent exactly when some pair of their points lies within
// distance r (Appendix A.1).
type RegionGraph struct {
	R       float64
	ids     []RegionID
	pos     map[RegionID]int
	adj     [][]int
	hopsMax int
}

// BuildRegionGraph constructs G_{R,r} over the given occupied regions.
// r must be at least 1 per the model definition.
func BuildRegionGraph(ids []RegionID, r float64) *RegionGraph {
	g := &RegionGraph{
		R:   r,
		ids: append([]RegionID(nil), ids...),
		pos: make(map[RegionID]int, len(ids)),
		adj: make([][]int, len(ids)),
	}
	for i, id := range g.ids {
		g.pos[id] = i
	}
	// Two regions can be adjacent only if their grid coordinates differ by
	// at most ceil(r/side)+1 cells, so scan a bounded window instead of all
	// pairs. With side ½ the window radius is 2r+1 cells.
	window := int32(math.Ceil(r/RegionSide)) + 1
	for i, a := range g.ids {
		for dj := -window; dj <= window; dj++ {
			for di := -window; di <= window; di++ {
				if di == 0 && dj == 0 {
					continue
				}
				b := RegionID{I: a.I + di, J: a.J + dj}
				j, ok := g.pos[b]
				if !ok || j <= i {
					continue // each unordered pair handled once
				}
				if RegionDist(a, b) <= r {
					g.adj[i] = append(g.adj[i], j)
					g.adj[j] = append(g.adj[j], i)
				}
			}
		}
	}
	return g
}

// Len returns the number of occupied regions.
func (g *RegionGraph) Len() int { return len(g.ids) }

// ID returns the region at the given internal index.
func (g *RegionGraph) ID(i int) RegionID { return g.ids[i] }

// IndexOf returns the internal index of a region and whether it exists.
func (g *RegionGraph) IndexOf(id RegionID) (int, bool) {
	i, ok := g.pos[id]
	return i, ok
}

// Neighbors returns the internal indices of the regions adjacent to region
// index i in G_{R,r}. The returned slice must not be modified.
func (g *RegionGraph) Neighbors(i int) []int { return g.adj[i] }

// Degree returns the number of neighbors of region index i.
func (g *RegionGraph) Degree(i int) int { return len(g.adj[i]) }

// WithinHops returns the internal indices of all regions whose hop distance
// from region index i in G_{R,r} is at most h, including i itself
// (hop distance 0). This is the "neighboring regions to distance h" notion
// used throughout Appendix B.
func (g *RegionGraph) WithinHops(i, h int) []int {
	if h < 0 {
		return nil
	}
	dist := make(map[int]int, 16)
	dist[i] = 0
	frontier := []int{i}
	out := []int{i}
	for d := 1; d <= h && len(frontier) > 0; d++ {
		var next []int
		for _, u := range frontier {
			for _, v := range g.adj[u] {
				if _, seen := dist[v]; seen {
					continue
				}
				dist[v] = d
				next = append(next, v)
				out = append(out, v)
			}
		}
		frontier = next
	}
	return out
}

// FBound returns the Lemma A.1 bound f(h) = c₁·r²·h² with c₁ chosen for the
// side-½ grid. A disc of radius r·h+√2/2 around a region covers every region
// within h hops; it intersects at most π(rh+1)²/side² ≤ 4π(rh+1)² squares.
// For h ≥ 1 and r ≥ 1 this is at most 51·r²·h², so c₁ = 51 witnesses the
// lemma. (Any constant works; tests check the counted regions never exceed
// this bound.)
func FBound(r float64, h int) float64 {
	if h == 0 {
		return 1
	}
	const c1 = 51
	return c1 * r * r * float64(h) * float64(h)
}

// CheckFBounded verifies the second f-boundedness condition against FBound
// for all regions up to maxHops, returning the first violation found.
func (g *RegionGraph) CheckFBounded(maxHops int) (okAll bool, region RegionID, h, count int) {
	for i := 0; i < g.Len(); i++ {
		for hh := 0; hh <= maxHops; hh++ {
			c := len(g.WithinHops(i, hh))
			if float64(c) > FBound(g.R, hh) {
				return false, g.ids[i], hh, c
			}
		}
	}
	return true, RegionID{}, 0, 0
}
