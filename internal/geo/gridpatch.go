// This file adds incremental maintenance to GridIndex: Insert, Delete and
// Move patch the CSR layout in place instead of rebuilding it, which is what
// makes mid-execution topology churn (node join/leave/mobility) affordable —
// a single-vertex patch costs a few bounded memmoves where a rebuild rescans
// every vertex. The structural contract is exact: after any sequence of
// patches the index is observably identical (Regions, members, vertex→region
// mapping, IndexOf) to BuildGridIndex over the same surviving point set;
// gridpatch_test.go pins that equivalence on randomized churn scripts.
//
// Vertices are identified by their index as everywhere else; a deleted
// vertex's slot stays allocated (of[v] = absentRegion) so the universe of
// vertex ids is stable across churn, matching the simulator's fixed process
// table. Patches that only touch an already-occupied region cost
// O(members shifted); patches that add or remove an occupied region also
// renumber the region handles — O(vertices + cells) int32 passes with no
// allocation in the steady state.

package geo

import "slices"

// absentRegion is the of-table sentinel for a vertex not currently in the
// index (deleted, or never inserted).
const absentRegion = -1

// Contains reports whether vertex v is currently present in the index.
func (gi *GridIndex) Contains(v int) bool {
	return v < len(gi.of) && gi.of[v] >= 0
}

// Insert adds vertex v at point p. v must either be the next fresh vertex
// index (len(of), growing the universe) or an existing absent slot; inserting
// a present vertex panics — use Move.
func (gi *GridIndex) Insert(v int, p Point) {
	if v == len(gi.of) {
		gi.of = append(gi.of, absentRegion)
	} else if gi.of[v] >= 0 {
		panic("geo: Insert of a present vertex (use Move)")
	}
	key := RegionOf(p)
	ri, ok := gi.IndexOf(key)
	if !ok {
		ri = gi.insertRegion(key)
	}
	// Splice v into its region's member block, keeping members ascending.
	pos := int(gi.off[ri])
	block := gi.members[gi.off[ri]:gi.off[ri+1]]
	k, _ := slices.BinarySearch(block, int32(v))
	pos += k
	gi.members = append(gi.members, 0)
	copy(gi.members[pos+1:], gi.members[pos:])
	gi.members[pos] = int32(v)
	for i := ri + 1; i < len(gi.off); i++ {
		gi.off[i]++
	}
	gi.of[v] = int32(ri)
}

// Delete removes vertex v from the index; its slot stays reserved so vertex
// ids remain stable. Deleting an absent vertex panics.
func (gi *GridIndex) Delete(v int) {
	ri := int(gi.of[v])
	if ri < 0 {
		panic("geo: Delete of an absent vertex")
	}
	block := gi.members[gi.off[ri]:gi.off[ri+1]]
	k, ok := slices.BinarySearch(block, int32(v))
	if !ok {
		panic("geo: member table corrupt")
	}
	pos := int(gi.off[ri]) + k
	copy(gi.members[pos:], gi.members[pos+1:])
	gi.members = gi.members[:len(gi.members)-1]
	for i := ri + 1; i < len(gi.off); i++ {
		gi.off[i]--
	}
	gi.of[v] = absentRegion
	if gi.off[ri] == gi.off[ri+1] {
		gi.removeRegion(ri)
	}
}

// Move relocates vertex v to point p: a Delete/Insert pair that short-
// circuits when the destination stays inside v's current region (the member
// sets are then unchanged — members carry no coordinates).
func (gi *GridIndex) Move(v int, p Point) {
	ri := int(gi.of[v])
	if ri < 0 {
		panic("geo: Move of an absent vertex")
	}
	if gi.ids[ri] == RegionOf(p) {
		return
	}
	gi.Delete(v)
	gi.Insert(v, p)
}

// insertRegion splices a newly occupied region into the sorted key table and
// returns its region index. Region indices above the insertion point shift
// by one, so the vertex→region table and (in dense mode) the cell table are
// renumbered in one pass each.
func (gi *GridIndex) insertRegion(key RegionID) int {
	ri, _ := slices.BinarySearchFunc(gi.ids, key, compareRegionIDs)
	gi.ids = append(gi.ids, RegionID{})
	copy(gi.ids[ri+1:], gi.ids[ri:])
	gi.ids[ri] = key

	// off gains a duplicate boundary at ri: the new region is empty until
	// the caller splices its first member in.
	gi.off = append(gi.off, 0)
	copy(gi.off[ri+1:], gi.off[ri:])

	for v, r := range gi.of {
		if r >= int32(ri) {
			gi.of[v] = r + 1
		}
	}
	if gi.cells != nil {
		switch gi.coverDense(key) {
		case coverKept:
			// Bounds unchanged: renumber the shifted handles in place and
			// point the new key's cell at its region.
			for c, r := range gi.cells {
				if r >= int32(ri) {
					gi.cells[c] = r + 1
				}
			}
			gi.cells[(key.I-gi.minI)*gi.nJ+(key.J-gi.minJ)] = int32(ri)
		case coverRebuilt:
			// coverDense refilled the table from the spliced key list, which
			// already carries the post-insert numbering.
		case coverDropped:
			// The grown bounding box is mostly empty space: fall back to
			// sparse (binary-search) lookups rather than allocate it.
			gi.cells = nil
		}
	}
	return ri
}

// removeRegion splices an emptied region out of the key table and renumbers
// the handles above it. Bounds are left as-is — they only ever over-cover,
// which costs nothing but slack in the dense table.
func (gi *GridIndex) removeRegion(ri int) {
	key := gi.ids[ri]
	gi.ids = append(gi.ids[:ri], gi.ids[ri+1:]...)
	gi.off = append(gi.off[:ri], gi.off[ri+1:]...)
	for v, r := range gi.of {
		if r > int32(ri) {
			gi.of[v] = r - 1
		}
	}
	if gi.cells != nil {
		gi.cells[(key.I-gi.minI)*gi.nJ+(key.J-gi.minJ)] = absentRegion
		for c, r := range gi.cells {
			if r > int32(ri) {
				gi.cells[c] = r - 1
			}
		}
	}
}

// coverDense outcomes: the existing table still covers key (caller patches it
// in place), the table was rebuilt over grown bounds from the sorted key list
// (already correct), or the grown box is too empty to keep dense.
const (
	coverKept = iota
	coverRebuilt
	coverDropped
)

// coverDense grows the dense bounding box to cover key. It is called after
// key has been spliced into ids, so a rebuild carries the final numbering.
func (gi *GridIndex) coverDense(key RegionID) int {
	minI, minJ := min(gi.minI, key.I), min(gi.minJ, key.J)
	nI := max(gi.minI+gi.nI, key.I+1) - minI
	nJ := max(gi.minJ+gi.nJ, key.J+1) - minJ
	if minI == gi.minI && minJ == gi.minJ && nI == gi.nI && nJ == gi.nJ {
		return coverKept
	}
	area := int64(nI) * int64(nJ)
	if area > max(1024, denseCellFactor*int64(max(len(gi.of), len(gi.ids)))) {
		return coverDropped
	}
	cells := make([]int32, area)
	for c := range cells {
		cells[c] = absentRegion
	}
	for ri, id := range gi.ids {
		cells[(id.I-minI)*nJ+(id.J-minJ)] = int32(ri)
	}
	gi.minI, gi.minJ, gi.nI, gi.nJ = minI, minJ, nI, nJ
	gi.cells = cells
	return coverRebuilt
}
