package geo

import (
	"reflect"
	"testing"

	"lbcast/internal/xrand"
)

// TestBuildGridIndexWorkersIdentical pins the determinism contract of the
// sharded build: for any worker count the resulting index is structurally
// identical to the sequential one — same bounds, keys, CSR layout, member
// order, and vertex→region table — in both dense and sparse mode. The
// embedding is large enough to clear parallelKeysMinVertices so the sharded
// pass actually runs.
func TestBuildGridIndexWorkersIdentical(t *testing.T) {
	n := parallelKeysMinVertices + 777
	for _, tc := range []struct {
		name string
		side float64
	}{
		{"dense", 64},     // compact box: dense cell table
		{"sparse", 40000}, // huge box: sparse fallback
	} {
		t.Run(tc.name, func(t *testing.T) {
			emb := randomEmbedding(n, tc.side, xrand.New(41))
			want := BuildGridIndexWorkers(emb, 1)
			if (tc.name == "dense") != want.Dense() {
				t.Fatalf("Dense() = %v for the %s case", want.Dense(), tc.name)
			}
			for _, workers := range []int{2, 3, 8} {
				got := BuildGridIndexWorkers(emb, workers)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("workers=%d: index differs from sequential build", workers)
				}
			}
		})
	}
}
