package geo

import (
	"math"
	"testing"
	"testing/quick"

	"lbcast/internal/xrand"
)

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		a, b Point
		want float64
	}{
		{"same point", Point{1, 1}, Point{1, 1}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dist(tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Point{ax, ay}, Point{bx, by}
		return Dist(a, b) == Dist(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegionOf(t *testing.T) {
	tests := []struct {
		p    Point
		want RegionID
	}{
		{Point{0, 0}, RegionID{0, 0}},
		{Point{0.49, 0.49}, RegionID{0, 0}},
		{Point{0.5, 0}, RegionID{1, 0}}, // boundary belongs to the next region
		{Point{0, 0.5}, RegionID{0, 1}},
		{Point{-0.01, 0}, RegionID{-1, 0}},
		{Point{1.25, -0.75}, RegionID{2, -2}},
	}
	for _, tt := range tests {
		if got := RegionOf(tt.p); got != tt.want {
			t.Errorf("RegionOf(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestRegionPartitionIsPartition(t *testing.T) {
	// Property: every point lies in exactly one region, and that region's
	// closed rect contains it.
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			return true
		}
		// Keep coordinates in a sane range to avoid float-grid pathologies
		// at 1e300 scales, which the simulator never uses.
		x = math.Mod(x, 1e6)
		y = math.Mod(y, 1e6)
		id := RegionOf(Point{x, y})
		x0, y0, x1, y1 := regionRect(id)
		return x >= x0 && x < x1+1e-9 && y >= y0 && y < y1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRegionDiameter(t *testing.T) {
	if !RegionDiameterOK() {
		t.Fatal("region diameter exceeds 1; Lemma A.1 condition 1 violated")
	}
	// Two points in the same region are within distance 1 (condition 1).
	r := xrand.New(1)
	for i := 0; i < 1000; i++ {
		p := Point{r.Float64() * 10, r.Float64() * 10}
		q := Point{r.Float64() * 10, r.Float64() * 10}
		if RegionOf(p) == RegionOf(q) && Dist(p, q) > 1 {
			t.Fatalf("points %v and %v share region %v but are %v apart", p, q, RegionOf(p), Dist(p, q))
		}
	}
}

func TestRegionDist(t *testing.T) {
	tests := []struct {
		name string
		a, b RegionID
		want float64
	}{
		{"same region", RegionID{0, 0}, RegionID{0, 0}, 0},
		{"adjacent horizontally", RegionID{0, 0}, RegionID{1, 0}, 0},
		{"diagonal touch", RegionID{0, 0}, RegionID{1, 1}, 0},
		{"one apart horizontally", RegionID{0, 0}, RegionID{2, 0}, 0.5},
		{"one apart diagonally", RegionID{0, 0}, RegionID{2, 2}, math.Sqrt(0.5)},
		{"far", RegionID{0, 0}, RegionID{4, 0}, 1.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := RegionDist(tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("RegionDist(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestRegionDistSymmetricProperty(t *testing.T) {
	f := func(ai, aj, bi, bj int16) bool {
		a := RegionID{int32(ai), int32(aj)}
		b := RegionID{int32(bi), int32(bj)}
		return RegionDist(a, b) == RegionDist(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegionDistLowerBoundsPointDist(t *testing.T) {
	// Property: for any two points, the distance between their regions is a
	// lower bound on the distance between the points.
	r := xrand.New(2)
	for i := 0; i < 5000; i++ {
		p := Point{r.Float64()*20 - 10, r.Float64()*20 - 10}
		q := Point{r.Float64()*20 - 10, r.Float64()*20 - 10}
		if RegionDist(RegionOf(p), RegionOf(q)) > Dist(p, q)+1e-9 {
			t.Fatalf("region dist %v exceeds point dist %v for %v, %v",
				RegionDist(RegionOf(p), RegionOf(q)), Dist(p, q), p, q)
		}
	}
}

func TestBuildRegionIndex(t *testing.T) {
	emb := []Point{{0.1, 0.1}, {0.2, 0.3}, {0.6, 0.1}, {-0.2, 0.9}}
	idx := BuildRegionIndex(emb)
	if len(idx.Of) != 4 {
		t.Fatalf("Of has %d entries", len(idx.Of))
	}
	if got := idx.Of[0]; got != (RegionID{0, 0}) {
		t.Errorf("vertex 0 in %v", got)
	}
	if members := idx.Members[RegionID{0, 0}]; len(members) != 2 {
		t.Errorf("region (0,0) has members %v, want [0 1]", members)
	}
	if members := idx.Members[RegionID{1, 0}]; len(members) != 1 || members[0] != 2 {
		t.Errorf("region (1,0) has members %v, want [2]", members)
	}
	if members := idx.Members[RegionID{-1, 1}]; len(members) != 1 || members[0] != 3 {
		t.Errorf("region (-1,1) has members %v, want [3]", members)
	}
	total := 0
	for _, m := range idx.Members {
		total += len(m)
	}
	if total != len(emb) {
		t.Errorf("index covers %d vertices, want %d", total, len(emb))
	}
}

func TestRegionGraphAdjacency(t *testing.T) {
	// A row of regions 0..4 at r=1: side ½ means regions up to 2 cells
	// apart (gap ½ ≤ 1) and 3 cells apart (gap 1 ≤ 1) are adjacent;
	// 4 cells apart (gap 1.5) are not.
	ids := []RegionID{{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}}
	g := BuildRegionGraph(ids, 1)
	i0, _ := g.IndexOf(RegionID{0, 0})
	degs := map[int32]int{}
	for i := 0; i < g.Len(); i++ {
		degs[g.ID(i).I] = g.Degree(i)
	}
	// Region 0 reaches regions 1,2,3 → degree 3. Region 2 reaches all others.
	if degs[0] != 3 {
		t.Errorf("degree of region 0 = %d, want 3", degs[0])
	}
	if degs[2] != 4 {
		t.Errorf("degree of region 2 = %d, want 4", degs[2])
	}
	within := g.WithinHops(i0, 1)
	if len(within) != 4 { // itself + 3 neighbors
		t.Errorf("WithinHops(0,1) = %d regions, want 4", len(within))
	}
	if got := g.WithinHops(i0, 0); len(got) != 1 {
		t.Errorf("WithinHops(0,0) = %d regions, want 1", len(got))
	}
	if got := g.WithinHops(i0, -1); got != nil {
		t.Errorf("WithinHops(0,-1) = %v, want nil", got)
	}
}

func TestRegionGraphHops(t *testing.T) {
	// A long row: hop distance should grow linearly along the row.
	var ids []RegionID
	for i := int32(0); i < 40; i++ {
		ids = append(ids, RegionID{i, 0})
	}
	g := BuildRegionGraph(ids, 1)
	i0, _ := g.IndexOf(RegionID{0, 0})
	// At r=1 each hop reaches 3 cells down the row, so within h hops we see
	// cells 0..3h → 3h+1 regions (clamped to 40).
	for h := 0; h <= 13; h++ {
		want := 3*h + 1
		if want > 40 {
			want = 40
		}
		if got := len(g.WithinHops(i0, h)); got != want {
			t.Errorf("WithinHops(0,%d) = %d, want %d", h, got, want)
		}
	}
}

func TestRegionGraphFBounded(t *testing.T) {
	// Random embeddings: the occupied-region graph must satisfy the
	// Lemma A.1 bound f(h) = c₁ r² h² for every region and h.
	r := xrand.New(3)
	for _, rr := range []float64{1, 1.5, 2, 3} {
		emb := make([]Point, 500)
		for i := range emb {
			emb[i] = Point{r.Float64() * 15, r.Float64() * 15}
		}
		idx := BuildRegionIndex(emb)
		g := BuildRegionGraph(idx.Regions(), rr)
		ok, region, h, count := g.CheckFBounded(4)
		if !ok {
			t.Errorf("r=%v: region %v has %d regions within %d hops, bound %v",
				rr, region, count, h, FBound(rr, h))
		}
	}
}

func TestRegionGraphEmpty(t *testing.T) {
	g := BuildRegionGraph(nil, 1)
	if g.Len() != 0 {
		t.Fatalf("empty graph has %d regions", g.Len())
	}
	if ok, _, _, _ := g.CheckFBounded(3); !ok {
		t.Fatal("empty graph fails f-boundedness")
	}
}

func TestRegionGraphSingle(t *testing.T) {
	g := BuildRegionGraph([]RegionID{{5, -3}}, 2)
	if g.Len() != 1 || g.Degree(0) != 0 {
		t.Fatalf("singleton graph wrong: len=%d deg=%d", g.Len(), g.Degree(0))
	}
	if got := g.WithinHops(0, 10); len(got) != 1 {
		t.Fatalf("WithinHops on singleton = %d", len(got))
	}
}

func TestRegionGraphIndexOfMissing(t *testing.T) {
	g := BuildRegionGraph([]RegionID{{0, 0}}, 1)
	if _, ok := g.IndexOf(RegionID{9, 9}); ok {
		t.Fatal("IndexOf reported a missing region as present")
	}
}

func TestRegionGraphAdjacencyMatchesDistance(t *testing.T) {
	// Property: adjacency in the built graph is exactly RegionDist ≤ r.
	r := xrand.New(4)
	for trial := 0; trial < 20; trial++ {
		seen := map[RegionID]bool{}
		var ids []RegionID
		for i := 0; i < 30; i++ {
			id := RegionID{int32(r.Intn(12)), int32(r.Intn(12))}
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
		rr := 1 + r.Float64()*2
		g := BuildRegionGraph(ids, rr)
		adj := make(map[[2]int]bool)
		for i := 0; i < g.Len(); i++ {
			for _, j := range g.Neighbors(i) {
				adj[[2]int{i, j}] = true
			}
		}
		for i := 0; i < g.Len(); i++ {
			for j := 0; j < g.Len(); j++ {
				if i == j {
					continue
				}
				want := RegionDist(g.ID(i), g.ID(j)) <= rr
				if adj[[2]int{i, j}] != want {
					t.Fatalf("r=%v: adjacency(%v,%v)=%v, want %v",
						rr, g.ID(i), g.ID(j), adj[[2]int{i, j}], want)
				}
			}
		}
	}
}

func BenchmarkBuildRegionGraph(b *testing.B) {
	r := xrand.New(1)
	emb := make([]Point, 2000)
	for i := range emb {
		emb[i] = Point{r.Float64() * 30, r.Float64() * 30}
	}
	idx := BuildRegionIndex(emb)
	ids := idx.Regions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildRegionGraph(ids, 2)
	}
}
