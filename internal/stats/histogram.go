package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-bin streaming histogram for non-negative integer
// observations (latencies in rounds, queue depths). Bins have width 1:
// bin i counts observations of value exactly i, and values at or above the
// configured cap land in the final overflow bin. Memory is fixed at
// construction and Add is O(1), so a histogram can ride along a multi-
// million-round run and still answer exact quantiles afterwards — unlike
// Quantile, which needs every sample retained.
//
// Quantiles are nearest-rank: Quantile(q) is the smallest recorded value v
// such that at least ⌈q·n⌉ observations are ≤ v. This makes the answer a
// deterministic integer function of the recorded counts, which is what the
// workload soak fingerprints pin across drivers.
type Histogram struct {
	bins  []uint64
	n     uint64
	sum   uint64 // sum of clamped values, for Mean
	maxV  int    // largest clamped value seen
	over  uint64 // observations clamped into the overflow bin
	clamp int    // values ≥ clamp land in bins[clamp]
}

// NewHistogram returns a histogram with unit bins for values in [0, cap);
// values ≥ cap are clamped into one overflow bin (reported as cap). cap
// must be positive.
func NewHistogram(cap int) *Histogram {
	if cap <= 0 {
		panic(fmt.Sprintf("stats: NewHistogram cap %d must be positive", cap))
	}
	return &Histogram{bins: make([]uint64, cap+1), clamp: cap}
}

// Add incorporates one observation. Negative values clamp to 0.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v >= h.clamp {
		v = h.clamp
		h.over++
	}
	h.bins[v]++
	h.n++
	h.sum += uint64(v)
	if v > h.maxV {
		h.maxV = v
	}
}

// N returns the number of observations.
func (h *Histogram) N() int { return int(h.n) }

// Overflow returns how many observations were clamped into the overflow
// bin. A non-zero overflow means the upper quantiles saturate at the cap
// and the histogram should be rebuilt wider.
func (h *Histogram) Overflow() int { return int(h.over) }

// Mean returns the mean of the (clamped) observations, 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Max returns the largest (clamped) observation, 0 when empty.
func (h *Histogram) Max() int { return h.maxV }

// Quantile returns the nearest-rank q-quantile (0 ≤ q ≤ 1) of the recorded
// observations, 0 when empty. The result is always one of the recorded
// (clamped) values.
func (h *Histogram) Quantile(q float64) int {
	if h.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for v, c := range h.bins {
		cum += c
		if cum >= rank {
			return v
		}
	}
	return h.clamp
}

// Counts returns the raw bin counts (aliasing the histogram's storage; do
// not mutate). Index i counts value i, the last index the overflow bin.
// Fingerprint tests hash this to pin metric bit-identity across drivers.
func (h *Histogram) Counts() []uint64 { return h.bins }
