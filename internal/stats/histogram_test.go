package stats

import (
	"testing"

	"lbcast/internal/xrand"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(16)
	if h.N() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Overflow() != 0 {
		t.Errorf("empty histogram not zeroed: n=%d mean=%v max=%d over=%d",
			h.N(), h.Mean(), h.Max(), h.Overflow())
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile(0.5) = %d, want 0", got)
	}
}

func TestHistogramCapValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram(0) did not panic")
		}
	}()
	NewHistogram(0)
}

// TestHistogramQuantileMatchesSorted cross-checks the streaming nearest-rank
// quantile against the definition computed on the retained sample: the
// smallest value with at least ⌈q·n⌉ observations at or below it.
func TestHistogramQuantileMatchesSorted(t *testing.T) {
	rng := xrand.New(99)
	h := NewHistogram(200)
	counts := make([]int, 200)
	n := 0
	for i := 0; i < 5000; i++ {
		v := rng.Intn(180)
		h.Add(v)
		counts[v]++
		n++
	}
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		rank := int(q*float64(n) + 0.9999999)
		if rank < 1 {
			rank = 1
		}
		want, cum := 0, 0
		for v, c := range counts {
			cum += c
			if cum >= rank {
				want = v
				break
			}
		}
		if got := h.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %d, want %d", q, got, want)
		}
	}
}

func TestHistogramMoments(t *testing.T) {
	h := NewHistogram(100)
	vals := []int{3, 1, 4, 1, 5, 9, 2, 6}
	sum := 0
	for _, v := range vals {
		h.Add(v)
		sum += v
	}
	if h.N() != len(vals) {
		t.Errorf("N = %d, want %d", h.N(), len(vals))
	}
	if want := float64(sum) / float64(len(vals)); h.Mean() != want {
		t.Errorf("Mean = %v, want %v", h.Mean(), want)
	}
	if h.Max() != 9 {
		t.Errorf("Max = %d, want 9", h.Max())
	}
	if h.Quantile(0.5) != 3 {
		t.Errorf("median = %d, want 3", h.Quantile(0.5))
	}
}

func TestHistogramOverflowAndClamp(t *testing.T) {
	h := NewHistogram(10)
	h.Add(-5) // clamps to 0
	h.Add(9)  // last real bin
	h.Add(10) // overflow
	h.Add(1_000_000)
	if h.Overflow() != 2 {
		t.Errorf("Overflow = %d, want 2", h.Overflow())
	}
	if h.Max() != 10 {
		t.Errorf("Max = %d, want clamp 10", h.Max())
	}
	if got := h.Quantile(1); got != 10 {
		t.Errorf("Quantile(1) = %d, want overflow value 10", got)
	}
	if got := h.Quantile(0.25); got != 0 {
		t.Errorf("Quantile(0.25) = %d, want clamped 0", got)
	}
	cs := h.Counts()
	if len(cs) != 11 || cs[0] != 1 || cs[9] != 1 || cs[10] != 2 {
		t.Errorf("Counts wrong: %v", cs)
	}
}
