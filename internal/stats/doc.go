// Package stats provides the small statistical toolkit the experiment
// harness uses: streaming summaries, quantiles, binomial confidence
// intervals, log–log regression for scaling-shape checks, and text tables.
package stats
