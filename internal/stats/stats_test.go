package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Var() != 0 {
		t.Error("zero value not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v", s.Mean())
	}
	// Unbiased variance of this classic dataset is 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Errorf("Var = %v", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("extrema = %v, %v", s.Min(), s.Max())
	}
	if math.Abs(s.Std()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("Std = %v", s.Std())
	}
}

func TestSummaryAddInt(t *testing.T) {
	var s Summary
	s.AddInt(3)
	s.AddInt(5)
	if s.Mean() != 4 {
		t.Errorf("Mean = %v", s.Mean())
	}
}

func TestSummaryMatchesDirectComputation(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		var sum float64
		ok := true
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e8 {
				continue
			}
			s.Add(x)
			sum += x
			n++
		}
		if n == 0 {
			return s.N() == 0
		}
		mean := sum / float64(n)
		if math.Abs(s.Mean()-mean) > 1e-6*(1+math.Abs(mean)) {
			ok = false
		}
		return ok && s.N() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	tests := []struct {
		name    string
		samples []float64
		q       float64
		want    float64
	}{
		{"empty", nil, 0.5, 0},
		{"single", []float64{7}, 0.5, 7},
		{"median even", []float64{1, 2, 3, 4}, 0.5, 2.5},
		{"min", []float64{3, 1, 2}, 0, 1},
		{"max", []float64{3, 1, 2}, 1, 3},
		{"q below zero clamps", []float64{3, 1, 2}, -0.5, 1},
		{"p90", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.9, 9.1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Quantile(tt.samples, tt.q); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("Quantile(%v, %v) = %v, want %v", tt.samples, tt.q, got, tt.want)
			}
		})
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	samples := []float64{3, 1, 2}
	Quantile(samples, 0.5)
	if samples[0] != 3 || samples[1] != 1 || samples[2] != 2 {
		t.Error("Quantile sorted the caller's slice")
	}
}

func TestQuantileInts(t *testing.T) {
	if got := QuantileInts([]int{1, 2, 3, 4}, 0.5); got != 2.5 {
		t.Errorf("QuantileInts = %v", got)
	}
}

func TestWilsonCI(t *testing.T) {
	lo, hi := WilsonCI(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Errorf("empty CI = [%v, %v]", lo, hi)
	}
	lo, hi = WilsonCI(50, 100, 1.96)
	if !(lo < 0.5 && 0.5 < hi) {
		t.Errorf("CI [%v,%v] does not contain p̂", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("CI [%v,%v] too wide for n=100", lo, hi)
	}
	// Perfect successes: interval must stay within [0,1] and keep hi = 1 off
	// by the continuity of Wilson (hi < 1 is fine; lo must be high).
	lo, hi = WilsonCI(100, 100, 1.96)
	if lo < 0.9 || hi > 1 {
		t.Errorf("CI for 100/100 = [%v,%v]", lo, hi)
	}
	// Wider n gives narrower intervals.
	lo1, hi1 := WilsonCI(5, 10, 1.96)
	lo2, hi2 := WilsonCI(500, 1000, 1.96)
	if (hi2 - lo2) >= (hi1 - lo1) {
		t.Error("CI did not narrow with n")
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = 3x² exactly → slope 2.
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	if got := LogLogSlope(xs, ys); math.Abs(got-2) > 1e-9 {
		t.Errorf("slope = %v, want 2", got)
	}
	// Constant y → slope 0.
	if got := LogLogSlope(xs, []float64{5, 5, 5, 5, 5}); math.Abs(got) > 1e-9 {
		t.Errorf("constant slope = %v", got)
	}
	// Degenerate inputs → NaN.
	if got := LogLogSlope([]float64{1}, []float64{1}); !math.IsNaN(got) {
		t.Errorf("single point slope = %v, want NaN", got)
	}
	if got := LogLogSlope([]float64{-1, -2}, []float64{1, 2}); !math.IsNaN(got) {
		t.Errorf("negative xs slope = %v, want NaN", got)
	}
	if got := LogLogSlope([]float64{2, 2, 2}, []float64{1, 2, 3}); !math.IsNaN(got) {
		t.Errorf("equal xs slope = %v, want NaN", got)
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Notes:   []string{"footnote"},
	}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("x", 3.0)
	out := tbl.String()
	for _, want := range []string{"## demo", "a", "bb", "2.500", "x", "note: footnote"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{
		{1, "1"},
		{1.5, "1.500"},
		{123.456, "123.5"},
		{math.NaN(), "NaN"},
		{0, "0"},
	}
	for _, tt := range tests {
		if got := FormatFloat(tt.v); got != tt.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestFormatRate(t *testing.T) {
	if got := FormatRate(3, 4); got != "3/4 (0.750)" {
		t.Errorf("FormatRate = %q", got)
	}
	if got := FormatRate(0, 0); got != "0/0 (–)" {
		t.Errorf("FormatRate empty = %q", got)
	}
}
