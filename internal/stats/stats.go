package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"text/tabwriter"
)

// Summary accumulates a stream of observations with Welford's algorithm.
// The zero value is an empty summary ready for use.
type Summary struct {
	n          int
	mean, m2   float64
	min, max   float64
	hasExtrema bool
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if !s.hasExtrema || x < s.min {
		s.min = x
	}
	if !s.hasExtrema || x > s.max {
		s.max = x
	}
	s.hasExtrema = true
}

// AddInt incorporates one integer observation.
func (s *Summary) AddInt(x int) { s.Add(float64(x)) }

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 samples).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min and Max return the extrema (0 for an empty summary).
func (s *Summary) Min() float64 { return s.min }

// Max returns the maximum observation.
func (s *Summary) Max() float64 { return s.max }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the samples using linear
// interpolation between order statistics. It returns 0 for no samples.
func Quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// QuantileInts is Quantile over integer samples.
func QuantileInts(samples []int, q float64) float64 {
	fs := make([]float64, len(samples))
	for i, v := range samples {
		fs[i] = float64(v)
	}
	return Quantile(fs, q)
}

// WilsonCI returns the Wilson score interval for a binomial proportion at
// the given z (1.96 ≈ 95%). For n = 0 it returns (0, 1).
func WilsonCI(successes, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(successes) / float64(n)
	nn := float64(n)
	denom := 1 + z*z/nn
	centre := (p + z*z/(2*nn)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn))
	lo, hi = centre-half, centre+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// LogLogSlope fits log(y) = a + b·log(x) by least squares and returns b,
// the empirical scaling exponent. Points with non-positive coordinates are
// skipped; fewer than two usable points yield NaN.
func LogLogSlope(xs, ys []float64) float64 {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	if len(lx) < 2 {
		return math.NaN()
	}
	n := float64(len(lx))
	var sx, sy, sxx, sxy float64
	for i := range lx {
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
	}
	denom := n*sxx - sx*sx
	if math.Abs(denom) < 1e-9 {
		return math.NaN() // all x equal: slope undefined
	}
	return (n*sxy - sx*sy) / denom
}

// Table is a titled text table with optional footnotes, the output unit of
// every experiment.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "## %s\n\n", t.Title); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(t.Columns) > 0 {
		fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
		under := make([]string, len(t.Columns))
		for i, c := range t.Columns {
			under[i] = strings.Repeat("-", len(c))
		}
		fmt.Fprintln(tw, strings.Join(under, "\t"))
	}
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, note := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// FormatFloat renders a float compactly: integers without decimals, small
// values with three significant decimals.
func FormatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// FormatRate renders a success ratio as "succ/total (rate)".
func FormatRate(successes, total int) string {
	if total == 0 {
		return "0/0 (–)"
	}
	return fmt.Sprintf("%d/%d (%.3f)", successes, total, float64(successes)/float64(total))
}
