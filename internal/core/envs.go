package core

import "fmt"

// Send schedules one bcast input: node Node receives bcast(Payload) at the
// start of round Round.
type Send struct {
	Node    int
	Round   int
	Payload any
}

// SingleShotEnv issues a fixed schedule of bcast inputs. If a scheduled
// input lands while its node is still broadcasting a previous message —
// which the problem's environment well-formedness forbids — the input is
// deferred round by round until the node's ack frees it.
type SingleShotEnv struct {
	procs  []Service
	queue  []Send
	issued int
}

// NewSingleShotEnv builds the environment over the node processes.
func NewSingleShotEnv(procs []Service, sends []Send) *SingleShotEnv {
	q := make([]Send, len(sends))
	copy(q, sends)
	return &SingleShotEnv{procs: procs, queue: q}
}

// BeforeRound implements sim.Environment.
func (e *SingleShotEnv) BeforeRound(t int) {
	remaining := e.queue[:0]
	for _, s := range e.queue {
		if s.Round > t {
			remaining = append(remaining, s)
			continue
		}
		if _, err := e.procs[s.Node].Bcast(s.Payload); err != nil {
			// Node still busy: defer to the next round.
			s.Round = t + 1
			remaining = append(remaining, s)
			continue
		}
		e.issued++
	}
	e.queue = remaining
}

// AfterRound implements sim.Environment.
func (e *SingleShotEnv) AfterRound(int) {}

// Issued returns how many bcast inputs have been accepted so far.
func (e *SingleShotEnv) Issued() int { return e.issued }

// Pending returns how many scheduled sends have not yet been accepted.
func (e *SingleShotEnv) Pending() int { return len(e.queue) }

// SaturatingEnv keeps a set of sender nodes permanently active: each sender
// gets a bcast input at round 1 and a fresh one at the round after each
// ack. This realises the progress experiments' premise of a reliable
// neighbor that is "active throughout the entire span".
type SaturatingEnv struct {
	procs   []Service
	senders []int
	ready   map[int]bool
	acks    map[int]int
	seq     int
}

// NewSaturatingEnv builds the environment and hooks the senders' OnAck
// callbacks. Senders must not have competing OnAck handlers.
func NewSaturatingEnv(procs []Service, senders []int) *SaturatingEnv {
	e := &SaturatingEnv{
		procs:   procs,
		senders: append([]int(nil), senders...),
		ready:   make(map[int]bool, len(senders)),
		acks:    make(map[int]int, len(senders)),
	}
	for _, s := range e.senders {
		e.ready[s] = true
		node := s
		procs[s].SetOnAck(func(Message) {
			e.acks[node]++
			e.ready[node] = true
		})
	}
	return e
}

// BeforeRound implements sim.Environment.
func (e *SaturatingEnv) BeforeRound(t int) {
	for _, s := range e.senders {
		if !e.ready[s] {
			continue
		}
		e.ready[s] = false
		e.seq++
		if _, err := e.procs[s].Bcast(fmt.Sprintf("sat-%d-%d", s, e.seq)); err != nil {
			// Unreachable: ready is only set by the node's own ack.
			e.ready[s] = true
		}
	}
}

// AfterRound implements sim.Environment.
func (e *SaturatingEnv) AfterRound(int) {}

// Rearm re-hooks a sender after its Service was replaced — e.g. by a churn
// restart, which abandons the old process together with the OnAck callback
// this environment planted on it. The environment aliases the Service
// slice it was built over, so callers that store the replacement at the
// same index need only call Rearm; the sender then gets a fresh bcast at
// the next BeforeRound (any broadcast in flight at the crash is counted as
// lost, not acked). No-op for nodes that are not senders.
func (e *SaturatingEnv) Rearm(node int) {
	if _, ok := e.ready[node]; !ok {
		return
	}
	e.procs[node].SetOnAck(func(Message) {
		e.acks[node]++
		e.ready[node] = true
	})
	e.ready[node] = true
}

// Acks returns the ack count observed for the given sender.
func (e *SaturatingEnv) Acks(node int) int { return e.acks[node] }
