package core

import (
	"lbcast/internal/seedagree"
	"lbcast/internal/xrand"
)

// This file is the phase-schedule subsystem. LBAlg's control flow is fully
// phase-deterministic: which positions of a phase are preamble slots and
// which are body rounds, and how many committed-seed bits a body round may
// consume, are pure functions of Params. The PhasePlan resolves that
// schedule once per configuration into per-position tables shared by every
// node, so the per-node-per-round work in Transmit/Receive collapses to a
// slot lookup — and the committed-seed coin stream is decoded once per
// phase into a scratch buffer (phaseCoins) in one word-level pass instead
// of two BitString.Consume calls per node per round.
//
// The plan changes when coins are decoded, never which bits feed which
// decision: the decode walks the committed seed in exactly the order the
// incremental bodyRound logic consumed it, so traces and coin sequences
// stay byte-identical (pinned by golden_test.go and phaseplan_test.go).

// RoundKind classifies one position within a phase.
type RoundKind uint8

const (
	// RoundPreamble positions run the seed agreement protocol.
	RoundPreamble RoundKind = iota
	// RoundBody positions run the shared-coin body round logic.
	RoundBody
)

// Slot describes one position of a phase: its kind, the index of the body
// round within the phase's decoded coin scratch (-1 for preamble slots),
// and the worst-case number of committed-seed bits the round consumes
// (K1+K2 for body slots, 0 for preamble slots).
type Slot struct {
	Kind       RoundKind
	Body       int32
	CoinBudget int16
}

// PhasePlan is the precomputed LBAlg schedule for one Params value. It is
// read-only after construction, so one plan serves every node of a run
// (NewLBAlgWithPlan); it also carries the shared seedagree.Plan for the
// per-phase preambles.
type PhasePlan struct {
	params   Params
	phaseLen int
	ts       int
	tprog    int
	k1, k2   int
	logDelta int
	// seedEvery is Params.SeedEveryKPhases; alwaysPreamble short-circuits
	// the per-phase modulo for the paper's k = 1 schedule.
	seedEvery      int
	alwaysPreamble bool

	// preamble holds the slots of a phase that runs the seed agreement
	// preamble (positions [0, Ts) preamble, [Ts, phaseLen) body); bodyOnly
	// holds the slots of a skipped-preamble phase under the Section 4.2
	// variant (every position a body round). bodyOnly is nil when k = 1.
	// preambleCut is the number of leading RoundPreamble slots in
	// `preamble`, counted off the built table — the scalar the per-round
	// hot path compares against instead of loading slots.
	preamble    []Slot
	bodyOnly    []Slot
	preambleCut int

	// Seed is the shared schedule plan of the per-phase seed agreement
	// preambles.
	Seed *seedagree.Plan
}

// NewPhasePlan resolves the phase schedule of p into lookup tables. Params
// must come from DeriveParams (or be equivalently consistent: PhaseLen =
// Ts + Tprog, positive lengths).
func NewPhasePlan(p Params) *PhasePlan {
	pl := &PhasePlan{
		params:         p,
		phaseLen:       p.PhaseLen(),
		ts:             p.Ts,
		tprog:          p.Tprog,
		k1:             p.K1,
		k2:             p.K2,
		logDelta:       p.LogDelta,
		seedEvery:      p.SeedEveryKPhases,
		alwaysPreamble: p.SeedEveryKPhases <= 1,
		Seed:           seedagree.NewPlan(p.SeedParams),
	}
	pl.preamble = make([]Slot, pl.phaseLen)
	for pos := range pl.preamble {
		if pos < pl.ts {
			pl.preamble[pos] = Slot{Kind: RoundPreamble, Body: -1}
		} else {
			pl.preamble[pos] = Slot{Kind: RoundBody, Body: int32(pos - pl.ts),
				CoinBudget: int16(pl.k1 + pl.k2)}
		}
	}
	if !pl.alwaysPreamble {
		// Section 4.2 variant: skipped preamble slots become body rounds.
		pl.bodyOnly = make([]Slot, pl.phaseLen)
		for pos := range pl.bodyOnly {
			pl.bodyOnly[pos] = Slot{Kind: RoundBody, Body: int32(pos),
				CoinBudget: int16(pl.k1 + pl.k2)}
		}
	}
	for pos := range pl.preamble {
		if pl.preamble[pos].Kind != RoundPreamble {
			break
		}
		pl.preambleCut++
	}
	return pl
}

// Params returns the parameters the plan was derived from.
func (pl *PhasePlan) Params() Params { return pl.params }

// PhaseLen returns the full phase length Ts + Tprog.
func (pl *PhasePlan) PhaseLen() int { return pl.phaseLen }

// RunsPreamble reports whether seed agreement runs in the given 1-based
// phase (always true for the paper's algorithm; every k-th phase under the
// Section 4.2 ablation).
func (pl *PhasePlan) RunsPreamble(phase int) bool {
	return pl.alwaysPreamble || (phase-1)%pl.seedEvery == 0
}

// Slots returns the per-position slot table of the given phase.
func (pl *PhasePlan) Slots(phase int) []Slot {
	if pl.RunsPreamble(phase) {
		return pl.preamble
	}
	return pl.bodyOnly
}

// preambleLen returns the phase's preamble cut: the number of leading
// RoundPreamble slots in its table (Ts for preamble phases, 0 for
// skipped-preamble phases). Body slots sit at positions ≥ the cut with
// Body = pos − cut, which is what lets LBAlg cache one int per phase
// instead of touching the table every round.
func (pl *PhasePlan) preambleLen(phase int) int {
	if pl.RunsPreamble(phase) {
		return pl.preambleCut
	}
	return 0
}

// BodyRounds returns how many body rounds the given phase has: Tprog for
// preamble phases, the full phase length for skipped-preamble phases.
func (pl *PhasePlan) BodyRounds(phase int) int {
	if pl.RunsPreamble(phase) {
		return pl.tprog
	}
	return pl.phaseLen
}

// CoinBudget returns the worst-case number of committed-seed bits the given
// phase consumes: Σ Slot.CoinBudget over its positions.
func (pl *PhasePlan) CoinBudget(phase int) int {
	return pl.BodyRounds(phase) * (pl.k1 + pl.k2)
}

// PhaseOf maps a global 1-based round to its 1-based phase and 0-based
// position — the non-incremental fallback behind LBAlg's position cursor.
func (pl *PhasePlan) PhaseOf(t int) (phase, pos int) {
	return (t-1)/pl.phaseLen + 1, (t - 1) % pl.phaseLen
}

// phaseCoins is a node's per-phase scratch of decoded shared coins: entry j
// covers the phase's j-th body round, holding 0 when the round's owner
// group stays silent (non-participant round, short participation coin, or
// an exhausted seed) and the selected probability exponent b ∈ [1, log Δ]
// otherwise. A body round then costs one byte load instead of one or two
// cursor-checked Consume calls.
type phaseCoins struct {
	b     []uint8
	valid bool
	// raw is the word scratch of the pure-K1 bulk decode path.
	raw []uint64
}

// invalidate drops the scratch when its seed is superseded.
func (c *phaseCoins) invalidate() { c.valid = false }

// decodeCoins decodes the next `rounds` body rounds' worth of shared coins
// from seed into c, advancing seed's cursor exactly as `rounds` incremental
// bodyRound executions would have: K1 participation bits per round, then K2
// selection bits only on participant rounds, with per-field exhaustion
// semantics (a field that does not fit leaves the cursor in place and the
// round silent). One call replaces a phase's worth of per-round Consume
// pairs.
func (pl *PhasePlan) decodeCoins(seed *xrand.BitString, c *phaseCoins, rounds int) {
	if cap(c.b) < rounds {
		c.b = make([]uint8, rounds)
	}
	c.b = c.b[:rounds]
	c.valid = true
	pl.walkCoins(seed, c.b, &c.raw, rounds)
}

// skipCoins advances seed's cursor over `rounds` body rounds' worth of
// shared coins without materialising them — how a node that spent one or
// more phases of a SeedEveryKPhases cycle as a pure receiver catches its
// cursor up when it enters the sending state (the decoded values are never
// read while receiving, but which bits the next phase starts at depends on
// them).
func (pl *PhasePlan) skipCoins(seed *xrand.BitString, rounds int) {
	pl.walkCoins(seed, nil, nil, rounds)
}

// walkCoins is the shared word-level pass behind decodeCoins, skipCoins and
// the state bank's slab decode (NodeStateBank decodes into flat per-node
// column segments rather than a phaseCoins): dst receives the per-round coin
// bytes when non-nil, raw points at the caller's reusable word scratch for
// the pure-K1 bulk path (unused when dst is nil), and the cursor advance is
// identical either way.
func (pl *PhasePlan) walkCoins(seed *xrand.BitString, dst []uint8, raw *[]uint64, rounds int) {
	if pl.k2 == 0 && pl.k1 > 0 {
		// Pure fixed-width stream (log Δ = 1, so b is always 1 and no
		// selection bits exist): one bulk ConsumeMany sweep, or a plain
		// cursor Skip when the values are being discarded.
		m := rounds
		if avail := seed.Remaining() / pl.k1; avail < m {
			m = avail
		}
		if dst == nil {
			seed.Skip(m * pl.k1)
			return
		}
		if cap(*raw) < m {
			*raw = make([]uint64, m)
		}
		*raw = (*raw)[:m]
		seed.ConsumeMany(pl.k1, *raw)
		for j, w := range *raw {
			if w == 0 {
				dst[j] = 1
			} else {
				dst[j] = 0
			}
		}
		for j := m; j < rounds; j++ {
			dst[j] = 0
		}
		return
	}
	// General interleaved stream: one word-level pass over the seed's
	// backing array with the cursor in locals, committed back once via
	// Skip. Field extraction mirrors BitString.Consume exactly — a field
	// only fits if that many bits remain, and a field that does not fit
	// consumes nothing — so the cursor ends where `rounds` incremental
	// Consume walks would have left it. The second-word merge is
	// branch-free: the double shift is well-defined at off = 0 (<<1<<63
	// clears the word) and the i+1 bound check only fails in the last
	// word.
	words, n, start := seed.Words(), seed.Len(), seed.Offset()
	k1, k2 := pl.k1, pl.k2
	m1 := uint64(1)<<uint(k1) - 1
	m2 := uint64(1)<<uint(k2) - 1
	logDelta := uint64(pl.logDelta)
	cur := start
	for j := 0; j < rounds; j++ {
		var b uint8
		if n-cur >= k1 { // else: seed exhausted, round fails closed
			var v uint64
			if k1 > 0 {
				i, off := cur>>6, uint(cur)&63
				v = words[i] >> off
				if i+1 < len(words) {
					v |= words[i+1] << 1 << (63 - off)
				}
				v &= m1
				cur += k1
			}
			// v != 0 is a non-participant round for this owner group;
			// participants read their K2 selection bits when they fit.
			if v == 0 && n-cur >= k2 {
				var bv uint64
				if k2 > 0 {
					i, off := cur>>6, uint(cur)&63
					bv = words[i] >> off
					if i+1 < len(words) {
						bv |= words[i+1] << 1 << (63 - off)
					}
					bv &= m2
					cur += k2
				}
				b = uint8(1 + bv%logDelta)
			}
		}
		if dst != nil {
			dst[j] = b
		}
	}
	seed.Skip(cur - start)
}
