package core

import (
	"math"
	"testing"
)

func TestDeriveParamsValidation(t *testing.T) {
	tests := []struct {
		name              string
		delta, deltaPrime int
		r, eps            float64
		wantErr           bool
	}{
		{"valid", 8, 16, 1, 0.1, false},
		{"eps at half", 8, 16, 1, 0.5, false},
		{"eps above half", 8, 16, 1, 0.6, true},
		{"eps zero", 8, 16, 1, 0, true},
		{"delta zero", 0, 16, 1, 0.1, true},
		{"deltaPrime below delta", 8, 4, 1, 0.1, true},
		{"r below one", 8, 16, 0.5, 0.1, true},
		{"degenerate singleton", 1, 1, 1, 0.25, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := DeriveParams(tt.delta, tt.deltaPrime, tt.r, tt.eps)
			if (err != nil) != tt.wantErr {
				t.Errorf("DeriveParams error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestDeriveParamsRejectsBadOverrides(t *testing.T) {
	for _, opt := range []Option{WithC1(0), WithCAck(-1), WithSeedC4(0), WithSeedEveryKPhases(0)} {
		if _, err := DeriveParams(8, 16, 1, 0.1, opt); err == nil {
			t.Error("bad override accepted")
		}
	}
}

func TestDerivedStructure(t *testing.T) {
	p, err := DeriveParams(16, 32, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Eps2 != 0.05 {
		t.Errorf("Eps2 = %v, want ε₁/2", p.Eps2)
	}
	if p.LogDelta != 4 {
		t.Errorf("LogDelta = %d, want 4", p.LogDelta)
	}
	if p.Ts != p.SeedParams.Rounds() {
		t.Errorf("Ts = %d ≠ SeedAlg rounds %d", p.Ts, p.SeedParams.Rounds())
	}
	if p.PhaseLen() != p.Ts+p.Tprog {
		t.Error("PhaseLen ≠ Ts+Tprog")
	}
	if p.TProgBound() != p.PhaseLen() {
		t.Error("TProgBound ≠ PhaseLen")
	}
	if p.TAckBound() != (p.Tack+1)*p.PhaseLen() {
		t.Error("TAckBound ≠ (Tack+1)·PhaseLen")
	}
	// κ must cover the worst-case per-phase consumption.
	if p.Kappa < p.Tprog*(p.K1+p.K2) {
		t.Errorf("κ = %d below Tprog·(K1+K2) = %d", p.Kappa, p.Tprog*(p.K1+p.K2))
	}
	if p.SeedParams.Kappa != p.Kappa {
		t.Error("seed params carry a different κ")
	}
	// Participant probability is a/(r²·log(1/ε₂)) with a ∈ (½, 1].
	target := 1 / (p.R * p.R * math.Log2(1/p.Eps2))
	if pp := p.ParticipantProb(); pp > target || pp <= target/2 {
		t.Errorf("ParticipantProb = %v, want in (%v, %v]", pp, target/2, target)
	}
	// K2 must index [log Δ].
	if 1<<p.K2 < p.LogDelta {
		t.Errorf("2^K2 = %d < log Δ = %d", 1<<p.K2, p.LogDelta)
	}
}

func TestEps2Clamped(t *testing.T) {
	// ε₁ = 0.5 ⇒ ε₂ = 0.25 exactly at SeedAlg's ceiling.
	p, err := DeriveParams(4, 4, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Eps2 != 0.25 {
		t.Errorf("Eps2 = %v", p.Eps2)
	}
}

func TestTprogScalesWithTheorem(t *testing.T) {
	// t_prog = O(r²·log Δ·log(stuff)): doubling Δ must increase Tprog by
	// exactly the logΔ step; growing r must scale ~r².
	base, err := DeriveParams(16, 16, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	deeper, err := DeriveParams(256, 256, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := float64(deeper.Tprog)/float64(base.Tprog), 2.0; math.Abs(got-want) > 0.05 {
		t.Errorf("Tprog ratio for logΔ 4→8 = %v, want ≈2", got)
	}
	wide, err := DeriveParams(16, 16, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(wide.Tprog) / float64(base.Tprog); math.Abs(got-4) > 0.1 {
		t.Errorf("Tprog ratio for r 1→2 = %v, want ≈4", got)
	}
}

func TestTackScalesWithDeltaPrime(t *testing.T) {
	// t_ack = O(Δ′·log(Δ/ε)): doubling Δ′ roughly doubles Tack.
	a, err := DeriveParams(16, 16, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DeriveParams(16, 64, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(b.Tack) / float64(a.Tack); math.Abs(got-4) > 0.3 {
		t.Errorf("Tack ratio for Δ′ 16→64 = %v, want ≈4", got)
	}
}

func TestPhaseOf(t *testing.T) {
	p, err := DeriveParams(4, 4, 1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	pl := p.PhaseLen()
	tests := []struct {
		t         int
		wantPhase int
		wantPos   int
	}{
		{1, 1, 0},
		{pl, 1, pl - 1},
		{pl + 1, 2, 0},
		{2*pl + 5, 3, 4},
	}
	for _, tt := range tests {
		phase, pos := p.PhaseOf(tt.t)
		if phase != tt.wantPhase || pos != tt.wantPos {
			t.Errorf("PhaseOf(%d) = %d,%d want %d,%d", tt.t, phase, pos, tt.wantPhase, tt.wantPos)
		}
	}
	if !p.IsPreamble(0) || !p.IsPreamble(p.Ts-1) || p.IsPreamble(p.Ts) {
		t.Error("IsPreamble boundary wrong")
	}
}

func TestKappaCoversAblationCycles(t *testing.T) {
	p, err := DeriveParams(8, 8, 1, 0.1, WithSeedEveryKPhases(4))
	if err != nil {
		t.Fatal(err)
	}
	perRound := p.K1 + p.K2
	cycleBodyRounds := p.Tprog + 3*(p.Ts+p.Tprog)
	if p.Kappa < cycleBodyRounds*perRound {
		t.Errorf("κ = %d cannot cover a 4-phase cycle needing %d bits",
			p.Kappa, cycleBodyRounds*perRound)
	}
}

func TestBitsFor(t *testing.T) {
	tests := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
	}
	for _, tt := range tests {
		if got := bitsFor(tt.n); got != tt.want {
			t.Errorf("bitsFor(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestStateString(t *testing.T) {
	for _, s := range []State{StateReceiving, StateSending, State(9)} {
		if s.String() == "" {
			t.Errorf("empty string for state %d", int(s))
		}
	}
}

func TestNoGlobalParameterDependence(t *testing.T) {
	// True locality: derivation depends only on (Δ, Δ′, r, ε). Two networks
	// with equal local bounds but wildly different sizes must get identical
	// schedules. (The function signature enforces this; the test documents
	// and pins it.)
	a, err := DeriveParams(32, 64, 1.5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DeriveParams(32, 64, 1.5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical local inputs produced different schedules")
	}
}
