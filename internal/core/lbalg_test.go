package core

import (
	"testing"

	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// buildLB wires LBAlg processes over a dual graph and returns the engine,
// the typed processes and the trace.
func buildLB(t testing.TB, d *dualgraph.Dual, p Params, s sim.LinkScheduler, env func([]Service) sim.Environment, seed uint64) (*sim.Engine, []*LBAlg) {
	t.Helper()
	procs := make([]*LBAlg, d.N())
	simProcs := make([]sim.Process, d.N())
	services := make([]Service, d.N())
	for u := range procs {
		procs[u] = NewLBAlg(p)
		simProcs[u] = procs[u]
		services[u] = procs[u]
	}
	var environment sim.Environment
	if env != nil {
		environment = env(services)
	}
	e, err := sim.New(sim.Config{Dual: d, Procs: simProcs, Sched: s, Env: environment, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e, procs
}

func testParams(t testing.TB, delta, deltaPrime int, eps float64) Params {
	t.Helper()
	p, err := DeriveParams(delta, deltaPrime, 1, eps)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// commitDirect installs a committed seed bypassing the preamble (the
// whitebox tests' stand-in for commitSeed) and decodes one phase of body
// coins from it, exactly as commitSeed does.
func commitDirect(l *LBAlg, seed *xrand.BitString) {
	l.committed = seed
	l.plan.decodeCoins(seed, &l.coins, l.plan.tprog)
}

func TestSingletonAckWithinBound(t *testing.T) {
	d, err := dualgraph.Abstract(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := testParams(t, 1, 1, 0.25)
	e, _ := buildLB(t, d, p, nil, func(procs []Service) sim.Environment {
		return NewSingleShotEnv(procs, []Send{{Node: 0, Round: 1, Payload: "solo"}})
	}, 1)
	e.Run(p.TAckBound() + p.PhaseLen())

	tr := e.Trace()
	bcasts := tr.ByKind(sim.EvBcast)
	acks := tr.ByKind(sim.EvAck)
	if len(bcasts) != 1 || len(acks) != 1 {
		t.Fatalf("bcasts=%d acks=%d, want 1 and 1", len(bcasts), len(acks))
	}
	if acks[0].MsgID != bcasts[0].MsgID {
		t.Error("ack names a different message")
	}
	latency := acks[0].Round - bcasts[0].Round
	if latency <= 0 || latency > p.TAckBound() {
		t.Errorf("ack latency %d outside (0, %d]", latency, p.TAckBound())
	}
}

func TestBcastWhileActiveRejected(t *testing.T) {
	d, err := dualgraph.Abstract(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := testParams(t, 1, 1, 0.25)
	e, procs := buildLB(t, d, p, nil, nil, 1)
	e.Run(1)
	if _, err := procs[0].Bcast("first"); err != nil {
		t.Fatalf("first bcast rejected: %v", err)
	}
	if _, err := procs[0].Bcast("second"); err == nil {
		t.Fatal("second bcast accepted while first active")
	}
	if !procs[0].Active() {
		t.Error("node not active after bcast")
	}
	if m, ok := procs[0].ActiveMessage(); !ok || m.Payload != "first" {
		t.Errorf("ActiveMessage = %v, %v", m, ok)
	}
}

func TestTwoNodeDelivery(t *testing.T) {
	// Sender 0, receiver 1, reliable edge: the receiver should recv the
	// message before the ack in most trials (reliability ≥ 1−ε).
	d, err := dualgraph.Abstract(2, []dualgraph.Edge{{U: 0, V: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := testParams(t, 2, 2, 0.2)
	const trials = 10
	delivered := 0
	for trial := uint64(0); trial < trials; trial++ {
		e, _ := buildLB(t, d, p, nil, func(procs []Service) sim.Environment {
			return NewSingleShotEnv(procs, []Send{{Node: 0, Round: 1, Payload: "payload"}})
		}, trial)
		e.Run(p.TAckBound() + p.PhaseLen())
		tr := e.Trace()
		acks := tr.ByKind(sim.EvAck)
		if len(acks) != 1 {
			t.Fatalf("trial %d: %d acks", trial, len(acks))
		}
		recvs := tr.ByKind(sim.EvRecv)
		for _, rv := range recvs {
			if rv.Node == 1 && rv.Round <= acks[0].Round {
				delivered++
				break
			}
		}
	}
	if delivered < trials*8/10 {
		t.Errorf("delivered before ack in %d/%d trials, want ≥ %d", delivered, trials, trials*8/10)
	}
}

func TestRecvDeduplicated(t *testing.T) {
	d, err := dualgraph.Abstract(2, []dualgraph.Edge{{U: 0, V: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := testParams(t, 2, 2, 0.25)
	e, _ := buildLB(t, d, p, nil, func(procs []Service) sim.Environment {
		return NewSingleShotEnv(procs, []Send{{Node: 0, Round: 1, Payload: "x"}})
	}, 3)
	e.Run(p.TAckBound())
	seen := map[sim.MsgID]map[int]int{}
	for _, rv := range e.Trace().ByKind(sim.EvRecv) {
		if seen[rv.MsgID] == nil {
			seen[rv.MsgID] = map[int]int{}
		}
		seen[rv.MsgID][rv.Node]++
		if seen[rv.MsgID][rv.Node] > 1 {
			t.Fatalf("node %d emitted multiple recv outputs for %v", rv.Node, rv.MsgID)
		}
	}
}

func TestValidityOnTrace(t *testing.T) {
	// Every recv(m)_u must happen while some G′ neighbor is actively
	// broadcasting m (checked in depth by lbspec; spot-check here).
	rng := xrand.New(4)
	d, err := dualgraph.SingleHopCluster(6, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	p := testParams(t, d.Delta(), d.DeltaPrime(), 0.25)
	e, _ := buildLB(t, d, p, sched.Never{}, func(procs []Service) sim.Environment {
		return NewSaturatingEnv(procs, []int{0, 1})
	}, 5)
	e.Run(3 * p.PhaseLen())

	active := map[sim.MsgID][2]int{} // msg → [bcast round, ack round]
	for ev := range e.Trace().Events() {
		switch ev.Kind {
		case sim.EvBcast:
			active[ev.MsgID] = [2]int{ev.Round, 1 << 30}
		case sim.EvAck:
			span := active[ev.MsgID]
			span[1] = ev.Round
			active[ev.MsgID] = span
		}
	}
	for _, rv := range e.Trace().ByKind(sim.EvRecv) {
		span, ok := active[rv.MsgID]
		if !ok {
			t.Fatalf("recv of unknown message %v", rv.MsgID)
		}
		if rv.Round < span[0] || rv.Round > span[1] {
			t.Errorf("recv of %v at round %d outside active span %v", rv.MsgID, rv.Round, span)
		}
		if rv.From != rv.MsgID.Src() {
			t.Errorf("recv of %v from %d, want source %d", rv.MsgID, rv.From, rv.MsgID.Src())
		}
	}
}

func TestOwnerGroupLockstep(t *testing.T) {
	// Two sending nodes holding clones of the same committed seed must make
	// identical participation decisions and consume identical bit counts in
	// every body round.
	p := testParams(t, 8, 8, 0.1)
	shared := xrand.NewBitString(xrand.New(9), p.Kappa)

	mk := func(id int, rngSeed uint64) *LBAlg {
		l := NewLBAlg(p)
		l.Init(&sim.NodeEnv{ID: id, Delta: 8, DeltaPrime: 8, R: 1, Rng: xrand.New(rngSeed), Rec: nopRec{}})
		l.pending = &Message{ID: sim.NewMsgID(id, 1)}
		l.state = StateSending
		c := shared.Clone()
		c.Reset()
		commitDirect(l, c)
		return l
	}
	a, b := mk(1, 100), mk(2, 200)
	// Identical seed content must decode to an identical coin scratch and
	// consume identical bit counts — the structural form of the per-round
	// cursor lockstep the incremental implementation maintained.
	if len(a.coins.b) != p.Tprog || len(b.coins.b) != p.Tprog {
		t.Fatalf("decoded %d and %d body rounds, want Tprog=%d", len(a.coins.b), len(b.coins.b), p.Tprog)
	}
	participants := 0
	for j := range a.coins.b {
		if a.coins.b[j] != b.coins.b[j] {
			t.Fatalf("round %d: group members decoded b=%d vs b=%d", j, a.coins.b[j], b.coins.b[j])
		}
		if a.coins.b[j] != 0 {
			participants++
		}
	}
	if a.committed.Remaining() != b.committed.Remaining() {
		t.Fatalf("group members consumed different totals: %d vs %d bits remain",
			a.committed.Remaining(), b.committed.Remaining())
	}
	consumed := p.Kappa - a.committed.Remaining()
	if want := p.Tprog*p.K1 + participants*p.K2; consumed != want {
		t.Fatalf("phase decode consumed %d bits, want Tprog·K1 + participants·K2 = %d", consumed, want)
	}
	for round := 0; round < p.Tprog; round++ {
		a.bodyRound(round)
		b.bodyRound(round)
	}
	pa, _ := a.BodyStats()
	pb, _ := b.BodyStats()
	if pa != pb {
		t.Errorf("group members participated %d vs %d times", pa, pb)
	}
	if pa != participants {
		t.Errorf("participations %d disagree with decoded participant rounds %d", pa, participants)
	}
	if pa == 0 {
		t.Error("group never participated across a full phase body (probability ≈ (1−2^{-K1})^Tprog, should be negligible)")
	}
}

type nopRec struct{}

func (nopRec) Record(sim.Event) {}

func TestDifferentGroupsDiverge(t *testing.T) {
	// Nodes holding different seeds should not be in lockstep.
	p := testParams(t, 8, 8, 0.1)
	r := xrand.New(10)
	mk := func(id int, seed *xrand.BitString) *LBAlg {
		l := NewLBAlg(p)
		l.Init(&sim.NodeEnv{ID: id, Delta: 8, DeltaPrime: 8, R: 1, Rng: xrand.New(uint64(id)), Rec: nopRec{}})
		l.pending = &Message{ID: sim.NewMsgID(id, 1)}
		l.state = StateSending
		commitDirect(l, seed)
		return l
	}
	a := mk(1, xrand.NewBitString(r, p.Kappa))
	b := mk(2, xrand.NewBitString(r, p.Kappa))
	same := true
	for round := 0; round < p.Tprog; round++ {
		if a.coins.b[round] != b.coins.b[round] {
			same = false
			break
		}
	}
	if same {
		t.Error("independent seeds produced identical participation patterns over a full phase (astronomically unlikely)")
	}
}

func TestDeterministicExecution(t *testing.T) {
	rng := xrand.New(11)
	d, err := dualgraph.SingleHopCluster(8, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	p := testParams(t, d.Delta(), d.DeltaPrime(), 0.25)
	run := func() (int, int) {
		e, _ := buildLB(t, d, p, sched.Random{P: 0.5, Seed: 2}, func(procs []Service) sim.Environment {
			return NewSaturatingEnv(procs, []int{0})
		}, 42)
		e.Run(2 * p.PhaseLen())
		return e.Trace().Transmissions, e.Trace().Len()
	}
	t1, e1 := run()
	t2, e2 := run()
	if t1 != t2 || e1 != e2 {
		t.Errorf("executions diverged: (%d,%d) vs (%d,%d)", t1, e1, t2, e2)
	}
}

func TestProgressOnCluster(t *testing.T) {
	// A receiver whose reliable neighbor is saturated should receive
	// something in nearly every phase.
	rng := xrand.New(12)
	d, err := dualgraph.SingleHopCluster(8, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	p := testParams(t, d.Delta(), d.DeltaPrime(), 0.2)
	e, _ := buildLB(t, d, p, sched.Never{}, func(procs []Service) sim.Environment {
		return NewSaturatingEnv(procs, []int{0, 1, 2})
	}, 13)
	const phases = 6
	e.Run(phases * p.PhaseLen())

	// Count phases in which node 7 (a pure receiver) heard at least one
	// message (channel-level receptions, matching the progress property).
	got := map[int]bool{}
	for _, rv := range e.Trace().ByKind(sim.EvHear) {
		if rv.Node == 7 {
			phase, _ := p.PhaseOf(rv.Round)
			got[phase] = true
		}
	}
	if len(got) < phases-1 {
		t.Errorf("receiver made progress in %d/%d phases", len(got), phases)
	}
}

func TestSaturatingEnvKeepsSenderActive(t *testing.T) {
	d, err := dualgraph.Abstract(2, []dualgraph.Edge{{U: 0, V: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := testParams(t, 2, 2, 0.25)
	var env *SaturatingEnv
	e, procs := buildLB(t, d, p, nil, func(procs []Service) sim.Environment {
		env = NewSaturatingEnv(procs, []int{0})
		return env
	}, 14)
	e.Run(3*p.TAckBound() + 2)
	if env.Acks(0) < 2 {
		t.Errorf("saturated sender acked only %d times", env.Acks(0))
	}
	// The sender must be active again right after each ack.
	if !procs[0].Active() {
		t.Error("saturated sender idle at measurement point")
	}
}

func TestSingleShotEnvDefersWhileBusy(t *testing.T) {
	d, err := dualgraph.Abstract(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := testParams(t, 1, 1, 0.25)
	e, _ := buildLB(t, d, p, nil, func(procs []Service) sim.Environment {
		return NewSingleShotEnv(procs, []Send{
			{Node: 0, Round: 1, Payload: "a"},
			{Node: 0, Round: 2, Payload: "b"}, // arrives while "a" is active
		})
	}, 15)
	e.Run(3 * p.TAckBound())
	tr := e.Trace()
	if got := len(tr.ByKind(sim.EvBcast)); got != 2 {
		t.Fatalf("%d bcasts issued, want 2 (deferred, not dropped)", got)
	}
	acks := tr.ByKind(sim.EvAck)
	if len(acks) != 2 {
		t.Fatalf("%d acks", len(acks))
	}
	// Second bcast must postdate first ack (environment well-formedness).
	bcasts := tr.ByKind(sim.EvBcast)
	if bcasts[1].Round <= acks[0].Round {
		t.Errorf("second bcast at %d before first ack at %d", bcasts[1].Round, acks[0].Round)
	}
}

func TestAblationSeedEveryK(t *testing.T) {
	// k = 2: seeds refresh every other phase; the service must still
	// deliver and acknowledge.
	rng := xrand.New(16)
	d, err := dualgraph.SingleHopCluster(6, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := DeriveParams(d.Delta(), d.DeltaPrime(), 1, 0.25, WithSeedEveryKPhases(2))
	if err != nil {
		t.Fatal(err)
	}
	e, _ := buildLB(t, d, p, sched.Never{}, func(procs []Service) sim.Environment {
		return NewSaturatingEnv(procs, []int{0})
	}, 17)
	e.Run(5 * p.PhaseLen())
	tr := e.Trace()
	if len(tr.ByKind(sim.EvRecv)) == 0 {
		t.Error("no deliveries under k=2 seed refresh")
	}
	// Receivers must still see deliveries during reclaimed preamble slots
	// of non-refresh phases at least occasionally; just assert the system
	// transmits during those phases.
	if tr.Transmissions == 0 {
		t.Error("no transmissions at all")
	}
}

func TestBodyStatsAccounting(t *testing.T) {
	p := testParams(t, 4, 4, 0.25)
	l := NewLBAlg(p)
	l.Init(&sim.NodeEnv{ID: 0, Delta: 4, DeltaPrime: 4, R: 1, Rng: xrand.New(1), Rec: nopRec{}})
	part, tx := l.BodyStats()
	if part != 0 || tx != 0 {
		t.Error("fresh node has nonzero stats")
	}
	// Not sending: body rounds must not count participations.
	commitDirect(l, xrand.NewBitString(xrand.New(2), p.Kappa))
	for i := 0; i < 50; i++ {
		if _, sent := l.bodyRound(i % p.Tprog); sent {
			t.Fatal("receiver transmitted")
		}
	}
	part, _ = l.BodyStats()
	if part != 0 {
		t.Error("receiver accumulated participations")
	}
}
