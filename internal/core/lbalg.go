package core

import (
	"fmt"

	"lbcast/internal/seedagree"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// Message is a payload in flight through the local broadcast service. IDs
// encode the source, keeping the per-node message sets M_u pairwise
// disjoint as the problem definition requires.
type Message struct {
	ID      sim.MsgID
	Payload any
}

// DataMsg is the on-air frame of a body-round transmission.
type DataMsg struct {
	Msg Message
}

// State is an LBAlg node's phase-granular state.
type State int

const (
	// StateReceiving nodes only listen during body rounds.
	StateReceiving State = iota + 1
	// StateSending nodes compete for the channel during body rounds.
	StateSending
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateReceiving:
		return "receiving"
	case StateSending:
		return "sending"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Service is the bcast/ack/recv interface of the LB problem, shared by
// LBAlg and by the baseline algorithms it is compared against, so that
// environments and experiment harnesses treat them interchangeably.
type Service interface {
	sim.Process
	// Bcast accepts a bcast(m) input; it fails if the node is still
	// broadcasting a previous message (environment well-formedness).
	Bcast(payload any) (sim.MsgID, error)
	// Active reports whether a broadcast is in progress (bcast accepted,
	// ack not yet generated).
	Active() bool
	// SetOnAck and SetOnRecv register the output callbacks.
	SetOnAck(func(Message))
	SetOnRecv(func(Message, int))
}

// LBAlg is the local broadcast process at one node. It implements
// sim.Process; the environment interacts with it through Bcast and the
// OnAck/OnRecv callbacks, mirroring the bcast/ack/recv interface of the
// LB(t_ack, t_prog, ε) problem.
type LBAlg struct {
	// The leading fields are the per-round hot set, ordered so the
	// receiver-path loads in Transmit/Receive (position memo, phase
	// boundaries, state, coin scratch header) share the node's first cache
	// lines; the wide Params value and the callback/bookkeeping tail live
	// behind them.

	// memoT/memoPhase/memoPos track the current round's phase coordinates
	// incrementally: rounds arrive in order, so the common case is a +1 step
	// (or a repeat from Receive after Transmit) instead of a div/mod.
	// curPreLen is the memoised phase's preamble cut taken from its slot
	// table (positions below it are RoundPreamble slots, positions at or
	// above are RoundBody slots with Body = pos − curPreLen), refreshed
	// whenever the phase advances; phaseLen mirrors plan.phaseLen.
	memoT, memoPhase, memoPos int
	curPreLen                 int
	phaseLen                  int

	state   State
	pending *Message // accepted bcast input not yet acknowledged
	// seedIdle caches seed.Idle(): once the preamble state machine has
	// decided and is not advertising, its Transmit/Receive are no-ops (no
	// private coin draws), so the calls are skipped for the rest of the
	// preamble.
	seedIdle bool
	// coins is the per-phase scratch of shared coins decoded from committed
	// (see PhasePlan.decodeCoins); body rounds read it instead of consuming
	// from the seed. Only sending nodes decode — a receiver's body round
	// never reads the values — so coinsBehind counts the body rounds a
	// receiving node owes its cursor before it may decode again (relevant
	// only when one commitment spans a SeedEveryKPhases > 1 cycle; with
	// k = 1 the cursor rewinds at every commit and the debt is simply
	// dropped).
	coins       phaseCoins
	coinsBehind int

	env *sim.NodeEnv

	// plan is the precomputed phase schedule (shared across nodes when
	// constructed with NewLBAlgWithPlan): per-position slot tables plus the
	// seed agreement schedule.
	plan *PhasePlan

	seed      *seedagree.Alg
	committed *xrand.BitString // this phase's committed seed (private copy)
	// committedBuf is the reusable backing buffer for committed; commitSeed
	// overwrites it in place each phase instead of cloning.
	committedBuf *xrand.BitString

	frame          any  // pending's on-air DataMsg, boxed once at Bcast
	sendingStarted bool // pending has entered its sending phases
	phasesLeft     int  // full sending phases remaining for pending

	p Params

	seen map[sim.MsgID]struct{}
	seq  int

	// OnAck is invoked when an ack(m)_u output is generated (end of the
	// last sending phase). Optional.
	OnAck func(m Message)
	// OnRecv is invoked on each recv(m)_u output: the first reception of a
	// message. Optional.
	OnRecv func(m Message, from int)
	// RecordHears controls whether every channel-level data reception is
	// recorded as an EvHear event (needed by the progress checker, which is
	// defined over receptions rather than recv outputs). On by default;
	// large sweeps that only need recv/ack events can disable it.
	RecordHears bool

	// participations and transmissions count body-round decisions, for the
	// E-RECV-PROB instrumentation.
	participations, transmissions int
}

var _ Service = (*LBAlg)(nil)

// SetOnAck implements Service.
func (l *LBAlg) SetOnAck(fn func(Message)) { l.OnAck = fn }

// SetOnRecv implements Service.
func (l *LBAlg) SetOnRecv(fn func(Message, int)) { l.OnRecv = fn }

// NewLBAlg creates the process with the given derived parameters, deriving
// a private PhasePlan. Callers building one process per node should compute
// the plan once with NewPhasePlan and share it via NewLBAlgWithPlan.
func NewLBAlg(p Params) *LBAlg {
	return NewLBAlgWithPlan(NewPhasePlan(p))
}

// NewLBAlgWithPlan creates the process over a shared precomputed phase
// schedule, which carries the Params it was derived from. The plan is
// read-only to the process, so any number of nodes may share one.
func NewLBAlgWithPlan(plan *PhasePlan) *LBAlg {
	return &LBAlg{p: plan.params, plan: plan, state: StateReceiving,
		memoPhase: 1, memoPos: -1,
		curPreLen: plan.preambleLen(1), phaseLen: plan.phaseLen,
		seen: make(map[sim.MsgID]struct{}), RecordHears: true}
}

// Init implements sim.Process.
func (l *LBAlg) Init(env *sim.NodeEnv) {
	l.env = env
	l.seed = seedagree.NewAlgWithPlan(l.plan.Seed, env.ID, env.Rng)
}

// Params returns the node's schedule parameters.
func (l *LBAlg) Params() Params { return l.p }

// State returns the node's current phase state.
func (l *LBAlg) State() State { return l.state }

// Active reports whether the node is actively broadcasting some message: a
// bcast input was received whose ack has not yet been generated.
func (l *LBAlg) Active() bool { return l.pending != nil }

// ActiveMessage returns the message being broadcast, if Active.
func (l *LBAlg) ActiveMessage() (Message, bool) {
	if l.pending == nil {
		return Message{}, false
	}
	return *l.pending, true
}

// Bcast accepts a bcast(m)_u input from the environment. Per the problem's
// environment well-formedness, a second bcast may only be issued after the
// previous one's ack; violations are rejected with an error.
func (l *LBAlg) Bcast(payload any) (sim.MsgID, error) {
	if l.pending != nil {
		return 0, fmt.Errorf("core: node %d already broadcasting %v", l.env.ID, l.pending.ID)
	}
	l.seq++
	m := Message{ID: sim.NewMsgID(l.env.ID, l.seq), Payload: payload}
	l.pending = &m
	// Box the on-air frame once per broadcast; body rounds then transmit
	// the same interface value, so steady-state rounds never allocate.
	l.frame = DataMsg{Msg: m}
	l.sendingStarted = false
	// Round 0 is stamped with the current round by the trace drain.
	l.env.Rec.Record(sim.Event{Node: l.env.ID, Kind: sim.EvBcast, MsgID: m.ID, Payload: payload})
	return m.ID, nil
}

// phasePos resolves round t to its (phase, pos) coordinates through the
// incremental cursor: a repeat of the memoised round (Receive after
// Transmit) is free, the sequential +1 step is an increment-and-wrap, and
// only an out-of-order t pays the plan's div/mod.
// advanceRound is the position cursor's slow path, shared by Transmit and
// Receive (which hand-inline the memo repeat and the mid-phase +1 step —
// they are interface-called, so helper calls on the per-round path are pure
// overhead): cross into the next phase for the sequential next round, or
// re-derive the coordinates from the plan for an out-of-order t; either way
// the per-phase slot-table cache (curPreLen) is refreshed.
func (l *LBAlg) advanceRound(t int) int {
	if t == l.memoT+1 {
		l.memoPos++
		if l.memoPos == l.phaseLen {
			l.memoPos = 0
			l.memoPhase++
			l.curPreLen = l.plan.preambleLen(l.memoPhase)
		}
	} else {
		l.memoPhase, l.memoPos = l.plan.PhaseOf(t)
		l.curPreLen = l.plan.preambleLen(l.memoPhase)
	}
	l.memoT = t
	return l.memoPos
}

// Transmit implements sim.Process: resolve the round's slot in the phase
// plan and dispatch to the preamble state machine or the decoded body
// coins.
func (l *LBAlg) Transmit(t int) (any, bool) {
	// Resolve the round position: the sequential +1 step inline, phase
	// crossings and out-of-order rounds through advanceRound.
	pos := l.memoPos + 1
	if t != l.memoT+1 || pos == l.phaseLen {
		pos = l.advanceRound(t)
	} else {
		l.memoT, l.memoPos = t, pos
	}

	if pos == 0 {
		l.beginPhase(l.memoPhase)
	}

	if pos < l.curPreLen { // a RoundPreamble slot of this phase's table
		if l.seedIdle {
			return nil, false // decided, not advertising: a no-op round
		}
		payload, tx := l.seed.Transmit(pos + 1)
		l.seedIdle = l.seed.Idle()
		return payload, tx
	}
	// A RoundBody slot, with the table's scratch index pos − curPreLen
	// (under the Section 4.2 variant, skipped preamble slots are body
	// slots too — curPreLen is 0 there). This is bodyRound, hand-inlined.
	if !l.coins.valid || l.state != StateSending || l.pending == nil {
		return nil, false
	}
	j := pos - l.curPreLen
	if j >= len(l.coins.b) {
		return nil, false // out-of-order jump past the decoded span; fail closed
	}
	b := l.coins.b[j]
	if b == 0 {
		return nil, false // non-participant round for this owner group
	}
	return l.participate(int(b))
}

// beginPhase performs start-of-phase bookkeeping: pending broadcasts enter
// the sending state, the preamble state machine restarts, and
// skipped-preamble phases (Section 4.2 variant) decode their body coins
// from the persisting commitment.
func (l *LBAlg) beginPhase(phase int) {
	if l.pending != nil && !l.sendingStarted {
		l.sendingStarted = true
		l.state = StateSending
		l.phasesLeft = l.p.Tack
	}
	if l.plan.RunsPreamble(phase) {
		l.seed.Reset()
		l.seedIdle = false
		l.committed = nil
		l.coins.invalidate()
		l.coinsBehind = 0
	} else if l.committed != nil {
		// The whole phase is body rounds on the previous commitment. A
		// sending node settles any cursor debt from receiver phases, then
		// decodes this phase's coins from where the cursor left off; a
		// receiver just grows the debt (its body rounds never read the
		// values).
		rounds := l.plan.BodyRounds(phase)
		if l.state == StateSending {
			if l.coinsBehind > 0 {
				l.plan.skipCoins(l.committed, l.coinsBehind)
				l.coinsBehind = 0
			}
			l.plan.decodeCoins(l.committed, &l.coins, rounds)
		} else {
			l.coins.invalidate()
			l.coinsBehind += rounds
		}
	}
}

// bodyRound implements the j-th body round of the current phase (Transmit
// hand-inlines this logic; the method remains the whitebox unit under
// test). The three-step logic of Section 4.2 — group participation coin
// (K1 shared bits, participate iff all zero) and shared probability
// selection b ∈ [log Δ] (K2 shared bits) — was resolved for the whole
// phase by decodeCoins when the seed was committed, identically for every
// holder of the owner's seed (which is what kept per-round cursors aligned
// in the incremental version). What remains per round is the scratch
// lookup and, for sending participants, the private broadcast coin with
// probability 2^{−b}.
func (l *LBAlg) bodyRound(j int) (any, bool) {
	// The condition is the incremental implementation's, reordered (it
	// gates the same participations count and the same private coin
	// draws): a committed scratch, a participant round, and the sending
	// state.
	if !l.coins.valid || l.state != StateSending || l.pending == nil {
		return nil, false
	}
	if j >= len(l.coins.b) {
		return nil, false // beyond the decoded span; fail closed
	}
	b := l.coins.b[j]
	if b == 0 {
		return nil, false // non-participant round for this owner group
	}
	return l.participate(int(b))
}

// participate is the (rare, ≈2^{−K1}) participant tail of a sending body
// round, split out so bodyRound's common path inlines: draw the private
// broadcast coin with probability 2^{−b}.
func (l *LBAlg) participate(b int) (any, bool) {
	l.participations++
	if l.env.Rng.Bits(b) != 0 {
		return nil, false
	}
	l.transmissions++
	return l.frame, true
}

// Receive implements sim.Process.
func (l *LBAlg) Receive(t, from int, payload any, ok bool) {
	// The engine calls Receive for the round Transmit just memoised, so
	// the repeat hit is inline and anything else re-derives.
	pos := l.memoPos
	if t != l.memoT {
		pos = l.advanceRound(t)
	}

	if pos < l.curPreLen { // a RoundPreamble slot of this phase's table
		if !l.seedIdle {
			l.seed.Receive(pos+1, payload, ok)
			l.seedIdle = l.seed.Idle()
		}
		if pos == l.curPreLen-1 {
			l.commitSeed()
		}
		return
	}

	// Body rounds: all states deliver first receptions as recv outputs.
	if ok {
		if dm, isData := payload.(DataMsg); isData {
			l.deliver(t, from, dm.Msg)
		}
	}

	// End of phase: sending nodes consume one of their Tack phases.
	if pos == l.phaseLen-1 && l.state == StateSending {
		l.phasesLeft--
		if l.phasesLeft <= 0 {
			l.ack(t)
		}
	}
}

// commitSeed adopts this phase's seed agreement decision. Each node copies
// the committed bit string into its own reusable buffer so contents stay
// identical within an owner group while consumption advances independently;
// the copy must happen here, before any owner refills its seed for the next
// preamble. The phase's remaining body rounds (Tprog of them) have their
// coins decoded immediately — same bits, same order as the incremental
// per-round consumption.
func (l *LBAlg) commitSeed() {
	l.seed.Finalize() // defensive; Receive at Ts already finalizes
	d := l.seed.Decision()
	if l.committedBuf == nil {
		l.committedBuf = d.Seed.Clone()
	} else {
		l.committedBuf.CopyFrom(d.Seed)
	}
	l.committedBuf.Reset()
	l.committed = l.committedBuf
	l.coinsBehind = 0
	if l.state == StateSending {
		l.plan.decodeCoins(l.committed, &l.coins, l.plan.tprog)
	} else {
		// Receivers never read the decoded values; leave the scratch
		// invalid and record the debt in case this commitment spans a
		// k > 1 cycle and the node starts sending in a later phase.
		l.coins.invalidate()
		l.coinsBehind = l.plan.tprog
	}
}

// deliver records the channel-level reception and generates the recv(m)_u
// output on first reception.
func (l *LBAlg) deliver(t, from int, m Message) {
	if l.RecordHears {
		l.env.Rec.Record(sim.Event{Round: t, Node: l.env.ID, Kind: sim.EvHear, From: from, MsgID: m.ID})
	}
	if _, dup := l.seen[m.ID]; dup {
		return
	}
	l.seen[m.ID] = struct{}{}
	l.env.Rec.Record(sim.Event{Round: t, Node: l.env.ID, Kind: sim.EvRecv, From: from, MsgID: m.ID})
	if l.OnRecv != nil {
		l.OnRecv(m, from)
	}
}

// ack generates the ack(m)_u output and returns to the receiving state.
func (l *LBAlg) ack(t int) {
	m := *l.pending
	l.pending = nil
	l.frame = nil
	l.sendingStarted = false
	l.state = StateReceiving
	l.env.Rec.Record(sim.Event{Round: t, Node: l.env.ID, Kind: sim.EvAck, MsgID: m.ID})
	if l.OnAck != nil {
		l.OnAck(m)
	}
}

// BodyStats returns how many body rounds this node participated in and how
// many it transmitted in (E-RECV-PROB instrumentation).
func (l *LBAlg) BodyStats() (participations, transmissions int) {
	return l.participations, l.transmissions
}
