package core

import (
	"fmt"

	"lbcast/internal/seedagree"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// Message is a payload in flight through the local broadcast service. IDs
// encode the source, keeping the per-node message sets M_u pairwise
// disjoint as the problem definition requires.
type Message struct {
	ID      sim.MsgID
	Payload any
}

// DataMsg is the on-air frame of a body-round transmission.
type DataMsg struct {
	Msg Message
}

// State is an LBAlg node's phase-granular state.
type State int

const (
	// StateReceiving nodes only listen during body rounds.
	StateReceiving State = iota + 1
	// StateSending nodes compete for the channel during body rounds.
	StateSending
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateReceiving:
		return "receiving"
	case StateSending:
		return "sending"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Service is the bcast/ack/recv interface of the LB problem, shared by
// LBAlg and by the baseline algorithms it is compared against, so that
// environments and experiment harnesses treat them interchangeably.
type Service interface {
	sim.Process
	// Bcast accepts a bcast(m) input; it fails if the node is still
	// broadcasting a previous message (environment well-formedness).
	Bcast(payload any) (sim.MsgID, error)
	// Active reports whether a broadcast is in progress (bcast accepted,
	// ack not yet generated).
	Active() bool
	// SetOnAck and SetOnRecv register the output callbacks.
	SetOnAck(func(Message))
	SetOnRecv(func(Message, int))
}

// LBAlg is the local broadcast process at one node. It implements
// sim.Process; the environment interacts with it through Bcast and the
// OnAck/OnRecv callbacks, mirroring the bcast/ack/recv interface of the
// LB(t_ack, t_prog, ε) problem.
type LBAlg struct {
	p   Params
	env *sim.NodeEnv

	// phaseLen caches p.PhaseLen() for the once-per-round phase arithmetic
	// (Params methods copy the whole struct per call).
	phaseLen int

	seed      *seedagree.Alg
	committed *xrand.BitString // this phase's committed seed (private copy)
	// committedBuf is the reusable backing buffer for committed; commitSeed
	// overwrites it in place each phase instead of cloning.
	committedBuf *xrand.BitString

	state          State
	pending        *Message // accepted bcast input not yet acknowledged
	frame          any      // pending's on-air DataMsg, boxed once at Bcast
	sendingStarted bool     // pending has entered its sending phases
	phasesLeft     int      // full sending phases remaining for pending

	seen map[sim.MsgID]struct{}
	seq  int

	// OnAck is invoked when an ack(m)_u output is generated (end of the
	// last sending phase). Optional.
	OnAck func(m Message)
	// OnRecv is invoked on each recv(m)_u output: the first reception of a
	// message. Optional.
	OnRecv func(m Message, from int)
	// RecordHears controls whether every channel-level data reception is
	// recorded as an EvHear event (needed by the progress checker, which is
	// defined over receptions rather than recv outputs). On by default;
	// large sweeps that only need recv/ack events can disable it.
	RecordHears bool

	// participations and transmissions count body-round decisions, for the
	// E-RECV-PROB instrumentation.
	participations, transmissions int
}

var _ Service = (*LBAlg)(nil)

// SetOnAck implements Service.
func (l *LBAlg) SetOnAck(fn func(Message)) { l.OnAck = fn }

// SetOnRecv implements Service.
func (l *LBAlg) SetOnRecv(fn func(Message, int)) { l.OnRecv = fn }

// NewLBAlg creates the process with the given derived parameters.
func NewLBAlg(p Params) *LBAlg {
	return &LBAlg{p: p, phaseLen: p.PhaseLen(), state: StateReceiving,
		seen: make(map[sim.MsgID]struct{}), RecordHears: true}
}

// Init implements sim.Process.
func (l *LBAlg) Init(env *sim.NodeEnv) {
	l.env = env
	l.seed = seedagree.NewAlg(l.p.SeedParams, env.ID, env.Rng)
}

// Params returns the node's schedule parameters.
func (l *LBAlg) Params() Params { return l.p }

// State returns the node's current phase state.
func (l *LBAlg) State() State { return l.state }

// Active reports whether the node is actively broadcasting some message: a
// bcast input was received whose ack has not yet been generated.
func (l *LBAlg) Active() bool { return l.pending != nil }

// ActiveMessage returns the message being broadcast, if Active.
func (l *LBAlg) ActiveMessage() (Message, bool) {
	if l.pending == nil {
		return Message{}, false
	}
	return *l.pending, true
}

// Bcast accepts a bcast(m)_u input from the environment. Per the problem's
// environment well-formedness, a second bcast may only be issued after the
// previous one's ack; violations are rejected with an error.
func (l *LBAlg) Bcast(payload any) (sim.MsgID, error) {
	if l.pending != nil {
		return 0, fmt.Errorf("core: node %d already broadcasting %v", l.env.ID, l.pending.ID)
	}
	l.seq++
	m := Message{ID: sim.NewMsgID(l.env.ID, l.seq), Payload: payload}
	l.pending = &m
	// Box the on-air frame once per broadcast; body rounds then transmit
	// the same interface value, so steady-state rounds never allocate.
	l.frame = DataMsg{Msg: m}
	l.sendingStarted = false
	// Round 0 is stamped with the current round by the trace drain.
	l.env.Rec.Record(sim.Event{Node: l.env.ID, Kind: sim.EvBcast, MsgID: m.ID, Payload: payload})
	return m.ID, nil
}

// phaseOf is Params.PhaseOf over the cached phase length.
func (l *LBAlg) phaseOf(t int) (phase, pos int) {
	return (t-1)/l.phaseLen + 1, (t - 1) % l.phaseLen
}

// Transmit implements sim.Process.
func (l *LBAlg) Transmit(t int) (any, bool) {
	phase, pos := l.phaseOf(t)

	if pos == 0 {
		l.beginPhase(phase)
	}

	if pos < l.p.Ts {
		if l.runsPreamble(phase) {
			return l.seed.Transmit(pos + 1)
		}
		// Section 4.2 variant: skipped preamble slots become body rounds.
		return l.bodyRound()
	}
	return l.bodyRound()
}

// beginPhase performs start-of-phase bookkeeping: pending broadcasts enter
// the sending state and the preamble state machine restarts.
func (l *LBAlg) beginPhase(phase int) {
	if l.pending != nil && !l.sendingStarted {
		l.sendingStarted = true
		l.state = StateSending
		l.phasesLeft = l.p.Tack
	}
	if l.runsPreamble(phase) {
		l.seed.Reset()
		l.committed = nil
	}
}

// runsPreamble reports whether seed agreement runs in the given phase
// (always true for the paper's algorithm; every k-th phase under the
// Section 4.2 ablation).
func (l *LBAlg) runsPreamble(phase int) bool {
	return (phase-1)%l.p.SeedEveryKPhases == 0
}

// bodyRound implements one body round. Every node holding a committed seed
// consumes the round's shared bits — even pure receivers — so that all
// holders of one owner's seed keep their cursors aligned no matter when
// they enter the sending state. Senders then apply the three-step logic of
// Section 4.2: group participation coin (K1 shared bits, participate iff
// all zero), shared probability selection b ∈ [log Δ] (K2 shared bits), and
// a private broadcast coin with probability 2^{−b}.
func (l *LBAlg) bodyRound() (any, bool) {
	if l.committed == nil {
		return nil, false
	}
	v, ok := l.committed.Consume(l.p.K1)
	if !ok {
		return nil, false // κ sizing makes this unreachable; fail closed
	}
	if v != 0 {
		return nil, false // non-participant round for this owner group
	}
	bv, ok := l.committed.Consume(l.p.K2)
	if !ok {
		return nil, false
	}
	if l.state != StateSending || l.pending == nil {
		return nil, false
	}
	l.participations++
	b := 1 + int(bv)%l.p.LogDelta
	if l.env.Rng.Bits(b) != 0 {
		return nil, false
	}
	l.transmissions++
	return l.frame, true
}

// Receive implements sim.Process.
func (l *LBAlg) Receive(t, from int, payload any, ok bool) {
	phase, pos := l.phaseOf(t)

	if pos < l.p.Ts && l.runsPreamble(phase) {
		l.seed.Receive(pos+1, payload, ok)
		if pos == l.p.Ts-1 {
			l.commitSeed()
		}
		return
	}

	// Body rounds: all states deliver first receptions as recv outputs.
	if ok {
		if dm, isData := payload.(DataMsg); isData {
			l.deliver(t, from, dm.Msg)
		}
	}

	// End of phase: sending nodes consume one of their Tack phases.
	if pos == l.phaseLen-1 && l.state == StateSending {
		l.phasesLeft--
		if l.phasesLeft <= 0 {
			l.ack(t)
		}
	}
}

// commitSeed adopts this phase's seed agreement decision. Each node copies
// the committed bit string into its own reusable buffer so cursors advance
// independently while contents stay identical within an owner group; the
// copy must happen here, before any owner refills its seed for the next
// preamble.
func (l *LBAlg) commitSeed() {
	l.seed.Finalize() // defensive; Receive at Ts already finalizes
	d := l.seed.Decision()
	if l.committedBuf == nil {
		l.committedBuf = d.Seed.Clone()
	} else {
		l.committedBuf.CopyFrom(d.Seed)
	}
	l.committedBuf.Reset()
	l.committed = l.committedBuf
}

// deliver records the channel-level reception and generates the recv(m)_u
// output on first reception.
func (l *LBAlg) deliver(t, from int, m Message) {
	if l.RecordHears {
		l.env.Rec.Record(sim.Event{Round: t, Node: l.env.ID, Kind: sim.EvHear, From: from, MsgID: m.ID})
	}
	if _, dup := l.seen[m.ID]; dup {
		return
	}
	l.seen[m.ID] = struct{}{}
	l.env.Rec.Record(sim.Event{Round: t, Node: l.env.ID, Kind: sim.EvRecv, From: from, MsgID: m.ID})
	if l.OnRecv != nil {
		l.OnRecv(m, from)
	}
}

// ack generates the ack(m)_u output and returns to the receiving state.
func (l *LBAlg) ack(t int) {
	m := *l.pending
	l.pending = nil
	l.frame = nil
	l.sendingStarted = false
	l.state = StateReceiving
	l.env.Rec.Record(sim.Event{Round: t, Node: l.env.ID, Kind: sim.EvAck, MsgID: m.ID})
	if l.OnAck != nil {
		l.OnAck(m)
	}
}

// BodyStats returns how many body rounds this node participated in and how
// many it transmitted in (E-RECV-PROB instrumentation).
func (l *LBAlg) BodyStats() (participations, transmissions int) {
	return l.participations, l.transmissions
}
