package core

import (
	"testing"

	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// captureRec is a Recorder that appends every event to a per-node list, so
// the lockstep test can compare the bank's full event streams (hear, recv,
// ack, bcast) against the per-node oracle's, not just the callback outputs.
type captureRec struct{ evs *[]sim.Event }

func (r captureRec) Record(ev sim.Event) { *r.evs = append(*r.evs, ev) }

// TestNodeStateBankLockstep drives a NodeStateBank and a per-node LBAlg
// array through identical lossy executions — same per-node randomness, same
// staggered bcast schedule, same single-hop channel with drops, a crash
// window for one node — and requires byte-identical behavior: every round's
// transmit decision and payload, every recorded event, every recv and ack
// callback, Active/State, and the body-round statistics. The bank side runs
// through the batch TransmitRange/ReceiveRange surface (split into two
// ranges per phase, as the worker-pool driver would call it), so the test
// pins both the column port and the RoundView contract, at the paper's
// k = 1 schedule and the Section 4.2 k = 3 variant whose mid-cycle sender
// arrivals exercise the deferred decode and cursor-debt settlement.
func TestNodeStateBankLockstep(t *testing.T) {
	for _, tc := range []struct {
		name      string
		seedEvery int
	}{
		{"paper-k1", 1},
		{"ablation-k3", 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n = 6
			p, err := DeriveParams(8, 8, 1, 0.25, WithSeedEveryKPhases(tc.seedEvery))
			if err != nil {
				t.Fatal(err)
			}
			plan := NewPhasePlan(p)

			bank := NewNodeStateBank(plan, n)
			oracle := make([]*LBAlg, n)
			bankEvs := make([][]sim.Event, n)
			oracleEvs := make([][]sim.Event, n)
			var bankAcks, oracleAcks [][]sim.MsgID
			var bankRecvs, oracleRecvs [][]sim.MsgID
			for u := 0; u < n; u++ {
				env := func(evs *[]sim.Event) *sim.NodeEnv {
					return &sim.NodeEnv{ID: u, Delta: 8, DeltaPrime: 8, R: 1,
						Rng: xrand.NodeSource(7, u), Rec: captureRec{evs}}
				}
				bank.Node(u).Init(env(&bankEvs[u]))
				oracle[u] = NewLBAlgWithPlan(plan)
				oracle[u].Init(env(&oracleEvs[u]))
				bankAcks, oracleAcks = append(bankAcks, nil), append(oracleAcks, nil)
				bankRecvs, oracleRecvs = append(bankRecvs, nil), append(oracleRecvs, nil)
				uu := u
				bank.Node(u).SetOnAck(func(m Message) { bankAcks[uu] = append(bankAcks[uu], m.ID) })
				bank.Node(u).SetOnRecv(func(m Message, _ int) { bankRecvs[uu] = append(bankRecvs[uu], m.ID) })
				oracle[u].SetOnAck(func(m Message) { oracleAcks[uu] = append(oracleAcks[uu], m.ID) })
				oracle[u].SetOnRecv(func(m Message, _ int) { oracleRecvs[uu] = append(oracleRecvs[uu], m.ID) })
			}

			view := sim.RoundView{
				Payloads: make([]any, n),
				Transmit: make([]bool, n),
				Rx:       make([]sim.RxSlot, n),
				Down:     make([]bool, n),
			}
			oPayloads := make([]any, n)
			oTransmit := make([]bool, n)

			rounds := (2*tc.seedEvery + 2) * p.Tack * p.PhaseLen()
			// Crash node 2's radio for a window in the middle of the run: both
			// sides must skip it identically (no RNG draws, no receptions).
			downFrom, downTo := rounds/3, rounds/2
			loss := xrand.New(41)
			for tr := 1; tr <= rounds; tr++ {
				if tr%(p.PhaseLen()/2+3) == 0 {
					u := tr % n
					idBank, errBank := bank.Node(u).Bcast(tr)
					idOracle, errOracle := oracle[u].Bcast(tr)
					if (errBank == nil) != (errOracle == nil) || idBank != idOracle {
						t.Fatalf("round %d: bcast diverged (bank %v/%v, oracle %v/%v)",
							tr, idBank, errBank, idOracle, errOracle)
					}
				}
				view.Down[2] = tr >= downFrom && tr < downTo

				// Transmit phase: bank through the batch surface in two
				// ranges, oracle per node with the engine's stepTx semantics.
				mid := n / 2
				bank.TransmitRange(tr, 0, mid, &view)
				bank.TransmitRange(tr, mid, n, &view)
				for u := 0; u < n; u++ {
					if view.Down[u] {
						oPayloads[u], oTransmit[u] = nil, false
						continue
					}
					oPayloads[u], oTransmit[u] = oracle[u].Transmit(tr)
				}
				from := -1
				tx := 0
				for u := 0; u < n; u++ {
					if view.Transmit[u] != oTransmit[u] {
						t.Fatalf("round %d node %d: transmit decision diverged (bank %v, oracle %v)",
							tr, u, view.Transmit[u], oTransmit[u])
					}
					if view.Transmit[u] {
						if !samePayload(view.Payloads[u], oPayloads[u]) {
							t.Fatalf("round %d node %d: payload diverged (%v vs %v)",
								tr, u, view.Payloads[u], oPayloads[u])
						}
						from, tx = u, tx+1
					}
				}

				// Reception: single-transmitter rounds deliver to everyone
				// unless the lossy channel drops them. Rx slots are stamped
				// for every node (including the transmitter) — the Transmit
				// guard in ReceiveRange must filter, as the engine's deliver
				// does.
				deliver := tx == 1 && !loss.Coin(0.3)
				if deliver {
					for u := 0; u < n; u++ {
						view.Rx[u] = sim.RxSlot{Stamp: int32(tr), Count: 1, From: int32(from)}
					}
				}
				bank.ReceiveRange(tr, 0, mid, &view)
				bank.ReceiveRange(tr, mid, n, &view)
				for u := 0; u < n; u++ {
					if view.Down[u] {
						continue
					}
					if deliver && u != from {
						oracle[u].Receive(tr, from, oPayloads[from], true)
					} else {
						oracle[u].Receive(tr, sim.NoTransmitter, nil, false)
					}
				}
			}

			sent := 0
			for u := 0; u < n; u++ {
				if got, want := bank.Node(u).Active(), oracle[u].Active(); got != want {
					t.Errorf("node %d: Active diverged (bank %v, oracle %v)", u, got, want)
				}
				if got, want := bank.Node(u).State(), oracle[u].State(); got != want {
					t.Errorf("node %d: State diverged (bank %v, oracle %v)", u, got, want)
				}
				pb, tb := bank.Node(u).BodyStats()
				po, to := oracle[u].BodyStats()
				if pb != po || tb != to {
					t.Errorf("node %d: body stats diverged (bank %d/%d, oracle %d/%d)", u, pb, tb, po, to)
				}
				sent += tb
				if len(bankEvs[u]) != len(oracleEvs[u]) {
					t.Fatalf("node %d: %d events vs oracle %d", u, len(bankEvs[u]), len(oracleEvs[u]))
				}
				for i := range bankEvs[u] {
					if bankEvs[u][i] != oracleEvs[u][i] {
						t.Errorf("node %d event %d: %+v vs oracle %+v", u, i, bankEvs[u][i], oracleEvs[u][i])
					}
				}
				if len(bankAcks[u]) != len(oracleAcks[u]) {
					t.Fatalf("node %d: %d acks vs oracle %d", u, len(bankAcks[u]), len(oracleAcks[u]))
				}
				for i := range bankAcks[u] {
					if bankAcks[u][i] != oracleAcks[u][i] {
						t.Errorf("node %d ack %d: %v vs oracle %v", u, i, bankAcks[u][i], oracleAcks[u][i])
					}
				}
				if len(bankRecvs[u]) != len(oracleRecvs[u]) {
					t.Fatalf("node %d: %d recvs vs oracle %d", u, len(bankRecvs[u]), len(oracleRecvs[u]))
				}
				for i := range bankRecvs[u] {
					if bankRecvs[u][i] != oracleRecvs[u][i] {
						t.Errorf("node %d recv %d: %v vs oracle %v", u, i, bankRecvs[u][i], oracleRecvs[u][i])
					}
				}
			}
			if sent == 0 {
				t.Error("execution produced no data transmissions; equivalence vacuous")
			}
		})
	}
}
