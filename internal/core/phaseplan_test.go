package core

import (
	"testing"
	"testing/quick"

	"lbcast/internal/seedagree"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// randomizedParams derives a valid Params from quick-generated raw values,
// spanning degenerate degree bounds, both preamble cadences
// (SeedEveryKPhases ∈ 1..4), and the ε range.
func randomizedParams(t testing.TB, rawDelta, rawSlack, rawEps, rawK uint8) Params {
	t.Helper()
	delta := 1 + int(rawDelta)%64
	deltaPrime := delta + int(rawSlack)%64
	eps := 0.05 + 0.45*float64(rawEps)/255
	k := 1 + int(rawK)%4
	p, err := DeriveParams(delta, deltaPrime, 1+float64(rawSlack%3)/2, eps,
		WithSeedEveryKPhases(k))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPhasePlanMatchesIncrementalArithmetic pins the plan's tables to the
// incremental per-round logic they replaced: Params.PhaseOf for the
// coordinates, the (phase−1) mod k rule for the preamble cadence, and the
// pos < Ts cut for the slot kinds and scratch indices.
func TestPhasePlanMatchesIncrementalArithmetic(t *testing.T) {
	f := func(rawDelta, rawSlack, rawEps, rawK uint8, rawT uint32) bool {
		p := randomizedParams(t, rawDelta, rawSlack, rawEps, rawK)
		pl := NewPhasePlan(p)
		if pl.PhaseLen() != p.PhaseLen() {
			return false
		}
		tr := 1 + int(rawT)%(20*p.PhaseLen())
		phase, pos := pl.PhaseOf(tr)
		wantPhase, wantPos := p.PhaseOf(tr)
		if phase != wantPhase || pos != wantPos {
			return false
		}
		for ph := phase; ph <= phase+2*p.SeedEveryKPhases; ph++ {
			wantPre := (ph-1)%p.SeedEveryKPhases == 0
			if pl.RunsPreamble(ph) != wantPre {
				return false
			}
			slots := pl.Slots(ph)
			if len(slots) != p.PhaseLen() {
				return false
			}
			preLen, body := 0, 0
			for i, s := range slots {
				if wantPre && i < p.Ts {
					if s.Kind != RoundPreamble || s.Body != -1 || s.CoinBudget != 0 {
						return false
					}
					if i == preLen {
						preLen++
					}
				} else {
					if s.Kind != RoundBody || int(s.CoinBudget) != p.K1+p.K2 {
						return false
					}
					if int(s.Body) != body {
						return false
					}
					body++
				}
			}
			if pl.preambleLen(ph) != preLen || pl.BodyRounds(ph) != body {
				return false
			}
			if pl.CoinBudget(ph) != body*(p.K1+p.K2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// refDecodeCoin replays the incremental bodyRound consumption the plan
// batched away: K1 participation bits, then K2 selection bits only on
// all-zero participation coins, each field all-or-nothing against the
// remaining seed.
func refDecodeCoin(seed *xrand.BitString, k1, k2, logDelta int) uint8 {
	v, ok := seed.Consume(k1)
	if !ok || v != 0 {
		return 0
	}
	bv, ok := seed.Consume(k2)
	if !ok {
		return 0
	}
	return uint8(1 + int(bv)%logDelta)
}

// TestDecodeCoinsMatchesIncrementalConsume: decodeCoins must produce the
// byte sequence of per-round refDecodeCoin walks and leave the cursor
// exactly where the incremental walk would — including across word
// boundaries and on seeds too short for their schedule (exhaustion fails
// closed per field). skipCoins must advance the cursor identically while
// materialising nothing.
func TestDecodeCoinsMatchesIncrementalConsume(t *testing.T) {
	seedSrc := xrand.New(77)
	f := func(rawK1, rawK2, rawLD, rawRounds uint8, rawBits uint16, seed uint64) bool {
		k1 := int(rawK1) % 13
		k2 := int(rawK2) % 13
		logDelta := 1 + int(rawLD)%64
		rounds := int(rawRounds) % 50
		bits := int(rawBits) % 1200 // often shorter than rounds·(k1+k2)

		sp, err := seedagree.NewParams(0.25, 8, 4)
		if err != nil {
			t.Fatal(err)
		}
		p := Params{Eps1: 0.2, Eps2: 0.1, R: 1, Delta: 4, DeltaPrime: 4,
			LogDelta: logDelta, SeedParams: sp, Ts: sp.Rounds(), Tprog: rounds,
			Tack: 1, Kappa: bits, K1: k1, K2: k2, SeedEveryKPhases: 1}
		pl := NewPhasePlan(p)

		ref := xrand.NewBitString(xrand.New(seed^seedSrc.Uint64()), bits)
		got := ref.Clone()
		skp := ref.Clone()

		var c phaseCoins
		pl.decodeCoins(got, &c, rounds)
		if len(c.b) != rounds || !c.valid {
			return false
		}
		for j := 0; j < rounds; j++ {
			if c.b[j] != refDecodeCoin(ref, k1, k2, logDelta) {
				return false
			}
		}
		if got.Remaining() != ref.Remaining() {
			return false
		}
		pl.skipCoins(skp, rounds)
		return skp.Remaining() == ref.Remaining()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// refLB is the pre-plan LBAlg: the incremental per-round implementation
// (div/mod phase arithmetic, per-round BitString.Consume) ported verbatim
// as the equivalence oracle. It mirrors the transmit-side state machine,
// ack timing and recv outputs; TestPlanEquivalence drives it in lockstep
// with the table-driven LBAlg over identical randomness and asserts
// identical behavior.
type refLB struct {
	p        Params
	phaseLen int
	id       int
	rng      *xrand.Source

	seed         *seedagree.Alg
	committed    *xrand.BitString
	committedBuf *xrand.BitString

	state          State
	pending        *Message
	frame          any
	sendingStarted bool
	phasesLeft     int
	seq            int

	seen  map[sim.MsgID]struct{}
	acks  []sim.MsgID
	recvs []sim.MsgID

	participations, transmissions int
}

func newRefLB(p Params, id int, rng *xrand.Source) *refLB {
	return &refLB{p: p, phaseLen: p.PhaseLen(), id: id, rng: rng,
		state: StateReceiving, seen: make(map[sim.MsgID]struct{}),
		seed: seedagree.NewAlg(p.SeedParams, id, rng)}
}

func (l *refLB) Bcast(payload any) (sim.MsgID, error) {
	if l.pending != nil {
		return 0, errAlreadyBroadcasting
	}
	l.seq++
	m := Message{ID: sim.NewMsgID(l.id, l.seq), Payload: payload}
	l.pending = &m
	l.frame = DataMsg{Msg: m}
	l.sendingStarted = false
	return m.ID, nil
}

var errAlreadyBroadcasting = &refErr{}

type refErr struct{}

func (*refErr) Error() string { return "ref: already broadcasting" }

func (l *refLB) runsPreamble(phase int) bool {
	return (phase-1)%l.p.SeedEveryKPhases == 0
}

func (l *refLB) Transmit(t int) (any, bool) {
	phase, pos := (t-1)/l.phaseLen+1, (t-1)%l.phaseLen
	if pos == 0 {
		if l.pending != nil && !l.sendingStarted {
			l.sendingStarted = true
			l.state = StateSending
			l.phasesLeft = l.p.Tack
		}
		if l.runsPreamble(phase) {
			l.seed.Reset()
			l.committed = nil
		}
	}
	if pos < l.p.Ts && l.runsPreamble(phase) {
		return l.seed.Transmit(pos + 1)
	}
	return l.bodyRound()
}

func (l *refLB) bodyRound() (any, bool) {
	if l.committed == nil {
		return nil, false
	}
	v, ok := l.committed.Consume(l.p.K1)
	if !ok {
		return nil, false
	}
	if v != 0 {
		return nil, false
	}
	bv, ok := l.committed.Consume(l.p.K2)
	if !ok {
		return nil, false
	}
	if l.state != StateSending || l.pending == nil {
		return nil, false
	}
	l.participations++
	b := 1 + int(bv)%l.p.LogDelta
	if l.rng.Bits(b) != 0 {
		return nil, false
	}
	l.transmissions++
	return l.frame, true
}

func (l *refLB) Receive(t, from int, payload any, ok bool) {
	phase, pos := (t-1)/l.phaseLen+1, (t-1)%l.phaseLen
	if pos < l.p.Ts && l.runsPreamble(phase) {
		l.seed.Receive(pos+1, payload, ok)
		if pos == l.p.Ts-1 {
			l.seed.Finalize()
			d := l.seed.Decision()
			if l.committedBuf == nil {
				l.committedBuf = d.Seed.Clone()
			} else {
				l.committedBuf.CopyFrom(d.Seed)
			}
			l.committedBuf.Reset()
			l.committed = l.committedBuf
		}
		return
	}
	if ok {
		if dm, isData := payload.(DataMsg); isData {
			if _, dup := l.seen[dm.Msg.ID]; !dup {
				l.seen[dm.Msg.ID] = struct{}{}
				l.recvs = append(l.recvs, dm.Msg.ID)
			}
		}
	}
	if pos == l.phaseLen-1 && l.state == StateSending {
		l.phasesLeft--
		if l.phasesLeft <= 0 {
			m := *l.pending
			l.pending = nil
			l.frame = nil
			l.sendingStarted = false
			l.state = StateReceiving
			l.acks = append(l.acks, m.ID)
		}
	}
}

// samePayload compares on-air frames structurally: the two clusters hold
// distinct BitString objects, so seed advertisements compare by owner and
// content rather than pointer identity.
func samePayload(a, b any) bool {
	if am, ok := a.(seedagree.Msg); ok {
		bm, ok := b.(seedagree.Msg)
		return ok && am.Owner == bm.Owner && am.Seed.Equal(bm.Seed)
	}
	return a == b
}

// TestPlanEquivalence drives the table-driven LBAlg and the incremental
// reference through identical executions — same per-node randomness, same
// staggered bcast schedule, same lossy single-hop channel — and requires
// byte-identical behavior: every round's transmit decision and payload,
// every recv output, every ack, and the body-round statistics. Runs cover
// the paper's schedule (k = 1) and the Section 4.2 variant (k = 3), whose
// mid-cycle sender arrivals exercise the deferred decode and cursor-debt
// settlement.
func TestPlanEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name      string
		seedEvery int
	}{
		{"paper-k1", 1},
		{"ablation-k3", 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n = 6
			p, err := DeriveParams(8, 8, 1, 0.25, WithSeedEveryKPhases(tc.seedEvery))
			if err != nil {
				t.Fatal(err)
			}
			plan := NewPhasePlan(p)

			var acks [][]sim.MsgID
			var recvs [][]sim.MsgID
			news := make([]*LBAlg, n)
			refs := make([]*refLB, n)
			for u := 0; u < n; u++ {
				news[u] = NewLBAlgWithPlan(plan)
				news[u].RecordHears = false
				news[u].Init(&sim.NodeEnv{ID: u, Delta: 8, DeltaPrime: 8, R: 1,
					Rng: xrand.NodeSource(3, u), Rec: nopRec{}})
				refs[u] = newRefLB(p, u, xrand.NodeSource(3, u))
				acks = append(acks, nil)
				recvs = append(recvs, nil)
				uu := u
				news[u].SetOnAck(func(m Message) { acks[uu] = append(acks[uu], m.ID) })
				news[u].SetOnRecv(func(m Message, _ int) { recvs[uu] = append(recvs[uu], m.ID) })
			}

			rounds := (2*tc.seedEvery + 2) * p.Tack * p.PhaseLen()
			loss := xrand.New(99)
			for tr := 1; tr <= rounds; tr++ {
				// Staggered bcast inputs: different nodes go active at
				// different points of the k-phase cycles (mid-phase, so the
				// sending state starts at the next boundary).
				if tr%(p.PhaseLen()/2+3) == 0 {
					u := tr % n
					idNew, errNew := news[u].Bcast(tr)
					idRef, errRef := refs[u].Bcast(tr)
					if (errNew == nil) != (errRef == nil) || idNew != idRef {
						t.Fatalf("round %d: bcast accepted differently (new %v/%v, ref %v/%v)",
							tr, idNew, errNew, idRef, errRef)
					}
				}

				var payloadNew, payloadRef any
				fromNew, fromRef, txNew, txRef := -1, -1, 0, 0
				for u := 0; u < n; u++ {
					pn, tn := news[u].Transmit(tr)
					pr, rn := refs[u].Transmit(tr)
					if tn != rn {
						t.Fatalf("round %d node %d: transmit decision diverged (new %v, ref %v)", tr, u, tn, rn)
					}
					if tn {
						if !samePayload(pn, pr) {
							t.Fatalf("round %d node %d: payload diverged (%v vs %v)", tr, u, pn, pr)
						}
						txNew++
						fromNew, payloadNew = u, pn
						txRef++
						fromRef, payloadRef = u, pr
					}
				}
				drop := loss.Coin(0.3)
				deliver := txNew == 1 && !drop
				for u := 0; u < n; u++ {
					if deliver && u != fromNew {
						news[u].Receive(tr, fromNew, payloadNew, true)
						refs[u].Receive(tr, fromRef, payloadRef, true)
					} else {
						news[u].Receive(tr, -1, nil, false)
						refs[u].Receive(tr, -1, nil, false)
					}
				}
			}

			sent := 0
			for u := 0; u < n; u++ {
				pn, tn := news[u].BodyStats()
				if pr, rn := refs[u].participations, refs[u].transmissions; pn != pr || tn != rn {
					t.Errorf("node %d: body stats diverged (new %d/%d, ref %d/%d)", u, pn, tn, pr, rn)
				}
				sent += tn
				if len(acks[u]) != len(refs[u].acks) {
					t.Fatalf("node %d: %d acks vs ref %d", u, len(acks[u]), len(refs[u].acks))
				}
				for i := range acks[u] {
					if acks[u][i] != refs[u].acks[i] {
						t.Errorf("node %d ack %d: %v vs ref %v", u, i, acks[u][i], refs[u].acks[i])
					}
				}
				if len(recvs[u]) != len(refs[u].recvs) {
					t.Fatalf("node %d: %d recvs vs ref %d", u, len(recvs[u]), len(refs[u].recvs))
				}
				for i := range recvs[u] {
					if recvs[u][i] != refs[u].recvs[i] {
						t.Errorf("node %d recv %d: %v vs ref %v", u, i, recvs[u][i], refs[u].recvs[i])
					}
				}
			}
			if sent == 0 {
				t.Error("execution produced no data transmissions; equivalence vacuous")
			}
		})
	}
}
