package core

import (
	"testing"

	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// TestGoldenExecution pins an exact execution fingerprint. Reproducibility
// is a contract of this repository: a fixed (graph, scheduler, seed)
// configuration must produce the identical trace forever. If an intentional
// change to the RNG streams or the algorithm alters this, update the pinned
// values and call it out in the change description.
func TestGoldenExecution(t *testing.T) {
	rng := xrand.New(2024)
	d, err := dualgraph.SingleHopCluster(8, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := DeriveParams(d.Delta(), d.DeltaPrime(), 1, 0.2)
	if err != nil {
		t.Fatal(err)
	}

	procs := make([]*LBAlg, d.N())
	simProcs := make([]sim.Process, d.N())
	svcs := make([]Service, d.N())
	for u := range procs {
		procs[u] = NewLBAlg(p)
		simProcs[u] = procs[u]
		svcs[u] = procs[u]
	}
	env := NewSaturatingEnv(svcs, []int{0, 1})
	e, err := sim.New(sim.Config{Dual: d, Procs: simProcs, Sched: sched.Random{P: 0.5, Seed: 7},
		Env: env, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(2 * p.PhaseLen())

	tr := e.Trace()
	// Fingerprint: aggregate counters plus a positional checksum of events.
	var checksum uint64
	i := 0
	for ev := range tr.Events() {
		checksum = checksum*1099511628211 ^
			uint64(ev.Round)<<32 ^ uint64(ev.Node)<<16 ^ uint64(ev.Kind)<<8 ^
			uint64(int64(ev.MsgID)) ^ uint64(i)
		i++
	}

	got := goldenFingerprint{
		Rounds:        tr.RoundsRun,
		Events:        tr.Len(),
		Transmissions: tr.Transmissions,
		Deliveries:    tr.Deliveries,
		Collisions:    tr.Collisions,
		Checksum:      checksum,
	}
	if got != goldenWant {
		t.Errorf("execution fingerprint changed:\n got  %+v\n want %+v\n"+
			"(if this change is intentional, update goldenWant and explain why)", got, goldenWant)
	}
}

type goldenFingerprint struct {
	Rounds        int
	Events        int
	Transmissions int
	Deliveries    int
	Collisions    int
	Checksum      uint64
}

// goldenWant was captured from the current implementation; see
// TestGoldenExecution for the update policy.
var goldenWant = goldenFingerprint{
	Rounds:        548,
	Events:        289,
	Transmissions: 101,
	Deliveries:    511,
	Collisions:    84,
	Checksum:      4874753498864686177,
}
