package core

import (
	"testing"

	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// TestSeedExhaustionFailsClosed injects an undersized κ and verifies the
// node silently stops transmitting instead of panicking or reusing bits.
func TestSeedExhaustionFailsClosed(t *testing.T) {
	p := testParams(t, 8, 8, 0.1)
	l := NewLBAlg(p)
	l.Init(&sim.NodeEnv{ID: 0, Delta: 8, DeltaPrime: 8, R: 1, Rng: xrand.New(1), Rec: nopRec{}})
	l.state = StateSending
	l.pending = &Message{ID: sim.NewMsgID(0, 1)}
	// A seed far too short for even one round's K1 bits: every decoded
	// round fails closed.
	commitDirect(l, xrand.NewBitString(xrand.New(2), 1))
	for i := 0; i < 20; i++ {
		if _, sent := l.bodyRound(i % p.Tprog); sent {
			t.Fatal("transmitted with an exhausted seed")
		}
	}
}

// TestNilCommitFailsClosed covers the defensive branch where a body round
// arrives with no committed seed.
func TestNilCommitFailsClosed(t *testing.T) {
	p := testParams(t, 8, 8, 0.1)
	l := NewLBAlg(p)
	l.Init(&sim.NodeEnv{ID: 0, Delta: 8, DeltaPrime: 8, R: 1, Rng: xrand.New(1), Rec: nopRec{}})
	l.state = StateSending
	l.pending = &Message{ID: sim.NewMsgID(0, 1)}
	if _, sent := l.bodyRound(0); sent {
		t.Fatal("transmitted without a committed seed")
	}
}

// TestMidPhaseBcastWaitsForBoundary verifies the algorithm's rule that a
// bcast input arriving mid-phase only enters the sending state at the next
// phase boundary.
func TestMidPhaseBcastWaitsForBoundary(t *testing.T) {
	d, err := dualgraph.Abstract(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := testParams(t, 1, 1, 0.25)
	e, procs := buildLB(t, d, p, nil, nil, 1)

	// Run into the middle of phase 1, then issue the bcast.
	mid := p.PhaseLen() / 2
	e.Run(mid)
	if _, err := procs[0].Bcast("late"); err != nil {
		t.Fatal(err)
	}
	if procs[0].State() != StateReceiving {
		t.Fatal("entered sending state mid-phase")
	}
	// Finish phase 1: still receiving through the last round of the phase.
	e.Run(p.PhaseLen() - mid)
	if procs[0].State() != StateReceiving {
		t.Fatal("sending before the phase boundary")
	}
	// First round of phase 2: now sending.
	e.Run(1)
	if procs[0].State() != StateSending {
		t.Fatal("did not enter sending state at the boundary")
	}
	// The ack must come exactly at the end of Tack further full phases.
	e.Run((p.Tack+1)*p.PhaseLen() - 1)
	acks := e.Trace().ByKind(sim.EvAck)
	if len(acks) != 1 {
		t.Fatalf("acks = %d", len(acks))
	}
	wantRound := (1 + p.Tack) * p.PhaseLen() // end of phase 1+Tack
	if acks[0].Round != wantRound {
		t.Errorf("ack at round %d, want %d", acks[0].Round, wantRound)
	}
}

// TestLBAlgUnderGoroutineDriver checks engine-driver parity at the protocol
// level: identical traces from the sequential and goroutine-per-node
// drivers.
func TestLBAlgUnderGoroutineDriver(t *testing.T) {
	rng := xrand.New(31)
	d, err := dualgraph.SingleHopCluster(6, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	p := testParams(t, d.Delta(), d.DeltaPrime(), 0.25)
	run := func(driver sim.Driver) (int, int) {
		procs := make([]*LBAlg, d.N())
		simProcs := make([]sim.Process, d.N())
		svcs := make([]Service, d.N())
		for u := range procs {
			procs[u] = NewLBAlg(p)
			simProcs[u] = procs[u]
			svcs[u] = procs[u]
		}
		env := NewSaturatingEnv(svcs, []int{0, 1})
		e, err := sim.New(sim.Config{Dual: d, Procs: simProcs, Sched: sched.Random{P: 0.5, Seed: 3},
			Env: env, Seed: 17, Driver: driver})
		if err != nil {
			t.Fatal(err)
		}
		e.Run(2 * p.PhaseLen())
		e.Close()
		return e.Trace().Len(), e.Trace().Deliveries
	}
	seqEvents, seqDel := run(sim.DriverSequential)
	goEvents, goDel := run(sim.DriverGoroutinePerNode)
	if seqEvents != goEvents || seqDel != goDel {
		t.Errorf("drivers diverged: sequential (%d ev, %d del) vs goroutine (%d ev, %d del)",
			seqEvents, seqDel, goEvents, goDel)
	}
}

// TestAdaptiveAgainstLBAlg is the protocol-level starvation check: the
// adaptive adversary plus chattering decoys must block essentially all
// receptions at the target.
func TestAdaptiveAgainstLBAlg(t *testing.T) {
	d, err := dualgraph.StarWithDecoys(6)
	if err != nil {
		t.Fatal(err)
	}
	p := testParams(t, d.Delta(), d.DeltaPrime(), 0.25)
	adaptive, err := sched.NewAdaptive(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]sim.Process, d.N())
	lb0, lb1 := NewLBAlg(p), NewLBAlg(p)
	procs[0], procs[1] = lb0, lb1
	for u := 2; u < d.N(); u++ {
		procs[u] = &alwaysTx{}
	}
	env := NewSaturatingEnv([]Service{lb0, lb1}, []int{1})
	e, err := sim.New(sim.Config{Dual: d, Procs: procs, Sched: adaptive, Env: env, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(3 * p.PhaseLen())
	for _, ev := range e.Trace().ByKind(sim.EvHear) {
		if ev.Node == 0 {
			t.Fatalf("target heard %v at round %d despite always-transmitting decoys", ev.MsgID, ev.Round)
		}
	}
}

// alwaysTx transmits garbage every round (the strongest decoy).
type alwaysTx struct{ env *sim.NodeEnv }

func (a *alwaysTx) Init(env *sim.NodeEnv)       { a.env = env }
func (a *alwaysTx) Transmit(int) (any, bool)    { return "noise", true }
func (a *alwaysTx) Receive(int, int, any, bool) {}
