package core

import (
	"fmt"

	"lbcast/internal/sim"
)

// AckWindow is the bookkeeping shared by the fixed-window broadcast
// services — baseline.Decay, baseline.RoundRobin, baseline.Contention and
// sinr.LocalBcast: accept one bcast(m) input at a time, box its on-air
// DataMsg frame once, count rounds while active, emit the ack exactly
// AckRounds rounds after acceptance, and dedupe channel receptions into
// recv outputs. A service embeds it and supplies only its Transmit policy
// (which probability or slot to use each round); Receive comes with the
// embedding, so all contenders share one tested state machine instead of
// drifting copies.
//
// Unlike LBAlg, whose acknowledgement is tied to its phase structure,
// these services ack on a fixed round count — the window is sized so
// delivery to all neighbors has failed with probability at most ε when it
// expires.
type AckWindow struct {
	// AckRounds is the fixed acknowledgement window: the ack output fires
	// once the broadcast has been active for this many rounds (the bcast
	// round itself counts, so the observed bcast→ack latency is
	// AckRounds−1).
	AckRounds int
	// RecordHears controls whether every channel-level data reception is
	// recorded as an EvHear event (the progress checkers are defined over
	// receptions, not deduplicated recv outputs). Constructors enable it.
	RecordHears bool

	env       *sim.NodeEnv
	pending   *Message
	frame     any // pending's on-air DataMsg, boxed once at Bcast
	activeFor int
	seen      map[sim.MsgID]struct{}
	seq       int
	onAck     func(Message)
	onRecv    func(Message, int)
}

// Init implements the sim.Process initialisation for the embedding service.
func (w *AckWindow) Init(env *sim.NodeEnv) { w.env = env }

// Env returns the node environment handed to Init.
func (w *AckWindow) Env() *sim.NodeEnv { return w.env }

// Bcast implements core.Service: it accepts one broadcast at a time,
// enforcing the environment well-formedness of the LB problem.
func (w *AckWindow) Bcast(payload any) (sim.MsgID, error) {
	if w.pending != nil {
		return 0, fmt.Errorf("core: node %d already broadcasting %v", w.env.ID, w.pending.ID)
	}
	if w.seen == nil {
		w.seen = make(map[sim.MsgID]struct{})
	}
	w.seq++
	m := Message{ID: sim.NewMsgID(w.env.ID, w.seq), Payload: payload}
	w.pending = &m
	w.frame = DataMsg{Msg: m}
	w.activeFor = 0
	w.env.Rec.Record(sim.Event{Node: w.env.ID, Kind: sim.EvBcast, MsgID: m.ID, Payload: payload})
	return m.ID, nil
}

// Active implements core.Service.
func (w *AckWindow) Active() bool { return w.pending != nil }

// ActiveFrame returns the boxed on-air frame of the pending broadcast, or
// ok=false when idle — the input of the embedding service's Transmit.
func (w *AckWindow) ActiveFrame() (frame any, ok bool) {
	return w.frame, w.pending != nil
}

// SetOnAck implements core.Service.
func (w *AckWindow) SetOnAck(fn func(Message)) { w.onAck = fn }

// SetOnRecv implements core.Service.
func (w *AckWindow) SetOnRecv(fn func(Message, int)) { w.onRecv = fn }

// Receive implements sim.Process for the embedding service: deliver any
// received data frame, then advance the acknowledgement window.
func (w *AckWindow) Receive(t, from int, payload any, ok bool) {
	if ok {
		if dm, isData := payload.(DataMsg); isData {
			w.deliver(t, from, dm.Msg)
		}
	}
	if w.pending != nil {
		w.activeFor++
		if w.activeFor >= w.AckRounds {
			m := *w.pending
			w.pending = nil
			w.frame = nil
			w.env.Rec.Record(sim.Event{Round: t, Node: w.env.ID, Kind: sim.EvAck, MsgID: m.ID})
			if w.onAck != nil {
				w.onAck(m)
			}
		}
	}
}

// deliver records the reception and, on first sight of the message, the
// recv output.
func (w *AckWindow) deliver(t, from int, m Message) {
	if w.RecordHears {
		w.env.Rec.Record(sim.Event{Round: t, Node: w.env.ID, Kind: sim.EvHear, From: from, MsgID: m.ID})
	}
	if w.seen == nil {
		w.seen = make(map[sim.MsgID]struct{})
	}
	if _, dup := w.seen[m.ID]; dup {
		return
	}
	w.seen[m.ID] = struct{}{}
	w.env.Rec.Record(sim.Event{Round: t, Node: w.env.ID, Kind: sim.EvRecv, From: from, MsgID: m.ID})
	if w.onRecv != nil {
		w.onRecv(m, from)
	}
}
