package core

import (
	"testing"

	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// benchCluster builds a protocol-only single-hop cluster of LBAlg nodes:
// no engine, no topology, no trace store. Rounds are resolved by the
// degenerate single-hop rule (exactly one transmitter delivers to everyone
// else), which is all the protocol needs to run seed agreement and body
// rounds realistically. This isolates LBAlg.Transmit/Receive — the
// protocol-side hot path the n=1000 profiles show on top — from the engine
// round kernel the BenchmarkNetworkRound* family already covers.
func benchCluster(b *testing.B, n, senders int) []*LBAlg {
	b.Helper()
	p, err := DeriveParams(n, n, 1, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	procs := make([]*LBAlg, n)
	for u := range procs {
		procs[u] = NewLBAlg(p)
		procs[u].RecordHears = false
		procs[u].Init(&sim.NodeEnv{ID: u, Delta: n, DeltaPrime: n, R: 1,
			Rng: xrand.NodeSource(1, u), Rec: nopRec{}})
	}
	for u := 0; u < senders; u++ {
		if _, err := procs[u].Bcast(u); err != nil {
			b.Fatal(err)
		}
	}
	return procs
}

// runProtocolRound drives one synchronous round over the cluster without an
// engine: collect transmissions, apply the single-hop collision rule, and
// deliver the outcome to every other node.
func runProtocolRound(procs []*LBAlg, t int) {
	var payload any
	from, txs := -1, 0
	for u, l := range procs {
		if msg, tx := l.Transmit(t); tx {
			txs++
			from, payload = u, msg
		}
	}
	if txs == 1 {
		for u, l := range procs {
			if u != from {
				l.Receive(t, from, payload, true)
			} else {
				l.Receive(t, -1, nil, false)
			}
		}
		return
	}
	for _, l := range procs {
		l.Receive(t, -1, nil, false)
	}
}

// BenchmarkLBAlgRound measures the protocol-only cost of one LBAlg round
// per node (preamble and body rounds in their schedule proportions) on a
// 32-node cluster with two active broadcasts — the few-senders,
// many-listeners regime the n=1000 end-to-end profiles show. ns/op is per
// node-round.
func BenchmarkLBAlgRound(b *testing.B) {
	const n = 32
	procs := benchCluster(b, n, 2)
	// Re-arm a broadcast whenever one acks so the sending path stays hot.
	for u := 0; u < 2; u++ {
		l := procs[u]
		id := u
		l.OnAck = func(Message) { _, _ = l.Bcast(id) }
	}
	b.ReportAllocs()
	b.ResetTimer()
	t := 0
	for i := 0; i < b.N; i += n {
		t++
		runProtocolRound(procs, t)
	}
}
