package core

import (
	"fmt"

	"lbcast/internal/seedagree"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// This file is the struct-of-arrays representation of LBAlg: one
// NodeStateBank owns the whole network's protocol state in flat per-field
// columns and steps contiguous node ranges per round through the engine's
// batch path (sim.ProcessBank). The per-node LBAlg remains the reference
// implementation — every method here is a field-by-field port of the
// corresponding lbalg.go method, and nodestatebank_test.go runs the two in
// lockstep over lossy executions comparing every transmit decision, payload,
// recv, ack and counter.
//
// Why columns: at n = 10⁵⁻⁶ the per-node structs are ~200 B apart on the
// heap, so a round's Transmit sweep takes one or two cache misses per node
// before any protocol work happens, plus two interface dispatches. The bank
// packs the per-round hot fields (position memo, state, flags, coin span
// header) into parallel arrays swept linearly, keeps the coin bytes in one
// slab indexed by a fixed stride, and leaves the cold pointer-shaped state
// (seed agreement instance, committed-seed buffers, dedupe sets, callbacks)
// in separate columns touched only at phase boundaries or on delivery.

// flag bits of NodeStateBank.flags — the four booleans of LBAlg packed into
// one byte per node.
const (
	bankSeedIdle       = 1 << iota // LBAlg.seedIdle
	bankCoinsValid                 // LBAlg.coins.valid
	bankSendingStarted             // LBAlg.sendingStarted
	bankHasPending                 // LBAlg.pending != nil
)

// NodeStateBank holds the protocol state of n LBAlg nodes in columns. It
// implements sim.ProcessBank; its per-node handles (Node) implement Service
// for the Init/Bcast/callback surface and for the goroutine-per-node driver.
// Not safe for concurrent mutation of one node from two goroutines; the
// engine's range calls are disjoint, which is exactly the contract.
type NodeStateBank struct {
	plan *PhasePlan
	p    Params
	n    int

	// Hot columns, swept linearly by TransmitRange/ReceiveRange. Narrow
	// types are deliberate: a round index fits int32 for any feasible run
	// length, and state/flags are single bytes, so a node's whole hot row
	// is 21 bytes across the columns.
	memoT, memoPhase, memoPos []int32
	curPreLen                 []int32
	state                     []uint8
	flags                     []uint8
	phasesLeft                []int32
	coinsBehind               []int32

	// coins is the decoded-coin slab: node u's span is
	// coins[u*coinStride : u*coinStride+coinLen[u]], valid iff
	// flags[u]&bankCoinsValid. coinStride is the largest decode any phase
	// performs (the full phase length covers both Tprog and the Section 4.2
	// body-only phases).
	coins      []uint8
	coinLen    []int32
	coinStride int

	// Cold columns: touched at phase boundaries, deliveries, and the
	// Bcast/ack edges only.
	pending      []Message
	frame        []any
	envs         []*sim.NodeEnv
	seeds        []*seedagree.Alg
	committed    []*xrand.BitString
	committedBuf []*xrand.BitString
	raw          [][]uint64 // per-node word scratch for walkCoins' bulk path
	seen         []map[sim.MsgID]struct{}
	seq          []int32
	onAck        []func(Message)
	onRecv       []func(Message, int)

	participations, transmissions []int64

	// recordHears mirrors LBAlg.RecordHears, bank-wide (every consumer sets
	// it uniformly across nodes). On by default.
	recordHears bool

	// handles is the contiguous backing of the per-node Service handles, so
	// Node(u) hands out stable pointers without per-node allocations.
	handles []BankNode
}

var _ sim.ProcessBank = (*NodeStateBank)(nil)

// NewNodeStateBank creates the columnar state of n nodes over a shared
// phase plan, each node initialised exactly as NewLBAlgWithPlan initialises
// a fresh LBAlg.
func NewNodeStateBank(plan *PhasePlan, n int) *NodeStateBank {
	stride := plan.phaseLen // ≥ every BodyRounds value (Tprog and phaseLen)
	bk := &NodeStateBank{
		plan: plan, p: plan.params, n: n,
		memoT: make([]int32, n), memoPhase: make([]int32, n), memoPos: make([]int32, n),
		curPreLen:  make([]int32, n),
		state:      make([]uint8, n),
		flags:      make([]uint8, n),
		phasesLeft: make([]int32, n), coinsBehind: make([]int32, n),
		coins: make([]uint8, n*stride), coinLen: make([]int32, n), coinStride: stride,
		pending: make([]Message, n), frame: make([]any, n),
		envs: make([]*sim.NodeEnv, n), seeds: make([]*seedagree.Alg, n),
		committed: make([]*xrand.BitString, n), committedBuf: make([]*xrand.BitString, n),
		raw:  make([][]uint64, n),
		seen: make([]map[sim.MsgID]struct{}, n), seq: make([]int32, n),
		onAck: make([]func(Message), n), onRecv: make([]func(Message, int), n),
		participations: make([]int64, n), transmissions: make([]int64, n),
		recordHears: true,
		handles:     make([]BankNode, n),
	}
	pre := int32(plan.preambleLen(1))
	for u := 0; u < n; u++ {
		bk.state[u] = uint8(StateReceiving)
		bk.memoPhase[u] = 1
		bk.memoPos[u] = -1
		bk.curPreLen[u] = pre
		bk.seen[u] = make(map[sim.MsgID]struct{})
		bk.handles[u] = BankNode{bank: bk, u: int32(u)}
	}
	return bk
}

// Len returns the number of nodes the bank holds.
func (bk *NodeStateBank) Len() int { return bk.n }

// Params returns the schedule parameters shared by every node.
func (bk *NodeStateBank) Params() Params { return bk.p }

// Node returns node u's Service handle — the engine's Procs entry and the
// environment's Bcast/callback surface.
func (bk *NodeStateBank) Node(u int) *BankNode { return &bk.handles[u] }

// Procs returns the per-node handles as the engine's Procs slice.
func (bk *NodeStateBank) Procs() []sim.Process {
	procs := make([]sim.Process, bk.n)
	for u := range procs {
		procs[u] = &bk.handles[u]
	}
	return procs
}

// SetRecordHears toggles EvHear recording for every node (LBAlg.RecordHears).
func (bk *NodeStateBank) SetRecordHears(on bool) { bk.recordHears = on }

// TransmitRange implements sim.ProcessBank.
func (bk *NodeStateBank) TransmitRange(t, lo, hi int, v *sim.RoundView) {
	if v.Down != nil {
		for u := lo; u < hi; u++ {
			if v.Down[u] {
				v.Payloads[u], v.Transmit[u] = nil, false
				continue
			}
			v.Payloads[u], v.Transmit[u] = bk.transmit(u, t)
		}
		return
	}
	for u := lo; u < hi; u++ {
		v.Payloads[u], v.Transmit[u] = bk.transmit(u, t)
	}
}

// ReceiveRange implements sim.ProcessBank, resolving each node's outcome
// from the round view exactly as the engine's deliver does for per-node
// processes.
func (bk *NodeStateBank) ReceiveRange(t, lo, hi int, v *sim.RoundView) {
	t32 := int32(t)
	down := v.Down
	for u := lo; u < hi; u++ {
		if down != nil && down[u] {
			continue
		}
		if s := v.Rx[u]; !v.Transmit[u] && s.Stamp == t32 && s.Count == 1 {
			bk.receive(u, t, int(s.From), v.Payloads[s.From], true)
		} else {
			bk.receive(u, t, sim.NoTransmitter, nil, false)
		}
	}
}

// initNode is BankNode.Init's body: LBAlg.Init ported to columns.
func (bk *NodeStateBank) initNode(u int, env *sim.NodeEnv) {
	bk.envs[u] = env
	bk.seeds[u] = seedagree.NewAlgWithPlan(bk.plan.Seed, env.ID, env.Rng)
}

// advanceRound is LBAlg.advanceRound over columns: the position cursor's
// slow path shared by transmit and receive.
func (bk *NodeStateBank) advanceRound(u, t int) int {
	if t == int(bk.memoT[u])+1 {
		pos := int(bk.memoPos[u]) + 1
		if pos == bk.plan.phaseLen {
			pos = 0
			bk.memoPhase[u]++
			bk.curPreLen[u] = int32(bk.plan.preambleLen(int(bk.memoPhase[u])))
		}
		bk.memoPos[u] = int32(pos)
	} else {
		phase, pos := bk.plan.PhaseOf(t)
		bk.memoPhase[u], bk.memoPos[u] = int32(phase), int32(pos)
		bk.curPreLen[u] = int32(bk.plan.preambleLen(phase))
	}
	bk.memoT[u] = int32(t)
	return int(bk.memoPos[u])
}

// transmit is LBAlg.Transmit ported to columns, byte for byte: same memo
// fast path, same preamble dispatch, same body-round gating and private
// coin draws.
func (bk *NodeStateBank) transmit(u, t int) (any, bool) {
	pos := int(bk.memoPos[u]) + 1
	if t != int(bk.memoT[u])+1 || pos == bk.plan.phaseLen {
		pos = bk.advanceRound(u, t)
	} else {
		bk.memoT[u], bk.memoPos[u] = int32(t), int32(pos)
	}

	if pos == 0 {
		bk.beginPhase(u, int(bk.memoPhase[u]))
	}

	pre := int(bk.curPreLen[u])
	if pos < pre { // a RoundPreamble slot of this phase's table
		if bk.flags[u]&bankSeedIdle != 0 {
			return nil, false // decided, not advertising: a no-op round
		}
		seed := bk.seeds[u]
		payload, tx := seed.Transmit(pos + 1)
		if seed.Idle() {
			bk.flags[u] |= bankSeedIdle
		} else {
			bk.flags[u] &^= bankSeedIdle
		}
		return payload, tx
	}
	// A RoundBody slot with scratch index pos − curPreLen, exactly as
	// LBAlg.Transmit's hand-inlined bodyRound.
	f := bk.flags[u]
	if f&bankCoinsValid == 0 || State(bk.state[u]) != StateSending || f&bankHasPending == 0 {
		return nil, false
	}
	j := pos - pre
	if j >= int(bk.coinLen[u]) {
		return nil, false // out-of-order jump past the decoded span; fail closed
	}
	b := bk.coins[u*bk.coinStride+j]
	if b == 0 {
		return nil, false // non-participant round for this owner group
	}
	return bk.participate(u, int(b))
}

// beginPhase is LBAlg.beginPhase over columns.
func (bk *NodeStateBank) beginPhase(u, phase int) {
	if f := bk.flags[u]; f&bankHasPending != 0 && f&bankSendingStarted == 0 {
		bk.flags[u] |= bankSendingStarted
		bk.state[u] = uint8(StateSending)
		bk.phasesLeft[u] = int32(bk.p.Tack)
	}
	if bk.plan.RunsPreamble(phase) {
		bk.seeds[u].Reset()
		bk.flags[u] &^= bankSeedIdle | bankCoinsValid
		bk.committed[u] = nil
		bk.coinsBehind[u] = 0
	} else if bk.committed[u] != nil {
		rounds := bk.plan.BodyRounds(phase)
		if State(bk.state[u]) == StateSending {
			if bk.coinsBehind[u] > 0 {
				bk.plan.skipCoins(bk.committed[u], int(bk.coinsBehind[u]))
				bk.coinsBehind[u] = 0
			}
			bk.decodeInto(u, rounds)
		} else {
			bk.flags[u] &^= bankCoinsValid
			bk.coinsBehind[u] += int32(rounds)
		}
	}
}

// decodeInto is decodeCoins targeting node u's slab span: same walkCoins
// pass, same cursor advance, the bytes just land in the shared slab.
func (bk *NodeStateBank) decodeInto(u, rounds int) {
	off := u * bk.coinStride
	bk.plan.walkCoins(bk.committed[u], bk.coins[off:off+rounds], &bk.raw[u], rounds)
	bk.coinLen[u] = int32(rounds)
	bk.flags[u] |= bankCoinsValid
}

// participate is LBAlg.participate over columns.
func (bk *NodeStateBank) participate(u, b int) (any, bool) {
	bk.participations[u]++
	if bk.envs[u].Rng.Bits(b) != 0 {
		return nil, false
	}
	bk.transmissions[u]++
	return bk.frame[u], true
}

// receive is LBAlg.Receive ported to columns.
func (bk *NodeStateBank) receive(u, t, from int, payload any, ok bool) {
	pos := int(bk.memoPos[u])
	if t != int(bk.memoT[u]) {
		pos = bk.advanceRound(u, t)
	}

	pre := int(bk.curPreLen[u])
	if pos < pre { // a RoundPreamble slot of this phase's table
		if bk.flags[u]&bankSeedIdle == 0 {
			seed := bk.seeds[u]
			seed.Receive(pos+1, payload, ok)
			if seed.Idle() {
				bk.flags[u] |= bankSeedIdle
			} else {
				bk.flags[u] &^= bankSeedIdle
			}
		}
		if pos == pre-1 {
			bk.commitSeed(u)
		}
		return
	}

	// Body rounds: all states deliver first receptions as recv outputs.
	if ok {
		if dm, isData := payload.(DataMsg); isData {
			bk.deliver(u, t, from, dm.Msg)
		}
	}

	// End of phase: sending nodes consume one of their Tack phases.
	if pos == bk.plan.phaseLen-1 && State(bk.state[u]) == StateSending {
		bk.phasesLeft[u]--
		if bk.phasesLeft[u] <= 0 {
			bk.ack(u, t)
		}
	}
}

// commitSeed is LBAlg.commitSeed over columns.
func (bk *NodeStateBank) commitSeed(u int) {
	seed := bk.seeds[u]
	seed.Finalize() // defensive; Receive at Ts already finalizes
	d := seed.Decision()
	if bk.committedBuf[u] == nil {
		bk.committedBuf[u] = d.Seed.Clone()
	} else {
		bk.committedBuf[u].CopyFrom(d.Seed)
	}
	bk.committedBuf[u].Reset()
	bk.committed[u] = bk.committedBuf[u]
	bk.coinsBehind[u] = 0
	if State(bk.state[u]) == StateSending {
		bk.decodeInto(u, bk.plan.tprog)
	} else {
		bk.flags[u] &^= bankCoinsValid
		bk.coinsBehind[u] = int32(bk.plan.tprog)
	}
}

// deliver is LBAlg.deliver over columns.
func (bk *NodeStateBank) deliver(u, t, from int, m Message) {
	env := bk.envs[u]
	if bk.recordHears {
		env.Rec.Record(sim.Event{Round: t, Node: env.ID, Kind: sim.EvHear, From: from, MsgID: m.ID})
	}
	if _, dup := bk.seen[u][m.ID]; dup {
		return
	}
	bk.seen[u][m.ID] = struct{}{}
	env.Rec.Record(sim.Event{Round: t, Node: env.ID, Kind: sim.EvRecv, From: from, MsgID: m.ID})
	if fn := bk.onRecv[u]; fn != nil {
		fn(m, from)
	}
}

// ack is LBAlg.ack over columns.
func (bk *NodeStateBank) ack(u, t int) {
	m := bk.pending[u]
	bk.pending[u] = Message{}
	bk.frame[u] = nil
	bk.flags[u] &^= bankHasPending | bankSendingStarted
	bk.state[u] = uint8(StateReceiving)
	env := bk.envs[u]
	env.Rec.Record(sim.Event{Round: t, Node: env.ID, Kind: sim.EvAck, MsgID: m.ID})
	if fn := bk.onAck[u]; fn != nil {
		fn(m)
	}
}

// bcast is LBAlg.Bcast over columns.
func (bk *NodeStateBank) bcast(u int, payload any) (sim.MsgID, error) {
	if bk.flags[u]&bankHasPending != 0 {
		return 0, fmt.Errorf("core: node %d already broadcasting %v", bk.envs[u].ID, bk.pending[u].ID)
	}
	bk.seq[u]++
	m := Message{ID: sim.NewMsgID(bk.envs[u].ID, int(bk.seq[u])), Payload: payload}
	bk.pending[u] = m
	bk.flags[u] |= bankHasPending
	// Box the on-air frame once per broadcast, as LBAlg.Bcast does.
	bk.frame[u] = DataMsg{Msg: m}
	bk.flags[u] &^= bankSendingStarted
	// Round 0 is stamped with the current round by the trace drain.
	bk.envs[u].Rec.Record(sim.Event{Node: bk.envs[u].ID, Kind: sim.EvBcast, MsgID: m.ID, Payload: payload})
	return m.ID, nil
}

// BankNode is one node's Service handle into a NodeStateBank: the engine's
// Init/Procs unit, the goroutine-per-node driver's per-node Process, and
// the environment's Bcast/callback surface. All state lives in the bank's
// columns; the handle is two words.
type BankNode struct {
	bank *NodeStateBank
	u    int32
}

var _ Service = (*BankNode)(nil)

// Init implements sim.Process.
func (h *BankNode) Init(env *sim.NodeEnv) { h.bank.initNode(int(h.u), env) }

// Transmit implements sim.Process (the goroutine-per-node driver and the
// lockstep oracle call it; batch drivers go through TransmitRange).
func (h *BankNode) Transmit(t int) (any, bool) { return h.bank.transmit(int(h.u), t) }

// Receive implements sim.Process.
func (h *BankNode) Receive(t, from int, payload any, ok bool) {
	h.bank.receive(int(h.u), t, from, payload, ok)
}

// Bcast implements Service.
func (h *BankNode) Bcast(payload any) (sim.MsgID, error) { return h.bank.bcast(int(h.u), payload) }

// Active implements Service.
func (h *BankNode) Active() bool { return h.bank.flags[h.u]&bankHasPending != 0 }

// ActiveMessage returns the message being broadcast, if Active.
func (h *BankNode) ActiveMessage() (Message, bool) {
	if h.bank.flags[h.u]&bankHasPending == 0 {
		return Message{}, false
	}
	return h.bank.pending[h.u], true
}

// SetOnAck implements Service.
func (h *BankNode) SetOnAck(fn func(Message)) { h.bank.onAck[h.u] = fn }

// SetOnRecv implements Service.
func (h *BankNode) SetOnRecv(fn func(Message, int)) { h.bank.onRecv[h.u] = fn }

// State returns the node's current phase state.
func (h *BankNode) State() State { return State(h.bank.state[h.u]) }

// Params returns the node's schedule parameters.
func (h *BankNode) Params() Params { return h.bank.p }

// BodyStats returns how many body rounds this node participated in and how
// many it transmitted in (E-RECV-PROB instrumentation).
func (h *BankNode) BodyStats() (participations, transmissions int) {
	return int(h.bank.participations[h.u]), int(h.bank.transmissions[h.u])
}
