package core

import (
	"testing"

	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/seedagree"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// airSniffer wraps the engine by observing a full execution through a probe
// process at an extra isolated vertex... Simpler: we inspect on-air traffic
// by re-running Transmit decisions through a recording wrapper process.
type sniffedTx struct {
	round   int
	payload any
}

// recordingLB wraps an LBAlg to log what it puts on the air.
type recordingLB struct {
	*LBAlg
	log *[]sniffedTx
}

func (r *recordingLB) Transmit(t int) (any, bool) {
	payload, tx := r.LBAlg.Transmit(t)
	if tx {
		*r.log = append(*r.log, sniffedTx{round: t, payload: payload})
	}
	return payload, tx
}

// TestPhaseTrafficSeparation is the phase-structure invariant: during
// preamble rounds only seed agreement messages are on the air; during body
// rounds only data messages. The two protocols can never collide with each
// other because the phase boundaries are globally synchronised.
func TestPhaseTrafficSeparation(t *testing.T) {
	rng := xrand.New(41)
	d, err := dualgraph.SingleHopCluster(8, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := DeriveParams(d.Delta(), d.DeltaPrime(), 1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	var air []sniffedTx
	procs := make([]*LBAlg, d.N())
	simProcs := make([]sim.Process, d.N())
	svcs := make([]Service, d.N())
	for u := range procs {
		procs[u] = NewLBAlg(p)
		simProcs[u] = &recordingLB{LBAlg: procs[u], log: &air}
		svcs[u] = procs[u]
	}
	env := NewSaturatingEnv(svcs, []int{0, 1, 2})
	e, err := sim.New(sim.Config{Dual: d, Procs: simProcs, Sched: sched.Random{P: 0.5, Seed: 5},
		Env: env, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(3 * p.PhaseLen())

	if len(air) == 0 {
		t.Fatal("no traffic recorded")
	}
	seedMsgs, dataMsgs := 0, 0
	for _, tx := range air {
		_, pos := p.PhaseOf(tx.round)
		switch tx.payload.(type) {
		case seedagree.Msg:
			seedMsgs++
			if !p.IsPreamble(pos) {
				t.Fatalf("seed message on the air in body round %d", tx.round)
			}
		case DataMsg:
			dataMsgs++
			if p.IsPreamble(pos) {
				t.Fatalf("data message on the air in preamble round %d", tx.round)
			}
		default:
			t.Fatalf("unknown payload type %T on the air", tx.payload)
		}
	}
	if seedMsgs == 0 || dataMsgs == 0 {
		t.Errorf("expected both traffic classes, got %d seed and %d data", seedMsgs, dataMsgs)
	}
}

// TestSenderSilentWhileReceiving: nodes in the receiving state must never
// put data on the air during body rounds.
func TestSenderSilentWhileReceiving(t *testing.T) {
	rng := xrand.New(43)
	d, err := dualgraph.SingleHopCluster(5, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := DeriveParams(d.Delta(), d.DeltaPrime(), 1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	var air []sniffedTx
	procs := make([]sim.Process, d.N())
	for u := range procs {
		alg := NewLBAlg(p)
		procs[u] = &recordingLB{LBAlg: alg, log: &air}
	}
	// No environment: nobody ever gets a bcast input.
	e, err := sim.New(sim.Config{Dual: d, Procs: procs, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(2 * p.PhaseLen())
	for _, tx := range air {
		if _, isData := tx.payload.(DataMsg); isData {
			t.Fatalf("idle node transmitted data in round %d", tx.round)
		}
	}
}

// TestParticipationRateMatchesFormula: over many body rounds, a lone
// sending group's participation frequency must match 2^{-K1}.
func TestParticipationRateMatchesFormula(t *testing.T) {
	p := testParams(t, 16, 16, 0.1)
	l := NewLBAlg(p)
	l.Init(&sim.NodeEnv{ID: 0, Delta: 16, DeltaPrime: 16, R: 1, Rng: xrand.New(3), Rec: nopRec{}})
	l.state = StateSending
	l.pending = &Message{ID: sim.NewMsgID(0, 1)}

	const phases = 400
	participations := 0
	src := xrand.New(9)
	for ph := 0; ph < phases; ph++ {
		commitDirect(l, xrand.NewBitString(src, p.Kappa))
		before, _ := l.BodyStats()
		for j := 0; j < p.Tprog; j++ {
			l.bodyRound(j)
		}
		after, _ := l.BodyStats()
		participations += after - before
	}
	total := phases * p.Tprog
	got := float64(participations) / float64(total)
	want := p.ParticipantProb()
	if got < want*0.9 || got > want*1.1 {
		t.Errorf("participation rate %v, want ≈ %v (2^-K1)", got, want)
	}
}
