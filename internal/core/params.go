package core

import (
	"fmt"
	"math"

	"lbcast/internal/seedagree"
)

// Default calibration constants. The paper's worst-case constants are
// astronomically conservative (Appendix B.1); these values come from the
// E-CONST calibration experiment: the smallest round multipliers for which
// the empirical reliability and progress rates stay above 1 − ε₁ on the
// stress workloads.
const (
	// DefaultC1 multiplies the T_prog formula of Appendix C.1.
	DefaultC1 = 6.0
	// DefaultCAck multiplies the T_ack formula of Appendix C.1.
	DefaultCAck = 1.0
	// DefaultSeedC4 is the c₄ phase-length constant forwarded to SeedAlg.
	DefaultSeedC4 = seedagree.DefaultC4
)

// Params holds the derived LBAlg schedule for one configuration. Build it
// with DeriveParams; all fields are exported for inspection and for the
// ablation experiments, which override individual entries.
type Params struct {
	// Eps1 is the service error bound ε₁ ∈ (0, ½].
	Eps1 float64
	// Eps2 is the error parameter passed to seed agreement, chosen so the
	// preamble's agreement failure probability is at most ε₁/2
	// (Appendix C.1 defines it via SeedAlg's theoretical bound; we use the
	// calibrated ε₂ = ε₁/2, clamped to SeedAlg's ¼ ceiling).
	Eps2 float64
	// R is the geographic parameter r ≥ 1.
	R float64
	// Delta and DeltaPrime are the degree bounds Δ and Δ′.
	Delta, DeltaPrime int
	// LogDelta is log₂ Δ rounded up to a power of two, ≥ 1.
	LogDelta int

	// SeedParams configures the per-phase SeedAlg preamble.
	SeedParams seedagree.Params
	// Ts is the preamble length in rounds: SeedAlg's running time.
	Ts int
	// Tprog is the number of body rounds per phase,
	// O(r²·log(1/ε₁)·log(1/ε₂)·log Δ).
	Tprog int
	// Tack is the number of full sending phases per broadcast,
	// O(Δ·log(Δ/ε₁)/(1−ε₁)).
	Tack int
	// Kappa is the seed length κ: enough bits for Tprog body rounds at
	// K1 + K2 bits per round.
	Kappa int

	// K1 is the per-round participant-coin width: ⌈log₂(r²·log₂(1/ε₂))⌉.
	// A group participates iff its next K1 shared bits are all zero, which
	// happens with probability 2^{−K1} = a/(r²·log(1/ε₂)), a ∈ (½, 1].
	K1 int
	// K2 is the probability-selection width: the least k with 2^k ≥ log Δ.
	// The selected value b ∈ [log Δ] yields broadcast probability 2^{−b}.
	K2 int

	// SeedEveryKPhases runs the seed agreement preamble only on phases
	// i ≡ 1 (mod k), reusing (re-cloning) the previous commitment otherwise.
	// 1 — the paper's algorithm — is the default; larger values implement
	// the Section 4.2 remark for the E-ABL-FREQ ablation.
	SeedEveryKPhases int
}

// Option adjusts parameter derivation.
type Option func(*derivation)

type derivation struct {
	c1, cAck, seedC4 float64
	seedEvery        int
}

// WithC1 overrides the T_prog constant c₁.
func WithC1(c1 float64) Option { return func(d *derivation) { d.c1 = c1 } }

// WithCAck overrides the T_ack constant.
func WithCAck(c float64) Option { return func(d *derivation) { d.cAck = c } }

// WithSeedC4 overrides SeedAlg's phase-length constant c₄.
func WithSeedC4(c float64) Option { return func(d *derivation) { d.seedC4 = c } }

// WithSeedEveryKPhases enables the Section 4.2 variant that refreshes seeds
// only every k phases.
func WithSeedEveryKPhases(k int) Option { return func(d *derivation) { d.seedEvery = k } }

// DeriveParams computes the full LBAlg schedule from the local quantities a
// process knows (Δ, Δ′, r) and the requested error bound ε₁, following
// Appendix C.1 with calibrated constants. No global parameter (n) enters
// any formula — the paper's "true locality".
func DeriveParams(delta, deltaPrime int, r, eps1 float64, opts ...Option) (Params, error) {
	if !(eps1 > 0 && eps1 <= 0.5) {
		return Params{}, fmt.Errorf("core: ε₁ = %v outside (0, ½]", eps1)
	}
	if delta < 1 || deltaPrime < delta {
		return Params{}, fmt.Errorf("core: degree bounds Δ=%d, Δ′=%d invalid", delta, deltaPrime)
	}
	if r < 1 {
		return Params{}, fmt.Errorf("core: r = %v < 1", r)
	}
	d := derivation{c1: DefaultC1, cAck: DefaultCAck, seedC4: DefaultSeedC4, seedEvery: 1}
	for _, opt := range opts {
		opt(&d)
	}
	if d.c1 <= 0 || d.cAck <= 0 || d.seedC4 <= 0 || d.seedEvery < 1 {
		return Params{}, fmt.Errorf("core: non-positive constant override")
	}

	eps2 := eps1 / 2
	if eps2 > 0.25 {
		eps2 = 0.25
	}
	logDelta := seedagree.Log2Ceil(delta)
	log1e1 := math.Log2(1 / eps1)
	log1e2 := math.Log2(1 / eps2)

	k1 := bitsFor(int(math.Ceil(r * r * log1e2)))
	k2 := bitsFor(logDelta)

	tprog := int(math.Ceil(d.c1 * r * r * log1e1 * log1e2 * float64(logDelta)))
	if tprog < 1 {
		tprog = 1
	}

	// Seed sizing. With the default k = 1 a seed must cover Tprog body
	// rounds. The Section 4.2 variant (k > 1) reuses one seed for a whole
	// k-phase cycle and reclaims the skipped preambles as extra body
	// rounds, so the worst-case consumption grows accordingly.
	sp := seedagree.Params{Eps1: eps2, Kappa: 1, Delta: delta, C4: d.seedC4}
	if err := sp.Validate(); err != nil {
		return Params{}, fmt.Errorf("core: deriving seed parameters: %w", err)
	}
	ts := sp.Rounds()
	bodyRoundsPerCycle := tprog + (d.seedEvery-1)*(ts+tprog)
	kappa := bodyRoundsPerCycle * (k1 + k2)
	if kappa < 1 {
		kappa = 1
	}
	sp.Kappa = kappa

	tack := int(math.Ceil(d.cAck * math.Log(2*float64(delta)/eps1) * float64(deltaPrime) /
		(log1e1 * (1 - eps1/2))))
	if tack < 1 {
		tack = 1
	}

	return Params{
		Eps1:             eps1,
		Eps2:             eps2,
		R:                r,
		Delta:            delta,
		DeltaPrime:       deltaPrime,
		LogDelta:         logDelta,
		SeedParams:       sp,
		Ts:               ts,
		Tprog:            tprog,
		Tack:             tack,
		Kappa:            kappa,
		K1:               k1,
		K2:               k2,
		SeedEveryKPhases: d.seedEvery,
	}, nil
}

// PhaseLen returns the full phase length Ts + Tprog — the service's t_prog
// bound from Theorem 4.1.
func (p Params) PhaseLen() int { return p.Ts + p.Tprog }

// TProgBound returns the t_prog of the LB(t_ack, t_prog, ε) specification.
func (p Params) TProgBound() int { return p.PhaseLen() }

// TAckBound returns the t_ack of the specification: (Tack+1)·(Ts+Tprog),
// covering the wait for the next phase boundary plus Tack sending phases.
func (p Params) TAckBound() int { return (p.Tack + 1) * p.PhaseLen() }

// ParticipantProb returns the per-round group participation probability
// 2^{−K1}.
func (p Params) ParticipantProb() float64 { return math.Pow(2, -float64(p.K1)) }

// PhaseOf maps a global 1-based round to its 1-based phase and 0-based
// position within the phase.
func (p Params) PhaseOf(t int) (phase, pos int) {
	return (t-1)/p.PhaseLen() + 1, (t - 1) % p.PhaseLen()
}

// IsPreamble reports whether the position within a phase lies in the seed
// agreement preamble.
func (p Params) IsPreamble(pos int) bool { return pos < p.Ts }

// bitsFor returns the smallest k ≥ 0 with 2^k ≥ n.
func bitsFor(n int) int {
	k := 0
	for v := 1; v < n; v <<= 1 {
		k++
	}
	return k
}
