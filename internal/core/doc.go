// Package core implements LBAlg, the paper's local broadcast service for
// the dual graph model (Section 4), on top of the seed agreement service of
// Section 3.
//
// Time is cut into phases of Ts + Tprog rounds. Every phase opens with a
// preamble: a fresh run of SeedAlg(ε₂) that leaves each node committed to a
// nearby owner's seed — at most δ distinct seeds per G′ neighborhood with
// probability ≥ 1 − ε₁/2. The remaining Tprog body rounds use those seeds
// as shared randomness: each sending node's owner group flips a common coin
// to decide whether the group "participates" this round, participants draw a
// common broadcast-probability exponent b ∈ [log Δ] from the seed, and each
// participant finally flips a private coin with probability 2^{−b} to
// transmit. Permuting the probability schedule with post-execution
// randomness is what defeats the oblivious link scheduler: the schedule was
// fixed before the seeds existed, so it cannot correlate contention with the
// chosen probabilities.
package core
