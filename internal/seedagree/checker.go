package seedagree

import (
	"fmt"

	"lbcast/internal/dualgraph"
	"lbcast/internal/xrand"
)

// The functions in this file check executions against the four conditions of
// the Seed(δ, ε) specification (Section 3.1): well-formedness, consistency,
// agreement, and (statistically) independence.

// CollectDecisions gathers one decision per standalone process, enforcing
// well-formedness condition 1: exactly one decide(∗,∗)_u per vertex. (The
// state machine cannot decide twice, so presence is the checkable half.)
func CollectDecisions(procs []*Process) ([]Decision, error) {
	out := make([]Decision, len(procs))
	for u, p := range procs {
		if !p.Decided() {
			return nil, fmt.Errorf("seedagree: node %d never decided (well-formedness violated)", u)
		}
		out[u] = p.Decision()
	}
	return out, nil
}

// CheckConsistency verifies condition 2: decisions naming the same owner
// carry the same seed value.
func CheckConsistency(ds []Decision) error {
	seeds := make(map[int]*xrand.BitString, len(ds))
	for u, d := range ds {
		if d.Seed == nil {
			return fmt.Errorf("seedagree: node %d committed a nil seed", u)
		}
		if prev, ok := seeds[d.Owner]; ok {
			if !prev.Equal(d.Seed) {
				return fmt.Errorf("seedagree: owner %d committed with two distinct seeds", d.Owner)
			}
			continue
		}
		seeds[d.Owner] = d.Seed
	}
	return nil
}

// CheckOwnership verifies the Lemma B.1 structure: every committed seed is
// the initial seed of its owner, and owners are real vertices.
func CheckOwnership(ds []Decision, initial map[int]*xrand.BitString) error {
	for u, d := range ds {
		own, ok := initial[d.Owner]
		if !ok {
			return fmt.Errorf("seedagree: node %d committed to unknown owner %d", u, d.Owner)
		}
		if !own.Equal(d.Seed) {
			return fmt.Errorf("seedagree: node %d committed a seed that is not owner %d's initial seed", u, d.Owner)
		}
	}
	return nil
}

// OwnerCount returns the number of distinct seed owners committed among
// N_G′(u) ∪ {u} — the quantity the agreement condition bounds by δ.
func OwnerCount(d *dualgraph.Dual, ds []Decision, u int) int {
	owners := map[int]struct{}{ds[u].Owner: {}}
	for _, v := range d.Gp.Neighbors(u) {
		owners[ds[v].Owner] = struct{}{}
	}
	return len(owners)
}

// MaxOwnerCount returns the worst OwnerCount over all vertices and a vertex
// attaining it. For an empty graph it returns (0, -1).
func MaxOwnerCount(d *dualgraph.Dual, ds []Decision) (maxOwners, argmax int) {
	maxOwners, argmax = 0, -1
	for u := 0; u < d.N(); u++ {
		if c := OwnerCount(d, ds, u); c > maxOwners {
			maxOwners, argmax = c, u
		}
	}
	return maxOwners, argmax
}

// AgreementHolds reports the event B_{u,δ}: at most delta distinct owners
// appear in decide outputs within N_G′(u) ∪ {u}.
func AgreementHolds(d *dualgraph.Dual, ds []Decision, u, delta int) bool {
	return OwnerCount(d, ds, u) <= delta
}

// OwnerSeeds returns the distinct owners' committed seed values, for the
// statistical independence checks of the E-SEED-SPEC experiment.
func OwnerSeeds(ds []Decision) map[int]*xrand.BitString {
	out := make(map[int]*xrand.BitString)
	for _, d := range ds {
		out[d.Owner] = d.Seed
	}
	return out
}
