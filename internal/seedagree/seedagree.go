package seedagree

import (
	"fmt"
	"math"

	"lbcast/internal/xrand"
)

// Status is a node's SeedAlg state.
type Status int

const (
	// StatusActive nodes are still competing in leader elections.
	StatusActive Status = iota + 1
	// StatusLeader nodes won an election and are advertising their seed
	// for the remainder of their phase.
	StatusLeader
	// StatusInactive nodes have decided and take no further action.
	StatusInactive
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusLeader:
		return "leader"
	case StatusInactive:
		return "inactive"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Msg is the (j, s) pair a leader broadcasts: its id and its initial seed.
// The Seed field is shared, never mutated by receivers; committers clone it
// before consuming bits.
type Msg struct {
	Owner int
	Seed  *xrand.BitString
}

// Decision is one decide(j, s)_u output.
type Decision struct {
	// Owner is j: the id of the node whose seed was committed.
	Owner int
	// Seed is s: the committed seed value.
	Seed *xrand.BitString
	// Round is the local SeedAlg round at which the decision happened
	// (1-based; Rounds()+0 for in-run decisions, Rounds() for defaults).
	Round int
	// Default reports a fall-through decision at the end of all phases
	// (the node never led and never heard a leader).
	Default bool
}

// Params configures SeedAlg. The zero value is invalid; use NewParams or
// fill every field and call Validate.
type Params struct {
	// Eps1 is the algorithm's error parameter ε₁, 0 < ε₁ ≤ ¼.
	Eps1 float64
	// Kappa is the seed length κ in bits, ≥ 1.
	Kappa int
	// Delta is the reliable degree bound Δ; it is rounded up to a power of
	// two internally, matching the paper's simplifying assumption.
	Delta int
	// C4 is the phase length constant c₄. The paper requires an
	// astronomically large worst-case value (≥ 2·4^{c_r·c₃}); the practical
	// default from the E-CONST calibration is DefaultC4.
	C4 float64
}

// DefaultC4 is the calibrated practical phase-length constant.
const DefaultC4 = 4

// NewParams returns validated parameters with the default c₄.
func NewParams(eps1 float64, kappa, delta int) (Params, error) {
	p := Params{Eps1: eps1, Kappa: kappa, Delta: delta, C4: DefaultC4}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

// Validate checks parameter ranges.
func (p Params) Validate() error {
	if !(p.Eps1 > 0 && p.Eps1 <= 0.25) {
		return fmt.Errorf("seedagree: ε₁ = %v outside (0, ¼]", p.Eps1)
	}
	if p.Kappa < 1 {
		return fmt.Errorf("seedagree: κ = %d < 1", p.Kappa)
	}
	if p.Delta < 1 {
		return fmt.Errorf("seedagree: Δ = %d < 1", p.Delta)
	}
	if p.C4 <= 0 {
		return fmt.Errorf("seedagree: c₄ = %v ≤ 0", p.C4)
	}
	return nil
}

// log2Delta returns log₂ of Δ rounded up to a power of two, at least 1.
func (p Params) log2Delta() int {
	return Log2Ceil(p.Delta)
}

// Phases returns the number of leader election phases, log Δ.
func (p Params) Phases() int { return p.log2Delta() }

// PhaseLen returns the rounds per phase, ⌈c₄·log²(1/ε₁)⌉.
func (p Params) PhaseLen() int {
	l := math.Log2(1 / p.Eps1)
	n := int(math.Ceil(p.C4 * l * l))
	if n < 1 {
		n = 1
	}
	return n
}

// Rounds returns the total running time in rounds: Phases × PhaseLen,
// the O((log Δ)·log²(1/ε₁)) of Theorem 3.1.
func (p Params) Rounds() int { return p.Phases() * p.PhaseLen() }

// leaderProb returns the election probability of phase h (1-based):
// 2^{−(log Δ − h + 1)}, i.e. 1/Δ, 2/Δ, …, ¼, ½.
func (p Params) leaderProb(h int) float64 {
	return math.Pow(2, -float64(p.log2Delta()-h+1))
}

// broadcastProb returns the per-round advertising probability of a leader,
// 1/log₂(1/ε₁) ≤ ½ for ε₁ ≤ ¼.
func (p Params) broadcastProb() float64 {
	return 1 / math.Log2(1/p.Eps1)
}

// Log2Ceil returns ⌈log₂ n⌉ for n ≥ 1, at least 1 (so Δ = 1 still yields
// one phase and non-degenerate bit consumption downstream).
func Log2Ceil(n int) int {
	if n <= 2 {
		return 1
	}
	l := 1
	for v := 2; v < n; v <<= 1 {
		l++
	}
	return l
}

// Plan is the precomputed SeedAlg schedule for one Params value: every
// quantity the per-round state machine needs, resolved once with the float
// math (Pow, Log2, Ceil) that is too costly for once-per-round calls. All
// nodes of a run share the same Params, so one Plan serves every Alg —
// build it once with NewPlan and hand it to NewAlgWithPlan.
type Plan struct {
	p        Params
	phaseLen int
	rounds   int
	bcastP   float64
	// pp maps a local round 1..rounds to its packed (phase << 16 | pos)
	// coordinates — 1-based election phase, 0-based position — replacing
	// the per-round div/mod with one table load. Rounds() = Phases() ×
	// PhaseLen() stays far below 2^16 on both axes for every reachable ε₁
	// and Δ (NewPlan checks).
	pp []uint32
	// leaderProb[h] is the election probability of phase h (1-based).
	leaderProb []float64
}

// NewPlan computes the schedule tables for p. It panics on invalid
// parameters (callers validate with Params.Validate first, as NewAlg always
// has).
func NewPlan(p Params) *Plan {
	pl := &Plan{p: p, phaseLen: p.PhaseLen(), rounds: p.Rounds(), bcastP: p.broadcastProb()}
	if pl.phaseLen > 0xffff || p.Phases() > 0xffff {
		panic("seedagree: schedule too long for the packed plan tables")
	}
	pl.pp = make([]uint32, pl.rounds+1)
	for local := 1; local <= pl.rounds; local++ {
		phase := (local-1)/pl.phaseLen + 1
		pos := (local - 1) % pl.phaseLen
		pl.pp[local] = uint32(phase)<<16 | uint32(pos)
	}
	pl.leaderProb = make([]float64, p.Phases()+1)
	for h := 1; h <= p.Phases(); h++ {
		pl.leaderProb[h] = p.leaderProb(h)
	}
	return pl
}

// Params returns the parameters the plan was derived from.
func (pl *Plan) Params() Params { return pl.p }

// Rounds returns the total running time in rounds.
func (pl *Plan) Rounds() int { return pl.rounds }

// PhaseLen returns the rounds per election phase.
func (pl *Plan) PhaseLen() int { return pl.phaseLen }

// LeaderProb returns the election probability of phase h (1-based).
func (pl *Plan) LeaderProb(h int) float64 { return pl.leaderProb[h] }

// PhaseOf maps a local round 1..Rounds() to (phase 1.., position 0..) by
// table lookup.
func (pl *Plan) PhaseOf(local int) (phase, pos int) {
	v := pl.pp[local]
	return int(v >> 16), int(v & 0xffff)
}

// Alg is the per-node SeedAlg state machine, driven by local round numbers
// 1..Params.Rounds(). It is deliberately engine-agnostic so LBAlg can embed
// one instance per phase preamble; the Process wrapper adapts it to the
// simulator for standalone runs.
type Alg struct {
	// Hot per-round fields first: every Transmit/Receive touches status
	// (and leaders compare leaderPhase) before anything else.
	status      Status
	leaderPhase int
	decided     bool
	plan        *Plan

	p   Params
	id  int
	rng *xrand.Source

	initialSeed *xrand.BitString
	// frame is the boxed Msg{id, initialSeed} a leader puts on the air.
	// Reset refills initialSeed in place, so the same boxed value stays
	// valid across runs and advertising rounds never allocate.
	frame any

	decision Decision
}

// NewAlg creates the state machine for node id with its private randomness,
// choosing the initial seed uniformly from {0,1}^κ. It derives a private
// Plan; batch callers that build one Alg per node should compute the plan
// once and use NewAlgWithPlan.
func NewAlg(p Params, id int, rng *xrand.Source) *Alg {
	return NewAlgWithPlan(NewPlan(p), id, rng)
}

// NewAlgWithPlan creates the state machine over a shared precomputed
// schedule (see NewPlan). The plan is read-only to the Alg, so any number
// of nodes may share one.
func NewAlgWithPlan(plan *Plan, id int, rng *xrand.Source) *Alg {
	a := &Alg{p: plan.p, plan: plan, id: id, rng: rng}
	a.Reset()
	return a
}

// Reset rewinds the machine for a fresh run with a freshly drawn initial
// seed (used by LBAlg, which runs seed agreement at every phase preamble).
// The seed buffer is redrawn in place, consuming the same randomness a
// fresh allocation would; committers that need the previous run's seed hold
// clones by the time Reset runs.
func (a *Alg) Reset() {
	if a.initialSeed == nil {
		a.initialSeed = xrand.NewBitString(a.rng, a.p.Kappa)
		a.frame = Msg{Owner: a.id, Seed: a.initialSeed}
	} else {
		a.initialSeed.Refill(a.rng)
	}
	a.status = StatusActive
	a.leaderPhase = 0
	a.decided = false
	a.decision = Decision{}
}

// InitialSeed returns this node's own generated seed for the current run.
func (a *Alg) InitialSeed() *xrand.BitString { return a.initialSeed }

// Status returns the node's current status.
func (a *Alg) Status() Status { return a.status }

// Decided reports whether a decision has been made this run.
func (a *Alg) Decided() bool { return a.decided }

// Idle reports that the node is inactive: it has decided and is not
// advertising, so Transmit and Receive are no-ops (drawing no private
// randomness) for the rest of the run. LBAlg uses this to skip the calls.
func (a *Alg) Idle() bool { return a.status == StatusInactive }

// Decision returns the decision; valid only once Decided is true.
func (a *Alg) Decision() Decision { return a.decision }

// Transmit implements the round's broadcast decision for local round
// 1..Rounds(). Leader election for phase h happens at the first round of
// the phase, before the transmission decision, exactly as in the paper.
// The phase arithmetic and election probabilities come from the shared
// Plan tables instead of per-round div/mod and Pow.
func (a *Alg) Transmit(local int) (payload any, transmit bool) {
	if local < 1 || local > a.plan.rounds {
		return nil, false
	}
	v := a.plan.pp[local]
	phase, pos := int(v>>16), int(v&0xffff)

	// Lazily retire leaders whose advertising phase ended.
	if a.status == StatusLeader && phase > a.leaderPhase {
		a.status = StatusInactive
	}

	if pos == 0 && a.status == StatusActive {
		if a.rng.Coin(a.plan.leaderProb[phase]) {
			a.status = StatusLeader
			a.leaderPhase = phase
			a.decide(Decision{Owner: a.id, Seed: a.initialSeed, Round: local})
		}
	}

	if a.status == StatusLeader && phase == a.leaderPhase {
		if a.rng.Coin(a.plan.bcastP) {
			return a.frame, true
		}
	}
	return nil, false
}

// Receive processes the round's reception outcome. Active nodes that hear a
// leader's (j, s) commit to it and go inactive; the final round triggers the
// default decision for nodes that heard nothing and never led.
func (a *Alg) Receive(local int, payload any, ok bool) {
	if local >= 1 && local <= a.plan.rounds && ok && a.status == StatusActive {
		if msg, isSeed := payload.(Msg); isSeed {
			a.status = StatusInactive
			a.decide(Decision{Owner: msg.Owner, Seed: msg.Seed, Round: local})
		}
	}
	if local == a.plan.rounds {
		a.Finalize()
	}
}

// Finalize applies the end-of-run default: a still-active node decides on
// its own seed. Safe to call more than once.
func (a *Alg) Finalize() {
	if a.status == StatusActive {
		a.status = StatusInactive
		a.decide(Decision{Owner: a.id, Seed: a.initialSeed, Round: a.p.Rounds(), Default: true})
	}
}

func (a *Alg) decide(d Decision) {
	if a.decided {
		return // well-formedness: exactly one decide per run
	}
	a.decided = true
	a.decision = d
}
