package seedagree

import (
	"math"
	"testing"

	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// runSeedAgreement executes SeedAlg on the given dual graph and returns the
// processes after completion.
func runSeedAgreement(t testing.TB, d *dualgraph.Dual, p Params, s sim.LinkScheduler, seed uint64) []*Process {
	t.Helper()
	procs := make([]*Process, d.N())
	simProcs := make([]sim.Process, d.N())
	for u := range procs {
		procs[u] = NewProcess(p)
		simProcs[u] = procs[u]
	}
	e, err := sim.New(sim.Config{Dual: d, Procs: simProcs, Sched: s, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(p.Rounds())
	return procs
}

func initialSeeds(procs []*Process) map[int]*xrand.BitString {
	out := make(map[int]*xrand.BitString, len(procs))
	for u, p := range procs {
		out[u] = p.Alg().InitialSeed()
	}
	return out
}

func TestSpecOnCluster(t *testing.T) {
	// Single-hop cluster: everyone hears everyone, so the first successful
	// leader ends the run for all; owner counts should be small.
	rng := xrand.New(1)
	d, err := dualgraph.SingleHopCluster(24, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewParams(0.1, 64, d.Delta())
	if err != nil {
		t.Fatal(err)
	}
	for trial := uint64(0); trial < 10; trial++ {
		procs := runSeedAgreement(t, d, p, sched.Never{}, trial)
		ds, err := CollectDecisions(procs)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckConsistency(ds); err != nil {
			t.Fatal(err)
		}
		if err := CheckOwnership(ds, initialSeeds(procs)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAgreementBoundOnCluster(t *testing.T) {
	// Empirical δ on a single-hop cluster across trials: the committed
	// owner count should be far below n and concentrate near O(log(1/ε)).
	rng := xrand.New(2)
	d, err := dualgraph.SingleHopCluster(32, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewParams(0.05, 64, d.Delta())
	if err != nil {
		t.Fatal(err)
	}
	const trials = 20
	worst := 0
	for trial := uint64(0); trial < trials; trial++ {
		procs := runSeedAgreement(t, d, p, sched.Never{}, 1000+trial)
		ds, err := CollectDecisions(procs)
		if err != nil {
			t.Fatal(err)
		}
		if m, _ := MaxOwnerCount(d, ds); m > worst {
			worst = m
		}
	}
	// δ bound with a generous practical constant: 6·log₂(1/ε₁) for r = 1.
	bound := int(math.Ceil(6 * math.Log2(1/p.Eps1)))
	if worst > bound {
		t.Errorf("worst owner count %d exceeds practical δ bound %d", worst, bound)
	}
	if worst <= 0 {
		t.Error("owner count should be positive")
	}
}

func TestSpecOnTwoTier(t *testing.T) {
	// Adversarially scheduled unreliable links between clusters: the spec's
	// deterministic conditions must hold regardless.
	rng := xrand.New(3)
	d, err := dualgraph.TwoTierClusters(4, 8, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewParams(0.1, 64, d.Delta())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []sim.LinkScheduler{sched.Never{}, sched.Always{}, sched.Random{P: 0.5, Seed: 9}, sched.Periodic{Period: 5, OnRounds: 2}} {
		procs := runSeedAgreement(t, d, p, s, 4)
		ds, err := CollectDecisions(procs)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckConsistency(ds); err != nil {
			t.Fatal(err)
		}
		if err := CheckOwnership(ds, initialSeeds(procs)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOwnersAreGpLocal(t *testing.T) {
	// A committed owner must be reachable: on a two-tier graph with all
	// unreliable links excluded, owners must come from the node's own
	// cluster (the only nodes it can ever hear).
	rng := xrand.New(4)
	d, err := dualgraph.TwoTierClusters(3, 6, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewParams(0.1, 64, d.Delta())
	if err != nil {
		t.Fatal(err)
	}
	procs := runSeedAgreement(t, d, p, sched.Never{}, 5)
	ds, err := CollectDecisions(procs)
	if err != nil {
		t.Fatal(err)
	}
	for u, dec := range ds {
		if u/6 != dec.Owner/6 {
			t.Errorf("node %d committed to owner %d from another cluster with links excluded", u, dec.Owner)
		}
	}
}

func TestDecideEventsRecorded(t *testing.T) {
	rng := xrand.New(5)
	d, err := dualgraph.SingleHopCluster(10, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewParams(0.1, 64, d.Delta())
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]*Process, d.N())
	simProcs := make([]sim.Process, d.N())
	for u := range procs {
		procs[u] = NewProcess(p)
		simProcs[u] = procs[u]
	}
	e, err := sim.New(sim.Config{Dual: d, Procs: simProcs, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(p.Rounds())
	decides := e.Trace().ByKind(sim.EvDecide)
	if len(decides) != d.N() {
		t.Fatalf("%d decide events for %d nodes", len(decides), d.N())
	}
	seen := map[int]bool{}
	for _, ev := range decides {
		if seen[ev.Node] {
			t.Fatalf("node %d recorded two decide events", ev.Node)
		}
		seen[ev.Node] = true
		if ev.From != procs[ev.Node].Decision().Owner {
			t.Fatalf("event owner %d ≠ decision owner %d", ev.From, procs[ev.Node].Decision().Owner)
		}
	}
}

func TestIndependenceStatistical(t *testing.T) {
	// Condition 4 (independence): committed seeds of distinct owners are
	// uniform over S. Check first-bit balance over many trials.
	rng := xrand.New(6)
	d, err := dualgraph.SingleHopCluster(12, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewParams(0.25, 32, d.Delta())
	if err != nil {
		t.Fatal(err)
	}
	ones, total := 0, 0
	for trial := uint64(0); trial < 300; trial++ {
		procs := runSeedAgreement(t, d, p, sched.Never{}, 50000+trial)
		ds, err := CollectDecisions(procs)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range OwnerSeeds(ds) {
			ones += s.Bit(0)
			total++
		}
	}
	rate := float64(ones) / float64(total)
	if math.Abs(rate-0.5) > 0.1 {
		t.Errorf("first-bit rate of committed owner seeds = %v over %d seeds", rate, total)
	}
}

func TestCheckConsistencyDetectsViolation(t *testing.T) {
	r := xrand.New(7)
	s1, s2 := xrand.NewBitString(r, 16), xrand.NewBitString(r, 16)
	ds := []Decision{{Owner: 1, Seed: s1}, {Owner: 1, Seed: s2}}
	if err := CheckConsistency(ds); err == nil {
		t.Error("conflicting seeds for one owner passed consistency")
	}
	if err := CheckConsistency([]Decision{{Owner: 1, Seed: nil}}); err == nil {
		t.Error("nil seed passed consistency")
	}
}

func TestCheckOwnershipDetectsViolation(t *testing.T) {
	r := xrand.New(8)
	s1, s2 := xrand.NewBitString(r, 16), xrand.NewBitString(r, 16)
	initial := map[int]*xrand.BitString{1: s1}
	if err := CheckOwnership([]Decision{{Owner: 2, Seed: s1}}, initial); err == nil {
		t.Error("unknown owner passed")
	}
	if err := CheckOwnership([]Decision{{Owner: 1, Seed: s2}}, initial); err == nil {
		t.Error("foreign seed passed")
	}
	if err := CheckOwnership([]Decision{{Owner: 1, Seed: s1}}, initial); err != nil {
		t.Errorf("valid ownership rejected: %v", err)
	}
}

func TestOwnerCountSingleton(t *testing.T) {
	d, err := dualgraph.Abstract(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ds := []Decision{{Owner: 0, Seed: xrand.NewBitString(xrand.New(1), 8)}}
	if got := OwnerCount(d, ds, 0); got != 1 {
		t.Errorf("OwnerCount = %d, want 1", got)
	}
	m, arg := MaxOwnerCount(d, ds)
	if m != 1 || arg != 0 {
		t.Errorf("MaxOwnerCount = %d,%d", m, arg)
	}
	if !AgreementHolds(d, ds, 0, 1) {
		t.Error("agreement fails on singleton")
	}
}

func TestMaxOwnerCountEmpty(t *testing.T) {
	d, err := dualgraph.Abstract(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, arg := MaxOwnerCount(d, nil)
	if m != 0 || arg != -1 {
		t.Errorf("MaxOwnerCount on empty = %d,%d", m, arg)
	}
}

func TestTimeComplexityMatchesTheorem(t *testing.T) {
	// Measured rounds must equal the closed form (log Δ)·⌈c₄log²(1/ε₁)⌉.
	for _, delta := range []int{4, 16, 64} {
		for _, eps := range []float64{0.25, 0.1} {
			p := Params{Eps1: eps, Kappa: 8, Delta: delta, C4: DefaultC4}
			l := math.Log2(1 / eps)
			want := Log2Ceil(delta) * int(math.Ceil(DefaultC4*l*l))
			if got := p.Rounds(); got != want {
				t.Errorf("Δ=%d ε=%v: Rounds = %d, want %d", delta, eps, got, want)
			}
		}
	}
}

func BenchmarkSeedAgreementCluster(b *testing.B) {
	rng := xrand.New(1)
	d, err := dualgraph.SingleHopCluster(32, 1, rng)
	if err != nil {
		b.Fatal(err)
	}
	p, err := NewParams(0.1, 64, d.Delta())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSeedAgreement(b, d, p, sched.Never{}, uint64(i))
	}
}
