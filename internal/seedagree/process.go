package seedagree

import (
	"lbcast/internal/sim"
)

// Process adapts Alg to the simulator for standalone seed agreement runs
// (the E-SEED experiments drive it directly). After Params.Rounds() rounds
// the process idles forever; the decision is then available via Decision.
type Process struct {
	params Params
	plan   *Plan
	alg    *Alg
	env    *sim.NodeEnv
	logged bool
}

var _ sim.Process = (*Process)(nil)

// NewProcess returns a standalone SeedAlg process with a private schedule
// plan; experiment harnesses that build one process per node share the
// plan via NewProcessWithPlan.
func NewProcess(p Params) *Process {
	return &Process{params: p}
}

// NewProcessWithPlan returns a standalone SeedAlg process over a shared
// precomputed schedule (see NewPlan).
func NewProcessWithPlan(plan *Plan) *Process {
	return &Process{params: plan.Params(), plan: plan}
}

// Init implements sim.Process.
func (sp *Process) Init(env *sim.NodeEnv) {
	sp.env = env
	if sp.plan == nil {
		sp.plan = NewPlan(sp.params)
	}
	sp.alg = NewAlgWithPlan(sp.plan, env.ID, env.Rng)
}

// Transmit implements sim.Process.
func (sp *Process) Transmit(t int) (any, bool) {
	payload, tx := sp.alg.Transmit(t)
	sp.recordIfDecided(t)
	return payload, tx
}

// Receive implements sim.Process.
func (sp *Process) Receive(t, _ int, payload any, ok bool) {
	sp.alg.Receive(t, payload, ok)
	sp.recordIfDecided(t)
}

// Decided reports whether the node has committed.
func (sp *Process) Decided() bool { return sp.alg != nil && sp.alg.Decided() }

// Decision returns the committed decision (valid once Decided).
func (sp *Process) Decision() Decision { return sp.alg.Decision() }

// InitialSeed exposes the node's own generated seed for spec checking.
func (sp *Process) InitialSeed() interface{ Len() int } { return sp.alg.InitialSeed() }

// Alg exposes the underlying state machine (tests and checkers).
func (sp *Process) Alg() *Alg { return sp.alg }

// recordIfDecided emits the decide(j, s)_u trace event exactly once.
func (sp *Process) recordIfDecided(t int) {
	if sp.logged || !sp.alg.Decided() {
		return
	}
	sp.logged = true
	d := sp.alg.Decision()
	sp.env.Rec.Record(sim.Event{
		Round:   t,
		Node:    sp.env.ID,
		Kind:    sim.EvDecide,
		From:    d.Owner,
		Payload: d.Seed,
	})
}
