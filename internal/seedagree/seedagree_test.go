package seedagree

import (
	"math"
	"testing"

	"lbcast/internal/xrand"
)

func validParams(t testing.TB) Params {
	t.Helper()
	p, err := NewParams(0.1, 256, 16)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewParamsValidation(t *testing.T) {
	tests := []struct {
		name    string
		eps     float64
		kappa   int
		delta   int
		wantErr bool
	}{
		{"valid", 0.1, 64, 8, false},
		{"eps at quarter", 0.25, 64, 8, false},
		{"eps above quarter", 0.3, 64, 8, true},
		{"eps zero", 0, 64, 8, true},
		{"eps negative", -0.1, 64, 8, true},
		{"kappa zero", 0.1, 0, 8, true},
		{"delta zero", 0.1, 64, 0, true},
		{"delta one ok", 0.1, 64, 1, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewParams(tt.eps, tt.kappa, tt.delta)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewParams(%v,%d,%d) error = %v, wantErr %v",
					tt.eps, tt.kappa, tt.delta, err, tt.wantErr)
			}
		})
	}
	bad := Params{Eps1: 0.1, Kappa: 1, Delta: 1, C4: 0}
	if bad.Validate() == nil {
		t.Error("C4=0 validated")
	}
}

func TestLog2Ceil(t *testing.T) {
	tests := []struct{ n, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4}, {17, 5}, {1024, 10},
	}
	for _, tt := range tests {
		if got := Log2Ceil(tt.n); got != tt.want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestParamsDerivation(t *testing.T) {
	p := validParams(t) // eps 0.1, delta 16
	if got := p.Phases(); got != 4 {
		t.Errorf("Phases = %d, want 4", got)
	}
	// PhaseLen = ceil(4 · log2(10)²) = ceil(4·11.03...) = 45.
	wantLen := int(math.Ceil(4 * math.Log2(10) * math.Log2(10)))
	if got := p.PhaseLen(); got != wantLen {
		t.Errorf("PhaseLen = %d, want %d", got, wantLen)
	}
	if p.Rounds() != p.Phases()*p.PhaseLen() {
		t.Error("Rounds ≠ Phases × PhaseLen")
	}
}

func TestLeaderProbSchedule(t *testing.T) {
	p := validParams(t) // logΔ = 4
	want := []float64{1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2}
	for h := 1; h <= 4; h++ {
		if got := p.leaderProb(h); math.Abs(got-want[h-1]) > 1e-15 {
			t.Errorf("leaderProb(%d) = %v, want %v", h, got, want[h-1])
		}
	}
}

func TestBroadcastProb(t *testing.T) {
	p := validParams(t)
	want := 1 / math.Log2(10)
	if got := p.broadcastProb(); math.Abs(got-want) > 1e-15 {
		t.Errorf("broadcastProb = %v, want %v", got, want)
	}
	// For ε₁ ≤ ¼ the probability is at most ½.
	quarter := Params{Eps1: 0.25, Kappa: 1, Delta: 2, C4: 1}
	if quarter.broadcastProb() > 0.5 {
		t.Error("broadcastProb exceeds ½ at ε₁ = ¼")
	}
}

func TestRoundsMatchTheorem(t *testing.T) {
	// Theorem 3.1: O(log Δ · log²(1/ε₁)) rounds. Verify exact structure:
	// doubling Δ adds exactly one phase.
	for _, eps := range []float64{0.25, 0.1, 0.01} {
		var prev int
		for _, delta := range []int{2, 4, 8, 16, 32, 64} {
			p := Params{Eps1: eps, Kappa: 8, Delta: delta, C4: DefaultC4}
			r := p.Rounds()
			if prev != 0 && r-prev != p.PhaseLen() {
				t.Errorf("eps=%v Δ=%d: rounds %d → %d, want step of one phase (%d)",
					eps, delta, prev, r, p.PhaseLen())
			}
			prev = r
		}
	}
}

func TestAlgInitialState(t *testing.T) {
	p := validParams(t)
	a := NewAlg(p, 3, xrand.New(1))
	if a.Status() != StatusActive {
		t.Errorf("initial status = %v", a.Status())
	}
	if a.Decided() {
		t.Error("decided before running")
	}
	if a.InitialSeed().Len() != p.Kappa {
		t.Errorf("seed length = %d, want %d", a.InitialSeed().Len(), p.Kappa)
	}
}

func TestAlgReset(t *testing.T) {
	p := validParams(t)
	a := NewAlg(p, 3, xrand.New(2))
	// Reset refills the seed buffer in place, so snapshot the contents.
	s1 := a.InitialSeed().Clone()
	// Run to completion in isolation: node decides (possibly by default).
	for local := 1; local <= p.Rounds(); local++ {
		a.Transmit(local)
		a.Receive(local, nil, false)
	}
	if !a.Decided() {
		t.Fatal("undecided after full run")
	}
	a.Reset()
	if a.Decided() || a.Status() != StatusActive {
		t.Error("Reset did not clear state")
	}
	if s1.Equal(a.InitialSeed()) {
		t.Error("Reset did not redraw the seed")
	}
}

func TestAlgIsolatedDecidesOwnSeed(t *testing.T) {
	// A node that never hears anything decides its own seed: either it
	// elects itself leader at some phase, or it defaults at the end.
	p := validParams(t)
	for trial := 0; trial < 50; trial++ {
		a := NewAlg(p, 7, xrand.New(uint64(trial)))
		for local := 1; local <= p.Rounds(); local++ {
			a.Transmit(local)
			a.Receive(local, nil, false)
		}
		if !a.Decided() {
			t.Fatal("isolated node undecided")
		}
		d := a.Decision()
		if d.Owner != 7 {
			t.Fatalf("isolated node committed to foreign owner %d", d.Owner)
		}
		if !d.Seed.Equal(a.InitialSeed()) {
			t.Fatal("isolated node committed a seed other than its own")
		}
	}
}

func TestAlgCommitsToHeardLeader(t *testing.T) {
	p := validParams(t)
	// Force no self-election by seeding so first election coins miss:
	// instead, inject a message in round 2 and verify commitment.
	a := NewAlg(p, 1, xrand.New(3))
	if _, tx := a.Transmit(1); tx {
		t.Skip("node elected itself leader in phase 1 (probability 1/Δ); reseed")
	}
	leaderSeed := xrand.NewBitString(xrand.New(99), p.Kappa)
	a.Receive(1, Msg{Owner: 42, Seed: leaderSeed}, true)
	if !a.Decided() {
		t.Fatal("node did not commit on hearing a leader")
	}
	d := a.Decision()
	if d.Owner != 42 || !d.Seed.Equal(leaderSeed) || d.Default {
		t.Fatalf("decision = %+v", d)
	}
	if a.Status() != StatusInactive {
		t.Errorf("status after commit = %v", a.Status())
	}
	// Later messages must not change the decision (well-formedness).
	a.Receive(2, Msg{Owner: 13, Seed: leaderSeed}, true)
	if a.Decision().Owner != 42 {
		t.Error("second message overwrote the decision")
	}
}

func TestAlgLeaderAdvertises(t *testing.T) {
	// A leader must broadcast (i, s) with its own id during its phase.
	p := Params{Eps1: 0.25, Kappa: 16, Delta: 2, C4: 8}
	// Δ=2: one phase with election probability ½; find a seed electing
	// itself at phase 1.
	for s := uint64(0); s < 100; s++ {
		a := NewAlg(p, 5, xrand.New(s))
		payload, tx := a.Transmit(1)
		if a.Status() != StatusLeader {
			continue
		}
		// Leader found. It decided its own seed immediately.
		if !a.Decided() || a.Decision().Owner != 5 {
			t.Fatal("leader did not decide its own seed")
		}
		// Over the remaining rounds it must transmit at least once with
		// overwhelming probability (p = ½ per round).
		sent := tx
		for local := 2; local <= p.Rounds(); local++ {
			payload, tx = a.Transmit(local)
			if tx {
				sent = true
				msg, ok := payload.(Msg)
				if !ok || msg.Owner != 5 {
					t.Fatalf("leader payload = %#v", payload)
				}
				if !msg.Seed.Equal(a.InitialSeed()) {
					t.Fatal("leader advertised a foreign seed")
				}
			}
			a.Receive(local, nil, false)
		}
		if !sent {
			t.Error("leader never advertised in its phase")
		}
		return
	}
	t.Fatal("no seed produced a phase-1 leader in 100 tries at p=½")
}

func TestAlgIgnoresForeignPayloads(t *testing.T) {
	p := validParams(t)
	a := NewAlg(p, 1, xrand.New(4))
	if _, tx := a.Transmit(1); tx {
		t.Skip("self-elected; reseed")
	}
	a.Receive(1, "not a seed message", true)
	if a.Decided() {
		t.Fatal("node committed on a non-seed payload")
	}
}

func TestAlgOutOfRangeRounds(t *testing.T) {
	p := validParams(t)
	a := NewAlg(p, 1, xrand.New(5))
	if _, tx := a.Transmit(0); tx {
		t.Error("transmitted at round 0")
	}
	if _, tx := a.Transmit(p.Rounds() + 1); tx {
		t.Error("transmitted after completion")
	}
}

func TestAlgFinalizeIdempotent(t *testing.T) {
	p := validParams(t)
	a := NewAlg(p, 9, xrand.New(6))
	a.Finalize()
	d1 := a.Decision()
	a.Finalize()
	if a.Decision() != d1 {
		t.Error("Finalize changed the decision")
	}
	if !d1.Default || d1.Owner != 9 {
		t.Errorf("default decision = %+v", d1)
	}
}

func TestLeaderElectionProbabilityEmpirical(t *testing.T) {
	// Phase-1 election probability must be 1/Δ (rounded to power of two).
	p := Params{Eps1: 0.1, Kappa: 8, Delta: 16, C4: 1}
	const trials = 20000
	elected := 0
	for i := 0; i < trials; i++ {
		a := NewAlg(p, 0, xrand.New(uint64(i)))
		a.Transmit(1)
		if a.Status() == StatusLeader {
			elected++
		}
	}
	got := float64(elected) / trials
	if math.Abs(got-1.0/16) > 0.01 {
		t.Errorf("phase-1 election rate = %v, want 1/16", got)
	}
}

func TestStatusString(t *testing.T) {
	for _, s := range []Status{StatusActive, StatusLeader, StatusInactive, Status(77)} {
		if s.String() == "" {
			t.Errorf("empty string for status %d", int(s))
		}
	}
}

// TestPlanMatchesFormulas pins the precomputed schedule tables to the
// Params formulas they cache.
func TestPlanMatchesFormulas(t *testing.T) {
	for _, delta := range []int{1, 2, 3, 8, 100} {
		p, err := NewParams(0.2, 16, delta)
		if err != nil {
			t.Fatal(err)
		}
		pl := NewPlan(p)
		if pl.Rounds() != p.Rounds() || pl.PhaseLen() != p.PhaseLen() {
			t.Fatalf("Δ=%d: plan rounds/phaseLen %d/%d, want %d/%d",
				delta, pl.Rounds(), pl.PhaseLen(), p.Rounds(), p.PhaseLen())
		}
		for local := 1; local <= p.Rounds(); local++ {
			phase, pos := pl.PhaseOf(local)
			if want := (local-1)/p.PhaseLen() + 1; phase != want {
				t.Fatalf("Δ=%d local %d: phase %d, want %d", delta, local, phase, want)
			}
			if want := (local - 1) % p.PhaseLen(); pos != want {
				t.Fatalf("Δ=%d local %d: pos %d, want %d", delta, local, pos, want)
			}
		}
		for h := 1; h <= p.Phases(); h++ {
			if pl.LeaderProb(h) != p.leaderProb(h) {
				t.Fatalf("Δ=%d phase %d: leaderProb %v, want %v", delta, h, pl.LeaderProb(h), p.leaderProb(h))
			}
		}
	}
}

// TestAlgWithSharedPlanEquivalent: an Alg over a shared plan behaves
// identically to one that derived its own.
func TestAlgWithSharedPlanEquivalent(t *testing.T) {
	p, err := NewParams(0.25, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan := NewPlan(p)
	a := NewAlg(p, 1, xrand.New(42))
	b := NewAlgWithPlan(plan, 1, xrand.New(42))
	for local := 1; local <= p.Rounds(); local++ {
		pa, ta := a.Transmit(local)
		pb, tb := b.Transmit(local)
		if ta != tb {
			t.Fatalf("round %d: transmit %v vs %v", local, ta, tb)
		}
		if ta {
			ma, mb := pa.(Msg), pb.(Msg)
			if ma.Owner != mb.Owner || !ma.Seed.Equal(mb.Seed) {
				t.Fatalf("round %d: payloads diverged", local)
			}
		}
		a.Receive(local, nil, false)
		b.Receive(local, nil, false)
		if a.Status() != b.Status() || a.Decided() != b.Decided() || a.Idle() != b.Idle() {
			t.Fatalf("round %d: state diverged (%v/%v vs %v/%v)", local, a.Status(), a.Decided(), b.Status(), b.Decided())
		}
	}
	da, db := a.Decision(), b.Decision()
	if da.Owner != db.Owner || da.Default != db.Default || !da.Seed.Equal(db.Seed) {
		t.Fatalf("decisions diverged: %+v vs %+v", da, db)
	}
}
