package sim

import (
	"fmt"
	"reflect"
	"testing"

	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/xrand"
)

func benchRng() *xrand.Source { return xrand.New(1) }

// scriptProc transmits the rounds listed in txRounds and records everything
// it receives.
type scriptProc struct {
	env      *NodeEnv
	txRounds map[int]bool
	payload  any

	got map[int]reception
}

type reception struct {
	from    int
	payload any
	ok      bool
}

func newScriptProc(payload any, rounds ...int) *scriptProc {
	tx := make(map[int]bool, len(rounds))
	for _, r := range rounds {
		tx[r] = true
	}
	return &scriptProc{txRounds: tx, payload: payload, got: make(map[int]reception)}
}

func (p *scriptProc) Init(env *NodeEnv) { p.env = env }

func (p *scriptProc) Transmit(t int) (any, bool) {
	if p.txRounds[t] {
		return p.payload, true
	}
	return nil, false
}

func (p *scriptProc) Receive(t, from int, payload any, ok bool) {
	p.got[t] = reception{from: from, payload: payload, ok: ok}
}

// coinProc transmits with probability p every round using its node RNG, and
// counts receptions. Used for driver-parity and stress tests.
type coinProc struct {
	env   *NodeEnv
	p     float64
	seen  []int
	heard int
}

func (c *coinProc) Init(env *NodeEnv) { c.env = env }

func (c *coinProc) Transmit(t int) (any, bool) {
	if c.env.Rng.Coin(c.p) {
		return c.env.ID, true
	}
	return nil, false
}

func (c *coinProc) Receive(t, from int, payload any, ok bool) {
	if ok {
		c.heard++
		c.seen = append(c.seen, from)
	}
}

// newTestEngine constructs an engine and registers Close on test cleanup,
// so goroutine-per-node drivers can never leak node goroutines into later
// tests or benchmarks — even when an assertion fails before the explicit
// Close. Close is idempotent and a no-op for the other drivers.
func newTestEngine(tb testing.TB, cfg Config) *Engine {
	tb.Helper()
	e, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(e.Close)
	return e
}

func must(t testing.TB) func(*dualgraph.Dual, error) *dualgraph.Dual {
	return func(d *dualgraph.Dual, err error) *dualgraph.Dual {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
}

// lineDual builds 0-1-2 reliable path plus unreliable edge {0,2}.
func lineDual(t testing.TB) *dualgraph.Dual {
	return must(t)(dualgraph.Abstract(3,
		[]dualgraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}},
		[]dualgraph.Edge{{U: 0, V: 2}},
	))
}

func TestNewValidation(t *testing.T) {
	d := lineDual(t)
	if _, err := New(Config{Dual: nil}); err == nil {
		t.Error("want error for nil dual")
	}
	if _, err := New(Config{Dual: d, Procs: []Process{newScriptProc(nil)}}); err == nil {
		t.Error("want error for process count mismatch")
	}
}

func TestDeliveryBasic(t *testing.T) {
	d := lineDual(t)
	procs := []Process{
		newScriptProc("hello", 1),
		newScriptProc(nil),
		newScriptProc(nil),
	}
	e, err := New(Config{Dual: d, Procs: procs})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(2)

	// Round 1: node 0 transmits; node 1 (reliable neighbor) hears it;
	// node 2 does not (unreliable edge excluded by nil scheduler).
	p1 := procs[1].(*scriptProc)
	if got := p1.got[1]; !got.ok || got.from != 0 || got.payload != "hello" {
		t.Errorf("node 1 round 1 reception = %+v", got)
	}
	p2 := procs[2].(*scriptProc)
	if got := p2.got[1]; got.ok {
		t.Errorf("node 2 heard through an excluded unreliable edge: %+v", got)
	}
	// The transmitter itself receives ⊥.
	p0 := procs[0].(*scriptProc)
	if got := p0.got[1]; got.ok || got.from != NoTransmitter {
		t.Errorf("transmitter reception = %+v, want ⊥", got)
	}
	// Round 2: silence everywhere.
	if got := p1.got[2]; got.ok {
		t.Errorf("node 1 round 2 reception = %+v, want ⊥", got)
	}
	if e.Trace().Transmissions != 1 || e.Trace().Deliveries != 1 {
		t.Errorf("trace stats = %+v", e.Trace())
	}
}

func TestUnreliableEdgeScheduled(t *testing.T) {
	d := lineDual(t)
	procs := []Process{newScriptProc("x", 1), newScriptProc(nil), newScriptProc(nil)}
	e, err := New(Config{Dual: d, Procs: procs, Sched: sched.Always{}})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(1)
	// With the unreliable edge {0,2} included, node 2 hears node 0.
	p2 := procs[2].(*scriptProc)
	if got := p2.got[1]; !got.ok || got.from != 0 {
		t.Errorf("node 2 reception = %+v, want from 0", got)
	}
}

func TestCollision(t *testing.T) {
	// Nodes 0 and 2 both transmit in round 1; node 1 neighbors both in G,
	// so it hears ⊥ and a collision is counted.
	d := lineDual(t)
	procs := []Process{newScriptProc("a", 1), newScriptProc(nil), newScriptProc("b", 1)}
	e, err := New(Config{Dual: d, Procs: procs})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(1)
	p1 := procs[1].(*scriptProc)
	if got := p1.got[1]; got.ok {
		t.Errorf("node 1 heard %+v despite collision", got)
	}
	if e.Trace().Collisions != 1 {
		t.Errorf("Collisions = %d, want 1", e.Trace().Collisions)
	}
}

func TestCollisionViaScheduledEdge(t *testing.T) {
	// Node 1 transmits (reliable neighbor of 0); node 2 transmits and the
	// adversary includes unreliable edge {0,2}: node 0 must hear ⊥.
	d := must(t)(dualgraph.Abstract(3,
		[]dualgraph.Edge{{U: 0, V: 1}},
		[]dualgraph.Edge{{U: 0, V: 2}},
	))
	procs := []Process{newScriptProc(nil), newScriptProc("r", 1), newScriptProc("d", 1)}

	t.Run("edge excluded delivers", func(t *testing.T) {
		ps := []Process{newScriptProc(nil), newScriptProc("r", 1), newScriptProc("d", 1)}
		e, err := New(Config{Dual: d, Procs: ps})
		if err != nil {
			t.Fatal(err)
		}
		e.Run(1)
		if got := ps[0].(*scriptProc).got[1]; !got.ok || got.from != 1 {
			t.Errorf("node 0 reception = %+v, want from 1", got)
		}
	})
	t.Run("edge included collides", func(t *testing.T) {
		e, err := New(Config{Dual: d, Procs: procs, Sched: sched.Always{}})
		if err != nil {
			t.Fatal(err)
		}
		e.Run(1)
		if got := procs[0].(*scriptProc).got[1]; got.ok {
			t.Errorf("node 0 heard %+v despite manufactured collision", got)
		}
	})
}

func TestNodeEnvContents(t *testing.T) {
	d := lineDual(t)
	procs := []Process{newScriptProc(nil), newScriptProc(nil), newScriptProc(nil)}
	if _, err := New(Config{Dual: d, Procs: procs, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	for u, p := range procs {
		env := p.(*scriptProc).env
		if env.ID != u {
			t.Errorf("node %d has ID %d", u, env.ID)
		}
		// Line 0-1-2: Δ = 3 (middle node), Δ′ = 3 as well (0 has G'-nbrs 1,2).
		if env.Delta != 3 || env.DeltaPrime != 3 {
			t.Errorf("node %d sees Δ=%d Δ'=%d, want 3, 3", u, env.Delta, env.DeltaPrime)
		}
		if env.Rng == nil || env.Rec == nil {
			t.Errorf("node %d env missing rng/recorder", u)
		}
	}
}

func TestEnvironmentHooks(t *testing.T) {
	d := lineDual(t)
	procs := []Process{newScriptProc(nil), newScriptProc(nil), newScriptProc(nil)}
	var calls []string
	env := &hookEnv{
		before: func(t int) { calls = append(calls, fmt.Sprintf("b%d", t)) },
		after:  func(t int) { calls = append(calls, fmt.Sprintf("a%d", t)) },
	}
	e, err := New(Config{Dual: d, Procs: procs, Env: env})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(3)
	want := []string{"b1", "a1", "b2", "a2", "b3", "a3"}
	if !reflect.DeepEqual(calls, want) {
		t.Errorf("environment hooks = %v, want %v", calls, want)
	}
}

type hookEnv struct {
	before, after func(int)
}

func (h *hookEnv) BeforeRound(t int) { h.before(t) }
func (h *hookEnv) AfterRound(t int)  { h.after(t) }

func TestAdaptiveSchedulerIntegration(t *testing.T) {
	// Reliable sender transmits every round; decoys chatter constantly.
	// Under the adaptive adversary the target must never receive; under an
	// oblivious scheduler it receives whenever no decoy edge is included.
	d := must(t)(dualgraph.StarWithDecoys(4))
	mk := func() []Process {
		ps := make([]Process, d.N())
		ps[0] = newScriptProc(nil)
		rounds := make([]int, 50)
		for i := range rounds {
			rounds[i] = i + 1
		}
		for u := 1; u < d.N(); u++ {
			ps[u] = newScriptProc(u, rounds...)
		}
		return ps
	}

	adaptive, err := sched.NewAdaptive(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	psA := mk()
	eA, err := New(Config{Dual: d, Procs: psA, Sched: adaptive})
	if err != nil {
		t.Fatal(err)
	}
	eA.Run(50)
	for r, got := range psA[0].(*scriptProc).got {
		if got.ok {
			t.Fatalf("round %d: adaptive adversary let a delivery through: %+v", r, got)
		}
	}

	psO := mk()
	eO, err := New(Config{Dual: d, Procs: psO, Sched: sched.Never{}})
	if err != nil {
		t.Fatal(err)
	}
	eO.Run(50)
	delivered := 0
	for _, got := range psO[0].(*scriptProc).got {
		if got.ok {
			delivered++
		}
	}
	if delivered != 50 {
		t.Fatalf("oblivious Never scheduler delivered %d/50", delivered)
	}
}

func TestDriverParity(t *testing.T) {
	// The three drivers must produce identical executions for identical
	// configurations: same receptions at every node, same trace stats.
	d := must(t)(dualgraph.Abstract(8,
		[]dualgraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 6}, {U: 6, V: 7}},
		[]dualgraph.Edge{{U: 0, V: 2}, {U: 1, V: 3}, {U: 2, V: 4}, {U: 3, V: 5}, {U: 4, V: 6}},
	))
	run := func(driver Driver) ([]int, Trace) {
		procs := make([]Process, d.N())
		for u := range procs {
			procs[u] = &coinProc{p: 0.3}
		}
		e := newTestEngine(t, Config{
			Dual:   d,
			Procs:  procs,
			Sched:  sched.Random{P: 0.5, Seed: 11},
			Seed:   77,
			Driver: driver,
		})
		e.Run(200)
		e.Close()
		heard := make([]int, d.N())
		for u := range procs {
			heard[u] = procs[u].(*coinProc).heard
		}
		return heard, *e.Trace()
	}

	heardSeq, traceSeq := run(DriverSequential)
	heardPool, tracePool := run(DriverWorkerPool)
	heardGo, traceGo := run(DriverGoroutinePerNode)

	if !reflect.DeepEqual(heardSeq, heardPool) {
		t.Errorf("worker pool diverged: %v vs %v", heardPool, heardSeq)
	}
	if !reflect.DeepEqual(heardSeq, heardGo) {
		t.Errorf("goroutine-per-node diverged: %v vs %v", heardGo, heardSeq)
	}
	for name, tr := range map[string]Trace{"pool": tracePool, "goroutine": traceGo} {
		if tr.Transmissions != traceSeq.Transmissions || tr.Deliveries != traceSeq.Deliveries || tr.Collisions != traceSeq.Collisions {
			t.Errorf("%s trace stats diverged: %+v vs %+v", name, tr, traceSeq)
		}
	}
}

func TestRunDeterministicAcrossRepeats(t *testing.T) {
	d := lineDual(t)
	run := func() int {
		procs := []Process{&coinProc{p: 0.5}, &coinProc{p: 0.5}, &coinProc{p: 0.5}}
		e, err := New(Config{Dual: d, Procs: procs, Sched: sched.Random{P: 0.3, Seed: 1}, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		e.Run(500)
		return e.Trace().Deliveries
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical configurations diverged: %d vs %d deliveries", a, b)
	}
}

func TestSeedChangesExecution(t *testing.T) {
	d := lineDual(t)
	run := func(seed uint64) int {
		procs := []Process{&coinProc{p: 0.5}, &coinProc{p: 0.5}, &coinProc{p: 0.5}}
		e, err := New(Config{Dual: d, Procs: procs, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		e.Run(500)
		return e.Trace().Transmissions
	}
	if run(1) == run(2) {
		t.Skip("different seeds coincidentally matched transmissions; rerun with more rounds if persistent")
	}
}

func TestRecorderEventsOrdered(t *testing.T) {
	// Events recorded by processes must appear in deterministic node order
	// per round regardless of driver.
	d := must(t)(dualgraph.Abstract(4, []dualgraph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}, nil))
	for _, driver := range []Driver{DriverSequential, DriverWorkerPool, DriverGoroutinePerNode} {
		procs := make([]Process, 4)
		for u := range procs {
			procs[u] = &recordingProc{}
		}
		e := newTestEngine(t, Config{Dual: d, Procs: procs, Driver: driver})
		e.Run(3)
		e.Close()
		evs := e.Trace().AppendEvents(nil)
		if len(evs) != 12 {
			t.Fatalf("driver %d: %d events, want 12", driver, len(evs))
		}
		for i, ev := range evs {
			wantRound, wantNode := i/4+1, i%4
			if ev.Round != wantRound || ev.Node != wantNode {
				t.Fatalf("driver %d: event %d = %+v, want round %d node %d",
					driver, i, ev, wantRound, wantNode)
			}
		}
	}
}

type recordingProc struct{ env *NodeEnv }

func (p *recordingProc) Init(env *NodeEnv) { p.env = env }

func (p *recordingProc) Transmit(t int) (any, bool) {
	p.env.Rec.Record(Event{Round: t, Node: p.env.ID, Kind: EvRecv})
	return nil, false
}

func (p *recordingProc) Receive(int, int, any, bool) {}

func TestEmptyNetwork(t *testing.T) {
	d := must(t)(dualgraph.Abstract(0, nil, nil))
	e, err := New(Config{Dual: d, Procs: nil})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(10)
	if e.Round() != 10 {
		t.Errorf("Round = %d", e.Round())
	}
}

func TestSingletonNetwork(t *testing.T) {
	d := must(t)(dualgraph.Abstract(1, nil, nil))
	procs := []Process{newScriptProc("solo", 1, 2)}
	e, err := New(Config{Dual: d, Procs: procs})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(3)
	if e.Trace().Deliveries != 0 {
		t.Error("singleton delivered to itself")
	}
}

func TestCloseIdempotent(t *testing.T) {
	d := lineDual(t)
	procs := []Process{newScriptProc(nil), newScriptProc(nil), newScriptProc(nil)}
	e := newTestEngine(t, Config{Dual: d, Procs: procs, Driver: DriverGoroutinePerNode})
	e.Run(2)
	e.Close()
	e.Close()
}

func TestPerRoundStats(t *testing.T) {
	d := lineDual(t)
	procs := []Process{newScriptProc("a", 1, 3), newScriptProc(nil), newScriptProc("b", 3)}
	tr := &Trace{SampleRounds: true}
	e, err := New(Config{Dual: d, Procs: procs, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(3)
	if len(tr.PerRound) != 3 {
		t.Fatalf("PerRound has %d entries, want 3", len(tr.PerRound))
	}
	// Round 1: node 0 transmits, node 1 hears it. Round 2: silence.
	// Round 3: nodes 0 and 2 transmit → collision at node 1.
	if rs := tr.PerRound[0]; rs.Round != 1 || rs.Transmissions != 1 || rs.Deliveries != 1 || rs.Collisions != 0 {
		t.Errorf("round 1 stats = %+v", rs)
	}
	if rs := tr.PerRound[1]; rs.Transmissions != 0 || rs.Deliveries != 0 {
		t.Errorf("round 2 stats = %+v", rs)
	}
	if rs := tr.PerRound[2]; rs.Transmissions != 2 || rs.Deliveries != 0 || rs.Collisions != 1 {
		t.Errorf("round 3 stats = %+v", rs)
	}
	// Per-round entries must sum to the aggregate counters.
	var tx, del, col int
	for _, rs := range tr.PerRound {
		tx += rs.Transmissions
		del += rs.Deliveries
		col += rs.Collisions
	}
	if tx != tr.Transmissions || del != tr.Deliveries || col != tr.Collisions {
		t.Errorf("per-round sums (%d,%d,%d) ≠ aggregates (%d,%d,%d)",
			tx, del, col, tr.Transmissions, tr.Deliveries, tr.Collisions)
	}
}

func TestPerRoundDisabledByDefault(t *testing.T) {
	d := lineDual(t)
	procs := []Process{newScriptProc(nil), newScriptProc(nil), newScriptProc(nil)}
	e, err := New(Config{Dual: d, Procs: procs})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(5)
	if e.Trace().PerRound != nil {
		t.Error("PerRound collected without SampleRounds")
	}
}

func TestMsgID(t *testing.T) {
	id := NewMsgID(17, 42)
	if id.Src() != 17 || id.Seq() != 42 {
		t.Errorf("MsgID round trip: src=%d seq=%d", id.Src(), id.Seq())
	}
	if NewMsgID(1, 1) == NewMsgID(1, 2) || NewMsgID(1, 1) == NewMsgID(2, 1) {
		t.Error("MsgID collisions")
	}
	if id.String() == "" {
		t.Error("empty MsgID string")
	}
}

func TestTraceFilters(t *testing.T) {
	tr := &Trace{}
	tr.Record(Event{Round: 1, Node: 0, Kind: EvBcast})
	tr.Record(Event{Round: 2, Node: 1, Kind: EvRecv})
	tr.Record(Event{Round: 3, Node: 0, Kind: EvAck})
	if got := tr.ByKind(EvBcast); len(got) != 1 || got[0].Round != 1 {
		t.Errorf("ByKind(EvBcast) = %v", got)
	}
	if got := tr.ByNode(0); len(got) != 2 {
		t.Errorf("ByNode(0) = %v", got)
	}
	for _, k := range []EventKind{EvBcast, EvAck, EvRecv, EvDecide, EventKind(99)} {
		if k.String() == "" {
			t.Errorf("empty String for kind %d", k)
		}
	}
}

func BenchmarkEngineRound(b *testing.B) {
	for _, bc := range []struct {
		name   string
		driver Driver
	}{
		{"sequential", DriverSequential},
		{"workerpool", DriverWorkerPool},
	} {
		b.Run(bc.name, func(b *testing.B) {
			d, err := dualgraph.RandomGeometric(500, 10, 10, 2, dualgraph.GreyUnreliable, benchRng())
			if err != nil {
				b.Fatal(err)
			}
			procs := make([]Process, d.N())
			for u := range procs {
				procs[u] = &coinProc{p: 0.2}
			}
			e, err := New(Config{Dual: d, Procs: procs, Sched: sched.Random{P: 0.5, Seed: 3}, Driver: bc.driver})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}

// quietCoinProc transmits by private coin with a pre-boxed payload and
// records nothing: the pure engine round path.
type quietCoinProc struct {
	env     *NodeEnv
	p       float64
	payload any
}

func (c *quietCoinProc) Init(env *NodeEnv) { c.env = env; c.payload = env.ID }

func (c *quietCoinProc) Transmit(t int) (any, bool) {
	return c.payload, c.env.Rng.Coin(c.p)
}

func (c *quietCoinProc) Receive(int, int, any, bool) {}

// TestStepSteadyStateZeroAlloc pins the scatter kernel's allocation
// contract: once the engine is warm, a round allocates nothing — no payload
// boxing, no schedule scratch, no per-listener scans buffers.
func TestStepSteadyStateZeroAlloc(t *testing.T) {
	d, err := dualgraph.RandomGeometric(150, 6, 6, 1.6, dualgraph.GreyUnreliable, benchRng())
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]Process, d.N())
	for u := range procs {
		procs[u] = &quietCoinProc{p: 0.25}
	}
	e, err := New(Config{Dual: d, Procs: procs, Sched: sched.Random{P: 0.5, Seed: 8}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(10) // warm up scratch
	if avg := testing.AllocsPerRun(200, e.Step); avg != 0 {
		t.Errorf("Step allocates %v objects per round in steady state, want 0", avg)
	}
}
