package sim

import (
	"lbcast/internal/xrand"
)

// NoTransmitter marks the From field of a reception event when nothing was
// delivered (silence or collision).
const NoTransmitter = -1

// Blocked marks a ReceptionModel outcome where audible energy failed to
// decode (interference or sub-threshold SINR). The engine counts it as a
// collision in the trace statistics; the process still receives ⊥.
const Blocked = -2

// Process is the behaviour of one node, the paper's "process automaton".
// The engine calls Init once, then Transmit and Receive once per round in
// that order. Implementations must confine all state to themselves (plus
// their NodeEnv), because drivers may run distinct processes concurrently.
type Process interface {
	// Init hands the process its identity and local knowledge before round 1.
	// Per the model, a process knows its own id and the bounds Δ and Δ′ but
	// not the network size n.
	Init(env *NodeEnv)
	// Transmit implements the round-t broadcast decision: return the payload
	// and true to transmit, or false to receive this round.
	Transmit(t int) (payload any, transmit bool)
	// Receive delivers the round-t reception outcome: ok=true with the
	// transmitter and payload for a successful reception, ok=false for ⊥
	// (from is NoTransmitter, payload nil). Transmitting nodes always get ⊥.
	Receive(t int, from int, payload any, ok bool)
}

// Environment drives inputs and consumes outputs, per the round structure of
// Section 2. It runs single-threaded: BeforeRound(t) before any process acts
// in round t and AfterRound(t) after every process finished round t.
// Environments interact with processes through whatever typed interface the
// protocol exposes (e.g. LBAlg's Bcast input), mirroring the paper's
// deterministic environment automata.
type Environment interface {
	BeforeRound(t int)
	AfterRound(t int)
}

// LinkScheduler resolves which unreliable edges (indices into
// Dual.UnreliableEdges) join the communication topology each round.
//
// An oblivious scheduler — the model assumed by the paper's upper bounds —
// must answer as a pure function of (t, edge), fixed before the execution.
// Non-oblivious schedulers additionally implement TransmitterAware; they
// deliberately break the model for the adaptive-adversary ablation.
type LinkScheduler interface {
	Included(t int, edge int) bool
}

// BatchLinkScheduler is an optional fast path for LinkScheduler: the engine
// hands the scheduler the round's whole inclusion mask (indexed by
// unreliable edge) to fill in one call, avoiding one interface dispatch per
// edge per round. Implementations must overwrite every entry of mask and
// must agree with Included: mask[i] == Included(t, i) for all i.
//
// Schedulers that do not implement it run through a per-edge compatibility
// shim in the engine.
type BatchLinkScheduler interface {
	LinkScheduler
	IncludedBatch(t int, mask []bool)
}

// SparseLinkScheduler is an optional fast path beyond BatchLinkScheduler for
// schedulers that can answer edge-subset queries. It makes sparse rounds
// O(Σ deg over transmitters) end to end: instead of rewriting the full
// O(|E′\E|) inclusion mask every round, the engine asks only about the edges
// incident to this round's transmitters.
//
// Uniform is the cached-mask fast path: when the round's decision does not
// depend on the edge (Always, Never, Periodic, AntiDecay, and Random at
// P ∈ {0, 1}), it returns that decision with ok=true and the engine skips
// per-edge resolution entirely. When ok=false the engine calls IncludedFor
// with the transmitter-incident edge lists.
//
// Both methods must agree with Included: Uniform(t) = (v, true) implies
// Included(t, e) == v for every e, and IncludedFor must set
// out[i] = Included(t, edges[i]) for every i. IncludedFor must be safe for
// concurrent calls with distinct out buffers — the parallel scatter issues
// them from multiple workers.
type SparseLinkScheduler interface {
	LinkScheduler
	Uniform(t int) (v, ok bool)
	IncludedFor(t int, edges []int32, out []bool)
}

// ReceptionModel is an alternative physical layer: instead of resolving
// receptions through the dual graph topology, the link schedule and the
// single-transmitter collision rule, the engine hands the round's transmitter
// set to the model and lets it decide who hears whom. This is how non-graph
// reception semantics — e.g. the SINR model of internal/sinr, where
// decodability depends on the aggregate interference of all concurrent
// transmitters — plug into the same engine, drivers and trace machinery.
//
// A Config supplies either a Sched (dual-graph path) or a Reception model,
// never both; with Reception set the dual graph still provides the vertex
// set and the Δ/Δ′ bounds handed to processes, but its edges play no role
// in delivery.
type ReceptionModel interface {
	// Resolve decides round t: txs is the ascending list of transmitting
	// nodes, and out (one slot per node, pre-sized by the engine) must be
	// filled for every node with the id of the unique transmitter that node
	// successfully receives, NoTransmitter for silence, or Blocked for
	// energy that failed to decode (counted as a collision). Entries for
	// transmitting nodes are ignored — transmitters always receive ⊥.
	// Resolve must be a deterministic function of (t, txs).
	Resolve(t int, txs []int32, out []int32)
}

// TransmitterAware is implemented by adaptive (non-oblivious) schedulers.
// The engine calls ObserveTransmitters after transmit decisions are fixed
// and before Included is queried for round t, giving the adversary exactly
// the power the paper proves fatal for progress ([11]).
type TransmitterAware interface {
	ObserveTransmitters(t int, transmitting []bool)
}

// NodeEnv is a process's window onto the world, fixed at Init.
type NodeEnv struct {
	// ID is the node's identity (the vertex index; ids are unique).
	ID int
	// Delta and DeltaPrime are the degree bounds Δ and Δ′ every process is
	// assumed to know.
	Delta, DeltaPrime int
	// R is the geographic parameter r ≥ 1.
	R float64
	// Rng is the node's private randomness stream.
	Rng *xrand.Source
	// Rec records protocol events (decide/bcast/ack/recv) into the trace.
	Rec Recorder
}

// Recorder sinks protocol events. Engine-provided recorders are safe to use
// from the owning node during its own Transmit/Receive calls.
type Recorder interface {
	Record(ev Event)
}

// discardRecorder drops all events; used when no trace is attached.
type discardRecorder struct{}

// Record implements Recorder by dropping the event.
func (discardRecorder) Record(Event) {}
