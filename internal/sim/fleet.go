// This file runs fleets of independent engines: the World comparison
// harness builds one engine per policy over clones of one configuration and
// runs them concurrently. Each engine is fully self-contained (its own
// processes, scheduler, environment and trace), so fleet scheduling needs
// no synchronisation beyond the pool's completion edges — determinism of
// every individual engine is untouched by how the fleet interleaves them.

package sim

import (
	"runtime"
	"sync/atomic"
)

// NewClones builds k engines from one base configuration: each engine's
// Config starts as a struct copy of base, vary(i, &cfg) customises it
// (processes, seed, scheduler — anything shared and mutable must be
// replaced here), and New validates it. On any error the already-built
// engines are closed and the error returned.
func NewClones(base Config, k int, vary func(i int, cfg *Config) error) ([]*Engine, error) {
	engines := make([]*Engine, 0, k)
	fail := func(err error) ([]*Engine, error) {
		for _, e := range engines {
			e.Close()
		}
		return nil, err
	}
	for i := 0; i < k; i++ {
		cfg := base
		if err := vary(i, &cfg); err != nil {
			return fail(err)
		}
		e, err := New(cfg)
		if err != nil {
			return fail(err)
		}
		engines = append(engines, e)
	}
	return engines, nil
}

// RunFleet executes engines[i].Run(rounds[i]) for every i, running up to
// workers engines concurrently (≤ 0 means GOMAXPROCS; 1 degenerates to the
// sequential loop). Engines are claimed off a shared counter, so long and
// short runs pack onto the workers without a static partition. RunFleet
// returns when every engine has finished its budget.
func RunFleet(workers int, engines []*Engine, rounds []int) {
	if len(engines) != len(rounds) {
		panic("sim: RunFleet engines/rounds length mismatch")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(engines) {
		workers = len(engines)
	}
	if workers <= 1 {
		for i, e := range engines {
			e.Run(rounds[i])
		}
		return
	}
	var next atomic.Int64
	pool := newWorkerPool(workers)
	defer pool.stop()
	pool.run(workers, func(int) {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(engines) {
				return
			}
			engines[i].Run(rounds[i])
		}
	})
}
