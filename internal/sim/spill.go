package sim

import (
	"encoding/binary"
	"fmt"
	"os"
)

// This file is the trace's spill-to-disk backend. Long executions that keep
// their full event history — the n = 4000 protocol-comparison runs record
// hundreds of millions of events over ~190k rounds — pay ~21 B of resident
// memory per event in the columnar store. Spilling moves sealed chunks to a
// temp file as they fill and rehydrates them on demand through a one-chunk
// cache, so resident trace memory stays bounded by the retention window
// while every read path (Len/At/Events/ByKind/ByNode/WriteJSON and the
// lbspec checker) sees the identical event sequence; spill_test.go pins the
// WriteJSON output byte-identical to an unspilled trace.
//
// Only full (sealed) chunks are ever on disk, so the file is an array of
// fixed-size records indexed by absolute chunk number: chunk k lives at
// offset k·spillChunkBytes whether or not its predecessors were spilled
// (unspilled chunks just leave holes, which the filesystem keeps sparse).
// The sparse payload side table stays in memory — payload-carrying events
// (bcast inputs) are rare and their values are opaque interface values.

// spillChunkBytes is the on-disk size of one sealed chunk: five columns of
// eventChunkLen entries (round, node, from int32; kind one byte; msgID
// int64), little-endian, concatenated column-wise.
const spillChunkBytes = eventChunkLen * (4 + 4 + 1 + 4 + 8)

// traceSpill is the spill state of one eventStore.
type traceSpill struct {
	f *os.File
	// retain is how many sealed chunks stay in memory behind the active
	// chunk before the flusher moves them to disk.
	retain int
	// err latches the first write failure: spilling stops (chunks simply
	// stay in memory, correctness unaffected) and SpillError reports it.
	err error
	// chunks and bytes count what was written, for telemetry and tests.
	chunks int
	bytes  int64
	// cacheIdx/cache is the one-chunk rehydration cache (absolute chunk
	// index, -1 empty). Trace reads are single-threaded per the Trace
	// contract, and every walk is ascending, so one slot suffices.
	cacheIdx int
	cache    *eventChunk
	buf      [spillChunkBytes]byte
}

// spillRetainDefault is the default in-memory retention window (sealed
// chunks behind the active one). Two chunks keep the recent tail — what
// incremental consumers scan between rounds — off the disk path.
const spillRetainDefault = 2

// SpillToDisk redirects sealed event chunks to an unnamed temp file in dir
// (dir "" = the system temp directory), bounding the trace's resident
// event memory to the retention window plus one chunk being filled.
// Enable before or during a run; already-sealed chunks are moved at the
// next seal. Every read path transparently rehydrates spilled chunks, so
// consumers are unaffected; CloseSpill releases the file when the trace is
// no longer needed. A write failure latches (see SpillError): spilling
// stops and subsequent chunks stay in memory, never corrupting the trace.
func (tr *Trace) SpillToDisk(dir string) error {
	if tr.store.spill != nil {
		return fmt.Errorf("sim: trace already spilling")
	}
	f, err := os.CreateTemp(dir, "lbcast-trace-*.spill")
	if err != nil {
		return fmt.Errorf("sim: creating spill file: %w", err)
	}
	// Unlink immediately: the file lives until CloseSpill (or process
	// exit) and can never be leaked on a crash.
	os.Remove(f.Name())
	tr.store.spill = &traceSpill{f: f, retain: spillRetainDefault, cacheIdx: -1}
	return nil
}

// SpillStats reports how many sealed chunks (and bytes) have been moved to
// disk so far.
func (tr *Trace) SpillStats() (chunks int, bytes int64) {
	if sp := tr.store.spill; sp != nil {
		return sp.chunks, sp.bytes
	}
	return 0, 0
}

// SpillError returns the latched write error, if spilling has failed. The
// trace itself remains fully usable — chunks that could not be written
// stayed in memory.
func (tr *Trace) SpillError() error {
	if sp := tr.store.spill; sp != nil {
		return sp.err
	}
	return nil
}

// CloseSpill stops spilling and closes the backing file. Events whose
// chunks were moved to disk become inaccessible — callers finish reading
// (WriteJSON, checkers) first. Safe to call when spilling was never
// enabled.
func (tr *Trace) CloseSpill() error {
	sp := tr.store.spill
	if sp == nil {
		return nil
	}
	tr.store.spill = nil
	return sp.f.Close()
}

// maybeSpill is called by the append paths when a chunk seals. It moves
// every sealed in-memory chunk older than the retention window to disk and
// drops the in-memory copy.
func (s *eventStore) maybeSpill() {
	sp := s.spill
	if sp == nil || sp.err != nil {
		return
	}
	// Slice indices [0, lim) are sealed and beyond the retention window;
	// the last entry is the active chunk.
	lim := len(s.chunks) - 1 - sp.retain
	for j := 0; j < lim; j++ {
		c := s.chunks[j]
		if c == nil {
			continue // already on disk (or released by DiscardBefore's shift)
		}
		if err := sp.writeChunk(j+s.droppedChunks, c); err != nil {
			sp.err = err
			return
		}
		s.chunks[j] = nil
	}
}

// writeChunk encodes one sealed chunk at its fixed file slot.
func (sp *traceSpill) writeChunk(abs int, c *eventChunk) error {
	buf := sp.buf[:]
	off := 0
	for _, v := range c.round {
		binary.LittleEndian.PutUint32(buf[off:], uint32(v))
		off += 4
	}
	for _, v := range c.node {
		binary.LittleEndian.PutUint32(buf[off:], uint32(v))
		off += 4
	}
	for _, v := range c.kind {
		buf[off] = byte(v)
		off++
	}
	for _, v := range c.from {
		binary.LittleEndian.PutUint32(buf[off:], uint32(v))
		off += 4
	}
	for _, v := range c.msgID {
		binary.LittleEndian.PutUint64(buf[off:], uint64(v))
		off += 8
	}
	if _, err := sp.f.WriteAt(buf, int64(abs)*spillChunkBytes); err != nil {
		return fmt.Errorf("sim: spilling trace chunk %d: %w", abs, err)
	}
	sp.chunks++
	sp.bytes += spillChunkBytes
	if sp.cacheIdx == abs {
		sp.cacheIdx = -1 // never stale, but keep the invariant obvious
	}
	return nil
}

// readChunk rehydrates the chunk at absolute index abs through the cache.
func (sp *traceSpill) readChunk(abs int) (*eventChunk, error) {
	if sp.cacheIdx == abs {
		return sp.cache, nil
	}
	buf := sp.buf[:]
	if _, err := sp.f.ReadAt(buf, int64(abs)*spillChunkBytes); err != nil {
		return nil, fmt.Errorf("sim: rehydrating trace chunk %d: %w", abs, err)
	}
	c := sp.cache
	if c == nil {
		c = newEventChunk()
		sp.cache = c
	}
	c.round, c.node = c.round[:eventChunkLen], c.node[:eventChunkLen]
	c.kind = c.kind[:eventChunkLen]
	c.from, c.msgID = c.from[:eventChunkLen], c.msgID[:eventChunkLen]
	off := 0
	for j := range c.round {
		c.round[j] = int32(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	for j := range c.node {
		c.node[j] = int32(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	for j := range c.kind {
		c.kind[j] = EventKind(buf[off])
		off++
	}
	for j := range c.from {
		c.from[j] = int32(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	for j := range c.msgID {
		c.msgID[j] = MsgID(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	sp.cacheIdx = abs
	return c, nil
}

// chunk returns the chunk at slice index j, rehydrating from the spill file
// when the in-memory copy was dropped. Read failures panic — the engine's
// read paths (At, Events) have no error channel, and a vanished spill file
// is a programming error (CloseSpill before the last read), not a
// recoverable condition.
func (s *eventStore) chunk(j int) *eventChunk {
	if c := s.chunks[j]; c != nil {
		return c
	}
	if s.spill == nil {
		panic(fmt.Sprintf("sim: trace chunk %d was spilled and the spill backend is closed", j+s.droppedChunks))
	}
	c, err := s.spill.readChunk(j + s.droppedChunks)
	if err != nil {
		panic(err)
	}
	return c
}
