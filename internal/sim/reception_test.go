package sim

import (
	"testing"

	"lbcast/internal/dualgraph"
)

// stubModel is a scripted reception model: out[u] = script[t][u], with
// missing rounds meaning all-silence.
type stubModel struct {
	script map[int][]int32
}

func (s *stubModel) Resolve(t int, txs []int32, out []int32) {
	row, ok := s.script[t]
	for u := range out {
		if ok {
			out[u] = row[u]
		} else {
			out[u] = NoTransmitter
		}
	}
}

// echoProc transmits its id every round and records what it receives.
type echoProc struct {
	env  *NodeEnv
	tx   bool
	got  []int // per round: from (or NoTransmitter)
	okay []bool
}

func (p *echoProc) Init(env *NodeEnv) { p.env = env }
func (p *echoProc) Transmit(t int) (any, bool) {
	return p.env.ID, p.tx
}
func (p *echoProc) Receive(t, from int, payload any, ok bool) {
	p.got = append(p.got, from)
	p.okay = append(p.okay, ok)
	if ok && payload.(int) != from {
		panic("payload does not match transmitter slot")
	}
}

func receptionDual(t *testing.T, n int) *dualgraph.Dual {
	t.Helper()
	// Edgeless dual graph: under a reception model the edges play no role,
	// so the starkest test topology is no edges at all.
	d, err := dualgraph.Abstract(n, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestReceptionModelDelivery checks the outcome translation: decoded
// transmitter → successful Receive with that node's payload, Blocked →
// collision statistics, silence → untouched, and transmitters always ⊥.
func TestReceptionModelDelivery(t *testing.T) {
	const n = 4
	d := receptionDual(t, n)
	procs := make([]Process, n)
	eps := make([]*echoProc, n)
	for u := range procs {
		eps[u] = &echoProc{tx: u == 0 || u == 1}
		procs[u] = eps[u]
	}
	m := &stubModel{script: map[int][]int32{
		1: {NoTransmitter, NoTransmitter, 1, Blocked}, // 2 hears 1, 3 blocked
	}}
	e, err := New(Config{Dual: d, Procs: procs, Reception: m, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Step()

	if got := eps[2].got[0]; got != 1 || !eps[2].okay[0] {
		t.Errorf("node 2: got from=%d ok=%v, want 1/true", got, eps[2].okay[0])
	}
	if eps[3].okay[0] {
		t.Error("blocked node 3 must receive ⊥")
	}
	for _, u := range []int{0, 1} {
		if eps[u].okay[0] {
			t.Errorf("transmitter %d must receive ⊥", u)
		}
	}
	tr := e.Trace()
	if tr.Transmissions != 2 || tr.Deliveries != 1 || tr.Collisions != 1 {
		t.Errorf("stats tx/del/col = %d/%d/%d, want 2/1/1",
			tr.Transmissions, tr.Deliveries, tr.Collisions)
	}
}

// TestReceptionModelTransmitterEntriesIgnored: the model's entries for
// transmitting nodes must not leak deliveries to them.
func TestReceptionModelTransmitterEntriesIgnored(t *testing.T) {
	const n = 2
	d := receptionDual(t, n)
	eps := []*echoProc{{tx: true}, {}}
	m := &stubModel{script: map[int][]int32{1: {1, 0}}} // nonsense entry for tx node 0
	e, err := New(Config{Dual: d, Procs: []Process{eps[0], eps[1]}, Reception: m, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Step()
	if eps[0].okay[0] {
		t.Error("transmitter with a scripted delivery slot still received")
	}
	if !eps[1].okay[0] || eps[1].got[0] != 0 {
		t.Errorf("listener got from=%d ok=%v, want 0/true", eps[1].got[0], eps[1].okay[0])
	}
}

// TestReceptionModelExcludesSched pins the Config validation.
func TestReceptionModelExcludesSched(t *testing.T) {
	d := receptionDual(t, 2)
	procs := []Process{&echoProc{}, &echoProc{}}
	_, err := New(Config{Dual: d, Procs: procs,
		Reception: &stubModel{}, Sched: alwaysSched{}})
	if err == nil {
		t.Fatal("Config with both Sched and Reception accepted")
	}
}

type alwaysSched struct{}

func (alwaysSched) Included(int, int) bool { return true }

// TestReceptionModelMultiRound: silence rounds leave every process at ⊥ and
// the model runs under every driver with identical outcomes.
func TestReceptionModelDrivers(t *testing.T) {
	const n = 3
	script := map[int][]int32{
		1: {NoTransmitter, 0, 0},
		3: {NoTransmitter, Blocked, 0},
	}
	run := func(driver Driver) []int {
		d := receptionDual(t, n)
		eps := make([]*echoProc, n)
		procs := make([]Process, n)
		for u := range procs {
			eps[u] = &echoProc{tx: u == 0}
			procs[u] = eps[u]
		}
		e, err := New(Config{Dual: d, Procs: procs, Reception: &stubModel{script: script},
			Seed: 9, Driver: driver, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		e.Run(3)
		var flat []int
		for _, p := range eps {
			flat = append(flat, p.got...)
		}
		return flat
	}
	seq := run(DriverSequential)
	for _, drv := range []Driver{DriverWorkerPool, DriverGoroutinePerNode} {
		got := run(drv)
		for i := range seq {
			if got[i] != seq[i] {
				t.Fatalf("driver %d diverges at %d: %d vs %d", drv, i, got[i], seq[i])
			}
		}
	}
}
