package sim

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/xrand"
)

// TestWorkerPoolPersistent pins the persistent-pool contract: once the first
// parallel phase has started the pool, running more rounds must not grow the
// process goroutine count — the workers are parked and reused, not spawned
// per phase — and Close must release them again.
func TestWorkerPoolPersistent(t *testing.T) {
	d, err := dualgraph.RandomGeometric(150, 5, 5, 1.6, dualgraph.GreyUnreliable, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]Process, d.N())
	for u := range procs {
		procs[u] = &chattyProc{p: 0.5}
	}
	const workers = 7
	e, err := New(Config{Dual: d, Procs: procs, Sched: sched.NewRandom(0.4, 3), Seed: 5,
		Driver: DriverWorkerPool, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	e.Run(10) // starts the pool on the first parallel phase
	warm := runtime.NumGoroutine()
	e.Run(200)
	after := runtime.NumGoroutine()
	// Unrelated runtime goroutines may come and go; what must not appear is
	// per-phase spawning (2 phases × 200 rounds would dwarf any slack).
	if after > warm+3 {
		t.Fatalf("goroutine count grew from %d to %d across 200 rounds; pool is not persistent", warm, after)
	}

	e.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() >= warm && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got >= warm {
		t.Fatalf("goroutine count %d after Close, want below the %d of the running pool", got, warm)
	}
}

// TestWorkerPoolCloseIdempotent guards the Close contract shared by all
// drivers: closing twice (and closing an engine whose pool never started)
// must be safe.
func TestWorkerPoolCloseIdempotent(t *testing.T) {
	d, err := dualgraph.RandomGeometric(40, 4, 4, 1.5, dualgraph.GreyUnreliable, xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	mk := func(driver Driver) *Engine {
		procs := make([]Process, d.N())
		for u := range procs {
			procs[u] = &chattyProc{p: 0.4}
		}
		e, err := New(Config{Dual: d, Procs: procs, Sched: sched.Always{}, Seed: 1,
			Driver: driver, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	for _, driver := range []Driver{DriverSequential, DriverWorkerPool, DriverGoroutinePerNode} {
		e := mk(driver)
		e.Run(5)
		e.Close()
		e.Close()
	}
	// Close before any round (pool never started).
	mk(DriverWorkerPool).Close()
}

// BenchmarkPoolDispatch measures the fixed cost of one pool.run fan-out with
// a trivial body — the dispatch-plus-join overhead a sharded phase must
// amortise. parallelScatterMinTx is derived from this number: sharding pays
// off only when the sequential scatter work it splits exceeds roughly
// workers × this latency.
func BenchmarkPoolDispatch(b *testing.B) {
	for _, workers := range []int{2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := newWorkerPool(workers)
			defer p.stop()
			fn := func(w int) {}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.run(workers, fn)
			}
		})
	}
}
