package sim

import "testing"

// TestAppendHearBatch pins the bulk hear append to the per-event Record
// path: identical events in identical order, across chunk boundaries, with
// the per-kind counter kept in sync.
func TestAppendHearBatch(t *testing.T) {
	var batch, loop Trace
	// Three rounds sized to straddle several 4096-event chunks, plus a
	// ragged tail that leaves the last chunk partially filled.
	sizes := []int{3000, eventChunkLen + 500, 77}
	round := 0
	for _, sz := range sizes {
		round++
		nodes := make([]int32, sz)
		froms := make([]int32, sz)
		for i := range nodes {
			nodes[i] = int32(i)
			froms[i] = int32((i * 7) % 1000)
		}
		batch.AppendHearBatch(round, nodes, froms)
		for i := range nodes {
			loop.Record(Event{Round: round, Node: int(nodes[i]), Kind: EvHear, From: int(froms[i])})
		}
	}
	if batch.Len() != loop.Len() {
		t.Fatalf("Len: batch %d, loop %d", batch.Len(), loop.Len())
	}
	for i := 0; i < batch.Len(); i++ {
		if batch.At(i) != loop.At(i) {
			t.Fatalf("event %d: batch %+v, loop %+v", i, batch.At(i), loop.At(i))
		}
	}
	if got, want := batch.KindCount(EvHear), loop.KindCount(EvHear); got != want {
		t.Fatalf("KindCount(EvHear): batch %d, loop %d", got, want)
	}
}

func TestAppendHearBatchLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched lengths")
		}
	}()
	var tr Trace
	tr.AppendHearBatch(1, []int32{1, 2}, []int32{3})
}
