package sim

import (
	"slices"
	"testing"

	"lbcast/internal/dualgraph"
	"lbcast/internal/geo"
	"lbcast/internal/sched"
	"lbcast/internal/xrand"
)

// probeProc logs every Transmit/Receive invocation round, transmits every
// round when beacon is set, and records heard transmissions into the trace.
type probeProc struct {
	env      *NodeEnv
	beacon   bool
	inits    int
	txRounds []int
	rxRounds []int
}

func (p *probeProc) Init(env *NodeEnv) { p.env = env; p.inits++ }

func (p *probeProc) Transmit(t int) (any, bool) {
	p.txRounds = append(p.txRounds, t)
	if p.beacon {
		return p.env.ID, true
	}
	return nil, false
}

func (p *probeProc) Receive(t, from int, payload any, ok bool) {
	p.rxRounds = append(p.rxRounds, t)
	if ok {
		p.env.Rec.Record(Event{Round: t, Node: p.env.ID, Kind: EvHear, From: from})
	}
}

// TestCrashedNodeSilent is the tentpole's silence contract: while a node is
// down its process is never invoked (no Transmit, no Receive), nothing it
// would have sent reaches anyone, and it contributes no trace events.
func TestCrashedNodeSilent(t *testing.T) {
	d := lineDual(t)
	beacon := &probeProc{beacon: true}
	listeners := []*probeProc{{}, {}}
	procs := []Process{beacon, listeners[0], listeners[1]}

	const downFrom, downTo = 4, 7
	var eng *Engine
	env := &hookEnv{
		before: func(t int) {
			if t == downFrom {
				eng.SetDown(0, true)
			}
			if t == downTo+1 {
				eng.SetDown(0, false)
			}
		},
		after: func(int) {},
	}
	eng = newTestEngine(t, Config{Dual: d, Procs: procs, Env: env, Seed: 1})
	eng.Run(10)

	inWindow := func(rounds []int) []int {
		var in []int
		for _, r := range rounds {
			if r >= downFrom && r <= downTo {
				in = append(in, r)
			}
		}
		return in
	}
	if got := inWindow(beacon.txRounds); len(got) != 0 {
		t.Fatalf("down node's Transmit ran in rounds %v", got)
	}
	if got := inWindow(beacon.rxRounds); len(got) != 0 {
		t.Fatalf("down node's Receive ran in rounds %v", got)
	}
	if len(beacon.txRounds) != 10-(downTo-downFrom+1) {
		t.Fatalf("beacon Transmit ran %d times, want %d", len(beacon.txRounds), 10-(downTo-downFrom+1))
	}
	for _, ev := range eng.Trace().ByKind(EvHear) {
		if ev.Round >= downFrom && ev.Round <= downTo && ev.From == 0 {
			t.Fatalf("listener heard the crashed beacon in round %d", ev.Round)
		}
		if ev.Round >= downFrom && ev.Round <= downTo && ev.Node == 0 {
			t.Fatalf("crashed beacon recorded an event in round %d", ev.Round)
		}
	}
	// Outside the window node 1 hears the beacon (node 2 only when edge
	// {0,2} is scheduled; with no scheduler it never is).
	heard1 := 0
	for _, ev := range eng.Trace().ByKind(EvHear) {
		if ev.Node == 1 && ev.From == 0 {
			heard1++
		}
	}
	if heard1 != 10-(downTo-downFrom+1) {
		t.Fatalf("listener heard beacon %d times, want %d", heard1, 10-(downTo-downFrom+1))
	}
}

// TestDownStateTraceNeutral pins that merely allocating the down state (a
// crash immediately reverted before any round) leaves the execution
// byte-identical to one that never touched the lifecycle API — the
// empty-fault-schedule fingerprint guarantee at engine level.
func TestDownStateTraceNeutral(t *testing.T) {
	d := must(t)(dualgraph.RandomGeometric(60, 4, 4, 1.5, dualgraph.GreyUnreliable, xrand.New(2)))
	run := func(touchDown bool) *Trace {
		procs := make([]Process, d.N())
		for u := range procs {
			procs[u] = &chattyProc{p: 0.4}
		}
		eng := newTestEngine(t, Config{Dual: d, Procs: procs, Sched: sched.NewRandom(0.4, 21), Seed: 5})
		if touchDown {
			eng.SetDown(3, true)
			eng.SetDown(3, false)
		}
		eng.Run(50)
		return eng.Trace()
	}
	ref := run(false)
	got := run(true)
	if ok, diff := tracesEqual(got, ref); !ok {
		t.Fatalf("allocated-but-idle down state changed the trace: %s", diff)
	}
}

// TestReplaceProcRestart verifies a restarted node comes back with a fresh
// process, a fresh (incarnation-salted) randomness stream and the original
// environment parameters.
func TestReplaceProcRestart(t *testing.T) {
	d := lineDual(t)
	first := &probeProc{beacon: true}
	procs := []Process{first, &probeProc{}, &probeProc{}}
	eng := newTestEngine(t, Config{Dual: d, Procs: procs, Seed: 9})
	eng.Run(3)

	second := &probeProc{beacon: true}
	eng.ReplaceProc(0, second)
	eng.Run(3)

	if second.inits != 1 {
		t.Fatalf("replacement process initialised %d times, want 1", second.inits)
	}
	if len(first.txRounds) != 3 || len(second.txRounds) != 3 {
		t.Fatalf("transmit split = %d/%d rounds, want 3/3", len(first.txRounds), len(second.txRounds))
	}
	if second.env.Delta != first.env.Delta || second.env.DeltaPrime != first.env.DeltaPrime ||
		second.env.R != first.env.R || second.env.ID != 0 {
		t.Fatalf("replacement environment diverged: %+v vs %+v", second.env, first.env)
	}
	// The restarted stream must not replay the original's coins.
	orig := xrand.NodeSource(9, 0)
	if second.env.Rng.Uint64() == orig.Uint64() {
		t.Fatalf("restarted node replays its predecessor's randomness stream")
	}
}

// TestRefreshTopologyAfterPatch drives a leave/rejoin through PatchNode +
// RefreshTopology on a live engine: after the beacon leaves, nobody hears
// it; after it rejoins at the same spot, deliveries resume.
func TestRefreshTopologyAfterPatch(t *testing.T) {
	rng := xrand.New(3)
	d := must(t)(dualgraph.Line(5, 0.9, 1.5, rng))
	idx := geo.BuildGridIndex(d.Emb)
	beacon := &probeProc{beacon: true}
	procs := make([]Process, 5)
	procs[0] = beacon
	for u := 1; u < 5; u++ {
		procs[u] = &probeProc{}
	}
	eng := newTestEngine(t, Config{Dual: d, Procs: procs, Seed: 4})
	eng.Run(3)

	pos := d.Emb[0]
	if err := d.PatchNode(0, nil, idx, dualgraph.GreyUnreliable); err != nil {
		t.Fatal(err)
	}
	eng.RefreshTopology()
	eng.SetDown(0, true)
	eng.Run(3) // rounds 4-6: beacon gone

	if err := d.PatchNode(0, &pos, idx, dualgraph.GreyUnreliable); err != nil {
		t.Fatal(err)
	}
	eng.RefreshTopology()
	eng.SetDown(0, false)
	eng.ReplaceProc(0, &probeProc{beacon: true})
	eng.Run(3) // rounds 7-9: beacon back

	var heardRounds []int
	for _, ev := range eng.Trace().ByKind(EvHear) {
		if ev.Node == 1 && ev.From == 0 {
			heardRounds = append(heardRounds, ev.Round)
		}
	}
	want := []int{1, 2, 3, 7, 8, 9}
	if !slices.Equal(heardRounds, want) {
		t.Fatalf("node 1 heard the beacon in rounds %v, want %v", heardRounds, want)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}
