package sim

import (
	"encoding/json"
	"fmt"
	"io"
)

// The JSON trace format makes executions portable: cmd/lbsim can dump a
// trace for offline analysis, and golden-file tests can pin executions.
// Payloads are serialised with fmt.Sprint (they are opaque to the trace).

// traceJSON is the wire form of a Trace.
type traceJSON struct {
	RoundsRun     int         `json:"rounds_run"`
	Transmissions int         `json:"transmissions"`
	Deliveries    int         `json:"deliveries"`
	Collisions    int         `json:"collisions"`
	Events        []eventJSON `json:"events"`
}

// eventJSON is the wire form of an Event.
type eventJSON struct {
	Round   int    `json:"round"`
	Node    int    `json:"node"`
	Kind    string `json:"kind"`
	From    int    `json:"from,omitempty"`
	MsgID   int64  `json:"msg_id,omitempty"`
	Payload string `json:"payload,omitempty"`
}

// kindFromString inverts EventKind.String for the kinds the trace emits.
func kindFromString(s string) (EventKind, error) {
	for _, k := range []EventKind{EvBcast, EvAck, EvRecv, EvDecide, EvHear} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown event kind %q", s)
}

// WriteJSON serialises the trace.
func (tr *Trace) WriteJSON(w io.Writer) error {
	out := traceJSON{
		RoundsRun:     tr.RoundsRun,
		Transmissions: tr.Transmissions,
		Deliveries:    tr.Deliveries,
		Collisions:    tr.Collisions,
		Events:        make([]eventJSON, len(tr.Events)),
	}
	for i, ev := range tr.Events {
		ej := eventJSON{
			Round: ev.Round,
			Node:  ev.Node,
			Kind:  ev.Kind.String(),
			From:  ev.From,
			MsgID: int64(ev.MsgID),
		}
		if ev.Payload != nil {
			ej.Payload = fmt.Sprint(ev.Payload)
		}
		out.Events[i] = ej
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ReadTraceJSON deserialises a trace written by WriteJSON. Payloads come
// back as strings (their printed form).
func ReadTraceJSON(r io.Reader) (*Trace, error) {
	var in traceJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("sim: decoding trace: %w", err)
	}
	tr := &Trace{
		RoundsRun:     in.RoundsRun,
		Transmissions: in.Transmissions,
		Deliveries:    in.Deliveries,
		Collisions:    in.Collisions,
		Events:        make([]Event, len(in.Events)),
	}
	for i, ej := range in.Events {
		kind, err := kindFromString(ej.Kind)
		if err != nil {
			return nil, err
		}
		ev := Event{
			Round: ej.Round,
			Node:  ej.Node,
			Kind:  kind,
			From:  ej.From,
			MsgID: MsgID(ej.MsgID),
		}
		if ej.Payload != "" {
			ev.Payload = ej.Payload
		}
		tr.Events[i] = ev
	}
	return tr, nil
}
