package sim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// The JSON trace format makes executions portable: cmd/lbsim can dump a
// trace for offline analysis, and golden-file tests can pin executions.
// Payloads are serialised with fmt.Sprint (they are opaque to the trace).

// traceJSON is the wire form of a Trace.
type traceJSON struct {
	RoundsRun     int         `json:"rounds_run"`
	Transmissions int         `json:"transmissions"`
	Deliveries    int         `json:"deliveries"`
	Collisions    int         `json:"collisions"`
	Events        []eventJSON `json:"events"`
}

// eventJSON is the wire form of an Event.
type eventJSON struct {
	Round   int    `json:"round"`
	Node    int    `json:"node"`
	Kind    string `json:"kind"`
	From    int    `json:"from,omitempty"`
	MsgID   int64  `json:"msg_id,omitempty"`
	Payload string `json:"payload,omitempty"`
}

// kindFromString inverts EventKind.String for the kinds the trace emits.
func kindFromString(s string) (EventKind, error) {
	for _, k := range []EventKind{EvBcast, EvAck, EvRecv, EvDecide, EvHear} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown event kind %q", s)
}

// WriteJSON serialises the trace. Events are streamed one at a time from the
// columnar store, so serialisation never materialises a row-form []Event —
// the trace's own columns stay the only full-size copy in memory.
func (tr *Trace) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\n \"rounds_run\": %d,\n \"transmissions\": %d,\n \"deliveries\": %d,\n \"collisions\": %d,\n \"events\": ",
		tr.RoundsRun, tr.Transmissions, tr.Deliveries, tr.Collisions)
	if tr.Len() == 0 {
		bw.WriteString("[]\n}\n")
		return bw.Flush()
	}
	bw.WriteString("[\n")
	first := true
	for ev := range tr.Events() {
		ej := eventJSON{
			Round: ev.Round,
			Node:  ev.Node,
			Kind:  ev.Kind.String(),
			From:  ev.From,
			MsgID: int64(ev.MsgID),
		}
		if ev.Payload != nil {
			ej.Payload = fmt.Sprint(ev.Payload)
		}
		b, err := json.MarshalIndent(ej, "  ", " ")
		if err != nil {
			return err
		}
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString("  ")
		bw.Write(b)
	}
	bw.WriteString("\n ]\n}\n")
	return bw.Flush()
}

// ReadTraceJSON deserialises a trace written by WriteJSON. Payloads come
// back as strings (their printed form).
func ReadTraceJSON(r io.Reader) (*Trace, error) {
	var in traceJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("sim: decoding trace: %w", err)
	}
	tr := &Trace{
		RoundsRun:     in.RoundsRun,
		Transmissions: in.Transmissions,
		Deliveries:    in.Deliveries,
		Collisions:    in.Collisions,
	}
	for _, ej := range in.Events {
		kind, err := kindFromString(ej.Kind)
		if err != nil {
			return nil, err
		}
		ev := Event{
			Round: ej.Round,
			Node:  ej.Node,
			Kind:  kind,
			From:  ej.From,
			MsgID: MsgID(ej.MsgID),
		}
		if ej.Payload != "" {
			ev.Payload = ej.Payload
		}
		tr.Record(ev)
	}
	return tr, nil
}
