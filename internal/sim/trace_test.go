package sim

import (
	"fmt"
	"testing"

	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
)

// TestColumnarStoreRoundTrip pushes well past several chunk boundaries and
// checks positional access, iteration order, the sparse payload table and
// the per-kind counters all reassemble the recorded events exactly.
func TestColumnarStoreRoundTrip(t *testing.T) {
	tr := &Trace{}
	const total = 3*eventChunkLen + 137
	kinds := []EventKind{EvBcast, EvAck, EvRecv, EvDecide, EvHear}
	want := make([]Event, total)
	for i := 0; i < total; i++ {
		ev := Event{
			Round: i/7 + 1,
			Node:  i % 53,
			Kind:  kinds[i%len(kinds)],
			From:  i%29 - 1,
			MsgID: NewMsgID(i%53, i/53),
		}
		// Sparse payloads: one event in 97 carries one.
		if i%97 == 0 {
			ev.Payload = fmt.Sprintf("p%d", i)
		}
		want[i] = ev
		tr.Record(ev)
	}
	if tr.Len() != total {
		t.Fatalf("Len = %d, want %d", tr.Len(), total)
	}
	for i := 0; i < total; i++ {
		if got := tr.At(i); got != want[i] {
			t.Fatalf("At(%d) = %+v, want %+v", i, got, want[i])
		}
	}
	i := 0
	for ev := range tr.Events() {
		if ev != want[i] {
			t.Fatalf("iterator event %d = %+v, want %+v", i, ev, want[i])
		}
		i++
	}
	if i != total {
		t.Fatalf("iterator yielded %d events, want %d", i, total)
	}
	for _, k := range kinds {
		wantCount := 0
		for _, ev := range want {
			if ev.Kind == k {
				wantCount++
			}
		}
		if got := tr.KindCount(k); got != wantCount {
			t.Errorf("KindCount(%v) = %d, want %d", k, got, wantCount)
		}
		byKind := tr.ByKind(k)
		if len(byKind) != wantCount {
			t.Errorf("ByKind(%v) returned %d events, want %d", k, len(byKind), wantCount)
		}
		if cap(byKind) != wantCount {
			t.Errorf("ByKind(%v) cap = %d, want exactly %d (preallocation contract)", k, cap(byKind), wantCount)
		}
	}
	byNode := tr.ByNode(5)
	for _, ev := range byNode {
		if ev.Node != 5 {
			t.Fatalf("ByNode(5) returned event for node %d", ev.Node)
		}
	}
	if len(byNode) == 0 || cap(byNode) != len(byNode) {
		t.Errorf("ByNode(5): len %d cap %d, want non-empty exact-capacity slice", len(byNode), cap(byNode))
	}
	all := tr.AppendEvents(nil)
	if len(all) != total {
		t.Fatalf("AppendEvents returned %d events", len(all))
	}
	for i, ev := range all {
		if ev != want[i] {
			t.Fatalf("AppendEvents[%d] = %+v, want %+v", i, ev, want[i])
		}
	}
}

// TestByKindByNodeEmpty pins nil results for absent kinds and nodes.
func TestByKindByNodeEmpty(t *testing.T) {
	tr := &Trace{}
	tr.Record(Event{Round: 1, Node: 0, Kind: EvBcast})
	if got := tr.ByKind(EvDecide); got != nil {
		t.Errorf("ByKind(EvDecide) = %v, want nil", got)
	}
	if got := tr.ByNode(9); got != nil {
		t.Errorf("ByNode(9) = %v, want nil", got)
	}
	if got := tr.ByKind(EventKind(99)); got != nil {
		t.Errorf("ByKind(99) = %v, want nil", got)
	}
}

// BenchmarkTracedRound measures the steady-state cost of rounds that record
// one trace event per delivery (the chatty workload): the columnar store's
// per-event bytes are the dominant steady-state allocation.
func BenchmarkTracedRound(b *testing.B) {
	d, err := dualgraph.RandomGeometric(500, 10, 10, 2, dualgraph.GreyUnreliable, benchRng())
	if err != nil {
		b.Fatal(err)
	}
	procs := make([]Process, d.N())
	for u := range procs {
		procs[u] = &chattyProc{p: 0.2}
	}
	e, err := New(Config{Dual: d, Procs: procs, Sched: sched.NewRandom(0.5, 3), Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	e.Run(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// TestDiscardBefore pins the chunk-release contract: logical indexing of
// the retained suffix is unchanged, released indices panic, sparse payloads
// are trimmed with their chunks, and continued recording works.
func TestDiscardBefore(t *testing.T) {
	tr := &Trace{}
	const total = 3*eventChunkLen + 10
	want := make([]Event, total)
	for i := 0; i < total; i++ {
		ev := Event{Round: i/5 + 1, Node: i % 17, Kind: EvHear, From: -1, MsgID: NewMsgID(i%17, i)}
		if i%eventChunkLen == 3 {
			ev.Payload = fmt.Sprintf("p%d", i)
		}
		want[i] = ev
		tr.Record(ev)
	}

	// Mid-chunk cutoff: only the full chunks before it are released.
	tr.DiscardBefore(eventChunkLen + 7)
	if got := tr.Discarded(); got != eventChunkLen {
		t.Fatalf("Discarded = %d, want %d", got, eventChunkLen)
	}
	if tr.Len() != total {
		t.Fatalf("Len changed to %d after discard", tr.Len())
	}
	for i := tr.Discarded(); i < total; i++ {
		if got := tr.At(i); got != want[i] {
			t.Fatalf("At(%d) = %+v, want %+v", i, got, want[i])
		}
	}
	i := tr.Discarded()
	for ev := range tr.Events() {
		if ev != want[i] {
			t.Fatalf("iterator event %d = %+v, want %+v", i, ev, want[i])
		}
		i++
	}
	if i != total {
		t.Fatalf("iterator stopped at %d, want %d", i, total)
	}

	// A released index must panic, not silently return the wrong event.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("At on a released index did not panic")
			}
		}()
		_ = tr.At(0)
	}()

	// Discarding is idempotent for an already-released prefix, and
	// recording continues to extend the retained suffix.
	tr.DiscardBefore(eventChunkLen)
	extra := Event{Round: 999, Node: 1, Kind: EvBcast, MsgID: NewMsgID(1, 999), Payload: "tail"}
	tr.Record(extra)
	if got := tr.At(total); got != extra {
		t.Fatalf("post-discard record: At(%d) = %+v, want %+v", total, got, extra)
	}

	// Release everything recorded so far: Len is clamped, only the partial
	// tail chunk survives.
	tr.DiscardBefore(tr.Len() + 500)
	if got, min := tr.Discarded(), 3*eventChunkLen; got != min {
		t.Fatalf("full discard: Discarded = %d, want %d", got, min)
	}
	if got := tr.At(total); got != extra {
		t.Fatalf("tail lost after full discard: At(%d) = %+v", total, got)
	}
}
