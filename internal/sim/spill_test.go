package sim

import (
	"bytes"
	"fmt"
	"testing"
)

// fillTrace records the same deterministic event mix into tr: enough events
// to seal several chunks, all kinds represented, sparse payloads on the
// bcast inputs.
func fillTrace(tr *Trace, n int) {
	for i := 0; i < n; i++ {
		ev := Event{Round: i/7 + 1, Node: i % 11, From: NoTransmitter, MsgID: NewMsgID(i%11, i/11)}
		switch i % 97 {
		case 0:
			ev.Kind, ev.Payload = EvBcast, fmt.Sprintf("payload-%d", i)
		case 1:
			ev.Kind = EvAck
		case 2:
			ev.Kind, ev.From = EvRecv, (i+1)%11
		default:
			ev.Kind, ev.From = EvHear, (i+1)%11
		}
		tr.Record(ev)
	}
}

// TestSpillRoundTrip: a trace spilling to disk must serve the identical
// event sequence as an in-memory trace over every read path — WriteJSON
// byte-identical, At/ByKind/ByNode element-identical — while actually
// holding most chunks on disk.
func TestSpillRoundTrip(t *testing.T) {
	const n = 6*eventChunkLen + 123
	mem, spilled := &Trace{}, &Trace{}
	if err := spilled.SpillToDisk(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer spilled.CloseSpill()
	fillTrace(mem, n)
	fillTrace(spilled, n)

	if chunks, bytes_ := spilled.SpillStats(); chunks == 0 || bytes_ != int64(chunks)*spillChunkBytes {
		t.Fatalf("spill stats = %d chunks / %d bytes; expected sealed chunks on disk", chunks, bytes_)
	}
	if err := spilled.SpillError(); err != nil {
		t.Fatal(err)
	}
	inMem := 0
	for _, c := range spilled.store.chunks {
		if c != nil {
			inMem++
		}
	}
	if want := spillRetainDefault + 1; inMem != want {
		t.Errorf("%d chunks resident, want the retention window %d", inMem, want)
	}

	var wantJSON, gotJSON bytes.Buffer
	if err := mem.WriteJSON(&wantJSON); err != nil {
		t.Fatal(err)
	}
	if err := spilled.WriteJSON(&gotJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON.Bytes(), gotJSON.Bytes()) {
		t.Error("WriteJSON of spilled trace differs from in-memory trace")
	}

	if mem.Len() != spilled.Len() {
		t.Fatalf("Len %d vs %d", spilled.Len(), mem.Len())
	}
	// Random-access At across spilled and resident chunks (stride keeps the
	// test fast while crossing every chunk).
	for i := 0; i < n; i += 731 {
		if got, want := spilled.At(i), mem.At(i); got != want {
			t.Fatalf("At(%d) = %+v, want %+v", i, got, want)
		}
	}
	for _, kind := range []EventKind{EvBcast, EvAck, EvRecv, EvHear} {
		got, want := spilled.ByKind(kind), mem.ByKind(kind)
		if len(got) != len(want) {
			t.Fatalf("ByKind(%v): %d events, want %d", kind, len(got), len(want))
		}
	}
	got, want := spilled.ByNode(3), mem.ByNode(3)
	if len(got) != len(want) {
		t.Fatalf("ByNode(3): %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ByNode(3)[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestSpillEnableMidRun: chunks sealed before SpillToDisk move to disk at
// the next seal, and the trace stays identical throughout.
func TestSpillEnableMidRun(t *testing.T) {
	const n = 5*eventChunkLen + 17
	mem, spilled := &Trace{}, &Trace{}
	fillTrace(mem, n)
	fillTrace(spilled, 2*eventChunkLen+5) // two sealed chunks, one active
	if err := spilled.SpillToDisk(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer spilled.CloseSpill()
	fillTraceFrom(spilled, 2*eventChunkLen+5, n)
	if chunks, _ := spilled.SpillStats(); chunks == 0 {
		t.Fatal("no chunks spilled after mid-run enable")
	}
	for i := 0; i < n; i += 613 {
		if got, want := spilled.At(i), mem.At(i); got != want {
			t.Fatalf("At(%d) = %+v, want %+v", i, got, want)
		}
	}
}

// fillTraceFrom continues fillTrace's deterministic sequence from event lo.
func fillTraceFrom(tr *Trace, lo, hi int) {
	full := &Trace{}
	fillTrace(full, hi)
	for i := lo; i < hi; i++ {
		tr.Record(full.At(i))
	}
}

// TestSpillDiscardBefore: DiscardBefore must keep its exact semantics when
// the head chunks it releases were already spilled — logical indices
// unchanged, the retained suffix identical, released indices panicking.
func TestSpillDiscardBefore(t *testing.T) {
	const n = 6*eventChunkLen + 50
	mem, spilled := &Trace{}, &Trace{}
	if err := spilled.SpillToDisk(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer spilled.CloseSpill()
	fillTrace(mem, n)
	fillTrace(spilled, n)

	cut := 3*eventChunkLen + 40 // releases three chunks, all already on disk
	mem.DiscardBefore(cut)
	spilled.DiscardBefore(cut)
	if got, want := spilled.Discarded(), mem.Discarded(); got != want {
		t.Fatalf("Discarded = %d, want %d", got, want)
	}
	for i := spilled.Discarded(); i < n; i += 509 {
		if got, want := spilled.At(i), mem.At(i); got != want {
			t.Fatalf("At(%d) = %+v, want %+v", i, got, want)
		}
	}
	// Appending after a discard keeps spilling at the right absolute slots.
	fillTraceFrom(spilled, n, n+2*eventChunkLen)
	fillTraceFrom(mem, n, n+2*eventChunkLen)
	for i := spilled.Discarded(); i < n+2*eventChunkLen; i += 509 {
		if got, want := spilled.At(i), mem.At(i); got != want {
			t.Fatalf("after append: At(%d) = %+v, want %+v", i, got, want)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("At below Discarded() did not panic")
			}
		}()
		spilled.At(0)
	}()
}
