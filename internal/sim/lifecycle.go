// This file is the engine's node-lifecycle surface, the hooks the churn
// layer (internal/churn) drives: SetDown silences a node at the physical
// layer, ReplaceProc restarts its protocol state, and RefreshTopology
// re-syncs the engine's flattened views after the dual graph was patched.
// All three must be called between rounds (they touch round-shared state);
// the churn injector calls them from Environment.BeforeRound, which the
// engine guarantees runs before any node acts in the round.
//
// The down state is deliberately invisible until used: a nil down slice
// costs one branch per node per round and changes no behavior, so traces of
// churn-free executions stay byte-identical to pre-lifecycle engines
// (core's golden fingerprint test pins this).

package sim

import "lbcast/internal/xrand"

// parallelResolveMinListeners is the node count below which sharding a
// reception model's per-listener resolution across the worker pool cannot
// beat the dispatch overhead. Resolution costs at least one ring scan per
// listener (far more than the scatter's per-edge bump), so the threshold is
// a node count rather than the scatter's transmitter count.
const parallelResolveMinListeners = 256

// ShardedReceptionModel is a ReceptionModel whose per-listener resolution
// can run concurrently. The engine (worker-pool driver) calls PrepareRound
// once, then partitions the listener range across workers with ResolveRange;
// each call must write exactly out[lo:hi] and read only state that is
// immutable for the round after PrepareRound. Outcomes must equal what
// Resolve would have produced, listener by listener, regardless of the
// partition — the engine's trace-equivalence tests pin bit-identity across
// worker counts.
type ShardedReceptionModel interface {
	ReceptionModel
	// PrepareRound builds the round's shared read-only state and reports
	// whether sharded resolution is worthwhile for this round; false falls
	// back to the sequential Resolve.
	PrepareRound(t int, txs []int32) bool
	// ResolveRange resolves listeners [lo, hi), writing out[lo:hi].
	ResolveRange(t int, txs []int32, out []int32, lo, hi int)
}

// stepTx is the per-node transmit-phase body shared by all three drivers: a
// down node transmits nothing and its process is not consulted.
func (e *Engine) stepTx(u int) {
	if e.down != nil && e.down[u] {
		e.payloads[u], e.transmit[u] = nil, false
		return
	}
	e.payloads[u], e.transmit[u] = e.procs[u].Transmit(e.round)
}

// resolveSharded partitions the reception model's listener resolution across
// the persistent worker pool. Each worker writes a disjoint range of
// recvOut, so no merge is needed; determinism follows from ResolveRange's
// partition-independence contract.
func (e *Engine) resolveSharded() {
	n := len(e.procs)
	workers := min(e.wrk, n)
	e.resolveChunk = (n + workers - 1) / workers
	active := (n + e.resolveChunk - 1) / e.resolveChunk
	e.ensurePool()
	e.pool.run(active, e.poolResolveFn)
}

// SetDown crashes (down = true) or revives (down = false) node u's radio,
// effective from the next round: a down node neither transmits nor receives,
// its process is never invoked, and it contributes no trace events or
// delivery/collision statistics. Reviving restores the radio only — the
// process resumes with whatever state it crashed with; callers modelling a
// real restart pair SetDown(u, false) with ReplaceProc.
func (e *Engine) SetDown(u int, down bool) {
	if e.down == nil {
		if !down {
			return
		}
		e.down = make([]bool, len(e.procs))
	}
	e.down[u] = down
	if down {
		// Clear any already-fixed decision so a crash between phases cannot
		// leave a phantom transmission behind.
		e.payloads[u], e.transmit[u] = nil, false
	}
}

// IsDown reports whether node u's radio is currently down.
func (e *Engine) IsDown(u int) bool { return e.down != nil && e.down[u] }

// ReplaceProc installs a fresh process at node u and initialises it exactly
// as New initialised the original — same Δ/Δ′/r parameters, same recorder —
// but with an incarnation-salted randomness stream, so a restarted node does
// not replay its predecessor's coin flips. The previous process is
// abandoned mid-state, which is precisely what a crash means.
func (e *Engine) ReplaceProc(u int, p Process) {
	if e.bank != nil {
		// A bank owns every node's protocol state in shared columns; swapping
		// one node's Process handle cannot reset that state, so the engine
		// refuses rather than silently diverge. Churn executions use per-node
		// processes.
		panic("sim: ReplaceProc is not supported with Config.Bank")
	}
	if e.incarn == nil {
		e.incarn = make([]uint32, len(e.procs))
	}
	e.incarn[u]++
	e.procs[u] = p
	e.payloads[u], e.transmit[u] = nil, false
	p.Init(&NodeEnv{
		ID:         u,
		Delta:      e.delta,
		DeltaPrime: e.deltaP,
		R:          e.dual.R,
		Rng:        xrand.NodeSource(e.seed+uint64(e.incarn[u])*0x9e3779b97f4a7c15, u),
		Rec:        &e.recs[u],
	})
	// Init may record events (none of the current protocols do, but the
	// recorder is live); fold them into the trace at the current round.
	e.drainRecorders(e.round)
}

// RefreshTopology re-reads the dual graph's flattened adjacency after a
// PatchNode and resizes every structure whose shape depends on it: the
// unreliable-edge inclusion mask, the IncludedFor scratch buffers (the
// patched graph may have a larger max unreliable degree), and the Δ/Δ′
// bounds handed to processes restarted from now on. Must be called after
// every patch before the next round runs — PatchNode rewrites the CSR
// backing arrays in place, so the engine's stale slice headers would
// otherwise read torn topology.
func (e *Engine) RefreshTopology() {
	e.gCSR = e.dual.ReliableCSR()
	e.uCSR = e.dual.UnreliableCSR()
	e.delta, e.deltaP = e.dual.Delta(), e.dual.DeltaPrime()
	e.maxUDeg = 0
	for u := range e.procs {
		if d := int(e.uCSR.Off[u+1] - e.uCSR.Off[u]); d > e.maxUDeg {
			e.maxUDeg = d
		}
	}
	if e.sparse != nil && len(e.incBuf) < e.maxUDeg {
		e.incBuf = make([]bool, e.maxUDeg)
	}
	if e.included != nil && len(e.included) != len(e.dual.UnreliableEdges()) {
		e.included = make([]bool, len(e.dual.UnreliableEdges()))
	}
	for _, sh := range e.shards {
		if len(sh.incBuf) < e.maxUDeg {
			sh.incBuf = make([]bool, e.maxUDeg)
		}
	}
}
