package sim

// This file is the engine's batch execution surface: a process bank steps
// contiguous node ranges through the round phases instead of taking one
// interface call per node. Struct-of-arrays protocol implementations
// (core.NodeStateBank, the sweep workload) sweep their columns linearly per
// range, which is where the n = 10⁵–10⁶ rounds/sec headroom lives — the
// per-node Process path pays two interface dispatches plus a cache miss per
// node per round before any protocol work happens.
//
// Semantics are pinned to the per-node path: a bank must produce exactly the
// decisions and receptions that calling its per-node handles through Process
// would have. The engine's driver-equivalence tests and core's lockstep
// oracle test enforce this bit-for-bit.

// RxSlot is one node's reception state for the current round, written by the
// scatter (or the reception-model translation) and read at delivery. The
// three fields used to live in separate parallel arrays; interleaving them
// puts a delivery decision's loads on one cache line per node. Stamp makes
// the slots self-clearing: a slot whose Stamp is not the current round holds
// no receptions.
type RxSlot struct {
	// Stamp is the round that last wrote this slot.
	Stamp int32
	// Count is the number of transmitting topology neighbors heard.
	Count int32
	// From is the transmitter delivered when Count == 1.
	From int32
}

// RoundView is the engine state a ProcessBank reads and writes during one
// round. All slices are indexed by node and owned by the engine; banks must
// only touch the index range a TransmitRange/ReceiveRange call names.
type RoundView struct {
	// Payloads and Transmit receive the transmit-phase decisions:
	// TransmitRange must fill both for every node in its range, exactly as
	// Process.Transmit would have through the engine's stepTx.
	Payloads []any
	Transmit []bool
	// Rx holds the resolved reception state, valid during ReceiveRange. A
	// node hears transmitter Rx[u].From iff it is not itself transmitting,
	// Rx[u].Stamp equals the current round, and Rx[u].Count == 1; every
	// other combination is ⊥.
	Rx []RxSlot
	// Down is the engine's crashed-node mask; nil when no node has ever been
	// down. A down node's process must not run: TransmitRange writes
	// (nil, false) for it without consulting protocol state, ReceiveRange
	// skips it entirely — mirroring stepTx and deliver.
	Down []bool
}

// RoundFlusher is the optional bulk-recording hook of a ProcessBank: a bank
// that also implements it has FlushRound(t, trace) called once per round,
// after the round's receive phase and delivery stats but before the
// per-node recorder buffers drain. A bank that accumulates events in its
// own columns (instead of going through each node's Recorder) emits them
// here in one batch — Trace.AppendHearBatch — which removes the per-event
// recorder round-trip from the hot receive path. The flush must emit events
// in ascending node order so traces stay byte-identical to the recorder
// path it replaces.
type RoundFlusher interface {
	FlushRound(t int, tr *Trace)
}

// ProcessBank executes node ranges in batch. Config.Bank supplies one
// alongside the per-node Procs handles (which remain the Init path, the
// goroutine-per-node driver's unit, and the oracle for equivalence tests).
// Range calls for the same phase never overlap and jointly cover [0, n);
// under the worker-pool driver they run concurrently on disjoint ranges, so
// a bank's per-node state must be independent across nodes exactly as
// Process implementations must confine their state.
type ProcessBank interface {
	// TransmitRange fixes round t's broadcast decisions for nodes [lo, hi):
	// for each node u, v.Payloads[u] and v.Transmit[u] exactly as
	// Process.Transmit(t) would have returned them (and (nil, false) for
	// down nodes).
	TransmitRange(t, lo, hi int, v *RoundView)
	// ReceiveRange delivers round t's reception outcomes to nodes [lo, hi),
	// resolving each node's outcome from v (see RoundView.Rx) exactly as the
	// engine's deliver would have, and skipping down nodes.
	ReceiveRange(t, lo, hi int, v *RoundView)
}
