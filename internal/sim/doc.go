// Package sim implements the synchronous execution model of Section 2 of
// the paper: rounds 1, 2, … in which every process first receives inputs
// from the environment, then decides to transmit or receive, then receives
// (subject to the collision rule), and finally emits outputs which the
// environment consumes.
//
// The communication topology of round t is G's reliable edges plus the
// subset of unreliable edges the link scheduler includes for t. Node u
// receives message m from v in round t iff u is receiving, v transmits m,
// and v is the only transmitter among u's neighbors in that topology;
// otherwise u receives the null indicator ⊥ (no collision detection).
//
// Three interchangeable drivers run the same semantics: a sequential loop, a
// chunked worker pool, and a goroutine-per-node driver in which every
// simulated process is its own goroutine synchronised by round barriers.
// Per-node deterministic RNG streams make all three produce identical
// executions.
package sim
