package sim

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceJSONRoundTrip(t *testing.T) {
	tr := &Trace{RoundsRun: 10, Transmissions: 5, Deliveries: 3, Collisions: 1}
	tr.Record(Event{Round: 1, Node: 0, Kind: EvBcast, MsgID: NewMsgID(0, 1), Payload: "hello"})
	tr.Record(Event{Round: 2, Node: 1, Kind: EvHear, From: 0, MsgID: NewMsgID(0, 1)})
	tr.Record(Event{Round: 2, Node: 1, Kind: EvRecv, From: 0, MsgID: NewMsgID(0, 1)})
	tr.Record(Event{Round: 4, Node: 2, Kind: EvDecide, From: 7})
	tr.Record(Event{Round: 9, Node: 0, Kind: EvAck, MsgID: NewMsgID(0, 1)})

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.RoundsRun != 10 || got.Transmissions != 5 || got.Deliveries != 3 || got.Collisions != 1 {
		t.Errorf("stats mismatch: %+v", got)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("%d events, want %d", got.Len(), tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		g, want := got.At(i), tr.At(i)
		if g.Round != want.Round || g.Node != want.Node || g.Kind != want.Kind ||
			g.From != want.From || g.MsgID != want.MsgID {
			t.Errorf("event %d: got %+v, want %+v", i, g, want)
		}
	}
	// Payloads come back as their printed form.
	if got.At(0).Payload != "hello" {
		t.Errorf("payload = %v", got.At(0).Payload)
	}
}

func TestTraceJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Trace{}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.RoundsRun != 0 {
		t.Errorf("empty round trip: %+v", got)
	}
}

func TestTraceJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadTraceJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadTraceJSON(strings.NewReader(`{"events":[{"kind":"warp"}]}`)); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestTraceJSONStableFields(t *testing.T) {
	tr := &Trace{RoundsRun: 1}
	tr.Record(Event{Round: 1, Node: 0, Kind: EvBcast, MsgID: NewMsgID(3, 4)})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"rounds_run"`, `"events"`, `"kind": "bcast"`, `"msg_id"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("serialised trace missing %s:\n%s", want, buf.String())
		}
	}
}
