package sim

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"lbcast/internal/dualgraph"
	"lbcast/internal/xrand"
)

// Driver selects how the engine executes the (identical) round semantics.
type Driver int

const (
	// DriverSequential executes nodes one after another in a single
	// goroutine. The reference implementation.
	DriverSequential Driver = iota + 1
	// DriverWorkerPool fans node steps out over a bounded worker pool,
	// with barriers between the transmit and receive phases. The scatter
	// itself is sharded across the workers when the transmitter set is
	// large enough to pay for the fan-out.
	DriverWorkerPool
	// DriverGoroutinePerNode runs every simulated process as its own
	// goroutine — the natural Go rendering of "one process per device" —
	// synchronised by per-round barriers.
	DriverGoroutinePerNode
)

// Config assembles an execution: the paper's "configuration" is a dual
// graph, a process assignment, a link scheduler and an environment; the
// seed resolves the processes' coin flips.
type Config struct {
	Dual  *dualgraph.Dual
	Procs []Process
	// Bank, when non-nil, executes the transmit and receive phases in
	// contiguous node ranges instead of per-node Process calls (see
	// ProcessBank). Procs must still hold the per-node handles of the same
	// protocol state: Init runs through them, and the goroutine-per-node
	// driver keeps stepping them individually. Incompatible with
	// ReplaceProc (a bank owns all nodes' state; see lifecycle.go).
	Bank ProcessBank
	// Sched may be nil: no unreliable edges are ever included.
	Sched LinkScheduler
	// Reception, when non-nil, replaces the dual-graph scatter as the
	// physical layer (see ReceptionModel). Mutually exclusive with Sched.
	Reception ReceptionModel
	// Env may be nil: no environment inputs or outputs.
	Env Environment
	// Seed derives every node's private randomness stream.
	Seed uint64
	// Driver defaults to DriverSequential.
	Driver Driver
	// Workers bounds DriverWorkerPool concurrency; 0 means GOMAXPROCS.
	Workers int
	// Trace may be nil; a fresh Trace is then created.
	Trace *Trace
}

// inclusionMode describes how the current round's unreliable-edge inclusion
// is resolved during the scatter.
type inclusionMode uint8

const (
	// incNone: no unreliable edge is included this round.
	incNone inclusionMode = iota
	// incAll: every unreliable edge is included this round.
	incAll
	// incMask: e.included holds the round's full inclusion mask.
	incMask
	// incSparse: query e.sparse.IncludedFor on transmitter-incident edges.
	incSparse
)

// parallelScatterMinTx is the transmitter count below which the sharded
// parallel scatter is not worth its fan-out and merge overhead. Derived
// from BenchmarkPoolDispatch: one pool fan-out costs ≈ 1.1µs at 2 workers
// and ≈ 2.5µs at 4, while a transmitter's scatter work is ≈ 100–200ns at
// typical degrees (Δ′ ≈ 20–40), so the parallel saving (1−1/w)·tx·cost only
// clears the dispatch-plus-merge bar from roughly 25–30 transmitters at 4
// workers (≈ 15 at 2). The threshold only picks the execution strategy —
// the deterministic shard merge keeps traces byte-identical either way.
const parallelScatterMinTx = 32

// scatterShard is one worker's private reception state for the parallel
// scatter: interleaved reception slots over all nodes, plus the list of
// nodes this worker touched this round (so the merge visits only Σ-degree
// many entries, never all n).
type scatterShard struct {
	rx      []RxSlot
	touched []int32
	incBuf  []bool
}

// Engine executes rounds of a configuration.
type Engine struct {
	dual   *dualgraph.Dual
	procs  []Process
	bank   ProcessBank  // non-nil: batch path for transmit/receive phases
	flush  RoundFlusher // non-nil when bank also bulk-records (see batch.go)
	sched  LinkScheduler
	batch  BatchLinkScheduler  // non-nil when sched supports batch fills
	sparse SparseLinkScheduler // non-nil when sched supports subset queries
	recv   ReceptionModel      // non-nil when a model replaces the scatter
	env    Environment
	driver Driver
	wrk    int
	trace  *Trace

	round int // last executed round; rounds are 1-indexed as in the paper

	// Lifecycle state (see lifecycle.go). down is nil until the first
	// SetDown, so churn-free executions take one nil-check per node and stay
	// byte-identical to pre-lifecycle traces. seed/delta/deltaPrime are
	// retained from New so ReplaceProc can initialise restarted processes;
	// incarn salts each restart's RNG stream away from its predecessor's.
	down   []bool
	incarn []uint32
	seed   uint64
	delta  int
	deltaP int

	// Flattened topology (shared with dual, read-only): the scatter kernel
	// walks these instead of per-node adjacency slices.
	gCSR dualgraph.CSR
	uCSR dualgraph.UnreliableCSR

	// Per-round scratch, reused across rounds. The payload slot table keeps
	// one slot per node; transmitters' Transmit results land in their own
	// slot and are read at delivery, so no per-round payload allocation
	// happens in the engine.
	payloads []any
	transmit []bool
	included []bool   // unreliable edge inclusion mask (incMask rounds only)
	txList   []int32  // this round's transmitters, ascending
	rx       []RxSlot // per-node reception state written by the scatter
	recs     []nodeRecorder

	// view is the RoundView handed to the bank; its slice headers alias the
	// round scratch above and are refreshed each Step (down may appear
	// mid-run).
	view RoundView

	maxUDeg int                   // max unreliable degree, sizes IncludedFor scratch
	incBuf  []bool                // sequential-path IncludedFor scratch
	recvOut []int32               // ReceptionModel per-node outcome scratch
	sharded ShardedReceptionModel // non-nil when recv supports range resolution

	// touched lists the nodes reached by this round's scatter (stamp moved
	// to the current round), so stats run over O(Σ deg) entries, not all n.
	touched []int32

	// shards holds the per-worker scatter state, allocated lazily on the
	// first round that shards the scatter.
	shards []*scatterShard

	// pool is the persistent worker pool of the worker-pool driver, started
	// lazily on the first parallel phase and stopped by Close. Both the
	// per-node phases and the sharded scatter dispatch onto it, so the
	// steady state spawns no goroutines at all (previously ~2 per round).
	pool *workerPool

	// txFn/rxFn are the cached per-node phase bodies handed to the worker
	// pool, built once so parallel rounds allocate nothing. poolNodeFn and
	// poolScatterFn are the cached per-worker bodies dispatched to the pool;
	// their per-call inputs travel through the poolTask/poolChunk/poolN and
	// scatterChunk/scatterMode fields to keep dispatch allocation-free.
	txFn, rxFn    func(u int)
	poolNodeFn    func(w int)
	poolBankFn    func(w int)
	poolScatterFn func(w int)
	poolResolveFn func(w int)
	poolTask      func(u int)
	poolChunk     int
	poolN         int
	bankTx        bool // poolBankFn phase selector: transmit vs receive
	scatterChunk  int
	scatterMode   inclusionMode
	resolveChunk  int

	// dirty is the set of nodes with buffered recorder events since the
	// last drain: dirtyIdx[:dirtyLen] holds their indices in arbitrary
	// order (recorders push concurrently), sorted at drain time.
	dirtyIdx []int32
	dirtyLen atomic.Int32

	// Goroutine-per-node driver state.
	nodeCmd  []chan nodeCommand
	nodeDone chan struct{}
}

type nodeCommand int

const (
	cmdTransmit nodeCommand = iota + 1
	cmdReceive
	cmdStop
)

// New validates the configuration and prepares an engine positioned before
// round 1.
func New(cfg Config) (*Engine, error) {
	if cfg.Dual == nil {
		return nil, fmt.Errorf("sim: Config.Dual is nil")
	}
	if len(cfg.Procs) != cfg.Dual.N() {
		return nil, fmt.Errorf("sim: %d processes for %d vertices", len(cfg.Procs), cfg.Dual.N())
	}
	if cfg.Reception != nil && cfg.Sched != nil {
		return nil, fmt.Errorf("sim: Config.Sched and Config.Reception are mutually exclusive")
	}
	driver := cfg.Driver
	if driver == 0 {
		driver = DriverSequential
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	trace := cfg.Trace
	if trace == nil {
		trace = &Trace{}
	}
	n := cfg.Dual.N()
	e := &Engine{
		dual:     cfg.Dual,
		procs:    cfg.Procs,
		bank:     cfg.Bank,
		sched:    cfg.Sched,
		env:      cfg.Env,
		driver:   driver,
		wrk:      workers,
		trace:    trace,
		gCSR:     cfg.Dual.ReliableCSR(),
		uCSR:     cfg.Dual.UnreliableCSR(),
		payloads: make([]any, n),
		transmit: make([]bool, n),
		txList:   make([]int32, 0, n),
		rx:       make([]RxSlot, n),
		recs:     make([]nodeRecorder, n),
	}
	e.view = RoundView{Payloads: e.payloads, Transmit: e.transmit, Rx: e.rx}
	e.seed = cfg.Seed
	if f, ok := cfg.Bank.(RoundFlusher); ok {
		e.flush = f
	}
	if cfg.Reception != nil {
		e.recv = cfg.Reception
		e.recvOut = make([]int32, n)
		if s, ok := cfg.Reception.(ShardedReceptionModel); ok {
			e.sharded = s
		}
	}
	for u := 0; u < n; u++ {
		if d := int(e.uCSR.Off[u+1] - e.uCSR.Off[u]); d > e.maxUDeg {
			e.maxUDeg = d
		}
	}
	if s, ok := cfg.Sched.(SparseLinkScheduler); ok {
		// Sparse schedulers usually skip the full mask: uniform rounds skip
		// per-edge resolution entirely, non-uniform rounds resolve
		// transmitter-incident subsets into incBuf. The batch mask is kept
		// as the dense-round fallback (see Step).
		e.sparse = s
		e.incBuf = make([]bool, e.maxUDeg)
	}
	if b, ok := cfg.Sched.(BatchLinkScheduler); ok {
		e.batch = b
	}
	if e.sparse == nil || e.batch != nil {
		e.included = make([]bool, len(cfg.Dual.UnreliableEdges()))
	}
	e.dirtyIdx = make([]int32, n)
	for u := 0; u < n; u++ {
		e.recs[u].eng = e
		e.recs[u].node = int32(u)
	}
	e.txFn = e.stepTx
	e.rxFn = e.deliver
	e.poolNodeFn = func(w int) {
		lo := w * e.poolChunk
		hi := min(lo+e.poolChunk, e.poolN)
		for u := lo; u < hi; u++ {
			e.poolTask(u)
		}
	}
	e.poolBankFn = func(w int) {
		lo := w * e.poolChunk
		hi := min(lo+e.poolChunk, e.poolN)
		if lo >= hi {
			return
		}
		if e.bankTx {
			e.bank.TransmitRange(e.round, lo, hi, &e.view)
		} else {
			e.bank.ReceiveRange(e.round, lo, hi, &e.view)
		}
	}
	e.poolScatterFn = func(w int) {
		lo := w * e.scatterChunk
		hi := min(lo+e.scatterChunk, len(e.txList))
		if lo >= hi {
			return
		}
		sh := e.shards[w]
		e.scatterInto(e.round, e.scatterMode, e.txList[lo:hi],
			sh.rx, &sh.touched, sh.incBuf)
	}
	e.poolResolveFn = func(w int) {
		lo := w * e.resolveChunk
		hi := min(lo+e.resolveChunk, len(e.procs))
		if lo < hi {
			e.sharded.ResolveRange(e.round, e.txList, e.recvOut, lo, hi)
		}
	}
	delta, deltaPrime := cfg.Dual.Delta(), cfg.Dual.DeltaPrime()
	e.delta, e.deltaP = delta, deltaPrime
	for u := 0; u < n; u++ {
		env := &NodeEnv{
			ID:         u,
			Delta:      delta,
			DeltaPrime: deltaPrime,
			R:          cfg.Dual.R,
			Rng:        xrand.NodeSource(cfg.Seed, u),
			Rec:        &e.recs[u],
		}
		cfg.Procs[u].Init(env)
	}
	e.drainRecorders(0)
	if driver == DriverGoroutinePerNode {
		e.startNodeGoroutines()
	}
	return e, nil
}

// Trace returns the engine's trace.
func (e *Engine) Trace() *Trace { return e.trace }

// Round returns the last executed round (0 before the first).
func (e *Engine) Round() int { return e.round }

// Run executes the given number of additional rounds.
func (e *Engine) Run(rounds int) {
	for i := 0; i < rounds; i++ {
		e.Step()
	}
}

// Step executes one round.
func (e *Engine) Step() {
	t := e.round + 1
	e.round = t

	// Step 1: environment inputs.
	if e.env != nil {
		e.env.BeforeRound(t)
	}

	// Step 2: transmit decisions. The down mask may have appeared since the
	// last round (SetDown allocates it lazily), so the bank's view is
	// refreshed here before any range call reads it.
	e.view.Down = e.down
	switch e.driver {
	case DriverSequential:
		if e.bank != nil {
			e.bank.TransmitRange(t, 0, len(e.procs), &e.view)
		} else {
			for u := range e.procs {
				e.stepTx(u)
			}
		}
	case DriverWorkerPool:
		if e.bank != nil {
			e.parallelBank(true)
		} else {
			e.parallelNodes(e.txFn)
		}
	case DriverGoroutinePerNode:
		e.nodePhase(cmdTransmit)
	}
	e.drainRecorders(t)

	// Adaptive adversaries observe the fixed decisions before the topology
	// is resolved (explicit model violation, see TransmitterAware).
	if ta, ok := e.sched.(TransmitterAware); ok {
		ta.ObserveTransmitters(t, e.transmit)
	}

	// Collect this round's transmitters (ascending): both the inclusion-
	// mode choice below and the scatter consume the list.
	e.txList = e.txList[:0]
	for u, tx := range e.transmit {
		if tx {
			e.txList = append(e.txList, int32(u))
		}
	}

	// Resolve how the round topology's unreliable part is decided. Sparse
	// schedulers collapse uniform rounds (Always/Never/Periodic/AntiDecay,
	// and quiet Adaptive rounds) to a single flag — no mask is written at
	// all — and defer non-uniform rounds to transmitter-incident subset
	// queries inside the scatter, costing O(Σ u-deg over transmitters).
	// When the transmitter set is so dense that subset queries would
	// exceed one pass over the mask (an edge between two transmitters is
	// queried from both endpoints), the batch fill is the cheaper path and
	// the engine falls back to it. Batch-capable schedulers without subset
	// queries fill the whole mask in one call; the shim queries the mask
	// once per edge per round.
	// A reception model bypasses the whole dual-graph path: no link schedule
	// is resolved and no scatter runs; the model fills the per-node outcome
	// slots directly (see resolveModel).
	if e.recv != nil {
		e.resolveModel(t)
		e.finishRound(t)
		return
	}

	mode := incNone
	if e.sparse != nil {
		if v, ok := e.sparse.Uniform(t); ok {
			if v {
				mode = incAll
			}
		} else {
			mode = incSparse
			if e.batch != nil {
				uDegSum := 0
				for _, v := range e.txList {
					uDegSum += int(e.uCSR.Off[v+1] - e.uCSR.Off[v])
				}
				if uDegSum > len(e.included) {
					e.batch.IncludedBatch(t, e.included)
					mode = incMask
				}
			}
		}
	} else if e.batch != nil {
		e.batch.IncludedBatch(t, e.included)
		mode = incMask
	} else if e.sched != nil {
		for i := range e.included {
			e.included[i] = e.sched.Included(t, i)
		}
		mode = incMask
	}

	// Step 3: receptions under the collision rule. Scatter from the
	// (typically sparse) transmitter set: each transmitter bumps the
	// reception count of its reliable neighbors and its included unreliable
	// peers, costing O(Σ deg over transmitters) and yielding collision
	// counts as a by-product. Listeners never scan their neighborhoods.
	e.scatter(t, mode)
	e.finishRound(t)
}

// finishRound runs the delivery, statistics, trace-drain and environment-
// output steps shared by the dual-graph scatter and reception-model paths.
// It expects the per-node reception state (rx slots, touched)
// for round t to be fully resolved.
func (e *Engine) finishRound(t int) {
	// Delivery mutates process state; each node resolves its own reception
	// outcome from the scatter counts (deliver fuses the per-node outcome
	// decision with the Receive call, so no separate O(n) pass runs).
	// Under the goroutine-per-node driver each node consumes its own slot.
	switch e.driver {
	case DriverSequential:
		if e.bank != nil {
			e.bank.ReceiveRange(t, 0, len(e.procs), &e.view)
		} else {
			for u := range e.procs {
				e.deliver(u)
			}
		}
	case DriverWorkerPool:
		if e.bank != nil {
			e.parallelBank(false)
		} else {
			e.parallelNodes(e.rxFn)
		}
	case DriverGoroutinePerNode:
		e.nodePhase(cmdReceive)
	}

	// Stats fall out of the scatter counts over the touched-node list: a
	// listener with one transmitting topology neighbor received, one with
	// two or more lost the round to interference. Only nodes the scatter
	// reached are visited, so this costs O(Σ deg over transmitters).
	txBefore, delBefore, colBefore := e.trace.Transmissions, e.trace.Deliveries, e.trace.Collisions
	e.trace.Transmissions += len(e.txList)
	for _, u := range e.touched {
		if e.transmit[u] || (e.down != nil && e.down[u]) {
			continue
		}
		if e.rx[u].Count == 1 {
			e.trace.Deliveries++
		} else {
			e.trace.Collisions++
		}
	}
	if e.trace.SampleRounds {
		e.trace.PerRound = append(e.trace.PerRound, RoundStat{
			Round:         t,
			Transmissions: e.trace.Transmissions - txBefore,
			Deliveries:    e.trace.Deliveries - delBefore,
			Collisions:    e.trace.Collisions - colBefore,
		})
	}
	if e.flush != nil {
		e.flush.FlushRound(t, e.trace)
	}
	e.drainRecorders(t)
	e.trace.RoundsRun++

	// Step 4: environment outputs.
	if e.env != nil {
		e.env.AfterRound(t)
	}
}

// scatter walks the round's transmitters (txList, built in Step) and bumps
// the reception count of every node they reach through the round topology,
// recording the (unique, if count stays 1) transmitter in the slot. Round
// stamps make the count arrays self-clearing: a node whose stamp is stale
// has count zero. Under the worker-pool driver with enough transmitters the
// scatter is sharded across workers and merged deterministically.
func (e *Engine) scatter(t int, mode inclusionMode) {
	e.touched = e.touched[:0]
	if e.driver == DriverWorkerPool && e.wrk > 1 && len(e.txList) >= parallelScatterMinTx {
		e.scatterParallel(t, mode)
		return
	}
	e.scatterInto(t, mode, e.txList, e.rx, &e.touched, e.incBuf)
}

// scatterInto walks the given transmitters and accumulates receptions into
// the supplied reception slots. When touched is non-nil, every node whose
// slot transitions to the current round is appended to it (the parallel
// shards use this to keep the merge proportional to work done). incBuf is
// the IncludedFor scratch for incSparse rounds.
func (e *Engine) scatterInto(t int, mode inclusionMode, txs []int32,
	rx []RxSlot, touched *[]int32, incBuf []bool) {

	t32 := int32(t)
	gOff, gTgt := e.gCSR.Off, e.gCSR.Targets
	uOff, uPeers, uEdges := e.uCSR.Off, e.uCSR.Peers, e.uCSR.Edges
	bump := func(u, v int32) {
		s := &rx[u]
		if s.Stamp != t32 {
			s.Stamp, s.Count, s.From = t32, 1, v
			if touched != nil {
				*touched = append(*touched, u)
			}
		} else {
			s.Count++
		}
	}
	for _, v := range txs {
		for i := gOff[v]; i < gOff[v+1]; i++ {
			bump(gTgt[i], v)
		}
		if mode == incNone {
			continue
		}
		lo, hi := uOff[v], uOff[v+1]
		if lo == hi {
			continue
		}
		switch mode {
		case incAll:
			for i := lo; i < hi; i++ {
				bump(uPeers[i], v)
			}
		case incMask:
			for i := lo; i < hi; i++ {
				if e.included[uEdges[i]] {
					bump(uPeers[i], v)
				}
			}
		case incSparse:
			buf := incBuf[:hi-lo]
			e.sparse.IncludedFor(t, uEdges[lo:hi], buf)
			for i := lo; i < hi; i++ {
				if buf[i-lo] {
					bump(uPeers[i], v)
				}
			}
		}
	}
}

// scatterParallel shards the transmitter list across the persistent worker
// pool. Each worker scatters its contiguous txList range into a private
// shard; the shards are then merged into the engine's reception arrays in
// worker order. Because shard w's transmitters all precede shard w+1's in
// txList order, "first worker to touch u wins From, counts add" reproduces
// the sequential left-to-right scatter exactly, so traces stay
// byte-identical.
func (e *Engine) scatterParallel(t int, mode inclusionMode) {
	workers := e.wrk
	if workers > len(e.txList) {
		workers = len(e.txList)
	}
	e.ensureShards(workers)
	chunk := (len(e.txList) + workers - 1) / workers
	active := (len(e.txList) + chunk - 1) / chunk
	for w := 0; w < active; w++ {
		e.shards[w].touched = e.shards[w].touched[:0]
	}
	e.scatterChunk, e.scatterMode = chunk, mode
	e.ensurePool()
	e.pool.run(active, e.poolScatterFn)

	t32 := int32(t)
	for w := 0; w < active; w++ {
		sh := e.shards[w]
		for _, u := range sh.touched {
			s, shs := &e.rx[u], &sh.rx[u]
			if s.Stamp != t32 {
				s.Stamp, s.Count, s.From = t32, shs.Count, shs.From
				e.touched = append(e.touched, u)
			} else {
				s.Count += shs.Count
			}
		}
	}
}

// resolveModel asks the reception model for the round's per-node outcomes
// and translates them into the engine's scatter-count representation, so
// delivery and the trace statistics run unchanged: a clean reception becomes
// count 1 with the transmitter in From, a Blocked outcome becomes count 2
// (indistinguishable from a dual-graph collision downstream), and silence
// leaves the node untouched.
func (e *Engine) resolveModel(t int) {
	e.touched = e.touched[:0]
	if e.sharded != nil && e.driver == DriverWorkerPool && e.wrk > 1 &&
		len(e.procs) >= parallelResolveMinListeners && e.sharded.PrepareRound(t, e.txList) {
		e.resolveSharded()
	} else {
		e.recv.Resolve(t, e.txList, e.recvOut)
	}
	t32 := int32(t)
	for u, v := range e.recvOut {
		if e.transmit[u] || (e.down != nil && e.down[u]) {
			continue
		}
		switch {
		case v >= 0:
			e.rx[u] = RxSlot{Stamp: t32, Count: 1, From: v}
			e.touched = append(e.touched, int32(u))
		case v == Blocked:
			e.rx[u] = RxSlot{Stamp: t32, Count: 2}
			e.touched = append(e.touched, int32(u))
		}
	}
}

// ensureShards lazily grows the per-worker scatter shards to the given count.
func (e *Engine) ensureShards(workers int) {
	n := len(e.procs)
	for len(e.shards) < workers {
		e.shards = append(e.shards, &scatterShard{
			rx:     make([]RxSlot, n),
			incBuf: make([]bool, e.maxUDeg),
		})
	}
}

// deliver resolves node u's reception outcome from the scatter counts and
// invokes Receive: a listener whose stamp is current with exactly one
// transmitting topology neighbor hears that transmitter (reading the payload
// from its slot in the shared table); everyone else — transmitters, silent
// listeners, collision victims — gets ⊥. Every field it touches is indexed
// by u, so drivers may run delivers concurrently.
func (e *Engine) deliver(u int) {
	if e.down != nil && e.down[u] {
		return // a crashed node's process does not run, not even for ⊥
	}
	t := e.round
	if s := e.rx[u]; !e.transmit[u] && s.Stamp == int32(t) && s.Count == 1 {
		from := int(s.From)
		e.procs[u].Receive(t, from, e.payloads[from], true)
		return
	}
	e.procs[u].Receive(t, NoTransmitter, nil, false)
}

// parallelBank fans a bank phase out over the persistent worker pool using
// the same contiguous chunking as parallelNodes, so a bank sees exactly the
// node ranges the per-node path would have stepped per worker.
func (e *Engine) parallelBank(tx bool) {
	n := len(e.procs)
	workers := e.wrk
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if tx {
			e.bank.TransmitRange(e.round, 0, n, &e.view)
		} else {
			e.bank.ReceiveRange(e.round, 0, n, &e.view)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	active := (n + chunk - 1) / chunk
	e.poolChunk, e.poolN, e.bankTx = chunk, n, tx
	e.ensurePool()
	e.pool.run(active, e.poolBankFn)
}

// parallelNodes applies fn to every node index using the persistent worker
// pool, chunking the node range exactly as the spawn-per-phase version did
// so executions (and traces) are unchanged.
func (e *Engine) parallelNodes(fn func(u int)) {
	n := len(e.procs)
	workers := e.wrk
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for u := 0; u < n; u++ {
			fn(u)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	active := (n + chunk - 1) / chunk
	e.poolTask, e.poolChunk, e.poolN = fn, chunk, n
	e.ensurePool()
	e.pool.run(active, e.poolNodeFn)
}

// workerPool is the persistent pool owned by the worker-pool driver: one
// goroutine per configured worker, started once and parked on a private
// command channel between phases. run dispatches one body per active worker
// and waits for all of them; the channel operations provide the
// happens-before edges that make the engine's shared round state safe to
// touch from the workers.
type workerPool struct {
	cmd     []chan func(w int)
	done    chan struct{}
	stopped sync.Once
}

func newWorkerPool(workers int) *workerPool {
	p := &workerPool{
		cmd:  make([]chan func(w int), workers),
		done: make(chan struct{}, workers),
	}
	for w := range p.cmd {
		p.cmd[w] = make(chan func(w int), 1)
		go p.loop(w)
	}
	return p
}

func (p *workerPool) loop(w int) {
	for fn := range p.cmd[w] {
		fn(w)
		p.done <- struct{}{}
	}
}

// run executes fn(w) on workers 0..active-1 and blocks until every one of
// them finishes.
func (p *workerPool) run(active int, fn func(w int)) {
	for w := 0; w < active; w++ {
		p.cmd[w] <- fn
	}
	for w := 0; w < active; w++ {
		<-p.done
	}
}

// stop releases the pool's goroutines. Idempotent: Close and the GC cleanup
// below may both reach it.
func (p *workerPool) stop() {
	p.stopped.Do(func() {
		for _, c := range p.cmd {
			close(c)
		}
	})
}

// ensurePool lazily starts the persistent worker pool at the engine's full
// worker count (phases activate only the prefix they need). A GC cleanup
// stops the pool when the engine becomes unreachable, so callers written
// against the old spawn-per-phase driver — for which Close was documented
// as a no-op — do not leak parked workers for the process lifetime. Close
// remains the deterministic release path.
func (e *Engine) ensurePool() {
	if e.pool == nil {
		e.pool = newWorkerPool(e.wrk)
		runtime.AddCleanup(e, (*workerPool).stop, e.pool)
	}
}

// startNodeGoroutines launches one goroutine per node for the
// goroutine-per-node driver. Nodes are directed through phases by
// commands on their private channel; command channels double as the
// happens-before edge for the engine's shared round state.
func (e *Engine) startNodeGoroutines() {
	n := len(e.procs)
	e.nodeCmd = make([]chan nodeCommand, n)
	e.nodeDone = make(chan struct{}, n)
	for u := 0; u < n; u++ {
		e.nodeCmd[u] = make(chan nodeCommand, 1)
		go e.nodeLoop(u)
	}
}

func (e *Engine) nodeLoop(u int) {
	for cmd := range e.nodeCmd[u] {
		switch cmd {
		case cmdTransmit:
			e.stepTx(u)
		case cmdReceive:
			e.deliver(u)
		case cmdStop:
			e.nodeDone <- struct{}{}
			return
		}
		e.nodeDone <- struct{}{}
	}
}

// nodePhase directs all node goroutines through one phase and waits for
// completion.
func (e *Engine) nodePhase(cmd nodeCommand) {
	for u := range e.nodeCmd {
		e.nodeCmd[u] <- cmd
	}
	for range e.nodeCmd {
		<-e.nodeDone
	}
}

// Close releases driver goroutines: the persistent worker pool of the
// worker-pool driver and the node goroutines of the goroutine-per-node
// driver. It is a no-op for the sequential driver and safe to call multiple
// times.
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.stop()
		e.pool = nil
	}
	if e.nodeCmd == nil {
		return
	}
	e.nodePhase(cmdStop)
	e.nodeCmd = nil
}

// drainRecorders appends buffered events to the trace in node order,
// producing a deterministic global order regardless of driver. Only nodes on
// the dirty list are visited — the list is filled concurrently in arbitrary
// order by the recorders, so it is sorted here to restore node order.
func (e *Engine) drainRecorders(t int) {
	m := int(e.dirtyLen.Load())
	if m == 0 {
		return
	}
	dirty := e.dirtyIdx[:m]
	slices.Sort(dirty)
	for _, u := range dirty {
		r := &e.recs[u]
		e.trace.recordAll(r.buf, t)
		r.buf = r.buf[:0]
		r.listed = false
	}
	e.dirtyLen.Store(0)
}
