package sim

import (
	"fmt"
	"runtime"
	"sync"

	"lbcast/internal/dualgraph"
	"lbcast/internal/xrand"
)

// Driver selects how the engine executes the (identical) round semantics.
type Driver int

const (
	// DriverSequential executes nodes one after another in a single
	// goroutine. The reference implementation.
	DriverSequential Driver = iota + 1
	// DriverWorkerPool fans node steps out over a bounded worker pool,
	// with barriers between the transmit and receive phases.
	DriverWorkerPool
	// DriverGoroutinePerNode runs every simulated process as its own
	// goroutine — the natural Go rendering of "one process per device" —
	// synchronised by per-round barriers.
	DriverGoroutinePerNode
)

// Config assembles an execution: the paper's "configuration" is a dual
// graph, a process assignment, a link scheduler and an environment; the
// seed resolves the processes' coin flips.
type Config struct {
	Dual  *dualgraph.Dual
	Procs []Process
	// Sched may be nil: no unreliable edges are ever included.
	Sched LinkScheduler
	// Env may be nil: no environment inputs or outputs.
	Env Environment
	// Seed derives every node's private randomness stream.
	Seed uint64
	// Driver defaults to DriverSequential.
	Driver Driver
	// Workers bounds DriverWorkerPool concurrency; 0 means GOMAXPROCS.
	Workers int
	// Trace may be nil; a fresh Trace is then created.
	Trace *Trace
}

// Engine executes rounds of a configuration.
type Engine struct {
	dual   *dualgraph.Dual
	procs  []Process
	sched  LinkScheduler
	batch  BatchLinkScheduler // non-nil when sched supports batch fills
	env    Environment
	driver Driver
	wrk    int
	trace  *Trace

	round int // last executed round; rounds are 1-indexed as in the paper

	// Flattened topology (shared with dual, read-only): the scatter kernel
	// walks these instead of per-node adjacency slices.
	gCSR dualgraph.CSR
	uCSR dualgraph.UnreliableCSR

	// Per-round scratch, reused across rounds. The payload slot table keeps
	// one slot per node; transmitters' Transmit results land in their own
	// slot and are read at delivery, so no per-round payload allocation
	// happens in the engine.
	payloads []any
	transmit []bool
	included []bool  // unreliable edge inclusion mask for the current round
	txList   []int32 // this round's transmitters, ascending
	rxCount  []int32 // transmitting neighbors seen by the scatter
	rxStamp  []int   // round that last touched rxCount/rxFrom for the node
	rxFrom   []int32
	rxOK     []bool
	recs     []nodeRecorder

	// Goroutine-per-node driver state.
	nodeCmd  []chan nodeCommand
	nodeDone chan struct{}
}

type nodeCommand int

const (
	cmdTransmit nodeCommand = iota + 1
	cmdReceive
	cmdStop
)

// New validates the configuration and prepares an engine positioned before
// round 1.
func New(cfg Config) (*Engine, error) {
	if cfg.Dual == nil {
		return nil, fmt.Errorf("sim: Config.Dual is nil")
	}
	if len(cfg.Procs) != cfg.Dual.N() {
		return nil, fmt.Errorf("sim: %d processes for %d vertices", len(cfg.Procs), cfg.Dual.N())
	}
	driver := cfg.Driver
	if driver == 0 {
		driver = DriverSequential
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	trace := cfg.Trace
	if trace == nil {
		trace = &Trace{}
	}
	n := cfg.Dual.N()
	e := &Engine{
		dual:     cfg.Dual,
		procs:    cfg.Procs,
		sched:    cfg.Sched,
		env:      cfg.Env,
		driver:   driver,
		wrk:      workers,
		trace:    trace,
		gCSR:     cfg.Dual.ReliableCSR(),
		uCSR:     cfg.Dual.UnreliableCSR(),
		payloads: make([]any, n),
		transmit: make([]bool, n),
		included: make([]bool, len(cfg.Dual.UnreliableEdges())),
		txList:   make([]int32, 0, n),
		rxCount:  make([]int32, n),
		rxStamp:  make([]int, n),
		rxFrom:   make([]int32, n),
		rxOK:     make([]bool, n),
		recs:     make([]nodeRecorder, n),
	}
	if b, ok := cfg.Sched.(BatchLinkScheduler); ok {
		e.batch = b
	}
	delta, deltaPrime := cfg.Dual.Delta(), cfg.Dual.DeltaPrime()
	for u := 0; u < n; u++ {
		env := &NodeEnv{
			ID:         u,
			Delta:      delta,
			DeltaPrime: deltaPrime,
			R:          cfg.Dual.R,
			Rng:        xrand.NodeSource(cfg.Seed, u),
			Rec:        &e.recs[u],
		}
		cfg.Procs[u].Init(env)
	}
	e.drainRecorders(0)
	if driver == DriverGoroutinePerNode {
		e.startNodeGoroutines()
	}
	return e, nil
}

// Trace returns the engine's trace.
func (e *Engine) Trace() *Trace { return e.trace }

// Round returns the last executed round (0 before the first).
func (e *Engine) Round() int { return e.round }

// Run executes the given number of additional rounds.
func (e *Engine) Run(rounds int) {
	for i := 0; i < rounds; i++ {
		e.Step()
	}
}

// Step executes one round.
func (e *Engine) Step() {
	t := e.round + 1
	e.round = t

	// Step 1: environment inputs.
	if e.env != nil {
		e.env.BeforeRound(t)
	}

	// Step 2: transmit decisions.
	switch e.driver {
	case DriverSequential:
		for u := range e.procs {
			e.payloads[u], e.transmit[u] = e.procs[u].Transmit(t)
		}
	case DriverWorkerPool:
		e.parallelNodes(func(u int) {
			e.payloads[u], e.transmit[u] = e.procs[u].Transmit(t)
		})
	case DriverGoroutinePerNode:
		e.nodePhase(cmdTransmit)
	}
	e.drainRecorders(t)

	// Adaptive adversaries observe the fixed decisions before the topology
	// is resolved (explicit model violation, see TransmitterAware).
	if ta, ok := e.sched.(TransmitterAware); ok {
		ta.ObserveTransmitters(t, e.transmit)
	}

	// Resolve the round topology: reliable edges plus scheduled unreliable
	// edges. Batch-capable schedulers fill the whole mask in one call; the
	// shim queries the mask once per edge per round.
	if e.batch != nil {
		e.batch.IncludedBatch(t, e.included)
	} else if e.sched != nil {
		for i := range e.included {
			e.included[i] = e.sched.Included(t, i)
		}
	}

	// Step 3: receptions under the collision rule. Scatter from the
	// (typically sparse) transmitter set: each transmitter bumps the
	// reception count of its reliable neighbors and its included unreliable
	// peers, costing O(Σ deg over transmitters) and yielding collision
	// counts as a by-product. Listeners never scan their neighborhoods.
	e.scatter(t)
	for u := range e.procs {
		if !e.transmit[u] && e.rxStamp[u] == t && e.rxCount[u] == 1 {
			e.rxOK[u] = true
		} else {
			e.rxOK[u] = false
			e.rxFrom[u] = NoTransmitter
		}
	}

	// Delivery mutates process state; under the goroutine-per-node driver
	// each node consumes its own slot.
	switch e.driver {
	case DriverSequential:
		for u := range e.procs {
			e.deliver(u)
		}
	case DriverWorkerPool:
		e.parallelNodes(e.deliver)
	case DriverGoroutinePerNode:
		e.nodePhase(cmdReceive)
	}

	// Stats fall out of the scatter counts: a listener with two or more
	// transmitting neighbors in the round topology lost the round to
	// interference.
	txBefore, delBefore, colBefore := e.trace.Transmissions, e.trace.Deliveries, e.trace.Collisions
	for u := range e.procs {
		if e.transmit[u] {
			e.trace.Transmissions++
			continue
		}
		if e.rxOK[u] {
			e.trace.Deliveries++
		} else if e.rxStamp[u] == t && e.rxCount[u] >= 2 {
			e.trace.Collisions++
		}
	}
	if e.trace.SampleRounds {
		e.trace.PerRound = append(e.trace.PerRound, RoundStat{
			Round:         t,
			Transmissions: e.trace.Transmissions - txBefore,
			Deliveries:    e.trace.Deliveries - delBefore,
			Collisions:    e.trace.Collisions - colBefore,
		})
	}
	e.drainRecorders(t)
	e.trace.RoundsRun++

	// Step 4: environment outputs.
	if e.env != nil {
		e.env.AfterRound(t)
	}
}

// scatter walks the round's transmitters and bumps the reception count of
// every node they reach through the round topology, recording the (unique,
// if count stays 1) transmitter in rxFrom. Round stamps make the count
// arrays self-clearing: a node whose stamp is stale has count zero.
func (e *Engine) scatter(t int) {
	e.txList = e.txList[:0]
	for u, tx := range e.transmit {
		if tx {
			e.txList = append(e.txList, int32(u))
		}
	}
	gOff, gTgt := e.gCSR.Off, e.gCSR.Targets
	uOff, uPeers, uEdges := e.uCSR.Off, e.uCSR.Peers, e.uCSR.Edges
	for _, v := range e.txList {
		for i := gOff[v]; i < gOff[v+1]; i++ {
			u := gTgt[i]
			if e.rxStamp[u] != t {
				e.rxStamp[u] = t
				e.rxCount[u] = 1
				e.rxFrom[u] = v
			} else {
				e.rxCount[u]++
			}
		}
		for i := uOff[v]; i < uOff[v+1]; i++ {
			if !e.included[uEdges[i]] {
				continue
			}
			u := uPeers[i]
			if e.rxStamp[u] != t {
				e.rxStamp[u] = t
				e.rxCount[u] = 1
				e.rxFrom[u] = v
			} else {
				e.rxCount[u]++
			}
		}
	}
}

// deliver invokes Receive for node u from the resolved slots. Successful
// receptions read the transmitter's payload from its slot in the shared
// payload table.
func (e *Engine) deliver(u int) {
	t := e.round
	if e.rxOK[u] {
		from := int(e.rxFrom[u])
		e.procs[u].Receive(t, from, e.payloads[from], true)
		return
	}
	e.procs[u].Receive(t, NoTransmitter, nil, false)
}

// parallelNodes applies fn to every node index using the worker pool.
func (e *Engine) parallelNodes(fn func(u int)) {
	n := len(e.procs)
	workers := e.wrk
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for u := 0; u < n; u++ {
			fn(u)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for u := lo; u < hi; u++ {
				fn(u)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// startNodeGoroutines launches one goroutine per node for the
// goroutine-per-node driver. Nodes are directed through phases by
// commands on their private channel; command channels double as the
// happens-before edge for the engine's shared round state.
func (e *Engine) startNodeGoroutines() {
	n := len(e.procs)
	e.nodeCmd = make([]chan nodeCommand, n)
	e.nodeDone = make(chan struct{}, n)
	for u := 0; u < n; u++ {
		e.nodeCmd[u] = make(chan nodeCommand, 1)
		go e.nodeLoop(u)
	}
}

func (e *Engine) nodeLoop(u int) {
	for cmd := range e.nodeCmd[u] {
		switch cmd {
		case cmdTransmit:
			e.payloads[u], e.transmit[u] = e.procs[u].Transmit(e.round)
		case cmdReceive:
			e.deliver(u)
		case cmdStop:
			e.nodeDone <- struct{}{}
			return
		}
		e.nodeDone <- struct{}{}
	}
}

// nodePhase directs all node goroutines through one phase and waits for
// completion.
func (e *Engine) nodePhase(cmd nodeCommand) {
	for u := range e.nodeCmd {
		e.nodeCmd[u] <- cmd
	}
	for range e.nodeCmd {
		<-e.nodeDone
	}
}

// Close releases the node goroutines of the goroutine-per-node driver.
// It is a no-op for the other drivers and safe to call multiple times.
func (e *Engine) Close() {
	if e.nodeCmd == nil {
		return
	}
	e.nodePhase(cmdStop)
	e.nodeCmd = nil
}

// drainRecorders appends per-node buffered events to the trace in node
// order, producing a deterministic global order regardless of driver.
func (e *Engine) drainRecorders(t int) {
	for u := range e.recs {
		for _, ev := range e.recs[u].buf {
			if ev.Round == 0 {
				ev.Round = t
			}
			e.trace.Record(ev)
		}
		e.recs[u].buf = e.recs[u].buf[:0]
	}
}
