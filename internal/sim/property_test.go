package sim

import (
	"testing"

	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/xrand"
)

// refProc transmits per a fixed random pattern and records outcomes, for
// comparison against a brute-force model of the collision rule.
type refProc struct {
	env *NodeEnv
	tx  []bool // index t-1
	got []reception
}

func (p *refProc) Init(env *NodeEnv) { p.env = env }

func (p *refProc) Transmit(t int) (any, bool) {
	if t-1 < len(p.tx) && p.tx[t-1] {
		return p.env.ID, true
	}
	return nil, false
}

func (p *refProc) Receive(t, from int, payload any, ok bool) {
	p.got = append(p.got, reception{from: from, payload: payload, ok: ok})
}

// TestCollisionRuleAgainstBruteForce cross-checks the engine's reception
// logic against a direct implementation of the model's collision rule on
// random graphs, schedules and transmit patterns.
func TestCollisionRuleAgainstBruteForce(t *testing.T) {
	rng := xrand.New(99)
	const rounds = 40
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(10)
		// Random dual graph: reliable edges with p=0.3, extra unreliable
		// with p=0.3.
		var rel, unrel []dualgraph.Edge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				switch f := rng.Float64(); {
				case f < 0.3:
					rel = append(rel, dualgraph.Edge{U: int32(u), V: int32(v)})
				case f < 0.6:
					unrel = append(unrel, dualgraph.Edge{U: int32(u), V: int32(v)})
				}
			}
		}
		d, err := dualgraph.Abstract(n, rel, unrel)
		if err != nil {
			t.Fatal(err)
		}
		s := sched.Random{P: 0.5, Seed: uint64(trial)}

		procs := make([]Process, n)
		patterns := make([][]bool, n)
		for u := 0; u < n; u++ {
			pat := make([]bool, rounds)
			for r := range pat {
				pat[r] = rng.Coin(0.4)
			}
			patterns[u] = pat
			procs[u] = &refProc{tx: pat}
		}
		e, err := New(Config{Dual: d, Procs: procs, Sched: s})
		if err != nil {
			t.Fatal(err)
		}
		e.Run(rounds)

		// Brute force: for each round and listener, collect transmitting
		// topology neighbors directly from the graphs and the schedule.
		ue := d.UnreliableEdges()
		for round := 1; round <= rounds; round++ {
			for u := 0; u < n; u++ {
				var want reception
				want.from = NoTransmitter
				if !patterns[u][round-1] { // listeners only
					var txNbrs []int
					for v := 0; v < n; v++ {
						if v == u || !patterns[v][round-1] {
							continue
						}
						connected := d.G.HasEdge(u, v)
						if !connected {
							for ei, edge := range ue {
								if (int(edge.U) == u && int(edge.V) == v) || (int(edge.U) == v && int(edge.V) == u) {
									connected = s.Included(round, ei)
									break
								}
							}
						}
						if connected {
							txNbrs = append(txNbrs, v)
						}
					}
					if len(txNbrs) == 1 {
						want = reception{from: txNbrs[0], payload: txNbrs[0], ok: true}
					}
				}
				got := procs[u].(*refProc).got[round-1]
				if got.ok != want.ok || got.from != want.from {
					t.Fatalf("trial %d round %d node %d: engine %+v, brute force %+v",
						trial, round, u, got, want)
				}
			}
		}
	}
}

// TestTransmitterNeverReceives is the half-duplex invariant as a property.
func TestTransmitterNeverReceives(t *testing.T) {
	rng := xrand.New(7)
	d, err := dualgraph.Abstract(6, []dualgraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 60
	procs := make([]Process, d.N())
	patterns := make([][]bool, d.N())
	for u := range procs {
		pat := make([]bool, rounds)
		for r := range pat {
			pat[r] = rng.Coin(0.5)
		}
		patterns[u] = pat
		procs[u] = &refProc{tx: pat}
	}
	e, err := New(Config{Dual: d, Procs: procs})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(rounds)
	for u, p := range procs {
		for r, got := range p.(*refProc).got {
			if patterns[u][r] && got.ok {
				t.Fatalf("node %d received while transmitting in round %d", u, r+1)
			}
		}
	}
}
