package sim

import (
	"reflect"
	"testing"

	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/xrand"
)

// chattyProc transmits by private coin and records every reception outcome
// into the trace, so that two executions are trace-identical only if every
// per-node reception (source and round) matched exactly.
type chattyProc struct {
	env *NodeEnv
	p   float64
}

func (c *chattyProc) Init(env *NodeEnv) { c.env = env }

func (c *chattyProc) Transmit(t int) (any, bool) {
	if c.env.Rng.Coin(c.p) {
		return c.env.ID, true
	}
	return nil, false
}

func (c *chattyProc) Receive(t, from int, payload any, ok bool) {
	if ok {
		c.env.Rec.Record(Event{Round: t, Node: c.env.ID, Kind: EvHear, From: from})
	}
}

// TestDriverTraceEquivalence is the driver-parity contract at full trace
// granularity: DriverSequential, DriverWorkerPool and DriverGoroutinePerNode
// must produce identical traces — same events in the same order, same
// aggregate counters — for the same seed and link schedule on a nontrivial
// dual graph. Run it under -race to also exercise the parallel drivers'
// synchronisation.
func TestDriverTraceEquivalence(t *testing.T) {
	d, err := dualgraph.RandomGeometric(120, 5, 5, 1.7, dualgraph.GreyUnreliable, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.UnreliableEdges()) == 0 || d.G.EdgeCount() == 0 {
		t.Fatal("fixture graph is trivial")
	}

	schedulers := []struct {
		name string
		s    LinkScheduler
	}{
		{"random", sched.Random{P: 0.4, Seed: 21}},
		{"always", sched.Always{}},
		{"periodic", sched.Periodic{Period: 7, OnRounds: 3}},
	}
	drivers := []struct {
		name string
		d    Driver
	}{
		{"sequential", DriverSequential},
		{"workerpool", DriverWorkerPool},
		{"goroutine-per-node", DriverGoroutinePerNode},
	}

	for _, sc := range schedulers {
		t.Run(sc.name, func(t *testing.T) {
			run := func(driver Driver) *Trace {
				procs := make([]Process, d.N())
				for u := range procs {
					procs[u] = &chattyProc{p: 0.15}
				}
				e, err := New(Config{Dual: d, Procs: procs, Sched: sc.s, Seed: 99, Driver: driver})
				if err != nil {
					t.Fatal(err)
				}
				e.Run(150)
				e.Close()
				return e.Trace()
			}
			ref := run(DriverSequential)
			if len(ref.Events) == 0 || ref.Deliveries == 0 {
				t.Fatalf("reference run is degenerate: %d events, %d deliveries",
					len(ref.Events), ref.Deliveries)
			}
			for _, dr := range drivers[1:] {
				got := run(dr.d)
				if got.Transmissions != ref.Transmissions || got.Deliveries != ref.Deliveries ||
					got.Collisions != ref.Collisions || got.RoundsRun != ref.RoundsRun {
					t.Errorf("%s counters diverged: got {tx %d del %d col %d}, want {tx %d del %d col %d}",
						dr.name, got.Transmissions, got.Deliveries, got.Collisions,
						ref.Transmissions, ref.Deliveries, ref.Collisions)
				}
				if !reflect.DeepEqual(got.Events, ref.Events) {
					i := 0
					for i < len(got.Events) && i < len(ref.Events) && got.Events[i] == ref.Events[i] {
						i++
					}
					t.Errorf("%s events diverged at index %d (%d vs %d events)",
						dr.name, i, len(got.Events), len(ref.Events))
				}
			}
		})
	}
}
