package sim

import (
	"fmt"
	"runtime"
	"testing"

	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/xrand"
)

// chattyProc transmits by private coin and records every reception outcome
// into the trace, so that two executions are trace-identical only if every
// per-node reception (source and round) matched exactly. The payload is
// boxed once at Init so benchmarks over this process measure the engine and
// trace paths, not interface conversions.
type chattyProc struct {
	env     *NodeEnv
	p       float64
	payload any
}

func (c *chattyProc) Init(env *NodeEnv) { c.env = env; c.payload = env.ID }

func (c *chattyProc) Transmit(t int) (any, bool) {
	if c.env.Rng.Coin(c.p) {
		return c.payload, true
	}
	return nil, false
}

func (c *chattyProc) Receive(t, from int, payload any, ok bool) {
	if ok {
		c.env.Rec.Record(Event{Round: t, Node: c.env.ID, Kind: EvHear, From: from})
	}
}

// equivSchedulers builds the scheduler matrix for the equivalence tests.
// Adaptive is constructed per run (it is stateful), so it is returned as a
// factory.
func equivSchedulers(t *testing.T, d *dualgraph.Dual) []struct {
	name string
	mk   func() LinkScheduler
} {
	t.Helper()
	return []struct {
		name string
		mk   func() LinkScheduler
	}{
		{"random", func() LinkScheduler { return sched.NewRandom(0.4, 21) }},
		{"random-literal", func() LinkScheduler { return sched.Random{P: 0.4, Seed: 21} }},
		{"always", func() LinkScheduler { return sched.Always{} }},
		{"never", func() LinkScheduler { return sched.Never{} }},
		{"periodic", func() LinkScheduler { return sched.Periodic{Period: 7, OnRounds: 3} }},
		{"anti-decay", func() LinkScheduler { return sched.AntiDecay{CycleLen: 6} }},
		{"adaptive", func() LinkScheduler {
			a, err := sched.NewAdaptive(d, 0)
			if err != nil {
				t.Fatal(err)
			}
			return a
		}},
	}
}

// tracesEqual reports whether two traces hold identical counters and
// byte-identical event sequences, returning a description of the first
// divergence otherwise.
func tracesEqual(got, ref *Trace) (bool, string) {
	if got.Transmissions != ref.Transmissions || got.Deliveries != ref.Deliveries ||
		got.Collisions != ref.Collisions || got.RoundsRun != ref.RoundsRun {
		return false, fmt.Sprintf("counters diverged: got {tx %d del %d col %d rounds %d}, want {tx %d del %d col %d rounds %d}",
			got.Transmissions, got.Deliveries, got.Collisions, got.RoundsRun,
			ref.Transmissions, ref.Deliveries, ref.Collisions, ref.RoundsRun)
	}
	if got.Len() != ref.Len() {
		return false, fmt.Sprintf("event count diverged: %d vs %d", got.Len(), ref.Len())
	}
	for i := 0; i < ref.Len(); i++ {
		if got.At(i) != ref.At(i) {
			return false, fmt.Sprintf("events diverged at index %d: got %+v, want %+v",
				i, got.At(i), ref.At(i))
		}
	}
	return true, ""
}

// TestDriverTraceEquivalence is the driver-parity contract at full trace
// granularity: DriverSequential, DriverWorkerPool (at worker counts 1, 2, 7
// and GOMAXPROCS, exercising both the sequential and the sharded parallel
// scatter) and DriverGoroutinePerNode must produce identical traces — same
// events in the same order, same aggregate counters — for the same seed and
// link schedule on a nontrivial dual graph. The transmit probability is set
// high enough that most rounds clear the parallel-scatter threshold. Run it
// under -race to also exercise the parallel drivers' synchronisation.
func TestDriverTraceEquivalence(t *testing.T) {
	d, err := dualgraph.RandomGeometric(120, 5, 5, 1.7, dualgraph.GreyUnreliable, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.UnreliableEdges()) == 0 || d.G.EdgeCount() == 0 {
		t.Fatal("fixture graph is trivial")
	}

	workerCounts := []int{1, 2, 7, runtime.GOMAXPROCS(0)}

	for _, sc := range equivSchedulers(t, d) {
		t.Run(sc.name, func(t *testing.T) {
			run := func(driver Driver, workers int) *Trace {
				procs := make([]Process, d.N())
				for u := range procs {
					procs[u] = &chattyProc{p: 0.3}
				}
				e, err := New(Config{Dual: d, Procs: procs, Sched: sc.mk(), Seed: 99,
					Driver: driver, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(e.Close)
				e.Run(150)
				e.Close()
				return e.Trace()
			}
			ref := run(DriverSequential, 0)
			if ref.Len() == 0 {
				t.Fatalf("reference run is degenerate: %d events", ref.Len())
			}
			if sc.name != "adaptive" && ref.Deliveries == 0 {
				t.Fatalf("reference run is degenerate: %d deliveries", ref.Deliveries)
			}
			for _, w := range workerCounts {
				got := run(DriverWorkerPool, w)
				if ok, diff := tracesEqual(got, ref); !ok {
					t.Errorf("workerpool(workers=%d) %s", w, diff)
				}
			}
			got := run(DriverGoroutinePerNode, 0)
			if ok, diff := tracesEqual(got, ref); !ok {
				t.Errorf("goroutine-per-node %s", diff)
			}
		})
	}
}

// TestParallelScatterMatchesSequentialDense drives the worker-pool driver
// through a dense regime — every node transmitting almost every round over a
// graph with many unreliable edges — so the sharded scatter's merge handles
// heavy collision counts, then checks trace identity against sequential.
func TestParallelScatterMatchesSequentialDense(t *testing.T) {
	d, err := dualgraph.RandomGeometric(200, 6, 6, 2.0, dualgraph.GreyUnreliable, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	run := func(driver Driver, workers int) *Trace {
		procs := make([]Process, d.N())
		for u := range procs {
			procs[u] = &chattyProc{p: 0.9}
		}
		e, err := New(Config{Dual: d, Procs: procs, Sched: sched.NewRandom(0.6, 5), Seed: 3,
			Driver: driver, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		e.Run(60)
		return e.Trace()
	}
	ref := run(DriverSequential, 0)
	for _, w := range []int{2, 3, 8} {
		if ok, diff := tracesEqual(run(DriverWorkerPool, w), ref); !ok {
			t.Errorf("dense workerpool(workers=%d) %s", w, diff)
		}
	}
}
