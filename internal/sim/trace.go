package sim

import (
	"fmt"
	"iter"
	"sort"
)

// EventKind classifies protocol events recorded in a trace.
type EventKind uint8

const (
	// EvBcast is the environment input bcast(m)_u starting a broadcast.
	EvBcast EventKind = iota + 1
	// EvAck is the output ack(m)_u completing a broadcast.
	EvAck
	// EvRecv is the output recv(m)_u delivering a message.
	EvRecv
	// EvDecide is the seed agreement output decide(j, s)_u.
	EvDecide
	// EvHear is a channel-level reception of a protocol data message,
	// recorded even for duplicates. The progress property of the LB problem
	// is defined over receptions ("u receives at least one message m_v …"),
	// not over the deduplicated recv outputs, so checkers need both.
	EvHear

	// numEventKinds bounds the kind space for per-kind counters.
	numEventKinds = int(EvHear) + 1
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvBcast:
		return "bcast"
	case EvAck:
		return "ack"
	case EvRecv:
		return "recv"
	case EvDecide:
		return "decide"
	case EvHear:
		return "hear"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one protocol event. Which fields are meaningful depends on Kind:
//
//   - EvBcast:  Node = broadcaster, MsgID = message.
//   - EvAck:    Node = broadcaster, MsgID = message.
//   - EvRecv:   Node = receiver, From = transmitter heard, MsgID = message.
//   - EvDecide: Node = deciding node, From = seed owner id.
type Event struct {
	Round   int
	Node    int
	Kind    EventKind
	From    int
	MsgID   MsgID
	Payload any
}

// MsgID identifies a broadcast message globally. The message sets M_u of the
// paper are pairwise disjoint; encoding the source in the id enforces that.
type MsgID int64

// NewMsgID builds the id of the seq-th message of the given source.
func NewMsgID(src, seq int) MsgID {
	return MsgID(int64(src)<<32 | int64(uint32(seq)))
}

// Src returns the message's source node.
func (m MsgID) Src() int { return int(int64(m) >> 32) }

// Seq returns the message's per-source sequence number.
func (m MsgID) Seq() int { return int(uint32(int64(m))) }

// String implements fmt.Stringer.
func (m MsgID) String() string { return fmt.Sprintf("m(%d,%d)", m.Src(), m.Seq()) }

// eventChunkLen is the fixed capacity of one column chunk. Chunked growth
// keeps appends O(1) without ever copying recorded history, and bounds the
// transient overshoot of a growing trace to one chunk.
const eventChunkLen = 4096

// eventChunk is one fixed-size block of the columnar event store. Events are
// stored struct-of-arrays: five narrow parallel columns instead of the 56-byte
// row form of Event, cutting steady-state trace bytes by more than half.
// Rounds, nodes and transmitter ids fit int32 at any simulated scale.
type eventChunk struct {
	round []int32
	node  []int32
	kind  []EventKind
	from  []int32
	msgID []MsgID
}

func newEventChunk() *eventChunk {
	return &eventChunk{
		round: make([]int32, 0, eventChunkLen),
		node:  make([]int32, 0, eventChunkLen),
		kind:  make([]EventKind, 0, eventChunkLen),
		from:  make([]int32, 0, eventChunkLen),
		msgID: make([]MsgID, 0, eventChunkLen),
	}
}

// eventStore is the chunked struct-of-arrays event log. Payloads are opaque
// interface values carried by very few events (bcast inputs), so they live in
// a sparse side table keyed by global event index instead of a 16-byte
// interface column on every event.
type eventStore struct {
	chunks []*eventChunk
	n      int

	// droppedChunks counts head chunks released by DiscardBefore; logical
	// event indices keep counting from the start of the execution, so
	// chunk ci of index i lives at chunks[ci - droppedChunks].
	droppedChunks int

	// kindCount[k] counts recorded events of kind k, so ByKind can
	// preallocate its result exactly.
	kindCount [numEventKinds + 1]int

	// payIdx (ascending) and payVal hold the sparse payload table.
	payIdx []int32
	payVal []any

	// spill, when non-nil, moves sealed chunks to disk as they age past the
	// retention window; entries of chunks are nil for spilled chunks and
	// reads go through chunk() (see spill.go).
	spill *traceSpill
}

// append records one event.
func (s *eventStore) append(ev Event) {
	var c *eventChunk
	if len(s.chunks) == 0 || len(s.chunks[len(s.chunks)-1].round) == eventChunkLen {
		c = newEventChunk()
		s.chunks = append(s.chunks, c)
		s.maybeSpill()
	} else {
		c = s.chunks[len(s.chunks)-1]
	}
	c.round = append(c.round, int32(ev.Round))
	c.node = append(c.node, int32(ev.Node))
	c.kind = append(c.kind, ev.Kind)
	c.from = append(c.from, int32(ev.From))
	c.msgID = append(c.msgID, ev.MsgID)
	if ev.Payload != nil {
		s.payIdx = append(s.payIdx, int32(s.n))
		s.payVal = append(s.payVal, ev.Payload)
	}
	if k := int(ev.Kind); k >= 0 && k <= numEventKinds {
		s.kindCount[k]++
	}
	s.n++
}

// appendAll bulk-records a drained per-node buffer: the chunk-boundary check
// runs per chunk-sized batch instead of per event, and the engine's
// stamp-round-0 fixup folds into the same pass. Semantically identical to
// calling append for each event with ev.Round defaulted to defaultRound.
func (s *eventStore) appendAll(evs []Event, defaultRound int) {
	i := 0
	for i < len(evs) {
		var c *eventChunk
		if len(s.chunks) == 0 || len(s.chunks[len(s.chunks)-1].round) == eventChunkLen {
			c = newEventChunk()
			s.chunks = append(s.chunks, c)
			s.maybeSpill()
		} else {
			c = s.chunks[len(s.chunks)-1]
		}
		// Extend the columns once per batch and fill by index: chunks are
		// allocated at full capacity, so this replaces five bounds-checked
		// appends per event with plain stores — the difference is visible in
		// the n = 10⁵ sweep, where the hear-event drain is a top cost.
		k := len(c.round)
		batch := evs[i:min(i+eventChunkLen-k, len(evs))]
		m := k + len(batch)
		c.round, c.node, c.kind = c.round[:m], c.node[:m], c.kind[:m]
		c.from, c.msgID = c.from[:m], c.msgID[:m]
		for j, ev := range batch {
			r := ev.Round
			if r == 0 {
				r = defaultRound
			}
			c.round[k+j] = int32(r)
			c.node[k+j] = int32(ev.Node)
			c.kind[k+j] = ev.Kind
			c.from[k+j] = int32(ev.From)
			c.msgID[k+j] = ev.MsgID
			if ev.Payload != nil {
				s.payIdx = append(s.payIdx, int32(s.n+j))
				s.payVal = append(s.payVal, ev.Payload)
			}
			if k := int(ev.Kind); k >= 0 && k <= numEventKinds {
				s.kindCount[k]++
			}
		}
		s.n += len(batch)
		i += len(batch)
	}
}

// appendHears bulk-records EvHear events for round t: nodes[i] heard
// froms[i]. Semantically identical to calling append for each with a zero
// MsgID and no payload; the columnar fill skips the per-event chunk checks
// and the sparse-payload probe, which is what makes banked receive flushes
// (RoundFlusher) cheaper than the recorder drain they replace.
func (s *eventStore) appendHears(t int, nodes, froms []int32) {
	i := 0
	for i < len(nodes) {
		var c *eventChunk
		if len(s.chunks) == 0 || len(s.chunks[len(s.chunks)-1].round) == eventChunkLen {
			c = newEventChunk()
			s.chunks = append(s.chunks, c)
			s.maybeSpill()
		} else {
			c = s.chunks[len(s.chunks)-1]
		}
		k := len(c.round)
		batch := min(i+eventChunkLen-k, len(nodes)) - i
		m := k + batch
		c.round, c.node, c.kind = c.round[:m], c.node[:m], c.kind[:m]
		c.from, c.msgID = c.from[:m], c.msgID[:m]
		for j := 0; j < batch; j++ {
			c.round[k+j] = int32(t)
			c.node[k+j] = nodes[i+j]
			c.kind[k+j] = EvHear
			c.from[k+j] = froms[i+j]
			c.msgID[k+j] = 0
		}
		s.n += batch
		i += batch
	}
	s.kindCount[EvHear] += len(nodes)
}

// at reassembles event i from the columns.
func (s *eventStore) at(i int) Event {
	ci := i/eventChunkLen - s.droppedChunks
	if ci < 0 {
		panic(fmt.Sprintf("sim: event %d was released by Trace.DiscardBefore", i))
	}
	c := s.chunk(ci)
	j := i % eventChunkLen
	ev := Event{
		Round: int(c.round[j]),
		Node:  int(c.node[j]),
		Kind:  c.kind[j],
		From:  int(c.from[j]),
		MsgID: c.msgID[j],
	}
	if len(s.payIdx) > 0 {
		p := sort.Search(len(s.payIdx), func(k int) bool { return s.payIdx[k] >= int32(i) })
		if p < len(s.payIdx) && s.payIdx[p] == int32(i) {
			ev.Payload = s.payVal[p]
		}
	}
	return ev
}

// Trace accumulates the protocol events of one execution together with
// aggregate channel statistics. It is populated single-threadedly by the
// engine (per-node buffers are drained in node order), so reads after Run
// need no synchronisation and event order is deterministic.
//
// Events are held in a chunked columnar store (see eventStore); access them
// positionally with Len/At, or in order with the Events iterator, ByKind and
// ByNode.
type Trace struct {
	store eventStore

	// RoundsRun counts executed rounds.
	RoundsRun int
	// Transmissions counts node-rounds spent transmitting.
	Transmissions int
	// Deliveries counts successful receptions.
	Deliveries int
	// Collisions counts listener-rounds with two or more transmitting
	// topology neighbors (lost to interference).
	Collisions int

	// PerRound holds one entry per executed round when SampleRounds is
	// set before the run; otherwise it stays nil. It feeds activity
	// timelines (cmd/lbviz) and contention analyses.
	PerRound []RoundStat
	// SampleRounds enables PerRound collection.
	SampleRounds bool
}

// RoundStat is one round's channel activity.
type RoundStat struct {
	Round         int
	Transmissions int
	Deliveries    int
	Collisions    int
}

// Record appends an event. It must only be called from engine-owned
// contexts; protocol code uses the per-node Recorder instead.
func (tr *Trace) Record(ev Event) { tr.store.append(ev) }

// recordAll appends a batch of events, stamping events with Round 0 (bcast
// inputs recorded before their round number was known) with defaultRound —
// the engine's drain path.
func (tr *Trace) recordAll(evs []Event, defaultRound int) {
	tr.store.appendAll(evs, defaultRound)
}

// AppendHearBatch bulk-records channel-level EvHear events for round t:
// nodes[i] heard a data message from froms[i], with no message id or
// payload (the sweep workload's hears carry neither). nodes must be
// ascending so the trace stays byte-identical to the per-node recorder
// drain this replaces. Like Record, it must only be called from
// engine-owned contexts — a bank calls it from its RoundFlusher hook, never
// from concurrent ReceiveRange calls.
func (tr *Trace) AppendHearBatch(t int, nodes, froms []int32) {
	if len(nodes) != len(froms) {
		panic("sim: AppendHearBatch nodes/froms length mismatch")
	}
	tr.store.appendHears(t, nodes, froms)
}

// Len returns the number of recorded events.
func (tr *Trace) Len() int { return tr.store.n }

// At returns event i (Discarded() ≤ i < Len) in trace order. Incremental
// consumers — analyses that poll the trace between rounds — scan the tail
// with At(i) for i in [seen, Len()).
func (tr *Trace) At(i int) Event { return tr.store.at(i) }

// DiscardBefore releases the storage of every full chunk of events with
// index < i, for incremental consumers (lbspec.Monitor in no-retention
// mode) that have fully processed the head of the trace. Logical indices
// are unaffected: Len() keeps counting all recorded events, aggregate
// statistics and per-kind counters are untouched, and At/Events serve the
// retained suffix [Discarded(), Len()). Accessing a released index panics.
func (tr *Trace) DiscardBefore(i int) {
	s := &tr.store
	if i > s.n {
		i = s.n
	}
	drop := i/eventChunkLen - s.droppedChunks
	if drop <= 0 {
		return
	}
	// Shift in place: no allocation, and the released chunks (plus their
	// sparse payload entries) become collectable.
	keep := copy(s.chunks, s.chunks[drop:])
	for j := keep; j < len(s.chunks); j++ {
		s.chunks[j] = nil
	}
	s.chunks = s.chunks[:keep]
	s.droppedChunks += drop
	cut := 0
	for cut < len(s.payIdx) && int(s.payIdx[cut]) < s.droppedChunks*eventChunkLen {
		cut++
	}
	if cut > 0 {
		kp := copy(s.payIdx, s.payIdx[cut:])
		s.payIdx = s.payIdx[:kp]
		kv := copy(s.payVal, s.payVal[cut:])
		for j := kv; j < len(s.payVal); j++ {
			s.payVal[j] = nil
		}
		s.payVal = s.payVal[:kv]
	}
}

// Discarded returns the index of the first retained event — 0 unless
// DiscardBefore has released head chunks.
func (tr *Trace) Discarded() int { return tr.store.droppedChunks * eventChunkLen }

// Events iterates over all recorded events in trace order, walking the
// columns chunk by chunk without materialising []Event. Sparse payloads are
// joined with a single cursor over the payload table (indices are visited
// ascending), so a full walk costs O(events + payloads).
func (tr *Trace) Events() iter.Seq[Event] {
	return func(yield func(Event) bool) {
		payIdx, payVal := tr.store.payIdx, tr.store.payVal
		base, p := tr.store.droppedChunks*eventChunkLen, 0
		for ci := range tr.store.chunks {
			c := tr.store.chunk(ci)
			for j := range c.round {
				ev := Event{
					Round: int(c.round[j]),
					Node:  int(c.node[j]),
					Kind:  c.kind[j],
					From:  int(c.from[j]),
					MsgID: c.msgID[j],
				}
				if p < len(payIdx) && payIdx[p] == int32(base+j) {
					ev.Payload = payVal[p]
					p++
				}
				if !yield(ev) {
					return
				}
			}
			base += len(c.round)
		}
	}
}

// AppendEvents appends all recorded events to dst (growing it at most once)
// and returns the result. Row-form materialisation for consumers that need a
// slice; analysis paths should prefer Events/ByKind/ByNode.
func (tr *Trace) AppendEvents(dst []Event) []Event {
	if cap(dst)-len(dst) < tr.store.n {
		grown := make([]Event, len(dst), len(dst)+tr.store.n)
		copy(grown, dst)
		dst = grown
	}
	for ev := range tr.Events() {
		dst = append(dst, ev)
	}
	return dst
}

// ByKind returns the events of the given kind, in trace order. The result is
// allocated exactly once, sized from the store's per-kind counters.
func (tr *Trace) ByKind(kind EventKind) []Event {
	count := 0
	if k := int(kind); k >= 0 && k <= numEventKinds {
		count = tr.store.kindCount[k]
	}
	if count == 0 {
		return nil
	}
	out := make([]Event, 0, count)
	for ev := range tr.Events() {
		if ev.Kind == kind {
			out = append(out, ev)
			if len(out) == count {
				break
			}
		}
	}
	return out
}

// ByNode returns the events of the given node, in trace order. A counting
// pass sizes the result so the fill pass never reallocates.
func (tr *Trace) ByNode(node int) []Event {
	count := 0
	for ci := range tr.store.chunks {
		for _, u := range tr.store.chunk(ci).node {
			if int(u) == node {
				count++
			}
		}
	}
	if count == 0 {
		return nil
	}
	out := make([]Event, 0, count)
	for ev := range tr.Events() {
		if ev.Node == node {
			out = append(out, ev)
			if len(out) == count {
				break
			}
		}
	}
	return out
}

// KindCount returns the number of recorded events of the given kind without
// scanning the store.
func (tr *Trace) KindCount(kind EventKind) int {
	if k := int(kind); k >= 0 && k <= numEventKinds {
		return tr.store.kindCount[k]
	}
	return 0
}

// nodeRecorder buffers one node's events between engine drain points, so
// concurrent drivers never contend on the shared trace. On its first record
// since the last drain it pushes its node onto the engine's dirty list, so
// draining costs O(recording nodes), never O(n).
type nodeRecorder struct {
	buf    []Event
	listed bool
	eng    *Engine
	node   int32
}

// Record implements Recorder: events buffer per node and enter the trace in
// deterministic node order at the next engine drain.
func (r *nodeRecorder) Record(ev Event) {
	r.buf = append(r.buf, ev)
	if !r.listed && r.eng != nil {
		// listed is owned by the recording node (one goroutine per node in
		// every driver); only the slot reservation below is contended.
		r.listed = true
		i := r.eng.dirtyLen.Add(1) - 1
		r.eng.dirtyIdx[i] = r.node
	}
}
