package sim

import "fmt"

// EventKind classifies protocol events recorded in a trace.
type EventKind uint8

const (
	// EvBcast is the environment input bcast(m)_u starting a broadcast.
	EvBcast EventKind = iota + 1
	// EvAck is the output ack(m)_u completing a broadcast.
	EvAck
	// EvRecv is the output recv(m)_u delivering a message.
	EvRecv
	// EvDecide is the seed agreement output decide(j, s)_u.
	EvDecide
	// EvHear is a channel-level reception of a protocol data message,
	// recorded even for duplicates. The progress property of the LB problem
	// is defined over receptions ("u receives at least one message m_v …"),
	// not over the deduplicated recv outputs, so checkers need both.
	EvHear
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvBcast:
		return "bcast"
	case EvAck:
		return "ack"
	case EvRecv:
		return "recv"
	case EvDecide:
		return "decide"
	case EvHear:
		return "hear"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one protocol event. Which fields are meaningful depends on Kind:
//
//   - EvBcast:  Node = broadcaster, MsgID = message.
//   - EvAck:    Node = broadcaster, MsgID = message.
//   - EvRecv:   Node = receiver, From = transmitter heard, MsgID = message.
//   - EvDecide: Node = deciding node, From = seed owner id.
type Event struct {
	Round   int
	Node    int
	Kind    EventKind
	From    int
	MsgID   MsgID
	Payload any
}

// MsgID identifies a broadcast message globally. The message sets M_u of the
// paper are pairwise disjoint; encoding the source in the id enforces that.
type MsgID int64

// NewMsgID builds the id of the seq-th message of the given source.
func NewMsgID(src, seq int) MsgID {
	return MsgID(int64(src)<<32 | int64(uint32(seq)))
}

// Src returns the message's source node.
func (m MsgID) Src() int { return int(int64(m) >> 32) }

// Seq returns the message's per-source sequence number.
func (m MsgID) Seq() int { return int(uint32(int64(m))) }

// String implements fmt.Stringer.
func (m MsgID) String() string { return fmt.Sprintf("m(%d,%d)", m.Src(), m.Seq()) }

// Trace accumulates the protocol events of one execution together with
// aggregate channel statistics. It is populated single-threadedly by the
// engine (per-node buffers are drained in node order), so reads after Run
// need no synchronisation and event order is deterministic.
type Trace struct {
	Events []Event

	// RoundsRun counts executed rounds.
	RoundsRun int
	// Transmissions counts node-rounds spent transmitting.
	Transmissions int
	// Deliveries counts successful receptions.
	Deliveries int
	// Collisions counts listener-rounds with two or more transmitting
	// topology neighbors (lost to interference).
	Collisions int

	// PerRound holds one entry per executed round when SampleRounds is
	// set before the run; otherwise it stays nil. It feeds activity
	// timelines (cmd/lbviz) and contention analyses.
	PerRound []RoundStat
	// SampleRounds enables PerRound collection.
	SampleRounds bool
}

// RoundStat is one round's channel activity.
type RoundStat struct {
	Round         int
	Transmissions int
	Deliveries    int
	Collisions    int
}

// Record appends an event. It must only be called from engine-owned
// contexts; protocol code uses the per-node Recorder instead.
func (tr *Trace) Record(ev Event) { tr.Events = append(tr.Events, ev) }

// ByKind returns the events of the given kind, in trace order.
func (tr *Trace) ByKind(kind EventKind) []Event {
	var out []Event
	for _, ev := range tr.Events {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// ByNode returns the events of the given node, in trace order.
func (tr *Trace) ByNode(node int) []Event {
	var out []Event
	for _, ev := range tr.Events {
		if ev.Node == node {
			out = append(out, ev)
		}
	}
	return out
}

// nodeRecorder buffers one node's events between engine drain points, so
// concurrent drivers never contend on the shared trace.
type nodeRecorder struct {
	buf []Event
}

func (r *nodeRecorder) Record(ev Event) { r.buf = append(r.buf, ev) }
