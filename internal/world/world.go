package world

import (
	"fmt"
	"math"
	"runtime"

	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// Topology is the common ground a World's policies run on: one dual graph
// with its derived degree bounds, and the (seed, ε) every policy's
// parameters come from. The Dual here is the pristine reference — runs
// that mutate the graph (churn) give each policy engine its own Clone and
// keep reading reliability neighborhoods from this one.
type Topology struct {
	Dual       *dualgraph.Dual
	Delta      int
	DeltaPrime int
	// Eps sizes every policy's acknowledgement window.
	Eps float64
	// Seed is the experiment seed the topology (and every policy's derived
	// randomness, e.g. the sinr-pernode power spread) came from.
	Seed uint64

	// clone rebuilds a structurally identical Dual from the generator
	// parameters; nil for topologies built from a raw Dual.
	clone func() (*dualgraph.Dual, error)
}

// NewSweepTopology builds the constant-density random-geometric instance
// (the PR 2 sweep family: side max(4, √(n/4)), r = 1.5, grey-zone links
// unreliable) that every comparison experiment shares.
func NewSweepTopology(n int, seed uint64, eps float64) (*Topology, error) {
	build := func() (*dualgraph.Dual, error) {
		side := math.Max(4, math.Sqrt(float64(n)/4))
		return dualgraph.RandomGeometric(n, side, side, 1.5, dualgraph.GreyUnreliable, xrand.New(seed))
	}
	d, err := build()
	if err != nil {
		return nil, err
	}
	return &Topology{
		Dual: d, Delta: d.Delta(), DeltaPrime: d.DeltaPrime(),
		Eps: eps, Seed: seed, clone: build,
	}, nil
}

// Clone rebuilds a structurally identical private Dual from the topology's
// generator parameters (same seed → same placement, same edges), for runs
// whose engines patch the graph in place.
func (t *Topology) Clone() (*dualgraph.Dual, error) {
	if t.clone == nil {
		return nil, fmt.Errorf("world: topology has no clone generator")
	}
	return t.clone()
}

// Instance is one policy instantiated over a topology: everything a run
// needs beyond the engine configuration the caller owns.
type Instance struct {
	// AckWindow is the policy's acknowledgement window in rounds — the
	// budget unit of every matrix (shared windows for E-COMPARE/E-CHURN,
	// per-policy utilisation normalisation for E-LOAD).
	AckWindow int
	// Reception, when non-nil, is the reception model replacing the
	// dual-graph scatter. Dual-graph policies leave it nil; their
	// scheduler requirement (the oblivious random½ link scheduler) is
	// applied by Channel.
	Reception sim.ReceptionModel
	// Neighbors maps a source node to the neighbor set its broadcasts must
	// reach for the reliability metric: reliable (G) neighbors under the
	// dual-graph model, isolation-range neighbors under SINR. Lists are
	// ascending; lazily built variants are not safe for concurrent use and
	// belong to the sequential summarize phase.
	Neighbors func(src int) []int32
	// NewService builds node u's protocol instance (also the churn restart
	// factory).
	NewService func(u int) core.Service
}

// Channel applies the instance's physical-layer requirement to an engine
// configuration: the reception model when the policy carries one, otherwise
// the oblivious random½ link scheduler seeded with schedSeed.
func (inst *Instance) Channel(cfg *sim.Config, schedSeed uint64) {
	if inst.Reception != nil {
		cfg.Reception = inst.Reception
	} else {
		cfg.Sched = sched.NewRandom(0.5, schedSeed)
	}
}

// EngineSeed derives policy i's engine seed from the experiment seed. The
// stride keeps different policies' per-node randomness streams disjoint
// while staying a pure function of (seed, selection index), which is what
// pins every matrix row to its pre-World fingerprint.
func EngineSeed(seed uint64, i int) uint64 { return seed + uint64(i)*1_000_003 }

// World runs one incarnation of every selected policy on a common topology
// under one shared clock. Engine construction and summarizing run
// sequentially in selection order; the engines themselves run concurrently
// on sim.RunFleet, so reports are byte-identical at any worker count.
type World struct {
	Top      *Topology
	Policies []Policy
	// Instances holds the per-topology instantiation of each policy,
	// index-aligned with Policies.
	Instances []*Instance
	// Workers bounds how many policy engines run concurrently (≤ 0 means
	// GOMAXPROCS). 1 degenerates to the sequential loop.
	Workers int
}

// New instantiates every selected policy over the topology.
func New(top *Topology, policies []Policy, workers int) (*World, error) {
	if len(policies) == 0 {
		return nil, fmt.Errorf("world: no policies selected")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	w := &World{Top: top, Policies: policies, Workers: workers}
	for _, p := range policies {
		inst, err := p.Instantiate(top)
		if err != nil {
			return nil, fmt.Errorf("world: instantiate %s: %w", p.Name, err)
		}
		w.Instances = append(w.Instances, inst)
	}
	return w, nil
}

// Window returns the shared round budget of a lockstep run: two full ack
// cycles of the slowest selected policy plus slack, capped so outlier
// parameterisations stay affordable.
func (w *World) Window(cap int) int {
	rounds := 0
	for _, inst := range w.Instances {
		if b := 2*inst.AckWindow + 64; b > rounds {
			rounds = b
		}
	}
	if rounds > cap {
		rounds = cap
	}
	return rounds
}

// Senders returns the saturated-sender set every policy drives: nodes
// [0, k) with k = min(4, max(1, n/4)).
func (w *World) Senders() []int {
	n := w.Top.Dual.N()
	k := 4
	if k > n/4 {
		k = max(1, n/4)
	}
	out := make([]int, k)
	for i := range out {
		out[i] = i
	}
	return out
}

// Hooks describe one lockstep run over a World's selected policies. Every
// hook is called with the selection index i (the engine-seed index), the
// policy and its instance.
type Hooks struct {
	// Rounds returns policy i's round budget (identical across i for the
	// shared-window matrices, per-policy for utilisation-normalised ones).
	Rounds func(i int) int
	// Configure fills policy i's engine configuration. cfg arrives with
	// the world's shared Dual preset; runs that mutate topology replace it
	// with a Topology.Clone. Called sequentially in selection order.
	Configure func(i int, p Policy, inst *Instance, cfg *sim.Config) error
	// Attach, when non-nil, runs after engine construction and before the
	// run (sequentially, in selection order): trace-spill setup, fault
	// injector attachment.
	Attach func(i int, p Policy, e *sim.Engine) error
	// Finish consumes policy i's finished engine, sequentially in
	// selection order — rows land in deterministic order regardless of how
	// the engines were scheduled.
	Finish func(i int, p Policy, inst *Instance, e *sim.Engine) error
}

// Run executes one lockstep run: build every policy's engine (sequential),
// run them all on the fleet pool (concurrent up to Workers), then finish
// each in selection order (sequential). Anything shared between engines —
// the reference Dual, a fault plan — must be read-only during the run;
// per-engine state (services, environments, schedulers, patched duals) is
// built fresh inside Configure, which is what the cross-policy race tests
// pin.
func (w *World) Run(h Hooks) error {
	k := len(w.Policies)
	rounds := make([]int, k)
	for i := range rounds {
		rounds[i] = h.Rounds(i)
	}
	engines, err := sim.NewClones(sim.Config{Dual: w.Top.Dual}, k, func(i int, cfg *sim.Config) error {
		if err := h.Configure(i, w.Policies[i], w.Instances[i], cfg); err != nil {
			return fmt.Errorf("world: %s: %w", w.Policies[i].Name, err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if h.Attach != nil {
		for i, e := range engines {
			if err := h.Attach(i, w.Policies[i], e); err != nil {
				return fmt.Errorf("world: %s: %w", w.Policies[i].Name, err)
			}
		}
	}
	sim.RunFleet(w.Workers, engines, rounds)
	for i, e := range engines {
		if err := h.Finish(i, w.Policies[i], w.Instances[i], e); err != nil {
			return fmt.Errorf("world: %s: %w", w.Policies[i].Name, err)
		}
	}
	return nil
}
