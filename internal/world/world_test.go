package world

import (
	"strings"
	"testing"

	"lbcast/internal/sim"
)

// TestSummarize feeds a hand-written trace through the metric extraction:
// two broadcasts from node 1, one acked after reaching its only neighbor
// (reliable), one acked without (unreliable).
func TestSummarize(t *testing.T) {
	tr := &sim.Trace{}
	m1, m2 := sim.NewMsgID(1, 1), sim.NewMsgID(1, 2)
	events := []sim.Event{
		{Round: 1, Node: 1, Kind: sim.EvBcast, MsgID: m1},
		{Round: 3, Node: 2, Kind: sim.EvRecv, From: 1, MsgID: m1},
		{Round: 5, Node: 1, Kind: sim.EvAck, MsgID: m1},
		{Round: 6, Node: 1, Kind: sim.EvBcast, MsgID: m2},
		{Round: 9, Node: 1, Kind: sim.EvAck, MsgID: m2},
	}
	for _, ev := range events {
		tr.Record(ev)
	}
	tr.Transmissions, tr.Deliveries, tr.Collisions = 10, 4, 1

	neigh := func(src int) []int32 { return []int32{2} }
	row := Summarize(tr, 20, neigh)

	if row.Acks != 2 {
		t.Errorf("acks = %d, want 2", row.Acks)
	}
	if row.Reliability != 0.5 {
		t.Errorf("reliability = %v, want 0.5 (one of two acked broadcasts reached node 2)", row.Reliability)
	}
	if row.AckP50 != 3.5 || row.AckMax != 4 {
		t.Errorf("ack p50/max = %v/%d, want 3.5/4", row.AckP50, row.AckMax)
	}
	if row.FirstRecvP50 != 2 {
		t.Errorf("first-recv p50 = %v, want 2", row.FirstRecvP50)
	}
	if row.MsgsPerAck != 5 {
		t.Errorf("msgs/ack = %v, want 5", row.MsgsPerAck)
	}
	if row.DeliveriesPerRound != 0.2 {
		t.Errorf("deliveries/round = %v, want 0.2", row.DeliveriesPerRound)
	}
	if row.CollisionRate != 0.2 {
		t.Errorf("collision rate = %v, want 0.2", row.CollisionRate)
	}
}

func TestIsNeighbor(t *testing.T) {
	neigh := []int32{2, 5, 9}
	for _, v := range neigh {
		if !isNeighbor(neigh, v) {
			t.Errorf("member %d not found", v)
		}
	}
	for _, v := range []int32{0, 3, 10} {
		if isNeighbor(neigh, v) {
			t.Errorf("non-member %d found", v)
		}
	}
	if isNeighbor(nil, 1) {
		t.Error("empty list matched")
	}
}

// TestRegistryBuiltins pins the builtin registration order — the column
// order of every comparison matrix.
func TestRegistryBuiltins(t *testing.T) {
	want := []string{"lbalg", "contention-uniform", "contention-cycling", "decay", "sinr-local", "sinr-pernode"}
	got := Names()
	if len(got) < len(want) {
		t.Fatalf("registered %v, want at least the builtins %v", got, want)
	}
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("registration order %v, want prefix %v", got, want)
		}
	}
	for _, p := range All() {
		if p.Description == "" || p.Model == "" {
			t.Errorf("policy %q missing description or model", p.Name)
		}
	}
}

// TestRegisterDuplicatePanics pins the registry's collision behaviour.
func TestRegisterDuplicatePanics(t *testing.T) {
	check := func(name string, p Policy) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		Register(p)
	}
	check("duplicate", Policy{Name: "lbalg", Instantiate: func(*Topology) (*Instance, error) { return nil, nil }})
	check("empty name", Policy{Instantiate: func(*Topology) (*Instance, error) { return nil, nil }})
	check("nil factory", Policy{Name: "no-factory"})
}

// TestSelect covers selection order, unknown names and the empty selection.
func TestSelect(t *testing.T) {
	ps, err := Select([]string{"decay", "lbalg"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0].Name != "decay" || ps[1].Name != "lbalg" {
		t.Fatalf("Select order not preserved: %v", ps)
	}
	if _, err := Select([]string{"bogus"}); err == nil || !strings.Contains(err.Error(), "lbalg") {
		t.Fatalf("unknown-name error %v does not list the registered set", err)
	}
	if _, err := Select(nil); err == nil {
		t.Fatal("empty selection did not error")
	}
}

// TestEngineSeedStride pins the seed derivation the fingerprint tests rely
// on: a pure function of (seed, selection index) with the historical
// stride.
func TestEngineSeedStride(t *testing.T) {
	if EngineSeed(7, 0) != 7 {
		t.Errorf("EngineSeed(7, 0) = %d", EngineSeed(7, 0))
	}
	if EngineSeed(7, 3) != 7+3*1_000_003 {
		t.Errorf("EngineSeed(7, 3) = %d", EngineSeed(7, 3))
	}
}

// TestTopologyClone checks that clones are structurally identical to the
// reference and private (patching a clone leaves the reference intact).
func TestTopologyClone(t *testing.T) {
	top, err := NewSweepTopology(64, 3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := top.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if c == top.Dual {
		t.Fatal("Clone returned the reference instance")
	}
	if c.N() != top.Dual.N() || c.Delta() != top.Delta || c.DeltaPrime() != top.DeltaPrime {
		t.Fatalf("clone differs structurally: n=%d Δ=%d Δ′=%d vs n=%d Δ=%d Δ′=%d",
			c.N(), c.Delta(), c.DeltaPrime(), top.Dual.N(), top.Delta, top.DeltaPrime)
	}
	for u := 0; u < c.N(); u++ {
		a, b := top.Dual.G.Neighbors(u), c.G.Neighbors(u)
		if len(a) != len(b) {
			t.Fatalf("node %d: reliable degree %d vs %d", u, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d: neighbor %d differs", u, i)
			}
		}
	}
}
