package world

import (
	"fmt"
	"slices"
	"strings"
)

// Policy is one registered local-broadcast contender: a stable name, a
// one-line description for the CLI listing, the physical-layer label its
// report rows carry, and the factory that instantiates it over a topology.
type Policy struct {
	// Name is the registry key and the `algorithm` column of every report
	// row (e.g. "lbalg", "contention-uniform", "sinr-local").
	Name string
	// Description is the one-liner `lbsim -policies list` prints.
	Description string
	// Model labels the physical layer: "dualgraph" (scatter over (G, G′))
	// or "sinr".
	Model string
	// Instantiate builds the policy's per-topology instance. It is called
	// once per (topology, run); expensive artifacts (SINR models, derived
	// parameters) belong to the returned Instance, not to package state.
	Instantiate func(top *Topology) (*Instance, error)
}

// registry holds the policies in registration order; byName indexes it.
var registry struct {
	order  []Policy
	byName map[string]int
}

// Register adds a policy to the registry. It panics on an empty or
// duplicate name and on a nil factory: registration runs from package init
// functions, where a collision is a programming error no caller could
// recover from.
func Register(p Policy) {
	if p.Name == "" {
		panic("world: Register with empty policy name")
	}
	if p.Instantiate == nil {
		panic(fmt.Sprintf("world: policy %q registered without Instantiate", p.Name))
	}
	if registry.byName == nil {
		registry.byName = make(map[string]int)
	}
	if _, dup := registry.byName[p.Name]; dup {
		panic(fmt.Sprintf("world: duplicate policy registration %q", p.Name))
	}
	registry.byName[p.Name] = len(registry.order)
	registry.order = append(registry.order, p)
}

// All returns every registered policy in registration order — the order
// the comparison matrix emits its columns in.
func All() []Policy { return slices.Clone(registry.order) }

// Names lists the registered policy names in registration order.
func Names() []string {
	out := make([]string, len(registry.order))
	for i, p := range registry.order {
		out[i] = p.Name
	}
	return out
}

// Get looks a policy up by name.
func Get(name string) (Policy, bool) {
	i, ok := registry.byName[name]
	if !ok {
		return Policy{}, false
	}
	return registry.order[i], true
}

// Select resolves a name list to policies, preserving the given order. An
// unknown name errors with the registered set, so CLI callers surface the
// valid spellings without extra plumbing.
func Select(names []string) ([]Policy, error) {
	out := make([]Policy, 0, len(names))
	for _, name := range names {
		p, ok := Get(name)
		if !ok {
			return nil, fmt.Errorf("world: unknown policy %q (registered policies: %s)",
				name, strings.Join(Names(), ", "))
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("world: empty policy selection (registered policies: %s)",
			strings.Join(Names(), ", "))
	}
	return out, nil
}
