// Package world is the lockstep multi-policy comparison harness: a registry
// of local-broadcast policies (LBAlg, the GHLN contention baselines, decay,
// the SINR layer variants) and a World that runs every selected policy on
// an identical cloned topology under identical fault/load/arrival streams,
// one shared clock per sweep invocation.
//
// The pieces:
//
//   - Policy (registry.go) names a contender and carries the factory that
//     instantiates it over a Topology: a core.Service set, an optional
//     reception model, the policy's scheduler requirement, its reliability
//     neighbor sets and its acknowledgement-window formula. Register wires a
//     policy into the registry (duplicate names panic); Select resolves
//     user-facing name lists with an error that enumerates the valid set.
//
//   - Topology (world.go) is the common ground: one dual graph plus the
//     derived Δ/Δ′ and the (seed, ε) every policy's parameters come from.
//     NewSweepTopology builds the constant-density random-geometric family
//     all comparison experiments share, and Topology.Clone rebuilds a
//     structurally identical private instance for runs that mutate the
//     graph (churn's leave/join patches).
//
//   - World (world.go) runs one engine per selected policy: construction and
//     summarizing are sequential in selection order (so reports are
//     byte-identical at any worker count), the engines themselves run
//     concurrently on sim.RunFleet — each policy's engine is independent,
//     so the comparison matrices parallelize for free.
//
//   - Summarize (summary.go) is the shared per-incarnation metric extraction
//     every experiment row goes through: ack latency, first-recv progress,
//     reliability over the policy's own neighbor notion, and the channel
//     counters. SummarizeLoad is the open-loop counterpart over
//     workload.Metrics.
//
// Experiments select policies by name (lbsim/lbbench -policies), so a new
// contender registered here — a mobility layer, the MMB stack — becomes a
// column of E-COMPARE, E-CHURN and E-LOAD without touching their matrices.
package world
