// This file holds the shared per-incarnation summarizers every experiment
// row goes through. Before the World harness each experiment carried its
// own copy of the first-recv/ack-latency tally; folding them here means one
// definition of "acknowledged", "reliable" and "sojourn" across E-COMPARE,
// E-CHURN and E-LOAD.

package world

import (
	"lbcast/internal/sim"
	"lbcast/internal/stats"
	"lbcast/internal/workload"
)

// Row is one (topology, policy) measurement of a comparison matrix. JSON
// field names are the stable row schema documented in docs/EXPERIMENTS.md;
// they are shared verbatim between the v1 and v2 report envelopes.
type Row struct {
	// Topology identifies the graph family ("sweep-geometric").
	Topology string `json:"topology"`
	// N is the node count of the topology instance.
	N int `json:"n"`
	// Algorithm names the policy: lbalg, contention-uniform,
	// contention-cycling, decay, sinr-local or sinr-pernode.
	Algorithm string `json:"algorithm"`
	// Model is the physical layer the run used: "dualgraph" (scatter over
	// (G, G′) with the random½ link scheduler) or "sinr".
	Model string `json:"model"`
	// Rounds is the executed round budget (identical for every policy on
	// the same topology instance).
	Rounds int `json:"rounds"`
	// Senders is the number of saturated senders driving the run.
	Senders int `json:"senders"`
	// Acks is the number of completed (acknowledged) broadcasts.
	Acks int `json:"acks"`
	// Reliability is the fraction of acknowledged broadcasts whose every
	// neighbor (reliable neighbors under the dual-graph model, nodes
	// within the isolation range under SINR) produced a recv output before
	// the ack — the LB problem's reliability condition made comparable
	// across physical layers.
	Reliability float64 `json:"reliability"`
	// AckP50/AckP95/AckMax summarise bcast→ack latency in rounds.
	AckP50 float64 `json:"ack_p50"`
	AckP95 float64 `json:"ack_p95"`
	AckMax int     `json:"ack_max"`
	// FirstRecvP50 is the median bcast→first-recv latency in rounds over
	// messages that reached at least one listener: the cross-model
	// progress proxy.
	FirstRecvP50 float64 `json:"first_recv_p50"`
	// MsgsPerAck is the message complexity: channel transmissions spent
	// per completed broadcast.
	MsgsPerAck float64 `json:"msgs_per_ack"`
	// DeliveriesPerRound is the channel goodput: successful receptions per
	// round across all listeners.
	DeliveriesPerRound float64 `json:"deliveries_per_round"`
	// CollisionRate is Collisions/(Deliveries+Collisions): the fraction of
	// reception opportunities lost to interference.
	CollisionRate float64 `json:"collision_rate"`
	// Transmissions, Deliveries and Collisions are the raw channel
	// counters backing the ratios.
	Transmissions int `json:"transmissions"`
	Deliveries    int `json:"deliveries"`
	Collisions    int `json:"collisions"`
}

// Summarize extracts the comparison metrics from one trace in a single pass
// over the events. neigh maps a source node to the neighbor set its
// broadcasts must reach for the reliability metric (Instance.Neighbors).
//
// Message ids are tracked per incarnation: a restarted sender (churn's
// Recover/Join) begins a fresh protocol instance whose sequence counter
// restarts, so an id can be re-broadcast later in the trace. Each EvBcast
// closes out the previous incarnation's statistics and starts a new
// window; stray receptions of a prior incarnation's copies (still in
// flight when the id was re-broadcast) are dropped rather than
// mis-attributed.
func Summarize(tr *sim.Trace, rounds int, neigh func(int) []int32) Row {
	type msgState struct {
		bcast     int
		firstRecv int // -1 until first reception
		ackRound  int // -1 until acked
		reached   map[int32]struct{}
	}
	states := make(map[sim.MsgID]*msgState)
	var ackLat, recvLat []int
	reliable, acked := 0, 0
	flush := func(id sim.MsgID, s *msgState) {
		if s.firstRecv >= 0 {
			recvLat = append(recvLat, s.firstRecv-s.bcast)
		}
		if s.ackRound >= 0 {
			acked++
			if len(s.reached) == len(neigh(id.Src())) {
				reliable++
			}
		}
	}
	for ev := range tr.Events() {
		switch ev.Kind {
		case sim.EvBcast:
			if s, ok := states[ev.MsgID]; ok {
				flush(ev.MsgID, s)
			}
			states[ev.MsgID] = &msgState{bcast: ev.Round, firstRecv: -1, ackRound: -1}
		case sim.EvAck:
			if s, ok := states[ev.MsgID]; ok && s.ackRound < 0 {
				s.ackRound = ev.Round
				ackLat = append(ackLat, ev.Round-s.bcast)
			}
		case sim.EvRecv:
			s, ok := states[ev.MsgID]
			if !ok || ev.Round < s.bcast {
				continue
			}
			if s.firstRecv < 0 {
				s.firstRecv = ev.Round
			}
			// A reception in the ack round itself still counts toward
			// reliability: the trace drains per-round events in node-id
			// order, so the sender's EvAck can precede a same-round EvRecv
			// without the reception being late. Strictly later rounds do
			// not count.
			if nl := neigh(ev.MsgID.Src()); isNeighbor(nl, int32(ev.Node)) {
				if s.ackRound < 0 || ev.Round <= s.ackRound {
					if s.reached == nil {
						s.reached = make(map[int32]struct{})
					}
					s.reached[int32(ev.Node)] = struct{}{}
				}
			}
		}
	}
	for id, s := range states {
		flush(id, s)
	}
	row := Row{
		Rounds:        rounds,
		Acks:          len(ackLat),
		Transmissions: tr.Transmissions,
		Deliveries:    tr.Deliveries,
		Collisions:    tr.Collisions,
	}
	if acked > 0 {
		row.Reliability = float64(reliable) / float64(acked)
	}
	if len(ackLat) > 0 {
		row.AckP50 = stats.QuantileInts(ackLat, 0.5)
		row.AckP95 = stats.QuantileInts(ackLat, 0.95)
		for _, l := range ackLat {
			if l > row.AckMax {
				row.AckMax = l
			}
		}
		row.MsgsPerAck = float64(tr.Transmissions) / float64(len(ackLat))
	}
	if len(recvLat) > 0 {
		row.FirstRecvP50 = stats.QuantileInts(recvLat, 0.5)
	}
	if rounds > 0 {
		row.DeliveriesPerRound = float64(tr.Deliveries) / float64(rounds)
	}
	if tr.Deliveries+tr.Collisions > 0 {
		row.CollisionRate = float64(tr.Collisions) / float64(tr.Deliveries+tr.Collisions)
	}
	return row
}

// LoadRow is one (offered load, policy) measurement of the open-loop
// matrix. JSON field names are the stable lbcast-load row schema.
type LoadRow struct {
	// Load is the offered intensity in utilisation units: expected
	// arrivals per node per ack window of this row's own policy (1.0 =
	// arrivals exactly match the policy's service capacity). The sweep's
	// independent variable.
	Load float64 `json:"offered_per_window"`
	// Rate is the resulting per-node per-round arrival rate.
	Rate      float64 `json:"arrival_rate"`
	Algorithm string  `json:"algorithm"`
	N         int     `json:"n"`
	Rounds    int     `json:"rounds"`
	// Offered/Accepted/Dropped account every arrival; DropFrac is
	// Dropped/Offered (0 when nothing was offered).
	Offered  int     `json:"offered"`
	Accepted int     `json:"accepted"`
	Dropped  int     `json:"dropped"`
	DropFrac float64 `json:"drop_frac"`
	// Bcasts and Acks count broadcasts entering and completing service;
	// Goodput is acks per round across the network.
	Bcasts  int     `json:"bcasts"`
	Acks    int     `json:"acks"`
	Goodput float64 `json:"goodput_acks_per_round"`
	// AckP50/P99/P999 are the arrival→ack sojourn percentiles in rounds
	// (queue wait + service); SvcP50 the bcast→ack service portion alone.
	AckP50  int `json:"ack_p50"`
	AckP99  int `json:"ack_p99"`
	AckP999 int `json:"ack_p999"`
	SvcP50  int `json:"svc_p50"`
	// MeanDepth is the mean total backlog across the network, MaxDepth the
	// deepest any single queue got; Depth is the sampled time series.
	MeanDepth float64                `json:"mean_queue_depth"`
	MaxDepth  int                    `json:"max_queue_depth"`
	Depth     []workload.DepthSample `json:"queue_depth_series,omitempty"`
	// Engine-level counters for the same run.
	Transmissions int `json:"transmissions"`
	Collisions    int `json:"collisions"`
}

// SummarizeLoad folds a run's workload metrics and engine trace into a row.
func SummarizeLoad(m *workload.Metrics, tr *sim.Trace, plan *workload.Plan) LoadRow {
	row := LoadRow{
		N:             plan.N,
		Rounds:        plan.Rounds,
		Offered:       m.Offered,
		Accepted:      m.Accepted,
		Dropped:       m.Dropped,
		Bcasts:        m.Bcasts,
		Acks:          m.Acks,
		AckP50:        m.Sojourn.Quantile(0.50),
		AckP99:        m.Sojourn.Quantile(0.99),
		AckP999:       m.Sojourn.Quantile(0.999),
		SvcP50:        m.Service.Quantile(0.50),
		MaxDepth:      m.DepthMax,
		Depth:         m.Depth,
		Transmissions: tr.Transmissions,
		Collisions:    tr.Collisions,
	}
	if m.Offered > 0 {
		row.DropFrac = float64(m.Dropped) / float64(m.Offered)
	}
	if m.Rounds > 0 {
		row.Goodput = float64(m.Acks) / float64(m.Rounds)
		row.MeanDepth = float64(m.DepthSum) / float64(m.Rounds)
	}
	return row
}
