// This file registers the builtin local-broadcast policies: LBAlg, the GHLN
// contention-management baselines (uniform and cycling strategies), decay,
// and the SINR local broadcast layer under uniform and per-node power.
// Registration order is the column order of every comparison matrix, so it
// must stay stable: lbalg, contention-uniform, contention-cycling, decay,
// sinr-local, sinr-pernode.

package world

import (
	"math"
	"slices"

	"lbcast/internal/baseline"
	"lbcast/internal/core"
	"lbcast/internal/geo"
	"lbcast/internal/sinr"
	"lbcast/internal/xrand"
)

func init() {
	Register(Policy{
		Name:        "lbalg",
		Description: "the paper's LBAlg over the dual graph, ack window TAckBound",
		Model:       "dualgraph",
		Instantiate: func(top *Topology) (*Instance, error) {
			lbParams, err := core.DeriveParams(top.Delta, top.DeltaPrime, top.Dual.R, top.Eps)
			if err != nil {
				return nil, err
			}
			return &Instance{
				AckWindow: lbParams.TAckBound(),
				Neighbors: dualNeighbors(top),
				NewService: func(int) core.Service {
					return core.NewLBAlg(lbParams)
				},
			}, nil
		},
	})
	Register(Policy{
		Name:        "contention-uniform",
		Description: "GHLN contention baseline, uniform slot strategy",
		Model:       "dualgraph",
		Instantiate: func(top *Topology) (*Instance, error) {
			return &Instance{
				AckWindow: baseline.ContentionAckRounds(top.DeltaPrime, top.Eps),
				Neighbors: dualNeighbors(top),
				NewService: func(int) core.Service {
					return baseline.NewContention(baseline.ContentionParams{
						DeltaPrime: top.DeltaPrime, Strategy: baseline.StrategyUniform, Eps: top.Eps})
				},
			}, nil
		},
	})
	Register(Policy{
		Name:        "contention-cycling",
		Description: "GHLN contention baseline, cycling slot strategy",
		Model:       "dualgraph",
		Instantiate: func(top *Topology) (*Instance, error) {
			return &Instance{
				AckWindow: baseline.ContentionAckRounds(top.DeltaPrime, top.Eps),
				Neighbors: dualNeighbors(top),
				NewService: func(int) core.Service {
					return baseline.NewContention(baseline.ContentionParams{
						DeltaPrime: top.DeltaPrime, Strategy: baseline.StrategyCycling, Eps: top.Eps})
				},
			}, nil
		},
	})
	Register(Policy{
		Name:        "decay",
		Description: "Bar-Yehuda–Goldreich–Itai decay with repeated windows",
		Model:       "dualgraph",
		Instantiate: func(top *Topology) (*Instance, error) {
			ack := baseline.DecayAckRounds(top.Delta, top.Eps)
			return &Instance{
				AckWindow: ack,
				Neighbors: dualNeighbors(top),
				NewService: func(int) core.Service {
					return baseline.NewDecay(baseline.DecayParams{Delta: top.Delta, AckRounds: ack})
				},
			}, nil
		},
	})
	Register(Policy{
		Name:        "sinr-local",
		Description: "SINR local broadcast layer, uniform power over the same embedding",
		Model:       "sinr",
		Instantiate: func(top *Topology) (*Instance, error) {
			model, err := sinr.NewModel(top.Dual.Emb, sinr.UniformPower(1), sinr.DefaultParams())
			if err != nil {
				return nil, err
			}
			// Isolation-range neighbor lists are built lazily, on the first
			// reliability lookup (the sequential summarize phase), so runs
			// that never read them pay nothing.
			var lists [][]int32
			return &Instance{
				AckWindow: sinr.LayerAckRounds(top.DeltaPrime, top.Eps),
				Reception: model,
				Neighbors: func(src int) []int32 {
					if lists == nil {
						lists = isolationNeighbors(top.Dual.Emb, model.Params().Range(1))
					}
					return lists[src]
				},
				NewService: func(int) core.Service {
					return sinr.NewLocalBcast(sinr.LayerParams{Delta: top.DeltaPrime, Eps: top.Eps})
				},
			}, nil
		},
	})
	Register(Policy{
		Name:        "sinr-pernode",
		Description: "SINR layer with a deterministic 2× per-node power spread",
		Model:       "sinr",
		Instantiate: func(top *Topology) (*Instance, error) {
			// Non-uniform transmit powers: a deterministic 2× spread over the
			// same embedding (P_u ∈ [0.75, 1.5]). This exercises the per-cell
			// power totals of the bucketed resolver, which a uniform
			// assignment cannot.
			n := top.Dual.N()
			powers := make(sinr.PerNodePower, n)
			prng := xrand.New(top.Seed).Split(0x9027)
			for u := range powers {
				powers[u] = 0.75 + 0.75*prng.Float64()
			}
			model, err := sinr.NewModel(top.Dual.Emb, powers, sinr.DefaultParams())
			if err != nil {
				return nil, err
			}
			var lists [][]int32
			return &Instance{
				AckWindow: sinr.LayerAckRounds(top.DeltaPrime, top.Eps),
				Reception: model,
				Neighbors: func(src int) []int32 {
					if lists == nil {
						radii := make([]float64, n)
						for u := range radii {
							radii[u] = model.Params().Range(powers[u])
						}
						lists = isolationNeighborsPerSource(top.Dual.Emb, radii)
					}
					return lists[src]
				},
				NewService: func(int) core.Service {
					return sinr.NewLocalBcast(sinr.LayerParams{Delta: top.DeltaPrime, Eps: top.Eps})
				},
			}, nil
		},
	})
}

// dualNeighbors is the reliability neighbor notion of every dual-graph
// policy: the reliable (G) adjacency of the pristine reference topology.
// Churn runs patch per-policy clones, never this reference, so the
// reliability condition is judged against the intended graph.
func dualNeighbors(top *Topology) func(int) []int32 {
	return func(src int) []int32 { return top.Dual.G.Neighbors(src) }
}

// isNeighbor reports whether v is in the ascending neighbor list.
func isNeighbor(neigh []int32, v int32) bool {
	_, ok := slices.BinarySearch(neigh, v)
	return ok
}

// isolationNeighbors returns, per node, the ascending list of nodes within
// the given distance — the SINR counterpart of reliable adjacency for the
// reliability metric. The dense grid index with the distance-radius stencil
// keeps it O(n · density) rather than all-pairs.
func isolationNeighbors(emb []geo.Point, radius float64) [][]int32 {
	n := len(emb)
	out := make([][]int32, n)
	gi := geo.BuildGridIndex(emb)
	stencil := geo.NeighborStencil(radius)
	for u := 0; u < n; u++ {
		gi.VisitNear(u, stencil, func(v int32) {
			if int(v) != u && geo.Dist(emb[u], emb[int(v)]) <= radius {
				out[u] = append(out[u], v)
			}
		})
		slices.Sort(out[u])
	}
	return out
}

// isolationNeighborsPerSource is the non-uniform-power variant: node u's
// neighbor set is the nodes within radii[u], u's own isolation range. One
// stencil sized for the largest radius serves every source.
func isolationNeighborsPerSource(emb []geo.Point, radii []float64) [][]int32 {
	n := len(emb)
	out := make([][]int32, n)
	gi := geo.BuildGridIndex(emb)
	maxR := 0.0
	for _, r := range radii {
		maxR = math.Max(maxR, r)
	}
	stencil := geo.NeighborStencil(maxR)
	for u := 0; u < n; u++ {
		gi.VisitNear(u, stencil, func(v int32) {
			if int(v) != u && geo.Dist(emb[u], emb[int(v)]) <= radii[u] {
				out[u] = append(out[u], v)
			}
		})
		slices.Sort(out[u])
	}
	return out
}
