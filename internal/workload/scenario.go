package workload

import "fmt"

// Scenario is a named preset workload: an expanded arrival plan plus the
// queue discipline it is meant to run with.
type Scenario struct {
	// Name is the preset identifier (see ScenarioNames).
	Name string
	// Plan is the expanded arrival schedule.
	Plan *Plan
	// Capacity and Policy are the queue discipline the preset models.
	Capacity int
	Policy   DropPolicy
	// Bursts holds the burst epochs for regime-switching presets
	// (alarm-flood); nil otherwise.
	Bursts []Epoch
}

// scenarioNames lists the presets in catalog order.
var scenarioNames = []string{"iot-telemetry", "alarm-flood", "gossip-storm"}

// ScenarioNames returns the preset names in catalog order.
func ScenarioNames() []string { return append([]string(nil), scenarioNames...) }

// BuildScenario expands a preset at the given scale. The presets model
// three service regimes over the same layer:
//
//   - iot-telemetry: a steady low-rate Poisson trickle (one reading per
//     node per ~400 rounds) with shallow drop-oldest queues — a stale
//     sensor reading is superseded, never worth queueing behind.
//   - alarm-flood: near-silence punctuated by correlated bursts (a global
//     MMPP regime chain lifts every node's rate 50×) against drop-newest
//     queues — the congestion-collapse preset.
//   - gossip-storm: a heavy sinusoidal diurnal curve (rate swinging
//     roughly 5× around its mean over four "days") with deep queues —
//     sustained overload building and draining with the curve.
func BuildScenario(name string, n, rounds int, seed uint64) (*Scenario, error) {
	switch name {
	case "iot-telemetry":
		p, err := Poisson(PoissonConfig{N: n, Rounds: rounds, Rate: 0.0025, Seed: seed})
		if err != nil {
			return nil, err
		}
		return &Scenario{Name: name, Plan: p, Capacity: 4, Policy: DropOldest}, nil
	case "alarm-flood":
		p, epochs, err := MMPP(MMPPConfig{
			N: n, Rounds: rounds,
			QuietRate: 0.0005, BurstRate: 0.025,
			MeanQuiet: max(1, rounds/5), MeanBurst: max(1, rounds/25),
			Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		return &Scenario{Name: name, Plan: p, Capacity: 16, Policy: DropNewest, Bursts: epochs}, nil
	case "gossip-storm":
		p, err := Diurnal(DiurnalConfig{
			N: n, Rounds: rounds,
			Base: 0.006, Amp: 0.005, Period: max(2, rounds/4),
			Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		return &Scenario{Name: name, Plan: p, Capacity: 32, Policy: DropNewest}, nil
	}
	return nil, fmt.Errorf("workload: unknown scenario %q (valid: %v)", name, scenarioNames)
}
