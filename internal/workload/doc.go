// Package workload is the open-loop traffic engine: it drives the local
// broadcast layer like a service under offered load instead of a protocol
// under a closed-loop experiment.
//
// An arrival Plan — expanded fully before the run from seeded per-node
// xrand streams (Poisson, bursty MMPP, or a diurnal rate curve), with the
// same N-independence discipline as churn.Plan — feeds per-node bounded
// queues with drop/backpressure accounting. The Traffic environment (the
// churn.Injector wrapper pattern over sim.Environment) delivers arrivals,
// dispatches the head of every idle queue as a Bcast through any
// core.Service, and folds completions into service-style Metrics:
// streaming p50/p99/p999 ack-latency quantiles (fixed-bin stats.Histogram),
// goodput, drops and the queue-depth trajectory — all accumulated on the
// single-threaded environment path so they are byte-identical across
// engine drivers and worker counts.
//
// Preset scenarios ("iot-telemetry", "alarm-flood", "gossip-storm") bundle
// a generator with a queue discipline, and TraceDoc records a run's
// arrival schedule as lbcast-load-trace/v1 JSON for deterministic replay.
// The E-LOAD experiment (internal/exp, `lbsim -exp load`) sweeps offered
// load across protocol contenders over this engine to produce the
// throughput/latency knee curves.
package workload
