package workload

import (
	"fmt"
	"hash/fnv"

	"lbcast/internal/core"
	"lbcast/internal/sim"
	"lbcast/internal/stats"
)

// DepthSample is one point of the queue-depth time series: the total queued
// messages across all nodes and the deepest single queue at the end of
// Round.
type DepthSample struct {
	Round int `json:"round"`
	Total int `json:"total"`
	Max   int `json:"max"`
}

// Metrics is the service-style view of a run accumulated by Traffic:
// offered/accepted/dropped arrivals, completed broadcasts, streaming
// latency histograms and the queue-depth trajectory. All folding happens
// on the single-threaded environment path (AfterRound, ascending node
// order), so metrics are byte-identical across engine drivers and worker
// counts — the workload soak pins this.
type Metrics struct {
	// Rounds counts the rounds the environment observed.
	Rounds int
	// Offered counts plan arrivals presented; Accepted the ones enqueued;
	// Dropped the ones lost to the bounded queue (Offered = Accepted +
	// Dropped).
	Offered, Accepted, Dropped int
	// Bcasts counts broadcasts handed to the protocol layer, Acks the ones
	// acknowledged. Lost counts in-flight broadcasts abandoned by Rearm
	// (churn restarts).
	Bcasts, Acks, Lost int
	// Sojourn is the arrival→ack latency histogram (queue wait plus
	// service) — the SLO the percentile columns come from. Service is the
	// bcast→ack portion alone.
	Sojourn, Service *stats.Histogram
	// DepthSum integrates total queue depth over rounds (mean depth =
	// DepthSum/Rounds); DepthMax is the deepest any single queue got.
	DepthSum int64
	DepthMax int
	// Depth is the sampled depth time series.
	Depth []DepthSample
}

// Fingerprint reduces the metrics to one hash: every counter, both
// histograms bin by bin, and the depth series. The soak and replay tests
// compare fingerprints across drivers and against recorded runs.
func (m *Metrics) Fingerprint() uint64 {
	h := fnv.New64a()
	add := func(vs ...int64) {
		var b [8]byte
		for _, v := range vs {
			for i := range b {
				b[i] = byte(uint64(v) >> (8 * i))
			}
			h.Write(b[:])
		}
	}
	add(int64(m.Rounds), int64(m.Offered), int64(m.Accepted), int64(m.Dropped),
		int64(m.Bcasts), int64(m.Acks), int64(m.Lost), m.DepthSum, int64(m.DepthMax))
	for _, hist := range []*stats.Histogram{m.Sojourn, m.Service} {
		for v, c := range hist.Counts() {
			if c != 0 {
				add(int64(v), int64(c))
			}
		}
	}
	for _, d := range m.Depth {
		add(int64(d.Round), int64(d.Total), int64(d.Max))
	}
	return h.Sum64()
}

// Config assembles a traffic run over an assembled protocol deployment.
type Config struct {
	// Plan is the arrival schedule; its N must match len(Services).
	Plan *Plan
	// Services are the per-node protocol endpoints (LBAlg or a baseline);
	// Traffic owns their OnAck callbacks.
	Services []core.Service
	// Capacity bounds each node's queue (messages); required ≥ 1.
	Capacity int
	// Policy selects the full-queue behaviour; default DropNewest.
	Policy DropPolicy
	// LatencyCap caps the latency histograms' unit bins; latencies at or
	// above it clamp into one overflow bin. Default 1 << 13 rounds.
	LatencyCap int
	// DepthEvery is the depth-series sampling stride in rounds; default
	// keeps the series at ≤ 64 points. Use 1 for a full trajectory.
	DepthEvery int
	// Inner is an optional wrapped environment, the same composition hook
	// as churn.InjectorConfig.Inner: it runs after this round's arrivals
	// and dispatches, so it observes the loaded world.
	Inner sim.Environment
}

// Traffic drives an open-loop offered load through the protocol layer: it
// implements sim.Environment (the same wrapper pattern as churn.Injector),
// delivering plan arrivals into per-node bounded queues each BeforeRound,
// dispatching the head of every idle node's queue as a Bcast, and folding
// completions into Metrics each AfterRound. Unlike core.SaturatingEnv the
// environment never waits for the protocol: arrivals keep coming at the
// offered rate whether or not the layer keeps up, which is what exposes
// the throughput/latency knee.
type Traffic struct {
	cfg      Config
	next     int     // next undelivered plan arrival
	cur      int     // round currently executing
	inflight []int32 // arrival round of the in-flight message; -1 idle
	sentAt   []int32 // round the in-flight Bcast was accepted
	ackedAt  []int32 // round of the pending unfolded ack; -1 none
	seq      []int32 // per-node payload sequence numbers
	queues   []queue
	depth    int // current total queued, kept incrementally
	m        Metrics
}

// NewTraffic validates the configuration and hooks every service's OnAck.
func NewTraffic(cfg Config) (*Traffic, error) {
	if cfg.Plan == nil {
		return nil, fmt.Errorf("workload: traffic needs a plan")
	}
	if err := cfg.Plan.Validate(); err != nil {
		return nil, err
	}
	if cfg.Plan.N != len(cfg.Services) {
		return nil, fmt.Errorf("workload: plan for %d nodes over %d services", cfg.Plan.N, len(cfg.Services))
	}
	if cfg.Capacity < 1 {
		return nil, fmt.Errorf("workload: queue capacity %d must be ≥ 1", cfg.Capacity)
	}
	if cfg.Policy == 0 {
		cfg.Policy = DropNewest
	}
	if cfg.Policy != DropNewest && cfg.Policy != DropOldest {
		return nil, fmt.Errorf("workload: unknown drop policy %v", cfg.Policy)
	}
	if cfg.LatencyCap <= 0 {
		cfg.LatencyCap = 1 << 13
	}
	if cfg.DepthEvery <= 0 {
		cfg.DepthEvery = max(1, cfg.Plan.Rounds/64)
	}
	n := cfg.Plan.N
	tr := &Traffic{
		cfg:      cfg,
		inflight: make([]int32, n),
		sentAt:   make([]int32, n),
		ackedAt:  make([]int32, n),
		seq:      make([]int32, n),
		queues:   make([]queue, n),
		m: Metrics{
			Sojourn: stats.NewHistogram(cfg.LatencyCap),
			Service: stats.NewHistogram(cfg.LatencyCap),
		},
	}
	for u := 0; u < n; u++ {
		tr.inflight[u] = -1
		tr.ackedAt[u] = -1
		tr.queues[u] = newQueue(cfg.Capacity)
		tr.hook(u)
	}
	return tr, nil
}

// hook plants the ack callback on node u's service. The callback only
// writes the node's own slot — Receive may run concurrently across nodes
// under the worker-pool driver — and the slot is folded into the shared
// metrics on the single-threaded AfterRound path, in node order, so
// accumulation is deterministic on every driver.
func (tr *Traffic) hook(u int) {
	tr.cfg.Services[u].SetOnAck(func(core.Message) {
		tr.ackedAt[u] = int32(tr.cur)
	})
}

// Metrics returns the accumulated metrics (live; read after the run).
func (tr *Traffic) Metrics() *Metrics { return &tr.m }

// QueueDepth returns node u's current queue depth.
func (tr *Traffic) QueueDepth(u int) int { return tr.queues[u].len() }

// Rearm re-hooks node u after its Service was replaced (a churn restart
// abandons the old process together with the planted OnAck). The in-flight
// broadcast, if any, is accounted as lost and the node resumes draining
// its queue — queued arrivals survive the crash, only the message on the
// air goes down with the process.
func (tr *Traffic) Rearm(u int) {
	if tr.inflight[u] >= 0 {
		tr.inflight[u] = -1
		tr.m.Lost++
	}
	tr.ackedAt[u] = -1
	tr.hook(u)
}

// BeforeRound implements sim.Environment: deliver the round's arrivals
// into the queues, dispatch the head of every idle queue, then let the
// wrapped environment act on the loaded world.
func (tr *Traffic) BeforeRound(t int) {
	tr.cur = t
	arrivals := tr.cfg.Plan.Arrivals
	for tr.next < len(arrivals) && arrivals[tr.next].Round <= t {
		a := arrivals[tr.next]
		tr.next++
		tr.m.Offered++
		tr.enqueue(a.Node, int32(a.Round))
	}
	for u := range tr.queues {
		if tr.inflight[u] >= 0 || tr.queues[u].len() == 0 || tr.cfg.Services[u].Active() {
			continue
		}
		arrived, _ := tr.queues[u].pop()
		tr.depth--
		tr.seq[u]++
		if _, err := tr.cfg.Services[u].Bcast(fmt.Sprintf("load-%d-%d", u, tr.seq[u])); err != nil {
			// Unreachable while Traffic owns the service (Active was
			// false); re-queue defensively rather than lose the message.
			tr.queues[u].push(arrived)
			tr.depth++
			continue
		}
		tr.inflight[u] = arrived
		tr.sentAt[u] = int32(t)
		tr.m.Bcasts++
	}
	if tr.cfg.Inner != nil {
		tr.cfg.Inner.BeforeRound(t)
	}
}

// enqueue admits one arrival to node u's queue under the drop policy.
func (tr *Traffic) enqueue(u int, round int32) {
	q := &tr.queues[u]
	if q.push(round) {
		tr.m.Accepted++
		tr.depth++
		if d := q.len(); d > tr.m.DepthMax {
			tr.m.DepthMax = d
		}
		return
	}
	switch tr.cfg.Policy {
	case DropOldest:
		q.pop()
		q.push(round)
		tr.m.Accepted++
		tr.m.Dropped++ // the evicted head
	default: // DropNewest
		tr.m.Dropped++
	}
}

// AfterRound implements sim.Environment: fold this round's acks into the
// metrics in node order, advance the depth accounting, then let the
// wrapped environment observe the finished round.
func (tr *Traffic) AfterRound(t int) {
	for u := range tr.ackedAt {
		if tr.ackedAt[u] < 0 {
			continue
		}
		ack := int(tr.ackedAt[u])
		tr.ackedAt[u] = -1
		if tr.inflight[u] < 0 {
			continue // ack from an abandoned incarnation (Rearm raced it)
		}
		tr.m.Acks++
		tr.m.Sojourn.Add(ack - int(tr.inflight[u]))
		tr.m.Service.Add(ack - int(tr.sentAt[u]))
		tr.inflight[u] = -1
	}
	tr.m.Rounds++
	tr.m.DepthSum += int64(tr.depth)
	if t%tr.cfg.DepthEvery == 0 {
		maxd := 0
		for u := range tr.queues {
			if d := tr.queues[u].len(); d > maxd {
				maxd = d
			}
		}
		tr.m.Depth = append(tr.m.Depth, DepthSample{Round: t, Total: tr.depth, Max: maxd})
	}
	if tr.cfg.Inner != nil {
		tr.cfg.Inner.AfterRound(t)
	}
}

var _ sim.Environment = (*Traffic)(nil)
