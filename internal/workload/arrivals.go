package workload

import (
	"fmt"
	"math"
	"sort"

	"lbcast/internal/xrand"
)

// Arrival is one offered message: a payload enters Node's send queue at the
// start of round Round, before any process acts in that round.
type Arrival struct {
	Round int `json:"round"`
	Node  int `json:"node"`
}

// Epoch is one half-open round interval [Start, End). The MMPP generator
// reports its burst epochs this way; scenario docs and the statistical
// tests consume them.
type Epoch struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// Plan is a complete, deterministic arrival schedule: like churn.Plan it is
// fully expanded before the run starts, so an execution is a pure function
// of (topology, plan, seed) and a recorded plan replays bit-identically.
type Plan struct {
	// N and Rounds bound the schedule: every arrival has Node ∈ [0, N) and
	// Round ∈ [1, Rounds].
	N      int `json:"n"`
	Rounds int `json:"rounds"`
	// Arrivals holds the schedule in canonical (Round, Node) order.
	// Multiple arrivals for the same node in the same round are allowed
	// (a burst delivers several messages into the queue at once).
	Arrivals []Arrival `json:"arrivals"`
}

// Validate checks the canonical ordering and bounds.
func (p *Plan) Validate() error {
	if p.N <= 0 || p.Rounds <= 0 {
		return fmt.Errorf("workload: plan needs N > 0 and Rounds > 0")
	}
	prev := Arrival{Round: 1}
	for i, a := range p.Arrivals {
		if a.Node < 0 || a.Node >= p.N {
			return fmt.Errorf("workload: arrival %d: node %d out of range [0,%d)", i, a.Node, p.N)
		}
		if a.Round < 1 || a.Round > p.Rounds {
			return fmt.Errorf("workload: arrival %d: round %d out of range [1,%d]", i, a.Round, p.Rounds)
		}
		if a.Round < prev.Round || (a.Round == prev.Round && a.Node < prev.Node) {
			return fmt.Errorf("workload: arrival %d out of (round, node) order", i)
		}
		prev = a
	}
	return nil
}

// OfferedLoad returns the plan's mean offered load in arrivals per node per
// round.
func (p *Plan) OfferedLoad() float64 {
	if p.N == 0 || p.Rounds == 0 {
		return 0
	}
	return float64(len(p.Arrivals)) / (float64(p.N) * float64(p.Rounds))
}

// PerNode returns each node's arrival rounds in ascending order. The
// N-independence tests diff these across network sizes.
func (p *Plan) PerNode() [][]int {
	out := make([][]int, p.N)
	for _, a := range p.Arrivals {
		out[a.Node] = append(out[a.Node], a.Round)
	}
	return out
}

// normalize sorts arrivals into canonical (Round, Node) order, preserving
// the relative order of equal (Round, Node) pairs (a same-round burst keeps
// its generation order).
func (p *Plan) normalize() {
	sort.SliceStable(p.Arrivals, func(i, j int) bool {
		a, b := p.Arrivals[i], p.Arrivals[j]
		if a.Round != b.Round {
			return a.Round < b.Round
		}
		return a.Node < b.Node
	})
}

// nodeStream returns the arrival-generator stream for one node. It is the
// same N-independence discipline as churn.Plan: node u's stream depends on
// (seed, u) only, never on N, so growing the network leaves every existing
// node's arrivals bit-identical. The domain tag keeps workload draws
// disjoint from the engine's process streams at the same seed.
func nodeStream(seed uint64, u int) *xrand.Source {
	return xrand.New(seed ^ 0x574b4c4f4144).Split(uint64(u)) // "WKLOAD"
}

// PoissonConfig parameterises the memoryless arrival process.
type PoissonConfig struct {
	// N is the node count, Rounds the schedule length.
	N, Rounds int
	// Rate is the expected arrivals per node per round (may exceed 1; a
	// round can deliver several arrivals to the same queue).
	Rate float64
	// Seed derives the per-node generator streams.
	Seed uint64
}

// Poisson expands a Poisson arrival plan: each node runs an independent
// continuous-time Poisson clock with exponential(Rate) interarrival gaps,
// and an event at time τ lands in round ⌈τ⌉. Interarrival times are thus
// exactly exponential with mean 1/Rate — the property the statistical
// suite checks — and generation consumes draws proportional to the number
// of arrivals, not to N·Rounds.
func Poisson(cfg PoissonConfig) (*Plan, error) {
	if cfg.N <= 0 || cfg.Rounds <= 0 {
		return nil, fmt.Errorf("workload: poisson plan needs N > 0 and Rounds > 0")
	}
	if cfg.Rate < 0 || math.IsNaN(cfg.Rate) || math.IsInf(cfg.Rate, 0) {
		return nil, fmt.Errorf("workload: poisson rate %v must be finite and non-negative", cfg.Rate)
	}
	p := &Plan{N: cfg.N, Rounds: cfg.Rounds}
	if cfg.Rate == 0 {
		return p, nil
	}
	for u := 0; u < cfg.N; u++ {
		rng := nodeStream(cfg.Seed, u)
		for tau := expGap(rng, cfg.Rate); tau <= float64(cfg.Rounds); tau += expGap(rng, cfg.Rate) {
			round := int(math.Ceil(tau))
			if round < 1 {
				round = 1
			}
			p.Arrivals = append(p.Arrivals, Arrival{Round: round, Node: u})
		}
	}
	p.normalize()
	return p, nil
}

// expGap samples one exponential interarrival gap with mean 1/rate. The
// uniform is taken as 1−Float64() ∈ (0, 1], so the logarithm is always
// finite.
func expGap(rng *xrand.Source, rate float64) float64 {
	return -math.Log(1-rng.Float64()) / rate
}

// MMPPConfig parameterises the bursty (Markov-modulated Poisson) process:
// a global two-state regime chain switches between a quiet and a burst
// rate, and every node draws arrivals at the current regime's rate.
type MMPPConfig struct {
	N, Rounds int
	// QuietRate and BurstRate are per-node per-round arrival probabilities
	// in the two regimes (Bernoulli thinning: at most one arrival per node
	// per round; both must lie in [0, 1]).
	QuietRate, BurstRate float64
	// MeanQuiet and MeanBurst are the expected regime durations in rounds;
	// the chain leaves a regime with probability 1/mean each round.
	MeanQuiet, MeanBurst int
	// Seed derives the regime chain and the per-node thinning streams.
	Seed uint64
}

// MMPP expands a bursty arrival plan and returns the burst epochs the
// regime chain visited. The regime chain is derived from Seed alone and
// each node's thinning stream consumes exactly one draw per round, so the
// schedule keeps the per-node N-independence discipline: adding nodes
// never shifts an existing node's arrivals.
func MMPP(cfg MMPPConfig) (*Plan, []Epoch, error) {
	if cfg.N <= 0 || cfg.Rounds <= 0 {
		return nil, nil, fmt.Errorf("workload: mmpp plan needs N > 0 and Rounds > 0")
	}
	if cfg.QuietRate < 0 || cfg.QuietRate > 1 || cfg.BurstRate < 0 || cfg.BurstRate > 1 {
		return nil, nil, fmt.Errorf("workload: mmpp rates must lie in [0,1]")
	}
	if cfg.MeanQuiet <= 0 || cfg.MeanBurst <= 0 {
		return nil, nil, fmt.Errorf("workload: mmpp regime durations must be positive")
	}
	// Expand the global regime chain first: rate[t-1] for rounds 1..Rounds.
	regime := xrand.New(cfg.Seed ^ 0x4d4d5050).Split(0) // "MMPP"
	rate := make([]float64, cfg.Rounds)
	var epochs []Epoch
	burst := false
	for t := 1; t <= cfg.Rounds; t++ {
		switch {
		case !burst && regime.Coin(1/float64(cfg.MeanQuiet)):
			burst = true
			epochs = append(epochs, Epoch{Start: t, End: cfg.Rounds + 1})
		case burst && regime.Coin(1/float64(cfg.MeanBurst)):
			burst = false
			epochs[len(epochs)-1].End = t
		}
		if burst {
			rate[t-1] = cfg.BurstRate
		} else {
			rate[t-1] = cfg.QuietRate
		}
	}
	p := &Plan{N: cfg.N, Rounds: cfg.Rounds}
	thin(p, cfg.Seed, rate)
	return p, epochs, nil
}

// DiurnalConfig parameterises the rate-curve process: a sinusoidal daily
// load curve sampled per round, with per-node Bernoulli thinning.
type DiurnalConfig struct {
	N, Rounds int
	// Base is the mean per-node per-round arrival probability, Amp the
	// curve's amplitude around it; the instantaneous rate is clamped to
	// [0, 1] (see RateAt).
	Base, Amp float64
	// Period is the curve's period in rounds (one simulated "day").
	Period int
	// Seed derives the per-node thinning streams.
	Seed uint64
}

// RateAt returns the instantaneous arrival probability for round t:
// Base + Amp·sin(2πt/Period), clamped to [0, 1]. Exported so the
// statistical suite can integrate the curve it is validating against.
func (cfg DiurnalConfig) RateAt(t int) float64 {
	r := cfg.Base + cfg.Amp*math.Sin(2*math.Pi*float64(t)/float64(cfg.Period))
	return math.Min(1, math.Max(0, r))
}

// Diurnal expands a rate-curve arrival plan: round t offers each node an
// arrival with probability RateAt(t), from the node's private stream (one
// draw per round per node, N-independent).
func Diurnal(cfg DiurnalConfig) (*Plan, error) {
	if cfg.N <= 0 || cfg.Rounds <= 0 {
		return nil, fmt.Errorf("workload: diurnal plan needs N > 0 and Rounds > 0")
	}
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("workload: diurnal period must be positive")
	}
	if math.IsNaN(cfg.Base) || math.IsNaN(cfg.Amp) {
		return nil, fmt.Errorf("workload: diurnal rates must be numbers")
	}
	rate := make([]float64, cfg.Rounds)
	for t := 1; t <= cfg.Rounds; t++ {
		rate[t-1] = cfg.RateAt(t)
	}
	p := &Plan{N: cfg.N, Rounds: cfg.Rounds}
	thin(p, cfg.Seed, rate)
	return p, nil
}

// thin fills the plan by Bernoulli-sampling each (node, round) against the
// given per-round rate curve. Each node samples only from its private
// stream, so per-node schedules are independent of N; the draw sequence
// depends on the (seed-determined) curve but never on other nodes.
func thin(p *Plan, seed uint64, rate []float64) {
	for u := 0; u < p.N; u++ {
		rng := nodeStream(seed, u)
		for t := 1; t <= p.Rounds; t++ {
			if rng.Coin(rate[t-1]) {
				p.Arrivals = append(p.Arrivals, Arrival{Round: t, Node: u})
			}
		}
	}
	p.normalize()
}
