package workload

import (
	"testing"

	"lbcast/internal/baseline"
	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// loadFingerprint is the golden execution fingerprint of the load soak: the
// engine-trace reduction churn's soak pins, plus the workload metrics hash,
// so a divergence in either the physical execution or the SLO accounting
// trips it.
type loadFingerprint struct {
	Rounds        int
	Events        int
	Transmissions int
	Deliveries    int
	Collisions    int
	Checksum      uint64
	Metrics       uint64
}

// engineChecksum folds every trace event positionally, the same reduction as
// churn's soak fingerprint.
func engineChecksum(tr *sim.Trace) uint64 {
	var checksum uint64
	i := 0
	for ev := range tr.Events() {
		checksum = checksum*1099511628211 ^
			uint64(ev.Round)<<32 ^ uint64(ev.Node)<<16 ^ uint64(ev.Kind)<<8 ^
			uint64(int64(ev.From)) ^ uint64(i)
		i++
	}
	return checksum
}

func loadSoakFingerprint(tr *sim.Trace, m *Metrics) loadFingerprint {
	return loadFingerprint{
		Rounds:        tr.RoundsRun,
		Events:        tr.Len(),
		Transmissions: tr.Transmissions,
		Deliveries:    tr.Deliveries,
		Collisions:    tr.Collisions,
		Checksum:      engineChecksum(tr),
		Metrics:       m.Fingerprint(),
	}
}

// loadSoakWant pins the soak execution. The open-loop traffic engine must be
// a pure function of (topology, plan, seed) on every driver and worker
// count; if an intentional change to the RNG streams, the dispatch order or
// the metrics folding alters this, update the pinned values and call it out
// in the change description.
var loadSoakWant = loadFingerprint{
	Rounds:        10000,
	Events:        451151,
	Transmissions: 165216,
	Deliveries:    325721,
	Collisions:    510734,
	Checksum:      1585439882494357374,
	Metrics:       9393328552179487621,
}

// loadSoakRun executes the soak: 10⁴ rounds of Poisson offered load over 150
// Decay nodes on the soak topology, shallow drop-oldest queues so the
// eviction path stays hot.
func loadSoakRun(t testing.TB, driver sim.Driver, workers int) loadFingerprint {
	t.Helper()
	d, err := dualgraph.RandomGeometric(150, 6, 6, 1.5, dualgraph.GreyUnreliable, xrand.New(41))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Poisson(PoissonConfig{N: d.N(), Rounds: 10_000, Rate: 0.004, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	ackRounds := baseline.DecayAckRounds(d.Delta(), 0.2)
	svcs := make([]core.Service, d.N())
	procs := make([]sim.Process, d.N())
	for u := range svcs {
		svcs[u] = baseline.NewDecay(baseline.DecayParams{Delta: d.Delta(), AckRounds: ackRounds})
		procs[u] = svcs[u]
	}
	traffic, err := NewTraffic(Config{
		Plan: plan, Services: svcs, Capacity: 4, Policy: DropOldest,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.New(sim.Config{
		Dual: d, Procs: procs, Env: traffic,
		Sched: sched.NewRandom(0.5, 3), Seed: 8,
		Driver: driver, Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.Run(plan.Rounds)
	m := traffic.Metrics()
	if m.Acks == 0 || m.Offered == 0 {
		t.Fatalf("degenerate soak: %d offered, %d acks", m.Offered, m.Acks)
	}
	return loadSoakFingerprint(eng.Trace(), m)
}

// TestLoadSoak is the CI soak for the traffic engine: a 10⁴-round offered-
// load run must reproduce the pinned golden fingerprint on the sequential
// driver and byte-identically on the worker pool at 1 and 4 workers. Under
// -race this also exercises the OnAck write path (concurrent deliver across
// nodes) against the single-threaded AfterRound folding.
func TestLoadSoak(t *testing.T) {
	seq := loadSoakRun(t, sim.DriverSequential, 0)
	if seq != loadSoakWant {
		t.Errorf("sequential load soak fingerprint changed:\n got  %+v\n want %+v\n"+
			"(if this change is intentional, update loadSoakWant and explain why)", seq, loadSoakWant)
	}
	for _, workers := range []int{1, 4} {
		if got := loadSoakRun(t, sim.DriverWorkerPool, workers); got != seq {
			t.Errorf("worker-pool(%d) load soak diverged from sequential:\n got  %+v\n want %+v",
				workers, got, seq)
		}
	}
}
