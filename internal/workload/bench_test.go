package workload

import (
	"testing"

	"lbcast/internal/baseline"
	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// BenchmarkWorkloadRound measures the per-round cost of the engine with the
// traffic layer active: the soak topology (150 Decay nodes) under Poisson
// offered load, so every iteration pays for arrival delivery, queue
// dispatch and metrics folding on top of the base scatter. Compare against
// BenchmarkNetworkRound for the traffic layer's overhead; the CI regression
// gate tracks it.
func BenchmarkWorkloadRound(b *testing.B) {
	d, err := dualgraph.RandomGeometric(150, 6, 6, 1.5, dualgraph.GreyUnreliable, xrand.New(41))
	if err != nil {
		b.Fatal(err)
	}
	rounds := b.N
	plan, err := Poisson(PoissonConfig{N: d.N(), Rounds: rounds, Rate: 0.004, Seed: 17})
	if err != nil {
		b.Fatal(err)
	}
	ackRounds := baseline.DecayAckRounds(d.Delta(), 0.2)
	svcs := make([]core.Service, d.N())
	procs := make([]sim.Process, d.N())
	for u := range svcs {
		svcs[u] = baseline.NewDecay(baseline.DecayParams{Delta: d.Delta(), AckRounds: ackRounds})
		procs[u] = svcs[u]
	}
	traffic, err := NewTraffic(Config{
		Plan: plan, Services: svcs, Capacity: 4, Policy: DropOldest,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := sim.New(sim.Config{
		Dual: d, Procs: procs, Env: traffic,
		Sched: sched.NewRandom(0.5, 3), Seed: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	b.ReportAllocs()
	b.ResetTimer()
	eng.Run(rounds)
}
