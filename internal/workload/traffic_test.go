package workload

import (
	"errors"
	"strings"
	"testing"

	"lbcast/internal/core"
	"lbcast/internal/sim"
)

// stubService is a minimal core.Service for driving Traffic without an
// engine: the test toggles its busy flag and fires its ack callback by hand.
type stubService struct {
	busy    bool
	fail    error
	onAck   func(core.Message)
	payload []any
}

func (s *stubService) Init(*sim.NodeEnv)                 {}
func (s *stubService) Transmit(int) (any, bool)          { return nil, false }
func (s *stubService) Receive(int, int, any, bool)       {}
func (s *stubService) Active() bool                      { return s.busy }
func (s *stubService) SetOnAck(f func(core.Message))     { s.onAck = f }
func (s *stubService) SetOnRecv(func(core.Message, int)) {}

func (s *stubService) Bcast(p any) (sim.MsgID, error) {
	if s.fail != nil {
		return 0, s.fail
	}
	s.busy = true
	s.payload = append(s.payload, p)
	return sim.NewMsgID(0, len(s.payload)), nil
}

// ack completes the in-flight broadcast, as a Receive would mid-round.
func (s *stubService) ack() {
	s.busy = false
	s.onAck(core.Message{})
}

func stubTraffic(t *testing.T, plan *Plan, capacity int, policy DropPolicy) (*Traffic, []*stubService) {
	t.Helper()
	stubs := make([]*stubService, plan.N)
	svcs := make([]core.Service, plan.N)
	for u := range stubs {
		stubs[u] = &stubService{}
		svcs[u] = stubs[u]
	}
	tr, err := NewTraffic(Config{Plan: plan, Services: svcs, Capacity: capacity, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	return tr, stubs
}

func TestTrafficDispatchAndSojourn(t *testing.T) {
	plan := &Plan{N: 2, Rounds: 10, Arrivals: []Arrival{{Round: 1, Node: 0}, {Round: 3, Node: 1}}}
	tr, stubs := stubTraffic(t, plan, 4, DropNewest)

	tr.BeforeRound(1) // node 0's arrival lands and dispatches immediately
	if len(stubs[0].payload) != 1 || len(stubs[1].payload) != 0 {
		t.Fatalf("dispatch wrong: %d/%d bcasts", len(stubs[0].payload), len(stubs[1].payload))
	}
	tr.AfterRound(1)

	tr.BeforeRound(2)
	tr.AfterRound(2)

	tr.BeforeRound(3)
	stubs[0].ack() // node 0 acks during round 3
	tr.AfterRound(3)

	tr.BeforeRound(4)
	stubs[1].ack() // node 1 (dispatched round 3) acks during round 4
	tr.AfterRound(4)

	m := tr.Metrics()
	if m.Offered != 2 || m.Accepted != 2 || m.Dropped != 0 || m.Bcasts != 2 || m.Acks != 2 {
		t.Fatalf("counters wrong: %+v", m)
	}
	// Node 0: arrived 1, sent 1, acked 3 → sojourn 2, service 2.
	// Node 1: arrived 3, sent 3, acked 4 → sojourn 1, service 1.
	if m.Sojourn.N() != 2 || m.Sojourn.Quantile(0.5) != 1 || m.Sojourn.Max() != 2 {
		t.Errorf("sojourn histogram wrong: n=%d p50=%d max=%d",
			m.Sojourn.N(), m.Sojourn.Quantile(0.5), m.Sojourn.Max())
	}
	if m.Service.Max() != 2 {
		t.Errorf("service histogram wrong: max=%d", m.Service.Max())
	}
}

// TestTrafficQueueWait pins that sojourn includes queue wait: a message
// arriving while its node is busy waits for the ack before dispatch.
func TestTrafficQueueWait(t *testing.T) {
	plan := &Plan{N: 1, Rounds: 20, Arrivals: []Arrival{{Round: 1, Node: 0}, {Round: 2, Node: 0}}}
	tr, stubs := stubTraffic(t, plan, 4, DropNewest)

	tr.BeforeRound(1)
	tr.AfterRound(1)
	tr.BeforeRound(2) // second arrival queues behind the in-flight first
	if got := tr.QueueDepth(0); got != 1 {
		t.Fatalf("queue depth %d, want 1", got)
	}
	tr.AfterRound(2)
	tr.BeforeRound(3)
	stubs[0].ack() // first message acks in round 3...
	tr.AfterRound(3)
	tr.BeforeRound(4) // ...so the queued one dispatches in round 4
	tr.AfterRound(4)
	tr.BeforeRound(5)
	stubs[0].ack()
	tr.AfterRound(5)

	m := tr.Metrics()
	if m.Acks != 2 {
		t.Fatalf("acks = %d, want 2", m.Acks)
	}
	// Second message: arrived 2, sent 4, acked 5 → sojourn 3, service 1.
	if m.Sojourn.Max() != 3 || m.Service.Max() != 2 {
		t.Errorf("sojourn max %d (want 3), service max %d (want 2)",
			m.Sojourn.Max(), m.Service.Max())
	}
	// DepthSum integrated one queued round (round 2 end, rounds 3 on it is
	// still queued until dispatched in 4): rounds 2 and 3 have depth 1.
	if m.DepthSum != 2 || m.DepthMax != 1 {
		t.Errorf("depth accounting: sum=%d max=%d, want 2/1", m.DepthSum, m.DepthMax)
	}
}

func TestTrafficDropPolicies(t *testing.T) {
	burst := []Arrival{{Round: 1, Node: 0}, {Round: 1, Node: 0}, {Round: 1, Node: 0}}
	plan := &Plan{N: 1, Rounds: 5, Arrivals: burst}

	// Keep the node busy so nothing dispatches: capacity 1 queue fills on
	// the first arrival.
	t.Run("drop-newest", func(t *testing.T) {
		tr, stubs := stubTraffic(t, plan, 1, DropNewest)
		stubs[0].busy = true
		tr.BeforeRound(1)
		tr.AfterRound(1)
		m := tr.Metrics()
		if m.Offered != 3 || m.Accepted != 1 || m.Dropped != 2 {
			t.Errorf("drop-newest counters: %+v", m)
		}
	})
	t.Run("drop-oldest", func(t *testing.T) {
		tr, stubs := stubTraffic(t, plan, 1, DropOldest)
		stubs[0].busy = true
		tr.BeforeRound(1)
		tr.AfterRound(1)
		m := tr.Metrics()
		// Every arrival is accepted; the two evicted heads are the drops.
		if m.Offered != 3 || m.Accepted != 3 || m.Dropped != 2 {
			t.Errorf("drop-oldest counters: %+v", m)
		}
		if m.Offered != m.Accepted+m.Dropped-2 { // eviction double-counts by design
			t.Errorf("drop-oldest accounting identity broken: %+v", m)
		}
	})
}

func TestTrafficBcastErrorRequeues(t *testing.T) {
	plan := &Plan{N: 1, Rounds: 5, Arrivals: []Arrival{{Round: 1, Node: 0}}}
	tr, stubs := stubTraffic(t, plan, 4, DropNewest)
	stubs[0].fail = errors.New("refused")
	tr.BeforeRound(1)
	tr.AfterRound(1)
	m := tr.Metrics()
	if m.Bcasts != 0 || tr.QueueDepth(0) != 1 || m.DepthSum != 1 {
		t.Errorf("failed Bcast lost the message: bcasts=%d depth=%d", m.Bcasts, tr.QueueDepth(0))
	}
	stubs[0].fail = nil
	tr.BeforeRound(2)
	tr.AfterRound(2)
	if m.Bcasts != 1 || tr.QueueDepth(0) != 0 {
		t.Errorf("requeued message not dispatched: bcasts=%d depth=%d", m.Bcasts, tr.QueueDepth(0))
	}
}

func TestTrafficRearm(t *testing.T) {
	plan := &Plan{N: 1, Rounds: 10, Arrivals: []Arrival{{Round: 1, Node: 0}}}
	tr, stubs := stubTraffic(t, plan, 4, DropNewest)
	tr.BeforeRound(1)
	tr.AfterRound(1)

	// The process "crashes": its in-flight broadcast is abandoned and a
	// fresh service takes the slot.
	old := stubs[0].onAck
	fresh := &stubService{}
	tr.cfg.Services[0] = fresh
	tr.Rearm(0)
	m := tr.Metrics()
	if m.Lost != 1 {
		t.Fatalf("Lost = %d, want 1", m.Lost)
	}
	if fresh.onAck == nil {
		t.Fatal("Rearm did not re-hook the fresh service")
	}
	// A straggler ack from the dead incarnation must not count.
	tr.BeforeRound(2)
	old(core.Message{})
	tr.AfterRound(2)
	if m.Acks != 0 {
		t.Errorf("abandoned incarnation's ack counted: acks=%d", m.Acks)
	}
}

func TestTrafficDepthSeries(t *testing.T) {
	plan := &Plan{N: 2, Rounds: 6, Arrivals: []Arrival{{Round: 1, Node: 0}, {Round: 1, Node: 1}}}
	stubs := []*stubService{{busy: true}, {busy: true}}
	tr, err := NewTraffic(Config{
		Plan:     plan,
		Services: []core.Service{stubs[0], stubs[1]},
		Capacity: 4, DepthEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 6; r++ {
		tr.BeforeRound(r)
		tr.AfterRound(r)
	}
	m := tr.Metrics()
	if len(m.Depth) != 3 { // rounds 2, 4, 6
		t.Fatalf("depth series has %d samples, want 3: %+v", len(m.Depth), m.Depth)
	}
	for _, d := range m.Depth {
		if d.Total != 2 || d.Max != 1 {
			t.Errorf("depth sample wrong: %+v", d)
		}
	}
	if m.DepthSum != 12 {
		t.Errorf("DepthSum = %d, want 12", m.DepthSum)
	}
}

func TestTrafficFingerprint(t *testing.T) {
	run := func(seed uint64) uint64 {
		t.Helper()
		plan, err := Poisson(PoissonConfig{N: 4, Rounds: 200, Rate: 0.1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		tr, stubs := stubTraffic(t, plan, 3, DropOldest)
		for r := 1; r <= plan.Rounds; r++ {
			tr.BeforeRound(r)
			if r%3 == 0 {
				for _, s := range stubs {
					if s.busy {
						s.ack()
					}
				}
			}
			tr.AfterRound(r)
		}
		return tr.Metrics().Fingerprint()
	}
	if run(1) != run(1) {
		t.Error("identical runs fingerprint differently")
	}
	if run(1) == run(2) {
		t.Error("different runs share a fingerprint")
	}
}

func TestNewTrafficValidation(t *testing.T) {
	plan := &Plan{N: 1, Rounds: 5}
	svc := []core.Service{&stubService{}}
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"nil plan", Config{Services: svc, Capacity: 1}, "needs a plan"},
		{"service mismatch", Config{Plan: &Plan{N: 2, Rounds: 5}, Services: svc, Capacity: 1}, "over 1 services"},
		{"zero capacity", Config{Plan: plan, Services: svc}, "capacity"},
		{"bad policy", Config{Plan: plan, Services: svc, Capacity: 1, Policy: DropPolicy(9)}, "drop policy"},
	}
	for _, tc := range cases {
		if _, err := NewTraffic(tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want contains %q", tc.name, err, tc.want)
		}
	}
}

func TestDropPolicyRoundTrip(t *testing.T) {
	for _, p := range []DropPolicy{DropNewest, DropOldest} {
		got, err := ParseDropPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParseDropPolicy("lifo"); err == nil {
		t.Error("ParseDropPolicy accepted garbage")
	}
	if s := DropPolicy(7).String(); !strings.Contains(s, "7") {
		t.Errorf("unknown policy String = %q", s)
	}
}

func TestQueueRing(t *testing.T) {
	q := newQueue(3)
	for i := int32(0); i < 3; i++ {
		if !q.push(i) {
			t.Fatalf("push %d rejected", i)
		}
	}
	if q.push(99) {
		t.Error("push into full queue succeeded")
	}
	for i := int32(0); i < 3; i++ {
		v, ok := q.pop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := q.pop(); ok {
		t.Error("pop from empty queue succeeded")
	}
	// Wrap-around FIFO order.
	q.push(10)
	q.push(11)
	q.pop()
	q.push(12)
	q.push(13)
	for _, want := range []int32{11, 12, 13} {
		if v, _ := q.pop(); v != want {
			t.Errorf("wrap order: got %d want %d", v, want)
		}
	}
}
