package workload

import "fmt"

// DropPolicy selects what a full queue does with an incoming arrival.
type DropPolicy uint8

const (
	// DropNewest rejects the incoming arrival (tail drop), the classic
	// open-loop discipline: queued messages keep their positions.
	DropNewest DropPolicy = iota + 1
	// DropOldest evicts the head to make room for the incoming arrival —
	// freshest-first semantics for telemetry-style workloads where a newer
	// reading supersedes a stale one.
	DropOldest
)

// String implements fmt.Stringer with the stable schema spelling.
func (p DropPolicy) String() string {
	switch p {
	case DropNewest:
		return "drop-newest"
	case DropOldest:
		return "drop-oldest"
	}
	return fmt.Sprintf("DropPolicy(%d)", uint8(p))
}

// ParseDropPolicy inverts String.
func ParseDropPolicy(s string) (DropPolicy, error) {
	switch s {
	case "drop-newest":
		return DropNewest, nil
	case "drop-oldest":
		return DropOldest, nil
	}
	return 0, fmt.Errorf("workload: unknown drop policy %q (drop-newest|drop-oldest)", s)
}

// queue is one node's bounded FIFO of pending messages. Entries are the
// arrival rounds (all a message's SLO accounting needs); it is a ring
// buffer so steady-state enqueue/dequeue allocates nothing.
type queue struct {
	buf  []int32
	head int
	n    int
}

// newQueue returns a queue bounded at cap messages.
func newQueue(cap int) queue { return queue{buf: make([]int32, cap)} }

// len returns the current depth.
func (q *queue) len() int { return q.n }

// push enqueues an arrival round; it reports false when the queue is full
// (the caller accounts the drop per its policy).
func (q *queue) push(round int32) bool {
	if q.n == len(q.buf) {
		return false
	}
	q.buf[(q.head+q.n)%len(q.buf)] = round
	q.n++
	return true
}

// pop dequeues the oldest arrival round; ok=false when empty.
func (q *queue) pop() (int32, bool) {
	if q.n == 0 {
		return 0, false
	}
	v := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return v, true
}
