package workload

import (
	"math"
	"reflect"
	"testing"
)

// --- Satellite: statistical property tests at fixed seeds. Every bound
// below is a ≥4σ confidence interval at its pinned seed, so the tests are
// deterministic in practice while still validating the distributions.

// TestPoissonInterarrivalMoments checks that per-node interarrival gaps are
// exponential with the configured mean: sample mean within 4σ of 1/rate and
// sample variance within 10% of 1/rate² (discretisation to integer rounds
// perturbs both by well under the tolerance at this rate).
func TestPoissonInterarrivalMoments(t *testing.T) {
	const (
		n      = 200
		rounds = 50_000
		rate   = 0.02
	)
	p, err := Poisson(PoissonConfig{N: n, Rounds: rounds, Rate: rate, Seed: 12345})
	if err != nil {
		t.Fatal(err)
	}
	var gaps []float64
	for _, times := range p.PerNode() {
		for i := 1; i < len(times); i++ {
			gaps = append(gaps, float64(times[i]-times[i-1]))
		}
	}
	k := float64(len(gaps))
	if k < 100_000 {
		t.Fatalf("only %v gaps; expected ≈ %v", k, n*rounds*rate)
	}
	var sum float64
	for _, g := range gaps {
		sum += g
	}
	mean := sum / k
	var sq float64
	for _, g := range gaps {
		sq += (g - mean) * (g - mean)
	}
	variance := sq / (k - 1)

	wantMean := 1 / rate // 50
	if se := wantMean / math.Sqrt(k); math.Abs(mean-wantMean) > 4*se {
		t.Errorf("interarrival mean %.3f outside %v ± %.3f", mean, wantMean, 4*se)
	}
	wantVar := 1 / (rate * rate) // 2500
	if math.Abs(variance-wantVar) > 0.10*wantVar {
		t.Errorf("interarrival variance %.1f outside %v ± 10%%", variance, wantVar)
	}
}

// TestPoissonTotalCount checks the aggregate arrival count against the
// binomial-style CI for a Poisson total with mean N·Rounds·Rate.
func TestPoissonTotalCount(t *testing.T) {
	const (
		n      = 100
		rounds = 20_000
		rate   = 0.01
	)
	p, err := Poisson(PoissonConfig{N: n, Rounds: rounds, Rate: rate, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n) * float64(rounds) * rate
	sigma := math.Sqrt(want)
	if got := float64(len(p.Arrivals)); math.Abs(got-want) > 4*sigma {
		t.Errorf("total arrivals %v outside %v ± %v", got, want, 4*sigma)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("generated plan invalid: %v", err)
	}
}

// TestMMPPRegimeRates classifies every round as quiet or burst using the
// returned epochs and checks the empirical per-node per-round arrival rate
// in each regime against its configured Bernoulli probability.
func TestMMPPRegimeRates(t *testing.T) {
	cfg := MMPPConfig{
		N: 100, Rounds: 40_000,
		QuietRate: 0.002, BurstRate: 0.05,
		MeanQuiet: 400, MeanBurst: 100,
		Seed: 99,
	}
	p, epochs, err := MMPP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) == 0 {
		t.Fatal("regime chain never entered a burst epoch")
	}
	inBurst := make([]bool, cfg.Rounds+1)
	burstRounds := 0
	for _, e := range epochs {
		if e.Start < 1 || e.End <= e.Start {
			t.Fatalf("malformed epoch %+v", e)
		}
		for r := e.Start; r < e.End && r <= cfg.Rounds; r++ {
			inBurst[r] = true
			burstRounds++
		}
	}
	quietRounds := cfg.Rounds - burstRounds
	if burstRounds == 0 || quietRounds == 0 {
		t.Fatalf("degenerate regime split: burst=%d quiet=%d", burstRounds, quietRounds)
	}
	// The regime chain itself: expected burst fraction is
	// MeanBurst/(MeanQuiet+MeanBurst) = 0.2; allow a wide band (epoch counts
	// are small).
	if frac := float64(burstRounds) / float64(cfg.Rounds); frac < 0.08 || frac > 0.40 {
		t.Errorf("burst round fraction %.3f implausible for means %d/%d",
			frac, cfg.MeanQuiet, cfg.MeanBurst)
	}
	var burstArr, quietArr int
	for _, a := range p.Arrivals {
		if inBurst[a.Round] {
			burstArr++
		} else {
			quietArr++
		}
	}
	check := func(name string, got int, rounds int, rate float64) {
		t.Helper()
		trials := float64(cfg.N) * float64(rounds)
		want := trials * rate
		sigma := math.Sqrt(trials * rate * (1 - rate))
		if math.Abs(float64(got)-want) > 4*sigma {
			t.Errorf("%s arrivals %d outside %v ± %v", name, got, want, 4*sigma)
		}
	}
	check("burst", burstArr, burstRounds, cfg.BurstRate)
	check("quiet", quietArr, quietRounds, cfg.QuietRate)
}

// TestDiurnalIntegral checks that the realised arrival count matches the
// integral of the rate curve, N·Σ_t RateAt(t), within the binomial CI — and
// that the curve actually modulates the process (peak half vs trough half).
func TestDiurnalIntegral(t *testing.T) {
	cfg := DiurnalConfig{
		N: 100, Rounds: 20_000,
		Base: 0.01, Amp: 0.008, Period: 5_000,
		Seed: 4242,
	}
	p, err := Diurnal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var integral, varSum float64
	for tt := 1; tt <= cfg.Rounds; tt++ {
		r := cfg.RateAt(tt)
		integral += r
		varSum += r * (1 - r)
	}
	want := float64(cfg.N) * integral
	sigma := math.Sqrt(float64(cfg.N) * varSum)
	if got := float64(len(p.Arrivals)); math.Abs(got-want) > 4*sigma {
		t.Errorf("diurnal total %v outside curve integral %v ± %v", got, want, 4*sigma)
	}
	// First half-period (rising sine) must out-arrive the second (falling).
	var peak, trough int
	for _, a := range p.Arrivals {
		switch phase := a.Round % cfg.Period; {
		case phase > 0 && phase <= cfg.Period/2:
			peak++
		default:
			trough++
		}
	}
	if peak <= trough {
		t.Errorf("curve not modulating: peak-half %d ≤ trough-half %d", peak, trough)
	}
}

// TestRegenerationBitIdentical pins determinism: expanding the same config
// twice yields byte-identical plans (and epochs).
func TestRegenerationBitIdentical(t *testing.T) {
	pc := PoissonConfig{N: 50, Rounds: 5_000, Rate: 0.01, Seed: 11}
	p1, err1 := Poisson(pc)
	p2, err2 := Poisson(pc)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Error("Poisson regeneration differs")
	}

	mc := MMPPConfig{N: 50, Rounds: 5_000, QuietRate: 0.001, BurstRate: 0.05,
		MeanQuiet: 300, MeanBurst: 80, Seed: 11}
	m1, e1, err1 := MMPP(mc)
	m2, e2, err2 := MMPP(mc)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(m1, m2) || !reflect.DeepEqual(e1, e2) {
		t.Error("MMPP regeneration differs")
	}

	dc := DiurnalConfig{N: 50, Rounds: 5_000, Base: 0.01, Amp: 0.005,
		Period: 1_000, Seed: 11}
	d1, err1 := Diurnal(dc)
	d2, err2 := Diurnal(dc)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Error("Diurnal regeneration differs")
	}

	// Different seeds must differ (the generators actually consume the seed).
	p3, _ := Poisson(PoissonConfig{N: 50, Rounds: 5_000, Rate: 0.01, Seed: 12})
	if reflect.DeepEqual(p1, p3) {
		t.Error("Poisson ignores its seed")
	}
}

// TestNIndependence pins the churn.Plan discipline: growing the network must
// leave every existing node's arrival schedule bit-identical.
func TestNIndependence(t *testing.T) {
	build := func(n int) map[string]*Plan {
		t.Helper()
		out := map[string]*Plan{}
		p, err := Poisson(PoissonConfig{N: n, Rounds: 8_000, Rate: 0.008, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		out["poisson"] = p
		m, _, err := MMPP(MMPPConfig{N: n, Rounds: 8_000, QuietRate: 0.001,
			BurstRate: 0.04, MeanQuiet: 400, MeanBurst: 100, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		out["mmpp"] = m
		d, err := Diurnal(DiurnalConfig{N: n, Rounds: 8_000, Base: 0.008,
			Amp: 0.006, Period: 2_000, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		out["diurnal"] = d
		return out
	}
	small, big := build(40), build(80)
	for name := range small {
		a, b := small[name].PerNode(), big[name].PerNode()
		for u := 0; u < 40; u++ {
			if !reflect.DeepEqual(a[u], b[u]) {
				t.Errorf("%s: node %d arrivals changed when n grew 40→80", name, u)
				break
			}
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := Poisson(PoissonConfig{N: 0, Rounds: 10, Rate: 0.1}); err == nil {
		t.Error("Poisson accepted N=0")
	}
	if _, err := Poisson(PoissonConfig{N: 1, Rounds: 10, Rate: math.Inf(1)}); err == nil {
		t.Error("Poisson accepted infinite rate")
	}
	if _, _, err := MMPP(MMPPConfig{N: 1, Rounds: 10, QuietRate: -1, BurstRate: 0.5,
		MeanQuiet: 5, MeanBurst: 5}); err == nil {
		t.Error("MMPP accepted negative rate")
	}
	if _, _, err := MMPP(MMPPConfig{N: 1, Rounds: 10, QuietRate: 0.1, BurstRate: 0.5,
		MeanQuiet: 0, MeanBurst: 5}); err == nil {
		t.Error("MMPP accepted zero regime duration")
	}
	if _, err := Diurnal(DiurnalConfig{N: 1, Rounds: 10, Base: 0.1, Period: 0}); err == nil {
		t.Error("Diurnal accepted zero period")
	}
	bad := &Plan{N: 2, Rounds: 10, Arrivals: []Arrival{{Round: 5, Node: 1}, {Round: 4, Node: 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted out-of-order arrivals")
	}
	bad = &Plan{N: 2, Rounds: 10, Arrivals: []Arrival{{Round: 5, Node: 2}}}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted out-of-range node")
	}
}

// TestPlanZeroRate pins the degenerate cases: rate 0 yields an empty, valid
// plan; OfferedLoad reflects the density.
func TestPlanZeroRate(t *testing.T) {
	p, err := Poisson(PoissonConfig{N: 10, Rounds: 100, Rate: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Arrivals) != 0 || p.Validate() != nil || p.OfferedLoad() != 0 {
		t.Errorf("zero-rate plan not empty/valid: %+v", p)
	}
}
