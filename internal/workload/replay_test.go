package workload

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"lbcast/internal/baseline"
	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// replayRun executes one engine run from a plan + queue discipline and
// returns the full execution fingerprint.
func replayRun(t *testing.T, plan *Plan, capacity int, policy DropPolicy) loadFingerprint {
	t.Helper()
	d, err := dualgraph.RandomGeometric(plan.N, 5, 5, 1.5, dualgraph.GreyUnreliable, xrand.New(23))
	if err != nil {
		t.Fatal(err)
	}
	svcs := make([]core.Service, d.N())
	procs := make([]sim.Process, d.N())
	for u := range svcs {
		svcs[u] = baseline.NewDecay(baseline.DecayParams{
			Delta: d.Delta(), AckRounds: baseline.DecayAckRounds(d.Delta(), 0.2)})
		procs[u] = svcs[u]
	}
	traffic, err := NewTraffic(Config{
		Plan: plan, Services: svcs, Capacity: capacity, Policy: policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.New(sim.Config{
		Dual: d, Procs: procs, Env: traffic,
		Sched: sched.NewRandom(0.5, 7), Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.Run(plan.Rounds)
	return loadSoakFingerprint(eng.Trace(), traffic.Metrics())
}

// TestReplayRoundTrip pins the record/replay contract: a run recorded as
// lbcast-load-trace/v1 JSON and replayed from the decoded document yields a
// byte-identical arrival plan, byte-identical workload metrics and a
// byte-identical engine fingerprint.
func TestReplayRoundTrip(t *testing.T) {
	const seed = 31
	sc, err := BuildScenario("alarm-flood", 60, 4_000, seed)
	if err != nil {
		t.Fatal(err)
	}
	recorded := replayRun(t, sc.Plan, sc.Capacity, sc.Policy)

	doc := RecordTrace(sc.Plan, sc.Name, seed, sc.Capacity, sc.Policy)
	var buf bytes.Buffer
	if err := doc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Name != sc.Name || decoded.Seed != seed || decoded.Capacity != sc.Capacity {
		t.Errorf("trace header mangled: %+v", decoded)
	}
	if !reflect.DeepEqual(decoded.Plan(), sc.Plan) {
		t.Fatal("decoded plan differs from the recorded one")
	}
	policy, err := decoded.DropPolicy()
	if err != nil {
		t.Fatal(err)
	}
	replayed := replayRun(t, decoded.Plan(), decoded.Capacity, policy)
	if replayed != recorded {
		t.Errorf("replay diverged from the recorded run:\n got  %+v\n want %+v", replayed, recorded)
	}
}

// TestTraceFileRoundTrip exercises the file path and the validation errors.
func TestTraceFileRoundTrip(t *testing.T) {
	plan, err := Poisson(PoissonConfig{N: 8, Rounds: 500, Rate: 0.02, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	doc := RecordTrace(plan, "poisson", 3, 2, DropNewest)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := doc.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Plan(), plan) {
		t.Error("file round trip changed the plan")
	}

	if _, err := ReadTrace(strings.NewReader(`{"schema":"bogus/v9"}`)); err == nil {
		t.Error("ReadTrace accepted a wrong schema")
	}
	if _, err := ReadTrace(strings.NewReader(
		`{"schema":"lbcast-load-trace/v1","capacity":1,"policy":"lifo","n":1,"rounds":1}`)); err == nil {
		t.Error("ReadTrace accepted an unknown policy")
	}
	if _, err := ReadTrace(strings.NewReader(
		`{"schema":"lbcast-load-trace/v1","capacity":1,"policy":"drop-newest","n":1,"rounds":1,` +
			`"arrivals":[{"round":9,"node":0}]}`)); err == nil {
		t.Error("ReadTrace accepted an out-of-range arrival")
	}
}

// TestScenarioPresets pins the catalog: every preset builds, validates, and
// carries its documented queue discipline.
func TestScenarioPresets(t *testing.T) {
	want := map[string]struct {
		capacity int
		policy   DropPolicy
	}{
		"iot-telemetry": {4, DropOldest},
		"alarm-flood":   {16, DropNewest},
		"gossip-storm":  {32, DropNewest},
	}
	names := ScenarioNames()
	if len(names) != len(want) {
		t.Fatalf("ScenarioNames = %v", names)
	}
	for _, name := range names {
		sc, err := BuildScenario(name, 40, 10_000, 9)
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.Plan.Validate(); err != nil {
			t.Errorf("%s: invalid plan: %v", name, err)
		}
		if len(sc.Plan.Arrivals) == 0 {
			t.Errorf("%s: empty plan", name)
		}
		w := want[name]
		if sc.Capacity != w.capacity || sc.Policy != w.policy {
			t.Errorf("%s: discipline %d/%v, want %d/%v", name, sc.Capacity, sc.Policy, w.capacity, w.policy)
		}
		if name == "alarm-flood" && len(sc.Bursts) == 0 {
			t.Error("alarm-flood reported no burst epochs")
		}
	}
	if _, err := BuildScenario("nope", 40, 100, 1); err == nil {
		t.Error("BuildScenario accepted an unknown preset")
	}
}
