package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// TraceSchema identifies the load-trace document layout; bump on
// incompatible change.
const TraceSchema = "lbcast-load-trace/v1"

// TraceDoc is the deterministic load trace (lbcast-load-trace/v1): the
// fully-expanded arrival schedule plus the queue discipline it ran with.
// Replaying a trace feeds the recorded arrivals back through Traffic
// verbatim — no generator in the loop — so a replayed run's metrics and
// engine fingerprint are byte-identical to the recorded run's (the replay
// round-trip test pins this).
type TraceDoc struct {
	Schema string `json:"schema"`
	// Name labels the workload (a scenario preset or generator name).
	Name string `json:"name,omitempty"`
	// Seed is the generator seed the plan was expanded from (informative:
	// replay uses the recorded arrivals, never re-expands).
	Seed uint64 `json:"seed"`
	// Capacity and Policy are the queue discipline of the recorded run.
	Capacity int    `json:"capacity"`
	Policy   string `json:"policy"`
	// N, Rounds and Arrivals are the recorded Plan.
	N        int       `json:"n"`
	Rounds   int       `json:"rounds"`
	Arrivals []Arrival `json:"arrivals"`
}

// RecordTrace captures a plan and its queue discipline as a trace document.
func RecordTrace(p *Plan, name string, seed uint64, capacity int, policy DropPolicy) *TraceDoc {
	return &TraceDoc{
		Schema:   TraceSchema,
		Name:     name,
		Seed:     seed,
		Capacity: capacity,
		Policy:   policy.String(),
		N:        p.N,
		Rounds:   p.Rounds,
		Arrivals: append([]Arrival(nil), p.Arrivals...),
	}
}

// Plan reconstructs the recorded arrival plan.
func (d *TraceDoc) Plan() *Plan {
	return &Plan{N: d.N, Rounds: d.Rounds, Arrivals: append([]Arrival(nil), d.Arrivals...)}
}

// DropPolicy parses the recorded queue policy.
func (d *TraceDoc) DropPolicy() (DropPolicy, error) { return ParseDropPolicy(d.Policy) }

// WriteJSON renders the trace with stable formatting.
func (d *TraceDoc) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteFile writes the trace to a file.
func (d *TraceDoc) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTrace parses and validates a trace document.
func ReadTrace(r io.Reader) (*TraceDoc, error) {
	var d TraceDoc
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("workload: decoding load trace: %w", err)
	}
	if d.Schema != TraceSchema {
		return nil, fmt.Errorf("workload: trace schema %q, want %q", d.Schema, TraceSchema)
	}
	if _, err := d.DropPolicy(); err != nil {
		return nil, err
	}
	if err := d.Plan().Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// ReadTraceFile reads a trace from a file.
func ReadTraceFile(path string) (*TraceDoc, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}
