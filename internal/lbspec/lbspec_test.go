package lbspec

import (
	"strings"
	"testing"

	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// pathDual returns the 0-1-2 reliable path with unreliable {0,2}.
func pathDual(t testing.TB) *dualgraph.Dual {
	t.Helper()
	d, err := dualgraph.Abstract(3,
		[]dualgraph.Edge{{U: 0, V: 1}, {U: 1, V: 2}},
		[]dualgraph.Edge{{U: 0, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func trace(rounds int, evs ...sim.Event) *sim.Trace {
	tr := &sim.Trace{RoundsRun: rounds}
	for _, ev := range evs {
		tr.Record(ev)
	}
	return tr
}

func TestCleanTracePasses(t *testing.T) {
	d := pathDual(t)
	m := sim.NewMsgID(0, 1)
	tr := trace(20,
		sim.Event{Round: 1, Node: 0, Kind: sim.EvBcast, MsgID: m},
		sim.Event{Round: 3, Node: 1, Kind: sim.EvHear, From: 0, MsgID: m},
		sim.Event{Round: 3, Node: 1, Kind: sim.EvRecv, From: 0, MsgID: m},
		sim.Event{Round: 5, Node: 0, Kind: sim.EvAck, MsgID: m},
	)
	rep := Check(d, tr, 10, 5)
	if err := rep.Err(); err != nil {
		t.Fatalf("clean trace rejected: %v", err)
	}
	if rep.Broadcasts != 1 || rep.ReliableSuccesses != 1 {
		t.Errorf("reliability accounting: %d/%d", rep.ReliableSuccesses, rep.Broadcasts)
	}
	if rep.ReliabilityRate() != 1 {
		t.Errorf("ReliabilityRate = %v", rep.ReliabilityRate())
	}
	if len(rep.AckLatencies) != 1 || rep.AckLatencies[0] != 4 {
		t.Errorf("AckLatencies = %v", rep.AckLatencies)
	}
}

func TestLateAckViolation(t *testing.T) {
	d := pathDual(t)
	m := sim.NewMsgID(0, 1)
	tr := trace(30,
		sim.Event{Round: 1, Node: 0, Kind: sim.EvBcast, MsgID: m},
		sim.Event{Round: 25, Node: 0, Kind: sim.EvAck, MsgID: m},
	)
	rep := Check(d, tr, 10, 5)
	if rep.Err() == nil {
		t.Fatal("late ack passed")
	}
}

func TestMissingAckViolation(t *testing.T) {
	d := pathDual(t)
	m := sim.NewMsgID(0, 1)
	t.Run("deadline passed", func(t *testing.T) {
		tr := trace(30, sim.Event{Round: 1, Node: 0, Kind: sim.EvBcast, MsgID: m})
		if Check(d, tr, 10, 5).Err() == nil {
			t.Fatal("missing ack passed")
		}
	})
	t.Run("still in flight", func(t *testing.T) {
		tr := trace(5, sim.Event{Round: 1, Node: 0, Kind: sim.EvBcast, MsgID: m})
		if err := Check(d, tr, 10, 5).Err(); err != nil {
			t.Fatalf("in-flight broadcast flagged: %v", err)
		}
	})
}

func TestAckAnomalies(t *testing.T) {
	d := pathDual(t)
	m := sim.NewMsgID(0, 1)
	t.Run("ack without bcast", func(t *testing.T) {
		tr := trace(10, sim.Event{Round: 2, Node: 0, Kind: sim.EvAck, MsgID: m})
		if Check(d, tr, 10, 5).Err() == nil {
			t.Fatal("orphan ack passed")
		}
	})
	t.Run("double ack", func(t *testing.T) {
		tr := trace(10,
			sim.Event{Round: 1, Node: 0, Kind: sim.EvBcast, MsgID: m},
			sim.Event{Round: 2, Node: 0, Kind: sim.EvAck, MsgID: m},
			sim.Event{Round: 3, Node: 0, Kind: sim.EvAck, MsgID: m},
		)
		if Check(d, tr, 10, 5).Err() == nil {
			t.Fatal("double ack passed")
		}
	})
	t.Run("foreign ack", func(t *testing.T) {
		tr := trace(10,
			sim.Event{Round: 1, Node: 0, Kind: sim.EvBcast, MsgID: m},
			sim.Event{Round: 2, Node: 1, Kind: sim.EvAck, MsgID: m},
		)
		if Check(d, tr, 10, 5).Err() == nil {
			t.Fatal("foreign ack passed")
		}
	})
	t.Run("duplicate bcast", func(t *testing.T) {
		tr := trace(10,
			sim.Event{Round: 1, Node: 0, Kind: sim.EvBcast, MsgID: m},
			sim.Event{Round: 2, Node: 0, Kind: sim.EvBcast, MsgID: m},
		)
		if Check(d, tr, 20, 5).Err() == nil {
			t.Fatal("duplicate bcast passed")
		}
	})
}

func TestValidityViolations(t *testing.T) {
	d := pathDual(t)
	m := sim.NewMsgID(0, 1)
	base := []sim.Event{
		{Round: 3, Node: 0, Kind: sim.EvBcast, MsgID: m},
		{Round: 8, Node: 0, Kind: sim.EvAck, MsgID: m},
	}
	t.Run("recv before active span", func(t *testing.T) {
		tr := trace(20, append(base, sim.Event{Round: 1, Node: 1, Kind: sim.EvRecv, MsgID: m})...)
		if Check(d, tr, 20, 5).Err() == nil {
			t.Fatal("early recv passed")
		}
	})
	t.Run("recv after ack", func(t *testing.T) {
		tr := trace(20, append(base, sim.Event{Round: 12, Node: 1, Kind: sim.EvRecv, MsgID: m})...)
		if Check(d, tr, 20, 5).Err() == nil {
			t.Fatal("late recv passed")
		}
	})
	t.Run("recv of unknown message", func(t *testing.T) {
		tr := trace(20, sim.Event{Round: 2, Node: 1, Kind: sim.EvRecv, MsgID: sim.NewMsgID(9, 9)})
		if Check(d, tr, 20, 5).Err() == nil {
			t.Fatal("unknown message recv passed")
		}
	})
	t.Run("recv from non-neighbor", func(t *testing.T) {
		// Node 2 is not a G′ neighbor of... node 0's broadcast heard at
		// node 2 is legal ({0,2} ∈ E′). Build a 4th node with no edges.
		d4, err := dualgraph.Abstract(4,
			[]dualgraph.Edge{{U: 0, V: 1}},
			nil)
		if err != nil {
			t.Fatal(err)
		}
		tr := trace(20,
			sim.Event{Round: 1, Node: 0, Kind: sim.EvBcast, MsgID: m},
			sim.Event{Round: 2, Node: 3, Kind: sim.EvRecv, MsgID: m},
			sim.Event{Round: 5, Node: 0, Kind: sim.EvAck, MsgID: m},
		)
		if Check(d4, tr, 20, 5).Err() == nil {
			t.Fatal("recv at non-neighbor passed")
		}
	})
	t.Run("duplicate recv", func(t *testing.T) {
		tr := trace(20, append(base,
			sim.Event{Round: 4, Node: 1, Kind: sim.EvRecv, MsgID: m},
			sim.Event{Round: 5, Node: 1, Kind: sim.EvRecv, MsgID: m})...)
		if Check(d, tr, 20, 5).Err() == nil {
			t.Fatal("duplicate recv passed")
		}
	})
}

func TestReliabilityAccounting(t *testing.T) {
	d := pathDual(t)
	m := sim.NewMsgID(1, 1) // node 1 broadcasts; reliable neighbors 0 and 2
	full := trace(20,
		sim.Event{Round: 1, Node: 1, Kind: sim.EvBcast, MsgID: m},
		sim.Event{Round: 2, Node: 0, Kind: sim.EvRecv, From: 1, MsgID: m},
		sim.Event{Round: 3, Node: 2, Kind: sim.EvRecv, From: 1, MsgID: m},
		sim.Event{Round: 6, Node: 1, Kind: sim.EvAck, MsgID: m},
	)
	rep := Check(d, full, 20, 5)
	if rep.ReliableSuccesses != 1 {
		t.Errorf("full delivery not counted: %+v", rep)
	}
	if len(rep.FirstRecvLatencies) != 1 || rep.FirstRecvLatencies[0] != 2 {
		t.Errorf("FirstRecvLatencies = %v, want [2]", rep.FirstRecvLatencies)
	}

	partial := trace(20,
		sim.Event{Round: 1, Node: 1, Kind: sim.EvBcast, MsgID: m},
		sim.Event{Round: 2, Node: 0, Kind: sim.EvRecv, From: 1, MsgID: m},
		sim.Event{Round: 6, Node: 1, Kind: sim.EvAck, MsgID: m},
	)
	rep = Check(d, partial, 20, 5)
	if rep.ReliableSuccesses != 0 || rep.Broadcasts != 1 {
		t.Errorf("partial delivery counted as success: %+v", rep)
	}
	if rep.ReliabilityRate() != 0 {
		t.Errorf("ReliabilityRate = %v", rep.ReliabilityRate())
	}
}

func TestProgressAccounting(t *testing.T) {
	d := pathDual(t)
	m := sim.NewMsgID(0, 1)
	// tprog = 5; node 0 active rounds 1..12 (covers phases 1 and 2).
	// Node 1 hears in phase 1 only.
	tr := trace(15,
		sim.Event{Round: 1, Node: 0, Kind: sim.EvBcast, MsgID: m},
		sim.Event{Round: 4, Node: 1, Kind: sim.EvHear, From: 0, MsgID: m},
		sim.Event{Round: 4, Node: 1, Kind: sim.EvRecv, From: 0, MsgID: m},
		sim.Event{Round: 12, Node: 0, Kind: sim.EvAck, MsgID: m},
	)
	rep := Check(d, tr, 20, 5)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	// Node 1 is the only reliable neighbor of 0. Opportunities: node 1 in
	// phases 1 (rounds 1-5) and 2 (rounds 6-10); phase 3 (11-15) is not
	// fully covered (active through 12 only).
	if rep.ProgressOpportunities != 2 {
		t.Errorf("opportunities = %d, want 2", rep.ProgressOpportunities)
	}
	if rep.ProgressSuccesses != 1 {
		t.Errorf("successes = %d, want 1", rep.ProgressSuccesses)
	}
	if rep.OppsByNode[1] != 2 || rep.SuccByNode[1] != 1 {
		t.Errorf("per-node accounting: %v %v", rep.OppsByNode, rep.SuccByNode)
	}
	if got := rep.ProgressRate(); got != 0.5 {
		t.Errorf("ProgressRate = %v", got)
	}
}

func TestProgressNoOpportunities(t *testing.T) {
	d := pathDual(t)
	tr := trace(15)
	rep := Check(d, tr, 20, 5)
	if rep.ProgressOpportunities != 0 || rep.ProgressRate() != 1 {
		t.Errorf("idle trace: %+v", rep)
	}
}

func TestProgressShortTrace(t *testing.T) {
	d := pathDual(t)
	rep := Check(d, trace(3), 20, 5)
	if rep.ProgressOpportunities != 0 {
		t.Error("opportunities counted for trace shorter than one phase")
	}
}

func TestErrTruncation(t *testing.T) {
	rep := &Report{}
	for i := 0; i < 10; i++ {
		rep.Violations = append(rep.Violations, "v")
	}
	err := rep.Err()
	if err == nil || !strings.Contains(err.Error(), "and 5 more") {
		t.Errorf("Err() = %v", err)
	}
}

// TestEndToEndLBAlg runs the real algorithm and requires a fully clean
// deterministic report plus high probabilistic rates.
func TestEndToEndLBAlg(t *testing.T) {
	rng := xrand.New(21)
	d, err := dualgraph.SingleHopCluster(8, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), 1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]core.Service, d.N())
	simProcs := make([]sim.Process, d.N())
	for u := range procs {
		procs[u] = core.NewLBAlg(p)
		simProcs[u] = procs[u]
	}
	env := core.NewSaturatingEnv(procs, []int{0, 1})
	e, err := sim.New(sim.Config{Dual: d, Procs: simProcs, Sched: sched.Random{P: 0.5, Seed: 5}, Env: env, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(4 * p.PhaseLen())

	rep := Check(d, e.Trace(), p.TAckBound(), p.TProgBound())
	if err := rep.Err(); err != nil {
		t.Fatalf("deterministic conditions violated: %v", err)
	}
	if rep.ProgressOpportunities == 0 {
		t.Fatal("no progress opportunities generated")
	}
	if rate := rep.ProgressRate(); rate < 0.8 {
		t.Errorf("progress rate %v below 1−ε", rate)
	}
}
