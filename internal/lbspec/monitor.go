package lbspec

import (
	"fmt"

	"lbcast/internal/dualgraph"
	"lbcast/internal/sim"
)

// Invariant names carried by Violation records. The shrinker's repro
// criterion matches on these classes, so they are part of the
// lbcast-chaos/v1 schema.
const (
	// InvTimelyAck: a broadcast missed its t_ack acknowledgement deadline
	// (or acked late).
	InvTimelyAck = "timely-ack"
	// InvValidity: a recv/hear output without a matching active broadcast
	// by a G′ neighbor (unknown message, outside the span window, wrong
	// neighborhood, or a duplicate recv).
	InvValidity = "validity"
	// InvAckDiscipline: malformed broadcast/ack bookkeeping — duplicate
	// bcast without an intervening restart, orphan ack, double ack,
	// foreign ack.
	InvAckDiscipline = "ack-discipline"
)

// Violation is one spec breach, reported the moment the monitor observes
// it.
type Violation struct {
	Round     int       `json:"round"`
	Node      int       `json:"node"`
	Invariant string    `json:"invariant"`
	Msg       sim.MsgID `json:"msg"`
	Detail    string    `json:"detail"`
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("round %d node %d [%s] %v: %s", v.Round, v.Node, v.Invariant, v.Msg, v.Detail)
}

// MonitorConfig assembles an online checker.
type MonitorConfig struct {
	// Dual is the live dual graph of the execution. The monitor reads
	// G/G′ adjacency on demand and snapshots each broadcast's reliable
	// neighborhood at bcast time, so in-place PatchNode updates are picked
	// up without copies (see TopologyPatched).
	Dual *dualgraph.Dual
	// Trace is the engine's trace; pass the same *sim.Trace via
	// sim.Config.Trace. The monitor consumes the tail incrementally in
	// AfterRound.
	Trace *sim.Trace
	// TAck and TProg are the LB parameters. TAck must be positive; a
	// non-positive TProg disables progress accounting (matching Check).
	TAck, TProg int
	// Inner is an optional wrapped environment, run before the monitor
	// observes each round.
	Inner sim.Environment
	// DiscardConsumed releases fully-consumed trace chunks after each
	// round (sim.Trace.DiscardBefore), capping trace memory at one chunk:
	// the no-retention mode for soaks and 10⁵⁺-node runs where post-hoc
	// checking is infeasible. Post-hoc consumers of the same trace will
	// only see the unconsumed tail.
	DiscardConsumed bool
	// MaxViolations caps retained Violation records (the total count keeps
	// counting past it). 0 means 4096.
	MaxViolations int
	// OnViolation, when set, is invoked synchronously for every violation,
	// including ones past the retention cap.
	OnViolation func(Violation)
}

// mspan is the monitor's pooled per-broadcast state.
type mspan struct {
	msg             sim.MsgID
	node            int32
	start           int32
	end             int32 // valid once closed
	closed          bool
	excused         bool
	deadlineFlagged bool
	covers          bool // counted in covering[] for the current phase
	// neigh snapshots G-neighbors at bcast: PatchNode rewrites adjacency
	// in place, and reliability is owed to the neighborhood that existed
	// when the broadcast started.
	neigh []int32
	// recv maps receiver → reception record (any receiver, for duplicate
	// detection; reliability consults only neigh).
	recv map[int32]mrecvMark
}

// mrecvMark mirrors recvMark with narrow fields: first recv round for
// reliability, latest receiver incarnation for duplicate detection.
type mrecvMark struct {
	round, incarn int32
}

// retiredSpan is the compact tombstone kept per finished span so stale
// receptions and acks resolve to the right incarnation instead of
// reporting "unknown message".
type retiredSpan struct {
	start, end, node int32
	excused          bool
}

type deadlineEntry struct {
	msg   sim.MsgID
	start int32
}

// Monitor is a streaming online checker of the LB deterministic conditions
// plus the reliability/progress statistics of Check. It implements
// sim.Environment: pass it (or an environment chain ending in it) as
// sim.Config.Env and it drains each round's events in AfterRound, keeping
// O(active spans + one tombstone per finished broadcast) state — never the
// full trace. It is incarnation-aware: wire churn lifecycle transitions in
// via NodeDown/NodeRestarted (e.g. from churn.InjectorConfig.OnDown/OnUp)
// and restarted nodes may legitimately reuse MsgIDs.
//
// Monitoring never perturbs the execution: the monitor only reads the
// trace, so fingerprints are byte-identical with and without it.
type Monitor struct {
	cfg MonitorConfig
	n   int

	seen  int // next unconsumed trace index
	round int // current round (set in BeforeRound)

	active     map[sim.MsgID]*mspan
	retired    map[sim.MsgID][]retiredSpan
	justClosed []*mspan
	free       []*mspan

	deadlines []deadlineEntry
	dlHead    int

	// Lifecycle state from NodeDown/NodeRestarted.
	downNow     []bool
	lastRestart []int32
	incarn      []int32

	// Progress phase state; the phase covering rounds
	// [phaseStart, phaseEnd] is evaluated at AfterRound(phaseEnd).
	phaseStart, phaseEnd int
	openCount            []int32 // open spans per node
	covering             []int32 // spans covering the whole current phase so far
	heardPhase           []bool
	downPhase            []bool

	broadcasts        int
	reliableSuccesses int
	progressOpps      int
	progressSucc      int
	oppsByNode        []int
	succByNode        []int
	ackLat            []int
	firstRecvLat      []int

	violations []Violation
	totalViol  int
}

// NewMonitor validates the configuration and returns a monitor ready to be
// passed as the engine's environment.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	if cfg.Dual == nil || cfg.Trace == nil {
		return nil, fmt.Errorf("lbspec: monitor needs a dual graph and a trace")
	}
	if cfg.TAck <= 0 {
		return nil, fmt.Errorf("lbspec: monitor needs a positive TAck, got %d", cfg.TAck)
	}
	if cfg.MaxViolations == 0 {
		cfg.MaxViolations = 4096
	}
	n := cfg.Dual.N()
	m := &Monitor{
		cfg:         cfg,
		n:           n,
		active:      make(map[sim.MsgID]*mspan),
		retired:     make(map[sim.MsgID][]retiredSpan),
		downNow:     make([]bool, n),
		lastRestart: make([]int32, n),
		incarn:      make([]int32, n),
		openCount:   make([]int32, n),
		covering:    make([]int32, n),
		heardPhase:  make([]bool, n),
		downPhase:   make([]bool, n),
		oppsByNode:  make([]int, n),
		succByNode:  make([]int, n),
	}
	if cfg.TProg > 0 {
		m.phaseStart, m.phaseEnd = 1, cfg.TProg
	}
	return m, nil
}

// BeforeRound implements sim.Environment.
func (m *Monitor) BeforeRound(t int) {
	m.round = t
	if m.cfg.Inner != nil {
		m.cfg.Inner.BeforeRound(t)
	}
}

// AfterRound implements sim.Environment: the engine has drained every
// event of round t into the trace by now, so consume the tail, settle the
// round's completions, expire acknowledgement deadlines, and close the
// progress phase if t ends one.
func (m *Monitor) AfterRound(t int) {
	if m.cfg.Inner != nil {
		m.cfg.Inner.AfterRound(t)
	}
	tr := m.cfg.Trace
	for i := m.seen; i < tr.Len(); i++ {
		m.consume(tr.At(i))
	}
	m.seen = tr.Len()
	m.settleClosed()
	m.sweepDeadlines(t)
	if m.cfg.TProg > 0 && t == m.phaseEnd {
		m.evalPhase()
		m.resetPhase()
	}
	if m.cfg.DiscardConsumed {
		tr.DiscardBefore(m.seen)
	}
}

// NodeDown records a crash/leave taking effect at the start of round t:
// the node's open spans are excused (truncated to t−1) and it cannot earn
// progress opportunities for the rest of the current phase. Wire it to
// churn.InjectorConfig.OnDown.
func (m *Monitor) NodeDown(t, u int) {
	if u < 0 || u >= m.n {
		return
	}
	m.downNow[u] = true
	m.downPhase[u] = true
	for _, sp := range m.active {
		if int(sp.node) != u || sp.closed {
			continue
		}
		sp.closed = true
		sp.excused = true
		sp.end = int32(t - 1)
		m.justClosed = append(m.justClosed, sp)
		m.closeAccounting(sp)
	}
}

// NodeRestarted records a recover/join taking effect at the start of round
// t: a fresh incarnation of u is running, so u may reuse MsgIDs broadcast
// by earlier incarnations. Wire it to churn.InjectorConfig.OnUp.
func (m *Monitor) NodeRestarted(t, u int) {
	if u < 0 || u >= m.n {
		return
	}
	m.downNow[u] = false
	m.lastRestart[u] = int32(t)
	m.incarn[u]++
}

// TopologyPatched marks a Dual.PatchNode having rewritten the adjacency
// the monitor reads. Validity and progress read the live graph on demand
// and reliability neighborhoods are snapshotted per span at bcast time, so
// no monitor state needs rebuilding — the hook exists as the explicit sync
// point (and guards against the one unsupported mutation, a changed node
// count). Wire it to churn.InjectorConfig.OnTopology.
func (m *Monitor) TopologyPatched() error {
	if n := m.cfg.Dual.N(); n != m.n {
		return fmt.Errorf("lbspec: monitor saw node count change %d → %d; rebuild the monitor", m.n, n)
	}
	return nil
}

func (m *Monitor) consume(ev sim.Event) {
	switch ev.Kind {
	case sim.EvBcast:
		m.onBcast(ev)
	case sim.EvAck:
		m.onAck(ev)
	case sim.EvRecv:
		m.onRecvHear(ev, true)
	case sim.EvHear:
		if m.cfg.TProg > 0 && ev.Node >= 0 && ev.Node < m.n {
			m.heardPhase[ev.Node] = true
		}
		m.onRecvHear(ev, false)
	}
}

func (m *Monitor) onBcast(ev sim.Event) {
	if _, open := m.active[ev.MsgID]; open {
		m.violate(ev.Round, ev.Node, InvAckDiscipline, ev.MsgID, "duplicate bcast")
		return
	}
	if insts := m.retired[ev.MsgID]; len(insts) > 0 {
		if prev := insts[len(insts)-1]; ev.Node < 0 || ev.Node >= m.n ||
			m.lastRestart[ev.Node] <= prev.start {
			m.violate(ev.Round, ev.Node, InvAckDiscipline, ev.MsgID, "duplicate bcast")
			return
		}
	}
	sp := m.newSpan(ev)
	m.active[ev.MsgID] = sp
	if u := int(sp.node); u >= 0 && u < m.n {
		m.openCount[u]++
		if m.cfg.TProg > 0 && int(sp.start) <= m.phaseStart {
			sp.covers = true
			m.covering[u]++
		}
	}
	m.deadlines = append(m.deadlines, deadlineEntry{msg: ev.MsgID, start: sp.start})
}

func (m *Monitor) onAck(ev sim.Event) {
	sp, ok := m.active[ev.MsgID]
	if !ok {
		if len(m.retired[ev.MsgID]) > 0 {
			m.violate(ev.Round, ev.Node, InvAckDiscipline, ev.MsgID, "ack of finished span")
		} else {
			m.violate(ev.Round, ev.Node, InvAckDiscipline, ev.MsgID, "ack of never-broadcast message")
		}
		return
	}
	if sp.closed {
		m.violate(ev.Round, ev.Node, InvAckDiscipline, ev.MsgID, "second ack")
		return
	}
	if ev.Node != int(sp.node) {
		m.violate(ev.Round, ev.Node, InvAckDiscipline, ev.MsgID,
			fmt.Sprintf("ack by node %d of broadcast by %d", ev.Node, sp.node))
	}
	sp.closed = true
	sp.end = int32(ev.Round)
	m.justClosed = append(m.justClosed, sp)
	m.closeAccounting(sp)
	if lat := int(sp.end - sp.start); lat > m.cfg.TAck && !sp.deadlineFlagged {
		// Normally the deadline sweep has already flagged this span at
		// round start+TAck; this only fires on traces whose ack events
		// carry stale rounds.
		sp.deadlineFlagged = true
		m.violate(ev.Round, int(sp.node), InvTimelyAck, ev.MsgID,
			fmt.Sprintf("ack after %d rounds > t_ack=%d", lat, m.cfg.TAck))
	}
}

func (m *Monitor) onRecvHear(ev sim.Event, isRecv bool) {
	sp, ok := m.active[ev.MsgID]
	if !ok {
		insts := m.retired[ev.MsgID]
		if len(insts) == 0 {
			m.violate(ev.Round, ev.Node, InvValidity, ev.MsgID, "reception of unknown message")
			return
		}
		ri := insts[len(insts)-1]
		for i := len(insts) - 1; i >= 0; i-- {
			if int(insts[i].start) <= ev.Round {
				ri = insts[i]
				break
			}
		}
		if ev.Round < int(ri.start) || ev.Round > int(ri.end) {
			m.violate(ev.Round, ev.Node, InvValidity, ev.MsgID,
				fmt.Sprintf("reception outside active span [%d,%d]", ri.start, ri.end))
		}
		if !m.cfg.Dual.Gp.HasEdge(ev.Node, int(ri.node)) {
			m.violate(ev.Round, ev.Node, InvValidity, ev.MsgID,
				fmt.Sprintf("reception from non-G′-neighbor %d", ri.node))
		}
		return
	}
	if ev.Round < int(sp.start) || (sp.closed && ev.Round > int(sp.end)) {
		end := "…"
		if sp.closed {
			end = fmt.Sprint(sp.end)
		}
		m.violate(ev.Round, ev.Node, InvValidity, ev.MsgID,
			fmt.Sprintf("reception outside active span [%d,%s]", sp.start, end))
	}
	if !m.cfg.Dual.Gp.HasEdge(ev.Node, int(sp.node)) {
		m.violate(ev.Round, ev.Node, InvValidity, ev.MsgID,
			fmt.Sprintf("reception from non-G′-neighbor %d", sp.node))
	}
	if isRecv {
		var incarn int32
		if ev.Node >= 0 && ev.Node < m.n {
			incarn = m.incarn[ev.Node]
		}
		if mark, dup := sp.recv[int32(ev.Node)]; dup {
			if mark.incarn == incarn {
				m.violate(ev.Round, ev.Node, InvValidity, ev.MsgID, "duplicate recv")
			} else {
				mark.incarn = incarn
				sp.recv[int32(ev.Node)] = mark
			}
		} else {
			sp.recv[int32(ev.Node)] = mrecvMark{round: int32(ev.Round), incarn: incarn}
		}
	}
}

// closeAccounting updates the per-node open/covering counters when a span
// stops being active (ack or excusal).
func (m *Monitor) closeAccounting(sp *mspan) {
	u := int(sp.node)
	if u < 0 || u >= m.n {
		return
	}
	m.openCount[u]--
	if m.cfg.TProg > 0 && sp.covers && int(sp.end) < m.phaseEnd {
		m.covering[u]--
	}
}

// settleClosed finishes the round's completed/excused spans once the whole
// round batch is drained — ack-round receptions arrive after the ack event
// when the receiver has a higher node id, and they count.
func (m *Monitor) settleClosed() {
	for _, sp := range m.justClosed {
		if !sp.excused {
			m.broadcasts++
			m.ackLat = append(m.ackLat, int(sp.end-sp.start))
			all, worst := true, 0
			for _, v := range sp.neigh {
				mark, ok := sp.recv[v]
				if !ok || mark.round > sp.end {
					all = false
					break
				}
				if lat := int(mark.round - sp.start); lat > worst {
					worst = lat
				}
			}
			if all {
				m.reliableSuccesses++
				m.firstRecvLat = append(m.firstRecvLat, worst)
			}
		}
		m.retired[sp.msg] = append(m.retired[sp.msg],
			retiredSpan{start: sp.start, end: sp.end, node: sp.node, excused: sp.excused})
		delete(m.active, sp.msg)
		m.recycle(sp)
	}
	m.justClosed = m.justClosed[:0]
}

// sweepDeadlines expires acknowledgement deadlines through round t. Bcast
// rounds are consumed in nondecreasing order, so the queue is a FIFO.
func (m *Monitor) sweepDeadlines(t int) {
	for m.dlHead < len(m.deadlines) {
		e := m.deadlines[m.dlHead]
		if int(e.start)+m.cfg.TAck > t {
			break
		}
		m.dlHead++
		if sp, ok := m.active[e.msg]; ok && sp.start == e.start && !sp.closed {
			sp.deadlineFlagged = true
			m.violate(t, int(sp.node), InvTimelyAck, e.msg,
				fmt.Sprintf("no ack within t_ack=%d (bcast at %d)", m.cfg.TAck, sp.start))
		}
	}
	if m.dlHead > 64 && m.dlHead*2 >= len(m.deadlines) {
		n := copy(m.deadlines, m.deadlines[m.dlHead:])
		m.deadlines = m.deadlines[:n]
		m.dlHead = 0
	}
}

// evalPhase scores the progress grid for the phase ending now.
func (m *Monitor) evalPhase() {
	g := m.cfg.Dual.G
	for w := 0; w < m.n; w++ {
		if m.downPhase[w] {
			continue
		}
		opportunity := false
		for _, v := range g.Neighbors(w) {
			if m.covering[v] > 0 {
				opportunity = true
				break
			}
		}
		if !opportunity {
			continue
		}
		m.progressOpps++
		m.oppsByNode[w]++
		if m.heardPhase[w] {
			m.progressSucc++
			m.succByNode[w]++
		}
	}
}

// resetPhase opens the next phase: every still-open span covers it from
// the start, nodes currently down are marked absent for the whole phase.
func (m *Monitor) resetPhase() {
	m.phaseStart = m.phaseEnd + 1
	m.phaseEnd += m.cfg.TProg
	copy(m.covering, m.openCount)
	for _, sp := range m.active {
		sp.covers = true
	}
	for i := range m.heardPhase {
		m.heardPhase[i] = false
		m.downPhase[i] = m.downNow[i]
	}
}

func (m *Monitor) newSpan(ev sim.Event) *mspan {
	var sp *mspan
	if n := len(m.free); n > 0 {
		sp = m.free[n-1]
		m.free = m.free[:n-1]
	} else {
		sp = &mspan{recv: make(map[int32]mrecvMark, 8)}
	}
	sp.msg = ev.MsgID
	sp.node = int32(ev.Node)
	sp.start = int32(ev.Round)
	sp.end = 0
	sp.closed, sp.excused, sp.deadlineFlagged, sp.covers = false, false, false, false
	if ev.Node >= 0 && ev.Node < m.n {
		sp.neigh = append(sp.neigh[:0], m.cfg.Dual.G.Neighbors(ev.Node)...)
	} else {
		sp.neigh = sp.neigh[:0]
	}
	return sp
}

func (m *Monitor) recycle(sp *mspan) {
	clear(sp.recv)
	sp.neigh = sp.neigh[:0]
	m.free = append(m.free, sp)
}

func (m *Monitor) violate(round, node int, invariant string, msg sim.MsgID, detail string) {
	v := Violation{Round: round, Node: node, Invariant: invariant, Msg: msg, Detail: detail}
	m.totalViol++
	if len(m.violations) < m.cfg.MaxViolations {
		m.violations = append(m.violations, v)
	}
	if m.cfg.OnViolation != nil {
		m.cfg.OnViolation(v)
	}
}

// Violations returns the retained violation records in observation order.
func (m *Monitor) Violations() []Violation { return m.violations }

// TotalViolations returns the number of violations observed, including any
// past the retention cap.
func (m *Monitor) TotalViolations() int { return m.totalViol }

// ActiveSpans returns the number of currently open broadcast spans.
func (m *Monitor) ActiveSpans() int { return len(m.active) }

// Report assembles the statistics observed so far into the same shape
// Check produces. Latency slices are in completion order (Check's are in
// bcast order) — compare as multisets.
func (m *Monitor) Report() *Report {
	rep := &Report{
		Broadcasts:            m.broadcasts,
		ReliableSuccesses:     m.reliableSuccesses,
		ProgressOpportunities: m.progressOpps,
		ProgressSuccesses:     m.progressSucc,
		OppsByNode:            append([]int(nil), m.oppsByNode...),
		SuccByNode:            append([]int(nil), m.succByNode...),
		AckLatencies:          append([]int(nil), m.ackLat...),
		FirstRecvLatencies:    append([]int(nil), m.firstRecvLat...),
	}
	for _, v := range m.violations {
		rep.Violations = append(rep.Violations, v.String())
	}
	return rep
}

var _ sim.Environment = (*Monitor)(nil)
