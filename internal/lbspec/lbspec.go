package lbspec

import (
	"fmt"
	"sort"
	"strings"

	"lbcast/internal/dualgraph"
	"lbcast/internal/sim"
)

// Span is one active-broadcast interval of a node: from the round of the
// bcast input through the round whose end carried the ack output. An
// unacknowledged broadcast at trace end has End = trace.RoundsRun and
// Completed = false.
type Span struct {
	Msg       sim.MsgID
	Node      int
	Start     int
	End       int
	Completed bool
}

// Report is the outcome of checking one trace.
type Report struct {
	// Violations of the deterministic conditions; empty means the trace
	// satisfies Timely Acknowledgement and Validity everywhere.
	Violations []string

	// Broadcasts counts completed broadcasts (bcast with matching ack).
	Broadcasts int
	// ReliableSuccesses counts completed broadcasts whose every reliable
	// neighbor produced the recv output before the ack.
	ReliableSuccesses int

	// ProgressOpportunities counts (node, phase) pairs where some reliable
	// neighbor was active throughout the phase; ProgressSuccesses counts
	// those where the node heard at least one message during the phase.
	ProgressOpportunities int
	ProgressSuccesses     int

	// Per-node accounting for the locality experiments.
	OppsByNode, SuccByNode []int

	// AckLatencies are the observed bcast→ack round counts.
	AckLatencies []int
	// FirstRecvLatencies are, per completed broadcast, the rounds from
	// bcast until the last reliable neighbor's recv (only for reliable
	// successes).
	FirstRecvLatencies []int
}

// ReliabilityRate returns the fraction of completed broadcasts delivered to
// all reliable neighbors before the ack (1 if there were none).
func (r *Report) ReliabilityRate() float64 {
	if r.Broadcasts == 0 {
		return 1
	}
	return float64(r.ReliableSuccesses) / float64(r.Broadcasts)
}

// ProgressRate returns the fraction of progress opportunities that
// succeeded (1 if there were none).
func (r *Report) ProgressRate() float64 {
	if r.ProgressOpportunities == 0 {
		return 1
	}
	return float64(r.ProgressSuccesses) / float64(r.ProgressOpportunities)
}

// Err returns an error summarising deterministic violations, or nil.
func (r *Report) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	show := r.Violations
	const maxShow = 5
	suffix := ""
	if len(show) > maxShow {
		suffix = fmt.Sprintf(" (and %d more)", len(show)-maxShow)
		show = show[:maxShow]
	}
	return fmt.Errorf("lbspec: %d violations: %s%s", len(r.Violations), strings.Join(show, "; "), suffix)
}

// Check verifies the trace of an execution over the given dual graph
// against LB(tack, tprog, ·).
func Check(d *dualgraph.Dual, tr *sim.Trace, tack, tprog int) *Report {
	rep := &Report{
		OppsByNode: make([]int, d.N()),
		SuccByNode: make([]int, d.N()),
	}

	spans := collectSpans(tr, rep)
	checkTimelyAck(tr, spans, tack, rep)
	checkValidityAndReliability(d, tr, spans, rep)
	checkProgress(d, tr, spans, tprog, rep)
	return rep
}

// collectSpans pairs bcast and ack events into active spans.
func collectSpans(tr *sim.Trace, rep *Report) map[sim.MsgID]*Span {
	spans := make(map[sim.MsgID]*Span)
	for ev := range tr.Events() {
		switch ev.Kind {
		case sim.EvBcast:
			if _, dup := spans[ev.MsgID]; dup {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("duplicate bcast of %v", ev.MsgID))
				continue
			}
			spans[ev.MsgID] = &Span{Msg: ev.MsgID, Node: ev.Node, Start: ev.Round, End: tr.RoundsRun}
		case sim.EvAck:
			sp, ok := spans[ev.MsgID]
			if !ok {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("ack of never-broadcast %v at round %d", ev.MsgID, ev.Round))
				continue
			}
			if sp.Completed {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("second ack of %v at round %d", ev.MsgID, ev.Round))
				continue
			}
			if ev.Node != sp.Node {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("ack of %v by node %d, broadcast by %d", ev.MsgID, ev.Node, sp.Node))
			}
			sp.End = ev.Round
			sp.Completed = true
		}
	}
	return spans
}

// checkTimelyAck enforces the deterministic acknowledgement deadline for
// every broadcast whose deadline lies within the executed rounds.
func checkTimelyAck(tr *sim.Trace, spans map[sim.MsgID]*Span, tack int, rep *Report) {
	ordered := make([]*Span, 0, len(spans))
	for _, sp := range spans {
		ordered = append(ordered, sp)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Start < ordered[j].Start })
	for _, sp := range ordered {
		if sp.Completed {
			rep.Broadcasts++
			lat := sp.End - sp.Start
			rep.AckLatencies = append(rep.AckLatencies, lat)
			if lat > tack {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("ack of %v after %d rounds > t_ack=%d", sp.Msg, lat, tack))
			}
			continue
		}
		if sp.Start+tack <= tr.RoundsRun {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("no ack of %v within t_ack=%d (bcast at %d, ran %d rounds)",
					sp.Msg, tack, sp.Start, tr.RoundsRun))
		}
	}
}

// checkValidityAndReliability walks recv events once for both conditions.
func checkValidityAndReliability(d *dualgraph.Dual, tr *sim.Trace, spans map[sim.MsgID]*Span, rep *Report) {
	// recvRound[msg][node] = round of the (unique) recv output.
	recvRound := make(map[sim.MsgID]map[int]int)
	for ev := range tr.Events() {
		if ev.Kind != sim.EvRecv && ev.Kind != sim.EvHear {
			continue
		}
		sp, known := spans[ev.MsgID]
		if !known {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("%v of unknown message %v at node %d", ev.Kind, ev.MsgID, ev.Node))
			continue
		}
		// Validity: the broadcaster must be a G′ neighbor actively
		// broadcasting the message in this round.
		if ev.Round < sp.Start || ev.Round > sp.End {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("%v of %v at node %d in round %d outside active span [%d,%d]",
					ev.Kind, ev.MsgID, ev.Node, ev.Round, sp.Start, sp.End))
		}
		if !d.Gp.HasEdge(ev.Node, sp.Node) {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("%v of %v at node %d from non-G′-neighbor %d",
					ev.Kind, ev.MsgID, ev.Node, sp.Node))
		}
		if ev.Kind == sim.EvRecv {
			m, ok := recvRound[ev.MsgID]
			if !ok {
				m = make(map[int]int)
				recvRound[ev.MsgID] = m
			}
			if _, dup := m[ev.Node]; dup {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("duplicate recv of %v at node %d", ev.MsgID, ev.Node))
			} else {
				m[ev.Node] = ev.Round
			}
		}
	}

	// Reliability over completed broadcasts.
	for _, sp := range spans {
		if !sp.Completed {
			continue
		}
		got := recvRound[sp.Msg]
		allBefore := true
		worst := 0
		for _, v := range d.G.Neighbors(sp.Node) {
			round, ok := got[int(v)]
			if !ok || round > sp.End {
				allBefore = false
				break
			}
			if lat := round - sp.Start; lat > worst {
				worst = lat
			}
		}
		if allBefore {
			rep.ReliableSuccesses++
			rep.FirstRecvLatencies = append(rep.FirstRecvLatencies, worst)
		}
	}
}

// checkProgress evaluates the (node, phase) progress grid: phases are the
// consecutive t_prog-round windows from round 1.
func checkProgress(d *dualgraph.Dual, tr *sim.Trace, spans map[sim.MsgID]*Span, tprog int, rep *Report) {
	if tprog <= 0 || tr.RoundsRun < tprog {
		return
	}
	numPhases := tr.RoundsRun / tprog

	// spansByNode[v] = v's active spans.
	spansByNode := make(map[int][]*Span)
	for _, sp := range spans {
		spansByNode[sp.Node] = append(spansByNode[sp.Node], sp)
	}
	// activeAll[v][i] = v active throughout phase i (1-based).
	activeAll := make(map[int][]bool)
	for v, list := range spansByNode {
		flags := make([]bool, numPhases+1)
		for _, sp := range list {
			// Unacknowledged spans only count while genuinely active;
			// End is clamped to RoundsRun already.
			for i := 1; i <= numPhases; i++ {
				s, e := (i-1)*tprog+1, i*tprog
				if sp.Start <= s && sp.End >= e {
					flags[i] = true
				}
			}
		}
		activeAll[v] = flags
	}

	// heard[u][i] = u heard some active message in phase i.
	heard := make(map[int][]bool)
	for ev := range tr.Events() {
		if ev.Kind != sim.EvHear {
			continue
		}
		i := (ev.Round-1)/tprog + 1
		if i > numPhases {
			continue
		}
		flags, ok := heard[ev.Node]
		if !ok {
			flags = make([]bool, numPhases+1)
			heard[ev.Node] = flags
		}
		flags[i] = true
	}

	for u := 0; u < d.N(); u++ {
		for i := 1; i <= numPhases; i++ {
			opportunity := false
			for _, v := range d.G.Neighbors(u) {
				if flags, ok := activeAll[int(v)]; ok && flags[i] {
					opportunity = true
					break
				}
			}
			if !opportunity {
				continue
			}
			rep.ProgressOpportunities++
			rep.OppsByNode[u]++
			if flags, ok := heard[u]; ok && flags[i] {
				rep.ProgressSuccesses++
				rep.SuccByNode[u]++
			}
		}
	}
}
