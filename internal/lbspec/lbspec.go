// Package lbspec checks executions against the LB(t_ack, t_prog, ε)
// specification: post-hoc over a complete trace (Check, CheckChurned) or
// online against a live engine (Monitor, see monitor.go).
package lbspec

import (
	"fmt"
	"sort"
	"strings"

	"lbcast/internal/dualgraph"
	"lbcast/internal/sim"
)

// Span is one active-broadcast interval of a node: from the round of the
// bcast input through the round whose end carried the ack output. An
// unacknowledged broadcast at trace end has End = trace.RoundsRun and
// Completed = false. Under churn a MsgID can name several spans — one per
// incarnation of the source — and a span interrupted by a crash or leave is
// Excused: truncated to the last round its node was up and exempted from
// the acknowledgement deadline.
type Span struct {
	Msg       sim.MsgID
	Node      int
	Start     int
	End       int
	Completed bool
	Excused   bool
}

// NodeRound names a lifecycle transition taking effect at the start of one
// round.
type NodeRound struct {
	Round int
	Node  int
}

// Options carries an execution's churn history into CheckChurned. Both
// lists must be in nondecreasing Round order (the canonical churn.Plan
// order). The zero Options means a static execution: every lifecycle
// allowance is disabled and CheckChurned degenerates to Check.
type Options struct {
	// Downs are crash/leave transitions: the node neither transmits nor
	// listens from Round on (the injector silences it in BeforeRound).
	// A down excuses the node's unacknowledged span — unless the ack
	// deadline had already expired while the node was still up, which
	// remains a Timely Acknowledgement violation.
	Downs []NodeRound
	// Restarts are recover/join transitions: a fresh incarnation of the
	// node begins at the start of Round. Because a fresh incarnation's
	// per-source sequence numbers restart, a re-broadcast of an
	// already-seen MsgID is legitimate iff a restart of the broadcaster
	// lies between the previous span's start and the new bcast.
	Restarts []NodeRound
}

// Report is the outcome of checking one trace.
type Report struct {
	// Violations of the deterministic conditions; empty means the trace
	// satisfies Timely Acknowledgement and Validity everywhere.
	Violations []string

	// Broadcasts counts completed broadcasts (bcast with matching ack).
	Broadcasts int
	// ReliableSuccesses counts completed broadcasts whose every reliable
	// neighbor produced the recv output before the ack.
	ReliableSuccesses int

	// ProgressOpportunities counts (node, phase) pairs where some reliable
	// neighbor was active throughout the phase; ProgressSuccesses counts
	// those where the node heard at least one message during the phase.
	ProgressOpportunities int
	ProgressSuccesses     int

	// Per-node accounting for the locality experiments.
	OppsByNode, SuccByNode []int

	// AckLatencies are the observed bcast→ack round counts.
	AckLatencies []int
	// FirstRecvLatencies are, per completed broadcast, the rounds from
	// bcast until the last reliable neighbor's recv (only for reliable
	// successes).
	FirstRecvLatencies []int
}

// ReliabilityRate returns the fraction of completed broadcasts delivered to
// all reliable neighbors before the ack (1 if there were none).
func (r *Report) ReliabilityRate() float64 {
	if r.Broadcasts == 0 {
		return 1
	}
	return float64(r.ReliableSuccesses) / float64(r.Broadcasts)
}

// ProgressRate returns the fraction of progress opportunities that
// succeeded (1 if there were none).
func (r *Report) ProgressRate() float64 {
	if r.ProgressOpportunities == 0 {
		return 1
	}
	return float64(r.ProgressSuccesses) / float64(r.ProgressOpportunities)
}

// Err returns an error summarising deterministic violations, or nil.
func (r *Report) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	show := r.Violations
	const maxShow = 5
	suffix := ""
	if len(show) > maxShow {
		suffix = fmt.Sprintf(" (and %d more)", len(show)-maxShow)
		show = show[:maxShow]
	}
	return fmt.Errorf("lbspec: %d violations: %s%s", len(r.Violations), strings.Join(show, "; "), suffix)
}

// Check verifies the trace of a static (churn-free) execution over the
// given dual graph against LB(tack, tprog, ·).
func Check(d *dualgraph.Dual, tr *sim.Trace, tack, tprog int) *Report {
	return CheckChurned(d, tr, tack, tprog, Options{})
}

// CheckChurned verifies a trace recorded under the churn layer: spans are
// keyed per (node, incarnation) so restarted nodes that reuse MsgIDs are
// not miscounted, downs excuse interrupted spans, and nodes absent during
// a phase generate no progress opportunities. The dual graph is read as it
// stands at call time; executions whose topology was patched mid-run
// (leave/join) are only checkable online — use Monitor, which snapshots
// neighborhoods as it goes.
func CheckChurned(d *dualgraph.Dual, tr *sim.Trace, tack, tprog int, opts Options) *Report {
	rep := &Report{
		OppsByNode: make([]int, d.N()),
		SuccByNode: make([]int, d.N()),
	}

	ci := buildChurnIndex(opts)
	spans := collectSpans(tr, ci, rep)
	checkTimelyAck(tr, spans, tack, rep)
	checkValidityAndReliability(d, tr, spans, ci, rep)
	checkProgress(d, tr, spans, ci, tprog, rep)
	return rep
}

// churnIndex is Options reorganised for per-node queries.
type churnIndex struct {
	downs    map[int][]int
	restarts map[int][]int
}

func buildChurnIndex(opts Options) *churnIndex {
	if len(opts.Downs) == 0 && len(opts.Restarts) == 0 {
		return &churnIndex{}
	}
	ci := &churnIndex{downs: make(map[int][]int), restarts: make(map[int][]int)}
	for _, nr := range opts.Downs {
		ci.downs[nr.Node] = append(ci.downs[nr.Node], nr.Round)
	}
	for _, nr := range opts.Restarts {
		ci.restarts[nr.Node] = append(ci.restarts[nr.Node], nr.Round)
	}
	for _, m := range []map[int][]int{ci.downs, ci.restarts} {
		for _, rs := range m {
			sort.Ints(rs)
		}
	}
	return ci
}

// restartIn reports whether node has a restart r with after < r ≤ by.
func (ci *churnIndex) restartIn(node, after, by int) bool {
	rs := ci.restarts[node]
	i := sort.SearchInts(rs, after+1)
	return i < len(rs) && rs[i] <= by
}

// incarnationAt returns how many restarts of node took effect by round —
// the incarnation a round-t event of the node belongs to.
func (ci *churnIndex) incarnationAt(node, round int) int {
	return sort.SearchInts(ci.restarts[node], round+1)
}

// firstDownAfter returns the node's first down round strictly after start.
func (ci *churnIndex) firstDownAfter(node, start int) (int, bool) {
	ds := ci.downs[node]
	i := sort.SearchInts(ds, start+1)
	if i == len(ds) {
		return 0, false
	}
	return ds[i], true
}

// downOverlaps reports whether the node was down during any round of
// [s, e]: a down at round d covers [d, u−1] where u is the node's first
// restart after d (or forever if it never restarts).
func (ci *churnIndex) downOverlaps(node, s, e int) bool {
	ds := ci.downs[node]
	rs := ci.restarts[node]
	for _, d := range ds {
		if d > e {
			break
		}
		i := sort.SearchInts(rs, d+1)
		if i == len(rs) || rs[i] > s {
			return true
		}
	}
	return false
}

// spanSet indexes the span instances of a trace per MsgID in start order.
type spanSet struct {
	byMsg   map[sim.MsgID][]*Span
	ordered []*Span // bcast order
}

// resolve returns the instance with the greatest Start ≤ round; events
// predating every instance resolve to the first one (and are then flagged
// as outside its active span). Nil means the MsgID was never broadcast.
func (ss *spanSet) resolve(msg sim.MsgID, round int) *Span {
	list := ss.byMsg[msg]
	if len(list) == 0 {
		return nil
	}
	for i := len(list) - 1; i >= 0; i-- {
		if list[i].Start <= round {
			return list[i]
		}
	}
	return list[0]
}

// collectSpans pairs bcast and ack events into span instances, allowing a
// MsgID to recur across incarnations, then excuses spans interrupted by a
// down.
func collectSpans(tr *sim.Trace, ci *churnIndex, rep *Report) *spanSet {
	spans := &spanSet{byMsg: make(map[sim.MsgID][]*Span)}
	for ev := range tr.Events() {
		switch ev.Kind {
		case sim.EvBcast:
			list := spans.byMsg[ev.MsgID]
			if len(list) > 0 && !ci.restartIn(ev.Node, list[len(list)-1].Start, ev.Round) {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("duplicate bcast of %v", ev.MsgID))
				continue
			}
			sp := &Span{Msg: ev.MsgID, Node: ev.Node, Start: ev.Round, End: tr.RoundsRun}
			spans.byMsg[ev.MsgID] = append(list, sp)
			spans.ordered = append(spans.ordered, sp)
		case sim.EvAck:
			list := spans.byMsg[ev.MsgID]
			if len(list) == 0 {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("ack of never-broadcast %v at round %d", ev.MsgID, ev.Round))
				continue
			}
			sp := list[len(list)-1]
			if sp.Completed {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("second ack of %v at round %d", ev.MsgID, ev.Round))
				continue
			}
			if ev.Node != sp.Node {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("ack of %v by node %d, broadcast by %d", ev.MsgID, ev.Node, sp.Node))
			}
			sp.End = ev.Round
			sp.Completed = true
		}
	}
	// A crash or leave truncates the node's in-flight span: it stops
	// transmitting at the down round, so the span's active window ends the
	// round before, and the acknowledgement deadline is excused (timely-ack
	// handling decides whether the deadline had already expired).
	for _, sp := range spans.ordered {
		if sp.Completed {
			continue
		}
		if r, ok := ci.firstDownAfter(sp.Node, sp.Start); ok && r <= tr.RoundsRun {
			sp.Excused = true
			sp.End = r - 1
		}
	}
	return spans
}

// checkTimelyAck enforces the deterministic acknowledgement deadline for
// every broadcast whose deadline lies within the executed rounds.
func checkTimelyAck(tr *sim.Trace, spans *spanSet, tack int, rep *Report) {
	for _, sp := range spans.ordered {
		if sp.Completed {
			rep.Broadcasts++
			lat := sp.End - sp.Start
			rep.AckLatencies = append(rep.AckLatencies, lat)
			if lat > tack {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("ack of %v after %d rounds > t_ack=%d", sp.Msg, lat, tack))
			}
			continue
		}
		if sp.Excused && sp.End+1 <= sp.Start+tack {
			// Went down before the deadline: no ack was owed.
			continue
		}
		if sp.Start+tack <= tr.RoundsRun {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("no ack of %v within t_ack=%d (bcast at %d, ran %d rounds)",
					sp.Msg, tack, sp.Start, tr.RoundsRun))
		}
	}
}

// recvMark is the per-(span, receiver) reception record: the first recv
// round (what reliability consults) and the receiver incarnation of the
// latest recv (what duplicate detection consults — a restarted receiver
// loses its dedup state and legitimately re-delivers an active message).
type recvMark struct {
	round, incarn int
}

// checkValidityAndReliability walks recv events once for both conditions.
func checkValidityAndReliability(d *dualgraph.Dual, tr *sim.Trace, spans *spanSet, ci *churnIndex, rep *Report) {
	// recvRound[sp][node] = reception record of the span instance at node.
	recvRound := make(map[*Span]map[int]recvMark)
	for ev := range tr.Events() {
		if ev.Kind != sim.EvRecv && ev.Kind != sim.EvHear {
			continue
		}
		sp := spans.resolve(ev.MsgID, ev.Round)
		if sp == nil {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("%v of unknown message %v at node %d", ev.Kind, ev.MsgID, ev.Node))
			continue
		}
		// Validity: the broadcaster must be a G′ neighbor actively
		// broadcasting the message in this round.
		if ev.Round < sp.Start || ev.Round > sp.End {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("%v of %v at node %d in round %d outside active span [%d,%d]",
					ev.Kind, ev.MsgID, ev.Node, ev.Round, sp.Start, sp.End))
		}
		if !d.Gp.HasEdge(ev.Node, sp.Node) {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("%v of %v at node %d from non-G′-neighbor %d",
					ev.Kind, ev.MsgID, ev.Node, sp.Node))
		}
		if ev.Kind == sim.EvRecv {
			m, ok := recvRound[sp]
			if !ok {
				m = make(map[int]recvMark)
				recvRound[sp] = m
			}
			incarn := ci.incarnationAt(ev.Node, ev.Round)
			if mark, dup := m[ev.Node]; dup {
				if mark.incarn == incarn {
					rep.Violations = append(rep.Violations,
						fmt.Sprintf("duplicate recv of %v at node %d", ev.MsgID, ev.Node))
				} else {
					mark.incarn = incarn
					m[ev.Node] = mark
				}
			} else {
				m[ev.Node] = recvMark{round: ev.Round, incarn: incarn}
			}
		}
	}

	// Reliability over completed broadcasts.
	for _, sp := range spans.ordered {
		if !sp.Completed {
			continue
		}
		got := recvRound[sp]
		allBefore := true
		worst := 0
		for _, v := range d.G.Neighbors(sp.Node) {
			mark, ok := got[int(v)]
			if !ok || mark.round > sp.End {
				allBefore = false
				break
			}
			if lat := mark.round - sp.Start; lat > worst {
				worst = lat
			}
		}
		if allBefore {
			rep.ReliableSuccesses++
			rep.FirstRecvLatencies = append(rep.FirstRecvLatencies, worst)
		}
	}
}

// checkProgress evaluates the (node, phase) progress grid: phases are the
// consecutive t_prog-round windows from round 1. Nodes down during any part
// of a phase cannot listen and generate no opportunity.
func checkProgress(d *dualgraph.Dual, tr *sim.Trace, spans *spanSet, ci *churnIndex, tprog int, rep *Report) {
	if tprog <= 0 || tr.RoundsRun < tprog {
		return
	}
	numPhases := tr.RoundsRun / tprog

	// spansByNode[v] = v's span instances.
	spansByNode := make(map[int][]*Span)
	for _, sp := range spans.ordered {
		spansByNode[sp.Node] = append(spansByNode[sp.Node], sp)
	}
	// activeAll[v][i] = v active throughout phase i (1-based).
	activeAll := make(map[int][]bool)
	for v, list := range spansByNode {
		flags := make([]bool, numPhases+1)
		for _, sp := range list {
			// Unacknowledged spans only count while genuinely active;
			// End is clamped to RoundsRun already (and to the down round
			// for excused spans).
			for i := 1; i <= numPhases; i++ {
				s, e := (i-1)*tprog+1, i*tprog
				if sp.Start <= s && sp.End >= e {
					flags[i] = true
				}
			}
		}
		activeAll[v] = flags
	}

	// heard[u][i] = u heard some active message in phase i.
	heard := make(map[int][]bool)
	for ev := range tr.Events() {
		if ev.Kind != sim.EvHear {
			continue
		}
		i := (ev.Round-1)/tprog + 1
		if i > numPhases {
			continue
		}
		flags, ok := heard[ev.Node]
		if !ok {
			flags = make([]bool, numPhases+1)
			heard[ev.Node] = flags
		}
		flags[i] = true
	}

	for u := 0; u < d.N(); u++ {
		for i := 1; i <= numPhases; i++ {
			if ci.downOverlaps(u, (i-1)*tprog+1, i*tprog) {
				continue
			}
			opportunity := false
			for _, v := range d.G.Neighbors(u) {
				if flags, ok := activeAll[int(v)]; ok && flags[i] {
					opportunity = true
					break
				}
			}
			if !opportunity {
				continue
			}
			rep.ProgressOpportunities++
			rep.OppsByNode[u]++
			if flags, ok := heard[u]; ok && flags[i] {
				rep.ProgressSuccesses++
				rep.SuccByNode[u]++
			}
		}
	}
}
