// Package lbspec checks executions against the LB(t_ack, t_prog, ε)
// problem specification of Section 4.1:
//
//   - Timely Acknowledgement (deterministic): every bcast(m)_u is followed
//     by exactly one ack(m)_u within t_ack rounds.
//   - Validity (deterministic): every recv(m)_u happens in a round where
//     some G′ neighbor of u is actively broadcasting m.
//   - Reliability (probabilistic): with probability ≥ 1−ε, every reliable
//     neighbor of a broadcaster receives the message before the ack.
//   - Progress (probabilistic): with probability ≥ 1−ε, a node whose
//     reliable neighbor is active throughout a t_prog-round phase receives
//     at least one message during that phase.
//
// The two deterministic conditions must hold with zero violations in every
// trace; the probabilistic ones are estimated as success rates over
// (broadcast) and (node, phase) populations respectively.
package lbspec
