package lbspec

import (
	"testing"

	"lbcast/internal/churn"
	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/geo"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// monitoredBenchEngine assembles the BenchmarkChurnRound-class soak
// configuration — 150-node geometric topology, Poisson crash/recover and
// leave/join churn, fade epochs — but with the real protocol as workload
// (LBAlg + saturating senders), so an attached Monitor does genuine span
// accounting. The monitored variant runs in no-retention mode
// (DiscardConsumed), the steady state of the 10⁵⁺-node soaks.
func monitoredBenchEngine(b *testing.B, monitored bool) *sim.Engine {
	b.Helper()
	d, err := dualgraph.RandomGeometric(150, 6, 6, 1.5, dualgraph.GreyUnreliable, xrand.New(41))
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), d.R, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := churn.Poisson(churn.PoissonConfig{
		N: d.N(), Rounds: 50_000, Seed: 17,
		CrashRate: 0.001, MeanDowntime: 60,
		LeaveRate: 0.0002, MeanAbsence: 150,
	})
	if err != nil {
		b.Fatal(err)
	}
	plan.Fades = []churn.Fade{{Start: 2_000, End: 2_500, Regions: []geo.RegionID{
		geo.RegionOf(d.Emb[10]), geo.RegionOf(d.Emb[70])}}}

	svcs := make([]core.Service, d.N())
	procs := make([]sim.Process, d.N())
	for u := range svcs {
		svcs[u] = core.NewLBAlg(p)
		procs[u] = svcs[u]
	}
	env := core.NewSaturatingEnv(svcs, []int{0, 1, 2, 3})
	tr := &sim.Trace{}

	var inner sim.Environment = env
	var mon *Monitor
	if monitored {
		mon, err = NewMonitor(MonitorConfig{
			Dual: d, Trace: tr, TAck: p.TAckBound(), TProg: p.TProgBound(),
			Inner: env, DiscardConsumed: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		inner = mon
	}
	fade := churn.NewFadeScheduler(sched.NewRandom(0.5, 3), d, plan.Fades)
	cfg := churn.InjectorConfig{
		Plan: plan, Dual: d, Index: geo.BuildGridIndex(d.Emb),
		Policy: dualgraph.GreyUnreliable,
		Restart: func(u int) sim.Process {
			svcs[u] = core.NewLBAlg(p)
			return svcs[u]
		},
		Fade:      fade,
		Inner:     inner,
		OnRestart: func(u int, _ sim.Process) { env.Rearm(u) },
	}
	if monitored {
		cfg.OnTopology = mon.TopologyPatched
		cfg.OnDown = mon.NodeDown
		cfg.OnUp = mon.NodeRestarted
	}
	inj, err := churn.NewInjector(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := inj.Detach(); err != nil {
		b.Fatal(err)
	}
	eng, err := sim.New(sim.Config{
		Dual: d, Procs: procs, Sched: fade, Env: inj, Seed: 8, Trace: tr,
	})
	if err != nil {
		b.Fatal(err)
	}
	inj.Attach(eng)
	// Warm up past the cold start: span pool populated, fades and churn
	// active, trace chunks recycling.
	eng.Run(500)
	return eng
}

// steadyEngine builds the churn-free variant of the soak workload for the
// steady-state allocation guard: without restarts there is no per-event
// protocol-state rebuilding, so any per-round allocation would be the
// monitor's own.
func steadyEngine(tb testing.TB, monitored bool) *sim.Engine {
	tb.Helper()
	d, err := dualgraph.RandomGeometric(150, 6, 6, 1.5, dualgraph.GreyUnreliable, xrand.New(41))
	if err != nil {
		tb.Fatal(err)
	}
	p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), d.R, 0.2)
	if err != nil {
		tb.Fatal(err)
	}
	svcs := make([]core.Service, d.N())
	procs := make([]sim.Process, d.N())
	for u := range svcs {
		svcs[u] = core.NewLBAlg(p)
		procs[u] = svcs[u]
	}
	env := core.NewSaturatingEnv(svcs, []int{0, 1, 2, 3})
	tr := &sim.Trace{}
	var inner sim.Environment = env
	if monitored {
		mon, err := NewMonitor(MonitorConfig{
			Dual: d, Trace: tr, TAck: p.TAckBound(), TProg: p.TProgBound(),
			Inner: env, DiscardConsumed: true,
		})
		if err != nil {
			tb.Fatal(err)
		}
		inner = mon
	}
	eng, err := sim.New(sim.Config{
		Dual: d, Procs: procs, Sched: sched.NewRandom(0.5, 3), Env: inner,
		Seed: 8, Trace: tr,
	})
	if err != nil {
		tb.Fatal(err)
	}
	eng.Run(1_000)
	return eng
}

// TestMonitorSteadyStateAllocs is the acceptance criterion for the online
// monitor's cost model: once warm (span pool populated, per-span reception
// maps grown), a monitored round performs no allocations beyond the
// workload's own — and the workload itself is allocation-free here apart
// from amortized trace-chunk growth (< 0.01/round).
func TestMonitorSteadyStateAllocs(t *testing.T) {
	measure := func(monitored bool) float64 {
		eng := steadyEngine(t, monitored)
		defer eng.Close()
		return testing.AllocsPerRun(400, func() { eng.Step() })
	}
	mon := measure(true)
	un := measure(false)
	t.Logf("allocs/round: monitored %.4f, unmonitored %.4f", mon, un)
	if mon >= 0.5 {
		t.Errorf("monitored steady state allocates %.4f/round, want ~0", mon)
	}
	if mon > un+0.1 {
		t.Errorf("monitor adds %.4f allocs/round over the unmonitored twin", mon-un)
	}
}

// BenchmarkMonitoredRound measures the steady-state per-round cost of the
// churned protocol soak with the online invariant monitor attached. The
// overhead target vs BenchmarkUnmonitoredRound is ≤ 15% with 0 allocs per
// round.
func BenchmarkMonitoredRound(b *testing.B) {
	eng := monitoredBenchEngine(b, true)
	defer eng.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// BenchmarkUnmonitoredRound is the twin without the monitor — the
// denominator of the monitoring-overhead ratio.
func BenchmarkUnmonitoredRound(b *testing.B) {
	eng := monitoredBenchEngine(b, false)
	defer eng.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}
