package lbspec

import (
	"sort"
	"testing"

	"lbcast/internal/churn"
	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/geo"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// replayMonitor drives a monitor round by round over a crafted event list,
// as the engine would: events of round t enter the trace during round t and
// the monitor consumes them in AfterRound(t).
func replayMonitor(t *testing.T, d *dualgraph.Dual, rounds, tack, tprog int, evs []sim.Event) *Monitor {
	t.Helper()
	sorted := append([]sim.Event(nil), evs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Round < sorted[j].Round })
	tr := &sim.Trace{}
	m, err := NewMonitor(MonitorConfig{Dual: d, Trace: tr, TAck: tack, TProg: tprog})
	if err != nil {
		t.Fatal(err)
	}
	k := 0
	for round := 1; round <= rounds; round++ {
		m.BeforeRound(round)
		for k < len(sorted) && sorted[k].Round <= round {
			tr.Record(sorted[k])
			k++
		}
		tr.RoundsRun++
		m.AfterRound(round)
	}
	return m
}

// reportsEquivalent asserts the monitor observed the same verdict and
// statistics as a post-hoc Check report. Latency slices are compared as
// multisets (the two sides order them differently).
func reportsEquivalent(t *testing.T, mon *Monitor, want *Report) {
	t.Helper()
	got := mon.Report()
	if len(got.Violations) != len(want.Violations) {
		t.Errorf("violations: monitor %d, check %d\nmonitor: %v\ncheck: %v",
			len(got.Violations), len(want.Violations), got.Violations, want.Violations)
	}
	if got.Broadcasts != want.Broadcasts || got.ReliableSuccesses != want.ReliableSuccesses {
		t.Errorf("broadcast accounting: monitor %d/%d, check %d/%d",
			got.ReliableSuccesses, got.Broadcasts, want.ReliableSuccesses, want.Broadcasts)
	}
	if got.ProgressOpportunities != want.ProgressOpportunities || got.ProgressSuccesses != want.ProgressSuccesses {
		t.Errorf("progress accounting: monitor %d/%d, check %d/%d",
			got.ProgressSuccesses, got.ProgressOpportunities, want.ProgressSuccesses, want.ProgressOpportunities)
	}
	for u := range want.OppsByNode {
		if got.OppsByNode[u] != want.OppsByNode[u] || got.SuccByNode[u] != want.SuccByNode[u] {
			t.Errorf("node %d progress grid: monitor %d/%d, check %d/%d",
				u, got.SuccByNode[u], got.OppsByNode[u], want.SuccByNode[u], want.OppsByNode[u])
			break
		}
	}
	for _, s := range []struct {
		name      string
		got, want []int
	}{
		{"AckLatencies", got.AckLatencies, want.AckLatencies},
		{"FirstRecvLatencies", got.FirstRecvLatencies, want.FirstRecvLatencies},
	} {
		g := append([]int(nil), s.got...)
		w := append([]int(nil), s.want...)
		sort.Ints(g)
		sort.Ints(w)
		if len(g) != len(w) {
			t.Errorf("%s: monitor %v, check %v", s.name, g, w)
			continue
		}
		for i := range g {
			if g[i] != w[i] {
				t.Errorf("%s: monitor %v, check %v", s.name, g, w)
				break
			}
		}
	}
}

// TestMonitorMatchesCheckOnCraftedTraces replays the adversarial traces of
// the Check unit tests through the monitor and requires the same verdict:
// identical violation counts and statistics on every case.
func TestMonitorMatchesCheckOnCraftedTraces(t *testing.T) {
	d := pathDual(t)
	m := sim.NewMsgID(0, 1)
	m1 := sim.NewMsgID(1, 1)
	cases := []struct {
		name   string
		rounds int
		evs    []sim.Event
	}{
		{"clean", 20, []sim.Event{
			{Round: 1, Node: 0, Kind: sim.EvBcast, MsgID: m},
			{Round: 3, Node: 1, Kind: sim.EvHear, From: 0, MsgID: m},
			{Round: 3, Node: 1, Kind: sim.EvRecv, From: 0, MsgID: m},
			{Round: 5, Node: 0, Kind: sim.EvAck, MsgID: m},
		}},
		{"late ack", 30, []sim.Event{
			{Round: 1, Node: 0, Kind: sim.EvBcast, MsgID: m},
			{Round: 25, Node: 0, Kind: sim.EvAck, MsgID: m},
		}},
		{"missing ack", 30, []sim.Event{
			{Round: 1, Node: 0, Kind: sim.EvBcast, MsgID: m},
		}},
		{"in flight", 5, []sim.Event{
			{Round: 1, Node: 0, Kind: sim.EvBcast, MsgID: m},
		}},
		{"orphan ack", 10, []sim.Event{
			{Round: 2, Node: 0, Kind: sim.EvAck, MsgID: m},
		}},
		{"double ack", 10, []sim.Event{
			{Round: 1, Node: 0, Kind: sim.EvBcast, MsgID: m},
			{Round: 2, Node: 0, Kind: sim.EvAck, MsgID: m},
			{Round: 3, Node: 0, Kind: sim.EvAck, MsgID: m},
		}},
		{"foreign ack", 10, []sim.Event{
			{Round: 1, Node: 0, Kind: sim.EvBcast, MsgID: m},
			{Round: 2, Node: 1, Kind: sim.EvAck, MsgID: m},
		}},
		{"duplicate bcast", 10, []sim.Event{
			{Round: 1, Node: 0, Kind: sim.EvBcast, MsgID: m},
			{Round: 2, Node: 0, Kind: sim.EvBcast, MsgID: m},
		}},
		{"late recv", 20, []sim.Event{
			{Round: 3, Node: 0, Kind: sim.EvBcast, MsgID: m},
			{Round: 8, Node: 0, Kind: sim.EvAck, MsgID: m},
			{Round: 12, Node: 1, Kind: sim.EvRecv, MsgID: m},
		}},
		{"unknown message", 20, []sim.Event{
			{Round: 2, Node: 1, Kind: sim.EvRecv, MsgID: sim.NewMsgID(9, 9)},
		}},
		{"duplicate recv", 20, []sim.Event{
			{Round: 3, Node: 0, Kind: sim.EvBcast, MsgID: m},
			{Round: 4, Node: 1, Kind: sim.EvRecv, MsgID: m},
			{Round: 5, Node: 1, Kind: sim.EvRecv, MsgID: m},
			{Round: 8, Node: 0, Kind: sim.EvAck, MsgID: m},
		}},
		{"reliability full", 20, []sim.Event{
			{Round: 1, Node: 1, Kind: sim.EvBcast, MsgID: m1},
			{Round: 2, Node: 0, Kind: sim.EvRecv, From: 1, MsgID: m1},
			{Round: 3, Node: 2, Kind: sim.EvRecv, From: 1, MsgID: m1},
			{Round: 6, Node: 1, Kind: sim.EvAck, MsgID: m1},
		}},
		{"reliability partial", 20, []sim.Event{
			{Round: 1, Node: 1, Kind: sim.EvBcast, MsgID: m1},
			{Round: 2, Node: 0, Kind: sim.EvRecv, From: 1, MsgID: m1},
			{Round: 6, Node: 1, Kind: sim.EvAck, MsgID: m1},
		}},
		{"progress grid", 15, []sim.Event{
			{Round: 1, Node: 0, Kind: sim.EvBcast, MsgID: m},
			{Round: 4, Node: 1, Kind: sim.EvHear, From: 0, MsgID: m},
			{Round: 4, Node: 1, Kind: sim.EvRecv, From: 0, MsgID: m},
			{Round: 12, Node: 0, Kind: sim.EvAck, MsgID: m},
		}},
		{"ack-round recv counts", 20, []sim.Event{
			// Receiver id above the broadcaster: the ack drains first in
			// the batch and the recv in the same round must still count.
			{Round: 1, Node: 0, Kind: sim.EvBcast, MsgID: m},
			{Round: 5, Node: 0, Kind: sim.EvAck, MsgID: m},
			{Round: 5, Node: 1, Kind: sim.EvRecv, From: 0, MsgID: m},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tack, tprog := 10, 5
			want := Check(d, trace(tc.rounds, tc.evs...), tack, tprog)
			mon := replayMonitor(t, d, tc.rounds, tack, tprog, tc.evs)
			reportsEquivalent(t, mon, want)
		})
	}
}

// monitoredLBAlgRun executes the real protocol with the monitor riding
// along as environment and returns monitor + the dual + engine trace.
func monitoredLBAlgRun(t *testing.T, seed int64, driver sim.Driver, workers int) (*Monitor, *dualgraph.Dual, *sim.Trace, int, int) {
	t.Helper()
	rng := xrand.New(uint64(seed))
	d, err := dualgraph.SingleHopCluster(8, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), 1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]core.Service, d.N())
	simProcs := make([]sim.Process, d.N())
	for u := range procs {
		procs[u] = core.NewLBAlg(p)
		simProcs[u] = procs[u]
	}
	env := core.NewSaturatingEnv(procs, []int{0, 1})
	tr := &sim.Trace{}
	mon, err := NewMonitor(MonitorConfig{
		Dual: d, Trace: tr, TAck: p.TAckBound(), TProg: p.TProgBound(), Inner: env,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(sim.Config{
		Dual: d, Procs: simProcs,
		Sched: sched.Random{P: 0.5, Seed: uint64(seed) + 4},
		Env:   mon, Seed: uint64(seed) + 9,
		Driver: driver, Workers: workers, Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Ack latencies run close to TAckBound (~18 phases on this cluster), so
	// the run must be long enough for spans to actually complete.
	e.Run(20 * p.PhaseLen())
	return mon, d, tr, p.TAckBound(), p.TProgBound()
}

// TestMonitorLockstepLBAlg is the lockstep property test: across seeds and
// drivers, the online monitor and the post-hoc checker must agree on the
// full report of a real protocol execution.
func TestMonitorLockstepLBAlg(t *testing.T) {
	for _, seed := range []int64{3, 21, 77} {
		for _, dr := range []struct {
			name    string
			driver  sim.Driver
			workers int
		}{
			{"sequential", sim.DriverSequential, 0},
			{"pool2", sim.DriverWorkerPool, 2},
		} {
			mon, d, tr, tack, tprog := monitoredLBAlgRun(t, seed, dr.driver, dr.workers)
			want := Check(d, tr, tack, tprog)
			if err := want.Err(); err != nil {
				t.Fatalf("seed %d %s: protocol run not clean: %v", seed, dr.name, err)
			}
			if want.Broadcasts == 0 {
				t.Fatalf("seed %d %s: no broadcasts completed", seed, dr.name)
			}
			reportsEquivalent(t, mon, want)
			if mon.TotalViolations() != 0 {
				t.Errorf("seed %d %s: monitor flagged %d violations on a clean run: %v",
					seed, dr.name, mon.TotalViolations(), mon.Violations())
			}
			_ = dr
		}
	}
}

// TestCheckChurnedRestartReusesMsgID is the regression test for the
// incarnation-aware keying: a restarted node reuses a MsgID, which the
// static checker must flag and the churn-aware checker must accept.
func TestCheckChurnedRestartReusesMsgID(t *testing.T) {
	d := pathDual(t)
	m := sim.NewMsgID(0, 1)
	evs := []sim.Event{
		{Round: 1, Node: 0, Kind: sim.EvBcast, MsgID: m},
		{Round: 2, Node: 1, Kind: sim.EvRecv, From: 0, MsgID: m},
		{Round: 3, Node: 0, Kind: sim.EvAck, MsgID: m},
		// Node 0 crashes at round 5, restarts at round 8, and its fresh
		// incarnation broadcasts m(0,1) again.
		{Round: 9, Node: 0, Kind: sim.EvBcast, MsgID: m},
		{Round: 10, Node: 1, Kind: sim.EvRecv, From: 0, MsgID: m},
		{Round: 11, Node: 0, Kind: sim.EvAck, MsgID: m},
	}
	tr := trace(20, evs...)
	opts := Options{
		Downs:    []NodeRound{{Round: 5, Node: 0}},
		Restarts: []NodeRound{{Round: 8, Node: 0}},
	}

	churned := CheckChurned(d, tr, 10, 0, opts)
	if err := churned.Err(); err != nil {
		t.Fatalf("churn-aware checker rejected a legitimate restart reuse: %v", err)
	}
	if churned.Broadcasts != 2 || churned.ReliableSuccesses != 2 {
		t.Errorf("both incarnations should complete reliably: %d/%d",
			churned.ReliableSuccesses, churned.Broadcasts)
	}

	static := Check(d, tr, 10, 0)
	if static.Err() == nil {
		t.Fatal("static checker accepted a MsgID reuse without restart context")
	}

	// The monitor, fed the same lifecycle transitions, agrees with the
	// churn-aware checker.
	srt := &sim.Trace{}
	mon, err := NewMonitor(MonitorConfig{Dual: d, Trace: srt, TAck: 10})
	if err != nil {
		t.Fatal(err)
	}
	k := 0
	for round := 1; round <= 20; round++ {
		mon.BeforeRound(round)
		if round == 5 {
			mon.NodeDown(5, 0)
		}
		if round == 8 {
			mon.NodeRestarted(8, 0)
		}
		for k < len(evs) && evs[k].Round <= round {
			srt.Record(evs[k])
			k++
		}
		srt.RoundsRun++
		mon.AfterRound(round)
	}
	reportsEquivalent(t, mon, churned)
}

// TestCheckChurnedExcusesInterruptedSpan pins the down-excusal semantics: a
// crash before the ack deadline excuses the span, a crash after the
// deadline does not.
func TestCheckChurnedExcusesInterruptedSpan(t *testing.T) {
	d := pathDual(t)
	m := sim.NewMsgID(0, 1)
	tr := trace(30, sim.Event{Round: 1, Node: 0, Kind: sim.EvBcast, MsgID: m})

	if err := CheckChurned(d, tr, 10, 0, Options{
		Downs: []NodeRound{{Round: 6, Node: 0}},
	}).Err(); err != nil {
		t.Fatalf("crash before the deadline should excuse the span: %v", err)
	}
	if CheckChurned(d, tr, 10, 0, Options{
		Downs: []NodeRound{{Round: 20, Node: 0}},
	}).Err() == nil {
		t.Fatal("deadline expired while the node was up; the later crash must not excuse it")
	}
	if Check(d, tr, 10, 0).Err() == nil {
		t.Fatal("static checker lost the missing-ack violation")
	}
}

// TestMonitorChurnLockstep runs the real protocol under crash/recover
// churn (static topology, so the post-hoc checker remains sound) with the
// monitor wired to the injector's lifecycle hooks, and requires online ≡
// post-hoc agreement — including across drivers. Restarted senders reuse
// MsgIDs here, so this exercises the incarnation keying end to end.
func TestMonitorChurnLockstep(t *testing.T) {
	run := func(driver sim.Driver, workers int) (*Monitor, *Report) {
		d, err := dualgraph.RandomGeometric(40, 6, 6, 1.5, dualgraph.GreyUnreliable, xrand.New(11))
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), 1, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		rounds := 30 * p.PhaseLen() // past TAckBound, so broadcasts complete
		// Deterministic crash/recover schedule: sender 0 restarts early (its
		// fresh incarnation reuses MsgIDs and still completes within the
		// run), and two receivers bounce to exercise receiver-side
		// incarnation dedup and span excusal. Senders 1–3 stay up, so the
		// run is guaranteed to complete broadcasts.
		plan := &churn.Plan{Events: []churn.Event{
			{Round: 50, Kind: churn.Crash, Node: 0},
			{Round: 300, Kind: churn.Recover, Node: 0},
			{Round: 400, Kind: churn.Crash, Node: 10},
			{Round: 600, Kind: churn.Recover, Node: 10},
			{Round: 1000, Kind: churn.Crash, Node: 20},
			{Round: 1400, Kind: churn.Recover, Node: 20},
		}}
		if err := plan.Validate(d.N()); err != nil {
			t.Fatal(err)
		}
		procs := make([]core.Service, d.N())
		simProcs := make([]sim.Process, d.N())
		for u := range procs {
			procs[u] = core.NewLBAlg(p)
			simProcs[u] = procs[u]
		}
		env := core.NewSaturatingEnv(procs, []int{0, 1, 2, 3})
		tr := &sim.Trace{}
		mon, err := NewMonitor(MonitorConfig{
			Dual: d, Trace: tr, TAck: p.TAckBound(), TProg: p.TProgBound(), Inner: env,
		})
		if err != nil {
			t.Fatal(err)
		}
		inj, err := churn.NewInjector(churn.InjectorConfig{
			Plan: plan, Dual: d, Index: geo.BuildGridIndex(d.Emb),
			Policy: dualgraph.GreyUnreliable,
			Restart: func(u int) sim.Process {
				procs[u] = core.NewLBAlg(p)
				simProcs[u] = procs[u]
				return procs[u]
			},
			Inner:     mon,
			OnRestart: func(u int, _ sim.Process) { env.Rearm(u) },
			OnDown:    mon.NodeDown,
			OnUp:      mon.NodeRestarted,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := inj.Detach(); err != nil {
			t.Fatal(err)
		}
		e, err := sim.New(sim.Config{
			Dual: d, Procs: simProcs,
			Sched: sched.Random{P: 0.5, Seed: 31},
			Env:   inj, Seed: 37,
			Driver: driver, Workers: workers, Trace: tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		inj.Attach(e)
		e.Run(rounds)
		if err := inj.Err(); err != nil {
			t.Fatal(err)
		}

		opts := Options{}
		for _, ev := range plan.Events {
			switch ev.Kind {
			case churn.Crash:
				opts.Downs = append(opts.Downs, NodeRound{Round: ev.Round, Node: ev.Node})
			case churn.Recover:
				opts.Restarts = append(opts.Restarts, NodeRound{Round: ev.Round, Node: ev.Node})
			}
		}
		return mon, CheckChurned(d, tr, p.TAckBound(), p.TProgBound(), opts)
	}

	mon, want := run(sim.DriverSequential, 0)
	if want.Broadcasts == 0 {
		t.Fatal("churned run completed no broadcasts; test has no teeth")
	}
	if err := want.Err(); err != nil {
		t.Fatalf("churn-aware checker flagged the LBAlg run: %v", err)
	}
	reportsEquivalent(t, mon, want)

	monPool, wantPool := run(sim.DriverWorkerPool, 4)
	reportsEquivalent(t, monPool, wantPool)
	if got, want := len(monPool.Violations()), len(mon.Violations()); got != want {
		t.Errorf("driver-dependent verdict: pool %d violations, sequential %d", got, want)
	}
}

// TestMonitorDiscardConsumed pins the no-retention mode: the trace keeps
// logical indexing and aggregate counters while chunk storage is released,
// and the monitor's verdict is unchanged.
func TestMonitorDiscardConsumed(t *testing.T) {
	run := func(discard bool) (*Monitor, *sim.Trace, *dualgraph.Dual, int, int) {
		rng := xrand.New(5)
		d, err := dualgraph.SingleHopCluster(10, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), 1, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		procs := make([]core.Service, d.N())
		simProcs := make([]sim.Process, d.N())
		for u := range procs {
			procs[u] = core.NewLBAlg(p)
			simProcs[u] = procs[u]
		}
		env := core.NewSaturatingEnv(procs, []int{0, 1, 2, 3})
		tr := &sim.Trace{}
		mon, err := NewMonitor(MonitorConfig{
			Dual: d, Trace: tr, TAck: p.TAckBound(), TProg: p.TProgBound(),
			Inner: env, DiscardConsumed: discard,
		})
		if err != nil {
			t.Fatal(err)
		}
		e, err := sim.New(sim.Config{
			Dual: d, Procs: simProcs,
			Sched: sched.Random{P: 0.5, Seed: 6},
			Env:   mon, Seed: 7, Trace: tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		e.Run(40 * p.PhaseLen()) // long enough to fill and release a trace chunk
		return mon, tr, d, p.TAckBound(), p.TProgBound()
	}

	monDiscard, trDiscard, _, _, _ := run(true)
	monKeep, trKeep, d, tack, tprog := run(false)

	if trDiscard.Discarded() == 0 {
		t.Fatalf("run too short: no chunk was released (%d events)", trDiscard.Len())
	}
	if trDiscard.Len() != trKeep.Len() || trDiscard.RoundsRun != trKeep.RoundsRun ||
		trDiscard.Deliveries != trKeep.Deliveries {
		t.Fatalf("discarding changed the execution: %d/%d events, %d/%d rounds",
			trDiscard.Len(), trKeep.Len(), trDiscard.RoundsRun, trKeep.RoundsRun)
	}
	want := Check(d, trKeep, tack, tprog)
	reportsEquivalent(t, monDiscard, want)
	reportsEquivalent(t, monKeep, want)

	// The retained suffix stays addressable.
	if first := trDiscard.Discarded(); first < trDiscard.Len() {
		_ = trDiscard.At(first)
	}
}
