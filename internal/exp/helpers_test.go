package exp

import (
	"testing"

	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
)

// scripted transmits DataMsg payloads in fixed rounds, to exercise the
// measurement helpers without full LBAlg machinery.
type scripted struct {
	env *sim.NodeEnv
	tx  map[int]core.Message
}

func (s *scripted) Init(env *sim.NodeEnv) { s.env = env }

func (s *scripted) Transmit(t int) (any, bool) {
	if m, ok := s.tx[t]; ok {
		return core.DataMsg{Msg: m}, true
	}
	return nil, false
}

func (s *scripted) Receive(t, from int, payload any, ok bool) {
	if !ok {
		return
	}
	if dm, isData := payload.(core.DataMsg); isData {
		s.env.Rec.Record(sim.Event{Round: t, Node: s.env.ID, Kind: sim.EvHear, From: from, MsgID: dm.Msg.ID})
	}
}

func twoNodeEngine(t *testing.T, txRounds ...int) *sim.Engine {
	t.Helper()
	d, err := dualgraph.Abstract(2, []dualgraph.Edge{{U: 0, V: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tx := map[int]core.Message{}
	for i, r := range txRounds {
		tx[r] = core.Message{ID: sim.NewMsgID(1, i+1)}
	}
	procs := []sim.Process{&scripted{tx: map[int]core.Message{}}, &scripted{tx: tx}}
	e, err := sim.New(sim.Config{Dual: d, Procs: procs, Sched: sched.Never{}})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestFirstHearRound(t *testing.T) {
	e := twoNodeEngine(t, 5)
	if got := firstHearRound(e, 0, 20); got != 5 {
		t.Errorf("firstHearRound = %d, want 5", got)
	}
}

func TestFirstHearRoundTimesOut(t *testing.T) {
	e := twoNodeEngine(t) // never transmits
	if got := firstHearRound(e, 0, 7); got != 7 {
		t.Errorf("firstHearRound = %d, want budget 7", got)
	}
}

func TestHeardAllRound(t *testing.T) {
	// Three senders deliver to node 0 at rounds 2, 4, 9.
	d, err := dualgraph.Abstract(4, []dualgraph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	procs := []sim.Process{
		&scripted{tx: map[int]core.Message{}},
		&scripted{tx: map[int]core.Message{2: {ID: sim.NewMsgID(1, 1)}}},
		&scripted{tx: map[int]core.Message{4: {ID: sim.NewMsgID(2, 1)}}},
		&scripted{tx: map[int]core.Message{9: {ID: sim.NewMsgID(3, 1)}}},
	}
	e, err := sim.New(sim.Config{Dual: d, Procs: procs, Sched: sched.Never{}})
	if err != nil {
		t.Fatal(err)
	}
	allAt, firstAt := heardAllRound(e, 0, 3, 30)
	if firstAt != 2 {
		t.Errorf("firstAt = %d, want 2", firstAt)
	}
	if allAt != 9 {
		t.Errorf("allAt = %d, want 9", allAt)
	}
}

func TestHeardAllRoundTimesOut(t *testing.T) {
	e := twoNodeEngine(t, 3)
	allAt, firstAt := heardAllRound(e, 0, 2, 12) // only one source exists
	if firstAt != 3 {
		t.Errorf("firstAt = %d, want 3", firstAt)
	}
	if allAt != 12 {
		t.Errorf("allAt = %d, want budget 12", allAt)
	}
}

func TestLemma42BoundMonotone(t *testing.T) {
	p1, err := core.DeriveParams(8, 8, 1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := core.DeriveParams(64, 64, 1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if lemma42Bound(p1) <= lemma42Bound(p2) {
		t.Error("Lemma 4.2 bound should shrink as Δ grows")
	}
	p3, err := core.DeriveParams(8, 8, 2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if lemma42Bound(p1) <= lemma42Bound(p3) {
		t.Error("Lemma 4.2 bound should shrink as r grows")
	}
}

func TestBuildLBNetworkValidation(t *testing.T) {
	d, err := dualgraph.Abstract(2, []dualgraph.Edge{{U: 0, V: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.DeriveParams(2, 2, 1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	net, err := buildLBNetwork(d, p, nil, nil, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.procs) != 2 || len(net.svcs) != 2 {
		t.Errorf("network sizes: %d procs, %d services", len(net.procs), len(net.svcs))
	}
	if net.procs[0].RecordHears {
		t.Error("recordHears=false not applied")
	}
}
