package exp

import (
	"bytes"
	"runtime"
	"testing"
)

// TestRunChurnSmall runs the E-CHURN matrix at CI scale and checks the
// report's structural invariants: the full (rate × contender) grid is
// present, the control point is churn-free, fault load grows with the
// rate, every contender at a rate faces the identical schedule, and the
// whole report is deterministic — including under a different GOMAXPROCS,
// since the matrix runs on the sequential driver.
func TestRunChurnSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-contender churn matrix")
	}
	rep, err := RunChurn(SizeSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "lbcast-churn/v2" {
		t.Fatalf("schema %q", rep.Schema)
	}
	perLoad := make(map[float64][]ChurnRow)
	for _, row := range rep.Rows {
		perLoad[row.Load] = append(perLoad[row.Load], row)
	}
	if len(perLoad) != len(churnLoads) {
		t.Fatalf("%d distinct loads, want %d", len(perLoad), len(churnLoads))
	}
	prevDown := -1.0
	for _, load := range churnLoads {
		rows := perLoad[load]
		if len(rows) != 3 {
			t.Fatalf("load %v has %d rows, want 3 contenders", load, len(rows))
		}
		for _, row := range rows[1:] {
			// Identical schedules: the fault telemetry must match the first
			// contender's exactly.
			if row.Crashes != rows[0].Crashes || row.Leaves != rows[0].Leaves ||
				row.DownFraction != rows[0].DownFraction {
				t.Fatalf("load %v: contender %s saw different fault load than %s",
					load, row.Algorithm, rows[0].Algorithm)
			}
		}
		if load == 0 {
			if rows[0].Crashes != 0 || rows[0].DownFraction != 0 {
				t.Fatalf("control point has faults: %+v", rows[0])
			}
			for _, row := range rows {
				// Without churn every contender must complete broadcasts.
				if row.Acks == 0 {
					t.Fatalf("control point %s: no broadcast ever acked", row.Algorithm)
				}
			}
		} else if rows[0].Crashes == 0 {
			t.Fatalf("load %v produced no crashes over %d rounds", load, rows[0].Rounds)
		}
		if rows[0].DownFraction < prevDown {
			t.Fatalf("down fraction not nondecreasing in load: %v after %v", rows[0].DownFraction, prevDown)
		}
		prevDown = rows[0].DownFraction
		// Under churn the slowest contender may legitimately starve, but
		// the point is only meaningful if someone still completes work.
		anyAcks := false
		for _, row := range rows {
			anyAcks = anyAcks || row.Acks > 0
		}
		if !anyAcks {
			t.Fatalf("load %v: no contender acked a single broadcast", load)
		}
	}

	// Determinism across GOMAXPROCS: the sequential driver must make the
	// report independent of it.
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	again, err := RunChurn(SizeSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := rep.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := again.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("E-CHURN report not byte-identical across GOMAXPROCS settings")
	}
}
