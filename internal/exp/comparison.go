// This file implements the comparison-experiment subsystem named in
// ROADMAP: head-to-head runs of LBAlg against the GHLN contention-management
// baselines (internal/baseline.Contention) and the SINR local broadcast
// layer (internal/sinr), over the same constant-density random-geometric
// topologies as the PR 2 scaling sweep. The matrix itself lives in
// internal/world: policies come from the registry, every selected policy
// runs on the identical topology under one shared round budget (engines run
// concurrently on the fleet pool), and the shared world.Summarize pass
// extracts comparable ack-latency, progress and message-complexity figures
// regardless of which physical layer resolved the rounds.

package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/geo"
	"lbcast/internal/sim"
	"lbcast/internal/sinr"
	"lbcast/internal/stats"
	"lbcast/internal/world"
	"lbcast/internal/xrand"
)

func init() {
	register(Experiment{ID: "E-COMPARE", Claim: "ROADMAP comparison workloads: LBAlg vs SINR local broadcast vs GHLN contention baselines", Run: runComparisonExp})
	register(Experiment{ID: "E-SINR", Claim: "SINR reception model: isolation range and contention collapse", Run: runSINRExp})
}

// ComparisonRow is one (topology, algorithm) measurement of the comparison
// table — the shared world.Row. JSON field names are the stable schema
// documented in docs/EXPERIMENTS.md.
type ComparisonRow = world.Row

// ComparisonReport is the JSON document produced by the comparison runs
// (`lbsim -exp comparison`, `lbbench -sweep -compare`).
type ComparisonReport struct {
	// Schema identifies the document layout; bump on incompatible change.
	Schema string `json:"schema"`
	// Seed is the experiment seed all runs derived from.
	Seed uint64 `json:"seed"`
	// Size is the experiment scale the point counts were picked at.
	Size string `json:"size"`
	// Policies lists the selected policy names in selection order — the
	// order each topology's rows appear in.
	Policies []string `json:"policies"`
	// Rows holds one entry per (topology, algorithm), topologies ascending.
	Rows []ComparisonRow `json:"rows"`
	// Notes records calibration context for human readers.
	Notes []string `json:"notes,omitempty"`
}

// WriteJSON renders the report with stable formatting.
func (r *ComparisonReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// comparisonSizeName maps a Size back to its flag spelling for the report.
func comparisonSizeName(size Size) string {
	switch size {
	case SizeMedium:
		return "medium"
	case SizeFull:
		return "full"
	default:
		return "small"
	}
}

// RunComparison executes the comparison matrix over every registered
// policy with the default worker count. See RunComparisonPolicies.
func RunComparison(size Size, seed uint64) (*ComparisonReport, error) {
	return RunComparisonPolicies(size, seed, nil, 0)
}

// RunComparisonPolicies executes the comparison matrix: for each sweep
// topology (constant-density random geometric, the PR 2 family) every
// selected policy runs the same round budget under a saturating-sender
// environment, and one trace pass per run extracts the
// ack-latency/progress/message-complexity row. The dual-graph policies face
// the oblivious random½ link scheduler; the SINR policies run over the same
// embedding. names selects policies from the world registry (nil means all,
// in registration order); workers bounds how many policy engines run
// concurrently (≤ 0 means GOMAXPROCS) — the report is byte-identical at any
// worker count.
func RunComparisonPolicies(size Size, seed uint64, names []string, workers int) (*ComparisonReport, error) {
	if names == nil {
		names = world.Names()
	}
	policies, err := world.Select(names)
	if err != nil {
		return nil, err
	}
	ns := pick(size, []int{48, 128}, []int{100, 400}, []int{1000, 4000, 10_000})
	// The budget must cover the slowest policy's acknowledgement window
	// (LBAlg's t_ack, tens of thousands of rounds at these Δ); the cap is a
	// safety valve, not the expected binding constraint.
	roundsCap := pick(size, 150_000, 250_000, 500_000)
	const eps = 0.2

	rep := &ComparisonReport{
		Schema:   "lbcast-comparison/v2",
		Seed:     seed,
		Size:     comparisonSizeName(size),
		Policies: names,
		Notes: []string{
			"topologies: constant-density random geometric (PR 2 sweep family), r=1.5, grey-zone links unreliable",
			"dual-graph policies run against the oblivious random½ link scheduler",
			fmt.Sprintf("sinr-local runs over the same embedding with uniform power, α=%v β=%v noise=%v",
				sinr.DefaultParams().Alpha, sinr.DefaultParams().Beta, sinr.DefaultParams().Noise),
			"sinr-pernode repeats the SINR run with a deterministic 2× per-node power spread (P_u ∈ [0.75, 1.5]); its reliability neighbor sets use per-source isolation ranges",
			fmt.Sprintf("ε=%v sizes every policy's acknowledgement window", eps),
		},
	}
	for _, n := range ns {
		rows, err := runComparisonPoint(n, seed, eps, roundsCap, policies, workers)
		if err != nil {
			return nil, fmt.Errorf("exp: comparison n=%d: %w", n, err)
		}
		rep.Rows = append(rep.Rows, rows...)
	}
	return rep, nil
}

// comparisonSpillMinNodeRounds is the n·rounds volume beyond which a
// comparison run spills its trace to disk. Small points (the unit-test
// sizes) keep everything in memory.
const comparisonSpillMinNodeRounds = 1 << 22

// runComparisonPoint runs every selected policy on one topology instance
// through the World harness.
func runComparisonPoint(n int, seed uint64, eps float64, roundsCap int, policies []world.Policy, workers int) ([]ComparisonRow, error) {
	top, err := world.NewSweepTopology(n, seed, eps)
	if err != nil {
		return nil, err
	}
	w, err := world.New(top, policies, workers)
	if err != nil {
		return nil, err
	}
	// One shared round budget per topology: two full ack cycles of the
	// slowest policy, capped so outlier parameterisations stay affordable.
	rounds := w.Window(roundsCap)
	senders := len(w.Senders())

	rows := make([]ComparisonRow, 0, len(policies))
	err = w.Run(world.Hooks{
		Rounds: func(int) int { return rounds },
		Configure: func(i int, p world.Policy, inst *world.Instance, cfg *sim.Config) error {
			svcs := make([]core.Service, n)
			procs := make([]sim.Process, n)
			for u := 0; u < n; u++ {
				svcs[u] = inst.NewService(u)
				procs[u] = svcs[u]
			}
			cfg.Procs = procs
			cfg.Env = core.NewSaturatingEnv(svcs, senderRange(senders))
			cfg.Seed = world.EngineSeed(seed, i)
			inst.Channel(cfg, seed)
			return nil
		},
		Attach: func(i int, p world.Policy, e *sim.Engine) error {
			// Large points spill sealed trace chunks to disk: the n = 4000
			// full-size row runs a ~190k-round budget whose event history
			// would otherwise dominate resident memory. The summary pass
			// below reads the trace once in order, which rehydrates spilled
			// chunks through the one-chunk cache; a spill setup failure just
			// keeps the trace in memory.
			if int64(n)*int64(rounds) >= comparisonSpillMinNodeRounds {
				if err := e.Trace().SpillToDisk(""); err != nil {
					fmt.Fprintf(os.Stderr, "exp: comparison trace spill disabled: %v\n", err)
				}
			}
			return nil
		},
		Finish: func(i int, p world.Policy, inst *world.Instance, e *sim.Engine) error {
			row := world.Summarize(e.Trace(), rounds, inst.Neighbors)
			if err := e.Trace().SpillError(); err != nil {
				fmt.Fprintf(os.Stderr, "exp: comparison trace spill degraded: %v\n", err)
			}
			e.Trace().CloseSpill()
			row.Topology = "sweep-geometric"
			row.N = n
			row.Algorithm = p.Name
			row.Model = p.Model
			row.Senders = senders
			rows = append(rows, row)
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// ComparisonTable renders a report as a stats table for terminal output.
func ComparisonTable(rep *ComparisonReport) *stats.Table {
	tbl := &stats.Table{
		Title: "E-COMPARE: LBAlg vs SINR local broadcast vs contention baselines",
		Columns: []string{"n", "algorithm", "model", "rounds", "acks", "reliability",
			"ack p50", "1st-recv p50", "msgs/ack", "deliv/round", "collision rate"},
		Notes: rep.Notes,
	}
	for _, r := range rep.Rows {
		tbl.AddRow(r.N, r.Algorithm, r.Model, r.Rounds, r.Acks,
			fmt.Sprintf("%.3f", r.Reliability), r.AckP50, r.FirstRecvP50,
			stats.FormatFloat(r.MsgsPerAck), stats.FormatFloat(r.DeliveriesPerRound),
			fmt.Sprintf("%.3f", r.CollisionRate))
	}
	return tbl
}

// runComparisonExp adapts RunComparison to the experiment registry.
func runComparisonExp(size Size, seed uint64) (*Result, error) {
	rep, err := RunComparison(size, seed)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "E-COMPARE",
		Claim:  "ROADMAP comparison workloads (GHLN contention bounds; HHL SINR local broadcast)",
		Tables: []*stats.Table{ComparisonTable(rep)},
	}, nil
}

// runSINRExp checks the SINR model's two defining behaviours on a sweep
// topology: the isolation reception range of a lone transmitter, and the
// collapse of goodput as the transmit probability — and with it the
// aggregate interference — rises.
func runSINRExp(size Size, seed uint64) (*Result, error) {
	n := pick(size, 64, 256, 1024)
	rounds := pick(size, 400, 1000, 4000)
	side := math.Max(4, math.Sqrt(float64(n)/4))
	d, err := dualgraph.RandomGeometric(n, side, side, 1.5, dualgraph.GreyUnreliable, xrand.New(seed))
	if err != nil {
		return nil, err
	}
	params := sinr.DefaultParams()
	model, err := sinr.NewModel(d.Emb, sinr.UniformPower(1), params)
	if err != nil {
		return nil, err
	}

	// Isolation range: with exactly node 0 transmitting, every node inside
	// Range(1) must decode it and every node outside must hear silence.
	out := make([]int32, n)
	model.Resolve(1, []int32{0}, out)
	rangeViolations := 0
	isolationRange := params.Range(1)
	for u := 1; u < n; u++ {
		inRange := geo.Dist(d.Emb[0], d.Emb[u]) <= isolationRange
		if inRange != (out[u] == 0) {
			rangeViolations++
		}
	}

	tbl := &stats.Table{
		Title:   "E-SINR: isolation range and contention collapse (uniform power)",
		Columns: []string{"tx prob", "rounds", "deliveries/round", "collision rate"},
		Notes: []string{
			fmt.Sprintf("n=%d sweep-geometric; α=%v β=%v noise=%v ⇒ isolation range %.3f",
				n, params.Alpha, params.Beta, params.Noise, isolationRange),
			fmt.Sprintf("lone-transmitter range violations: %d (must be 0)", rangeViolations),
		},
	}
	for _, p := range []float64{0.02, 0.05, 0.1, 0.25, 0.5} {
		procs := make([]sim.Process, n)
		for u := range procs {
			procs[u] = &sweepProc{p: p}
		}
		e, err := sim.New(sim.Config{Dual: d, Procs: procs, Reception: model, Seed: seed})
		if err != nil {
			return nil, err
		}
		e.Run(rounds)
		tr := e.Trace()
		colRate := 0.0
		if tr.Deliveries+tr.Collisions > 0 {
			colRate = float64(tr.Collisions) / float64(tr.Deliveries+tr.Collisions)
		}
		tbl.AddRow(p, rounds, stats.FormatFloat(float64(tr.Deliveries)/float64(rounds)),
			fmt.Sprintf("%.3f", colRate))
	}
	if rangeViolations > 0 {
		return nil, fmt.Errorf("E-SINR: %d isolation-range violations", rangeViolations)
	}
	return &Result{ID: "E-SINR", Claim: "SINR reception model sanity", Tables: []*stats.Table{tbl}}, nil
}
