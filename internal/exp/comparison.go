// This file implements the comparison-experiment subsystem named in
// ROADMAP: head-to-head runs of LBAlg against the GHLN contention-management
// baselines (internal/baseline.Contention) and the SINR local broadcast
// layer (internal/sinr), over the same constant-density random-geometric
// topologies as the PR 2 scaling sweep. Every contender implements
// core.Service and records the same bcast/ack/hear/recv events, so one
// trace pass extracts comparable ack-latency, progress and
// message-complexity figures regardless of which physical layer resolved
// the rounds.

package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"slices"

	"lbcast/internal/baseline"
	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/geo"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/sinr"
	"lbcast/internal/stats"
	"lbcast/internal/xrand"
)

func init() {
	register(Experiment{ID: "E-COMPARE", Claim: "ROADMAP comparison workloads: LBAlg vs SINR local broadcast vs GHLN contention baselines", Run: runComparisonExp})
	register(Experiment{ID: "E-SINR", Claim: "SINR reception model: isolation range and contention collapse", Run: runSINRExp})
}

// ComparisonRow is one (topology, algorithm) measurement of the comparison
// table. JSON field names are the stable schema documented in
// docs/EXPERIMENTS.md.
type ComparisonRow struct {
	// Topology identifies the graph family ("sweep-geometric").
	Topology string `json:"topology"`
	// N is the node count of the topology instance.
	N int `json:"n"`
	// Algorithm names the contender: lbalg, contention-uniform,
	// contention-cycling, decay, sinr-local or sinr-pernode.
	Algorithm string `json:"algorithm"`
	// Model is the physical layer the run used: "dualgraph" (scatter over
	// (G, G′) with the random½ link scheduler) or "sinr".
	Model string `json:"model"`
	// Rounds is the executed round budget (identical for every contender
	// on the same topology instance).
	Rounds int `json:"rounds"`
	// Senders is the number of saturated senders driving the run.
	Senders int `json:"senders"`
	// Acks is the number of completed (acknowledged) broadcasts.
	Acks int `json:"acks"`
	// Reliability is the fraction of acknowledged broadcasts whose every
	// neighbor (reliable neighbors under the dual-graph model, nodes
	// within the isolation range under SINR) produced a recv output before
	// the ack — the LB problem's reliability condition made comparable
	// across physical layers.
	Reliability float64 `json:"reliability"`
	// AckP50/AckP95/AckMax summarise bcast→ack latency in rounds.
	AckP50 float64 `json:"ack_p50"`
	AckP95 float64 `json:"ack_p95"`
	AckMax int     `json:"ack_max"`
	// FirstRecvP50 is the median bcast→first-recv latency in rounds over
	// messages that reached at least one listener: the cross-model
	// progress proxy.
	FirstRecvP50 float64 `json:"first_recv_p50"`
	// MsgsPerAck is the message complexity: channel transmissions spent
	// per completed broadcast.
	MsgsPerAck float64 `json:"msgs_per_ack"`
	// DeliveriesPerRound is the channel goodput: successful receptions per
	// round across all listeners.
	DeliveriesPerRound float64 `json:"deliveries_per_round"`
	// CollisionRate is Collisions/(Deliveries+Collisions): the fraction of
	// reception opportunities lost to interference.
	CollisionRate float64 `json:"collision_rate"`
	// Transmissions, Deliveries and Collisions are the raw channel
	// counters backing the ratios.
	Transmissions int `json:"transmissions"`
	Deliveries    int `json:"deliveries"`
	Collisions    int `json:"collisions"`
}

// ComparisonReport is the JSON document produced by the comparison runs
// (`lbsim -exp comparison`, `lbbench -sweep -compare`).
type ComparisonReport struct {
	// Schema identifies the document layout; bump on incompatible change.
	Schema string `json:"schema"`
	// Seed is the experiment seed all runs derived from.
	Seed uint64 `json:"seed"`
	// Size is the experiment scale the point counts were picked at.
	Size string `json:"size"`
	// Rows holds one entry per (topology, algorithm), topologies ascending.
	Rows []ComparisonRow `json:"rows"`
	// Notes records calibration context for human readers.
	Notes []string `json:"notes,omitempty"`
}

// WriteJSON renders the report with stable formatting.
func (r *ComparisonReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// comparisonSizeName maps a Size back to its flag spelling for the report.
func comparisonSizeName(size Size) string {
	switch size {
	case SizeMedium:
		return "medium"
	case SizeFull:
		return "full"
	default:
		return "small"
	}
}

// RunComparison executes the comparison matrix: for each sweep topology
// (constant-density random geometric, the PR 2 family) every contender runs
// the same round budget under a saturating-sender environment, and one
// trace pass per run extracts the ack-latency/progress/message-complexity
// row. The dual-graph contenders face the oblivious random½ link scheduler;
// the SINR contender runs over the same embedding with uniform power and
// DefaultParams.
func RunComparison(size Size, seed uint64) (*ComparisonReport, error) {
	ns := pick(size, []int{48, 128}, []int{100, 400}, []int{1000, 4000, 10_000})
	// The budget must cover the slowest contender's acknowledgement window
	// (LBAlg's t_ack, tens of thousands of rounds at these Δ); the cap is a
	// safety valve, not the expected binding constraint.
	roundsCap := pick(size, 150_000, 250_000, 500_000)
	const eps = 0.2

	rep := &ComparisonReport{
		Schema: "lbcast-comparison/v1",
		Seed:   seed,
		Size:   comparisonSizeName(size),
		Notes: []string{
			"topologies: constant-density random geometric (PR 2 sweep family), r=1.5, grey-zone links unreliable",
			"dual-graph contenders run against the oblivious random½ link scheduler",
			fmt.Sprintf("sinr-local runs over the same embedding with uniform power, α=%v β=%v noise=%v",
				sinr.DefaultParams().Alpha, sinr.DefaultParams().Beta, sinr.DefaultParams().Noise),
			"sinr-pernode repeats the SINR run with a deterministic 2× per-node power spread (P_u ∈ [0.75, 1.5]); its reliability neighbor sets use per-source isolation ranges",
			fmt.Sprintf("ε=%v sizes every contender's acknowledgement window", eps),
		},
	}
	for _, n := range ns {
		rows, err := runComparisonPoint(n, seed, eps, roundsCap)
		if err != nil {
			return nil, fmt.Errorf("exp: comparison n=%d: %w", n, err)
		}
		rep.Rows = append(rep.Rows, rows...)
	}
	return rep, nil
}

// comparisonContender couples an algorithm name with its process factory
// and physical layer.
type comparisonContender struct {
	name      string
	model     string             // "dualgraph" or "sinr"
	reception sim.ReceptionModel // nil for dual-graph contenders
	neighbors func(int) []int32  // reliability neighbor set per source
	ackRounds int                // the contender's acknowledgement window, for the budget
	build     func(u int) core.Service
}

// comparisonSpillMinNodeRounds is the n·rounds volume beyond which a
// comparison run spills its trace to disk. Small points (the unit-test
// sizes) keep everything in memory.
const comparisonSpillMinNodeRounds = 1 << 22

// runComparisonPoint runs every contender on one topology instance.
func runComparisonPoint(n int, seed uint64, eps float64, roundsCap int) ([]ComparisonRow, error) {
	// The PR 2 sweep geometry: constant density ≈ 4 nodes per unit square.
	side := math.Max(4, math.Sqrt(float64(n)/4))
	d, err := dualgraph.RandomGeometric(n, side, side, 1.5, dualgraph.GreyUnreliable, xrand.New(seed))
	if err != nil {
		return nil, err
	}
	delta, deltaPrime := d.Delta(), d.DeltaPrime()
	lbParams, err := core.DeriveParams(delta, deltaPrime, d.R, eps)
	if err != nil {
		return nil, err
	}
	model, err := sinr.NewModel(d.Emb, sinr.UniformPower(1), sinr.DefaultParams())
	if err != nil {
		return nil, err
	}
	// Non-uniform transmit powers for the sinr-pernode contender: a
	// deterministic 2× spread over the same embedding. This exercises the
	// per-cell power totals of the bucketed resolver, which a uniform
	// assignment cannot.
	powers := make(sinr.PerNodePower, n)
	prng := xrand.New(seed).Split(0x9027)
	for u := range powers {
		powers[u] = 0.75 + 0.75*prng.Float64()
	}
	npModel, err := sinr.NewModel(d.Emb, powers, sinr.DefaultParams())
	if err != nil {
		return nil, err
	}

	// Per-model neighbor sets for the reliability metric: reliable (G)
	// neighbors under the dual-graph model, isolation-range neighbors
	// under SINR (per-source ranges when powers differ). Lists are built
	// lazily, once per topology instance.
	dualNeigh := func(src int) []int32 { return d.G.Neighbors(src) }
	var sinrNeighLists [][]int32
	sinrNeigh := func(src int) []int32 {
		if sinrNeighLists == nil {
			sinrNeighLists = isolationNeighbors(d.Emb, model.Params().Range(1))
		}
		return sinrNeighLists[src]
	}
	var pernodeNeighLists [][]int32
	pernodeNeigh := func(src int) []int32 {
		if pernodeNeighLists == nil {
			radii := make([]float64, n)
			for u := range radii {
				radii[u] = npModel.Params().Range(powers[u])
			}
			pernodeNeighLists = isolationNeighborsPerSource(d.Emb, radii)
		}
		return pernodeNeighLists[src]
	}

	contenders := []comparisonContender{
		{"lbalg", "dualgraph", nil, dualNeigh, lbParams.TAckBound(), func(int) core.Service {
			return core.NewLBAlg(lbParams)
		}},
		{"contention-uniform", "dualgraph", nil, dualNeigh, baseline.ContentionAckRounds(deltaPrime, eps), func(int) core.Service {
			return baseline.NewContention(baseline.ContentionParams{
				DeltaPrime: deltaPrime, Strategy: baseline.StrategyUniform, Eps: eps})
		}},
		{"contention-cycling", "dualgraph", nil, dualNeigh, baseline.ContentionAckRounds(deltaPrime, eps), func(int) core.Service {
			return baseline.NewContention(baseline.ContentionParams{
				DeltaPrime: deltaPrime, Strategy: baseline.StrategyCycling, Eps: eps})
		}},
		{"decay", "dualgraph", nil, dualNeigh, baseline.DecayAckRounds(delta, eps), func(int) core.Service {
			return baseline.NewDecay(baseline.DecayParams{Delta: delta, AckRounds: baseline.DecayAckRounds(delta, eps)})
		}},
		{"sinr-local", "sinr", model, sinrNeigh, sinr.LayerAckRounds(deltaPrime, eps), func(int) core.Service {
			return sinr.NewLocalBcast(sinr.LayerParams{Delta: deltaPrime, Eps: eps})
		}},
		{"sinr-pernode", "sinr", npModel, pernodeNeigh, sinr.LayerAckRounds(deltaPrime, eps), func(int) core.Service {
			return sinr.NewLocalBcast(sinr.LayerParams{Delta: deltaPrime, Eps: eps})
		}},
	}

	// One shared round budget per topology: two full ack cycles of the
	// slowest contender, capped so outlier parameterisations stay
	// affordable.
	rounds := 0
	for _, c := range contenders {
		if b := 2*c.ackRounds + 64; b > rounds {
			rounds = b
		}
	}
	if rounds > roundsCap {
		rounds = roundsCap
	}
	senders := 4
	if senders > n/4 {
		senders = max(1, n/4)
	}

	rows := make([]ComparisonRow, 0, len(contenders))
	for ci, c := range contenders {
		svcs := make([]core.Service, n)
		procs := make([]sim.Process, n)
		for u := 0; u < n; u++ {
			svcs[u] = c.build(u)
			procs[u] = svcs[u]
		}
		env := core.NewSaturatingEnv(svcs, senderRange(senders))
		cfg := sim.Config{Dual: d, Procs: procs, Env: env,
			Seed: seed + uint64(ci)*1_000_003}
		if c.reception != nil {
			cfg.Reception = c.reception
		} else {
			cfg.Sched = sched.NewRandom(0.5, seed)
		}
		engine, err := sim.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		// Large points spill sealed trace chunks to disk: the n = 4000
		// full-size row runs a ~190k-round budget whose event history would
		// otherwise dominate resident memory. The summary pass below reads
		// the trace once in order, which rehydrates spilled chunks through
		// the one-chunk cache; a spill setup failure just keeps the trace
		// in memory.
		if int64(n)*int64(rounds) >= comparisonSpillMinNodeRounds {
			if err := engine.Trace().SpillToDisk(""); err != nil {
				fmt.Fprintf(os.Stderr, "exp: comparison trace spill disabled: %v\n", err)
			}
		}
		engine.Run(rounds)
		row := summarizeComparisonRun(engine.Trace(), rounds, c.neighbors)
		if err := engine.Trace().SpillError(); err != nil {
			fmt.Fprintf(os.Stderr, "exp: comparison trace spill degraded: %v\n", err)
		}
		engine.Trace().CloseSpill()
		row.Topology = "sweep-geometric"
		row.N = n
		row.Algorithm = c.name
		row.Model = c.model
		row.Senders = senders
		rows = append(rows, row)
	}
	return rows, nil
}

// summarizeComparisonRun extracts the comparison metrics from one trace in
// a single pass over the events. neigh maps a source node to the neighbor
// set its broadcasts must reach for the reliability metric.
//
// Message ids are tracked per incarnation: a restarted sender (churn's
// Recover/Join) begins a fresh protocol instance whose sequence counter
// restarts, so an id can be re-broadcast later in the trace. Each EvBcast
// closes out the previous incarnation's statistics and starts a new
// window; stray receptions of a prior incarnation's copies (still in
// flight when the id was re-broadcast) are dropped rather than
// mis-attributed.
func summarizeComparisonRun(tr *sim.Trace, rounds int, neigh func(int) []int32) ComparisonRow {
	type msgState struct {
		bcast     int
		firstRecv int // -1 until first reception
		ackRound  int // -1 until acked
		reached   map[int32]struct{}
	}
	states := make(map[sim.MsgID]*msgState)
	var ackLat, recvLat []int
	reliable, acked := 0, 0
	flush := func(id sim.MsgID, s *msgState) {
		if s.firstRecv >= 0 {
			recvLat = append(recvLat, s.firstRecv-s.bcast)
		}
		if s.ackRound >= 0 {
			acked++
			if len(s.reached) == len(neigh(id.Src())) {
				reliable++
			}
		}
	}
	for ev := range tr.Events() {
		switch ev.Kind {
		case sim.EvBcast:
			if s, ok := states[ev.MsgID]; ok {
				flush(ev.MsgID, s)
			}
			states[ev.MsgID] = &msgState{bcast: ev.Round, firstRecv: -1, ackRound: -1}
		case sim.EvAck:
			if s, ok := states[ev.MsgID]; ok && s.ackRound < 0 {
				s.ackRound = ev.Round
				ackLat = append(ackLat, ev.Round-s.bcast)
			}
		case sim.EvRecv:
			s, ok := states[ev.MsgID]
			if !ok || ev.Round < s.bcast {
				continue
			}
			if s.firstRecv < 0 {
				s.firstRecv = ev.Round
			}
			// A reception in the ack round itself still counts toward
			// reliability: the trace drains per-round events in node-id
			// order, so the sender's EvAck can precede a same-round EvRecv
			// without the reception being late. Strictly later rounds do
			// not count.
			if nl := neigh(ev.MsgID.Src()); isNeighbor(nl, int32(ev.Node)) {
				if s.ackRound < 0 || ev.Round <= s.ackRound {
					if s.reached == nil {
						s.reached = make(map[int32]struct{})
					}
					s.reached[int32(ev.Node)] = struct{}{}
				}
			}
		}
	}
	for id, s := range states {
		flush(id, s)
	}
	row := ComparisonRow{
		Rounds:        rounds,
		Acks:          len(ackLat),
		Transmissions: tr.Transmissions,
		Deliveries:    tr.Deliveries,
		Collisions:    tr.Collisions,
	}
	if acked > 0 {
		row.Reliability = float64(reliable) / float64(acked)
	}
	if len(ackLat) > 0 {
		row.AckP50 = stats.QuantileInts(ackLat, 0.5)
		row.AckP95 = stats.QuantileInts(ackLat, 0.95)
		for _, l := range ackLat {
			if l > row.AckMax {
				row.AckMax = l
			}
		}
		row.MsgsPerAck = float64(tr.Transmissions) / float64(len(ackLat))
	}
	if len(recvLat) > 0 {
		row.FirstRecvP50 = stats.QuantileInts(recvLat, 0.5)
	}
	if rounds > 0 {
		row.DeliveriesPerRound = float64(tr.Deliveries) / float64(rounds)
	}
	if tr.Deliveries+tr.Collisions > 0 {
		row.CollisionRate = float64(tr.Collisions) / float64(tr.Deliveries+tr.Collisions)
	}
	return row
}

// ComparisonTable renders a report as a stats table for terminal output.
func ComparisonTable(rep *ComparisonReport) *stats.Table {
	tbl := &stats.Table{
		Title: "E-COMPARE: LBAlg vs SINR local broadcast vs contention baselines",
		Columns: []string{"n", "algorithm", "model", "rounds", "acks", "reliability",
			"ack p50", "1st-recv p50", "msgs/ack", "deliv/round", "collision rate"},
		Notes: rep.Notes,
	}
	for _, r := range rep.Rows {
		tbl.AddRow(r.N, r.Algorithm, r.Model, r.Rounds, r.Acks,
			fmt.Sprintf("%.3f", r.Reliability), r.AckP50, r.FirstRecvP50,
			stats.FormatFloat(r.MsgsPerAck), stats.FormatFloat(r.DeliveriesPerRound),
			fmt.Sprintf("%.3f", r.CollisionRate))
	}
	return tbl
}

// runComparisonExp adapts RunComparison to the experiment registry.
func runComparisonExp(size Size, seed uint64) (*Result, error) {
	rep, err := RunComparison(size, seed)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "E-COMPARE",
		Claim:  "ROADMAP comparison workloads (GHLN contention bounds; HHL SINR local broadcast)",
		Tables: []*stats.Table{ComparisonTable(rep)},
	}, nil
}

// runSINRExp checks the SINR model's two defining behaviours on a sweep
// topology: the isolation reception range of a lone transmitter, and the
// collapse of goodput as the transmit probability — and with it the
// aggregate interference — rises.
func runSINRExp(size Size, seed uint64) (*Result, error) {
	n := pick(size, 64, 256, 1024)
	rounds := pick(size, 400, 1000, 4000)
	side := math.Max(4, math.Sqrt(float64(n)/4))
	d, err := dualgraph.RandomGeometric(n, side, side, 1.5, dualgraph.GreyUnreliable, xrand.New(seed))
	if err != nil {
		return nil, err
	}
	params := sinr.DefaultParams()
	model, err := sinr.NewModel(d.Emb, sinr.UniformPower(1), params)
	if err != nil {
		return nil, err
	}

	// Isolation range: with exactly node 0 transmitting, every node inside
	// Range(1) must decode it and every node outside must hear silence.
	out := make([]int32, n)
	model.Resolve(1, []int32{0}, out)
	rangeViolations := 0
	isolationRange := params.Range(1)
	for u := 1; u < n; u++ {
		inRange := geo.Dist(d.Emb[0], d.Emb[u]) <= isolationRange
		if inRange != (out[u] == 0) {
			rangeViolations++
		}
	}

	tbl := &stats.Table{
		Title:   "E-SINR: isolation range and contention collapse (uniform power)",
		Columns: []string{"tx prob", "rounds", "deliveries/round", "collision rate"},
		Notes: []string{
			fmt.Sprintf("n=%d sweep-geometric; α=%v β=%v noise=%v ⇒ isolation range %.3f",
				n, params.Alpha, params.Beta, params.Noise, isolationRange),
			fmt.Sprintf("lone-transmitter range violations: %d (must be 0)", rangeViolations),
		},
	}
	for _, p := range []float64{0.02, 0.05, 0.1, 0.25, 0.5} {
		procs := make([]sim.Process, n)
		for u := range procs {
			procs[u] = &sweepProc{p: p}
		}
		e, err := sim.New(sim.Config{Dual: d, Procs: procs, Reception: model, Seed: seed})
		if err != nil {
			return nil, err
		}
		e.Run(rounds)
		tr := e.Trace()
		colRate := 0.0
		if tr.Deliveries+tr.Collisions > 0 {
			colRate = float64(tr.Collisions) / float64(tr.Deliveries+tr.Collisions)
		}
		tbl.AddRow(p, rounds, stats.FormatFloat(float64(tr.Deliveries)/float64(rounds)),
			fmt.Sprintf("%.3f", colRate))
	}
	if rangeViolations > 0 {
		return nil, fmt.Errorf("E-SINR: %d isolation-range violations", rangeViolations)
	}
	return &Result{ID: "E-SINR", Claim: "SINR reception model sanity", Tables: []*stats.Table{tbl}}, nil
}

// isNeighbor reports whether v is in the ascending neighbor list.
func isNeighbor(neigh []int32, v int32) bool {
	_, ok := slices.BinarySearch(neigh, v)
	return ok
}

// isolationNeighbors returns, per node, the ascending list of nodes within
// the given distance — the SINR counterpart of reliable adjacency for the
// reliability metric. The dense grid index with the distance-radius stencil
// keeps it O(n · density) rather than all-pairs.
func isolationNeighbors(emb []geo.Point, radius float64) [][]int32 {
	n := len(emb)
	out := make([][]int32, n)
	gi := geo.BuildGridIndex(emb)
	stencil := geo.NeighborStencil(radius)
	for u := 0; u < n; u++ {
		gi.VisitNear(u, stencil, func(v int32) {
			if int(v) != u && geo.Dist(emb[u], emb[int(v)]) <= radius {
				out[u] = append(out[u], v)
			}
		})
		slices.Sort(out[u])
	}
	return out
}

// isolationNeighborsPerSource is the non-uniform-power variant: node u's
// neighbor set is the nodes within radii[u], u's own isolation range. One
// stencil sized for the largest radius serves every source.
func isolationNeighborsPerSource(emb []geo.Point, radii []float64) [][]int32 {
	n := len(emb)
	out := make([][]int32, n)
	gi := geo.BuildGridIndex(emb)
	maxR := 0.0
	for _, r := range radii {
		maxR = math.Max(maxR, r)
	}
	stencil := geo.NeighborStencil(maxR)
	for u := 0; u < n; u++ {
		gi.VisitNear(u, stencil, func(v int32) {
			if int(v) != u && geo.Dist(emb[u], emb[int(v)]) <= radii[u] {
				out[u] = append(out[u], v)
			}
		})
		slices.Sort(out[u])
	}
	return out
}
