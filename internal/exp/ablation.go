package exp

import (
	"fmt"

	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/lbspec"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/stats"
	"lbcast/internal/xrand"
)

func init() {
	register(Experiment{ID: "E-ABL-FREQ", Claim: "§4.2 remark: less frequent seed agreement", Run: runAblationSeedFreq})
	register(Experiment{ID: "E-CONST", Claim: "calibration of practical constants", Run: runConstants})
}

// runAblationSeedFreq implements the Section 4.2 remark: run the seed
// agreement preamble only every k phases (with seeds sized for k phases)
// and reclaim skipped preambles as extra body rounds. The worst-case bounds
// are unchanged; the measurable effect is more progress opportunities per
// wall-clock round.
func runAblationSeedFreq(size Size, seed uint64) (*Result, error) {
	ks := []int{1, 2, 4, 8}
	phasesBudget := pick(size, 6, 12, 24)
	delta := pick(size, 8, 12, 16)
	eps := 0.2

	rng := xrand.New(seed)
	d, err := dualgraph.SingleHopCluster(delta, 1, rng)
	if err != nil {
		return nil, err
	}
	tbl := &stats.Table{
		Title:   "E-ABL-FREQ: seed agreement every k phases (§4.2 remark)",
		Columns: []string{"k", "kappa (bits)", "preamble overhead", "hears per 1000 rounds", "progress rate"},
		Notes: []string{
			"preamble overhead = fraction of rounds spent in seed agreement (Ts/(k·phase))",
			"larger k trades seed length (κ) for more body rounds per wall-clock round",
		},
	}
	for _, k := range ks {
		p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), 1, eps, core.WithSeedEveryKPhases(k))
		if err != nil {
			return nil, err
		}
		net, err := buildLBNetwork(d, p, sched.NewRandom(0.5, seed), func(svcs []core.Service) sim.Environment {
			return core.NewSaturatingEnv(svcs, senderRange(3))
		}, seed+uint64(k), true)
		if err != nil {
			return nil, err
		}
		rounds := phasesBudget * p.PhaseLen()
		net.engine.Run(rounds)
		tr := net.engine.Trace()
		hears := len(tr.ByKind(sim.EvHear))
		rep := lbspec.Check(d, tr, p.TAckBound(), p.TProgBound())
		if err := rep.Err(); err != nil {
			return nil, fmt.Errorf("E-ABL-FREQ k=%d: %w", k, err)
		}
		overhead := float64(p.Ts) / float64(k*p.PhaseLen())
		tbl.AddRow(k, p.Kappa, overhead, 1000*float64(hears)/float64(rounds), rep.ProgressRate())
	}
	return &Result{ID: "E-ABL-FREQ", Claim: "§4.2 seed frequency ablation", Tables: []*stats.Table{tbl}}, nil
}

// runConstants sweeps the practical constants replacing the paper's
// worst-case ones, showing where the guarantees start to hold — the
// justification for the defaults baked into DeriveParams.
func runConstants(size Size, seed uint64) (*Result, error) {
	delta := pick(size, 8, 12, 16)
	phases := pick(size, 4, 8, 16)
	eps := 0.2
	rng := xrand.New(seed)
	d, err := dualgraph.SingleHopCluster(delta, 1, rng)
	if err != nil {
		return nil, err
	}

	progTbl := &stats.Table{
		Title:   "E-CONST(a): progress rate vs the T_prog constant c₁",
		Columns: []string{"c1", "t_prog", "progress rate", "target 1−ε", "meets target"},
		Notes:   []string{fmt.Sprintf("defaults: c₁=%v; ε₁=%v; saturated single-hop cluster Δ=%d", core.DefaultC1, eps, delta)},
	}
	for _, c1 := range []float64{1, 2, 4, 6, 8} {
		p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), 1, eps, core.WithC1(c1))
		if err != nil {
			return nil, err
		}
		net, err := buildLBNetwork(d, p, sched.NewRandom(0.5, seed), func(svcs []core.Service) sim.Environment {
			return core.NewSaturatingEnv(svcs, senderRange(3))
		}, seed+uint64(c1*10), true)
		if err != nil {
			return nil, err
		}
		net.engine.Run(phases * p.PhaseLen())
		rep := lbspec.Check(d, net.engine.Trace(), p.TAckBound(), p.TProgBound())
		if err := rep.Err(); err != nil {
			return nil, fmt.Errorf("E-CONST c1=%v: %w", c1, err)
		}
		rate := rep.ProgressRate()
		progTbl.AddRow(c1, p.TProgBound(), rate, 1-eps, fmt.Sprintf("%v", rate >= 1-eps))
	}

	ackTbl := &stats.Table{
		Title:   "E-CONST(b): reliability vs the T_ack constant",
		Columns: []string{"cAck", "Tack (phases)", "reliability rate", "target 1−ε", "meets target"},
	}
	for _, cAck := range []float64{0.25, 0.5, 1, 2} {
		p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), 1, eps, core.WithCAck(cAck))
		if err != nil {
			return nil, err
		}
		msgs := pick(size, 3, 5, 8)
		sends := make([]core.Send, msgs)
		for i := range sends {
			sends[i] = core.Send{Node: i % delta, Round: 1 + i*p.TAckBound(), Payload: i}
		}
		net, err := buildLBNetwork(d, p, sched.NewRandom(0.5, seed), func(svcs []core.Service) sim.Environment {
			return core.NewSingleShotEnv(svcs, sends)
		}, seed+uint64(cAck*100), true)
		if err != nil {
			return nil, err
		}
		net.engine.Run((msgs + 1) * p.TAckBound())
		rep := lbspec.Check(d, net.engine.Trace(), p.TAckBound(), p.TProgBound())
		if err := rep.Err(); err != nil {
			return nil, fmt.Errorf("E-CONST cAck=%v: %w", cAck, err)
		}
		rate := rep.ReliabilityRate()
		ackTbl.AddRow(cAck, p.Tack, rate, 1-eps, fmt.Sprintf("%v", rate >= 1-eps))
	}
	return &Result{ID: "E-CONST", Claim: "constant calibration", Tables: []*stats.Table{progTbl, ackTbl}}, nil
}
