// This file implements E-LOAD, the open-loop traffic experiment: the layer
// driven as a service under offered load instead of a closed broadcast
// loop. The sweep's independent variable is *utilisation*: offered load is
// expressed as a fraction of each policy's own service capacity (one
// message per node per ack window), so every policy's throughput/latency
// knee appears at the same place on the x-axis and the curves are
// comparable even though the policies' absolute service times differ by
// orders of magnitude. Arrival schedules are compiled from (seed, load)
// alone before any run, from per-node independent streams. Policies come
// from the world registry and their engines run concurrently on the fleet
// pool; each engine is sequential, so one invocation is deterministic
// across GOMAXPROCS and worker settings.

package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"lbcast/internal/core"
	"lbcast/internal/sim"
	"lbcast/internal/stats"
	"lbcast/internal/workload"
	"lbcast/internal/world"
)

func init() {
	register(Experiment{ID: "E-LOAD", Claim: "open-loop service under offered load: utilisation-normalised throughput/latency knee per policy", Run: runLoadExp})
}

// loadDefaultPolicies is the default policy selection of the load matrix.
var loadDefaultPolicies = []string{"lbalg", "contention-uniform", "decay"}

// LoadRow is one (offered load, algorithm) measurement — the shared
// world.LoadRow. JSON field names are the stable schema documented in
// docs/EXPERIMENTS.md.
type LoadRow = world.LoadRow

// ScenarioRow is one preset-scenario run (fastest policy): the named
// workload shapes from internal/workload exercised end to end.
type ScenarioRow struct {
	Scenario string `json:"scenario"`
	Policy   string `json:"queue_policy"`
	Capacity int    `json:"queue_capacity"`
	LoadRow
}

// LoadReport is the JSON document produced by `lbsim -exp load`.
type LoadReport struct {
	// Schema identifies the document layout; bump on incompatible change.
	Schema string `json:"schema"`
	Seed   uint64 `json:"seed"`
	Size   string `json:"size"`
	// Policies lists the selected policy names in selection order.
	Policies []string `json:"policies"`
	// Rows holds one entry per (load, algorithm), loads ascending — each
	// algorithm's knee curve read along its load column.
	Rows []LoadRow `json:"rows"`
	// Scenarios holds the preset-scenario runs.
	Scenarios []ScenarioRow `json:"scenarios,omitempty"`
	Notes     []string      `json:"notes,omitempty"`
}

// WriteJSON renders the report with stable formatting.
func (r *LoadReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// loadLevels is the sweep, in utilisation units: expected arrivals per node
// per ack window of the policy under test. Spanning well below saturation
// (latency ≈ service time), the knee at 1, and deep overload (queues pinned
// at capacity, drops dominating).
var loadLevels = []float64{0.25, 0.5, 1, 2, 4}

// loadQueueCap bounds every node's queue in the sweep rows.
const loadQueueCap = 8

// RunLoad executes the load matrix with the default policy selection and
// worker count. See RunLoadPolicies.
func RunLoad(size Size, seed uint64) (*LoadReport, error) {
	return RunLoadPolicies(size, seed, nil, 0)
}

// RunLoadPolicies executes the load matrix: one constant-density geometric
// topology (the comparison family), and for every (load, policy) pair a
// Poisson arrival plan whose rate is that load in the policy's own
// utilisation units. names selects policies from the world registry (nil
// means the default trio); workers bounds engine concurrency (≤ 0 means
// GOMAXPROCS) — the report is byte-identical at any worker count.
func RunLoadPolicies(size Size, seed uint64, names []string, workers int) (*LoadReport, error) {
	if names == nil {
		names = loadDefaultPolicies
	}
	policies, err := world.Select(names)
	if err != nil {
		return nil, err
	}
	n := pick(size, 48, 100, 250)
	roundsCap := pick(size, 400_000, 900_000, 2_000_000)
	const eps = 0.2

	rep := &LoadReport{
		Schema:   "lbcast-load/v2",
		Seed:     seed,
		Size:     comparisonSizeName(size),
		Policies: names,
		Notes: []string{
			"topology: constant-density random geometric (comparison family), r=1.5, grey-zone links unreliable",
			"load = utilisation: expected arrivals per node per ack window of the row's own policy (1.0 saturates it); same generator seed per load across policies",
			fmt.Sprintf("per-node FIFO queues, capacity %d, drop-newest; ack latency = arrival→ack sojourn (queue wait + service)", loadQueueCap),
			"dual-graph scatter with the oblivious random½ link scheduler; per-policy engines are sequential (GOMAXPROCS-independent output)",
			fmt.Sprintf("ε=%v sizes every policy's acknowledgement window", eps),
			"scenario presets run against the fastest policy so queue dynamics, not raw saturation, dominate",
		},
	}
	top, err := world.NewSweepTopology(n, seed, eps)
	if err != nil {
		return nil, err
	}
	for _, load := range loadLevels {
		rows, err := runLoadPoint(top, seed, load, roundsCap, policies, workers)
		if err != nil {
			return nil, fmt.Errorf("exp: load=%v: %w", load, err)
		}
		rep.Rows = append(rep.Rows, rows...)
	}
	srows, err := runLoadScenarios(top, seed, roundsCap, policies)
	if err != nil {
		return nil, fmt.Errorf("exp: load scenarios: %w", err)
	}
	rep.Scenarios = srows
	return rep, nil
}

// loadMinRounds floors every run's round budget so fast policies still
// accumulate thousands of arrivals for the tail percentiles.
const loadMinRounds = 20_000

// loadRounds sizes a policy's round budget: at least eight of its own
// ack windows (so completions pile up past the knee) and at least
// loadMinRounds, capped by the size budget.
func loadRounds(window, roundsCap int) int {
	return min(roundsCap, max(8*window, loadMinRounds)+64)
}

// runLoadPoint runs every selected policy at one utilisation level through
// the World harness. Each policy's arrival rate is the load divided by its
// own ack window, over a round budget covering several of those windows;
// the generator seed is shared, so policies with equal windows serve
// identical schedules. Plans are compiled before any engine runs.
func runLoadPoint(top *world.Topology, seed uint64, load float64, roundsCap int, policies []world.Policy, workers int) ([]LoadRow, error) {
	w, err := world.New(top, policies, workers)
	if err != nil {
		return nil, err
	}
	n := top.Dual.N()
	plans := make([]*workload.Plan, len(policies))
	for i, inst := range w.Instances {
		rounds := loadRounds(inst.AckWindow, roundsCap)
		plans[i], err = workload.Poisson(workload.PoissonConfig{
			N: n, Rounds: rounds, Rate: load / float64(inst.AckWindow),
			Seed: seed ^ math.Float64bits(load),
		})
		if err != nil {
			return nil, err
		}
	}

	traffics := make([]*workload.Traffic, len(policies))
	rows := make([]LoadRow, 0, len(policies))
	err = w.Run(world.Hooks{
		Rounds: func(i int) int { return plans[i].Rounds },
		Configure: func(i int, p world.Policy, inst *world.Instance, cfg *sim.Config) error {
			engineSeed := world.EngineSeed(seed, i)
			if err := configureLoadRun(cfg, inst, engineSeed, plans[i], loadQueueCap, workload.DropNewest, &traffics[i]); err != nil {
				return err
			}
			return nil
		},
		Finish: func(i int, p world.Policy, inst *world.Instance, e *sim.Engine) error {
			row := world.SummarizeLoad(traffics[i].Metrics(), e.Trace(), plans[i])
			row.Load = load
			row.Rate = load / float64(inst.AckWindow)
			row.Algorithm = p.Name
			rows = append(rows, row)
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// configureLoadRun fills one open-loop engine configuration: the policy's
// services behind per-node queues fed by the plan, the policy's channel
// seeded with the engine seed (the load matrix keys the link scheduler to
// the engine seed, unlike the shared-scheduler comparison matrices), and
// the traffic harness as environment. *traffic receives the harness for the
// summary pass.
func configureLoadRun(cfg *sim.Config, inst *world.Instance, engineSeed uint64, plan *workload.Plan,
	capacity int, policy workload.DropPolicy, traffic **workload.Traffic) error {

	n := plan.N
	svcs := make([]core.Service, n)
	procs := make([]sim.Process, n)
	for u := 0; u < n; u++ {
		svcs[u] = inst.NewService(u)
		procs[u] = svcs[u]
	}
	tr, err := workload.NewTraffic(workload.Config{
		Plan: plan, Services: svcs,
		Capacity: capacity, Policy: policy,
		LatencyCap: plan.Rounds,
	})
	if err != nil {
		return err
	}
	cfg.Procs = procs
	cfg.Env = tr
	cfg.Seed = engineSeed
	inst.Channel(cfg, engineSeed)
	*traffic = tr
	return nil
}

// runLoadScenarios exercises the preset scenarios end to end against the
// fastest selected policy: the presets' absolute rates were shaped for a
// layer that acks within a few hundred rounds, so the fast policy lets
// queue dynamics (bursts building and draining, stale readings superseded)
// show up instead of uniform saturation.
func runLoadScenarios(top *world.Topology, seed uint64, roundsCap int, policies []world.Policy) ([]ScenarioRow, error) {
	w, err := world.New(top, policies, 1)
	if err != nil {
		return nil, err
	}
	fi := 0
	for i, inst := range w.Instances {
		if inst.AckWindow < w.Instances[fi].AckWindow {
			fi = i
		}
	}
	fast, fastInst := w.Policies[fi], w.Instances[fi]
	rounds := loadRounds(fastInst.AckWindow, roundsCap)
	n := top.Dual.N()

	var rows []ScenarioRow
	for _, name := range workload.ScenarioNames() {
		sc, err := workload.BuildScenario(name, n, rounds, seed)
		if err != nil {
			return nil, err
		}
		cfg := sim.Config{Dual: top.Dual}
		var traffic *workload.Traffic
		if err := configureLoadRun(&cfg, fastInst, seed, sc.Plan, sc.Capacity, sc.Policy, &traffic); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		engine, err := sim.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		engine.Run(sc.Plan.Rounds)
		row := world.SummarizeLoad(traffic.Metrics(), engine.Trace(), sc.Plan)
		row.Rate = sc.Plan.OfferedLoad()
		row.Load = row.Rate * float64(fastInst.AckWindow)
		row.Algorithm = fast.Name
		rows = append(rows, ScenarioRow{
			Scenario: name,
			Policy:   sc.Policy.String(),
			Capacity: sc.Capacity,
			LoadRow:  row,
		})
	}
	return rows, nil
}

// LoadTable renders a load report as a stats table for terminal output.
func LoadTable(rep *LoadReport) *stats.Table {
	tbl := &stats.Table{
		Title: "E-LOAD: open-loop offered load vs SLOs (utilisation-normalised per policy)",
		Columns: []string{"load", "algorithm", "rounds", "offered", "dropped",
			"goodput", "ack p50", "ack p99", "ack p999", "mean backlog", "max depth"},
		Notes: rep.Notes,
	}
	for _, r := range rep.Rows {
		tbl.AddRow(fmt.Sprintf("%.2f", r.Load), r.Algorithm, r.Rounds, r.Offered,
			r.Dropped, fmt.Sprintf("%.4f", r.Goodput), r.AckP50, r.AckP99, r.AckP999,
			fmt.Sprintf("%.2f", r.MeanDepth), r.MaxDepth)
	}
	for _, s := range rep.Scenarios {
		tbl.AddRow(s.Scenario, s.Algorithm, s.Rounds, s.Offered,
			s.Dropped, fmt.Sprintf("%.4f", s.Goodput), s.AckP50, s.AckP99, s.AckP999,
			fmt.Sprintf("%.2f", s.MeanDepth), s.MaxDepth)
	}
	return tbl
}

// runLoadExp adapts RunLoad to the experiment registry.
func runLoadExp(size Size, seed uint64) (*Result, error) {
	rep, err := RunLoad(size, seed)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "E-LOAD",
		Claim:  "open-loop traffic: throughput/latency knee and queue behaviour per policy",
		Tables: []*stats.Table{LoadTable(rep)},
	}, nil
}
