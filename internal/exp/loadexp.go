// This file implements E-LOAD, the open-loop traffic experiment: the layer
// driven as a service under offered load instead of a closed broadcast
// loop. The sweep's independent variable is *utilisation*: offered load is
// expressed as a fraction of each policy's own service capacity (one
// message per node per ack window), so every policy's throughput/latency
// knee appears at the same place on the x-axis and the curves are
// comparable even though the policies' absolute service times differ by
// orders of magnitude. Arrival schedules are compiled from (seed, load)
// alone before any run, from per-node independent streams. Runs use the
// sequential driver, so one invocation is deterministic across GOMAXPROCS
// settings.

package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"lbcast/internal/baseline"
	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/stats"
	"lbcast/internal/workload"
	"lbcast/internal/xrand"
)

func init() {
	register(Experiment{ID: "E-LOAD", Claim: "open-loop service under offered load: utilisation-normalised throughput/latency knee per policy", Run: runLoadExp})
}

// LoadRow is one (offered load, algorithm) measurement. JSON field names
// are the stable schema documented in docs/EXPERIMENTS.md (lbcast-load/v1).
type LoadRow struct {
	// Load is the offered intensity in utilisation units: expected
	// arrivals per node per ack window of this row's own policy (1.0 =
	// arrivals exactly match the policy's service capacity). The sweep's
	// independent variable.
	Load float64 `json:"offered_per_window"`
	// Rate is the resulting per-node per-round arrival rate.
	Rate      float64 `json:"arrival_rate"`
	Algorithm string  `json:"algorithm"`
	N         int     `json:"n"`
	Rounds    int     `json:"rounds"`
	// Offered/Accepted/Dropped account every arrival; DropFrac is
	// Dropped/Offered (0 when nothing was offered).
	Offered  int     `json:"offered"`
	Accepted int     `json:"accepted"`
	Dropped  int     `json:"dropped"`
	DropFrac float64 `json:"drop_frac"`
	// Bcasts and Acks count broadcasts entering and completing service;
	// Goodput is acks per round across the network.
	Bcasts  int     `json:"bcasts"`
	Acks    int     `json:"acks"`
	Goodput float64 `json:"goodput_acks_per_round"`
	// AckP50/P99/P999 are the arrival→ack sojourn percentiles in rounds
	// (queue wait + service); SvcP50 the bcast→ack service portion alone.
	AckP50  int `json:"ack_p50"`
	AckP99  int `json:"ack_p99"`
	AckP999 int `json:"ack_p999"`
	SvcP50  int `json:"svc_p50"`
	// MeanDepth is the mean total backlog across the network, MaxDepth the
	// deepest any single queue got; Depth is the sampled time series.
	MeanDepth float64                `json:"mean_queue_depth"`
	MaxDepth  int                    `json:"max_queue_depth"`
	Depth     []workload.DepthSample `json:"queue_depth_series,omitempty"`
	// Engine-level counters for the same run.
	Transmissions int `json:"transmissions"`
	Collisions    int `json:"collisions"`
}

// ScenarioRow is one preset-scenario run (fastest policy): the named
// workload shapes from internal/workload exercised end to end.
type ScenarioRow struct {
	Scenario string `json:"scenario"`
	Policy   string `json:"queue_policy"`
	Capacity int    `json:"queue_capacity"`
	LoadRow
}

// LoadReport is the JSON document produced by `lbsim -exp load`.
type LoadReport struct {
	// Schema identifies the document layout; bump on incompatible change.
	Schema string `json:"schema"`
	Seed   uint64 `json:"seed"`
	Size   string `json:"size"`
	// Rows holds one entry per (load, algorithm), loads ascending — each
	// algorithm's knee curve read along its load column.
	Rows []LoadRow `json:"rows"`
	// Scenarios holds the preset-scenario runs.
	Scenarios []ScenarioRow `json:"scenarios,omitempty"`
	Notes     []string      `json:"notes,omitempty"`
}

// WriteJSON renders the report with stable formatting.
func (r *LoadReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// loadLevels is the sweep, in utilisation units: expected arrivals per node
// per ack window of the policy under test. Spanning well below saturation
// (latency ≈ service time), the knee at 1, and deep overload (queues pinned
// at capacity, drops dominating).
var loadLevels = []float64{0.25, 0.5, 1, 2, 4}

// loadQueueCap bounds every node's queue in the sweep rows.
const loadQueueCap = 8

// RunLoad executes the load matrix: one constant-density geometric
// topology (the comparison family), and for every (load, contender) pair a
// Poisson arrival plan whose rate is that load in the contender's own
// utilisation units.
func RunLoad(size Size, seed uint64) (*LoadReport, error) {
	n := pick(size, 48, 100, 250)
	roundsCap := pick(size, 400_000, 900_000, 2_000_000)
	const eps = 0.2

	rep := &LoadReport{
		Schema: "lbcast-load/v1",
		Seed:   seed,
		Size:   comparisonSizeName(size),
		Notes: []string{
			"topology: constant-density random geometric (comparison family), r=1.5, grey-zone links unreliable",
			"load = utilisation: expected arrivals per node per ack window of the row's own policy (1.0 saturates it); same generator seed per load across contenders",
			fmt.Sprintf("per-node FIFO queues, capacity %d, drop-newest; ack latency = arrival→ack sojourn (queue wait + service)", loadQueueCap),
			"dual-graph scatter with the oblivious random½ link scheduler; sequential driver (GOMAXPROCS-independent)",
			fmt.Sprintf("ε=%v sizes every contender's acknowledgement window", eps),
			"scenario presets run against the fastest policy so queue dynamics, not raw saturation, dominate",
		},
	}
	for _, load := range loadLevels {
		rows, err := runLoadPoint(n, seed, load, eps, roundsCap)
		if err != nil {
			return nil, fmt.Errorf("exp: load=%v: %w", load, err)
		}
		rep.Rows = append(rep.Rows, rows...)
	}
	srows, err := runLoadScenarios(n, seed, eps, roundsCap)
	if err != nil {
		return nil, fmt.Errorf("exp: load scenarios: %w", err)
	}
	rep.Scenarios = srows
	return rep, nil
}

// loadContenders builds the contender set over one topology's parameters.
func loadContenders(delta, deltaPrime int, r, eps float64) ([]comparisonContender, core.Params, error) {
	lbParams, err := core.DeriveParams(delta, deltaPrime, r, eps)
	if err != nil {
		return nil, core.Params{}, err
	}
	return []comparisonContender{
		{"lbalg", "dualgraph", nil, nil, lbParams.TAckBound(), func(int) core.Service {
			return core.NewLBAlg(lbParams)
		}},
		{"contention-uniform", "dualgraph", nil, nil, baseline.ContentionAckRounds(deltaPrime, eps), func(int) core.Service {
			return baseline.NewContention(baseline.ContentionParams{
				DeltaPrime: deltaPrime, Strategy: baseline.StrategyUniform, Eps: eps})
		}},
		{"decay", "dualgraph", nil, nil, baseline.DecayAckRounds(delta, eps), func(int) core.Service {
			return baseline.NewDecay(baseline.DecayParams{Delta: delta, AckRounds: baseline.DecayAckRounds(delta, eps)})
		}},
	}, lbParams, nil
}

// loadGeometry builds the experiment's topology for n nodes.
func loadGeometry(n int, seed uint64) (*dualgraph.Dual, error) {
	side := math.Max(4, math.Sqrt(float64(n)/4))
	return dualgraph.RandomGeometric(n, side, side, 1.5, dualgraph.GreyUnreliable, xrand.New(seed))
}

// loadMinRounds floors every run's round budget so fast policies still
// accumulate thousands of arrivals for the tail percentiles.
const loadMinRounds = 20_000

// loadRounds sizes a contender's round budget: at least eight of its own
// ack windows (so completions pile up past the knee) and at least
// loadMinRounds, capped by the size budget.
func loadRounds(window, roundsCap int) int {
	return min(roundsCap, max(8*window, loadMinRounds)+64)
}

// runLoadPoint runs every contender at one utilisation level. Each
// contender's arrival rate is the load divided by its own ack window, over
// a round budget covering several of those windows; the generator seed is
// shared, so contenders with equal windows serve identical schedules.
func runLoadPoint(n int, seed uint64, load, eps float64, roundsCap int) ([]LoadRow, error) {
	ref, err := loadGeometry(n, seed)
	if err != nil {
		return nil, err
	}
	contenders, _, err := loadContenders(ref.Delta(), ref.DeltaPrime(), ref.R, eps)
	if err != nil {
		return nil, err
	}

	rows := make([]LoadRow, 0, len(contenders))
	for ci, c := range contenders {
		rounds := loadRounds(c.ackRounds, roundsCap)
		rate := load / float64(c.ackRounds)
		plan, err := workload.Poisson(workload.PoissonConfig{
			N: n, Rounds: rounds, Rate: rate, Seed: seed ^ math.Float64bits(load),
		})
		if err != nil {
			return nil, err
		}
		row, err := runLoadRun(ref, seed+uint64(ci)*1_000_003, plan, loadQueueCap, workload.DropNewest, c.build)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		row.Load = load
		row.Rate = rate
		row.Algorithm = c.name
		rows = append(rows, *row)
	}
	return rows, nil
}

// runLoadRun executes one (plan, contender) run and summarises its
// metrics. The dual graph is shared read-only across runs (no churn
// patches it here), so every contender sees the identical world; the
// engine seed varies per contender exactly as in the other matrices.
func runLoadRun(d *dualgraph.Dual, engineSeed uint64, plan *workload.Plan, capacity int,
	policy workload.DropPolicy, build func(int) core.Service) (*LoadRow, error) {

	n := d.N()
	svcs := make([]core.Service, n)
	procs := make([]sim.Process, n)
	for u := 0; u < n; u++ {
		svcs[u] = build(u)
		procs[u] = svcs[u]
	}
	traffic, err := workload.NewTraffic(workload.Config{
		Plan: plan, Services: svcs,
		Capacity: capacity, Policy: policy,
		LatencyCap: plan.Rounds,
	})
	if err != nil {
		return nil, err
	}
	engine, err := sim.New(sim.Config{Dual: d, Procs: procs, Env: traffic,
		Sched: sched.NewRandom(0.5, engineSeed), Seed: engineSeed})
	if err != nil {
		return nil, err
	}
	engine.Run(plan.Rounds)
	row := summarizeLoadRun(traffic.Metrics(), engine.Trace(), plan)
	return &row, nil
}

// summarizeLoadRun folds a run's workload metrics and engine trace into a
// row.
func summarizeLoadRun(m *workload.Metrics, tr *sim.Trace, plan *workload.Plan) LoadRow {
	row := LoadRow{
		N:             plan.N,
		Rounds:        plan.Rounds,
		Offered:       m.Offered,
		Accepted:      m.Accepted,
		Dropped:       m.Dropped,
		Bcasts:        m.Bcasts,
		Acks:          m.Acks,
		AckP50:        m.Sojourn.Quantile(0.50),
		AckP99:        m.Sojourn.Quantile(0.99),
		AckP999:       m.Sojourn.Quantile(0.999),
		SvcP50:        m.Service.Quantile(0.50),
		MaxDepth:      m.DepthMax,
		Depth:         m.Depth,
		Transmissions: tr.Transmissions,
		Collisions:    tr.Collisions,
	}
	if m.Offered > 0 {
		row.DropFrac = float64(m.Dropped) / float64(m.Offered)
	}
	if m.Rounds > 0 {
		row.Goodput = float64(m.Acks) / float64(m.Rounds)
		row.MeanDepth = float64(m.DepthSum) / float64(m.Rounds)
	}
	return row
}

// runLoadScenarios exercises the preset scenarios end to end against the
// fastest contender: the presets' absolute rates were shaped for a layer
// that acks within a few hundred rounds, so the fast policy lets queue
// dynamics (bursts building and draining, stale readings superseded) show
// up instead of uniform saturation.
func runLoadScenarios(n int, seed uint64, eps float64, roundsCap int) ([]ScenarioRow, error) {
	ref, err := loadGeometry(n, seed)
	if err != nil {
		return nil, err
	}
	contenders, _, err := loadContenders(ref.Delta(), ref.DeltaPrime(), ref.R, eps)
	if err != nil {
		return nil, err
	}
	fast := contenders[0]
	for _, c := range contenders[1:] {
		if c.ackRounds < fast.ackRounds {
			fast = c
		}
	}
	rounds := loadRounds(fast.ackRounds, roundsCap)

	var rows []ScenarioRow
	for _, name := range workload.ScenarioNames() {
		sc, err := workload.BuildScenario(name, n, rounds, seed)
		if err != nil {
			return nil, err
		}
		row, err := runLoadRun(ref, seed, sc.Plan, sc.Capacity, sc.Policy, fast.build)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		row.Rate = sc.Plan.OfferedLoad()
		row.Load = row.Rate * float64(fast.ackRounds)
		row.Algorithm = fast.name
		rows = append(rows, ScenarioRow{
			Scenario: name,
			Policy:   sc.Policy.String(),
			Capacity: sc.Capacity,
			LoadRow:  *row,
		})
	}
	return rows, nil
}

// LoadTable renders a load report as a stats table for terminal output.
func LoadTable(rep *LoadReport) *stats.Table {
	tbl := &stats.Table{
		Title: "E-LOAD: open-loop offered load vs SLOs (utilisation-normalised per policy)",
		Columns: []string{"load", "algorithm", "rounds", "offered", "dropped",
			"goodput", "ack p50", "ack p99", "ack p999", "mean backlog", "max depth"},
		Notes: rep.Notes,
	}
	for _, r := range rep.Rows {
		tbl.AddRow(fmt.Sprintf("%.2f", r.Load), r.Algorithm, r.Rounds, r.Offered,
			r.Dropped, fmt.Sprintf("%.4f", r.Goodput), r.AckP50, r.AckP99, r.AckP999,
			fmt.Sprintf("%.2f", r.MeanDepth), r.MaxDepth)
	}
	for _, s := range rep.Scenarios {
		tbl.AddRow(s.Scenario, s.Algorithm, s.Rounds, s.Offered,
			s.Dropped, fmt.Sprintf("%.4f", s.Goodput), s.AckP50, s.AckP99, s.AckP999,
			fmt.Sprintf("%.2f", s.MeanDepth), s.MaxDepth)
	}
	return tbl
}

// runLoadExp adapts RunLoad to the experiment registry.
func runLoadExp(size Size, seed uint64) (*Result, error) {
	rep, err := RunLoad(size, seed)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "E-LOAD",
		Claim:  "open-loop traffic: throughput/latency knee and queue behaviour per policy",
		Tables: []*stats.Table{LoadTable(rep)},
	}, nil
}
