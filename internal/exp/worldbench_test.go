package exp

import (
	"runtime"
	"testing"

	"lbcast/internal/world"
)

// benchWorldComparisonPoint measures one full E-COMPARE topology point —
// all six registered policies on cloned topologies, shared round budget —
// through the World harness at the given worker count. The sequential
// (workers=1) variant is the baseline-gated number; the Parallel variant
// exists to read the fleet speedup off the same workload (compare the two
// in the CI bench log; the gate only pins the sequential one because the
// ratio depends on runner core count).
func benchWorldComparisonPoint(b *testing.B, workers int) {
	policies := world.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := runComparisonPoint(48, 1, 0.2, 2000, policies, workers)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != len(policies) {
			b.Fatalf("%d rows, want %d", len(rows), len(policies))
		}
	}
}

func BenchmarkWorldComparisonPoint(b *testing.B) { benchWorldComparisonPoint(b, 1) }
func BenchmarkWorldComparisonPointParallel(b *testing.B) {
	benchWorldComparisonPoint(b, runtime.GOMAXPROCS(0))
}
