package exp

import (
	"fmt"
	"math"

	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/geo"
	"lbcast/internal/lbspec"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/stats"
	"lbcast/internal/xrand"
)

func init() {
	register(Experiment{ID: "E-LOCAL", Claim: "§1: guarantees independent of network size n", Run: runLocality})
	register(Experiment{ID: "E-REGION", Claim: "Lemma A.1/A.3: region partition bounds", Run: runRegions})
}

// runLocality grows n at fixed local density and shows the per-node
// progress rate and the schedule lengths stay flat — the paper's "true
// locality" claim. A global algorithm (round-robin TDMA) would scale its
// latency with n; LBAlg's t_prog depends only on Δ.
func runLocality(size Size, seed uint64) (*Result, error) {
	ns := pick(size, []int{64, 256}, []int{128, 512, 2048}, []int{250, 1000, 4000, 16000})
	phases := pick(size, 3, 4, 6)
	const density = 12.0 // expected nodes per unit disc; keeps Δ roughly fixed
	eps := 0.25

	tbl := &stats.Table{
		Title:   "E-LOCAL: locality — per-node guarantees vs network size n",
		Columns: []string{"n", "Delta", "t_prog", "progress opportunities", "progress rate", "TDMA frame (global, =n)"},
		Notes: []string{
			"density fixed: Δ stays ~constant while n grows; t_prog and the progress rate must stay flat",
			"the last column is what an id-slotted global TDMA would need — it grows linearly with n",
		},
	}
	rng := xrand.New(seed)
	var xs, ys []float64
	for _, n := range ns {
		side := math.Sqrt(float64(n) * math.Pi / density)
		d, err := dualgraph.RandomGeometric(n, side, side, 1.5, dualgraph.GreyUnreliable, rng)
		if err != nil {
			return nil, err
		}
		p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), 1.5, eps)
		if err != nil {
			return nil, err
		}
		// Saturate a scattered 10% of nodes.
		senders := make([]int, 0, n/10+1)
		for u := 0; u < n; u += 10 {
			senders = append(senders, u)
		}
		net, err := buildLBNetwork(d, p, sched.NewRandom(0.5, seed), func(svcs []core.Service) sim.Environment {
			return core.NewSaturatingEnv(svcs, senders)
		}, seed+uint64(n), true)
		if err != nil {
			return nil, err
		}
		net.engine.Run(phases * p.PhaseLen())
		rep := lbspec.Check(d, net.engine.Trace(), p.TAckBound(), p.TProgBound())
		if err := rep.Err(); err != nil {
			return nil, fmt.Errorf("E-LOCAL n=%d: %w", n, err)
		}
		tbl.AddRow(n, d.Delta(), p.TProgBound(), rep.ProgressOpportunities, rep.ProgressRate(), n)
		xs = append(xs, float64(n))
		ys = append(ys, float64(p.TProgBound()))
	}
	tbl.Notes = append(tbl.Notes, fmt.Sprintf(
		"log–log slope of t_prog vs n: %.3f (theory: ≈0 — no dependence on n)", stats.LogLogSlope(xs, ys)))
	return &Result{ID: "E-LOCAL", Claim: "§1 true locality", Tables: []*stats.Table{tbl}}, nil
}

// runRegions verifies the geometric substrate lemmas on random embeddings:
// the grid partition is f-bounded with f(h) = c₁r²h² (Lemma A.1/A.2) and
// Δ′ ≤ c_r·Δ (Lemma A.3).
func runRegions(size Size, seed uint64) (*Result, error) {
	n := pick(size, 300, 1000, 4000)
	trials := pick(size, 3, 6, 12)
	rs := []float64{1, 1.5, 2, 3}

	tbl := &stats.Table{
		Title:   "E-REGION: region partition bounds (Lemmas A.1–A.3)",
		Columns: []string{"r", "trials", "f-bound violations (h≤4)", "max Δ′/Δ", "c_r bound", "Δ′≤c_rΔ holds"},
		Notes:   []string{fmt.Sprintf("uniform random embeddings, n=%d", n)},
	}
	rng := xrand.New(seed)
	for _, r := range rs {
		violations := 0
		worstRatio := 0.0
		for trial := 0; trial < trials; trial++ {
			d, err := dualgraph.RandomGeometric(n, 12, 12, r, dualgraph.GreyUnreliable, rng)
			if err != nil {
				return nil, err
			}
			idx := geo.BuildGridIndex(d.Emb)
			g := geo.BuildRegionGraph(idx.Regions(), r)
			if ok, _, _, _ := g.CheckFBounded(4); !ok {
				violations++
			}
			if ratio := float64(d.DeltaPrime()) / float64(d.Delta()); ratio > worstRatio {
				worstRatio = ratio
			}
		}
		crBound := geo.FBound(r, 1)
		tbl.AddRow(r, trials, violations, worstRatio, crBound,
			fmt.Sprintf("%v", worstRatio <= crBound))
	}
	return &Result{ID: "E-REGION", Claim: "Lemmas A.1–A.3", Tables: []*stats.Table{tbl}}, nil
}
