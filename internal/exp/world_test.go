package exp

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"testing"

	"lbcast/internal/world"
)

// fingerprintJSON is the fingerprint the golden tables below were captured
// with: FNV-1a 64 over the canonical json.Marshal bytes.
func fingerprintJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestWorldFingerprints pins every E-COMPARE, E-CHURN and E-LOAD row at
// (SizeSmall, seed 1) to the fingerprints captured from the pre-World
// bespoke experiment loops. This is the refactor's acceptance gate: the
// registry + World harness must reproduce the old matrices byte for byte
// (row JSON, hence every metric bit), per row and in aggregate.
func TestWorldFingerprints(t *testing.T) {
	if testing.Short() {
		t.Skip("full small-size matrices")
	}

	comp, err := RunComparison(SizeSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantComp := map[string]string{
		"n=48 lbalg":               "1866535e93eb785c",
		"n=48 contention-uniform":  "46fc478d0ec94def",
		"n=48 contention-cycling":  "df68a70066ea241f",
		"n=48 decay":               "30e95de06123a403",
		"n=48 sinr-local":          "4329212fef9051a7",
		"n=48 sinr-pernode":        "580bcd3418ebed91",
		"n=128 lbalg":              "1f07448580065104",
		"n=128 contention-uniform": "1b242d79265d0ceb",
		"n=128 contention-cycling": "3249fb148e8c179e",
		"n=128 decay":              "ab65919e11a4cf1f",
		"n=128 sinr-local":         "ff584b11822a48d2",
		"n=128 sinr-pernode":       "9063ba604be88f1e",
	}
	if len(comp.Rows) != len(wantComp) {
		t.Fatalf("E-COMPARE: %d rows, want %d", len(comp.Rows), len(wantComp))
	}
	for _, r := range comp.Rows {
		key := fmt.Sprintf("n=%d %s", r.N, r.Algorithm)
		if got := fingerprintJSON(t, r); got != wantComp[key] {
			t.Errorf("E-COMPARE %s: fingerprint %s, want %s", key, got, wantComp[key])
		}
	}
	if got, want := fingerprintJSON(t, comp.Rows), "a424028f96be84d6"; got != want {
		t.Errorf("E-COMPARE aggregate fingerprint %s, want %s", got, want)
	}

	ch, err := RunChurn(SizeSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantChurn := map[string]string{
		"load=0 lbalg":                 "6c7aee880352f60d",
		"load=0 contention-uniform":    "8b00721d11a3f285",
		"load=0 decay":                 "ec26c607fd316673",
		"load=0.25 lbalg":              "79de304b0dfba597",
		"load=0.25 contention-uniform": "c3988dbcc11b6b89",
		"load=0.25 decay":              "a4e18b4ec76c1a22",
		"load=1 lbalg":                 "b61d7cfd49a880c1",
		"load=1 contention-uniform":    "7bf40ae68b79174a",
		"load=1 decay":                 "265a43c3a6914915",
		"load=4 lbalg":                 "4fac2c7183a87011",
		"load=4 contention-uniform":    "1a8041393717fb0a",
		"load=4 decay":                 "62917f8166ed4363",
	}
	if len(ch.Rows) != len(wantChurn) {
		t.Fatalf("E-CHURN: %d rows, want %d", len(ch.Rows), len(wantChurn))
	}
	for _, r := range ch.Rows {
		key := fmt.Sprintf("load=%v %s", r.Load, r.Algorithm)
		if got := fingerprintJSON(t, r); got != wantChurn[key] {
			t.Errorf("E-CHURN %s: fingerprint %s, want %s", key, got, wantChurn[key])
		}
	}
	if got, want := fingerprintJSON(t, ch.Rows), "5afa88df5fbdadf6"; got != want {
		t.Errorf("E-CHURN aggregate fingerprint %s, want %s", got, want)
	}

	ld, err := RunLoad(SizeSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantLoad := map[string]string{
		"load=0.25 lbalg":              "e2b8abde0d5fffec",
		"load=0.25 contention-uniform": "8da684841a5af99d",
		"load=0.25 decay":              "3bcd7e304fc67947",
		"load=0.5 lbalg":               "a7a8875b1cac9eb4",
		"load=0.5 contention-uniform":  "6510974f53ddee4c",
		"load=0.5 decay":               "f94d17dbe9d1f5e2",
		"load=1 lbalg":                 "2681d8b1fd73f550",
		"load=1 contention-uniform":    "e34bc24e739abe09",
		"load=1 decay":                 "d8ea8604ae7eed1a",
		"load=2 lbalg":                 "72cb79936358d1cc",
		"load=2 contention-uniform":    "7374e335d045b96c",
		"load=2 decay":                 "ccabbaea8fe1909b",
		"load=4 lbalg":                 "465b03bc011aedb0",
		"load=4 contention-uniform":    "6744dac7fca3270b",
		"load=4 decay":                 "09cd13aebe75d92b",
	}
	if len(ld.Rows) != len(wantLoad) {
		t.Fatalf("E-LOAD: %d rows, want %d", len(ld.Rows), len(wantLoad))
	}
	for _, r := range ld.Rows {
		key := fmt.Sprintf("load=%v %s", r.Load, r.Algorithm)
		if got := fingerprintJSON(t, r); got != wantLoad[key] {
			t.Errorf("E-LOAD %s: fingerprint %s, want %s", key, got, wantLoad[key])
		}
	}
	if got, want := fingerprintJSON(t, ld.Rows), "f20e0a9076cfefac"; got != want {
		t.Errorf("E-LOAD rows aggregate fingerprint %s, want %s", got, want)
	}
	if got, want := fingerprintJSON(t, ld.Scenarios), "c91ebccaec0950f1"; got != want {
		t.Errorf("E-LOAD scenarios aggregate fingerprint %s, want %s", got, want)
	}
}

// TestWorldConcurrentIdentity checks the World harness's scheduling
// independence: the same comparison point run with one worker and with
// several produces byte-identical rows. Runs under -race in the multicore
// CI job, which also makes it the cross-policy shared-state check (any
// mutable state shared between concurrently running policy engines is a
// reported race).
func TestWorldConcurrentIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a comparison point twice")
	}
	policies, err := world.Select(world.Names())
	if err != nil {
		t.Fatal(err)
	}
	churnPolicies, err := world.Select(churnDefaultPolicies)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []byte {
		rows, err := runComparisonPoint(32, 11, 0.2, 600, policies, workers)
		if err != nil {
			t.Fatal(err)
		}
		crows, err := runChurnPoint(32, 11, 1, 0.2, 600, churnPolicies, workers)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(struct {
			Comparison []ComparisonRow
			Churn      []ChurnRow
		}{rows, crows})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	seq := run(1)
	for _, workers := range []int{2, 4} {
		if conc := run(workers); string(conc) != string(seq) {
			t.Fatalf("rows at workers=%d differ from sequential run", workers)
		}
	}
}
