// Package exp is the benchmark harness: one experiment per quantitative
// claim of the paper, plus the comparison and scaling workloads, all
// catalogued with their invocations and output schemas in
// docs/EXPERIMENTS.md. Each experiment runs seeded Monte-Carlo trials on
// the simulator and renders tables (and, for the comparison and sweep
// runs, machine-readable JSON). cmd/lbbench drives the registry; the root
// bench_test.go wraps each experiment in a testing.B benchmark.
package exp
