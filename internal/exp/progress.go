package exp

import (
	"fmt"
	"math"

	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/lbspec"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/stats"
	"lbcast/internal/xrand"
)

func init() {
	register(Experiment{ID: "E-PROG", Claim: "Theorem 4.1: progress within t_prog w.p. ≥ 1−ε", Run: runProgress})
	register(Experiment{ID: "E-ACK", Claim: "Theorem 4.1: reliability + t_ack", Run: runAck})
	register(Experiment{ID: "E-RECV-PROB", Claim: "Lemma 4.2: per-round reception probability", Run: runRecvProb})
	register(Experiment{ID: "E-DET", Claim: "§4.1 deterministic conditions", Run: runDeterministic})
}

// runProgress sweeps Δ on single-hop clusters with saturated senders and
// measures the per-(node, phase) progress success rate against 1−ε₁, plus
// the scaling of t_prog itself.
func runProgress(size Size, seed uint64) (*Result, error) {
	deltas := pick(size, []int{4, 8}, []int{4, 8, 16}, []int{4, 8, 16, 32})
	phases := pick(size, 4, 8, 16)
	eps := 0.2

	tbl := &stats.Table{
		Title:   "E-PROG: progress per phase on saturated single-hop clusters (Theorem 4.1)",
		Columns: []string{"Delta", "t_prog (rounds)", "opportunities", "successes", "rate", "target 1−ε", "95% CI low"},
		Notes: []string{
			fmt.Sprintf("ε₁=%v; three saturated senders per cluster; oblivious random scheduler p=½", eps),
		},
	}
	var xs, ys []float64
	rng := xrand.New(seed)
	for _, delta := range deltas {
		d, err := dualgraph.SingleHopCluster(delta, 1, rng)
		if err != nil {
			return nil, err
		}
		p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), 1, eps)
		if err != nil {
			return nil, err
		}
		senders := 3
		if senders > delta-1 {
			senders = delta - 1
		}
		net, err := buildLBNetwork(d, p, sched.NewRandom(0.5, seed), func(svcs []core.Service) sim.Environment {
			return core.NewSaturatingEnv(svcs, senderRange(senders))
		}, seed+uint64(delta), true)
		if err != nil {
			return nil, err
		}
		net.engine.Run(phases * p.PhaseLen())
		rep := lbspec.Check(d, net.engine.Trace(), p.TAckBound(), p.TProgBound())
		if err := rep.Err(); err != nil {
			return nil, fmt.Errorf("E-PROG Δ=%d: %w", delta, err)
		}
		lo, _ := stats.WilsonCI(rep.ProgressSuccesses, rep.ProgressOpportunities, 1.96)
		tbl.AddRow(delta, p.TProgBound(), rep.ProgressOpportunities, rep.ProgressSuccesses,
			rep.ProgressRate(), 1-eps, lo)
		xs = append(xs, float64(p.LogDelta))
		ys = append(ys, float64(p.TProgBound()))
	}
	tbl.Notes = append(tbl.Notes, fmt.Sprintf(
		"log–log slope of t_prog vs logΔ: %.3f (theory ≈ 1: t_prog = O(logΔ·log(log⁴Δ/ε)))",
		stats.LogLogSlope(xs, ys)))
	return &Result{ID: "E-PROG", Claim: "Theorem 4.1 progress", Tables: []*stats.Table{tbl}}, nil
}

// runAck measures reliability (all reliable neighbors recv before ack) and
// acknowledgement latency across Δ, against t_ack = O(Δ·log(Δ/ε)·…).
func runAck(size Size, seed uint64) (*Result, error) {
	deltas := pick(size, []int{4, 8}, []int{4, 8, 16}, []int{4, 8, 16, 32})
	messages := pick(size, 3, 6, 12)
	eps := 0.2

	tbl := &stats.Table{
		Title:   "E-ACK: reliability and acknowledgement latency (Theorem 4.1)",
		Columns: []string{"Delta", "t_ack (bound)", "broadcasts", "reliable", "rate", "target 1−ε", "mean ack rounds", "max ack rounds"},
		Notes: []string{
			fmt.Sprintf("ε₁=%v; sequential single-shot broadcasts on single-hop clusters; random scheduler p=½", eps),
			"timely acknowledgement is deterministic: max ack rounds must stay ≤ t_ack",
		},
	}
	var xs, ys []float64
	rng := xrand.New(seed)
	for _, delta := range deltas {
		d, err := dualgraph.SingleHopCluster(delta, 1, rng)
		if err != nil {
			return nil, err
		}
		p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), 1, eps)
		if err != nil {
			return nil, err
		}
		sends := make([]core.Send, messages)
		for i := range sends {
			// Back-to-back broadcasts from rotating senders; the env defers
			// any send that lands while its node is still active.
			sends[i] = core.Send{Node: i % delta, Round: 1 + i*p.TAckBound(), Payload: i}
		}
		net, err := buildLBNetwork(d, p, sched.NewRandom(0.5, seed), func(svcs []core.Service) sim.Environment {
			return core.NewSingleShotEnv(svcs, sends)
		}, seed+uint64(delta)*13, true)
		if err != nil {
			return nil, err
		}
		net.engine.Run((messages + 1) * p.TAckBound())
		rep := lbspec.Check(d, net.engine.Trace(), p.TAckBound(), p.TProgBound())
		if err := rep.Err(); err != nil {
			return nil, fmt.Errorf("E-ACK Δ=%d: %w", delta, err)
		}
		var ackSummary stats.Summary
		for _, l := range rep.AckLatencies {
			ackSummary.AddInt(l)
		}
		tbl.AddRow(delta, p.TAckBound(), rep.Broadcasts, rep.ReliableSuccesses,
			rep.ReliabilityRate(), 1-eps, ackSummary.Mean(), ackSummary.Max())
		xs = append(xs, float64(delta))
		ys = append(ys, float64(p.TAckBound()))
	}
	tbl.Notes = append(tbl.Notes, fmt.Sprintf(
		"log–log slope of t_ack vs Δ: %.3f (theory: above 1 by the polylog factor — t_ack = O(Δ·log(Δ/ε)·logΔ·…))",
		stats.LogLogSlope(xs, ys)))
	return &Result{ID: "E-ACK", Claim: "Theorem 4.1 reliability/t_ack", Tables: []*stats.Table{tbl}}, nil
}

// runRecvProb estimates the per-body-round reception probability p_u at a
// saturated receiver and the per-sender share p_{u,v}, against the
// Lemma 4.2 bounds.
func runRecvProb(size Size, seed uint64) (*Result, error) {
	delta := pick(size, 8, 16, 32)
	phases := pick(size, 12, 48, 96)
	eps := 0.2

	rng := xrand.New(seed)
	d, err := dualgraph.SingleHopCluster(delta, 1, rng)
	if err != nil {
		return nil, err
	}
	p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), 1, eps)
	if err != nil {
		return nil, err
	}
	receiver := delta - 1
	senders := senderRange(delta - 1)
	net, err := buildLBNetwork(d, p, sched.NewRandom(0.5, seed), func(svcs []core.Service) sim.Environment {
		return core.NewSaturatingEnv(svcs, senders)
	}, seed, true)
	if err != nil {
		return nil, err
	}
	net.engine.Run(phases * p.PhaseLen())

	hears := 0
	bySender := make(map[int]int)
	for _, ev := range net.engine.Trace().ByKind(sim.EvHear) {
		if ev.Node == receiver {
			hears++
			bySender[ev.From]++
		}
	}
	bodyRounds := phases * p.Tprog
	pu := float64(hears) / float64(bodyRounds)
	puBound := lemma42Bound(p)

	tbl := &stats.Table{
		Title:   "E-RECV-PROB: per-body-round reception probability (Lemma 4.2)",
		Columns: []string{"quantity", "measured", "theory bound", "satisfied"},
		Notes: []string{
			fmt.Sprintf("single-hop cluster Δ=%d, %d saturated senders, receiver node %d, %d body rounds",
				delta, len(senders), receiver, bodyRounds),
		},
	}
	tbl.AddRow("p_u (any reception)", pu, fmt.Sprintf("≥ %.4f", puBound), fmt.Sprintf("%v", pu >= puBound))
	// p_{u,v} ≥ p_u/Δ′ holds per sender v. The empirical per-sender rate is
	// a noisy estimate (tens of receptions per sender), so the check is
	// statistical: a sender violates the bound only if its Wilson interval
	// lies entirely below p_u/Δ′.
	puvBound := pu / float64(p.DeltaPrime)
	minShare, meanShare := 1.0, 0.0
	violators := 0
	for _, v := range senders {
		share := float64(bySender[v]) / float64(bodyRounds)
		meanShare += share / float64(len(senders))
		if share < minShare {
			minShare = share
		}
		if _, hi := stats.WilsonCI(bySender[v], bodyRounds, 1.96); hi < puvBound {
			violators++
		}
	}
	tbl.AddRow("mean_v p_{u,v}", meanShare, fmt.Sprintf("≥ p_u/Δ′ = %.5f", puvBound),
		fmt.Sprintf("%v", meanShare >= puvBound))
	tbl.AddRow("min_v p_{u,v} (noisy)", minShare, "informational", "–")
	tbl.AddRow("senders with CI below p_u/Δ′", violators, "0", fmt.Sprintf("%v", violators == 0))
	return &Result{ID: "E-RECV-PROB", Claim: "Lemma 4.2", Tables: []*stats.Table{tbl}}, nil
}

// lemma42Bound evaluates c₂/(r²·log(1/ε₂)·logΔ) with the calibrated c₂.
func lemma42Bound(p core.Params) float64 {
	const c2 = 0.05 // calibrated practical constant for Lemma 4.2's c₂
	return c2 / (p.R * p.R * math.Log2(1/p.Eps2) * float64(p.LogDelta))
}

// runDeterministic runs every workload family and requires zero violations
// of Timely Acknowledgement and Validity.
func runDeterministic(size Size, seed uint64) (*Result, error) {
	phases := pick(size, 3, 6, 10)
	rng := xrand.New(seed)

	type workload struct {
		name  string
		build func() (*dualgraph.Dual, error)
		sch   sim.LinkScheduler
	}
	workloads := []workload{
		{"cluster/never", func() (*dualgraph.Dual, error) { return dualgraph.SingleHopCluster(8, 1, rng) }, sched.Never{}},
		{"cluster/always", func() (*dualgraph.Dual, error) { return dualgraph.SingleHopCluster(8, 1, rng) }, sched.Always{}},
		{"two-tier/random", func() (*dualgraph.Dual, error) { return dualgraph.TwoTierClusters(3, 4, 2, rng) }, sched.NewRandom(0.5, seed)},
		{"line/periodic", func() (*dualgraph.Dual, error) { return dualgraph.Line(12, 1, 1.5, rng) }, sched.Periodic{Period: 7, OnRounds: 3}},
		{"geometric/antidecay", func() (*dualgraph.Dual, error) {
			return dualgraph.RandomGeometric(60, 4, 4, 1.5, dualgraph.GreyUnreliable, rng)
		}, sched.AntiDecay{CycleLen: 4}},
	}
	tbl := &stats.Table{
		Title:   "E-DET: deterministic conditions (Timely Ack, Validity) across workloads",
		Columns: []string{"workload", "rounds", "events", "violations"},
		Notes:   []string{"every row must report 0 violations in every execution (§4.1 deterministic conditions)"},
	}
	for _, w := range workloads {
		d, err := w.build()
		if err != nil {
			return nil, err
		}
		p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), 1, 0.25)
		if err != nil {
			return nil, err
		}
		net, err := buildLBNetwork(d, p, w.sch, func(svcs []core.Service) sim.Environment {
			return core.NewSaturatingEnv(svcs, senderRange(min(3, d.N())))
		}, seed, true)
		if err != nil {
			return nil, err
		}
		net.engine.Run(phases * p.PhaseLen())
		rep := lbspec.Check(d, net.engine.Trace(), p.TAckBound(), p.TProgBound())
		tbl.AddRow(w.name, net.engine.Round(), net.engine.Trace().Len(), len(rep.Violations))
		if err := rep.Err(); err != nil {
			return nil, fmt.Errorf("E-DET %s: %w", w.name, err)
		}
	}
	return &Result{ID: "E-DET", Claim: "§4.1 deterministic conditions", Tables: []*stats.Table{tbl}}, nil
}
