package exp

import (
	"fmt"

	"lbcast/internal/baseline"
	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/seedagree"
	"lbcast/internal/sim"
	"lbcast/internal/stats"
	"lbcast/internal/xrand"
)

func init() {
	register(Experiment{ID: "E-ADV", Claim: "§1: fixed schedules are thwarted by an oblivious adversary; LBAlg is not", Run: runAdversarial})
	register(Experiment{ID: "E-LOWER", Claim: "§1: progress needs Ω(logΔ), ack needs Ω(Δ)", Run: runLowerBounds})
	register(Experiment{ID: "E-ADAPT", Claim: "[11]: adaptive schedulers kill progress", Run: runAdaptive})
}

// decayFirstHear builds a StarWithDecoys network where node 1 (reliable
// neighbor of the target 0) and every decoy run Decay saturated, and
// returns the round at which the target first hears anything.
func decayFirstHear(d *dualgraph.Dual, s sim.LinkScheduler, seed uint64, maxRounds int) (int, error) {
	procs := make([]core.Service, d.N())
	simProcs := make([]sim.Process, d.N())
	for u := range procs {
		procs[u] = baseline.NewDecay(baseline.DecayParams{Delta: d.DeltaPrime(), AckRounds: maxRounds + 1})
		simProcs[u] = procs[u]
	}
	env := core.NewSaturatingEnv(procs, senderRange(d.N())[1:])
	e, err := sim.New(sim.Config{Dual: d, Procs: simProcs, Sched: s, Env: env, Seed: seed})
	if err != nil {
		return 0, err
	}
	return firstHearRound(e, 0, maxRounds), nil
}

// lbFirstHear is the LBAlg counterpart of decayFirstHear.
func lbFirstHear(d *dualgraph.Dual, s sim.LinkScheduler, seed uint64, maxRounds int) (int, error) {
	p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), 1, 0.2)
	if err != nil {
		return 0, err
	}
	net, err := buildLBNetwork(d, p, s, func(svcs []core.Service) sim.Environment {
		return core.NewSaturatingEnv(svcs, senderRange(d.N())[1:])
	}, seed, true)
	if err != nil {
		return 0, err
	}
	return firstHearRound(net.engine, 0, maxRounds), nil
}

// runAdversarial reproduces the introduction's separation: under the
// anti-Decay oblivious schedule, Decay's progress collapses while LBAlg's
// permuted schedules keep it polylogarithmic.
func runAdversarial(size Size, seed uint64) (*Result, error) {
	decoys := pick(size, []int{16, 64}, []int{16, 64, 256}, []int{16, 64, 256, 1024})
	trials := pick(size, 3, 6, 12)
	maxRounds := pick(size, 20000, 60000, 200000)

	tbl := &stats.Table{
		Title:   "E-ADV: first-reception latency at the target under benign vs anti-Decay oblivious scheduling",
		Columns: []string{"decoys", "algorithm", "scheduler", "mean rounds", "max rounds"},
		Notes: []string{
			"StarWithDecoys: target 0, one reliable sender, unreliable decoy senders; all senders saturated",
			"the adversary uses the leak-minimising split against Decay's fixed cycle (the §1 construction)",
			"shape to reproduce: Decay's anti-decay latency grows ~linearly in decoy count (slope ≈ 1); LBAlg's stays polylog (slope ≈ 0)",
		},
	}
	slopes := map[[2]string][]float64{}
	var ks []float64
	for _, k := range decoys {
		d, err := dualgraph.StarWithDecoys(k)
		if err != nil {
			return nil, err
		}
		cycle := seedagree.Log2Ceil(d.DeltaPrime())
		tuned := sched.TunedAntiDecay(k+1, cycle)
		cases := []struct {
			alg   string
			sch   sim.LinkScheduler
			run   func(*dualgraph.Dual, sim.LinkScheduler, uint64, int) (int, error)
			label string
		}{
			{"decay", sched.Never{}, decayFirstHear, "benign"},
			{"decay", tuned, decayFirstHear, "anti-decay"},
			{"lbalg", sched.Never{}, lbFirstHear, "benign"},
			{"lbalg", tuned, lbFirstHear, "anti-decay"},
		}
		ks = append(ks, float64(k))
		for _, c := range cases {
			var sum stats.Summary
			for trial := 0; trial < trials; trial++ {
				lat, err := c.run(d, c.sch, seed+uint64(trial)*31+uint64(k), maxRounds)
				if err != nil {
					return nil, err
				}
				sum.AddInt(lat)
			}
			tbl.AddRow(k, c.alg, c.label, sum.Mean(), sum.Max())
			key := [2]string{c.alg, c.label}
			slopes[key] = append(slopes[key], sum.Mean())
		}
	}
	for _, key := range [][2]string{{"decay", "anti-decay"}, {"lbalg", "anti-decay"}} {
		tbl.Notes = append(tbl.Notes, fmt.Sprintf(
			"log–log slope of %s/%s latency vs decoys: %.2f",
			key[0], key[1], stats.LogLogSlope(ks, slopes[key])))
	}
	return &Result{ID: "E-ADV", Claim: "§1 adversarial separation", Tables: []*stats.Table{tbl}}, nil
}

// runLowerBounds illustrates the two optimality arguments from the paper's
// results discussion: symmetry breaking costs Ω(logΔ) rounds of progress
// even without unreliable links, and a receiver with Δ broadcasting
// neighbors cannot collect all messages in fewer than Δ rounds.
func runLowerBounds(size Size, seed uint64) (*Result, error) {
	deltas := pick(size, []int{4, 8, 16}, []int{4, 8, 16, 32}, []int{8, 16, 32, 64})
	trials := pick(size, 4, 8, 16)
	rng := xrand.New(seed)

	progTbl := &stats.Table{
		Title:   "E-LOWER(a): progress latency grows with logΔ (symmetry breaking)",
		Columns: []string{"Delta", "mean first-hear rounds", "max"},
		Notes:   []string{"single-hop clique, all nodes but the receiver saturated, no unreliable links"},
	}
	ackTbl := &stats.Table{
		Title:   "E-LOWER(b): collecting Δ distinct messages takes ≥ Δ rounds",
		Columns: []string{"Delta", "mean rounds to hear all", "ratio to Δ", "≥ Δ"},
		Notes:   []string{"a receiver hears at most one message per round, so Δ is a hard floor"},
	}
	var xs, ys []float64
	for _, delta := range deltas {
		d, err := dualgraph.SingleHopCluster(delta+1, 1, rng)
		if err != nil {
			return nil, err
		}
		p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), 1, 0.2)
		if err != nil {
			return nil, err
		}
		var first stats.Summary
		var all stats.Summary
		for trial := 0; trial < trials; trial++ {
			net, err := buildLBNetwork(d, p, sched.Never{}, func(svcs []core.Service) sim.Environment {
				return core.NewSaturatingEnv(svcs, senderRange(delta))
			}, seed+uint64(trial)*101+uint64(delta), true)
			if err != nil {
				return nil, err
			}
			receiver := delta // last node
			maxRounds := 40 * p.PhaseLen()
			heardAll, firstAt := heardAllRound(net.engine, receiver, delta, maxRounds)
			first.AddInt(firstAt)
			all.AddInt(heardAll)
		}
		progTbl.AddRow(delta, first.Mean(), first.Max())
		ackTbl.AddRow(delta, all.Mean(), all.Mean()/float64(delta),
			fmt.Sprintf("%v", all.Min() >= float64(delta)))
		xs = append(xs, float64(delta))
		ys = append(ys, first.Mean())
	}
	progTbl.Notes = append(progTbl.Notes, fmt.Sprintf(
		"log–log slope of first-hear latency vs Δ: %.3f (≪ 1 expected: latency is polylog in Δ)",
		stats.LogLogSlope(xs, ys)))
	return &Result{ID: "E-LOWER", Claim: "§1 near-optimality", Tables: []*stats.Table{progTbl, ackTbl}}, nil
}

// heardAllRound steps the engine until the receiver has heard `want`
// distinct sources, returning (that round, round of first hear).
func heardAllRound(e *sim.Engine, receiver, want, maxRounds int) (allAt, firstAt int) {
	seen := 0
	sources := make(map[int]struct{}, want)
	firstAt = maxRounds
	for r := 0; r < maxRounds; r++ {
		e.Step()
		tr := e.Trace()
		for ; seen < tr.Len(); seen++ {
			ev := tr.At(seen)
			if ev.Kind != sim.EvHear || ev.Node != receiver {
				continue
			}
			if firstAt == maxRounds {
				firstAt = ev.Round
			}
			sources[ev.MsgID.Src()] = struct{}{}
			if len(sources) == want {
				return ev.Round, firstAt
			}
		}
	}
	return maxRounds, firstAt
}

// runAdaptive contrasts the oblivious guarantee with the adaptive
// impossibility of [11]: the same workload, with the scheduler upgraded to
// see current-round transmissions, suppresses progress almost entirely.
func runAdaptive(size Size, seed uint64) (*Result, error) {
	decoys := pick(size, 8, 16, 32)
	trials := pick(size, 3, 6, 10)
	budgetPhases := pick(size, 10, 20, 40)

	d, err := dualgraph.StarWithDecoys(decoys)
	if err != nil {
		return nil, err
	}
	p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), 1, 0.2)
	if err != nil {
		return nil, err
	}
	maxRounds := budgetPhases * p.PhaseLen()

	run := func(adaptive bool, seed uint64) (int, error) {
		var s sim.LinkScheduler = sched.NewRandom(0.5, seed)
		if adaptive {
			a, err := sched.NewAdaptive(d, 0)
			if err != nil {
				return 0, err
			}
			s = a
		}
		// Node 1 runs LBAlg saturated toward target 0; decoys chatter.
		procs := make([]sim.Process, d.N())
		lb0, lb1 := core.NewLBAlg(p), core.NewLBAlg(p)
		procs[0], procs[1] = lb0, lb1
		for u := 2; u < d.N(); u++ {
			procs[u] = &baseline.Chatter{P: 0.5}
		}
		env := core.NewSaturatingEnv([]core.Service{lb0, lb1}, []int{1})
		e, err := sim.New(sim.Config{Dual: d, Procs: procs, Sched: s, Env: env, Seed: seed})
		if err != nil {
			return 0, err
		}
		return firstHearRound(e, 0, maxRounds), nil
	}

	tbl := &stats.Table{
		Title:   "E-ADAPT: oblivious vs adaptive link scheduler (impossibility of [11])",
		Columns: []string{"scheduler", "trials", "mean first-hear rounds", "starved (hit budget)"},
		Notes: []string{
			fmt.Sprintf("StarWithDecoys(%d): LBAlg sender saturated; decoys chatter at p=½; budget %d rounds", decoys, maxRounds),
			"the adaptive adversary sees each round's transmitters before choosing the topology — explicitly outside the model",
		},
	}
	for _, adaptive := range []bool{false, true} {
		var sum stats.Summary
		starved := 0
		for trial := 0; trial < trials; trial++ {
			lat, err := run(adaptive, seed+uint64(trial)*977)
			if err != nil {
				return nil, err
			}
			sum.AddInt(lat)
			if lat >= maxRounds {
				starved++
			}
		}
		name := "oblivious random½"
		if adaptive {
			name = "adaptive"
		}
		tbl.AddRow(name, trials, sum.Mean(), starved)
	}
	return &Result{ID: "E-ADAPT", Claim: "[11] adaptive impossibility", Tables: []*stats.Table{tbl}}, nil
}
