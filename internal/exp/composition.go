package exp

import (
	"fmt"

	"lbcast/internal/amac"
	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/stats"
	"lbcast/internal/xrand"
)

func init() {
	register(Experiment{ID: "E-MMB", Claim: "multi-message broadcast over the layer ([9,10] composition)", Run: runMMB})
	register(Experiment{ID: "E-CONSENSUS", Claim: "consensus over the layer ([20] composition)", Run: runConsensusExp})
}

// newLayerNet builds LBAlg adapters over a dual graph, returning the layers
// and the processes (engine construction is left to the caller so the
// environment can be wired first).
func newLayerNet(d *dualgraph.Dual, eps float64) ([]amac.Layer, []sim.Process, core.Params, error) {
	p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), max(1, d.R), eps)
	if err != nil {
		return nil, nil, core.Params{}, err
	}
	plan := core.NewPhasePlan(p)
	layers := make([]amac.Layer, d.N())
	procs := make([]sim.Process, d.N())
	for u := 0; u < d.N(); u++ {
		alg := core.NewLBAlgWithPlan(plan)
		alg.RecordHears = false
		layers[u] = amac.NewAdapter(alg, amac.FromLBParams(p))
		procs[u] = alg
	}
	return layers, procs, p, nil
}

// runMMB measures multi-message broadcast: k concurrent floods from
// scattered sources on a cluster tree, the workload of the paper's
// companion results [9, 10] that motivated porting the abstract MAC layer
// to dual graphs.
func runMMB(size Size, seed uint64) (*Result, error) {
	ks := pick(size, []int{1, 2}, []int{1, 2, 4}, []int{1, 2, 4, 8})
	clusters := pick(size, 3, 4, 6)
	perCluster := pick(size, 3, 4, 5)
	trials := pick(size, 2, 3, 6)

	tbl := &stats.Table{
		Title:   "E-MMB: k concurrent multi-hop floods (multi-message broadcast)",
		Columns: []string{"k messages", "mean completion (rounds)", "completion/((D+k)·f_ack)", "all complete"},
		Notes: []string{
			fmt.Sprintf("random cluster tree, %d clusters × %d nodes, all trunk links unreliable (random½ schedule)", clusters, perCluster),
			"the MMB results over the abstract MAC layer [9,10] bound completion by O((D+k)·f_ack); the normalised column must stay below 1 (the bound holds, with slack at small k where floods never wait for acks)",
		},
	}
	rng := xrand.New(seed)
	for _, k := range ks {
		var completion, normalised stats.Summary
		completedAll := 0
		for trial := 0; trial < trials; trial++ {
			d, err := dualgraph.RandomClusterTree(clusters, perCluster, 2, rng)
			if err != nil {
				return nil, err
			}
			diam, _ := d.Gp.Diameter()
			layers, procs, p, err := newLayerNet(d, 0.25)
			if err != nil {
				return nil, err
			}
			flood := amac.NewFlood(layers)
			e, err := sim.New(sim.Config{Dual: d, Procs: procs,
				Sched: sched.NewRandom(0.6, seed+uint64(trial)), Env: flood,
				Seed: seed + uint64(trial)*17 + uint64(k)})
			if err != nil {
				return nil, err
			}
			keys := make([]amac.FloodKey, k)
			for i := 0; i < k; i++ {
				keys[i], err = flood.Start((i*perCluster)%d.N(), fmt.Sprintf("mmb-%d", i))
				if err != nil {
					return nil, err
				}
			}
			// The MMB bound is O((D+k)·f_ack); give twice that as budget.
			budget := 2 * (diam + k) * p.TAckBound()
			done := 0
			for r := 0; r < budget && done < k; r++ {
				e.Step()
				done = 0
				for _, key := range keys {
					if _, ok := flood.Complete(key); ok {
						done++
					}
				}
			}
			if done == k {
				completedAll++
				worst := 0
				for _, key := range keys {
					if lat, ok := flood.Latency(key); ok && lat > worst {
						worst = lat
					}
				}
				completion.AddInt(worst)
				normalised.Add(float64(worst) / (float64(diam+k) * float64(p.TAckBound())))
			}
		}
		tbl.AddRow(k, completion.Mean(), normalised.Mean(),
			fmt.Sprintf("%d/%d", completedAll, trials))
	}
	return &Result{ID: "E-MMB", Claim: "[9,10] multi-message broadcast", Tables: []*stats.Table{tbl}}, nil
}

// runConsensusExp measures the min-id consensus composed over the layer:
// termination time and agreement rate across cluster sizes.
func runConsensusExp(size Size, seed uint64) (*Result, error) {
	ns := pick(size, []int{4, 8}, []int{4, 8, 16}, []int{4, 8, 16, 32})
	trials := pick(size, 3, 6, 12)
	cycles := 2

	tbl := &stats.Table{
		Title:   "E-CONSENSUS: min-id consensus over the abstract MAC layer",
		Columns: []string{"n", "trials", "agreement", "validity", "mean termination (rounds)", "bound cycles·(t_ack+phase)"},
		Notes: []string{
			fmt.Sprintf("single-hop clusters; %d broadcast cycles per node; random½ schedule", cycles),
			"agreement is probabilistic (amplified by cycles); validity and termination are deterministic",
		},
	}
	rng := xrand.New(seed)
	for _, n := range ns {
		d, err := dualgraph.SingleHopCluster(n, 1, rng)
		if err != nil {
			return nil, err
		}
		agree, valid := 0, 0
		var term stats.Summary
		var bound int
		for trial := 0; trial < trials; trial++ {
			layers, procs, p, err := newLayerNet(d, 0.2)
			if err != nil {
				return nil, err
			}
			bound = cycles * (p.TAckBound() + p.PhaseLen())
			initial := make([]any, n)
			for u := range initial {
				initial[u] = u * 7
			}
			cons, err := amac.NewConsensus(layers, initial, cycles)
			if err != nil {
				return nil, err
			}
			e, err := sim.New(sim.Config{Dual: d, Procs: procs,
				Sched: sched.NewRandom(0.5, seed+uint64(trial)), Env: cons,
				Seed: seed + uint64(trial)*29 + uint64(n)})
			if err != nil {
				return nil, err
			}
			budget := 2 * bound
			for r := 0; r < budget; r++ {
				e.Step()
				if _, done := cons.Done(); done {
					break
				}
			}
			round, done := cons.Done()
			if !done {
				continue // termination miss counts against agreement too
			}
			term.AddInt(round)
			value, ok := cons.Agreement()
			if ok {
				agree++
			}
			// Validity: decided value must be one of the initial values.
			if v, isInt := value.(int); isInt && v%7 == 0 && v/7 < n {
				valid++
			}
		}
		tbl.AddRow(n, trials, stats.FormatRate(agree, trials), stats.FormatRate(valid, trials),
			term.Mean(), bound)
	}
	return &Result{ID: "E-CONSENSUS", Claim: "[20] consensus composition", Tables: []*stats.Table{tbl}}, nil
}
