package exp

import (
	"bytes"
	"encoding/json"
	"testing"

	"lbcast/internal/world"
)

// TestComparisonReportJSON pins the documented schema fields.
func TestComparisonReportJSON(t *testing.T) {
	rep := &ComparisonReport{
		Schema:   "lbcast-comparison/v2",
		Seed:     7,
		Size:     "small",
		Policies: []string{"lbalg"},
		Rows: []ComparisonRow{{
			Topology: "sweep-geometric", N: 48, Algorithm: "lbalg", Model: "dualgraph",
			Rounds: 100, Senders: 4, Acks: 2, Reliability: 1,
		}},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["schema"] != "lbcast-comparison/v2" {
		t.Errorf("schema field = %v", decoded["schema"])
	}
	pols, ok := decoded["policies"].([]any)
	if !ok || len(pols) != 1 || pols[0] != "lbalg" {
		t.Errorf("policies field = %v", decoded["policies"])
	}
	rows, ok := decoded["rows"].([]any)
	if !ok || len(rows) != 1 {
		t.Fatalf("rows = %v", decoded["rows"])
	}
	row := rows[0].(map[string]any)
	for _, key := range []string{"topology", "n", "algorithm", "model", "rounds", "senders",
		"acks", "reliability", "ack_p50", "ack_p95", "ack_max", "first_recv_p50",
		"msgs_per_ack", "deliveries_per_round", "collision_rate",
		"transmissions", "deliveries", "collisions"} {
		if _, ok := row[key]; !ok {
			t.Errorf("row missing schema key %q", key)
		}
	}
}

// TestComparisonSmoke runs the real matrix at a reduced scale by driving
// one topology point directly through the World harness.
func TestComparisonSmoke(t *testing.T) {
	rows, err := runComparisonPoint(24, 1, 0.2, 400, world.All(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6 policies", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Algorithm] = true
		if r.Rounds != rows[0].Rounds {
			t.Errorf("%s ran %d rounds, want shared budget %d", r.Algorithm, r.Rounds, rows[0].Rounds)
		}
		if r.Transmissions == 0 {
			t.Errorf("%s recorded no transmissions", r.Algorithm)
		}
	}
	for _, name := range []string{"lbalg", "contention-uniform", "contention-cycling", "decay", "sinr-local", "sinr-pernode"} {
		if !seen[name] {
			t.Errorf("missing policy %s", name)
		}
	}
}

// TestComparisonUnknownPolicy pins the CLI-facing error: an unknown policy
// name fails with the registered set spelled out.
func TestComparisonUnknownPolicy(t *testing.T) {
	_, err := RunComparisonPolicies(SizeSmall, 1, []string{"bogus"}, 1)
	if err == nil {
		t.Fatal("no error for unknown policy")
	}
	for _, want := range []string{"bogus", "lbalg", "sinr-pernode"} {
		if !bytes.Contains([]byte(err.Error()), []byte(want)) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}
