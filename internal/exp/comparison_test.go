package exp

import (
	"bytes"
	"encoding/json"
	"testing"

	"lbcast/internal/sim"
)

// TestSummarizeComparisonRun feeds a hand-written trace through the metric
// extraction: two broadcasts from node 1, one acked after reaching its only
// neighbor (reliable), one acked without (unreliable).
func TestSummarizeComparisonRun(t *testing.T) {
	tr := &sim.Trace{}
	m1, m2 := sim.NewMsgID(1, 1), sim.NewMsgID(1, 2)
	events := []sim.Event{
		{Round: 1, Node: 1, Kind: sim.EvBcast, MsgID: m1},
		{Round: 3, Node: 2, Kind: sim.EvRecv, From: 1, MsgID: m1},
		{Round: 5, Node: 1, Kind: sim.EvAck, MsgID: m1},
		{Round: 6, Node: 1, Kind: sim.EvBcast, MsgID: m2},
		{Round: 9, Node: 1, Kind: sim.EvAck, MsgID: m2},
	}
	for _, ev := range events {
		tr.Record(ev)
	}
	tr.Transmissions, tr.Deliveries, tr.Collisions = 10, 4, 1

	neigh := func(src int) []int32 { return []int32{2} }
	row := summarizeComparisonRun(tr, 20, neigh)

	if row.Acks != 2 {
		t.Errorf("acks = %d, want 2", row.Acks)
	}
	if row.Reliability != 0.5 {
		t.Errorf("reliability = %v, want 0.5 (one of two acked broadcasts reached node 2)", row.Reliability)
	}
	if row.AckP50 != 3.5 || row.AckMax != 4 {
		t.Errorf("ack p50/max = %v/%d, want 3.5/4", row.AckP50, row.AckMax)
	}
	if row.FirstRecvP50 != 2 {
		t.Errorf("first-recv p50 = %v, want 2", row.FirstRecvP50)
	}
	if row.MsgsPerAck != 5 {
		t.Errorf("msgs/ack = %v, want 5", row.MsgsPerAck)
	}
	if row.DeliveriesPerRound != 0.2 {
		t.Errorf("deliveries/round = %v, want 0.2", row.DeliveriesPerRound)
	}
	if row.CollisionRate != 0.2 {
		t.Errorf("collision rate = %v, want 0.2", row.CollisionRate)
	}
}

func TestIsNeighbor(t *testing.T) {
	neigh := []int32{2, 5, 9}
	for _, v := range neigh {
		if !isNeighbor(neigh, v) {
			t.Errorf("member %d not found", v)
		}
	}
	for _, v := range []int32{0, 3, 10} {
		if isNeighbor(neigh, v) {
			t.Errorf("non-member %d found", v)
		}
	}
	if isNeighbor(nil, 1) {
		t.Error("empty list matched")
	}
}

// TestComparisonReportJSON pins the documented schema fields.
func TestComparisonReportJSON(t *testing.T) {
	rep := &ComparisonReport{
		Schema: "lbcast-comparison/v1",
		Seed:   7,
		Size:   "small",
		Rows: []ComparisonRow{{
			Topology: "sweep-geometric", N: 48, Algorithm: "lbalg", Model: "dualgraph",
			Rounds: 100, Senders: 4, Acks: 2, Reliability: 1,
		}},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["schema"] != "lbcast-comparison/v1" {
		t.Errorf("schema field = %v", decoded["schema"])
	}
	rows, ok := decoded["rows"].([]any)
	if !ok || len(rows) != 1 {
		t.Fatalf("rows = %v", decoded["rows"])
	}
	row := rows[0].(map[string]any)
	for _, key := range []string{"topology", "n", "algorithm", "model", "rounds", "senders",
		"acks", "reliability", "ack_p50", "ack_p95", "ack_max", "first_recv_p50",
		"msgs_per_ack", "deliveries_per_round", "collision_rate",
		"transmissions", "deliveries", "collisions"} {
		if _, ok := row[key]; !ok {
			t.Errorf("row missing schema key %q", key)
		}
	}
}

// TestComparisonSmoke runs the real matrix at a reduced scale by driving
// one topology point directly.
func TestComparisonSmoke(t *testing.T) {
	rows, err := runComparisonPoint(24, 1, 0.2, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6 contenders", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Algorithm] = true
		if r.Rounds != rows[0].Rounds {
			t.Errorf("%s ran %d rounds, want shared budget %d", r.Algorithm, r.Rounds, rows[0].Rounds)
		}
		if r.Transmissions == 0 {
			t.Errorf("%s recorded no transmissions", r.Algorithm)
		}
	}
	for _, name := range []string{"lbalg", "contention-uniform", "contention-cycling", "decay", "sinr-local", "sinr-pernode"} {
		if !seen[name] {
			t.Errorf("missing contender %s", name)
		}
	}
}
