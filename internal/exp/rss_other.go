//go:build !unix

package exp

// peakRSSMB reports 0 where getrusage is unavailable; the mem columns of
// the sweep are best-effort telemetry, not part of any correctness path.
func peakRSSMB() float64 { return 0 }
