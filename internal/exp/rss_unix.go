//go:build unix

package exp

import (
	"runtime"
	"syscall"
)

// peakRSSMB returns the process's peak resident set size in MiB, the
// high-water memory mark the scaling sweep records per row. Getrusage
// reports Maxrss in KiB on Linux and bytes on Darwin.
func peakRSSMB() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	if runtime.GOOS == "darwin" {
		return float64(ru.Maxrss) / (1 << 20)
	}
	return float64(ru.Maxrss) / 1024
}
