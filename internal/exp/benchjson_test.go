package exp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestMeasureExperiment(t *testing.T) {
	calls := 0
	e := Experiment{ID: "E-FAKE", Claim: "fixture", Run: func(size Size, seed uint64) (*Result, error) {
		calls++
		return &Result{ID: "E-FAKE"}, nil
	}}
	r, err := MeasureExperiment(e, SizeSmall, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || r.Iters != 3 || r.ID != "E-FAKE" {
		t.Errorf("measurement = %+v after %d calls", r, calls)
	}
	if r.NsPerOp < 0 || r.AllocsPerOp < 0 {
		t.Errorf("negative costs: %+v", r)
	}
}

func TestParseGoBench(t *testing.T) {
	src := `goos: linux
goarch: amd64
pkg: lbcast
BenchmarkBroadcastAck 	     848	 2910618 ns/op	  226486 B/op	     234 allocs/op
BenchmarkNetworkRound 	  127466	   19583 ns/op	     999 B/op	       0 allocs/op
BenchmarkNoMem        	     100	     500 ns/op
BenchmarkFast         	205817067	   6.194 ns/op
PASS
`
	got, err := ParseGoBench(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(got))
	}
	if got[1].Name != "BenchmarkNetworkRound" || got[1].NsPerOp != 19583 ||
		got[1].BytesPerOp != 999 || got[1].AllocsPerOp != 0 || got[1].Iters != 127466 {
		t.Errorf("NetworkRound = %+v", got[1])
	}
	if got[2].BytesPerOp != 0 || got[2].NsPerOp != 500 {
		t.Errorf("ns-only line = %+v", got[2])
	}
	if got[3].NsPerOp != 6.194 {
		t.Errorf("fractional ns/op line = %+v", got[3])
	}
	if _, err := ParseGoBench(strings.NewReader("BenchmarkBad x ns/op ns/op")); err == nil {
		t.Error("malformed line accepted")
	}
}

func TestBenchFileRoundTrip(t *testing.T) {
	f := BenchFile{
		Note:      "seed baseline",
		GoVersion: "go1.24.0",
		Size:      "small",
		Seed:      1,
		Results:   []BenchResult{{ID: "E-PROG", Iters: 1, NsPerOp: 123, BytesPerOp: 456, AllocsPerOp: 7}},
		GoTest:    []GoBench{{Name: "BenchmarkNetworkRound", Iters: 10, NsPerOp: 9999}},
	}
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got BenchFile
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Results[0] != f.Results[0] || got.GoTest[0] != f.GoTest[0] || got.Note != f.Note {
		t.Errorf("round trip mismatch: %+v", got)
	}
	for _, key := range []string{`"ns_per_op"`, `"allocs_per_op"`, `"results"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("serialised file missing %s", key)
		}
	}
}
