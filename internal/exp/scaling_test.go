package exp

import (
	"math"
	"testing"

	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// TestSweepBankTraceEquivalence pins the bank's bulk-record path
// (ReceiveRange stamping + FlushRound/AppendHearBatch) to the per-node
// Process path: same topology, same seed, same rounds, byte-identical
// traces. The round budget crosses several trace chunks so the columnar
// batch fill is exercised across boundaries.
func TestSweepBankTraceEquivalence(t *testing.T) {
	n := 400
	side := math.Max(4, math.Sqrt(float64(n)/4))
	run := func(banked bool) *sim.Trace {
		d, err := dualgraph.RandomGeometric(n, side, side, 1.5, dualgraph.GreyUnreliable, xrand.New(7))
		if err != nil {
			t.Fatal(err)
		}
		var bank *sweepBank
		if banked {
			bank = newSweepBank(n, 0.1)
		}
		procs := make([]sim.Process, n)
		for u := range procs {
			procs[u] = &sweepProc{p: 0.1, bank: bank}
		}
		cfg := sim.Config{Dual: d, Procs: procs, Seed: 7, Sched: sched.NewRandom(0.5, 7)}
		if banked {
			cfg.Bank = bank
		}
		e, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.Run(300)
		return e.Trace()
	}
	want, got := run(false), run(true)
	if want.Len() != got.Len() {
		t.Fatalf("Len: per-node %d, banked %d", want.Len(), got.Len())
	}
	if want.Len() < 3*4096 {
		t.Fatalf("trace too short (%d events) to cross chunk boundaries", want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if want.At(i) != got.At(i) {
			t.Fatalf("event %d: per-node %+v, banked %+v", i, want.At(i), got.At(i))
		}
	}
	if want.Deliveries != got.Deliveries || want.Collisions != got.Collisions ||
		want.Transmissions != got.Transmissions {
		t.Fatalf("counters diverge: per-node %d/%d/%d, banked %d/%d/%d",
			want.Transmissions, want.Deliveries, want.Collisions,
			got.Transmissions, got.Deliveries, got.Collisions)
	}
}
