package exp

import (
	"math"
	"testing"
	"time"

	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// benchSweepRow measures one n = 10⁵ sweep row (never scheduler,
// sequential driver) through either workload path: banked=false is the
// per-node Process path (two interface dispatches per node per round),
// banked=true the sweepBank batch path the real sweep runs. The pair keeps
// the dispatch-overhead gap visible outside full lbbench runs.
func benchSweepRow(b *testing.B, banked bool) {
	n := 100000
	side := math.Max(4, math.Sqrt(float64(n)/4))
	d, err := dualgraph.RandomGeometricWorkers(n, side, side, 1.5, dualgraph.GreyUnreliable, xrand.New(1), 1)
	if err != nil {
		b.Fatal(err)
	}
	var bank *sweepBank
	if banked {
		bank = newSweepBank(n, 0.1)
	}
	procs := make([]sim.Process, n)
	for u := range procs {
		procs[u] = &sweepProc{p: 0.1, bank: bank}
	}
	cfg := sim.Config{Dual: d, Procs: procs, Seed: 1, Sched: sched.Never{}}
	if banked {
		cfg.Bank = bank
	}
	e, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	e.Run(5)
	b.ResetTimer()
	start := time.Now()
	e.Run(b.N)
	b.ReportMetric(float64(time.Since(start).Nanoseconds())/float64(b.N), "ns/round")
}

func BenchmarkSweepRow100k(b *testing.B)       { benchSweepRow(b, false) }
func BenchmarkSweepRow100kBanked(b *testing.B) { benchSweepRow(b, true) }
