// This file implements the scaling sweep: raw round throughput of the
// engine across network sizes, schedulers and drivers. It is the capstone
// measurement for the large-n experiments named in ROADMAP (contention
// management, SINR comparison): they only become feasible once rounds/sec
// stays healthy at n ≥ 10⁴, which is exactly what the sweep records into
// BENCH_*.json.

package exp

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/sinr"
	"lbcast/internal/stats"
	"lbcast/internal/xrand"
)

// SweepPoint is one (n, scheduler, driver) scaling measurement. The
// scheduler column doubles as the physical-layer label: dual-graph rows name
// their link scheduler, the SINR rows are labeled "sinr".
type SweepPoint struct {
	N            int     `json:"n"`
	Scheduler    string  `json:"scheduler"`
	Driver       string  `json:"driver"`
	Workers      int     `json:"workers,omitempty"`
	Rounds       int     `json:"rounds"`
	NsPerRound   int64   `json:"ns_per_round"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	// Memory telemetry per row: heap allocations amortised over the timed
	// rounds (runtime.MemStats deltas) and the process's peak RSS when the
	// row finished (getrusage high-water mark, monotone across rows — the
	// largest n's rows carry the headline number).
	AllocsPerRound     int64   `json:"allocs_per_round,omitempty"`
	AllocBytesPerRound int64   `json:"alloc_bytes_per_round,omitempty"`
	PeakRSSMB          float64 `json:"peak_rss_mb,omitempty"`
}

// sweepSINRTolerance is the truncation tolerance of the sweep's SINR rows:
// decision margins beyond 0.05 (a quarter of the decode floor β·N = 0.18 at
// the default calibration) resolve exactly as the O(n·|txs|) resolver would,
// which is what lets the SINR physical layer ride the n = 10⁵ sweep.
const sweepSINRTolerance = 0.05

// sweepFullMaxN bounds the full scheduler × driver × SINR matrix. Beyond it
// (the million-node row) the sweep runs the bounded smoke instead: never
// scheduler only, no SINR row — raw engine throughput and the memory
// high-water mark are the signal at that scale, and the full matrix would
// multiply a minutes-long row without adding information.
const sweepFullMaxN = 100_000

// sweepProc is the synthetic workload of the sweep: transmit by private coin
// with a pre-boxed payload, record a hear event per reception. It exercises
// the full steady-state round path — transmit fan-out, schedule resolution,
// scatter, delivery and trace recording — without protocol logic on top.
type sweepProc struct {
	env     *sim.NodeEnv
	p       float64
	payload any
	bank    *sweepBank
}

// Init implements sim.Process.
func (s *sweepProc) Init(env *sim.NodeEnv) {
	s.env = env
	s.payload = env.ID
	if s.bank != nil {
		s.bank.envs[env.ID] = env
		s.bank.payloads[env.ID] = s.payload
	}
}

// Transmit implements sim.Process: a private coin at the sweep probability.
func (s *sweepProc) Transmit(t int) (any, bool) {
	return s.payload, s.env.Rng.Coin(s.p)
}

// Receive implements sim.Process: successful receptions become hear events.
func (s *sweepProc) Receive(t, from int, payload any, ok bool) {
	if ok {
		s.env.Rec.Record(sim.Event{Round: t, Node: s.env.ID, Kind: sim.EvHear, From: from})
	}
}

// sweepBank is the struct-of-arrays form of the sweep workload: one linear
// pass per range over flat env/payload columns, replacing the two interface
// dispatches per node per round of the Process path. The decisions and
// events are exactly sweepProc's — same rng draw per node in index order,
// same hear events — so banked and per-node rows measure the identical
// execution; only the dispatch cost differs. This is the workload-side half
// of the batch path (the protocol-side half is core.NodeStateBank).
//
// Hear events bypass the per-node recorders: ReceiveRange stamps them into
// flat per-node columns (range calls touch disjoint node ranges, so the
// concurrent drivers need no synchronisation) and FlushRound emits the
// round's batch through Trace.AppendHearBatch in ascending node order —
// exactly the order the sorted recorder drain produced, since the sweep
// records at most one hear per node per round. PR 9 measured the banked
// n = 10⁵ sweep row as recorder-bound; this is the cure.
type sweepBank struct {
	p        float64
	envs     []*sim.NodeEnv
	payloads []any

	// hearStamp/hearFrom are the per-node hear columns: node u heard
	// hearFrom[u] in round hearStamp[u]. Stamp comparison makes them
	// self-clearing round to round.
	hearStamp []int32
	hearFrom  []int32
	// nodes/froms are FlushRound's reused batch scratch.
	nodes, froms []int32
}

// newSweepBank builds a bank for n nodes.
func newSweepBank(n int, txProb float64) *sweepBank {
	return &sweepBank{
		p: txProb, envs: make([]*sim.NodeEnv, n), payloads: make([]any, n),
		hearStamp: make([]int32, n), hearFrom: make([]int32, n),
	}
}

// TransmitRange implements sim.ProcessBank.
func (b *sweepBank) TransmitRange(t, lo, hi int, v *sim.RoundView) {
	for u := lo; u < hi; u++ {
		if v.Down != nil && v.Down[u] {
			v.Payloads[u], v.Transmit[u] = nil, false
			continue
		}
		v.Payloads[u], v.Transmit[u] = b.payloads[u], b.envs[u].Rng.Coin(b.p)
	}
}

// ReceiveRange implements sim.ProcessBank.
func (b *sweepBank) ReceiveRange(t, lo, hi int, v *sim.RoundView) {
	t32 := int32(t)
	for u := lo; u < hi; u++ {
		if v.Down != nil && v.Down[u] {
			continue
		}
		if rx := &v.Rx[u]; !v.Transmit[u] && rx.Stamp == t32 && rx.Count == 1 {
			b.hearStamp[u], b.hearFrom[u] = t32, rx.From
		}
	}
}

// FlushRound implements sim.RoundFlusher: collect the round's hears in
// ascending node order and bulk-append them.
func (b *sweepBank) FlushRound(t int, tr *sim.Trace) {
	t32 := int32(t)
	b.nodes, b.froms = b.nodes[:0], b.froms[:0]
	for u, stamp := range b.hearStamp {
		if stamp == t32 {
			b.nodes = append(b.nodes, int32(u))
			b.froms = append(b.froms, b.hearFrom[u])
		}
	}
	if len(b.nodes) > 0 {
		tr.AppendHearBatch(t, b.nodes, b.froms)
	}
}

// sweepRounds picks the round budget for one point: enough node-rounds for a
// stable timing without making the 10⁵ points take minutes.
func sweepRounds(n int) int {
	r := 2_000_000 / n
	if r < 20 {
		return 20
	}
	return r
}

// RunScalingSweep measures rounds/sec for every n × scheduler × driver
// combination, plus per-n construction points. Each n gets one random
// geometric graph at constant density (the area grows with n, so degree
// bounds — and with them per-round work per transmitter — stay flat while n
// scales), shared by all points of that n; timing that single build is the
// construction measurement, so no topology is constructed twice. txProb is
// the per-node transmit probability per round (0 picks the default 0.1).
// workers lists the worker-pool sizes to measure (one workerpool row each;
// nil or empty picks the single default of GOMAXPROCS) — the multi-core CI
// job sweeps {1, 2, 4} to record the parallel-scatter speedup curve.
func RunScalingSweep(ns []int, seed uint64, txProb float64, workers []int) ([]SweepPoint, []ConstructionPoint, error) {
	if txProb <= 0 {
		txProb = 0.1
	}
	if len(workers) == 0 {
		workers = []int{runtime.GOMAXPROCS(0)}
	}
	schedulers := []struct {
		name string
		s    sim.LinkScheduler
	}{
		{"never", sched.Never{}},
		{"random½", sched.NewRandom(0.5, seed)},
		{"always", sched.Always{}},
	}
	drivers := []struct {
		name    string
		d       sim.Driver
		workers int
	}{{"sequential", sim.DriverSequential, 0}}
	for _, w := range workers {
		if w < 1 {
			return nil, nil, fmt.Errorf("exp: sweep worker count %d < 1", w)
		}
		drivers = append(drivers, struct {
			name    string
			d       sim.Driver
			workers int
		}{"workerpool", sim.DriverWorkerPool, w})
	}
	var out []SweepPoint
	var cons []ConstructionPoint
	for _, n := range ns {
		if n < 2 {
			return nil, nil, fmt.Errorf("exp: sweep n=%d too small", n)
		}
		// Constant density ≈ 4 nodes per unit square keeps Δ and Δ′ flat
		// across the sweep. Construction shards across GOMAXPROCS workers
		// (structurally identical to the sequential build; the dualgraph
		// tests pin this), which is what lets the million-node row finish
		// its build in seconds.
		buildWorkers := runtime.GOMAXPROCS(0)
		side := math.Max(4, math.Sqrt(float64(n)/4))
		start := time.Now()
		d, err := dualgraph.RandomGeometricWorkers(n, side, side, 1.5, dualgraph.GreyUnreliable, xrand.New(seed), buildWorkers)
		buildNs := time.Since(start).Nanoseconds()
		if err != nil {
			return nil, nil, err
		}
		start = time.Now()
		if err := d.Validate(); err != nil {
			return nil, nil, fmt.Errorf("exp: sweep topology n=%d failed validation: %w", n, err)
		}
		cons = append(cons, ConstructionPoint{
			N:          n,
			Workers:    buildWorkers,
			BuildNs:    buildNs,
			ValidateNs: time.Since(start).Nanoseconds(),
			Edges:      d.Gp.EdgeCount(),
			Unreliable: len(d.UnreliableEdges()),
			PeakRSSMB:  peakRSSMB(),
		})
		rounds := sweepRounds(n)
		measure := func(name, driver string, workers int, cfg sim.Config) error {
			bank := newSweepBank(n, txProb)
			procs := make([]sim.Process, n)
			for u := range procs {
				procs[u] = &sweepProc{p: txProb, bank: bank}
			}
			cfg.Dual, cfg.Procs, cfg.Bank, cfg.Seed = d, procs, bank, seed
			e, err := sim.New(cfg)
			if err != nil {
				return err
			}
			e.Run(5) // warm scratch, shards, buckets and trace chunks
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			e.Run(rounds)
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			e.Close()
			nsPerRound := elapsed.Nanoseconds() / int64(rounds)
			point := SweepPoint{
				N:                  n,
				Scheduler:          name,
				Driver:             driver,
				Workers:            workers,
				Rounds:             rounds,
				NsPerRound:         nsPerRound,
				AllocsPerRound:     int64(after.Mallocs-before.Mallocs) / int64(rounds),
				AllocBytesPerRound: int64(after.TotalAlloc-before.TotalAlloc) / int64(rounds),
				PeakRSSMB:          peakRSSMB(),
			}
			if nsPerRound > 0 {
				point.RoundsPerSec = 1e9 / float64(nsPerRound)
			}
			out = append(out, point)
			return nil
		}
		for _, sc := range schedulers {
			if n > sweepFullMaxN && sc.name != "never" {
				continue // bounded large-n smoke: never scheduler only
			}
			for _, dr := range drivers {
				if err := measure(sc.name, dr.name, dr.workers,
					sim.Config{Sched: sc.s, Driver: dr.d, Workers: dr.workers}); err != nil {
					return nil, nil, err
				}
			}
		}
		if n > sweepFullMaxN {
			continue // SINR model memory and setup are not sized for 10⁶
		}
		// SINR physical-layer row: same embedding, same workload, rounds
		// resolved by the SINR model instead of the dual-graph scatter. At
		// the configured tolerance the model buckets rounds with at least
		// BucketedMinTx transmitters (n ≥ 10³ here at 10% transmit
		// probability; smaller rounds dispatch to the exact resolver, which
		// is already cheaper there). This is the row that was quadratic
		// before the bucketing.
		params := sinr.DefaultParams()
		params.Tolerance = sweepSINRTolerance
		model, err := sinr.NewModel(d.Emb, sinr.UniformPower(1), params)
		if err != nil {
			return nil, nil, err
		}
		if err := measure("sinr", "sequential", 0, sim.Config{Reception: model}); err != nil {
			return nil, nil, err
		}
	}
	return out, cons, nil
}

// SweepTable renders sweep points as a stats table for terminal output.
func SweepTable(points []SweepPoint) *stats.Table {
	tbl := &stats.Table{
		Title:   "engine scaling sweep: rounds/sec by n × scheduler/physical layer × driver",
		Columns: []string{"n", "scheduler", "driver", "workers", "rounds", "ns/round", "rounds/sec", "allocs/round", "peak RSS MB"},
		Notes: []string{
			"random geometric graphs at constant density (Δ, Δ′ flat across n); transmit probability 0.1",
			fmt.Sprintf("sinr rows resolve rounds through the SINR model at tolerance %v (region-bucketed for rounds with ≥ %d transmitters, exact below)",
				sweepSINRTolerance, sinr.BucketedMinTx),
			fmt.Sprintf("n > %d rows run the bounded smoke: never scheduler only, no SINR row", sweepFullMaxN),
			"peak RSS is the process high-water mark when the row finished (monotone across rows)",
		},
	}
	for _, p := range points {
		w := "-"
		if p.Workers > 0 {
			w = fmt.Sprintf("%d", p.Workers)
		}
		tbl.AddRow(p.N, p.Scheduler, p.Driver, w, p.Rounds, p.NsPerRound, fmt.Sprintf("%.0f", p.RoundsPerSec),
			p.AllocsPerRound, fmt.Sprintf("%.0f", p.PeakRSSMB))
	}
	return tbl
}

// ConstructionPoint is one topology-construction measurement: the
// trusted-path build time of the sweep-geometric dual at n, and the cost of
// the full Validate pass the trusted builders skip (the former re-validation
// that dominated large constructions). RunScalingSweep records one per n
// while building the topology its round measurements share.
type ConstructionPoint struct {
	N int `json:"n"`
	// Workers is the worker count the sharded geometric construction ran
	// with (GOMAXPROCS at sweep time).
	Workers    int   `json:"workers,omitempty"`
	BuildNs    int64 `json:"build_ns"`
	ValidateNs int64 `json:"validate_ns"`
	Edges      int   `json:"edges"`
	Unreliable int   `json:"unreliable_edges"`
	// PeakRSSMB is the process high-water mark after build + validation.
	PeakRSSMB float64 `json:"peak_rss_mb,omitempty"`
}

// ConstructionTable renders construction points for terminal output.
func ConstructionTable(points []ConstructionPoint) *stats.Table {
	tbl := &stats.Table{
		Title:   "dual graph construction: trusted build vs skipped validation cost",
		Columns: []string{"n", "workers", "build ms", "validate ms", "edges (G')", "unreliable", "peak RSS MB"},
		Notes: []string{
			"build = RandomGeometricWorkers end to end (placement, sharded grid-index pair scan, arena CSR assembly, trusted assembly)",
			"validate = the full Dual.Validate pass the trusted constructor skips",
		},
	}
	for _, p := range points {
		w := "-"
		if p.Workers > 0 {
			w = fmt.Sprintf("%d", p.Workers)
		}
		tbl.AddRow(p.N, w, fmt.Sprintf("%.1f", float64(p.BuildNs)/1e6),
			fmt.Sprintf("%.1f", float64(p.ValidateNs)/1e6), p.Edges, p.Unreliable,
			fmt.Sprintf("%.0f", p.PeakRSSMB))
	}
	return tbl
}
