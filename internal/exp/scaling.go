// This file implements the scaling sweep: raw round throughput of the
// engine across network sizes, schedulers and drivers. It is the capstone
// measurement for the large-n experiments named in ROADMAP (contention
// management, SINR comparison): they only become feasible once rounds/sec
// stays healthy at n ≥ 10⁴, which is exactly what the sweep records into
// BENCH_*.json.

package exp

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/stats"
	"lbcast/internal/xrand"
)

// SweepPoint is one (n, scheduler, driver) scaling measurement.
type SweepPoint struct {
	N            int     `json:"n"`
	Scheduler    string  `json:"scheduler"`
	Driver       string  `json:"driver"`
	Workers      int     `json:"workers,omitempty"`
	Rounds       int     `json:"rounds"`
	NsPerRound   int64   `json:"ns_per_round"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
}

// sweepProc is the synthetic workload of the sweep: transmit by private coin
// with a pre-boxed payload, record a hear event per reception. It exercises
// the full steady-state round path — transmit fan-out, schedule resolution,
// scatter, delivery and trace recording — without protocol logic on top.
type sweepProc struct {
	env     *sim.NodeEnv
	p       float64
	payload any
}

// Init implements sim.Process.
func (s *sweepProc) Init(env *sim.NodeEnv) { s.env = env; s.payload = env.ID }

// Transmit implements sim.Process: a private coin at the sweep probability.
func (s *sweepProc) Transmit(t int) (any, bool) {
	return s.payload, s.env.Rng.Coin(s.p)
}

// Receive implements sim.Process: successful receptions become hear events.
func (s *sweepProc) Receive(t, from int, payload any, ok bool) {
	if ok {
		s.env.Rec.Record(sim.Event{Round: t, Node: s.env.ID, Kind: sim.EvHear, From: from})
	}
}

// sweepRounds picks the round budget for one point: enough node-rounds for a
// stable timing without making the 10⁵ points take minutes.
func sweepRounds(n int) int {
	r := 2_000_000 / n
	if r < 20 {
		return 20
	}
	return r
}

// RunScalingSweep measures rounds/sec for every n × scheduler × driver
// combination. Each n gets one random geometric graph at constant density
// (the area grows with n, so degree bounds — and with them per-round work
// per transmitter — stay flat while n scales), shared by all points of
// that n. txProb is the per-node transmit probability per round (0 picks
// the default 0.1).
func RunScalingSweep(ns []int, seed uint64, txProb float64) ([]SweepPoint, error) {
	if txProb <= 0 {
		txProb = 0.1
	}
	schedulers := []struct {
		name string
		s    sim.LinkScheduler
	}{
		{"never", sched.Never{}},
		{"random½", sched.NewRandom(0.5, seed)},
		{"always", sched.Always{}},
	}
	drivers := []struct {
		name    string
		d       sim.Driver
		workers int
	}{
		{"sequential", sim.DriverSequential, 0},
		{"workerpool", sim.DriverWorkerPool, runtime.GOMAXPROCS(0)},
	}
	var out []SweepPoint
	for _, n := range ns {
		if n < 2 {
			return nil, fmt.Errorf("exp: sweep n=%d too small", n)
		}
		// Constant density ≈ 4 nodes per unit square keeps Δ and Δ′ flat
		// across the sweep.
		side := math.Max(4, math.Sqrt(float64(n)/4))
		d, err := dualgraph.RandomGeometric(n, side, side, 1.5, dualgraph.GreyUnreliable, xrand.New(seed))
		if err != nil {
			return nil, err
		}
		rounds := sweepRounds(n)
		for _, sc := range schedulers {
			for _, dr := range drivers {
				procs := make([]sim.Process, n)
				for u := range procs {
					procs[u] = &sweepProc{p: txProb}
				}
				e, err := sim.New(sim.Config{Dual: d, Procs: procs, Sched: sc.s,
					Seed: seed, Driver: dr.d, Workers: dr.workers})
				if err != nil {
					return nil, err
				}
				e.Run(5) // warm scratch, shards and trace chunks
				start := time.Now()
				e.Run(rounds)
				elapsed := time.Since(start)
				e.Close()
				nsPerRound := elapsed.Nanoseconds() / int64(rounds)
				point := SweepPoint{
					N:          n,
					Scheduler:  sc.name,
					Driver:     dr.name,
					Workers:    dr.workers,
					Rounds:     rounds,
					NsPerRound: nsPerRound,
				}
				if nsPerRound > 0 {
					point.RoundsPerSec = 1e9 / float64(nsPerRound)
				}
				out = append(out, point)
			}
		}
	}
	return out, nil
}

// SweepTable renders sweep points as a stats table for terminal output.
func SweepTable(points []SweepPoint) *stats.Table {
	tbl := &stats.Table{
		Title:   "engine scaling sweep: rounds/sec by n × scheduler × driver",
		Columns: []string{"n", "scheduler", "driver", "rounds", "ns/round", "rounds/sec"},
		Notes: []string{
			"random geometric graphs at constant density (Δ, Δ′ flat across n); transmit probability 0.1",
		},
	}
	for _, p := range points {
		tbl.AddRow(p.N, p.Scheduler, p.Driver, p.Rounds, p.NsPerRound, fmt.Sprintf("%.0f", p.RoundsPerSec))
	}
	return tbl
}
