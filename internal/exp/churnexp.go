// This file implements E-CHURN, the robustness experiment: how gracefully
// each contender's ack latency, progress, reliability and goodput degrade
// as node churn rises. Every contender at a given churn rate faces the
// *identical* fault schedule — the plan is compiled from (seed, rate)
// alone, before any run — so the degradation curves differ only in the
// protocols, never in the faults. Runs use the sequential driver, so one
// invocation is deterministic across GOMAXPROCS settings.

package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"lbcast/internal/baseline"
	"lbcast/internal/churn"
	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/geo"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/stats"
	"lbcast/internal/xrand"
)

func init() {
	register(Experiment{ID: "E-CHURN", Claim: "robustness under node churn: degradation vs fault rate on identical schedules", Run: runChurnExp})
}

// ChurnRow is one (churn rate, algorithm) measurement. It carries the
// comparison metrics plus the fault-load telemetry of the schedule the run
// faced. JSON field names are the stable schema documented in
// docs/EXPERIMENTS.md (lbcast-churn/v1).
type ChurnRow struct {
	ComparisonRow
	// Load is the churn intensity in protocol-relative units: expected
	// crashes per node per ack window (half the round budget) of the
	// slowest contender. The sweep's independent variable.
	Load float64 `json:"crashes_per_ack_window"`
	// CrashRate is the resulting per-node per-round crash probability.
	CrashRate float64 `json:"crash_rate"`
	// LeaveRate is the per-node per-round departure probability.
	LeaveRate float64 `json:"leave_rate"`
	// Crashes/Leaves/Joins/Recovers count the lifecycle events applied.
	Crashes  int `json:"crashes"`
	Recovers int `json:"recovers"`
	Leaves   int `json:"leaves"`
	Joins    int `json:"joins"`
	// DownFraction is the fraction of node-rounds spent down or absent —
	// the availability loss the protocols had to absorb.
	DownFraction float64 `json:"down_fraction"`
}

// ChurnReport is the JSON document produced by `lbsim -exp churn`.
type ChurnReport struct {
	// Schema identifies the document layout; bump on incompatible change.
	Schema string `json:"schema"`
	// Seed is the experiment seed all topologies and plans derived from.
	Seed uint64 `json:"seed"`
	// Size is the experiment scale the point counts were picked at.
	Size string `json:"size"`
	// Rows holds one entry per (rate, algorithm), rates ascending — the
	// degradation curve of each algorithm read along its rate column.
	Rows []ChurnRow `json:"rows"`
	// Notes records calibration context for human readers.
	Notes []string `json:"notes,omitempty"`
}

// WriteJSON renders the report with stable formatting.
func (r *ChurnReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// churnLoads is the sweep, in protocol-relative units: the expected number
// of crashes per node per acknowledgement window of the slowest contender
// (half the round budget). A churn-free control point, then three loads
// spanning light (most ack windows survive a sender's uptime) to heavy
// (the slowest contender can essentially never finish a window between
// its sender's crashes, while fast baselines still can).
var churnLoads = []float64{0, 0.25, 1, 4}

// RunChurn executes the churn matrix: one constant-density geometric
// topology per size, and for every churn rate one Poisson fault plan that
// every contender replays verbatim. The dual graph is rebuilt per run
// (leave/join patches mutate it in place); protocol parameters are derived
// once from the full universe, whose Δ/Δ′ bound every patched subgraph.
func RunChurn(size Size, seed uint64) (*ChurnReport, error) {
	n := pick(size, 48, 100, 250)
	roundsCap := pick(size, 60_000, 150_000, 400_000)
	const eps = 0.2

	rep := &ChurnReport{
		Schema: "lbcast-churn/v1",
		Seed:   seed,
		Size:   comparisonSizeName(size),
		Notes: []string{
			"topology: constant-density random geometric (comparison family), r=1.5, grey-zone links unreliable",
			"load = expected crashes per node per slowest ack window; identical Poisson fault schedule per load across all contenders",
			"leave rate = crash rate / 4; outage lengths ≈ 2% (crash) / 4% (leave) of the run",
			"dual-graph scatter with the oblivious random½ link scheduler; sequential driver (GOMAXPROCS-independent)",
			"reliability counts receptions among full-universe reliable neighbors: outages erode it by construction",
			fmt.Sprintf("ε=%v sizes every contender's acknowledgement window", eps),
		},
	}
	for _, load := range churnLoads {
		rows, err := runChurnPoint(n, seed, load, eps, roundsCap)
		if err != nil {
			return nil, fmt.Errorf("exp: churn load=%v: %w", load, err)
		}
		rep.Rows = append(rep.Rows, rows...)
	}
	return rep, nil
}

// churnPlanFor compiles the fault schedule for one (n, seed, rate, rounds)
// point. Pure function: every contender at this point gets this schedule.
// Outage lengths scale with the run (≈ 2% of it per crash), so the sweep
// varies fault frequency, not a fixed absolute downtime.
func churnPlanFor(n int, seed uint64, rate float64, rounds int) (*churn.Plan, error) {
	if rate == 0 {
		return churn.FixedScript(nil, nil, nil), nil
	}
	downtime := max(20, rounds/50)
	return churn.Poisson(churn.PoissonConfig{
		N: n, Rounds: rounds, Seed: seed ^ math.Float64bits(rate),
		CrashRate:    rate,
		MeanDowntime: downtime,
		LeaveRate:    rate / 4,
		MeanAbsence:  2 * downtime,
	})
}

// runChurnPoint runs every contender against the load's fault schedule.
func runChurnPoint(n int, seed uint64, load, eps float64, roundsCap int) ([]ChurnRow, error) {
	// Full-universe parameters: build one pristine instance for Δ/Δ′ and
	// the reliability neighbor sets, then rebuild per run.
	buildDual := func() (*dualgraph.Dual, error) {
		side := math.Max(4, math.Sqrt(float64(n)/4))
		return dualgraph.RandomGeometric(n, side, side, 1.5, dualgraph.GreyUnreliable, xrand.New(seed))
	}
	ref, err := buildDual()
	if err != nil {
		return nil, err
	}
	delta, deltaPrime := ref.Delta(), ref.DeltaPrime()
	lbParams, err := core.DeriveParams(delta, deltaPrime, ref.R, eps)
	if err != nil {
		return nil, err
	}
	// Snapshot the full-universe reliable neighborhoods for the
	// reliability metric: the per-run duals get patched while running.
	neigh := make([][]int32, n)
	for u := 0; u < n; u++ {
		neigh[u] = append([]int32(nil), ref.G.Neighbors(u)...)
	}
	neighFn := func(src int) []int32 { return neigh[src] }

	contenders := []comparisonContender{
		{"lbalg", "dualgraph", nil, neighFn, lbParams.TAckBound(), func(int) core.Service {
			return core.NewLBAlg(lbParams)
		}},
		{"contention-uniform", "dualgraph", nil, neighFn, baseline.ContentionAckRounds(deltaPrime, eps), func(int) core.Service {
			return baseline.NewContention(baseline.ContentionParams{
				DeltaPrime: deltaPrime, Strategy: baseline.StrategyUniform, Eps: eps})
		}},
		{"decay", "dualgraph", nil, neighFn, baseline.DecayAckRounds(delta, eps), func(int) core.Service {
			return baseline.NewDecay(baseline.DecayParams{Delta: delta, AckRounds: baseline.DecayAckRounds(delta, eps)})
		}},
	}
	rounds := 0
	for _, c := range contenders {
		if b := 2*c.ackRounds + 64; b > rounds {
			rounds = b
		}
	}
	if rounds > roundsCap {
		rounds = roundsCap
	}
	senders := 4
	if senders > n/4 {
		senders = max(1, n/4)
	}

	// Translate the protocol-relative load into a per-round rate: the ack
	// window is half the budget (rounds = 2 windows + slack).
	rate := load / float64(rounds/2)
	if load == 0 {
		rate = 0
	}
	plan, err := churnPlanFor(n, seed, rate, rounds)
	if err != nil {
		return nil, err
	}
	if err := plan.Validate(n); err != nil {
		return nil, err
	}
	planStats := plan.Stats(n, rounds)

	rows := make([]ChurnRow, 0, len(contenders))
	for ci, c := range contenders {
		d, err := buildDual()
		if err != nil {
			return nil, err
		}
		svcs := make([]core.Service, n)
		procs := make([]sim.Process, n)
		for u := 0; u < n; u++ {
			svcs[u] = c.build(u)
			procs[u] = svcs[u]
		}
		env := core.NewSaturatingEnv(svcs, senderRange(senders))
		inj, err := churn.NewInjector(churn.InjectorConfig{
			Plan: plan, Dual: d, Index: geo.BuildGridIndex(d.Emb),
			Policy: dualgraph.GreyUnreliable,
			Restart: func(u int) sim.Process {
				svcs[u] = c.build(u)
				return svcs[u]
			},
			Inner: env,
			OnRestart: func(u int, _ sim.Process) {
				// A restarted sender lost its in-flight broadcast and its
				// ack hook; re-arm it so saturation resumes.
				env.Rearm(u)
			},
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		if err := inj.Detach(); err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		engine, err := sim.New(sim.Config{Dual: d, Procs: procs, Env: inj,
			Sched: sched.NewRandom(0.5, seed), Seed: seed + uint64(ci)*1_000_003})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		inj.Attach(engine)
		engine.Run(rounds)
		if err := inj.Err(); err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("%s: patched dual invalid after run: %w", c.name, err)
		}

		row := ChurnRow{
			ComparisonRow: summarizeComparisonRun(engine.Trace(), rounds, neighFn),
			Load:          load,
			CrashRate:     rate,
			LeaveRate:     rate / 4,
			Crashes:       planStats.Crashes,
			Recovers:      planStats.Recovers,
			Leaves:        planStats.Leaves,
			Joins:         planStats.Joins,
		}
		row.DownFraction = float64(planStats.DownNodeRounds) / (float64(n) * float64(rounds))
		row.Topology = "sweep-geometric"
		row.N = n
		row.Algorithm = c.name
		row.Model = "dualgraph"
		row.Senders = senders
		rows = append(rows, row)
	}
	return rows, nil
}

// ChurnTable renders a churn report as a stats table for terminal output.
func ChurnTable(rep *ChurnReport) *stats.Table {
	tbl := &stats.Table{
		Title: "E-CHURN: degradation under node churn (identical fault schedules)",
		Columns: []string{"load", "down frac", "algorithm", "rounds", "acks",
			"reliability", "ack p50", "1st-recv p50", "msgs/ack", "deliv/round"},
		Notes: rep.Notes,
	}
	for _, r := range rep.Rows {
		tbl.AddRow(fmt.Sprintf("%.2f", r.Load), fmt.Sprintf("%.3f", r.DownFraction),
			r.Algorithm, r.Rounds, r.Acks, fmt.Sprintf("%.3f", r.Reliability),
			r.AckP50, r.FirstRecvP50, stats.FormatFloat(r.MsgsPerAck),
			stats.FormatFloat(r.DeliveriesPerRound))
	}
	return tbl
}

// runChurnExp adapts RunChurn to the experiment registry.
func runChurnExp(size Size, seed uint64) (*Result, error) {
	rep, err := RunChurn(size, seed)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "E-CHURN",
		Claim:  "robustness: ack/progress/reliability/goodput degradation under churn",
		Tables: []*stats.Table{ChurnTable(rep)},
	}, nil
}
