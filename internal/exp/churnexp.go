// This file implements E-CHURN, the robustness experiment: how gracefully
// each policy's ack latency, progress, reliability and goodput degrade as
// node churn rises. Every policy at a given churn rate faces the
// *identical* fault schedule — the plan is compiled from (seed, rate)
// alone, before any run, and concurrent policy engines replay it through
// private injector cursors — so the degradation curves differ only in the
// protocols, never in the faults. Each policy engine runs on its own
// Topology.Clone (leave/join patches mutate the graph in place); the
// reliability metric reads the pristine reference topology.

package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"lbcast/internal/churn"
	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/geo"
	"lbcast/internal/sim"
	"lbcast/internal/stats"
	"lbcast/internal/world"
)

func init() {
	register(Experiment{ID: "E-CHURN", Claim: "robustness under node churn: degradation vs fault rate on identical schedules", Run: runChurnExp})
}

// churnDefaultPolicies is the default policy selection of the churn matrix:
// the paper's algorithm against the fast and slow dual-graph baselines.
var churnDefaultPolicies = []string{"lbalg", "contention-uniform", "decay"}

// ChurnRow is one (churn rate, algorithm) measurement. It carries the
// comparison metrics plus the fault-load telemetry of the schedule the run
// faced. JSON field names are the stable schema documented in
// docs/EXPERIMENTS.md.
type ChurnRow struct {
	ComparisonRow
	// Load is the churn intensity in protocol-relative units: expected
	// crashes per node per ack window (half the round budget) of the
	// slowest policy. The sweep's independent variable.
	Load float64 `json:"crashes_per_ack_window"`
	// CrashRate is the resulting per-node per-round crash probability.
	CrashRate float64 `json:"crash_rate"`
	// LeaveRate is the per-node per-round departure probability.
	LeaveRate float64 `json:"leave_rate"`
	// Crashes/Leaves/Joins/Recovers count the lifecycle events applied.
	Crashes  int `json:"crashes"`
	Recovers int `json:"recovers"`
	Leaves   int `json:"leaves"`
	Joins    int `json:"joins"`
	// DownFraction is the fraction of node-rounds spent down or absent —
	// the availability loss the protocols had to absorb.
	DownFraction float64 `json:"down_fraction"`
}

// ChurnReport is the JSON document produced by `lbsim -exp churn`.
type ChurnReport struct {
	// Schema identifies the document layout; bump on incompatible change.
	Schema string `json:"schema"`
	// Seed is the experiment seed all topologies and plans derived from.
	Seed uint64 `json:"seed"`
	// Size is the experiment scale the point counts were picked at.
	Size string `json:"size"`
	// Policies lists the selected policy names in selection order.
	Policies []string `json:"policies"`
	// Rows holds one entry per (rate, algorithm), rates ascending — the
	// degradation curve of each algorithm read along its rate column.
	Rows []ChurnRow `json:"rows"`
	// Notes records calibration context for human readers.
	Notes []string `json:"notes,omitempty"`
}

// WriteJSON renders the report with stable formatting.
func (r *ChurnReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// churnLoads is the sweep, in protocol-relative units: the expected number
// of crashes per node per acknowledgement window of the slowest policy
// (half the round budget). A churn-free control point, then three loads
// spanning light (most ack windows survive a sender's uptime) to heavy
// (the slowest policy can essentially never finish a window between
// its sender's crashes, while fast baselines still can).
var churnLoads = []float64{0, 0.25, 1, 4}

// RunChurn executes the churn matrix with the default policy selection and
// worker count. See RunChurnPolicies.
func RunChurn(size Size, seed uint64) (*ChurnReport, error) {
	return RunChurnPolicies(size, seed, nil, 0)
}

// RunChurnPolicies executes the churn matrix: one constant-density
// geometric topology per size, and for every churn rate one Poisson fault
// plan that every selected policy replays verbatim. Each policy engine
// patches its own topology clone; protocol parameters are derived once from
// the full universe, whose Δ/Δ′ bound every patched subgraph. names selects
// policies from the world registry (nil means the default trio); workers
// bounds engine concurrency (≤ 0 means GOMAXPROCS) — the report is
// byte-identical at any worker count.
func RunChurnPolicies(size Size, seed uint64, names []string, workers int) (*ChurnReport, error) {
	if names == nil {
		names = churnDefaultPolicies
	}
	policies, err := world.Select(names)
	if err != nil {
		return nil, err
	}
	n := pick(size, 48, 100, 250)
	roundsCap := pick(size, 60_000, 150_000, 400_000)
	const eps = 0.2

	rep := &ChurnReport{
		Schema:   "lbcast-churn/v2",
		Seed:     seed,
		Size:     comparisonSizeName(size),
		Policies: names,
		Notes: []string{
			"topology: constant-density random geometric (comparison family), r=1.5, grey-zone links unreliable",
			"load = expected crashes per node per slowest ack window; identical Poisson fault schedule per load across all policies",
			"leave rate = crash rate / 4; outage lengths ≈ 2% (crash) / 4% (leave) of the run",
			"dual-graph scatter with the oblivious random½ link scheduler; per-policy engines are sequential (GOMAXPROCS-independent output)",
			"reliability counts receptions among full-universe reliable neighbors: outages erode it by construction",
			fmt.Sprintf("ε=%v sizes every policy's acknowledgement window", eps),
		},
	}
	for _, load := range churnLoads {
		rows, err := runChurnPoint(n, seed, load, eps, roundsCap, policies, workers)
		if err != nil {
			return nil, fmt.Errorf("exp: churn load=%v: %w", load, err)
		}
		rep.Rows = append(rep.Rows, rows...)
	}
	return rep, nil
}

// churnPlanFor compiles the fault schedule for one (n, seed, rate, rounds)
// point. Pure function: every policy at this point gets this schedule.
// Outage lengths scale with the run (≈ 2% of it per crash), so the sweep
// varies fault frequency, not a fixed absolute downtime.
func churnPlanFor(n int, seed uint64, rate float64, rounds int) (*churn.Plan, error) {
	if rate == 0 {
		return churn.FixedScript(nil, nil, nil), nil
	}
	downtime := max(20, rounds/50)
	return churn.Poisson(churn.PoissonConfig{
		N: n, Rounds: rounds, Seed: seed ^ math.Float64bits(rate),
		CrashRate:    rate,
		MeanDowntime: downtime,
		LeaveRate:    rate / 4,
		MeanAbsence:  2 * downtime,
	})
}

// runChurnPoint runs every selected policy against the load's fault
// schedule through the World harness.
func runChurnPoint(n int, seed uint64, load, eps float64, roundsCap int, policies []world.Policy, workers int) ([]ChurnRow, error) {
	// Full-universe parameters: the pristine reference topology supplies
	// Δ/Δ′ and the reliability neighbor sets (Instance.Neighbors reads it
	// and it is never patched); every engine runs a private clone.
	top, err := world.NewSweepTopology(n, seed, eps)
	if err != nil {
		return nil, err
	}
	w, err := world.New(top, policies, workers)
	if err != nil {
		return nil, err
	}
	rounds := w.Window(roundsCap)
	senders := len(w.Senders())

	// Translate the protocol-relative load into a per-round rate: the ack
	// window is half the budget (rounds = 2 windows + slack).
	rate := load / float64(rounds/2)
	if load == 0 {
		rate = 0
	}
	plan, err := churnPlanFor(n, seed, rate, rounds)
	if err != nil {
		return nil, err
	}
	if err := plan.Validate(n); err != nil {
		return nil, err
	}
	planStats := plan.Stats(n, rounds)

	// Per-policy fault state, index-aligned with the selection: the shared
	// plan is read-only during the run (each injector advances a private
	// cursor), the clones and injectors are engine-private.
	injs := make([]*churn.Injector, len(policies))
	duals := make([]*dualgraph.Dual, len(policies))

	rows := make([]ChurnRow, 0, len(policies))
	err = w.Run(world.Hooks{
		Rounds: func(int) int { return rounds },
		Configure: func(i int, p world.Policy, inst *world.Instance, cfg *sim.Config) error {
			d, err := top.Clone()
			if err != nil {
				return err
			}
			svcs := make([]core.Service, n)
			procs := make([]sim.Process, n)
			for u := 0; u < n; u++ {
				svcs[u] = inst.NewService(u)
				procs[u] = svcs[u]
			}
			env := core.NewSaturatingEnv(svcs, senderRange(senders))
			inj, err := churn.NewInjector(churn.InjectorConfig{
				Plan: plan, Dual: d, Index: geo.BuildGridIndex(d.Emb),
				Policy: dualgraph.GreyUnreliable,
				Restart: func(u int) sim.Process {
					svcs[u] = inst.NewService(u)
					return svcs[u]
				},
				Inner: env,
				OnRestart: func(u int, _ sim.Process) {
					// A restarted sender lost its in-flight broadcast and its
					// ack hook; re-arm it so saturation resumes.
					env.Rearm(u)
				},
			})
			if err != nil {
				return err
			}
			if err := inj.Detach(); err != nil {
				return err
			}
			injs[i], duals[i] = inj, d
			cfg.Dual = d
			cfg.Procs = procs
			cfg.Env = inj
			cfg.Seed = world.EngineSeed(seed, i)
			inst.Channel(cfg, seed)
			return nil
		},
		Attach: func(i int, p world.Policy, e *sim.Engine) error {
			injs[i].Attach(e)
			return nil
		},
		Finish: func(i int, p world.Policy, inst *world.Instance, e *sim.Engine) error {
			if err := injs[i].Err(); err != nil {
				return err
			}
			if err := duals[i].Validate(); err != nil {
				return fmt.Errorf("patched dual invalid after run: %w", err)
			}
			row := ChurnRow{
				ComparisonRow: world.Summarize(e.Trace(), rounds, inst.Neighbors),
				Load:          load,
				CrashRate:     rate,
				LeaveRate:     rate / 4,
				Crashes:       planStats.Crashes,
				Recovers:      planStats.Recovers,
				Leaves:        planStats.Leaves,
				Joins:         planStats.Joins,
			}
			row.DownFraction = float64(planStats.DownNodeRounds) / (float64(n) * float64(rounds))
			row.Topology = "sweep-geometric"
			row.N = n
			row.Algorithm = p.Name
			row.Model = p.Model
			row.Senders = senders
			rows = append(rows, row)
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// ChurnTable renders a churn report as a stats table for terminal output.
func ChurnTable(rep *ChurnReport) *stats.Table {
	tbl := &stats.Table{
		Title: "E-CHURN: degradation under node churn (identical fault schedules)",
		Columns: []string{"load", "down frac", "algorithm", "rounds", "acks",
			"reliability", "ack p50", "1st-recv p50", "msgs/ack", "deliv/round"},
		Notes: rep.Notes,
	}
	for _, r := range rep.Rows {
		tbl.AddRow(fmt.Sprintf("%.2f", r.Load), fmt.Sprintf("%.3f", r.DownFraction),
			r.Algorithm, r.Rounds, r.Acks, fmt.Sprintf("%.3f", r.Reliability),
			r.AckP50, r.FirstRecvP50, stats.FormatFloat(r.MsgsPerAck),
			stats.FormatFloat(r.DeliveriesPerRound))
	}
	return tbl
}

// runChurnExp adapts RunChurn to the experiment registry.
func runChurnExp(size Size, seed uint64) (*Result, error) {
	rep, err := RunChurn(size, seed)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "E-CHURN",
		Claim:  "robustness: ack/progress/reliability/goodput degradation under churn",
		Tables: []*stats.Table{ChurnTable(rep)},
	}, nil
}
