package exp

import (
	"fmt"

	"lbcast/internal/amac"
	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/stats"
	"lbcast/internal/xrand"
)

func init() {
	register(Experiment{ID: "E-AMAC", Claim: "abstract MAC layer composition: global broadcast over LBAlg", Run: runAmac})
}

// runAmac floods a message over multi-hop dual graphs through the abstract
// MAC adapter and reports completion latency normalised by (graph diameter
// × phase length) — the composition argument for porting abstract-MAC-layer
// algorithms to the dual graph model.
func runAmac(size Size, seed uint64) (*Result, error) {
	trials := pick(size, 2, 4, 8)
	lineLen := pick(size, 6, 10, 16)
	gridSide := pick(size, 3, 4, 6)
	eps := 0.25

	rng := xrand.New(seed)
	type topo struct {
		name  string
		build func() (*dualgraph.Dual, error)
	}
	topos := []topo{
		{fmt.Sprintf("line-%d", lineLen), func() (*dualgraph.Dual, error) { return dualgraph.Line(lineLen, 1, 1.5, rng) }},
		{fmt.Sprintf("grid-%dx%d", gridSide, gridSide), func() (*dualgraph.Dual, error) {
			return dualgraph.GridLattice(gridSide, 1, 1.5, rng)
		}},
		{"two-tier-3x4", func() (*dualgraph.Dual, error) { return dualgraph.TwoTierClusters(3, 4, 2, rng) }},
	}

	tbl := &stats.Table{
		Title:   "E-AMAC: multi-hop flood over the abstract MAC layer",
		Columns: []string{"topology", "diameter", "f_prog", "mean latency (rounds)", "latency/(diam·phase)", "completed"},
		Notes: []string{
			"flood = each node re-broadcasts each message once (the basic abstract-MAC global broadcast)",
			"normalised latency ≈ constant across topologies: completion is O(diameter · f_prog)-shaped",
		},
	}
	for _, tp := range topos {
		d, err := tp.build()
		if err != nil {
			return nil, err
		}
		diam, connected := d.Gp.Diameter()
		if !connected {
			return nil, fmt.Errorf("E-AMAC: %s disconnected in G'", tp.name)
		}
		p, err := core.DeriveParams(d.Delta(), d.DeltaPrime(), max(1, d.R), eps)
		if err != nil {
			return nil, err
		}
		var lat stats.Summary
		completed := 0
		for trial := 0; trial < trials; trial++ {
			layers := make([]amac.Layer, d.N())
			procs := make([]sim.Process, d.N())
			for u := 0; u < d.N(); u++ {
				alg := core.NewLBAlg(p)
				alg.RecordHears = false
				layers[u] = amac.NewAdapter(alg, amac.FromLBParams(p))
				procs[u] = alg
			}
			flood := amac.NewFlood(layers)
			e, err := sim.New(sim.Config{Dual: d, Procs: procs,
				Sched: sched.NewRandom(0.7, seed+uint64(trial)),
				Env:   flood, Seed: seed + uint64(trial)*41})
			if err != nil {
				return nil, err
			}
			key, err := flood.Start(0, "flood")
			if err != nil {
				return nil, err
			}
			budget := (diam + 3) * 6 * p.PhaseLen()
			for r := 0; r < budget; r++ {
				e.Step()
				if _, done := flood.Complete(key); done {
					break
				}
			}
			if l, ok := flood.Latency(key); ok {
				lat.AddInt(l)
				completed++
			}
		}
		norm := lat.Mean() / float64(diam*p.PhaseLen())
		tbl.AddRow(tp.name, diam, p.TProgBound(), lat.Mean(), norm,
			fmt.Sprintf("%d/%d", completed, trials))
	}
	return &Result{ID: "E-AMAC", Claim: "abstract MAC composition", Tables: []*stats.Table{tbl}}, nil
}
