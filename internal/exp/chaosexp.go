// This file implements E-CHAOS, the runtime-verification experiment: a
// bounded randomized search over composed stress scenarios (adversary ×
// churn × fades × reception model), each run with the online invariant
// monitor attached, plus a seeded-fault canary proving the detect → shrink
// → replay loop works end to end. A clean search is the robustness
// evidence; a hit is a real invariant break and fails the run after writing
// a minimized repro document.

package exp

import (
	"encoding/json"
	"fmt"
	"io"

	"lbcast/internal/chaos"
	"lbcast/internal/stats"
)

func init() {
	register(Experiment{ID: "E-CHAOS", Claim: "runtime verification: randomized scenario search is violation-free; seeded faults are detected and shrunk", Run: runChaosExp})
}

// ChaosCanary documents the seeded-fault self-test of one E-CHAOS run.
type ChaosCanary struct {
	// Fault is the observation-layer fault that was injected.
	Fault chaos.FaultSpec `json:"fault"`
	// Shrink summarizes the minimization (invariant class, replays,
	// reduction).
	Shrink chaos.ShrinkStats `json:"shrink"`
	// Repro is the minimized scenario — the document a real failure would
	// write to repro.json.
	Repro *chaos.Scenario `json:"repro"`
}

// ChaosReport is the JSON document produced by `lbsim -exp chaos`.
type ChaosReport struct {
	// Schema identifies the document layout; the embedded scenarios use
	// chaos.SchemaV1.
	Schema string `json:"schema"`
	// Seed is the first master seed of the search range.
	Seed uint64 `json:"seed"`
	// Size is the experiment scale the trial count was picked at.
	Size string `json:"size"`
	// Trials is the number of scenarios searched; CleanTrials how many ran
	// violation-free (a difference fails the experiment).
	Trials      int `json:"trials"`
	CleanTrials int `json:"clean_trials"`
	// Violation is the first real violation found, if any.
	Violation *chaos.Scenario `json:"violation,omitempty"`
	// Canary is the seeded-fault self-test.
	Canary *ChaosCanary `json:"canary"`
	// Notes records calibration context for human readers.
	Notes []string `json:"notes,omitempty"`
}

// WriteJSON renders the report with stable formatting.
func (r *ChaosReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RunChaos executes the E-CHAOS search and canary. The error return is
// reserved for infrastructure failures; a real invariant violation is
// reported through the Violation field (and by runChaosExp as a failure).
func RunChaos(size Size, seed uint64) (*ChaosReport, error) {
	trials := pick(size, 8, 24, 64)
	maxN := pick(size, 40, 64, 96)

	rep := &ChaosReport{
		Schema: "lbcast-chaos-report/v1",
		Seed:   seed,
		Size:   comparisonSizeName(size),
		Trials: trials,
		Notes: []string{
			"each trial derives topology, scheduler (incl. the adaptive adversary), churn plan, fades and reception model from one master seed",
			"every run carries lbspec.Monitor; a violation is a real invariant break",
			"the canary seeds an observation-layer fault, then delta-debugs the scenario to a minimal repro",
			fmt.Sprintf("scenario documents use the %s schema", chaos.SchemaV1),
		},
	}

	hit, _, tried, err := chaos.Search(seed, trials, chaos.GenOptions{MaxN: maxN}, chaos.RunOptions{})
	if err != nil {
		return nil, err
	}
	if hit != nil {
		rep.CleanTrials = tried - 1
		min, _, err := chaos.Shrink(hit, chaos.RunOptions{})
		if err != nil {
			// Shrinking a real violation is best-effort; report the
			// original scenario if it fails.
			min = hit
		}
		rep.Violation = min
	} else {
		rep.CleanTrials = trials
	}

	// Seeded canary: first generable faulted scenario at this size.
	var canarySc *chaos.Scenario
	for off := uint64(0); off < 16; off++ {
		sc, err := chaos.Generate(seed+1_000_003+off, chaos.GenOptions{MaxN: maxN, Fault: true})
		if err == nil {
			canarySc = sc
			break
		}
	}
	if canarySc == nil {
		return nil, fmt.Errorf("exp: chaos canary generation failed for every offset")
	}
	minimized, shrink, err := chaos.Shrink(canarySc, chaos.RunOptions{})
	if err != nil {
		return nil, fmt.Errorf("exp: chaos canary: %w", err)
	}
	rep.Canary = &ChaosCanary{Fault: *canarySc.Fault, Shrink: *shrink, Repro: minimized}
	return rep, nil
}

// ChaosTable renders a chaos report as a stats table for terminal output.
func ChaosTable(rep *ChaosReport) *stats.Table {
	tbl := &stats.Table{
		Title:   "E-CHAOS: randomized invariant search + seeded-fault shrinking",
		Columns: []string{"metric", "value"},
		Notes:   rep.Notes,
	}
	tbl.AddRow("trials", rep.Trials)
	tbl.AddRow("clean trials", rep.CleanTrials)
	if rep.Violation != nil {
		tbl.AddRow("VIOLATING SEED", rep.Violation.Seed)
	}
	if c := rep.Canary; c != nil {
		tbl.AddRow("canary fault", fmt.Sprintf("%s @ node %d", c.Fault.Kind, c.Fault.Node))
		tbl.AddRow("canary invariant", c.Shrink.Invariant)
		tbl.AddRow("canary shrink: nodes", fmt.Sprintf("%d -> %d", c.Shrink.FromN, c.Shrink.ToN))
		tbl.AddRow("canary shrink: churn events", fmt.Sprintf("%d -> %d", c.Shrink.FromEvents, c.Shrink.ToEvents))
		tbl.AddRow("canary shrink: phases", fmt.Sprintf("%d -> %d", c.Shrink.FromPhases, c.Shrink.ToPhases))
		tbl.AddRow("canary shrink: replays", c.Shrink.Replays)
	}
	return tbl
}

// runChaosExp adapts RunChaos to the experiment registry: a real violation
// fails the experiment.
func runChaosExp(size Size, seed uint64) (*Result, error) {
	rep, err := RunChaos(size, seed)
	if err != nil {
		return nil, err
	}
	if rep.Violation != nil {
		return nil, fmt.Errorf("exp: chaos search found a real invariant violation (seed %d, shrunk to n=%d); replay with lbsim -exp chaos -repro",
			rep.Violation.Seed, rep.Violation.N)
	}
	return &Result{
		ID:     "E-CHAOS",
		Claim:  "runtime verification: scenario search clean; seeded faults detected and shrunk",
		Tables: []*stats.Table{ChaosTable(rep)},
	}, nil
}
