package exp

import (
	"fmt"
	"math"

	"lbcast/internal/dualgraph"
	"lbcast/internal/sched"
	"lbcast/internal/seedagree"
	"lbcast/internal/sim"
	"lbcast/internal/stats"
	"lbcast/internal/xrand"
)

func init() {
	register(Experiment{ID: "E-SEED-DELTA", Claim: "Theorem 3.1: δ = O(r²·log(1/ε₁))", Run: runSeedDelta})
	register(Experiment{ID: "E-SEED-TIME", Claim: "Theorem 3.1: O(logΔ·log²(1/ε₁)) rounds", Run: runSeedTime})
	register(Experiment{ID: "E-SEED-SPEC", Claim: "Seed(δ,ε) conditions 1–4", Run: runSeedSpec})
}

// runSeedInstance executes one standalone seed agreement run and returns the
// per-process handles.
func runSeedInstance(d *dualgraph.Dual, p seedagree.Params, s sim.LinkScheduler, seed uint64) ([]*seedagree.Process, error) {
	procs := make([]*seedagree.Process, d.N())
	simProcs := make([]sim.Process, d.N())
	for u := range procs {
		procs[u] = seedagree.NewProcess(p)
		simProcs[u] = procs[u]
	}
	e, err := sim.New(sim.Config{Dual: d, Procs: simProcs, Sched: s, Seed: seed})
	if err != nil {
		return nil, err
	}
	e.Run(p.Rounds())
	return procs, nil
}

// runSeedDelta measures the worst per-neighborhood committed owner count on
// random geometric dual graphs across r and ε, against the Theorem 3.1
// shape δ = O(r²·log(1/ε₁)).
func runSeedDelta(size Size, seed uint64) (*Result, error) {
	n := pick(size, 150, 500, 2000)
	trials := pick(size, 3, 8, 20)
	rs := pick(size, []float64{1, 2}, []float64{1, 1.5, 2}, []float64{1, 1.5, 2, 3})
	epss := []float64{0.25, 1.0 / 16, 1.0 / 64}

	tbl := &stats.Table{
		Title:   "E-SEED-DELTA: unique committed owners per G′ neighborhood (Theorem 3.1)",
		Columns: []string{"r", "eps1", "Delta", "max owners", "p95 owners", "bound 6r²log(1/ε)", "within bound"},
		Notes: []string{
			"bound uses the calibrated practical constant 6 for the O(r²·log(1/ε₁)) of Theorem 3.1",
			fmt.Sprintf("random geometric graphs, n=%d, %d trials per cell, all grey-zone links unreliable", n, trials),
		},
	}
	rng := xrand.New(seed)
	for _, r := range rs {
		// Fix the area so density (and Δ) stays roughly constant across r.
		side := math.Sqrt(float64(n) / 18)
		d, err := dualgraph.RandomGeometric(n, side, side, r, dualgraph.GreyUnreliable, rng)
		if err != nil {
			return nil, err
		}
		for _, eps := range epss {
			p, err := seedagree.NewParams(eps, 64, d.Delta())
			if err != nil {
				return nil, err
			}
			var counts []float64
			worst := 0
			for trial := 0; trial < trials; trial++ {
				procs, err := runSeedInstance(d, p, sched.NewRandom(0.5, seed+uint64(trial)), seed+uint64(trial)*7919)
				if err != nil {
					return nil, err
				}
				ds, err := seedagree.CollectDecisions(procs)
				if err != nil {
					return nil, err
				}
				m, _ := seedagree.MaxOwnerCount(d, ds)
				counts = append(counts, float64(m))
				if m > worst {
					worst = m
				}
			}
			bound := 6 * r * r * math.Log2(1/eps)
			tbl.AddRow(r, eps, d.Delta(), worst, stats.Quantile(counts, 0.95), bound,
				fmt.Sprintf("%v", float64(worst) <= bound))
		}
	}
	return &Result{ID: "E-SEED-DELTA", Claim: "Theorem 3.1 (δ bound)", Tables: []*stats.Table{tbl}}, nil
}

// runSeedTime verifies the running-time structure O(logΔ·log²(1/ε₁)):
// measured rounds are exact (the algorithm is synchronous), so the table
// reports the closed form and its scaling ratios.
func runSeedTime(size Size, _ uint64) (*Result, error) {
	deltas := pick(size,
		[]int{8, 16, 32, 64},
		[]int{8, 16, 32, 64, 128, 256},
		[]int{8, 16, 32, 64, 128, 256, 512, 1024})
	epss := []float64{0.25, 1.0 / 16, 1.0 / 64}

	tbl := &stats.Table{
		Title:   "E-SEED-TIME: SeedAlg running time (Theorem 3.1)",
		Columns: []string{"Delta", "eps1", "phases(logΔ)", "phase len", "rounds", "rounds/(logΔ·log²(1/ε))"},
		Notes:   []string{"the normalised column must be flat (= c₄ up to ceiling): time is Θ(logΔ·log²(1/ε₁))"},
	}
	var xs, ys []float64
	for _, delta := range deltas {
		for _, eps := range epss {
			p, err := seedagree.NewParams(eps, 8, delta)
			if err != nil {
				return nil, err
			}
			l := math.Log2(1 / eps)
			norm := float64(p.Rounds()) / (float64(p.Phases()) * l * l)
			tbl.AddRow(delta, eps, p.Phases(), p.PhaseLen(), p.Rounds(), norm)
			if eps == 0.25 {
				xs = append(xs, float64(p.Phases()))
				ys = append(ys, float64(p.Rounds()))
			}
		}
	}
	slope := stats.LogLogSlope(xs, ys)
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("log–log slope of rounds vs logΔ at ε=¼: %.3f (theory: 1.0)", slope))
	return &Result{ID: "E-SEED-TIME", Claim: "Theorem 3.1 (time)", Tables: []*stats.Table{tbl}}, nil
}

// runSeedSpec validates all four Seed(δ, ε) conditions across graph
// families and schedulers, plus a statistical independence check.
func runSeedSpec(size Size, seed uint64) (*Result, error) {
	trials := pick(size, 4, 10, 30)
	rng := xrand.New(seed)

	type family struct {
		name  string
		build func() (*dualgraph.Dual, error)
	}
	families := []family{
		{"cluster-24", func() (*dualgraph.Dual, error) { return dualgraph.SingleHopCluster(24, 1, rng) }},
		{"two-tier-4x8", func() (*dualgraph.Dual, error) { return dualgraph.TwoTierClusters(4, 8, 2, rng) }},
		{"geometric-200", func() (*dualgraph.Dual, error) {
			return dualgraph.RandomGeometric(200, 5, 5, 1.5, dualgraph.GreyUnreliable, rng)
		}},
		{"line-30", func() (*dualgraph.Dual, error) { return dualgraph.Line(30, 0.9, 1.5, rng) }},
	}
	schedulers := map[string]sim.LinkScheduler{
		"never":   sched.Never{},
		"always":  sched.Always{},
		"random½": sched.NewRandom(0.5, seed),
	}

	tbl := &stats.Table{
		Title:   "E-SEED-SPEC: Seed(δ,ε) specification conditions",
		Columns: []string{"family", "scheduler", "trials", "wf+consistency violations", "max owners", "owner-seed bit balance"},
		Notes: []string{
			"well-formedness, consistency and ownership (Lemma B.1) must show 0 violations",
			"bit balance is the mean fraction of one-bits across committed owner seeds (independence ⇒ ≈0.5)",
		},
	}
	for _, fam := range families {
		d, err := fam.build()
		if err != nil {
			return nil, err
		}
		p, err := seedagree.NewParams(0.1, 64, d.Delta())
		if err != nil {
			return nil, err
		}
		for name, s := range schedulers {
			violations, worst := 0, 0
			ones, bits := 0, 0
			for trial := 0; trial < trials; trial++ {
				procs, err := runSeedInstance(d, p, s, seed^uint64(trial)*2654435761)
				if err != nil {
					return nil, err
				}
				ds, err := seedagree.CollectDecisions(procs)
				if err != nil {
					violations++
					continue
				}
				if err := seedagree.CheckConsistency(ds); err != nil {
					violations++
				}
				initial := make(map[int]*xrand.BitString, len(procs))
				for u, pr := range procs {
					initial[u] = pr.Alg().InitialSeed()
				}
				if err := seedagree.CheckOwnership(ds, initial); err != nil {
					violations++
				}
				if m, _ := seedagree.MaxOwnerCount(d, ds); m > worst {
					worst = m
				}
				for _, s := range seedagree.OwnerSeeds(ds) {
					ones += s.Ones()
					bits += s.Len()
				}
			}
			balance := float64(ones) / float64(bits)
			tbl.AddRow(fam.name, name, trials, violations, worst, balance)
		}
	}
	return &Result{ID: "E-SEED-SPEC", Claim: "Seed(δ,ε) §3.1 conditions", Tables: []*stats.Table{tbl}}, nil
}
