package exp

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"E-SEED-DELTA", "E-SEED-TIME", "E-SEED-SPEC",
		"E-PROG", "E-ACK", "E-RECV-PROB", "E-DET",
		"E-ADV", "E-LOWER", "E-ADAPT",
		"E-LOCAL", "E-REGION", "E-AMAC",
		"E-ABL-FREQ", "E-CONST",
		"E-MMB", "E-CONSENSUS",
		"E-COMPARE", "E-SINR", "E-CHURN", "E-CHAOS", "E-LOAD",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	if _, ok := ByID("E-NOPE"); ok {
		t.Error("ByID found a nonexistent experiment")
	}
	if len(IDs()) != len(want) {
		t.Errorf("IDs() returned %d entries", len(IDs()))
	}
}

func TestParseSize(t *testing.T) {
	for s, want := range map[string]Size{"small": SizeSmall, "medium": SizeMedium, "full": SizeFull} {
		got, err := ParseSize(s)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSize("huge"); err == nil {
		t.Error("ParseSize accepted junk")
	}
}

func TestPick(t *testing.T) {
	if pick(SizeSmall, 1, 2, 3) != 1 || pick(SizeMedium, 1, 2, 3) != 2 || pick(SizeFull, 1, 2, 3) != 3 {
		t.Error("pick returned wrong preset")
	}
}

func TestSenderRange(t *testing.T) {
	got := senderRange(3)
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("senderRange(3) = %v", got)
	}
}

// TestAllExperimentsSmall executes the entire suite at small size: every
// claim reproduction must run end to end and render non-empty tables.
// This is the repository's main integration test.
func TestAllExperimentsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			res, err := e.Run(SizeSmall, 1)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if res.ID != e.ID {
				t.Errorf("result ID %q ≠ experiment ID %q", res.ID, e.ID)
			}
			if len(res.Tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tbl := range res.Tables {
				if len(tbl.Rows) == 0 {
					t.Errorf("table %q is empty", tbl.Title)
				}
				if !strings.Contains(tbl.String(), "##") {
					t.Errorf("table %q renders without a title", tbl.Title)
				}
			}
		})
	}
}
