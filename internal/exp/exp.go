package exp

import (
	"fmt"
	"sort"

	"lbcast/internal/core"
	"lbcast/internal/dualgraph"
	"lbcast/internal/sim"
	"lbcast/internal/stats"
)

// Size selects the scale of an experiment run.
type Size int

const (
	// SizeSmall is bench/CI scale: seconds per experiment.
	SizeSmall Size = iota + 1
	// SizeMedium is the default CLI scale.
	SizeMedium
	// SizeFull is the docs/EXPERIMENTS.md publication scale.
	SizeFull
)

// ParseSize converts a flag value.
func ParseSize(s string) (Size, error) {
	switch s {
	case "small":
		return SizeSmall, nil
	case "medium":
		return SizeMedium, nil
	case "full":
		return SizeFull, nil
	default:
		return 0, fmt.Errorf("exp: unknown size %q (small|medium|full)", s)
	}
}

// Result is the output of one experiment.
type Result struct {
	ID     string
	Claim  string
	Tables []*stats.Table
}

// Experiment couples a claim with the code that regenerates it.
type Experiment struct {
	// ID is the experiment identifier from docs/EXPERIMENTS.md (e.g. "E-PROG").
	ID string
	// Claim names the paper statement being reproduced.
	Claim string
	// Run executes the experiment at the given size with the given seed.
	Run func(size Size, seed uint64) (*Result, error)
}

// registry holds the experiments in registration order.
var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the experiments in registration order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists all registered experiment IDs, sorted.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}

// --- shared plumbing -------------------------------------------------------

// lbNetwork is an assembled LBAlg deployment ready to run.
type lbNetwork struct {
	engine *sim.Engine
	procs  []*core.LBAlg
	svcs   []core.Service
	params core.Params
}

// buildLBNetwork wires LBAlg over a dual graph. envFn may be nil.
func buildLBNetwork(d *dualgraph.Dual, p core.Params, s sim.LinkScheduler,
	envFn func([]core.Service) sim.Environment, seed uint64, recordHears bool) (*lbNetwork, error) {

	plan := core.NewPhasePlan(p)
	procs := make([]*core.LBAlg, d.N())
	simProcs := make([]sim.Process, d.N())
	svcs := make([]core.Service, d.N())
	for u := range procs {
		procs[u] = core.NewLBAlgWithPlan(plan)
		procs[u].RecordHears = recordHears
		simProcs[u] = procs[u]
		svcs[u] = procs[u]
	}
	var env sim.Environment
	if envFn != nil {
		env = envFn(svcs)
	}
	e, err := sim.New(sim.Config{Dual: d, Procs: simProcs, Sched: s, Env: env, Seed: seed})
	if err != nil {
		return nil, err
	}
	return &lbNetwork{engine: e, procs: procs, svcs: svcs, params: p}, nil
}

// firstHearRound runs the engine until the given node hears any data
// message, returning the round (or maxRounds if it never does). It scans
// only newly appended events each step.
func firstHearRound(e *sim.Engine, node, maxRounds int) int {
	seen := 0
	for r := 0; r < maxRounds; r++ {
		e.Step()
		tr := e.Trace()
		for ; seen < tr.Len(); seen++ {
			ev := tr.At(seen)
			if ev.Kind == sim.EvHear && ev.Node == node {
				return ev.Round
			}
		}
	}
	return maxRounds
}

// senderRange returns [0, k) as a slice.
func senderRange(k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = i
	}
	return out
}

// pick returns small/medium/full values by size.
func pick[T any](size Size, small, medium, full T) T {
	switch size {
	case SizeMedium:
		return medium
	case SizeFull:
		return full
	default:
		return small
	}
}
