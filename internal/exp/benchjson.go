package exp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// BenchResult is the measured cost of one experiment, the unit of the
// machine-readable BENCH_*.json files that track the performance trajectory
// across PRs.
type BenchResult struct {
	ID          string `json:"id"`
	Iters       int    `json:"iters"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

// GoBench is one `go test -bench` result line, embedded alongside the
// experiment measurements so a single file captures both harness- and
// API-level numbers. NsPerOp is a float because go test prints fractional
// ns/op for fast benchmarks (e.g. "6.194 ns/op").
type GoBench struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// BenchFile is the BENCH_*.json schema.
type BenchFile struct {
	Label     string        `json:"label,omitempty"`
	Note      string        `json:"note,omitempty"`
	GoVersion string        `json:"go_version"`
	Size      string        `json:"size"`
	Seed      uint64        `json:"seed"`
	Results   []BenchResult `json:"results"`
	GoTest    []GoBench     `json:"go_test,omitempty"`
	Sweep     []SweepPoint  `json:"sweep,omitempty"`
	// Construction records the topology-construction sweep run alongside
	// -sweep (see ConstructionPoint).
	Construction []ConstructionPoint `json:"construction,omitempty"`
	// Comparison embeds the algorithm comparison matrix when the sweep ran
	// with -compare (see ComparisonReport).
	Comparison *ComparisonReport `json:"comparison,omitempty"`
	// Load embeds the open-loop traffic matrix when run with -load (see
	// LoadReport).
	Load *LoadReport `json:"load,omitempty"`
}

// WriteJSON renders the file with stable formatting.
func (f BenchFile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadBenchFile parses a BENCH_*.json file, e.g. a committed baseline for
// the CI regression gate.
func ReadBenchFile(r io.Reader) (BenchFile, error) {
	var f BenchFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return BenchFile{}, fmt.Errorf("exp: decoding bench file: %w", err)
	}
	return f, nil
}

// MinGoBenchNs returns the minimum ns/op recorded for the named go-test
// benchmark (benchmarks may appear multiple times under -count), or ok=false
// if the file has no entry for it. Names match on the base benchmark name,
// ignoring any -cpus suffix (e.g. "BenchmarkNetworkRound-8").
func (f BenchFile) MinGoBenchNs(name string) (float64, bool) {
	best, ok := 0.0, false
	for _, b := range f.GoTest {
		base := b.Name
		if i := strings.IndexByte(base, '-'); i >= 0 {
			base = base[:i]
		}
		if base != name {
			continue
		}
		if !ok || b.NsPerOp < best {
			best, ok = b.NsPerOp, true
		}
	}
	return best, ok
}

// MinGoBenchAllocs returns the minimum allocs/op recorded for the named
// go-test benchmark, or ok=false if no entry carries allocation data (the
// run lacked -benchmem, or the baseline predates the allocation gate).
// Name matching follows MinGoBenchNs.
func (f BenchFile) MinGoBenchAllocs(name string) (int64, bool) {
	best, ok := int64(0), false
	for _, b := range f.GoTest {
		base := b.Name
		if i := strings.IndexByte(base, '-'); i >= 0 {
			base = base[:i]
		}
		if base != name || b.AllocsPerOp == 0 {
			continue
		}
		if !ok || b.AllocsPerOp < best {
			best, ok = b.AllocsPerOp, true
		}
	}
	return best, ok
}

// MeasureExperiment runs the experiment iters times (varying the seed per
// iteration, like the root benchmarks do) and reports wall time and
// allocation cost per run.
func MeasureExperiment(e Experiment, size Size, seed uint64, iters int) (BenchResult, error) {
	if iters < 1 {
		iters = 1
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := e.Run(size, seed+uint64(i)); err != nil {
			return BenchResult{}, fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return BenchResult{
		ID:          e.ID,
		Iters:       iters,
		NsPerOp:     elapsed.Nanoseconds() / int64(iters),
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(iters),
	}, nil
}

// ParseGoBench extracts benchmark lines from `go test -bench` output. Lines
// that are not benchmark results are skipped; malformed numeric fields fail
// loudly so a format drift cannot silently zero the trajectory.
func ParseGoBench(r io.Reader) ([]GoBench, error) {
	var out []GoBench
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || fields[3] != "ns/op" {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("exp: bad iteration count in %q: %w", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("exp: bad ns/op in %q: %w", sc.Text(), err)
		}
		b := GoBench{Name: fields[0], Iters: iters, NsPerOp: ns}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("exp: bad value in %q: %w", sc.Text(), err)
			}
			switch fields[i+1] {
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		out = append(out, b)
	}
	return out, sc.Err()
}
