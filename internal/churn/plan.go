package churn

import (
	"encoding/json"
	"fmt"
	"sort"

	"lbcast/internal/geo"
	"lbcast/internal/xrand"
)

// Kind classifies one lifecycle event.
type Kind uint8

const (
	// Crash takes the node's radio down; its protocol state is frozen
	// mid-execution, which is what a crash means.
	Crash Kind = iota + 1
	// Recover brings a crashed node back: the radio comes up and the
	// protocol restarts from scratch under a fresh incarnation RNG.
	Recover
	// Leave detaches the node from the dual graph (its edges disappear and
	// the unreliable edge indices renumber) and silences it.
	Leave
	// Join re-attaches a departed node at its original position and starts
	// a fresh protocol instance on it.
	Join
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Recover:
		return "recover"
	case Leave:
		return "leave"
	case Join:
		return "join"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// MarshalJSON encodes the kind by name, the stable spelling of the
// lbcast-chaos/v1 scenario documents.
func (k Kind) MarshalJSON() ([]byte, error) {
	s := k.String()
	switch k {
	case Crash, Recover, Leave, Join:
		return json.Marshal(s)
	}
	return nil, fmt.Errorf("churn: cannot marshal invalid %s", s)
}

// UnmarshalJSON decodes a kind name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	switch s {
	case "crash":
		*k = Crash
	case "recover":
		*k = Recover
	case "leave":
		*k = Leave
	case "join":
		*k = Join
	default:
		return fmt.Errorf("churn: unknown event kind %q", s)
	}
	return nil
}

// Event is one scheduled lifecycle fault: Kind happens to Node at the start
// of round Round, before any process acts in that round.
type Event struct {
	Round int  `json:"round"`
	Kind  Kind `json:"kind"`
	Node  int  `json:"node"`
}

// Fade is one region-level fading epoch: during rounds [Start, End) every
// unreliable edge with an endpoint in one of Regions is forced out of the
// communication graph, regardless of what the base link scheduler says.
type Fade struct {
	Start   int            `json:"start"`
	End     int            `json:"end"`
	Regions []geo.RegionID `json:"regions"`
}

// Plan is a complete, deterministic fault schedule: it is fully expanded
// before the run starts, so replaying a plan is as reproducible as running
// without one.
type Plan struct {
	// Events holds the lifecycle schedule in canonical (Round, Node) order.
	// At most one event per node per round.
	Events []Event `json:"events,omitempty"`
	// Fades holds the fading epochs, ordered by Start.
	Fades []Fade `json:"fades,omitempty"`
	// InitialAbsent lists nodes that start outside the network: the
	// injector detaches them before the engine is built and a Join event
	// brings them in. Ascending, no duplicates.
	InitialAbsent []int `json:"initial_absent,omitempty"`
}

// Empty reports whether the plan schedules nothing at all — the injector
// for an empty plan is a pure pass-through and the execution must be
// byte-identical to one without it.
func (p *Plan) Empty() bool {
	return len(p.Events) == 0 && len(p.Fades) == 0 && len(p.InitialAbsent) == 0
}

// PlanStats summarises the fault load a plan puts on an n-node network
// over a round horizon.
type PlanStats struct {
	// Crashes, Recovers, Leaves, Joins count the events within the horizon.
	Crashes, Recovers, Leaves, Joins int
	// DownNodeRounds is how many node-rounds are spent down or absent in
	// rounds [1, horizon] — the integral of unavailability.
	DownNodeRounds int
	// EventsPerRound is the lifecycle event rate over the horizon.
	EventsPerRound float64
}

// Stats replays the plan's state machine over rounds [1, horizon] and
// tallies the fault load. Assumes a validated plan.
func (p *Plan) Stats(n, horizon int) PlanStats {
	var s PlanStats
	downSince := make([]int, n) // round the node went down; 0 = up
	for _, u := range p.InitialAbsent {
		downSince[u] = 1
	}
	closeOutage := func(u, at int) {
		if downSince[u] > 0 {
			s.DownNodeRounds += min(at, horizon+1) - min(downSince[u], horizon+1)
			downSince[u] = 0
		}
	}
	for _, ev := range p.Events {
		if ev.Round > horizon {
			break
		}
		switch ev.Kind {
		case Crash:
			s.Crashes++
			downSince[ev.Node] = ev.Round
		case Leave:
			s.Leaves++
			downSince[ev.Node] = ev.Round
		case Recover:
			s.Recovers++
			closeOutage(ev.Node, ev.Round)
		case Join:
			s.Joins++
			closeOutage(ev.Node, ev.Round)
		}
	}
	for u := range downSince {
		closeOutage(u, horizon+1)
	}
	if horizon > 0 {
		s.EventsPerRound = float64(s.Crashes+s.Recovers+s.Leaves+s.Joins) / float64(horizon)
	}
	return s
}

// eventLess is the canonical event order: by round, then node. Kind need
// not participate — Validate rejects two same-round events on one node.
func eventLess(a, b Event) bool {
	if a.Round != b.Round {
		return a.Round < b.Round
	}
	return a.Node < b.Node
}

// normalize sorts the schedule into canonical order.
func (p *Plan) normalize() {
	sort.SliceStable(p.Events, func(i, j int) bool { return eventLess(p.Events[i], p.Events[j]) })
	sort.SliceStable(p.Fades, func(i, j int) bool { return p.Fades[i].Start < p.Fades[j].Start })
	sort.Ints(p.InitialAbsent)
}

// Validate replays the plan against the per-node lifecycle state machine
// for an n-node network and rejects any schedule the injector could not
// apply: out-of-range nodes or rounds, two events on one node in one
// round, crashing a node that is down or absent, recovering one that is
// up, leaving an absent node, joining a present one, or an empty/reversed
// fade window.
func (p *Plan) Validate(n int) error {
	type state struct{ present, up bool }
	nodes := make([]state, n)
	for i := range nodes {
		nodes[i] = state{present: true, up: true}
	}
	for i, u := range p.InitialAbsent {
		if u < 0 || u >= n {
			return fmt.Errorf("churn: initial-absent node %d out of range [0,%d)", u, n)
		}
		if i > 0 && p.InitialAbsent[i-1] >= u {
			return fmt.Errorf("churn: initial-absent list not strictly ascending at %d", u)
		}
		nodes[u] = state{}
	}
	lastRound, lastNode := 0, -1
	for _, ev := range p.Events {
		if ev.Node < 0 || ev.Node >= n {
			return fmt.Errorf("churn: event %s node %d out of range [0,%d)", ev.Kind, ev.Node, n)
		}
		if ev.Round < 1 {
			return fmt.Errorf("churn: event %s@%d round %d before round 1", ev.Kind, ev.Node, ev.Round)
		}
		if ev.Round < lastRound || (ev.Round == lastRound && ev.Node < lastNode) {
			return fmt.Errorf("churn: events not in canonical (round, node) order at %s@%d round %d",
				ev.Kind, ev.Node, ev.Round)
		}
		if ev.Round == lastRound && ev.Node == lastNode {
			return fmt.Errorf("churn: two events for node %d in round %d", ev.Node, ev.Round)
		}
		lastRound, lastNode = ev.Round, ev.Node
		s := &nodes[ev.Node]
		switch ev.Kind {
		case Crash:
			if !s.present || !s.up {
				return fmt.Errorf("churn: crash of node %d in round %d: node not up", ev.Node, ev.Round)
			}
			s.up = false
		case Recover:
			if !s.present || s.up {
				return fmt.Errorf("churn: recover of node %d in round %d: node not crashed", ev.Node, ev.Round)
			}
			s.up = true
		case Leave:
			if !s.present {
				return fmt.Errorf("churn: leave of node %d in round %d: node absent", ev.Node, ev.Round)
			}
			s.present, s.up = false, false
		case Join:
			if s.present {
				return fmt.Errorf("churn: join of node %d in round %d: node present", ev.Node, ev.Round)
			}
			s.present, s.up = true, true
		default:
			return fmt.Errorf("churn: unknown event kind %d", ev.Kind)
		}
	}
	for i, f := range p.Fades {
		if f.Start < 1 || f.End <= f.Start {
			return fmt.Errorf("churn: fade %d window [%d,%d) invalid", i, f.Start, f.End)
		}
		if len(f.Regions) == 0 {
			return fmt.Errorf("churn: fade %d has no regions", i)
		}
	}
	return nil
}

// FixedScript builds a plan from explicit event and fade lists, sorting
// them into canonical order. The caller validates against a node count via
// Plan.Validate (typically NewInjector does).
func FixedScript(events []Event, fades []Fade, initialAbsent []int) *Plan {
	p := &Plan{
		Events:        append([]Event(nil), events...),
		Fades:         append([]Fade(nil), fades...),
		InitialAbsent: append([]int(nil), initialAbsent...),
	}
	p.normalize()
	return p
}

// PoissonConfig parameterises the memoryless churn model: per-round
// Bernoulli arrival of crashes and departures (the discrete-time rendering
// of Poisson arrivals), with bounded random outage durations.
type PoissonConfig struct {
	// N is the network size; Rounds the schedule horizon.
	N, Rounds int
	// Seed derives every node's private fault stream, so the plan is a
	// deterministic function of the config.
	Seed uint64
	// CrashRate is the per-round crash probability of an up node.
	CrashRate float64
	// MeanDowntime is the mean crash outage in rounds (≥ 1). Outages are
	// uniform on [1, 2·MeanDowntime−1], so they are bounded and mean what
	// they say.
	MeanDowntime int
	// LeaveRate is the per-round departure probability of a present node;
	// 0 disables leave/join churn.
	LeaveRate float64
	// MeanAbsence is the mean absence before rejoin, sampled like
	// MeanDowntime. Defaults to MeanDowntime when 0.
	MeanAbsence int
	// InitialAbsent seeds the plan's initially-departed set; those nodes
	// join per the same absence distribution.
	InitialAbsent []int
}

// Poisson expands the config into an explicit plan. Each node walks its own
// lifecycle chain with a private xrand stream, so the schedule for node u
// is independent of every other node and of N — adding nodes never
// perturbs existing fault sequences.
func Poisson(cfg PoissonConfig) (*Plan, error) {
	if cfg.N <= 0 || cfg.Rounds <= 0 {
		return nil, fmt.Errorf("churn: poisson plan needs N > 0 and Rounds > 0")
	}
	if cfg.CrashRate < 0 || cfg.CrashRate > 1 || cfg.LeaveRate < 0 || cfg.LeaveRate > 1 {
		return nil, fmt.Errorf("churn: rates must lie in [0,1]")
	}
	if cfg.MeanDowntime <= 0 {
		cfg.MeanDowntime = 1
	}
	if cfg.MeanAbsence <= 0 {
		cfg.MeanAbsence = cfg.MeanDowntime
	}
	absent := make([]bool, cfg.N)
	for _, u := range cfg.InitialAbsent {
		if u < 0 || u >= cfg.N {
			return nil, fmt.Errorf("churn: initial-absent node %d out of range [0,%d)", u, cfg.N)
		}
		absent[u] = true
	}
	p := &Plan{InitialAbsent: append([]int(nil), cfg.InitialAbsent...)}
	for u := 0; u < cfg.N; u++ {
		rng := xrand.NodeSource(cfg.Seed, u)
		present, up := !absent[u], !absent[u]
		wakeAt := 0 // round of the pending recover/join, when down or absent
		if !present {
			wakeAt = 1 + sampleDuration(rng, cfg.MeanAbsence)
		}
		for t := 1; t <= cfg.Rounds; t++ {
			switch {
			case !present:
				if t == wakeAt {
					p.Events = append(p.Events, Event{Round: t, Kind: Join, Node: u})
					present, up = true, true
				}
			case !up:
				if t == wakeAt {
					p.Events = append(p.Events, Event{Round: t, Kind: Recover, Node: u})
					up = true
				}
			case cfg.LeaveRate > 0 && rng.Coin(cfg.LeaveRate):
				p.Events = append(p.Events, Event{Round: t, Kind: Leave, Node: u})
				present, up = false, false
				wakeAt = t + sampleDuration(rng, cfg.MeanAbsence)
			case cfg.CrashRate > 0 && rng.Coin(cfg.CrashRate):
				p.Events = append(p.Events, Event{Round: t, Kind: Crash, Node: u})
				up = false
				wakeAt = t + sampleDuration(rng, cfg.MeanDowntime)
			}
		}
	}
	p.normalize()
	return p, nil
}

// sampleDuration draws a bounded outage length with the given mean:
// uniform on [1, 2·mean−1].
func sampleDuration(rng *xrand.Source, mean int) int {
	if mean <= 1 {
		return 1
	}
	return 1 + rng.Intn(2*mean-1)
}

// BurstConfig parameterises a correlated mass failure.
type BurstConfig struct {
	// N is the network size.
	N int
	// Round is when the burst strikes; Crashes nodes go down together.
	Round, Crashes int
	// Downtime is how many rounds later every victim recovers; 0 leaves
	// them down for good.
	Downtime int
	// Seed selects the victim set (a seeded partial shuffle).
	Seed uint64
}

// CrashBurst expands a burst config: Crashes distinct victims picked by a
// seeded Fisher–Yates prefix all crash at Round and, when Downtime > 0,
// all recover at Round+Downtime — the worst case for protocols that
// amortise over disjoint failures.
func CrashBurst(cfg BurstConfig) (*Plan, error) {
	if cfg.N <= 0 || cfg.Round < 1 {
		return nil, fmt.Errorf("churn: burst needs N > 0 and Round ≥ 1")
	}
	if cfg.Crashes < 0 || cfg.Crashes > cfg.N {
		return nil, fmt.Errorf("churn: burst of %d crashes exceeds N = %d", cfg.Crashes, cfg.N)
	}
	perm := make([]int, cfg.N)
	for i := range perm {
		perm[i] = i
	}
	rng := xrand.New(cfg.Seed)
	for i := 0; i < cfg.Crashes; i++ {
		j := i + rng.Intn(cfg.N-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	p := &Plan{}
	for _, u := range perm[:cfg.Crashes] {
		p.Events = append(p.Events, Event{Round: cfg.Round, Kind: Crash, Node: u})
		if cfg.Downtime > 0 {
			p.Events = append(p.Events, Event{Round: cfg.Round + cfg.Downtime, Kind: Recover, Node: u})
		}
	}
	p.normalize()
	return p, nil
}
