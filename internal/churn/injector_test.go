package churn

import (
	"testing"

	"lbcast/internal/dualgraph"
	"lbcast/internal/geo"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// relayProc is a state-carrying probe: it transmits by private coin, bumps
// its transmit probability for one round after each reception, and records
// every reception. Any delivery mis-resolution therefore cascades into
// different later transmit decisions, giving the determinism tests teeth.
type relayProc struct {
	env   *sim.NodeEnv
	base  float64
	eager bool
	inits int
}

func (r *relayProc) Init(env *sim.NodeEnv) { r.env, r.eager = env, false; r.inits++ }

func (r *relayProc) Transmit(t int) (any, bool) {
	p := r.base
	if r.eager {
		p, r.eager = 0.5, false
	}
	return r.env.ID, r.env.Rng.Coin(p)
}

func (r *relayProc) Receive(t, from int, payload any, ok bool) {
	if ok {
		r.eager = true
		r.env.Rec.Record(sim.Event{Round: t, Node: r.env.ID, Kind: sim.EvHear, From: from})
	}
}

// traceEq fails the test at the first divergence between two traces.
func traceEq(t *testing.T, got, want *sim.Trace) {
	t.Helper()
	if got.RoundsRun != want.RoundsRun || got.Len() != want.Len() ||
		got.Transmissions != want.Transmissions || got.Deliveries != want.Deliveries ||
		got.Collisions != want.Collisions {
		t.Fatalf("aggregates diverged: rounds %d/%d events %d/%d tx %d/%d del %d/%d col %d/%d",
			got.RoundsRun, want.RoundsRun, got.Len(), want.Len(), got.Transmissions,
			want.Transmissions, got.Deliveries, want.Deliveries, got.Collisions, want.Collisions)
	}
	for i := 0; i < want.Len(); i++ {
		if got.At(i) != want.At(i) {
			t.Fatalf("event %d diverged: %+v vs %+v", i, got.At(i), want.At(i))
		}
	}
}

// churnFixture builds a geometric dual, procs and an injector-driven engine.
type churnFixture struct {
	d     *dualgraph.Dual
	procs []*relayProc
	inj   *Injector
	eng   *sim.Engine
}

// buildChurn assembles one engine run over a fresh copy of the topology.
// withIndex toggles the grid index handed to PatchNode.
func buildChurn(t *testing.T, plan *Plan, seed uint64, driver sim.Driver, workers int, withIndex bool) *churnFixture {
	t.Helper()
	d, err := dualgraph.RandomGeometric(60, 4, 4, 1.5, dualgraph.GreyUnreliable, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]*relayProc, d.N())
	simProcs := make([]sim.Process, d.N())
	for u := range procs {
		procs[u] = &relayProc{base: 0.1}
		simProcs[u] = procs[u]
	}
	var idx *geo.GridIndex
	if withIndex {
		idx = geo.BuildGridIndex(d.Emb)
	}
	fade := NewFadeScheduler(sched.NewRandom(0.5, 11), d, plan.Fades)
	inj, err := NewInjector(InjectorConfig{
		Plan: plan, Dual: d, Index: idx, Policy: dualgraph.GreyUnreliable,
		Restart: func(u int) sim.Process {
			procs[u] = &relayProc{base: 0.1}
			simProcs[u] = procs[u]
			return procs[u]
		},
		Fade: fade,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Detach(); err != nil {
		t.Fatal(err)
	}
	eng, err := sim.New(sim.Config{
		Dual: d, Procs: simProcs, Sched: fade, Env: inj, Seed: seed,
		Driver: driver, Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.Attach(eng)
	return &churnFixture{d: d, procs: procs, inj: inj, eng: eng}
}

// TestEmptyPlanTransparent pins the pass-through contract: an engine run
// under an empty-plan injector and a fade wrapper with no epochs is
// byte-identical to the same run with the bare scheduler and no
// environment.
func TestEmptyPlanTransparent(t *testing.T) {
	fx := buildChurn(t, FixedScript(nil, nil, nil), 77, sim.DriverSequential, 0, true)
	fx.eng.Run(300)
	if err := fx.inj.Err(); err != nil {
		t.Fatal(err)
	}

	d, err := dualgraph.RandomGeometric(60, 4, 4, 1.5, dualgraph.GreyUnreliable, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]sim.Process, d.N())
	for u := range procs {
		procs[u] = &relayProc{base: 0.1}
	}
	plain, err := sim.New(sim.Config{Dual: d, Procs: procs, Sched: sched.NewRandom(0.5, 11), Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	plain.Run(300)
	traceEq(t, fx.eng.Trace(), plain.Trace())
}

// TestInjectorCrashWindow replays a fixed crash/recover script and checks
// the hard guarantees: the victim is provably silent while down (no
// transmissions, no receptions at or by it), and its process is a fresh
// instance afterwards.
func TestInjectorCrashWindow(t *testing.T) {
	const victim, from, to = 7, 50, 80
	plan := FixedScript([]Event{
		{Round: from, Kind: Crash, Node: victim},
		{Round: to, Kind: Recover, Node: victim},
	}, nil, nil)
	fx := buildChurn(t, plan, 13, sim.DriverSequential, 0, true)
	fx.eng.Run(200)
	if err := fx.inj.Err(); err != nil {
		t.Fatal(err)
	}
	tr := fx.eng.Trace()
	heardDuring := 0
	for ev := range tr.Events() {
		if ev.Kind != sim.EvHear {
			continue
		}
		inWindow := ev.Round >= from && ev.Round < to
		if inWindow && (ev.Node == victim || ev.From == victim) {
			t.Fatalf("round %d: crashed node %d involved in reception %+v", ev.Round, victim, ev)
		}
		if !inWindow && (ev.Node == victim || ev.From == victim) {
			heardDuring++
		}
	}
	if heardDuring == 0 {
		t.Fatal("victim never participated outside the crash window; fixture degenerate")
	}
	if fx.procs[victim].inits != 1 {
		t.Fatalf("restarted process Init ran %d times, want 1 (fresh instance)", fx.procs[victim].inits)
	}
}

// TestInjectorLeaveJoin drives a leave/rejoin cycle through the incremental
// patch path and checks the graph is structurally valid after every event,
// the grid index stays in sync, and the run is deterministic regardless of
// whether the index-accelerated or linear-scan patch path was used.
func TestInjectorLeaveJoin(t *testing.T) {
	plan := FixedScript([]Event{
		{Round: 30, Kind: Leave, Node: 3},
		{Round: 40, Kind: Leave, Node: 11},
		{Round: 90, Kind: Join, Node: 3},
		{Round: 120, Kind: Join, Node: 11},
	}, nil, []int{20})
	// Node 20 joins late via the plan too.
	plan = FixedScript(append(plan.Events, Event{Round: 60, Kind: Join, Node: 20}), nil, []int{20})

	run := func(withIndex bool) *sim.Trace {
		fx := buildChurn(t, plan, 29, sim.DriverSequential, 0, withIndex)
		fx.eng.Run(200)
		if err := fx.inj.Err(); err != nil {
			t.Fatal(err)
		}
		if err := fx.d.Validate(); err != nil {
			t.Fatalf("patched dual failed validation: %v", err)
		}
		if fx.d.NumPresent() != fx.d.N() {
			t.Fatalf("%d nodes present at end, want all %d", fx.d.NumPresent(), fx.d.N())
		}
		return fx.eng.Trace()
	}
	withIdx := run(true)
	traceEq(t, run(false), withIdx)

	// The detached window must be radio-silent for the leavers.
	for ev := range withIdx.Events() {
		if ev.Kind != sim.EvHear {
			continue
		}
		if (ev.Node == 3 || ev.From == 3) && ev.Round >= 30 && ev.Round < 90 {
			t.Fatalf("departed node 3 involved in reception at round %d", ev.Round)
		}
		if (ev.Node == 20 || ev.From == 20) && ev.Round < 60 {
			t.Fatalf("not-yet-joined node 20 involved in reception at round %d", ev.Round)
		}
	}
}
