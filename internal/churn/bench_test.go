package churn

import (
	"testing"

	"lbcast/internal/dualgraph"
	"lbcast/internal/geo"
	"lbcast/internal/sched"
	"lbcast/internal/sim"
	"lbcast/internal/xrand"
)

// BenchmarkChurnRound measures the per-round cost of the engine with the
// full fault layer active: the soak topology (150 nodes) under Poisson
// crash/recover and leave/join churn plus fade epochs, so every iteration
// pays for event application, topology patches, mask rebuilds and scheduler
// wrapping on top of the base scatter. Compare against BenchmarkNetworkRound
// for the fault layer's overhead; the CI regression gate tracks it.
func BenchmarkChurnRound(b *testing.B) {
	d, err := dualgraph.RandomGeometric(150, 6, 6, 1.5, dualgraph.GreyUnreliable, xrand.New(41))
	if err != nil {
		b.Fatal(err)
	}
	rounds := b.N
	plan, err := Poisson(PoissonConfig{
		N: d.N(), Rounds: rounds, Seed: 17,
		CrashRate: 0.001, MeanDowntime: 60,
		LeaveRate: 0.0002, MeanAbsence: 150,
	})
	if err != nil {
		b.Fatal(err)
	}
	if rounds >= 100 {
		plan.Fades = []Fade{{Start: rounds / 4, End: rounds / 2, Regions: []geo.RegionID{
			geo.RegionOf(d.Emb[10]), geo.RegionOf(d.Emb[70])}}}
	}
	procs := make([]sim.Process, d.N())
	for u := range procs {
		procs[u] = &relayProc{base: 0.08}
	}
	fade := NewFadeScheduler(sched.NewRandom(0.5, 3), d, plan.Fades)
	inj, err := NewInjector(InjectorConfig{
		Plan: plan, Dual: d, Index: geo.BuildGridIndex(d.Emb),
		Policy: dualgraph.GreyUnreliable,
		Restart: func(u int) sim.Process {
			procs[u] = &relayProc{base: 0.08}
			return procs[u]
		},
		Fade: fade,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := inj.Detach(); err != nil {
		b.Fatal(err)
	}
	eng, err := sim.New(sim.Config{Dual: d, Procs: procs, Sched: fade, Env: inj, Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	inj.Attach(eng)
	b.ReportAllocs()
	b.ResetTimer()
	eng.Run(rounds)
	b.StopTimer()
	if err := inj.Err(); err != nil {
		b.Fatal(err)
	}
}
