package churn

import (
	"lbcast/internal/dualgraph"
	"lbcast/internal/geo"
	"lbcast/internal/sim"
)

// FadeScheduler layers region-level fading epochs over a base link
// scheduler: while a fade is active, every unreliable edge with an endpoint
// in a faded grid region is excluded from the communication graph no matter
// what the base scheduler answers. Reliable (G) edges are untouched — the
// dual-graph model guarantees them, so the adversary's entire surface is
// the grey-zone set E′∖E, and that is exactly the surface fading controls.
//
// The per-edge faded mask is rebuilt only when the set of active fades
// changes (Advance, called by the injector in BeforeRound, single-threaded)
// or when a topology patch renumbers the unreliable edges (Rebind, called
// by the injector after a Leave/Join). All query methods — Included,
// IncludedBatch, Uniform, IncludedFor — are read-only for the round, so
// the engine's parallel scatter may issue them concurrently, and all four
// answer consistently, as the engine's scheduler contracts require.
//
// The schedule stays oblivious whenever the base scheduler is: faded
// rounds and regions are fixed by the plan before the execution starts.
type FadeScheduler struct {
	inner  sim.LinkScheduler
	batch  sim.BatchLinkScheduler  // non-nil when inner supports batch fills
	sparse sim.SparseLinkScheduler // non-nil when inner supports subset queries
	aware  sim.TransmitterAware    // non-nil when inner is adaptive
	dual   *dualgraph.Dual
	fades  []Fade

	faded    []bool // per unreliable edge index; valid for the current active set
	anyFaded bool
	active   []int // indices into fades active for the last Advance round
	scratch  []int
}

// NewFadeScheduler wraps the base scheduler (nil means sched.Never
// semantics: no unreliable edge included) with the plan's fade epochs over
// the given dual graph. The wrapper starts with no active fade; the
// injector advances it each round.
func NewFadeScheduler(inner sim.LinkScheduler, d *dualgraph.Dual, fades []Fade) *FadeScheduler {
	f := &FadeScheduler{inner: inner, dual: d, fades: append([]Fade(nil), fades...)}
	f.batch, _ = inner.(sim.BatchLinkScheduler)
	f.sparse, _ = inner.(sim.SparseLinkScheduler)
	f.aware, _ = inner.(sim.TransmitterAware)
	return f
}

// Advance recomputes the active fade set for round t and, if it changed,
// rebuilds the per-edge faded mask. Must be called between rounds (the
// injector calls it from BeforeRound); query methods never mutate.
func (f *FadeScheduler) Advance(t int) {
	f.scratch = f.scratch[:0]
	for i, fd := range f.fades {
		if fd.Start <= t && t < fd.End {
			f.scratch = append(f.scratch, i)
		}
	}
	if intsEqual(f.scratch, f.active) {
		return
	}
	f.active = append(f.active[:0], f.scratch...)
	f.rebuild()
}

// Rebind rebuilds the faded mask against the current unreliable edge list.
// Must be called after every dual-graph patch: PatchNode renumbers the
// edge indices the mask is keyed by.
func (f *FadeScheduler) Rebind() { f.rebuild() }

// rebuild recomputes faded[] for the current active set over the current
// edge list.
func (f *FadeScheduler) rebuild() {
	edges := f.dual.UnreliableEdges()
	if cap(f.faded) < len(edges) {
		f.faded = make([]bool, len(edges))
	}
	f.faded = f.faded[:len(edges)]
	f.anyFaded = false
	if len(f.active) == 0 {
		for i := range f.faded {
			f.faded[i] = false
		}
		return
	}
	regions := make(map[geo.RegionID]struct{})
	for _, i := range f.active {
		for _, r := range f.fades[i].Regions {
			regions[r] = struct{}{}
		}
	}
	emb := f.dual.Emb
	for i, e := range edges {
		_, fu := regions[geo.RegionOf(emb[e.U])]
		_, fv := regions[geo.RegionOf(emb[e.V])]
		f.faded[i] = fu || fv
		f.anyFaded = f.anyFaded || f.faded[i]
	}
}

// isFaded reports whether edge e is suppressed this round.
func (f *FadeScheduler) isFaded(e int) bool {
	return f.anyFaded && e >= 0 && e < len(f.faded) && f.faded[e]
}

// Included implements sim.LinkScheduler.
func (f *FadeScheduler) Included(t, edge int) bool {
	if f.isFaded(edge) {
		return false
	}
	return f.inner != nil && f.inner.Included(t, edge)
}

// IncludedBatch implements sim.BatchLinkScheduler.
func (f *FadeScheduler) IncludedBatch(t int, mask []bool) {
	switch {
	case f.inner == nil:
		for i := range mask {
			mask[i] = false
		}
		return
	case f.batch != nil:
		f.batch.IncludedBatch(t, mask)
	default:
		for i := range mask {
			mask[i] = f.inner.Included(t, i)
		}
	}
	if f.anyFaded {
		for i := range mask {
			if i < len(f.faded) && f.faded[i] {
				mask[i] = false
			}
		}
	}
}

// Uniform implements sim.SparseLinkScheduler: a round with active fading is
// edge-dependent unless the base round is all-excluded anyway.
func (f *FadeScheduler) Uniform(t int) (bool, bool) {
	if f.inner == nil {
		return false, true
	}
	var v, ok bool
	if f.sparse != nil {
		v, ok = f.sparse.Uniform(t)
	}
	if !f.anyFaded {
		return v, ok && f.sparse != nil
	}
	if ok && !v {
		return false, true
	}
	return false, false
}

// IncludedFor implements sim.SparseLinkScheduler. Safe for concurrent calls
// with distinct out buffers, as the engine's parallel scatter requires.
func (f *FadeScheduler) IncludedFor(t int, edges []int32, out []bool) {
	if f.inner == nil {
		for i := range edges {
			out[i] = false
		}
		return
	}
	if f.sparse != nil {
		f.sparse.IncludedFor(t, edges, out)
	} else {
		for i, e := range edges {
			out[i] = f.inner.Included(t, int(e))
		}
	}
	if f.anyFaded {
		for i, e := range edges {
			if f.isFaded(int(e)) {
				out[i] = false
			}
		}
	}
}

// ObserveTransmitters implements sim.TransmitterAware by forwarding to an
// adaptive base scheduler, so wrapping does not blind it.
func (f *FadeScheduler) ObserveTransmitters(t int, transmitting []bool) {
	if f.aware != nil {
		f.aware.ObserveTransmitters(t, transmitting)
	}
}

// intsEqual reports slice equality.
func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

var (
	_ sim.BatchLinkScheduler  = (*FadeScheduler)(nil)
	_ sim.SparseLinkScheduler = (*FadeScheduler)(nil)
	_ sim.TransmitterAware    = (*FadeScheduler)(nil)
)
